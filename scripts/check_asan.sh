#!/bin/sh
# Builds the address-sanitized preset (-DRV_SANITIZE=address,undefined —
# ASan catches heap/stack misuse, UBSan integer and pointer UB) and runs
# the full unit-test binary plus the end-to-end golden checks under it.
# Any out-of-bounds access or undefined behavior the analyses, encoders,
# or solvers introduce fails this script.
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . "-DRV_SANITIZE=address,undefined"
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"

ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "check_asan: all address-sanitized checks passed"
