#!/bin/sh
# Checks that the C++ sources are clang-format clean (LLVM style, per
# .clang-format). Exits 0 with a notice when clang-format is unavailable so
# the CTest entry never fails on hosts without the tool.
set -eu

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping"
  exit 0
fi

STATUS=0
for DIR in src tests tools bench examples; do
  [ -d "$DIR" ] || continue
  for FILE in $(find "$DIR" -name '*.cpp' -o -name '*.h'); do
    if ! clang-format --dry-run --Werror "$FILE" >/dev/null 2>&1; then
      echo "check_format: $FILE needs formatting"
      STATUS=1
    fi
  done
done

if [ "$STATUS" -eq 0 ]; then
  echo "check_format: all files clean"
fi
exit "$STATUS"
