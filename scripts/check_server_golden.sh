#!/bin/sh
# ServerGolden (docs/SERVER.md): the daemon's streamed SUMMARY must be
# byte-identical (timing normalized) to `rvpredict detect` on the same
# trace, across the solver-backed techniques and daemon pool sizes:
#
#   * technique rv and said, daemon --jobs=1 and --jobs=4;
#   * a racy multi-window trace and a clean one;
#   * four *concurrent* sessions, each byte-identical to batch;
#   * REPORT frames arrive once per analyzed window.
#
# Usage: scripts/check_server_golden.sh <rvpredict> <rvpredictd> <rvpclient>
set -eu

RVPREDICT="${1:?usage: check_server_golden.sh <rvpredict> <rvpredictd> <rvpclient>}"
RVPREDICTD="${2:?missing rvpredictd}"
RVPCLIENT="${3:?missing rvpclient}"
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

FAILURES=0
CHECKS=0

normalize() { sed 's/ in [0-9.]*s/ in Xs/' "$1"; }

fail() {
  echo "FAIL [$1]"
  shift
  for F in "$@"; do
    echo "    --- $F ---"
    sed 's/^/    /' "$F" 2>/dev/null || true
  done
  FAILURES=$((FAILURES + 1))
}

# wait_for_socket <path>: the daemon binds asynchronously after exec.
wait_for_socket() {
  I=0
  while [ ! -S "$1" ]; do
    I=$((I + 1))
    [ "$I" -gt 100 ] && { echo "daemon never bound $1"; exit 1; }
    sleep 0.1
  done
}

start_daemon() {
  SOCK="$WORK/d.sock"
  rm -f "$SOCK"
  "$RVPREDICTD" --socket="$SOCK" "$@" 2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  wait_for_socket "$SOCK"
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  RC=0
  wait "$DAEMON_PID" || RC=$?
  DAEMON_PID=""
  CHECKS=$((CHECKS + 1))
  if [ "$RC" -ne 0 ]; then
    echo "FAIL [drain]: daemon exited $RC after SIGTERM"
    sed 's/^/    /' "$WORK/daemon.err"
    FAILURES=$((FAILURES + 1))
  fi
}

# Fixed workloads, recorded once: bufwriter races across windows,
# mergesort is clean end to end.
"$RVPREDICT" record bench:bufwriter --out="$WORK/racy.txt" >/dev/null
"$RVPREDICT" record bench:mergesort --out="$WORK/clean.txt" >/dev/null

WINDOW=30

for JOBS in 1 4; do
  start_daemon --jobs="$JOBS"
  for TECH in rv said; do
    for TRACE in racy clean; do
      LABEL="jobs=$JOBS/$TECH/$TRACE"
      "$RVPREDICT" detect "$WORK/$TRACE.txt" --technique="$TECH" \
        --window="$WINDOW" >"$WORK/batch.txt" || true
      RC=0
      "$RVPCLIENT" "$WORK/$TRACE.txt" --socket="$SOCK" \
        --technique="$TECH" --window="$WINDOW" --summary-only \
        >"$WORK/stream.txt" 2>"$WORK/client.err" || RC=$?
      CHECKS=$((CHECKS + 1))
      if [ "$RC" -ne 0 ]; then
        fail "$LABEL: client exited $RC" "$WORK/client.err"
      elif ! normalize "$WORK/batch.txt" >"$WORK/batch.n" || \
           ! normalize "$WORK/stream.txt" >"$WORK/stream.n" || \
           ! cmp -s "$WORK/batch.n" "$WORK/stream.n"; then
        fail "$LABEL: summary differs from batch" \
          "$WORK/batch.txt" "$WORK/stream.txt"
      fi
    done
  done

  # One REPORT frame per analyzed window: bufwriter has 85 events, so
  # window=30 makes 3 windows.
  "$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window="$WINDOW" \
    >"$WORK/full.txt" 2>/dev/null || true
  CHECKS=$((CHECKS + 1))
  REPORTS=$(grep -c '^window ' "$WORK/full.txt" || true)
  if [ "$REPORTS" -ne 3 ]; then
    fail "jobs=$JOBS: expected 3 REPORT frames, got $REPORTS" "$WORK/full.txt"
  fi

  # Four concurrent sessions, each against its own expectation.
  "$RVPREDICT" detect "$WORK/racy.txt" --window="$WINDOW" \
    >"$WORK/batch.txt" || true
  normalize "$WORK/batch.txt" >"$WORK/batch.n"
  for I in 1 2 3 4; do
    "$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window="$WINDOW" \
      --summary-only >"$WORK/conc$I.txt" 2>/dev/null &
    eval "CPID$I=\$!"
  done
  for I in 1 2 3 4; do
    RC=0
    eval "wait \$CPID$I" || RC=$?
    CHECKS=$((CHECKS + 1))
    if [ "$RC" -ne 0 ]; then
      fail "jobs=$JOBS/concurrent/$I: client exited $RC"
    elif ! normalize "$WORK/conc$I.txt" >"$WORK/conc$I.n" || \
         ! cmp -s "$WORK/batch.n" "$WORK/conc$I.n"; then
      fail "jobs=$JOBS/concurrent/$I: summary differs" \
        "$WORK/batch.txt" "$WORK/conc$I.txt"
    fi
  done

  stop_daemon
done

echo "check_server_golden: $CHECKS checks, $FAILURES failure(s)"
[ "$FAILURES" -eq 0 ]
