#!/bin/sh
# Fault matrix (docs/ROBUSTNESS.md): injects every fault site into every
# detector, sequentially and with --jobs=4, and checks the pipeline's
# degradation contract instead of crashing:
#
#   * exit codes stay within the documented taxonomy (0 clean, 1 findings,
#     2 usage, 3 degraded/unknowns) — never a crash, signal, or garbage
#     code;
#   * solver-layer faults may move findings into the `unknown` section but
#     must never invent findings: with every solver answer suppressed, the
#     run reports zero races/violations/deadlocks;
#   * trace-layer faults surface as parse diagnostics (exit 2), not
#     crashes;
#   * detect.abort without --checkpoint has no kill site, so the run
#     completes normally.
#
# Usage: scripts/check_faults.sh <path-to-rvpredict> [workload.rv]
set -eu

RVPREDICT="${1:?usage: check_faults.sh <rvpredict> [workload.rv]}"
cd "$(dirname "$0")/.."
WORKLOAD="${2:-tests/golden/stats_workload.rv}"

FAILURES=0
CHECKS=0

# run <expected-codes> <label> <args...>: expected-codes is a
# comma-separated list of acceptable exit codes.
run() {
  EXPECT="$1"; LABEL="$2"; shift 2
  set +e
  OUT=$("$RVPREDICT" "$@" 2>&1)
  RC=$?
  set -e
  CHECKS=$((CHECKS + 1))
  case ",$EXPECT," in
    *",$RC,"*) ;;
    *)
      echo "FAIL [$LABEL]: exit $RC (wanted one of: $EXPECT)"
      echo "$OUT" | sed 's/^/    /'
      FAILURES=$((FAILURES + 1))
      ;;
  esac
}

# expect_quiet <label> <args...>: the run must not claim any finding
# (solver outage turns maybe-findings into unknowns, never findings).
expect_quiet() {
  LABEL="$1"; shift
  OUT=$("$RVPREDICT" "$@" 2>&1) || true
  CHECKS=$((CHECKS + 1))
  if echo "$OUT" | grep -Eq '^(RV|Said|CP|HB): [1-9]| [1-9][0-9]* violation| [1-9][0-9]* potential deadlock'; then
    echo "FAIL [$LABEL]: degraded run claimed findings"
    echo "$OUT" | sed 's/^/    /'
    FAILURES=$((FAILURES + 1))
  fi
}

SOLVER_SITES="solver.timeout session.corrupt z3.unavailable satdb.alloc"
TRACE_SITES="trace.short_read trace.garble"

for PROPERTY in race atomicity deadlock; do
  for JOBS in 1 4; do
    BASE="detect $WORKLOAD --schedule=rr --seed=1
          --property=$PROPERTY --jobs=$JOBS --window=5"
    # Solver faults: the run finishes with a taxonomy exit code, and a
    # total outage never invents findings.
    for SITE in $SOLVER_SITES; do
      run 0,1,3 "$PROPERTY/jobs=$JOBS/$SITE" \
        $BASE --inject-faults="$SITE"
    done
    expect_quiet "$PROPERTY/jobs=$JOBS/solver-outage" \
      $BASE --inject-faults=solver.timeout,session.corrupt,satdb.alloc
    # Trace faults corrupt the recorded program text: a parse diagnostic
    # (exit 2) or — if the corruption lands in dead bytes — a normal run.
    for SITE in $TRACE_SITES; do
      run 0,1,2,3 "$PROPERTY/jobs=$JOBS/$SITE" \
        $BASE --inject-faults="$SITE"
    done
    # detect.abort only has a kill site when checkpointing is on; without
    # it the flag is inert and the run completes.
    run 0,1 "$PROPERTY/jobs=$JOBS/detect.abort-inert" \
      $BASE --inject-faults=detect.abort
  done
done

echo "check_faults: $CHECKS checks, $FAILURES failure(s)"
[ "$FAILURES" -eq 0 ]
