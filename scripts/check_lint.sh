#!/bin/sh
# Runs clang-tidy (per .clang-tidy) over the C++ sources using the compile
# commands of an existing build directory. Exits 0 with a notice when
# clang-tidy or the compilation database is unavailable so the CTest entry
# never fails on hosts without the tool.
#
#   scripts/check_lint.sh [build-dir]    (default: ./build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_lint: clang-tidy not found; skipping"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  # Try to produce one without disturbing the existing cache settings.
  if [ -d "$BUILD_DIR" ]; then
    cmake -S . -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      >/dev/null 2>&1 || true
  fi
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "check_lint: no compile_commands.json under '$BUILD_DIR'; skipping"
    exit 0
  fi
fi

STATUS=0
for DIR in src tools bench; do
  [ -d "$DIR" ] || continue
  for FILE in $(find "$DIR" -name '*.cpp' | sort); do
    if ! clang-tidy -p "$BUILD_DIR" --quiet "$FILE" 2>/dev/null; then
      echo "check_lint: $FILE has clang-tidy findings"
      STATUS=1
    fi
  done
done

if [ "$STATUS" -eq 0 ]; then
  echo "check_lint: all files clean"
fi
exit "$STATUS"
