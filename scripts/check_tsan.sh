#!/bin/sh
# Builds the thread-sanitized preset (-DRV_SANITIZE=thread) and runs the
# concurrency-sensitive tests under it: the thread-pool and stats unit
# tests, the parallel-vs-sequential detector comparisons, the
# byte-identical-output determinism check, and the cone-slicing tests
# (whose shared skeleton cache is read and populated concurrently by
# --jobs workers — docs/ENCODER.md). Any data race the pool, the shared
# per-window encoding, or the skeleton cache introduces fails this
# script.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DRV_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" \
  --target rvp_tests rvpredict rvpredictd rvpclient

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'ThreadPool|ParallelDetect|Stats\.Concurrent|DetectDeterminism|RaceEncoderCone|SliceGolden'

# The hybrid WCP tier under parallel solving: the vector-clock index is
# built once and read by every worker, and the per-COP WcpPruned/WcpRacy
# verdicts are mirrored back from the worker tasks (docs/TIERS.md). Exit
# 1 just means races were reported; >=2 (incl. TSan's abort) fails.
for w in tests/golden/prune_workload.rv tests/golden/stats_workload.rv; do
  rc=0
  "$BUILD_DIR"/tools/rvpredict detect "$w" --seed=1 --schedule=rr \
    --technique=rv --tier=hybrid --jobs=4 >/dev/null || rc=$?
  if [ "$rc" -gt 1 ]; then
    echo "check_tsan: --tier=hybrid --jobs=4 on $w exited $rc" >&2
    exit 1
  fi
done

# The daemon under concurrent ingest: 4 clients stream the same workload
# into a --jobs=4 rvpredictd at once, exercising the I/O-thread/worker
# handoff (Inbox swap, completion deque, self-pipe wake) and the shared
# ThreadPool under TSan. The drain must still exit 0.
SOCK="$BUILD_DIR/tsan-server.sock"
rm -f "$SOCK"
"$BUILD_DIR"/tools/rvpredict record bench:bufwriter \
  --out="$BUILD_DIR/tsan-server-trace.txt" >/dev/null
"$BUILD_DIR"/tools/rvpredictd --socket="$SOCK" --jobs=4 &
SERVER_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "check_tsan: daemon never bound" >&2; exit 1; }
  sleep 0.1
done
"$BUILD_DIR"/tools/rvpclient "$BUILD_DIR/tsan-server-trace.txt" \
  --socket="$SOCK" --window=30 --connections=4 --summary-only >/dev/null
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "check_tsan: rvpredictd drain exited $rc under TSan" >&2
  exit 1
fi

echo "check_tsan: all thread-sanitized checks passed"
