#!/bin/sh
# Builds the thread-sanitized preset (-DRV_SANITIZE=thread) and runs the
# concurrency-sensitive tests under it: the thread-pool and stats unit
# tests, the parallel-vs-sequential detector comparisons, the
# byte-identical-output determinism check, and the cone-slicing tests
# (whose shared skeleton cache is read and populated concurrently by
# --jobs workers — docs/ENCODER.md). Any data race the pool, the shared
# per-window encoding, or the skeleton cache introduces fails this
# script.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DRV_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)" \
  --target rvp_tests rvpredict

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'ThreadPool|ParallelDetect|Stats\.Concurrent|DetectDeterminism|RaceEncoderCone|SliceGolden'

echo "check_tsan: all thread-sanitized checks passed"
