#!/bin/sh
# Smoke check for `rvpredict detect --profile` (docs/OBSERVABILITY.md):
# the emitted Chrome/Perfetto trace must
#
#   * be one valid JSON document with a non-empty traceEvents array,
#   * name every referenced tid through a thread_name metadata event,
#   * keep non-metadata timestamps monotone (the writer sorts spans by
#     start time so Perfetto never sees out-of-order events),
#   * give every "X" span a non-negative integer duration.
#
# Runs sequentially and with --jobs=4 (worker tracks), and checks that
# --profile does not change the analysis report itself.
#
# Usage: scripts/check_profile.sh <path-to-rvpredict> [workload.rv]
set -eu

RVPREDICT="${1:?usage: check_profile.sh <rvpredict> [workload.rv]}"
cd "$(dirname "$0")/.."
WORKLOAD="${2:-tests/golden/stats_workload.rv}"

TMPDIR_PROFILE=$(mktemp -d)
trap 'rm -rf "$TMPDIR_PROFILE"' EXIT

FAILURES=0
CHECKS=0

# run_profiled <label> <profile-out> <args...>: exit must stay in the
# findings taxonomy (0 or 1) and the profile file must appear.
run_profiled() {
  LABEL="$1"; OUT="$2"; shift 2
  set +e
  "$RVPREDICT" detect "$WORKLOAD" --seed=1 --schedule=rr \
      --profile="$OUT" "$@" > "$TMPDIR_PROFILE/$LABEL.stdout" 2>&1
  RC=$?
  set -e
  CHECKS=$((CHECKS + 1))
  if [ "$RC" -gt 1 ]; then
    echo "FAIL [$LABEL]: exit $RC"
    sed 's/^/    /' "$TMPDIR_PROFILE/$LABEL.stdout"
    FAILURES=$((FAILURES + 1))
    return
  fi
  if [ ! -s "$OUT" ]; then
    echo "FAIL [$LABEL]: profile '$OUT' missing or empty"
    FAILURES=$((FAILURES + 1))
    return
  fi
  CHECKS=$((CHECKS + 1))
  if ! python3 scripts/check_profile.py "$OUT"; then
    echo "FAIL [$LABEL]: profile '$OUT' failed validation"
    FAILURES=$((FAILURES + 1))
  fi
}

run_profiled seq  "$TMPDIR_PROFILE/seq.trace.json"  --jobs=1
run_profiled par  "$TMPDIR_PROFILE/par.trace.json"  --jobs=4
run_profiled stats "$TMPDIR_PROFILE/stats.trace.json" --jobs=1 --stats
# Sliced (default) vs full-window encodings must both profile cleanly
# under worker tracks (the skeleton cache is shared across workers).
run_profiled noslice "$TMPDIR_PROFILE/noslice.trace.json" --jobs=4 --no-slice

# --jobs=4 must produce named worker tracks beyond the main thread.
CHECKS=$((CHECKS + 1))
if ! python3 -c "
import json, sys
d = json.load(open('$TMPDIR_PROFILE/par.trace.json'))
names = {e['args']['name'] for e in d['traceEvents'] if e.get('ph') == 'M'}
sys.exit(0 if any(n.startswith('worker-') for n in names) else 1)
"; then
  echo "FAIL [workers]: --jobs=4 profile has no worker-* thread tracks"
  FAILURES=$((FAILURES + 1))
fi

# Profiling must not perturb the report: strip timings and compare against
# an unprofiled run.
CHECKS=$((CHECKS + 1))
"$RVPREDICT" detect "$WORKLOAD" --seed=1 --schedule=rr --jobs=1 \
    > "$TMPDIR_PROFILE/plain.stdout" 2>&1 || true
sed 's/ in [0-9.]*s//' "$TMPDIR_PROFILE/plain.stdout" > "$TMPDIR_PROFILE/a"
sed 's/ in [0-9.]*s//' "$TMPDIR_PROFILE/seq.stdout" > "$TMPDIR_PROFILE/b"
if ! cmp -s "$TMPDIR_PROFILE/a" "$TMPDIR_PROFILE/b"; then
  echo "FAIL [report]: --profile changed the detection report"
  diff "$TMPDIR_PROFILE/a" "$TMPDIR_PROFILE/b" | sed 's/^/    /' || true
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "check_profile: $FAILURES of $CHECKS checks failed"
  exit 1
fi
echo "check_profile: all $CHECKS checks passed"
