#!/usr/bin/env python3
"""Perf-regression harness (docs/OBSERVABILITY.md).

Runs `rvpredict detect --stats-json=-` on a fixed workload, extracts one
schema-versioned perf record (git sha, timestamp, workload, seconds, work
counters, peak RSS), appends it to the trajectory file, and compares it
against the previous record for the same workload:

    {"schema_version": 1, "records": [ {...}, {...}, ... ]}

Exit codes: 0 = recorded, no regression; 1 = harness error; 2 = the new
record is slower than the previous one beyond --tolerance.

Timing noise is handled by running the workload --runs times and keeping
the fastest run (min is the most stable estimator of the work's cost);
the comparison additionally reports, but does not gate on, deterministic
work counters (solver_calls, cops) so a flagged slowdown can be told
apart from "the workload itself changed".

--simulate-slowdown multiplies the measured seconds before recording —
an injection hook for testing the regression gate end-to-end.
--self-test exercises measure/append/reload/compare with a synthetic 2x
record in a temporary history, flake-free (no second measurement).

Used by the `bench_history` CMake target and the BenchReport* CTests.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

MARKER = "##rvp:stats-json"
HISTORY_SCHEMA_VERSION = 1


def fail(msg):
    print("bench_report: error: %s" % msg, file=sys.stderr)
    sys.exit(1)


def run_once(binary, workload, detect_args):
    cmd = [binary, "detect", workload] + detect_args + ["--stats-json=-"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # 0 = clean, 1 = findings; anything else is a broken run.
    if proc.returncode not in (0, 1):
        fail("'%s' exited %d:\n%s" % (" ".join(cmd), proc.returncode,
                                      proc.stderr))
    lines = proc.stdout.splitlines()
    try:
        idx = lines.index(MARKER)
    except ValueError:
        fail("no '%s' marker in detect output" % MARKER)
    try:
        return json.loads(lines[idx + 1])
    except (IndexError, ValueError) as e:
        fail("stats-json after marker does not parse: %s" % e)


def measure(args, detect_args):
    """Best (fastest) stats object over --runs measurements."""
    best = None
    for _ in range(args.runs):
        stats = run_once(args.binary, args.workload, detect_args)
        if best is None or stats["seconds"] < best["seconds"]:
            best = stats
    return best


def make_record(stats, workload, runs, slowdown, tier):
    gauges = stats.get("metrics", {}).get("gauges", {})
    return {
        "schema_version": stats.get("schema_version"),
        "git_sha": stats.get("git_sha", "unknown"),
        "timestamp": stats.get("timestamp"),
        "workload": workload,
        "tier": tier,
        "runs": runs,
        "metrics": {
            "seconds": stats["seconds"] * slowdown,
            "windows": stats.get("windows", 0),
            "cops": stats.get("cops", 0),
            "solver_calls": stats.get("solver_calls", 0),
            "wcp_races": stats.get("wcp_races", 0),
            "wcp_pruned": stats.get("wcp_pruned_cops", 0),
            "solver_calls_saved": stats.get("solver_calls_saved", 0),
            "peak_rss_bytes": gauges.get("mem.peak_rss_bytes", 0),
        },
    }


def load_history(path):
    if not os.path.exists(path):
        return {"schema_version": HISTORY_SCHEMA_VERSION, "records": []}
    with open(path) as f:
        history = json.load(f)
    if history.get("schema_version") != HISTORY_SCHEMA_VERSION:
        fail("%s has schema_version %r, this tool writes %d" %
             (path, history.get("schema_version"), HISTORY_SCHEMA_VERSION))
    if not isinstance(history.get("records"), list):
        fail("%s has no 'records' array" % path)
    return history


def save_history(path, history):
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    os.replace(tmp, path)


def compare(prev, new, tolerance):
    """Returns (regressed, lines-to-print)."""
    lines = []
    p, n = prev["metrics"], new["metrics"]
    ratio = n["seconds"] / p["seconds"] if p["seconds"] > 0 else 1.0
    lines.append("previous: %s  %.6fs  (sha %s)" %
                 (prev["workload"], p["seconds"], prev.get("git_sha")))
    lines.append("current:  %s  %.6fs  (sha %s)  ratio %.2fx" %
                 (new["workload"], n["seconds"], new.get("git_sha"), ratio))
    for key in ("windows", "cops", "solver_calls", "wcp_pruned",
                "solver_calls_saved"):
        if p.get(key) != n.get(key):
            lines.append("note: %s changed %s -> %s — the workload's work "
                         "changed, timing may not be comparable" %
                         (key, p.get(key), n.get(key)))
    regressed = ratio > 1.0 + tolerance
    if regressed:
        lines.append("REGRESSION: %.2fx slower than the previous record "
                     "(tolerance %.0f%%)" % (ratio, tolerance * 100))
    return regressed, lines


def self_test(args, detect_args):
    """Measure once, then drive append/reload/compare with a synthetic 2x
    record — deterministic, no second measurement to race against."""
    stats = measure(args, detect_args)
    base = make_record(stats, args.workload, args.runs, 1.0, args.tier)
    with tempfile.TemporaryDirectory() as tmp:
        history_path = os.path.join(tmp, "trajectory.json")
        history = load_history(history_path)
        history["records"].append(base)
        save_history(history_path, history)
        history = load_history(history_path)
        if len(history["records"]) != 1:
            fail("self-test: record did not round-trip")
        slow = make_record(stats, args.workload, args.runs, 2.0, args.tier)
        regressed, lines = compare(history["records"][-1], slow,
                                   args.tolerance)
        if not regressed:
            fail("self-test: synthetic 2x slowdown was not flagged "
                 "(tolerance %.2f)" % args.tolerance)
        ok_rec = make_record(stats, args.workload, args.runs, 1.0,
                             args.tier)
        regressed, _ = compare(history["records"][-1], ok_rec,
                               args.tolerance)
        if regressed:
            fail("self-test: identical record flagged as regression")
    print("bench_report self-test passed (base %.6fs, 2x record flagged, "
          "1x record clean)" % base["metrics"]["seconds"])


def measure_serve(args):
    """One `bench:serve` measurement: N concurrent rvpclient sessions
    replay the recorded workload into a fresh rvpredictd, and the record
    keeps the end-to-end wall seconds (the comparable metric) plus the
    daemon's own counters (windows, degraded fraction, backpressure)."""
    import shutil
    import signal
    import time

    workdir = tempfile.mkdtemp(prefix="rvp-serve-")
    try:
        trace = os.path.join(workdir, "trace.txt")
        proc = subprocess.run(
            [args.binary, "record", args.workload, "--schedule=rr",
             "--seed=1", "--out=%s" % trace],
            capture_output=True, text=True)
        if proc.returncode != 0:
            fail("recording '%s' failed:\n%s" % (args.workload,
                                                 proc.stderr))
        best_seconds, best_stats = None, None
        for _ in range(args.runs):
            sock = os.path.join(workdir, "bench.sock")
            stats_path = os.path.join(workdir, "stats.json")
            if os.path.exists(sock):
                os.unlink(sock)
            daemon = subprocess.Popen(
                [args.serve_daemon, "--socket=%s" % sock,
                 "--jobs=%d" % args.serve_connections,
                 "--stats-json=%s" % stats_path],
                stderr=subprocess.DEVNULL)
            try:
                for _ in range(100):
                    if os.path.exists(sock):
                        break
                    time.sleep(0.1)
                else:
                    fail("rvpredictd never bound %s" % sock)
                start = time.monotonic()
                client = subprocess.run(
                    [args.serve_client, trace, "--socket=%s" % sock,
                     "--window=%d" % args.serve_window,
                     "--connections=%d" % args.serve_connections,
                     "--summary-only"],
                    capture_output=True, text=True)
                seconds = time.monotonic() - start
                if client.returncode != 0:
                    fail("rvpclient exited %d:\n%s" % (client.returncode,
                                                       client.stderr))
            finally:
                daemon.send_signal(signal.SIGTERM)
                if daemon.wait(timeout=60) != 0:
                    fail("rvpredictd drain exited %d" % daemon.returncode)
            with open(stats_path) as f:
                stats = json.load(f)
            if best_seconds is None or seconds < best_seconds:
                best_seconds, best_stats = seconds, stats
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    counters = best_stats.get("counters", {})
    gauges = best_stats.get("gauges", {})
    windows = counters.get("server.windows_analyzed", 0)
    degraded = counters.get("server.degraded_windows", 0)
    sha = subprocess.run(["git", "rev-parse", "--short=12", "HEAD"],
                         capture_output=True, text=True)
    return {
        "schema_version": 2,
        "git_sha": sha.stdout.strip() if sha.returncode == 0 else "unknown",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": "bench:serve",
        "tier": args.tier,
        "runs": args.runs,
        "metrics": {
            "seconds": best_seconds * args.simulate_slowdown,
            "windows": windows,
            "degraded_windows": degraded,
            "degraded_fraction": degraded / windows if windows else 0.0,
            "backpressure_events":
                counters.get("server.backpressure_events", 0),
            "sessions": args.serve_connections,
            "peak_rss_bytes": gauges.get("mem.peak_rss_bytes", 0),
        },
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", required=True,
                    help="path to the rvpredict executable")
    ap.add_argument("--workload", default="tests/golden/stats_workload.rv")
    ap.add_argument("--history", default="BENCH_trajectory.json")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed relative slowdown before exit 2 "
                         "(0.5 = 50%%)")
    ap.add_argument("--tier", default="hybrid",
                    choices=["vc", "smt", "hybrid"],
                    help="race pipeline tier passed to rvpredict detect "
                         "(docs/TIERS.md); records only compare against "
                         "previous records of the same tier")
    ap.add_argument("--runs", type=int, default=3,
                    help="measurements per record; the fastest is kept")
    ap.add_argument("--simulate-slowdown", type=float, default=1.0,
                    help="multiply measured seconds (regression-gate "
                         "injection hook)")
    ap.add_argument("--no-append", action="store_true",
                    help="compare only; leave the history file untouched")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the measure/append/compare pipeline in "
                         "a temporary history and exit")
    ap.add_argument("--serve", action="store_true",
                    help="measure the rvpredictd daemon path instead: N "
                         "concurrent rvpclient sessions replay the "
                         "recorded workload; the record lands under "
                         "workload 'bench:serve'")
    ap.add_argument("--serve-daemon", default="build/tools/rvpredictd",
                    help="path to the rvpredictd executable (--serve)")
    ap.add_argument("--serve-client", default="build/tools/rvpclient",
                    help="path to the rvpclient executable (--serve)")
    ap.add_argument("--serve-connections", type=int, default=4,
                    help="concurrent client sessions for --serve")
    ap.add_argument("--serve-window", type=int, default=1000,
                    help="window size streamed sessions ask for (--serve)")
    args = ap.parse_args()

    detect_args = ["--technique=rv", "--schedule=rr", "--seed=1",
                   "--jobs=1", "--tier=%s" % args.tier]
    if args.runs < 1:
        fail("--runs must be >= 1")

    if args.self_test:
        self_test(args, detect_args)
        return

    if args.serve:
        record = measure_serve(args)
    else:
        stats = measure(args, detect_args)
        record = make_record(stats, args.workload, args.runs,
                             args.simulate_slowdown, args.tier)

    history = load_history(args.history)
    prev = None
    for r in reversed(history["records"]):
        # Records predating the tier field were measured before the WCP
        # tier existed, i.e. on the solver-only pipeline.
        if (r.get("workload") == record["workload"]
                and r.get("tier", "smt") == record["tier"]):
            prev = r
            break

    regressed = False
    if prev is None:
        print("no previous record for '%s'; baseline %.6fs" %
              (record["workload"], record["metrics"]["seconds"]))
    else:
        regressed, lines = compare(prev, record, args.tolerance)
        for line in lines:
            print(line)

    if not args.no_append:
        history["records"].append(record)
        save_history(args.history, history)
        print("appended record #%d to %s" %
              (len(history["records"]), args.history))

    sys.exit(2 if regressed else 0)


if __name__ == "__main__":
    main()
