#!/usr/bin/env python3
"""Validates one Chrome/Perfetto trace written by `rvpredict --profile`
(the structural half of scripts/check_profile.sh; see
docs/OBSERVABILITY.md for the format)."""

import json
import sys


def main():
    if len(sys.argv) != 2:
        print("usage: check_profile.py <trace.json>", file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("traceEvents missing or empty", file=sys.stderr)
        return 1

    named_tids = set()
    last_ts = -1
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") != "thread_name" or "name" not in e.get(
                    "args", {}):
                print("bad metadata event: %r" % e, file=sys.stderr)
                return 1
            named_tids.add(e["tid"])
            continue
        if ph not in ("X", "C", "i"):
            print("unexpected phase %r" % ph, file=sys.stderr)
            return 1
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < last_ts:
            print("timestamps not monotone at %r" % e, file=sys.stderr)
            return 1
        last_ts = ts
        if ph == "X" and (not isinstance(e.get("dur"), int)
                          or e["dur"] < 0):
            print("span without a valid dur: %r" % e, file=sys.stderr)
            return 1
        if ph == "C" and "value" not in e.get("args", {}):
            print("counter without a value: %r" % e, file=sys.stderr)
            return 1
        if e.get("tid") not in named_tids:
            print("event on unnamed tid %r" % e.get("tid"),
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
