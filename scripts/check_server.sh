#!/bin/sh
# rvpredictd fault drills (docs/SERVER.md, docs/ROBUSTNESS.md): every
# injectable network/server fault kills exactly one session — the victim
# gets a typed ERROR (or a torn socket), the next session is byte-identical
# to batch, and the daemon keeps serving and still drains cleanly on
# SIGTERM. Plus the operational contracts: load shedding is observable
# (`degraded` REPORT frames, server.degraded_windows), backpressure fires
# under a tiny watermark, the session budget refuses the N+1th client, a
# stalled client is reaped by --stall-timeout, and a session replayed with
# the same checkpoint key resumes instead of recomputing.
#
# Usage: scripts/check_server.sh <rvpredict> <rvpredictd> <rvpclient>
set -eu

RVPREDICT="${1:?usage: check_server.sh <rvpredict> <rvpredictd> <rvpclient>}"
RVPREDICTD="${2:?missing rvpredictd}"
RVPCLIENT="${3:?missing rvpclient}"
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

FAILURES=0
CHECKS=0

normalize() { sed 's/ in [0-9.]*s/ in Xs/' "$1"; }

fail() {
  echo "FAIL [$1]"
  shift
  for F in "$@"; do
    echo "    --- $F ---"
    sed 's/^/    /' "$F" 2>/dev/null || true
  done
  FAILURES=$((FAILURES + 1))
}

wait_for_socket() {
  I=0
  while [ ! -S "$1" ]; do
    I=$((I + 1))
    [ "$I" -gt 100 ] && { echo "daemon never bound $1"; exit 1; }
    sleep 0.1
  done
}

start_daemon() {
  SOCK="$WORK/d.sock"
  rm -f "$SOCK"
  "$RVPREDICTD" --socket="$SOCK" --stats-json="$WORK/stats.json" "$@" \
    2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  wait_for_socket "$SOCK"
}

# stop_daemon [expected-rc]: SIGTERM must drain to the expected code
# (default 0), and the stats JSON must be written.
stop_daemon() {
  WANT="${1:-0}"
  kill -TERM "$DAEMON_PID"
  RC=0
  wait "$DAEMON_PID" || RC=$?
  DAEMON_PID=""
  CHECKS=$((CHECKS + 1))
  if [ "$RC" -ne "$WANT" ]; then
    echo "FAIL [drain]: daemon exited $RC after SIGTERM (wanted $WANT)"
    sed 's/^/    /' "$WORK/daemon.err"
    FAILURES=$((FAILURES + 1))
  fi
}

# expect_counter <name> <min> <label>: reads the daemon's stats JSON.
expect_counter() {
  NAME="$1"; MIN="$2"; LABEL="$3"
  CHECKS=$((CHECKS + 1))
  VALUE=$(sed -n "s/.*\"$NAME\":\([0-9][0-9]*\).*/\1/p" "$WORK/stats.json" \
    | head -1)
  if [ -z "$VALUE" ] || [ "$VALUE" -lt "$MIN" ]; then
    fail "$LABEL: $NAME = '${VALUE:-absent}' (wanted >= $MIN)" \
      "$WORK/stats.json"
  fi
}

# clean_client <label>: a fresh session must still match batch exactly.
clean_client() {
  LABEL="$1"
  RC=0
  "$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 \
    --summary-only >"$WORK/clean_out.txt" 2>"$WORK/clean_err.txt" || RC=$?
  CHECKS=$((CHECKS + 1))
  if [ "$RC" -ne 0 ]; then
    fail "$LABEL: clean follow-up client exited $RC" "$WORK/clean_err.txt"
  elif ! normalize "$WORK/clean_out.txt" >"$WORK/clean_out.n" || \
       ! cmp -s "$WORK/batch.n" "$WORK/clean_out.n"; then
    fail "$LABEL: clean follow-up summary differs from batch" \
      "$WORK/batch.txt" "$WORK/clean_out.txt"
  fi
}

# daemon_alive <label>: the fault must never take the server down.
daemon_alive() {
  CHECKS=$((CHECKS + 1))
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    fail "$1: daemon died"
    wait "$DAEMON_PID" || true
    DAEMON_PID=""
  fi
}

"$RVPREDICT" record bench:bufwriter --out="$WORK/racy.txt" >/dev/null
"$RVPREDICT" detect "$WORK/racy.txt" --window=30 >"$WORK/batch.txt" || true
normalize "$WORK/batch.txt" >"$WORK/batch.n"

# --- Server-side fault sites: one victim, daemon and others unharmed ----
# Each site fires once (=1): the first session trips it, the follow-up
# session must be byte-identical to batch.

for SITE in net.frame_garble net.short_write server.worker_abort; do
  start_daemon --inject-faults="$SITE=1"
  RC=0
  "$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 \
    --summary-only >"$WORK/victim_out.txt" 2>"$WORK/victim_err.txt" || RC=$?
  CHECKS=$((CHECKS + 1))
  # The victim must fail loudly — an injected fault may never pass silently
  # ... unless the garbled byte landed somewhere harmless, in which case
  # the summary must still match batch.
  if [ "$RC" -eq 0 ]; then
    if ! normalize "$WORK/victim_out.txt" >"$WORK/victim_out.n" || \
       ! cmp -s "$WORK/batch.n" "$WORK/victim_out.n"; then
      fail "$SITE: victim 'succeeded' with a wrong summary" \
        "$WORK/victim_out.txt" "$WORK/victim_err.txt"
    fi
  fi
  daemon_alive "$SITE"
  clean_client "$SITE"
  stop_daemon
done

# server.worker_abort specifically must surface as a typed ERROR frame and
# count in the stats.
start_daemon --inject-faults=server.worker_abort=1
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 \
  >"$WORK/victim_out.txt" 2>"$WORK/victim_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -eq 0 ] || ! grep -q "server error:" "$WORK/victim_err.txt"; then
  fail "worker_abort: victim got no ERROR frame (rc=$RC)" \
    "$WORK/victim_out.txt" "$WORK/victim_err.txt"
fi
daemon_alive worker_abort
clean_client worker_abort
stop_daemon
expect_counter server.worker_aborts 1 worker_abort
expect_counter server.sessions_errored 1 worker_abort

# --- Client stall: --stall-timeout reaps the session ---------------------

start_daemon --stall-timeout=1
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 \
  --inject-faults=net.client_stall=1 --stall-ms=4000 --chunk=512 \
  >"$WORK/stall_out.txt" 2>"$WORK/stall_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -eq 0 ]; then
  fail "client_stall: stalled client was not reaped" \
    "$WORK/stall_out.txt" "$WORK/stall_err.txt"
fi
daemon_alive client_stall
clean_client client_stall
stop_daemon
expect_counter server.stall_timeouts 1 client_stall

# --- Load shedding: degraded windows are visible and counted -------------
# jobs=1 with an instant upload queues windows behind the first analysis,
# so a threshold of 1 forces the later windows onto the WCP tier.

start_daemon --jobs=1 --degrade-threshold=1
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 \
  >"$WORK/degraded_out.txt" 2>/dev/null || true
CHECKS=$((CHECKS + 1))
if ! grep -q '^window [0-9]* degraded' "$WORK/degraded_out.txt"; then
  fail "degrade: no degraded REPORT frame" "$WORK/degraded_out.txt"
fi
stop_daemon
expect_counter server.degraded_windows 1 degrade
expect_counter server.windows_analyzed 1 degrade

# --- Backpressure: a tiny watermark pauses reads and is counted ----------

start_daemon --high-watermark=2048 --low-watermark=512 \
  --max-queued-windows=1
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=10 --chunk=256 \
  --summary-only >/dev/null 2>&1 || true
stop_daemon
expect_counter server.backpressure_events 1 backpressure

# --- Byte watermark while a worker is in flight --------------------------
# server.worker_stall pins the first window's analysis for 600ms while the
# client trickles the rest of the trace; the inbox must cross the byte
# watermark and pause reads (with the window budget set far out of reach),
# and the summary must still be byte-identical to batch afterwards.

start_daemon --jobs=1 --inject-faults=server.worker_stall=1 \
  --high-watermark=512 --low-watermark=128 --max-queued-windows=100000
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 --chunk=128 \
  --delay-ms=10 --summary-only >"$WORK/inflight_out.txt" \
  2>"$WORK/inflight_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -ne 0 ]; then
  fail "inflight-backpressure: client exited $RC" "$WORK/inflight_err.txt"
elif ! normalize "$WORK/inflight_out.txt" >"$WORK/inflight_out.n" || \
     ! cmp -s "$WORK/batch.n" "$WORK/inflight_out.n"; then
  fail "inflight-backpressure: summary differs from batch" \
    "$WORK/batch.txt" "$WORK/inflight_out.txt"
fi
stop_daemon
expect_counter server.backpressure_events 1 inflight-backpressure

# --- Bounded drain: a wedged worker cannot hold SIGTERM open forever -----
# Every window's analysis stalls 600ms (~12 windows queue up, several
# seconds of work); with --drain-timeout=1 the daemon must still exit 0
# about a second after SIGTERM, dropping what is left and counting the
# forced drain.

start_daemon --jobs=1 --inject-faults=server.worker_stall=1+ \
  --drain-timeout=1
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=5 \
  --summary-only >/dev/null 2>&1 &
SLOW_PID=$!
sleep 0.3
DRAIN_T0=$(date +%s)
stop_daemon
DRAIN_T1=$(date +%s)
wait "$SLOW_PID" 2>/dev/null || true
CHECKS=$((CHECKS + 1))
if [ $((DRAIN_T1 - DRAIN_T0)) -gt 3 ]; then
  fail "forced-drain: SIGTERM took $((DRAIN_T1 - DRAIN_T0))s (wanted <= 3)"
fi
expect_counter server.drain_forced 1 forced-drain

# --- Session budget: the N+1th client is refused -------------------------

start_daemon --max-sessions=1
# Park one slow session (~2s of trickled upload), then try a second one.
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 --chunk=64 \
  --delay-ms=40 --summary-only >/dev/null 2>&1 &
SLOW_PID=$!
sleep 0.3
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 \
  --summary-only >"$WORK/refused_out.txt" 2>"$WORK/refused_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -eq 0 ] || \
   ! grep -q "session budget exhausted" "$WORK/refused_err.txt"; then
  fail "budget: second client was not refused (rc=$RC)" \
    "$WORK/refused_out.txt" "$WORK/refused_err.txt"
fi
RC=0
wait "$SLOW_PID" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -ne 0 ]; then
  fail "budget: the admitted slow session failed (rc=$RC)"
fi
stop_daemon
expect_counter server.sessions_refused 1 budget

# --- Crash recovery: a replayed session resumes from its checkpoint ------

start_daemon --checkpoint-root="$WORK/ckpt"
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 --ckpt=drill \
  --summary-only >"$WORK/first_out.txt" 2>/dev/null || RC=$?
CHECKS=$((CHECKS + 1))
[ "$RC" -ne 0 ] && fail "recovery: first checkpointed session failed"
stop_daemon

start_daemon --checkpoint-root="$WORK/ckpt"
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 --ckpt=drill \
  --summary-only >"$WORK/second_out.txt" 2>/dev/null || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -ne 0 ]; then
  fail "recovery: replayed session failed"
elif ! normalize "$WORK/second_out.txt" >"$WORK/second_out.n" || \
     ! cmp -s "$WORK/batch.n" "$WORK/second_out.n"; then
  fail "recovery: resumed summary differs from batch" \
    "$WORK/batch.txt" "$WORK/second_out.txt"
fi
stop_daemon
expect_counter server.sessions_recovered 1 recovery

# A different analysis under the same key must be refused, not resumed.
start_daemon --checkpoint-root="$WORK/ckpt"
RC=0
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=50 --ckpt=drill \
  --summary-only >/dev/null 2>"$WORK/mismatch_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -eq 0 ] || \
   ! grep -q "different analysis" "$WORK/mismatch_err.txt"; then
  fail "recovery: fingerprint mismatch not refused (rc=$RC)" \
    "$WORK/mismatch_err.txt"
fi
daemon_alive recovery-mismatch
clean_client recovery-mismatch
stop_daemon

# --- Usage errors exit 2 before any listener binds -----------------------

RC=0
"$RVPREDICTD" --socket="$WORK/never.sock" --technique=siad \
  2>"$WORK/tech_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -ne 2 ] || ! grep -q -- "--technique must be" "$WORK/tech_err.txt"
then
  fail "usage: bad --technique not refused (rc=$RC)" "$WORK/tech_err.txt"
fi

# --- A live socket path is never stolen ----------------------------------
# A second daemon on the same path must refuse to start, leave the first
# one reachable, and leave its socket file in place on exit.

start_daemon
RC=0
"$RVPREDICTD" --socket="$SOCK" 2>"$WORK/steal_err.txt" || RC=$?
CHECKS=$((CHECKS + 1))
if [ "$RC" -ne 2 ] || \
   ! grep -q "already served by a running daemon" "$WORK/steal_err.txt"; then
  fail "steal: second daemon not refused (rc=$RC)" "$WORK/steal_err.txt"
fi
daemon_alive steal
clean_client steal
stop_daemon

# --- TCP-only mode: --port with no --socket serves end to end ------------

TCP_OK=0
for TCP_PORT in $((20000 + $$ % 20000)) $((25000 + $$ % 10000)) 28413; do
  "$RVPREDICTD" --port="$TCP_PORT" --stats-json="$WORK/stats.json" \
    2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  I=0
  while ! grep -q "listening on 127.0.0.1:$TCP_PORT" "$WORK/daemon.err" \
      2>/dev/null; do
    I=$((I + 1))
    if [ "$I" -gt 50 ]; then break; fi
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$DAEMON_PID" 2>/dev/null; then
    TCP_OK=1
    break
  fi
  wait "$DAEMON_PID" 2>/dev/null || true # port collision: try the next
  DAEMON_PID=""
done
CHECKS=$((CHECKS + 1))
if [ "$TCP_OK" -ne 1 ]; then
  fail "tcp-only: daemon never came up on a TCP port" "$WORK/daemon.err"
else
  RC=0
  "$RVPCLIENT" "$WORK/racy.txt" --port="$TCP_PORT" --window=30 \
    --summary-only >"$WORK/tcp_out.txt" 2>"$WORK/tcp_err.txt" || RC=$?
  CHECKS=$((CHECKS + 1))
  if [ "$RC" -ne 0 ]; then
    fail "tcp-only: client exited $RC" "$WORK/tcp_err.txt"
  elif ! normalize "$WORK/tcp_out.txt" >"$WORK/tcp_out.n" || \
       ! cmp -s "$WORK/batch.n" "$WORK/tcp_out.n"; then
    fail "tcp-only: summary differs from batch" \
      "$WORK/batch.txt" "$WORK/tcp_out.txt"
  fi
  stop_daemon
fi

# --- SIGTERM mid-session: drain still finishes the open session ----------

start_daemon
"$RVPCLIENT" "$WORK/racy.txt" --socket="$SOCK" --window=30 --chunk=64 \
  --delay-ms=40 --summary-only >"$WORK/drain_out.txt" 2>/dev/null &
SLOW_PID=$!
sleep 0.3
stop_daemon
RC=0
wait "$SLOW_PID" || RC=$?
CHECKS=$((CHECKS + 1))
# The drained session analyzed whatever had arrived by the SIGTERM; it
# must still have received a summary (any prefix's report ends in
# "race(s)"), not a torn socket.
if [ "$RC" -ne 0 ] || ! grep -q "race(s)" "$WORK/drain_out.txt"; then
  fail "drain: mid-upload session got no summary (rc=$RC)" \
    "$WORK/drain_out.txt"
fi

echo "check_server: $CHECKS checks, $FAILURES failure(s)"
[ "$FAILURES" -eq 0 ]
