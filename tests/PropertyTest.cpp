//===- tests/PropertyTest.cpp - Cross-detector invariants --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property sweeps over random MiniRV programs. For every fuzzed trace:
///
///  * detection-power containment: HB ⊆ CP (CP relaxes HB edges) and
///    Said ⊆ RV (Said's races are real, RV is maximal); for HB/CP, which
///    are sound only up to the first race, the weaker implication "any
///    report implies RV reports something" is asserted;
///  * every maximal-technique race carries a validated witness;
///  * RV race sets agree between the in-tree CDCL(T) solver and Z3;
///  * RV races are a subset of the quick check's potential races;
///  * the `Oa := Ob` substitution and the naive adjacency encoding find
///    the same races.
///
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "runtime/Interpreter.h"
#include "trace/Consistency.h"
#include "workloads/Fuzzer.h"

#include <gtest/gtest.h>

#include <set>

using namespace rvp;

namespace {

std::set<uint64_t> signatureSet(const DetectionResult &R) {
  std::set<uint64_t> Sigs;
  for (const RaceReport &Race : R.Races)
    Sigs.insert(Race.Sig.key());
  return Sigs;
}

bool isSubset(const std::set<uint64_t> &Sub, const std::set<uint64_t> &Sup) {
  for (uint64_t Key : Sub)
    if (!Sup.count(Key))
      return false;
  return true;
}

Trace fuzzTrace(uint64_t Seed) {
  std::string Source = fuzzProgram(Seed);
  Trace T;
  RunResult Result;
  std::string Error;
  RandomScheduler S(Seed * 31 + 1);
  RunLimits Limits;
  Limits.MaxEvents = 20000;
  EXPECT_TRUE(recordTrace(Source, T, Result, Error, &S, Limits)) << Error;
  return T;
}

} // namespace

class DetectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorPropertyTest, ContainmentAndWitnesses) {
  Trace T = fuzzTrace(GetParam());
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 20;

  DetectionResult Hb = detectRaces(T, Technique::Hb, Options);
  DetectionResult Cp = detectRaces(T, Technique::Cp, Options);
  DetectionResult Said = detectRaces(T, Technique::Said, Options);
  DetectionResult Rv = detectRaces(T, Technique::Maximal, Options);

  auto HbSigs = signatureSet(Hb);
  auto CpSigs = signatureSet(Cp);
  auto SaidSigs = signatureSet(Said);
  auto RvSigs = signatureSet(Rv);

  // CP drops a subset of HB's edges, so its race set always contains HB's.
  EXPECT_TRUE(isSubset(HbSigs, CpSigs))
      << "seed " << GetParam() << ": CP must subsume HB";
  // Said's races are real (whole-trace consistency keeps every branch's
  // read history), so maximality makes them a subset of RV's.
  EXPECT_TRUE(isSubset(SaidSigs, RvSigs))
      << "seed " << GetParam() << ": RV must subsume Said";
  // HB/CP are only sound up to the *first* race: later reports may be
  // infeasible under the maximal causal model (a branch-guarded event's
  // read history would change), so set containment does not hold for
  // them. What must hold: if they report anything, a real race exists,
  // and RV finds all real races.
  if (!HbSigs.empty() || !CpSigs.empty()) {
    EXPECT_FALSE(RvSigs.empty())
        << "seed " << GetParam()
        << ": an HB/CP report implies some real race exists";
  }

  // Soundness machinery: every RV race has a validated witness.
  for (const RaceReport &Race : Rv.Races)
    EXPECT_TRUE(Race.WitnessValid)
        << "seed " << GetParam() << " race " << Race.LocFirst << ","
        << Race.LocSecond;

  // The quick check over-approximates: RV races pass it.
  EXPECT_LE(RvSigs.size(), Rv.Stats.QcPassed) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DetectorPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

class ExtensionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtensionPropertyTest, AtomicityAndDeadlockWitnessesValidate) {
  Trace T = fuzzTrace(GetParam() + 3000);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 20;

  AtomicityResult Atom = detectAtomicityViolations(T, Options);
  for (const AtomicityReport &V : Atom.Violations) {
    EXPECT_TRUE(V.WitnessValid)
        << "seed " << GetParam() << " violation " << V.LocFirst << ","
        << V.LocRemote << "," << V.LocSecond;
  }
  DeadlockResult Dl = detectDeadlocks(T, Options);
  for (const DeadlockReport &D : Dl.Deadlocks) {
    EXPECT_TRUE(D.WitnessValid)
        << "seed " << GetParam() << " deadlock " << D.LocRequestA << ","
        << D.LocRequestB;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExtensionPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// Best-effort replay: drive the interpreter with each witness's thread
// schedule (truncated just past the racing pair) and count how often the
// race manifests (the two locations adjacent, different threads). Branches
// that the race does not depend on may diverge in replay, so this cannot
// be asserted per witness; across the sweep a healthy majority manifests.
class ReplayPropertyTest : public ::testing::Test {};

TEST_F(ReplayPropertyTest, WitnessSchedulesManifestRaces) {
  size_t Attempted = 0, Manifested = 0;
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    std::string Source = fuzzProgram(Seed);
    Trace T;
    RunResult Run;
    std::string Error;
    RandomScheduler Recorder(Seed * 31 + 1);
    RunLimits Limits;
    Limits.MaxEvents = 20000;
    if (!recordTrace(Source, T, Run, Error, &Recorder, Limits))
      continue;
    DetectorOptions Options;
    Options.PerCopBudgetSeconds = 20;
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    size_t PerSeed = 0;
    for (const RaceReport &Race : R.Races) {
      if (!Race.WitnessValid || PerSeed++ >= 3)
        break;
      // Schedule up to and including both racing events.
      size_t Cut = 0;
      for (size_t I = 0; I < Race.Witness.size(); ++I)
        if (Race.Witness[I] == Race.First ||
            Race.Witness[I] == Race.Second)
          Cut = I;
      std::vector<ThreadId> Schedule;
      for (size_t I = 0; I <= Cut; ++I)
        Schedule.push_back(T[Race.Witness[I]].Tid);
      Trace Replayed;
      RunResult ReplayRun;
      ReplayScheduler S(Schedule);
      if (!recordTrace(Source, Replayed, ReplayRun, Error, &S, Limits))
        continue;
      ++Attempted;
      for (EventId Id = 0; Id + 1 < Replayed.size(); ++Id) {
        const Event &A = Replayed[Id];
        const Event &B = Replayed[Id + 1];
        if (A.Tid == B.Tid || A.Loc == UnknownLoc || B.Loc == UnknownLoc)
          continue;
        const std::string &LocA = Replayed.locName(A.Loc);
        const std::string &LocB = Replayed.locName(B.Loc);
        if ((LocA == Race.LocFirst && LocB == Race.LocSecond) ||
            (LocA == Race.LocSecond && LocB == Race.LocFirst)) {
          ++Manifested;
          break;
        }
      }
    }
  }
  ASSERT_GT(Attempted, 10u) << "the sweep should produce enough witnesses";
  EXPECT_GT(Manifested * 2, Attempted)
      << "a majority of witness schedules should manifest their race ("
      << Manifested << "/" << Attempted << ")";
}

class WindowingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowingPropertyTest, WindowedRacesAreASubsetOfWholeTrace) {
  // A windowed reordering extends to a whole-trace reordering (the
  // prefix stays as recorded), so windowing can only lose races, never
  // invent them.
  Trace T = fuzzTrace(GetParam() + 4000);
  DetectorOptions Whole;
  Whole.WindowSize = 0;
  Whole.PerCopBudgetSeconds = 20;
  DetectorOptions Windowed = Whole;
  Windowed.WindowSize = 60;

  auto WholeSigs = signatureSet(detectRaces(T, Technique::Maximal, Whole));
  auto WindowedSigs =
      signatureSet(detectRaces(T, Technique::Maximal, Windowed));
  EXPECT_TRUE(isSubset(WindowedSigs, WholeSigs)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowingPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

class SolverAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverAgreementTest, IdlAndZ3FindTheSameRaces) {
  Trace T = fuzzTrace(GetParam() + 1000);
  DetectorOptions Idl;
  Idl.SolverName = "idl";
  Idl.PerCopBudgetSeconds = 20;
  DetectorOptions Z3 = Idl;
  Z3.SolverName = "z3";

  DetectionResult A = detectRaces(T, Technique::Maximal, Idl);
  DetectionResult B = detectRaces(T, Technique::Maximal, Z3);
  EXPECT_EQ(signatureSet(A), signatureSet(B)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverAgreementTest,
                         ::testing::Range<uint64_t>(0, 12));

class EncodingAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingAgreementTest, SubstitutionMatchesNaiveAdjacency) {
  Trace T = fuzzTrace(GetParam() + 2000);
  if (T.size() > 400)
    GTEST_SKIP() << "naive adjacency encoding is quadratic; keep it small";
  DetectorOptions Subst;
  Subst.PerCopBudgetSeconds = 20;
  DetectorOptions Naive = Subst;
  Naive.SubstituteRaceVars = false;

  DetectionResult A = detectRaces(T, Technique::Maximal, Subst);
  DetectionResult B = detectRaces(T, Technique::Maximal, Naive);
  EXPECT_EQ(signatureSet(A), signatureSet(B)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncodingAgreementTest,
                         ::testing::Range<uint64_t>(0, 10));
