//===- tests/DiffLogicTest.cpp - Order-graph theory tests ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/DiffLogic.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace rvp;

namespace {

Lit reason(uint32_t N) { return Lit::pos(N); }

} // namespace

TEST(OrderGraph, AcceptsChain) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  EXPECT_TRUE(G.addEdge(1, 2, reason(0), Cycle));
  EXPECT_TRUE(G.addEdge(2, 3, reason(1), Cycle));
  EXPECT_TRUE(G.addEdge(3, 4, reason(2), Cycle));
  EXPECT_LT(G.positionOf(1), G.positionOf(2));
  EXPECT_LT(G.positionOf(2), G.positionOf(3));
  EXPECT_LT(G.positionOf(3), G.positionOf(4));
}

TEST(OrderGraph, DetectsDirectCycle) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  EXPECT_TRUE(G.addEdge(1, 2, reason(0), Cycle));
  EXPECT_FALSE(G.addEdge(2, 1, reason(1), Cycle));
  // Explanation covers both edges.
  std::set<uint32_t> Reasons;
  for (Lit L : Cycle)
    Reasons.insert(L.X);
  EXPECT_TRUE(Reasons.count(reason(0).X));
  EXPECT_TRUE(Reasons.count(reason(1).X));
}

TEST(OrderGraph, DetectsLongCycle) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  for (uint32_t I = 0; I < 9; ++I)
    ASSERT_TRUE(G.addEdge(I, I + 1, reason(I), Cycle));
  EXPECT_FALSE(G.addEdge(9, 0, reason(9), Cycle));
  EXPECT_EQ(Cycle.size(), 10u) << "explanation should cover the whole cycle";
}

TEST(OrderGraph, SelfEdgeIsImmediateCycle) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  EXPECT_FALSE(G.addEdge(3, 3, reason(0), Cycle));
  ASSERT_EQ(Cycle.size(), 1u);
  EXPECT_EQ(Cycle[0].X, reason(0).X);
}

TEST(OrderGraph, GraphUnchangedAfterRejectedEdge) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  ASSERT_TRUE(G.addEdge(1, 2, reason(0), Cycle));
  ASSERT_FALSE(G.addEdge(2, 1, reason(1), Cycle));
  EXPECT_EQ(G.numEdges(), 1u);
  // The graph still accepts consistent extensions.
  EXPECT_TRUE(G.addEdge(2, 3, reason(2), Cycle));
  EXPECT_TRUE(G.addEdge(1, 3, reason(3), Cycle));
}

TEST(OrderGraph, PopEdgeRestores) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  ASSERT_TRUE(G.addEdge(1, 2, reason(0), Cycle));
  ASSERT_TRUE(G.addEdge(2, 3, reason(1), Cycle));
  ASSERT_FALSE(G.addEdge(3, 1, reason(2), Cycle));
  G.popEdge(); // removes 2->3
  EXPECT_TRUE(G.addEdge(3, 1, reason(2), Cycle))
      << "after removing 2->3 the edge 3->1 is consistent";
}

TEST(OrderGraph, ReorderAgainstInsertionOrder) {
  // Insert nodes in one order, constrain them in the reverse order; the
  // Pearce-Kelly reshuffle must fix all positions.
  OrderGraph G;
  std::vector<Lit> Cycle;
  for (uint32_t I = 0; I < 10; ++I)
    G.ensureNode(I);
  for (uint32_t I = 10; I-- > 1;)
    ASSERT_TRUE(G.addEdge(I, I - 1, reason(I), Cycle));
  for (uint32_t I = 1; I < 10; ++I)
    EXPECT_LT(G.positionOf(I), G.positionOf(I - 1));
}

TEST(OrderGraph, Reaches) {
  OrderGraph G;
  std::vector<Lit> Cycle;
  G.addEdge(1, 2, reason(0), Cycle);
  G.addEdge(2, 3, reason(1), Cycle);
  G.addEdge(4, 5, reason(2), Cycle);
  EXPECT_TRUE(G.reaches(1, 3));
  EXPECT_FALSE(G.reaches(3, 1));
  EXPECT_FALSE(G.reaches(1, 5));
  EXPECT_FALSE(G.reaches(1, 99));
}

// Property sweep: random edge insertions; the graph must report a cycle
// exactly when a cycle exists among accepted edges, and positions must be
// a valid topological order of the accepted edges.
class OrderGraphRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderGraphRandomTest, MatchesOfflineCycleCheck) {
  Rng R(GetParam());
  constexpr uint32_t NumNodes = 12;
  OrderGraph G;
  std::vector<std::pair<uint32_t, uint32_t>> Accepted;

  auto offlineAcyclicWith =
      [&](std::pair<uint32_t, uint32_t> Extra) {
        std::vector<std::vector<uint32_t>> Adj(NumNodes);
        for (auto [F, T] : Accepted)
          Adj[F].push_back(T);
        Adj[Extra.first].push_back(Extra.second);
        // Kahn's algorithm.
        std::vector<uint32_t> InDeg(NumNodes, 0);
        for (uint32_t N = 0; N < NumNodes; ++N)
          for (uint32_t M : Adj[N])
            ++InDeg[M];
        std::vector<uint32_t> Queue;
        for (uint32_t N = 0; N < NumNodes; ++N)
          if (InDeg[N] == 0)
            Queue.push_back(N);
        uint32_t Seen = 0;
        while (!Queue.empty()) {
          uint32_t N = Queue.back();
          Queue.pop_back();
          ++Seen;
          for (uint32_t M : Adj[N])
            if (--InDeg[M] == 0)
              Queue.push_back(M);
        }
        return Seen == NumNodes;
      };

  std::vector<Lit> Cycle;
  for (uint32_t Step = 0; Step < 60; ++Step) {
    uint32_t F = static_cast<uint32_t>(R.below(NumNodes));
    uint32_t T = static_cast<uint32_t>(R.below(NumNodes));
    if (F == T)
      continue;
    bool ExpectOk = offlineAcyclicWith({F, T});
    Cycle.clear();
    bool GotOk = G.addEdge(F, T, reason(Step), Cycle);
    ASSERT_EQ(GotOk, ExpectOk)
        << "edge " << F << "->" << T << " step " << Step << " seed "
        << GetParam();
    if (GotOk)
      Accepted.push_back({F, T});
    else
      EXPECT_GE(Cycle.size(), 2u);
  }

  // Positions form a topological order of all accepted edges.
  for (auto [F, T] : Accepted)
    EXPECT_LT(G.positionOf(F), G.positionOf(T));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderGraphRandomTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(DiffLogicTheory, BindsAndAsserts) {
  DiffLogicTheory Theory;
  Theory.bindLit(Lit::pos(0), 10, 20);
  Theory.bindLit(Lit::neg(0), 20, 10);
  Theory.bindLit(Lit::pos(1), 20, 30);

  std::vector<Lit> Conflict;
  EXPECT_TRUE(Theory.assertLit(Lit::pos(0), Conflict));
  EXPECT_TRUE(Theory.assertLit(Lit::pos(1), Conflict));
  // Unbound literal (a Tseitin gate) is ignored.
  EXPECT_TRUE(Theory.assertLit(Lit::pos(77), Conflict));

  // Asserting 30<10 would close a cycle 10<20<30<10.
  Theory.bindLit(Lit::pos(2), 30, 10);
  EXPECT_FALSE(Theory.assertLit(Lit::pos(2), Conflict));
  EXPECT_EQ(Conflict.size(), 3u);
  for (Lit L : Conflict)
    EXPECT_TRUE(L.sign()) << "conflict clause negates asserted literals";

  // Undo 20<30, then 30<10 fits.
  Theory.undoLit(Lit::pos(1));
  Conflict.clear();
  EXPECT_TRUE(Theory.assertLit(Lit::pos(2), Conflict));
}

// Property sweep: random interleavings of edge additions and pops; the
// graph must agree with an offline cycle check over the live edge set at
// every step, and positions must stay topological.
class OrderGraphUndoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderGraphUndoTest, AddPopInterleavingStaysConsistent) {
  Rng R(GetParam());
  constexpr uint32_t NumNodes = 10;
  OrderGraph G;
  std::vector<std::pair<uint32_t, uint32_t>> Live;

  auto offlineAcyclicWith = [&](std::pair<uint32_t, uint32_t> Extra) {
    std::vector<std::vector<uint32_t>> Adj(NumNodes);
    for (auto [F, T] : Live)
      Adj[F].push_back(T);
    Adj[Extra.first].push_back(Extra.second);
    std::vector<uint32_t> InDeg(NumNodes, 0);
    for (uint32_t N = 0; N < NumNodes; ++N)
      for (uint32_t M : Adj[N])
        ++InDeg[M];
    std::vector<uint32_t> Queue;
    for (uint32_t N = 0; N < NumNodes; ++N)
      if (InDeg[N] == 0)
        Queue.push_back(N);
    uint32_t Seen = 0;
    while (!Queue.empty()) {
      uint32_t N = Queue.back();
      Queue.pop_back();
      ++Seen;
      for (uint32_t M : Adj[N])
        if (--InDeg[M] == 0)
          Queue.push_back(M);
    }
    return Seen == NumNodes;
  };

  std::vector<Lit> Cycle;
  for (uint32_t Step = 0; Step < 120; ++Step) {
    if (!Live.empty() && R.chance(2, 5)) {
      G.popEdge();
      Live.pop_back();
      continue;
    }
    uint32_t F = static_cast<uint32_t>(R.below(NumNodes));
    uint32_t T = static_cast<uint32_t>(R.below(NumNodes));
    if (F == T)
      continue;
    bool ExpectOk = offlineAcyclicWith({F, T});
    Cycle.clear();
    bool GotOk = G.addEdge(F, T, Lit::pos(Step), Cycle);
    ASSERT_EQ(GotOk, ExpectOk)
        << "edge " << F << "->" << T << " step " << Step << " seed "
        << GetParam();
    if (GotOk)
      Live.push_back({F, T});
    // Positions remain a topological order of the live edges.
    for (auto [X, Y] : Live)
      ASSERT_LT(G.positionOf(X), G.positionOf(Y))
          << "step " << Step << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderGraphUndoTest,
                         ::testing::Range<uint64_t>(100, 130));
