# Parallel-determinism check: `rvpredict detect --jobs=4` must print
# byte-identical output to `--jobs=1` (reports, witnesses, and summary
# counts; only wall-clock timing is normalized away) on the fixed workload
# under three schedules. Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<trace.rv> -P DeterminismGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

function(run_detect SCHEDULE SEED JOBS OUT_VAR)
  execute_process(
    COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv
            --schedule=${SCHEDULE} --seed=${SEED} --witness=true
            --jobs=${JOBS}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "rvpredict detect --jobs=${JOBS} failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  # Strip the one timing-dependent piece: "... in 1.23s".
  string(REGEX REPLACE " in [0-9.]+s" "" STDOUT "${STDOUT}")
  set(${OUT_VAR} "${STDOUT}" PARENT_SCOPE)
endfunction()

foreach(CONFIG "rr;1" "random;1" "random;2")
  list(GET CONFIG 0 SCHEDULE)
  list(GET CONFIG 1 SEED)
  run_detect(${SCHEDULE} ${SEED} 1 SEQUENTIAL)
  run_detect(${SCHEDULE} ${SEED} 4 PARALLEL)
  if(NOT SEQUENTIAL STREQUAL PARALLEL)
    message(FATAL_ERROR "jobs=4 output differs from jobs=1 for "
            "schedule=${SCHEDULE} seed=${SEED}:\n"
            "--- jobs=1 ---\n${SEQUENTIAL}\n--- jobs=4 ---\n${PARALLEL}")
  endif()
  # Guard against the vacuous pass: the workload must report races.
  if(NOT SEQUENTIAL MATCHES "race\\(s\\)")
    message(FATAL_ERROR "unexpected detect output:\n${SEQUENTIAL}")
  endif()
  if(SEQUENTIAL MATCHES "^RV: 0 race")
    message(FATAL_ERROR "workload found no races; determinism check is vacuous:\n${SEQUENTIAL}")
  endif()
endforeach()

message(STATUS "parallel determinism check passed (3 schedules, jobs 1 vs 4)")
