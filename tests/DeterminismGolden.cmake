# Parallel-determinism check: `rvpredict detect --jobs=4` must print
# byte-identical output to `--jobs=1` (reports, witnesses, and summary
# counts; only wall-clock timing is normalized away) on the fixed workload
# under three schedules. Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<trace.rv> -P DeterminismGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

function(run_detect SCHEDULE SEED JOBS OUT_VAR)
  execute_process(
    COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv
            --schedule=${SCHEDULE} --seed=${SEED} --witness=true
            --jobs=${JOBS}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  # Exit 1 just means findings were reported; >=2 is a usage/internal error.
  if(RC GREATER 1)
    message(FATAL_ERROR "rvpredict detect --jobs=${JOBS} failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  # Strip the one timing-dependent piece: "... in 1.23s".
  string(REGEX REPLACE " in [0-9.]+s" "" STDOUT "${STDOUT}")
  set(${OUT_VAR} "${STDOUT}" PARENT_SCOPE)
endfunction()

foreach(CONFIG "rr;1" "random;1" "random;2")
  list(GET CONFIG 0 SCHEDULE)
  list(GET CONFIG 1 SEED)
  run_detect(${SCHEDULE} ${SEED} 1 SEQUENTIAL)
  run_detect(${SCHEDULE} ${SEED} 4 PARALLEL)
  if(NOT SEQUENTIAL STREQUAL PARALLEL)
    message(FATAL_ERROR "jobs=4 output differs from jobs=1 for "
            "schedule=${SCHEDULE} seed=${SEED}:\n"
            "--- jobs=1 ---\n${SEQUENTIAL}\n--- jobs=4 ---\n${PARALLEL}")
  endif()
  # Guard against the vacuous pass: the workload must report races.
  if(NOT SEQUENTIAL MATCHES "race\\(s\\)")
    message(FATAL_ERROR "unexpected detect output:\n${SEQUENTIAL}")
  endif()
  if(SEQUENTIAL MATCHES "^RV: 0 race")
    message(FATAL_ERROR "workload found no races; determinism check is vacuous:\n${SEQUENTIAL}")
  endif()
endforeach()

# --- Checkpoint kill/resume determinism ---------------------------------
# A run killed at a window barrier (injected detect.abort) and restarted
# with the same flags must print a byte-identical report to a run that was
# never interrupted (docs/ROBUSTNESS.md). --window=5 splits the fixed
# workload into several windows so the kill lands mid-analysis.

set(CKPT_DIR "${CMAKE_CURRENT_BINARY_DIR}/determinism_ckpt")
file(REMOVE_RECURSE "${CKPT_DIR}")

execute_process(
  COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv --schedule=rr
          --seed=1 --witness=true --window=5
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE BASELINE
  ERROR_VARIABLE STDERR)
if(RC GREATER 1)
  message(FATAL_ERROR "uninterrupted baseline failed (${RC}):\n${STDERR}")
endif()
string(REGEX REPLACE " in [0-9.]+s" "" BASELINE "${BASELINE}")

execute_process(
  COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv --schedule=rr
          --seed=1 --witness=true --window=5 --checkpoint=${CKPT_DIR}
          --inject-faults=detect.abort=2
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 3)
  message(FATAL_ERROR "injected detect.abort did not kill the run "
          "(exit ${RC}):\n${STDOUT}\n${STDERR}")
endif()
file(GLOB SNAPSHOTS "${CKPT_DIR}/window-*.ckpt")
list(LENGTH SNAPSHOTS NSNAPSHOTS)
if(NOT NSNAPSHOTS EQUAL 2)
  message(FATAL_ERROR "killed run left ${NSNAPSHOTS} snapshot(s), wanted 2: "
          "${SNAPSHOTS}")
endif()

execute_process(
  COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv --schedule=rr
          --seed=1 --witness=true --window=5 --checkpoint=${CKPT_DIR}
          --stats-json=${CKPT_DIR}/resume_stats.json
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE RESUMED
  ERROR_VARIABLE STDERR)
if(RC GREATER 1)
  message(FATAL_ERROR "resumed run failed (${RC}):\n${RESUMED}\n${STDERR}")
endif()
string(REGEX REPLACE " in [0-9.]+s" "" RESUMED "${RESUMED}")
if(NOT RESUMED STREQUAL BASELINE)
  message(FATAL_ERROR "resumed report differs from the uninterrupted run:\n"
          "--- uninterrupted ---\n${BASELINE}\n--- resumed ---\n${RESUMED}")
endif()
# Guard against the vacuous pass: the second run must actually have
# resumed (skipped the two checkpointed windows) rather than recomputed.
file(READ "${CKPT_DIR}/resume_stats.json" RESUME_STATS)
string(REGEX MATCH "\"detect.resumed_windows\": *([0-9]+)" _ "${RESUME_STATS}")
if(NOT CMAKE_MATCH_1 EQUAL 2)
  message(FATAL_ERROR "resumed run skipped ${CMAKE_MATCH_1} window(s), "
          "wanted 2:\n${RESUME_STATS}")
endif()

message(STATUS "parallel determinism check passed (3 schedules, jobs 1 vs 4; "
        "checkpoint kill/resume byte-identical)")
