# Correctness check for the WCP vector-clock tier (docs/TIERS.md): the
# hybrid tier — WCP pruning MHB-ordered COPs and short-circuiting
# WCP-racy ones past the solver — must print byte-identical output
# (reports, witnesses, summary counts; wall-clock timing normalized away)
# to the solver-only tier, for both SMT techniques, sequentially and with
# --jobs=4, with and without --static-prune, on both fixed workloads.
# Non-vacuity: the hybrid run must actually prune (wcp_pruned_cops > 0)
# and actually skip solves (solver_calls_saved > 0), and a --check-tiers
# run (every COP solved, tiers compared) must pass with zero mismatches.
# Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<prog.rv> -DRACE_WORKLOAD=<prog.rv>
#         -P WcpGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD OR NOT DEFINED RACE_WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -DRACE_WORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

function(run_detect INPUT TIER EXTRA OUT_VAR)
  execute_process(
    COMMAND "${RVPREDICT}" detect "${INPUT}" --seed=1 --schedule=rr
            --witness=true --tier=${TIER} ${EXTRA}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  # Exit 1 just means findings were reported; >=2 is a usage/internal error.
  if(RC GREATER 1)
    message(FATAL_ERROR "rvpredict detect --tier=${TIER} ${EXTRA} on "
            "${INPUT} failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  string(REGEX REPLACE " in [0-9.]+s" "" STDOUT "${STDOUT}")
  set(${OUT_VAR} "${STDOUT}" PARENT_SCOPE)
endfunction()

function(check_pair INPUT EXTRA LABEL)
  run_detect("${INPUT}" smt "${EXTRA}" SMT_OUT)
  run_detect("${INPUT}" hybrid "${EXTRA}" HYBRID_OUT)
  if(NOT SMT_OUT STREQUAL HYBRID_OUT)
    message(FATAL_ERROR "--tier=hybrid changed output for ${LABEL}:\n"
            "--- smt ---\n${SMT_OUT}\n--- hybrid ---\n${HYBRID_OUT}")
  endif()
endfunction()

foreach(INPUT "${WORKLOAD}" "${RACE_WORKLOAD}")
  foreach(TECHNIQUE rv said)
    foreach(JOBS 1 4)
      check_pair("${INPUT}" "--technique=${TECHNIQUE};--jobs=${JOBS}"
                 "${INPUT} technique=${TECHNIQUE} jobs=${JOBS}")
    endforeach()
    check_pair("${INPUT}"
               "--technique=${TECHNIQUE};--jobs=2;--static-prune=true"
               "${INPUT} technique=${TECHNIQUE} static-prune")
  endforeach()
endforeach()

# Non-vacuity: on the prune workload the hybrid tier must prune
# MHB-ordered COPs and save at least one solver call.
execute_process(
  COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --seed=1 --schedule=rr
          --technique=rv --tier=hybrid --stats-json=-
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(RC GREATER 1)
  message(FATAL_ERROR "hybrid stats run failed (${RC}):\n${STDOUT}\n${STDERR}")
endif()
string(REGEX MATCH "\"wcp_pruned_cops\": *([0-9]+)" _ "${STDOUT}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "hybrid tier pruned nothing "
          "(wcp_pruned_cops missing or 0):\n${STDOUT}")
endif()
set(PRUNED ${CMAKE_MATCH_1})
string(REGEX MATCH "\"solver_calls_saved\": *([0-9]+)" _ "${STDOUT}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "hybrid tier saved no solver calls "
          "(solver_calls_saved missing or 0):\n${STDOUT}")
endif()
set(SAVED ${CMAKE_MATCH_1})

# Cross-validation: --check-tiers solves every COP and compares the
# verdicts; both workloads must agree (exit <= 1, zero mismatches).
foreach(INPUT "${WORKLOAD}" "${RACE_WORKLOAD}")
  execute_process(
    COMMAND "${RVPREDICT}" detect "${INPUT}" --seed=1 --schedule=rr
            --technique=rv --tier=hybrid --check-tiers --stats-json=-
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(RC GREATER 1)
    message(FATAL_ERROR "--check-tiers failed on ${INPUT} (${RC}):\n"
            "${STDOUT}\n${STDERR}")
  endif()
  string(REGEX MATCH "\"wcp_mismatches\": *([0-9]+)" _ "${STDOUT}")
  if(NOT CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR "tier mismatch on ${INPUT}: "
            "wcp_mismatches=${CMAKE_MATCH_1}\n${STDOUT}")
  endif()
endforeach()

message(STATUS "wcp tier equivalence check passed "
        "(2 workloads x 2 SMT techniques x 2 jobs + prune, "
        "wcp_pruned_cops=${PRUNED}, solver_calls_saved=${SAVED})")
