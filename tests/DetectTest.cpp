//===- tests/DetectTest.cpp - Detector tests on the paper's examples --------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces every worked example of the paper as an executable check:
/// Figure 1/4 (race (3,10), non-races (4,8) and (12,15)), Figure 2 (cases
/// ① and ②), and the Section 4 array-indexing example, against all four
/// techniques.
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// Figure 4: the trace of Figure 1's execution. Locations are the paper's
/// line numbers ("f3" = line 3).
Trace figure4Trace() {
  TraceBuilder B;
  B.fork("t1", "t2", "f1");
  B.acquire("t1", "l", "f2");
  B.write("t1", "x", 1, "f3");
  B.write("t1", "y", 1, "f4");
  B.release("t1", "l", "f5");
  B.begin("t2", "f6");
  B.acquire("t2", "l", "f7");
  B.read("t2", "y", 1, "f8");
  B.release("t2", "l", "f9");
  B.read("t2", "x", 1, "f10");
  B.branch("t2", "f11");
  B.write("t2", "z", 1, "f12");
  B.end("t2", "f13");
  B.join("t1", "t2", "f14");
  B.read("t1", "z", 1, "f15");
  return B.build();
}

/// Figure 2, case ①: line 3 is a plain read of the volatile y; line 4 is
/// not control-dependent on it, so there is no branch event.
Trace figure2Case1() {
  TraceBuilder B;
  B.write("t1", "x", 1, "g1");
  B.write("t1", "y", 1, "g2", /*IsVolatile=*/true);
  B.read("t2", "y", 1, "g3", /*IsVolatile=*/true);
  B.read("t2", "x", 1, "g4");
  return B.build();
}

/// Figure 2, case ②: line 3 is `while (y == 0);`, so a branch event
/// separates the read of y from the read of x.
Trace figure2Case2() {
  TraceBuilder B;
  B.write("t1", "x", 1, "g1");
  B.write("t1", "y", 1, "g2", /*IsVolatile=*/true);
  B.read("t2", "y", 1, "g3", /*IsVolatile=*/true);
  B.branch("t2", "g3");
  B.read("t2", "x", 1, "g4");
  return B.build();
}

/// The Section 4 array example: (2,7) both access a[0] and are unordered,
/// yet (2,7) is not a race because line 2's index depends on x.
Trace arrayExampleTrace() {
  TraceBuilder B;
  B.acquire("t1", "l", "h1");
  B.read("t1", "x", 0, "h2");   // index read for a[x]
  B.branch("t1", "h2");         // implicit data-flow branch (Section 4)
  B.write("t1", "a[0]", 2, "h2");
  B.release("t1", "l", "h3");
  B.acquire("t2", "l", "h4");
  B.write("t2", "x", 1, "h5");
  B.release("t2", "l", "h6");
  B.write("t2", "a[0]", 1, "h7");
  return B.build();
}

DetectionResult detect(const Trace &T, Technique Tech) {
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  return detectRaces(T, Tech, Options);
}

} // namespace

// ------------------------------------------------------------- Figure 1/4

TEST(Figure1, MaximalDetectsOnlyTheRealRace) {
  Trace T = figure4Trace();
  DetectionResult R = detect(T, Technique::Maximal);
  EXPECT_TRUE(R.hasRaceAt("f3", "f10")) << "the race of Figure 1";
  EXPECT_FALSE(R.hasRaceAt("f4", "f8")) << "(4,8) is ordered by the lock";
  EXPECT_FALSE(R.hasRaceAt("f12", "f15")) << "(12,15) is ordered by join";
  EXPECT_EQ(R.raceCount(), 1u);
}

TEST(Figure1, MaximalWitnessIsValid) {
  Trace T = figure4Trace();
  DetectionResult R = detect(T, Technique::Maximal);
  ASSERT_EQ(R.Races.size(), 1u);
  EXPECT_TRUE(R.Races[0].WitnessValid);
  EXPECT_EQ(R.Races[0].Witness.size(), T.size());
  // The two accesses are adjacent in the witness.
  size_t PosA = 0, PosB = 0;
  for (size_t I = 0; I < R.Races[0].Witness.size(); ++I) {
    if (R.Races[0].Witness[I] == R.Races[0].First)
      PosA = I;
    if (R.Races[0].Witness[I] == R.Races[0].Second)
      PosB = I;
  }
  EXPECT_EQ(PosA + 1, PosB);
}

TEST(Figure1, HbMissesTheRace) {
  DetectionResult R = detect(figure4Trace(), Technique::Hb);
  EXPECT_EQ(R.raceCount(), 0u)
      << "the release->acquire edge orders lines 3 and 10 under HB";
}

TEST(Figure1, CpMissesTheRace) {
  DetectionResult R = detect(figure4Trace(), Technique::Cp);
  EXPECT_EQ(R.raceCount(), 0u)
      << "the critical sections conflict on y, so CP keeps the edge";
}

TEST(Figure1, SaidMissesTheRace) {
  DetectionResult R = detect(figure4Trace(), Technique::Said);
  EXPECT_EQ(R.raceCount(), 0u)
      << "whole-trace consistency forces line 8 to read y=1";
}

TEST(Figure1, QuickCheckCountsPotentialRaces) {
  DetectionResult R = detect(figure4Trace(), Technique::Maximal);
  // (3,10) passes the quick check; (4,8) and (12,15) are lockset- or
  // MHB-filtered.
  EXPECT_EQ(R.Stats.QcPassed, 1u);
  EXPECT_EQ(R.Stats.Cops, 3u);
}

// ------------------------------------------------------------- Figure 2

TEST(Figure2, Case1MaximalDetectsRace) {
  DetectionResult R = detect(figure2Case1(), Technique::Maximal);
  EXPECT_TRUE(R.hasRaceAt("g1", "g4"))
      << "without the branch, line 4 does not depend on line 3";
  EXPECT_EQ(R.raceCount(), 1u);
}

TEST(Figure2, Case2MaximalRejectsRace) {
  DetectionResult R = detect(figure2Case2(), Technique::Maximal);
  EXPECT_FALSE(R.hasRaceAt("g1", "g4"))
      << "the loop's branch makes line 4 control-dependent on the read";
  EXPECT_EQ(R.raceCount(), 0u);
}

TEST(Figure2, HbMissesBothCases) {
  EXPECT_EQ(detect(figure2Case1(), Technique::Hb).raceCount(), 0u)
      << "the volatile write->read edge conservatively orders (1,4)";
  EXPECT_EQ(detect(figure2Case2(), Technique::Hb).raceCount(), 0u);
}

TEST(Figure2, SaidMissesCase1) {
  EXPECT_EQ(detect(figure2Case1(), Technique::Said).raceCount(), 0u)
      << "whole-trace consistency rules out the incomplete trace 3-1-4";
}

// ------------------------------------------------------- Section 4 array

TEST(ArrayExample, MaximalRejectsBecauseOfImplicitDataFlow) {
  DetectionResult R = detect(arrayExampleTrace(), Technique::Maximal);
  EXPECT_FALSE(R.hasRaceAt("h2", "h7"))
      << "rescheduling line 2 next to line 7 would change the index";
  EXPECT_EQ(R.raceCount(), 0u);
}

TEST(ArrayExample, WithoutBranchEventsWouldMisreport) {
  // The same trace minus the implicit branch: an unsound variant that
  // ignores the data flow would claim (2,7) races. This documents why the
  // branch events matter.
  TraceBuilder B;
  B.acquire("t1", "l", "h1");
  B.read("t1", "x", 0, "h2");
  B.write("t1", "a[0]", 2, "h2");
  B.release("t1", "l", "h3");
  B.acquire("t2", "l", "h4");
  B.write("t2", "x", 1, "h5");
  B.release("t2", "l", "h6");
  B.write("t2", "a[0]", 1, "h7");
  Trace T = B.build();
  DetectionResult R = detect(T, Technique::Maximal);
  EXPECT_TRUE(R.hasRaceAt("h2", "h7"))
      << "dropping the branch abstraction loses the index dependence";
}

// -------------------------------------------------- technique separations

namespace {

/// CP > HB: the two critical sections share no variable, so CP drops the
/// lock edge, while HB keeps it and misses the race on x.
Trace cpBeatsHbTrace() {
  TraceBuilder B;
  B.write("t1", "x", 1, "c1");
  B.acquire("t1", "l", "c2");
  B.write("t1", "z", 1, "c3");
  B.release("t1", "l", "c4");
  B.acquire("t2", "l", "c5");
  B.write("t2", "w", 2, "c6");
  B.release("t2", "l", "c7");
  B.write("t2", "x", 2, "c8");
  return B.build();
}

/// Said > CP: the critical sections conflict on z, so CP keeps the edge
/// and misses the race on x; a full consistent reordering still exists.
Trace saidBeatsCpTrace() {
  TraceBuilder B;
  B.write("t1", "x", 1, "s1");
  B.acquire("t1", "l", "s2");
  B.write("t1", "z", 1, "s3");
  B.release("t1", "l", "s4");
  B.acquire("t2", "l", "s5");
  B.write("t2", "z", 2, "s6");
  B.release("t2", "l", "s7");
  B.write("t2", "x", 2, "s8");
  return B.build();
}

} // namespace

TEST(Separations, CpDetectsWhatHbMisses) {
  Trace T = cpBeatsHbTrace();
  EXPECT_EQ(detect(T, Technique::Hb).raceCount(), 0u);
  DetectionResult Cp = detect(T, Technique::Cp);
  EXPECT_TRUE(Cp.hasRaceAt("c1", "c8"));
  DetectionResult Rv = detect(T, Technique::Maximal);
  EXPECT_TRUE(Rv.hasRaceAt("c1", "c8")) << "RV subsumes CP";
}

TEST(Separations, SaidDetectsWhatCpMisses) {
  Trace T = saidBeatsCpTrace();
  EXPECT_EQ(detect(T, Technique::Hb).raceCount(), 0u);
  EXPECT_EQ(detect(T, Technique::Cp).raceCount(), 0u);
  DetectionResult Said = detect(T, Technique::Said);
  EXPECT_TRUE(Said.hasRaceAt("s1", "s8"));
  DetectionResult Rv = detect(T, Technique::Maximal);
  EXPECT_TRUE(Rv.hasRaceAt("s1", "s8")) << "RV subsumes Said";
}

TEST(Separations, CpRuleBOrdersThroughAnotherLock) {
  // The l1 critical sections share no variable directly, but contain
  // CP-ordered events through the conflicting l2 sections; rule (b) must
  // activate the l1 edge and suppress the race on x for CP, while the
  // maximal technique still finds it (the read of z is data-abstract).
  TraceBuilder B;
  B.acquire("t1", "l1", "r1");
  B.acquire("t1", "l2", "r2");
  B.write("t1", "z", 1, "r3");
  B.release("t1", "l2", "r4");
  B.write("t1", "x", 1, "rA"); // race event A, inside CS_l1(t1)
  B.release("t1", "l1", "r5");
  B.acquire("t2", "l2", "r6");
  B.read("t2", "z", 1, "r7");
  B.release("t2", "l2", "r8");
  B.acquire("t2", "l1", "r9");
  B.write("t2", "y", 1, "r10");
  B.release("t2", "l1", "r11");
  B.write("t2", "x", 2, "rB"); // race event B, after CS_l1(t2)
  Trace T = B.build();
  EXPECT_EQ(detect(T, Technique::Hb).raceCount(), 0u);
  DetectionResult Cp = detect(T, Technique::Cp);
  EXPECT_FALSE(Cp.hasRaceAt("rA", "rB"))
      << "rule (b) orders the pair through the z sections";
  DetectionResult Rv = detect(T, Technique::Maximal);
  EXPECT_TRUE(Rv.hasRaceAt("rA", "rB"));
  EXPECT_EQ(detect(T, Technique::Said).raceCount(), 0u)
      << "whole-trace consistency pins the read of z";
}

TEST(Separations, PlainUnsynchronizedRaceFoundByAll) {
  TraceBuilder B;
  B.write("t1", "x", 1, "p1");
  B.write("t2", "x", 2, "p2");
  Trace T = B.build();
  for (Technique Tech : {Technique::Hb, Technique::Cp, Technique::Said,
                         Technique::Maximal}) {
    DetectionResult R = detect(T, Tech);
    EXPECT_TRUE(R.hasRaceAt("p1", "p2")) << techniqueName(Tech);
  }
}

TEST(Separations, ForkJoinOrderingSuppressesAll) {
  TraceBuilder B;
  B.write("t1", "x", 1, "q1");
  B.fork("t1", "t2", "q2");
  B.begin("t2", "q3");
  B.write("t2", "x", 2, "q4");
  B.end("t2", "q5");
  B.join("t1", "t2", "q6");
  B.read("t1", "x", 2, "q7");
  Trace T = B.build();
  for (Technique Tech : {Technique::Hb, Technique::Cp, Technique::Said,
                         Technique::Maximal}) {
    EXPECT_EQ(detect(T, Tech).raceCount(), 0u) << techniqueName(Tech);
  }
}

// ------------------------------------------------------------- options

TEST(Options, NaiveAdjacencyEncodingAgrees) {
  DetectorOptions Options;
  Options.SubstituteRaceVars = false;
  Trace T = figure4Trace();
  DetectionResult R = detectRaces(T, Technique::Maximal, Options);
  EXPECT_TRUE(R.hasRaceAt("f3", "f10"));
  EXPECT_EQ(R.raceCount(), 1u);
}

TEST(Options, QuickCheckOffAgrees) {
  DetectorOptions Options;
  Options.UseQuickCheck = false;
  // Pin the solver-only tier: the point is that every COP reaches the
  // solver without the quick check, and the hybrid WCP prune would
  // intercept the MHB-ordered ones first.
  Options.Tier = DetectTier::Smt;
  Trace T = figure4Trace();
  DetectionResult R = detectRaces(T, Technique::Maximal, Options);
  EXPECT_EQ(R.raceCount(), 1u);
  EXPECT_GE(R.Stats.SolverCalls, 3u)
      << "without the filter every COP reaches the solver";
}

TEST(Options, Z3BackendAgrees) {
  DetectorOptions Options;
  Options.SolverName = "z3";
  Trace T = figure4Trace();
  DetectionResult R = detectRaces(T, Technique::Maximal, Options);
  EXPECT_EQ(R.raceCount(), 1u);
  EXPECT_TRUE(R.hasRaceAt("f3", "f10"));
}

TEST(Options, SmallWindowsLoseCrossWindowRaces) {
  TraceBuilder B;
  B.write("t1", "x", 1, "w1");
  for (int I = 0; I < 10; ++I)
    B.write("t1", "pad", I, "wp" + std::to_string(I));
  B.write("t2", "x", 2, "w2");
  Trace T = B.build();

  DetectorOptions Wide;
  Wide.WindowSize = 0;
  EXPECT_EQ(detectRaces(T, Technique::Maximal, Wide).raceCount(), 1u);

  DetectorOptions Narrow;
  Narrow.WindowSize = 4;
  EXPECT_EQ(detectRaces(T, Technique::Maximal, Narrow).raceCount(), 0u)
      << "the racing accesses fall into different windows";
}

TEST(Options, SignaturePruningDeduplicates) {
  // Two dynamic instances of the same static race: one report.
  TraceBuilder B;
  B.write("t1", "x", 1, "r1");
  B.write("t2", "x", 2, "r2");
  B.write("t1", "x", 3, "r1");
  B.write("t2", "x", 4, "r2");
  Trace T = B.build();
  DetectionResult R = detect(T, Technique::Maximal);
  EXPECT_EQ(R.raceCount(), 1u);
}
