//===- tests/LocksetTest.cpp - LocksetIndex edge cases -----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Edge cases of detect/Lockset beyond the happy path covered in
// DetectInternalsTest: reentrant acquire/release multisets, windows that
// start inside a critical section (release-without-acquire), empty
// locksets, and disjointness with duplicate entries.
//
//===----------------------------------------------------------------------===//

#include "detect/Closure.h"
#include "detect/Lockset.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(LocksetEdge, ReentrantAcquireKeepsLockHeld) {
  // The recorder normally filters reentrancy, but the index must stay a
  // multiset so a hand-built (or future non-filtering) trace is safe: one
  // release of a doubly-acquired lock leaves it held.
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.acquire("t1", "l");  // 1: reentrant
  B.write("t1", "x", 1); // 2: l held twice
  B.release("t1", "l");  // 3: one level released
  B.write("t1", "x", 2); // 4: l still held
  B.release("t1", "l");  // 5
  B.write("t1", "x", 3); // 6: free
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_EQ(Ls.heldAt(2), (std::vector<LockId>{0, 0}));
  EXPECT_EQ(Ls.heldAt(4), (std::vector<LockId>{0}));
  EXPECT_TRUE(Ls.heldAt(6).empty());
}

TEST(LocksetEdge, ReentrantHeldLockIsNotDisjoint) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.acquire("t1", "l");
  B.release("t1", "l");
  B.write("t1", "x", 1); // 3: still holds l (one level)
  B.acquire("t2", "l");
  B.write("t2", "x", 2); // 5: holds l
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_FALSE(Ls.disjoint(3, 5));
}

TEST(LocksetEdge, ReleaseWithoutAcquireIsIgnored) {
  // A window starting inside a critical section sees the release but not
  // the acquire; the index must drop it (under-approximating the held
  // set) instead of corrupting the multiset.
  TraceBuilder B;
  B.acquire("t1", "l");  // 0: outside the window
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.write("t1", "x", 2); // 3
  B.acquire("t2", "l");  // 4
  B.write("t2", "x", 3); // 5
  Trace T = B.build();
  Span Window = {1, 6};
  LocksetIndex Ls(T, Window);
  // Inside the window t1 appears lock-free everywhere: the acquire at 0
  // is invisible and the dangling release at 2 must be a no-op.
  EXPECT_TRUE(Ls.heldAt(1).empty());
  EXPECT_TRUE(Ls.heldAt(3).empty());
  EXPECT_EQ(Ls.heldAt(5), (std::vector<LockId>{0}));
  // Under-approximation direction: the pair looks disjoint (passes the
  // filter) even though the full trace holds a common lock at (1,5).
  EXPECT_TRUE(Ls.disjoint(1, 5));
  LocksetIndex Full(T, T.fullSpan());
  EXPECT_FALSE(Full.disjoint(1, 5));
}

TEST(LocksetEdge, EmptyLocksetsAreDisjoint) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.write("t2", "x", 2); // 1
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_TRUE(Ls.heldAt(0).empty());
  EXPECT_TRUE(Ls.heldAt(1).empty());
  EXPECT_TRUE(Ls.disjoint(0, 1));
  EXPECT_TRUE(Ls.disjoint(0, 0)) << "empty vs itself";
}

TEST(LocksetEdge, DisjointWithMultipleAndDuplicateLocks) {
  TraceBuilder B;
  B.acquire("t1", "a");  // 0
  B.acquire("t1", "b");  // 1
  B.acquire("t1", "b");  // 2: duplicate entry in the multiset
  B.write("t1", "x", 1); // 3: holds {a, b, b}
  B.acquire("t2", "c");
  B.acquire("t2", "b");
  B.write("t2", "x", 2); // 6: holds {b, c}
  B.acquire("t3", "c");
  B.write("t3", "x", 3); // 8: holds {c}
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_FALSE(Ls.disjoint(3, 6)) << "common lock b despite duplicates";
  EXPECT_TRUE(Ls.disjoint(3, 8));
  EXPECT_FALSE(Ls.disjoint(6, 8));
}

TEST(LocksetEdge, HeldAtIsSortedAcrossInterning) {
  // Locks interned in one order, acquired in another: heldAt must come
  // back sorted for the disjointness merge to be valid.
  TraceBuilder B;
  B.trace().internLock("z"); // id 0
  B.trace().internLock("a"); // id 1
  B.acquire("t1", "a");
  B.acquire("t1", "z");
  B.write("t1", "x", 1); // 2
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_EQ(Ls.heldAt(2), (std::vector<LockId>{0, 1}));
}

TEST(LocksetEdge, QuickCheckPassesDanglingReleasePair) {
  // End-to-end over the quick check: the window-start under-approximation
  // makes a lock-protected pair pass (deliberately unsound direction).
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.acquire("t2", "l");  // 3
  B.write("t2", "x", 2); // 4
  B.release("t2", "l");  // 5
  Trace T = B.build();
  Span Window = {1, 6};
  EventClosure Mhb(T, Window, ClosureConfig::mhb());
  QuickCheck Qc(T, Window, Mhb);
  EXPECT_TRUE(Qc.pass({1, 4})) << "filter must err towards passing";
  // Over the full span the common lock is visible and the pair is
  // filtered out.
  EventClosure FullMhb(T, T.fullSpan(), ClosureConfig::mhb());
  QuickCheck FullQc(T, T.fullSpan(), FullMhb);
  EXPECT_FALSE(FullQc.pass({1, 4}));
}
