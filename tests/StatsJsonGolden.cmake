# Golden-file check for `rvpredict detect --stats-json`: runs the fixed
# workload, then asserts the output parses as JSON and carries the Table-1
# fields. Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<trace.rv> -P StatsJsonGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

set(OUT "${CMAKE_CURRENT_BINARY_DIR}/stats_golden.json")

# Pinned to --tier=smt: the solver/encoder assertions below (solves >= 1,
# cone counters) describe the solver pipeline, which the default hybrid
# tier legitimately short-circuits on this workload (docs/TIERS.md). The
# hybrid tier's own fields are checked in a separate run further down.
execute_process(
  COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv --schedule=rr
          --seed=1 --tier=smt --stats-json=${OUT}
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
# Exit 1 just means findings were reported; >=2 is a usage/internal error.
if(RC GREATER 1)
  message(FATAL_ERROR "rvpredict detect failed (${RC}):\n${STDOUT}\n${STDERR}")
endif()

file(READ "${OUT}" JSON_TEXT)

# string(JSON) needs CMake >= 3.19; older hosts fall back to substring
# checks so the test still guards the field set.
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  foreach(FIELD windows cops cops_pruned_static qc_passed solver_calls
          solver_timeouts seconds technique)
    string(JSON VALUE ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" ${FIELD})
    if(JSON_ERR)
      message(FATAL_ERROR "missing or unparsable field '${FIELD}': ${JSON_ERR}\n${JSON_TEXT}")
    endif()
  endforeach()
  # Parse-validates the nested structures and pins the phase hierarchy.
  string(JSON PHASE_NAME ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" phases name)
  if(JSON_ERR OR NOT PHASE_NAME STREQUAL "total")
    message(FATAL_ERROR "phases.name != total: ${JSON_ERR} '${PHASE_NAME}'")
  endif()
  string(JSON DETECT_NAME ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" phases
         children 0 name)
  if(JSON_ERR OR NOT DETECT_NAME STREQUAL "detect")
    message(FATAL_ERROR "first phase != detect: ${JSON_ERR} '${DETECT_NAME}'")
  endif()
  string(JSON NCOUNTERS ERROR_VARIABLE JSON_ERR LENGTH "${JSON_TEXT}" metrics
         counters)
  if(JSON_ERR OR NCOUNTERS LESS 1)
    message(FATAL_ERROR "no counters in metrics: ${JSON_ERR}\n${JSON_TEXT}")
  endif()
  # The fixed workload must actually exercise the pipeline.
  string(JSON WINDOWS GET "${JSON_TEXT}" windows)
  string(JSON COPS GET "${JSON_TEXT}" cops)
  string(JSON SOLVES GET "${JSON_TEXT}" solver_calls)
  if(WINDOWS LESS 1 OR COPS LESS 1 OR SOLVES LESS 1)
    message(FATAL_ERROR "degenerate run: windows=${WINDOWS} cops=${COPS} solves=${SOLVES}")
  endif()
  # Cone-of-influence slicing is on by default, so its counters must tick.
  # (encoder.skeleton_cache_hits is intentionally NOT asserted: rv-mode
  # cones are seeded per COP and rarely coincide — see docs/ENCODER.md.)
  foreach(COUNTER encoder.cone_events encoder.sliced_atoms)
    string(JSON VALUE ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" metrics
           counters ${COUNTER})
    if(JSON_ERR OR VALUE LESS 1)
      message(FATAL_ERROR "${COUNTER} counter missing or zero under default slicing: ${JSON_ERR} '${VALUE}'\n${JSON_TEXT}")
    endif()
  endforeach()
else()
  foreach(FIELD windows cops qc_passed solver_calls solver_timeouts)
    if(NOT JSON_TEXT MATCHES "\"${FIELD}\":")
      message(FATAL_ERROR "missing field '${FIELD}':\n${JSON_TEXT}")
    endif()
  endforeach()
endif()

# Second run with the static pruner installed (PRUNE_WORKLOAD is built so
# the analysis provably fires): the analysis.* counters must be present
# and non-zero.
if(DEFINED PRUNE_WORKLOAD)
  set(PRUNE_OUT "${CMAKE_CURRENT_BINARY_DIR}/stats_golden_prune.json")
  execute_process(
    COMMAND "${RVPREDICT}" detect "${PRUNE_WORKLOAD}" --technique=rv
            --schedule=rr --seed=1 --static-prune --stats-json=${PRUNE_OUT}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(RC GREATER 1)
    message(FATAL_ERROR "rvpredict detect --static-prune failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  file(READ "${PRUNE_OUT}" JSON_TEXT)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON PRUNED ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}"
           cops_pruned_static)
    if(JSON_ERR OR PRUNED LESS 1)
      message(FATAL_ERROR "cops_pruned_static missing or zero under --static-prune: ${JSON_ERR} '${PRUNED}'\n${JSON_TEXT}")
    endif()
    string(JSON COUNTER ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" metrics
           counters analysis.cops_pruned_static)
    if(JSON_ERR OR NOT COUNTER EQUAL PRUNED)
      message(FATAL_ERROR "analysis.cops_pruned_static counter (${COUNTER}) disagrees with cops_pruned_static (${PRUNED}): ${JSON_ERR}")
    endif()
    string(JSON TLOCAL ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" metrics
           gauges analysis.vars_thread_local)
    if(JSON_ERR OR TLOCAL LESS 1)
      message(FATAL_ERROR "analysis.vars_thread_local gauge missing or zero: ${JSON_ERR} '${TLOCAL}'\n${JSON_TEXT}")
    endif()
  elseif(NOT JSON_TEXT MATCHES "\"cops_pruned_static\":")
    message(FATAL_ERROR "missing field 'cops_pruned_static':\n${JSON_TEXT}")
  endif()
endif()

# Third run under the default hybrid tier: the WCP fields must be present,
# and on this workload the tier must actually save solver work
# (solver_calls_saved > 0 with solver_calls = 0 — every COP that survives
# the filters is WCP-racy and short-circuits past the solver).
set(WCP_OUT "${CMAKE_CURRENT_BINARY_DIR}/stats_golden_wcp.json")
execute_process(
  COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=rv --schedule=rr
          --seed=1 --tier=hybrid --stats-json=${WCP_OUT}
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(RC GREATER 1)
  message(FATAL_ERROR "rvpredict detect --tier=hybrid failed (${RC}):\n${STDOUT}\n${STDERR}")
endif()
file(READ "${WCP_OUT}" JSON_TEXT)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  foreach(FIELD wcp_races wcp_pruned_cops wcp_residue_cops solver_calls_saved
          wcp_mismatches)
    string(JSON VALUE ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" ${FIELD})
    if(JSON_ERR)
      message(FATAL_ERROR "missing or unparsable field '${FIELD}': ${JSON_ERR}\n${JSON_TEXT}")
    endif()
  endforeach()
  string(JSON SAVED GET "${JSON_TEXT}" solver_calls_saved)
  string(JSON SOLVES GET "${JSON_TEXT}" solver_calls)
  if(SAVED LESS 1)
    message(FATAL_ERROR "hybrid tier saved no solver calls on the fixed workload: solver_calls_saved=${SAVED}\n${JSON_TEXT}")
  endif()
  if(SOLVES GREATER 0)
    message(FATAL_ERROR "hybrid tier still called the solver on the fixed workload: solver_calls=${SOLVES}\n${JSON_TEXT}")
  endif()
elseif(NOT JSON_TEXT MATCHES "\"solver_calls_saved\":")
  message(FATAL_ERROR "missing field 'solver_calls_saved':\n${JSON_TEXT}")
endif()

message(STATUS "stats-json golden check passed: ${OUT}")
