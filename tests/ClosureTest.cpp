//===- tests/ClosureTest.cpp - Vector-clock closure tests -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Closure.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(Closure, ProgramOrder) {
  TraceBuilder B;
  B.write("t1", "x", 1);
  B.write("t1", "y", 1);
  B.write("t2", "z", 1);
  Trace T = B.build();
  EventClosure C(T, T.fullSpan(), ClosureConfig::mhb());
  EXPECT_TRUE(C.ordered(0, 1));
  EXPECT_FALSE(C.ordered(1, 0));
  EXPECT_FALSE(C.ordered(0, 2));
  EXPECT_FALSE(C.ordered(2, 0));
  EXPECT_FALSE(C.ordered(0, 0)) << "ordering is strict";
}

TEST(Closure, ForkJoinEdges) {
  TraceBuilder B;
  B.write("t1", "a", 1); // 0
  B.fork("t1", "t2");    // 1
  B.begin("t2");         // 2
  B.write("t2", "b", 1); // 3
  B.end("t2");           // 4
  B.join("t1", "t2");    // 5
  B.write("t1", "c", 1); // 6
  Trace T = B.build();
  EventClosure C(T, T.fullSpan(), ClosureConfig::mhb());
  EXPECT_TRUE(C.ordered(0, 3)) << "pre-fork events precede child events";
  EXPECT_TRUE(C.ordered(3, 6)) << "child events precede post-join events";
  EXPECT_TRUE(C.ordered(1, 2));
  EXPECT_TRUE(C.ordered(4, 5));
}

TEST(Closure, ConcurrentAfterFork) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.write("t1", "a", 1); // 2
  B.write("t2", "b", 1); // 3
  Trace T = B.build();
  EventClosure C(T, T.fullSpan(), ClosureConfig::mhb());
  EXPECT_FALSE(C.ordered(2, 3));
  EXPECT_FALSE(C.ordered(3, 2));
}

TEST(Closure, LockEdgesOnlyInHb) {
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.acquire("t2", "l");  // 3
  B.read("t2", "x", 1);  // 4
  B.release("t2", "l");  // 5
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  EventClosure Hb(T, T.fullSpan(), ClosureConfig::hb());
  EXPECT_FALSE(Mhb.ordered(1, 4)) << "MHB has no lock edges";
  EXPECT_TRUE(Hb.ordered(1, 4)) << "HB orders through the release/acquire";
  EXPECT_TRUE(Hb.ordered(2, 3));
}

TEST(Closure, VolatileEdgesInHbAndCpBase) {
  TraceBuilder B;
  B.write("t1", "x", 1);                            // 0
  B.write("t1", "f", 1, "", /*IsVolatile=*/true);   // 1
  B.read("t2", "f", 1, "", /*IsVolatile=*/true);    // 2
  B.read("t2", "x", 1);                             // 3
  Trace T = B.build();
  EventClosure Hb(T, T.fullSpan(), ClosureConfig::hb());
  EventClosure CpBase(T, T.fullSpan(), ClosureConfig::cpBase());
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  EXPECT_TRUE(Hb.ordered(0, 3));
  EXPECT_TRUE(CpBase.ordered(0, 3));
  EXPECT_FALSE(Mhb.ordered(0, 3)) << "the maximal model drops the edge";
}

TEST(Closure, WaitNotifyOrdering) {
  TraceBuilder B;
  B.acquire("t1", "l");        // 0
  B.waitSuspend("t1", "l", 1); // 1 (release)
  B.acquire("t2", "l");        // 2
  B.write("t2", "x", 5);       // 3
  B.notify("t2", "l", 1);      // 4
  B.release("t2", "l");        // 5
  B.waitResume("t1", "l", 1);  // 6 (acquire)
  B.read("t1", "x", 5);        // 7
  B.release("t1", "l");        // 8
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  EXPECT_TRUE(Mhb.ordered(1, 4)) << "wait release precedes its notify";
  EXPECT_TRUE(Mhb.ordered(4, 6)) << "notify precedes the wait resume";
  EXPECT_TRUE(Mhb.ordered(3, 7)) << "transitively through the notify";
}

TEST(Closure, ExtraEdgesInjectOrder) {
  TraceBuilder B;
  B.write("t1", "a", 1); // 0
  B.write("t2", "b", 1); // 1
  Trace T = B.build();
  EventClosure Without(T, T.fullSpan(), ClosureConfig::mhb());
  EXPECT_FALSE(Without.ordered(0, 1));
  std::vector<ExtraEdge> Edges = {{0, 1}};
  EventClosure With(T, T.fullSpan(), ClosureConfig::mhb(), Edges);
  EXPECT_TRUE(With.ordered(0, 1));
}

TEST(Closure, WindowedClosureIgnoresOutsideEvents) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0 (outside the window below)
  B.begin("t2");         // 1 (outside)
  B.write("t1", "a", 1); // 2
  B.write("t2", "b", 1); // 3
  Trace T = B.build();
  EventClosure C(T, {2, 4}, ClosureConfig::mhb());
  EXPECT_FALSE(C.ordered(2, 3));
  EXPECT_FALSE(C.ordered(3, 2));
}
