# Correctness check for cone-of-influence slicing (docs/ENCODER.md): the
# sliced per-COP encodings (the default) must print byte-identical output
# (reports, witnesses, summary counts; wall-clock timing normalized away)
# to the full window encodings (--no-slice) — for the SMT race techniques
# under both schedules, sequentially and with --jobs=4, with and without
# --static-prune, and for the atomicity and deadlock properties. A
# --stats-json run guards against the vacuous pass by requiring the sliced
# path to actually restrict the encodings (encoder.cone_events and
# encoder.sliced_atoms > 0, cone strictly smaller than the emitted order
# variables of the unsliced run).
# Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<prog.rv> -P SliceGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

function(run_detect NOSLICE EXTRA OUT_VAR)
  execute_process(
    COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --seed=1 --witness=true
            --no-slice=${NOSLICE} ${EXTRA}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  # Exit 1 just means findings were reported; >=2 is a usage/internal error.
  if(RC GREATER 1)
    message(FATAL_ERROR "rvpredict detect --no-slice=${NOSLICE} "
            "${EXTRA} failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  string(REGEX REPLACE " in [0-9.]+s" "" STDOUT "${STDOUT}")
  set(${OUT_VAR} "${STDOUT}" PARENT_SCOPE)
endfunction()

function(check_pair EXTRA LABEL)
  run_detect(false "${EXTRA}" SLICED)
  run_detect(true "${EXTRA}" UNSLICED)
  if(NOT SLICED STREQUAL UNSLICED)
    message(FATAL_ERROR "--no-slice changed output for ${LABEL}:\n"
            "--- sliced ---\n${SLICED}\n--- unsliced ---\n${UNSLICED}")
  endif()
endfunction()

# SMT race techniques: schedules x jobs x static pruning.
foreach(TECHNIQUE rv said)
  foreach(SCHEDULE rr random)
    foreach(JOBS 1 4)
      check_pair("--technique=${TECHNIQUE};--schedule=${SCHEDULE};--jobs=${JOBS}"
                 "technique=${TECHNIQUE} schedule=${SCHEDULE} jobs=${JOBS}")
    endforeach()
  endforeach()
  check_pair("--technique=${TECHNIQUE};--schedule=rr;--jobs=2;--static-prune=true"
             "technique=${TECHNIQUE} static-prune")
endforeach()

# The other SMT-backed properties ride the same DetectorOptions flag.
foreach(PROPERTY atomicity deadlock)
  foreach(JOBS 1 4)
    check_pair("--property=${PROPERTY};--schedule=rr;--jobs=${JOBS}"
               "property=${PROPERTY} jobs=${JOBS}")
  endforeach()
endforeach()

# Non-vacuity: the sliced run must report the workload's race AND actually
# restrict the encodings — the cone counters only tick on the sliced path.
# Pinned to --tier=smt: the default hybrid tier short-circuits this
# workload's COPs before the encoder runs (docs/TIERS.md), which would
# make the cone counters legitimately zero.
run_detect(false "--technique=rv;--schedule=rr;--jobs=1;--tier=smt;--stats-json=-" SLC_STATS)
run_detect(true "--technique=rv;--schedule=rr;--jobs=1;--tier=smt;--stats-json=-" UNS_STATS)
if(NOT SLC_STATS MATCHES "1 race")
  message(FATAL_ERROR "sliced run lost the workload's race:\n${SLC_STATS}")
endif()
string(REGEX MATCH "\"encoder.cone_events\": *([0-9]+)" _ "${SLC_STATS}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "sliced run never built a cone "
          "(encoder.cone_events missing or 0):\n${SLC_STATS}")
endif()
set(CONE_EVENTS ${CMAKE_MATCH_1})
string(REGEX MATCH "\"encoder.sliced_atoms\": *([0-9]+)" _ "${SLC_STATS}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "sliced run emitted no skeleton atoms "
          "(encoder.sliced_atoms missing or 0):\n${SLC_STATS}")
endif()
# The unsliced run allocates an order variable per window event per
# formula; the cone must be a strict subset of that.
string(REGEX MATCH "\"encoder.order_vars\": *([0-9]+)" _ "${UNS_STATS}")
if(NOT CMAKE_MATCH_1 OR NOT CONE_EVENTS LESS CMAKE_MATCH_1)
  message(FATAL_ERROR "cone (${CONE_EVENTS} events) is not smaller than the "
          "unsliced encoding (${CMAKE_MATCH_1} order vars):\n${SLC_STATS}")
endif()

message(STATUS "cone-slicing equivalence check passed "
        "(2 SMT techniques x 2 schedules x 2 jobs + prune + atomicity + "
        "deadlock, cone_events=${CONE_EVENTS})")
