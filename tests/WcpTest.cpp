//===- tests/WcpTest.cpp - WCP vector-clock tier tests ----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Wcp.h"

#include "detect/Closure.h"
#include "detect/Cop.h"
#include "detect/Detect.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

WcpIndex index(const Trace &T) { return WcpIndex(T, T.fullSpan()); }

} // namespace

// ------------------------------------------------------------- MHB mirror

// The M clocks must agree with the quick check's EventClosure on every
// ordered pair — the wcp-prune stage is sound only because of this.
TEST(Wcp, MhbMirrorsEventClosure) {
  TraceBuilder B;
  B.write("t1", "a", 1);   // 0
  B.fork("t1", "t2");      // 1
  B.begin("t2");           // 2
  B.write("t2", "b", 1);   // 3
  B.acquire("t2", "l");    // 4
  B.write("t2", "c", 1);   // 5
  B.release("t2", "l");    // 6
  B.acquire("t1", "l");    // 7
  B.write("t1", "c", 2);   // 8
  B.release("t1", "l");    // 9
  B.end("t2");             // 10
  B.join("t1", "t2");      // 11
  B.write("t1", "b", 2);   // 12
  Trace T = B.build();
  EventClosure C(T, T.fullSpan(), ClosureConfig::mhb());
  WcpIndex W = index(T);
  for (EventId A = 0; A < T.size(); ++A)
    for (EventId Z = A + 1; Z < T.size(); ++Z)
      EXPECT_EQ(W.mhbOrdered(A, Z), C.ordered(A, Z))
          << "events " << A << " -> " << Z;
}

TEST(Wcp, MhbIgnoresLockEdges) {
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.acquire("t2", "l");  // 3
  B.write("t2", "y", 1); // 4
  B.release("t2", "l");  // 5
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_FALSE(W.mhbOrdered(1, 4))
      << "release->acquire is an HB edge, not an MHB edge";
  EXPECT_TRUE(W.mhbOrdered(0, 2)) << "program order is MHB";
}

// ------------------------------------------------------------- rule (a)

// Conflicting accesses in two critical sections over the same lock: the
// earlier section's release ≺wcp the later access, so the pair is ordered.
TEST(Wcp, RuleAOrdersConflictingSections) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.acquire("t1", "l");  // 2
  B.write("t1", "x", 1); // 3
  B.release("t1", "l");  // 4
  B.acquire("t2", "l");  // 5
  B.write("t2", "x", 2); // 6
  B.release("t2", "l");  // 7
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_TRUE(W.wcpOrdered(3, 6)) << "release(4) ≺wcp conflicting write(6)";
  EXPECT_FALSE(W.racy(3, 6));
}

// Sections over the same lock touching *different* variables stay
// unordered — WCP is strictly weaker than HB's release->acquire edge.
TEST(Wcp, NoOrderWithoutConflictingAccess) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.acquire("t1", "l");  // 2
  B.write("t1", "x", 1); // 3
  B.release("t1", "l");  // 4
  B.acquire("t2", "l");  // 5
  B.write("t2", "y", 1); // 6
  B.release("t2", "l");  // 7
  B.write("t1", "y", 2); // 8
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_TRUE(W.racy(6, 8))
      << "the y accesses share no conflicting critical sections";
}

// Read-read pairs under the lock do not conflict: two read-only sections
// stay unordered, but each orders against a writing section.
TEST(Wcp, RuleAReadsOnlyOrderAgainstWrites) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.fork("t1", "t3");    // 1
  B.begin("t2");         // 2
  B.begin("t3");         // 3
  B.acquire("t1", "l");  // 4
  B.read("t1", "x", 0);  // 5
  B.release("t1", "l");  // 6
  B.acquire("t2", "l");  // 7
  B.read("t2", "x", 0);  // 8
  B.release("t2", "l");  // 9
  B.acquire("t3", "l");  // 10
  B.write("t3", "x", 1); // 11
  B.release("t3", "l");  // 12
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_FALSE(W.wcpOrdered(5, 8)) << "read-read does not conflict";
  EXPECT_TRUE(W.wcpOrdered(5, 11)) << "read(5) orders the later write(11)";
  EXPECT_TRUE(W.wcpOrdered(8, 11));
}

// ------------------------------------------------------------- rule (b)

// acquire₁ ≺wcp release₂ forces release₁ ≺wcp release₂: the ordering of
// the x-sections must propagate to the releases and from there (with
// program order) order the ys.
TEST(Wcp, RuleBOrdersReleases) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.acquire("t1", "m");  // 2
  B.acquire("t1", "l");  // 3
  B.write("t1", "x", 1); // 4
  B.release("t1", "l");  // 5
  B.write("t1", "y", 1); // 6
  B.release("t1", "m");  // 7
  B.acquire("t2", "m");  // 8
  B.acquire("t2", "l");  // 9
  B.write("t2", "x", 2); // 10
  B.release("t2", "l");  // 11
  B.write("t2", "y", 2); // 12
  B.release("t2", "m");  // 13
  Trace T = B.build();
  WcpIndex W = index(T);
  // Rule (a) orders the x accesses; rule (b) then lifts acquire(2) ≺wcp
  // release(13) to release(7) ≺wcp release(13)... but y(6) precedes
  // release(7) only via program order *backward*, so check the direct
  // consequences instead: the m-releases are ordered.
  EXPECT_TRUE(W.wcpOrdered(4, 10)) << "rule (a) on x";
  EXPECT_TRUE(W.wcpOrdered(7, 13)) << "rule (b) on the m-releases";
  EXPECT_TRUE(W.wcpOrdered(6, 13))
      << "program order into the ordered release";
}

// ------------------------------------------------------------- rule (c)

// HB composition on the right: an edge established under the lock flows
// through fork/join into later events.
TEST(Wcp, HbCompositionCarriesOrder) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.acquire("t1", "l");  // 2
  B.write("t1", "x", 1); // 3
  B.release("t1", "l");  // 4
  B.acquire("t2", "l");  // 5
  B.write("t2", "x", 2); // 6
  B.release("t2", "l");  // 7
  B.fork("t2", "t3");    // 8
  B.begin("t3");         // 9
  B.write("t3", "x", 3); // 10
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_TRUE(W.wcpOrdered(3, 10))
      << "x(3) ≺wcp x(6) composes through fork(8) into t3";
}

// ------------------------------------------------------------- races

TEST(Wcp, UnprotectedConflictIsRacy) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.write("t1", "x", 1); // 2
  B.write("t2", "x", 2); // 3
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_TRUE(W.racy(2, 3));
  EXPECT_FALSE(W.mhbOrdered(2, 3));
}

// The paper's figure-4-style pattern: same lock, both sections touch the
// shared var — never racy under WCP within one window (the early release
// always lands inside the window).
TEST(Wcp, CommonLockNeverRacyInWindow) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.acquire("t1", "l");  // 2
  B.write("t1", "x", 1); // 3
  B.release("t1", "l");  // 4
  B.acquire("t2", "l");  // 5
  B.read("t2", "x", 1);  // 6
  B.release("t2", "l");  // 7
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_FALSE(W.racy(3, 6));
}

// A section clipped at the window start (release without acquire) only
// over-orders: the pair goes back to the solver, never racy-reported.
TEST(Wcp, WindowClippedSectionOverOrders) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.write("t1", "x", 1); // 2
  B.release("t1", "l");  // 3  (acquire outside the window)
  B.acquire("t2", "l");  // 4
  B.write("t2", "x", 2); // 5
  B.release("t2", "l");  // 6
  Trace T = B.build();
  WcpIndex W = index(T);
  EXPECT_FALSE(W.racy(2, 5))
      << "the clipped t1 section still publishes x into the lock";
}

// ----------------------------------------------------- tier equivalence

namespace {

// One WCP-racy pair (the a accesses: t1's read comes *before* its lock
// section, so no HB path carries t2's rule-(a) edge into it), one
// lock-protected pair (x), one MHB-ordered pair (the a writes). Keeps
// the tiers' verdicts aligned: WCP is incomplete against the maximal
// detector in general (docs/TIERS.md), so tier-agreement tests need
// traces whose maximal races are all WCP-racy.
Trace forkJoinRacyTrace() {
  TraceBuilder B;
  B.write("t1", "a", 1);
  B.fork("t1", "t2");
  B.begin("t2");
  B.write("t2", "a", 2);   // racy with t1's read below
  B.acquire("t2", "l");
  B.write("t2", "x", 1);
  B.release("t2", "l");
  B.end("t2");
  B.read("t1", "a", 2);    // racy with t2's write
  B.acquire("t1", "l");
  B.write("t1", "x", 2);   // lock-protected: not racy
  B.release("t1", "l");
  Trace T = B.build();
  return T;
}

} // namespace

// The three tiers must report the same set of races on a trace where
// every WCP-racy pair is genuinely predictable.
TEST(Wcp, TiersAgreeOnRaces) {
  Trace T = forkJoinRacyTrace();
  DetectionResult Results[3];
  const DetectTier Tiers[] = {DetectTier::Vc, DetectTier::Smt,
                              DetectTier::Hybrid};
  for (int I = 0; I < 3; ++I) {
    DetectorOptions Options;
    Options.Tier = Tiers[I];
    if (Tiers[I] == DetectTier::Vc)
      Options.CollectWitnesses = false;
    Results[I] = detectRaces(T, Technique::Maximal, Options);
  }
  EXPECT_EQ(Results[0].raceCount(), Results[1].raceCount());
  EXPECT_EQ(Results[1].raceCount(), Results[2].raceCount());
  for (const RaceReport &R : Results[1].Races) {
    EXPECT_TRUE(Results[0].hasRaceAt(R.LocFirst, R.LocSecond))
        << "vc tier missing " << R.LocFirst << " <-> " << R.LocSecond;
    EXPECT_TRUE(Results[2].hasRaceAt(R.LocFirst, R.LocSecond))
        << "hybrid tier missing " << R.LocFirst << " <-> " << R.LocSecond;
  }
}

// Hybrid must save solver work on the same trace without changing the
// report — the tentpole's reason to exist.
TEST(Wcp, HybridSavesSolverCalls) {
  Trace T = forkJoinRacyTrace();
  DetectorOptions Smt, Hybrid;
  Smt.Tier = DetectTier::Smt;
  Hybrid.Tier = DetectTier::Hybrid;
  DetectionResult RS = detectRaces(T, Technique::Maximal, Smt);
  DetectionResult RH = detectRaces(T, Technique::Maximal, Hybrid);
  EXPECT_EQ(RS.raceCount(), RH.raceCount());
  EXPECT_GT(RH.Stats.WcpPruned + RH.Stats.WcpShortCircuits, 0u);
  EXPECT_LT(RH.Stats.SolverCalls, RS.Stats.SolverCalls);
}

// --check-tiers solves everything and must find no mismatch on a trace
// whose WCP races are all feasible.
TEST(Wcp, CheckTiersFindsNoMismatch) {
  Trace T = forkJoinRacyTrace();
  DetectorOptions Options;
  Options.Tier = DetectTier::Hybrid;
  Options.CheckTiers = true;
  DetectionResult R = detectRaces(T, Technique::Maximal, Options);
  EXPECT_EQ(R.Stats.WcpMismatches, 0u);
  EXPECT_EQ(R.Stats.WcpShortCircuits, 0u)
      << "check-tiers disables the fast path";
  EXPECT_GT(R.Stats.SolverCalls, 0u);
}
