//===- tests/SolverTest.cpp - IDL solver + Z3 cross-validation -------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// Evaluates a formula under an order model (atoms become integer
/// comparisons). Missing variables make the atom false.
bool evaluate(const FormulaBuilder &FB, NodeRef Root,
              const OrderModel &Model) {
  const FormulaNode &N = FB.node(Root);
  switch (N.Kind) {
  case FormulaKind::True:
    return true;
  case FormulaKind::False:
    return false;
  case FormulaKind::Atom: {
    auto A = Model.find(N.VarA);
    auto B = Model.find(N.VarB);
    if (A == Model.end() || B == Model.end())
      return false;
    return A->second < B->second;
  }
  case FormulaKind::BoolVar:
    // Order models carry no boolean assignments; these tests do not build
    // boolean variables.
    return false;
  case FormulaKind::And:
    for (const NodeRef *C = FB.childBegin(Root), *E = FB.childEnd(Root);
         C != E; ++C)
      if (!evaluate(FB, *C, Model))
        return false;
    return true;
  case FormulaKind::Or:
    for (const NodeRef *C = FB.childBegin(Root), *E = FB.childEnd(Root);
         C != E; ++C)
      if (evaluate(FB, *C, Model))
        return true;
    return false;
  }
  return false;
}

/// Builds a random order formula over \p NumVars variables.
NodeRef randomFormula(FormulaBuilder &FB, Rng &R, uint32_t NumVars,
                      uint32_t Depth) {
  if (Depth == 0 || R.chance(1, 3)) {
    OrderVar A = static_cast<OrderVar>(R.below(NumVars));
    OrderVar B = static_cast<OrderVar>(R.below(NumVars));
    if (A == B)
      B = (B + 1) % NumVars;
    return FB.mkAtom(A, B);
  }
  uint32_t Width = 2 + static_cast<uint32_t>(R.below(3));
  std::vector<NodeRef> Kids;
  for (uint32_t I = 0; I < Width; ++I)
    Kids.push_back(randomFormula(FB, R, NumVars, Depth - 1));
  return R.chance(1, 2) ? FB.mkAnd(std::move(Kids))
                        : FB.mkOr(std::move(Kids));
}

} // namespace

TEST(IdlSolver, TrivialConstants) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  EXPECT_EQ(S->solve(FB, FB.mkTrue(), Deadline(), nullptr), SatResult::Sat);
  EXPECT_EQ(S->solve(FB, FB.mkFalse(), Deadline(), nullptr),
            SatResult::Unsat);
}

TEST(IdlSolver, SingleAtomSat) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  OrderModel Model;
  NodeRef F = FB.mkAtom(1, 2);
  ASSERT_EQ(S->solve(FB, F, Deadline(), &Model), SatResult::Sat);
  EXPECT_LT(Model.at(1), Model.at(2));
}

TEST(IdlSolver, CycleUnsat) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  NodeRef F = FB.mkAnd({FB.mkAtom(1, 2), FB.mkAtom(2, 3), FB.mkAtom(3, 1)});
  EXPECT_EQ(S->solve(FB, F, Deadline(), nullptr), SatResult::Unsat);
}

TEST(IdlSolver, DisjunctionPicksConsistentBranch) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  // 1<2 & 2<3 & (3<1 | 1<3): only the second disjunct works.
  NodeRef F = FB.mkAnd({FB.mkAtom(1, 2), FB.mkAtom(2, 3),
                        FB.mkOr({FB.mkAtom(3, 1), FB.mkAtom(1, 3)})});
  OrderModel Model;
  ASSERT_EQ(S->solve(FB, F, Deadline(), &Model), SatResult::Sat);
  EXPECT_TRUE(evaluate(FB, F, Model));
}

TEST(IdlSolver, LockStyleDisjunctionBothOrders) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  // Classic lock constraint shape: (r1<a2 | r2<a1).
  NodeRef F = FB.mkOr({FB.mkAtom(2, 3), FB.mkAtom(4, 1)});
  OrderModel Model;
  ASSERT_EQ(S->solve(FB, F, Deadline(), &Model), SatResult::Sat);
  EXPECT_TRUE(evaluate(FB, F, Model));
}

TEST(IdlSolver, DeepConjunctionChain) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  std::vector<NodeRef> Atoms;
  for (OrderVar I = 0; I < 500; ++I)
    Atoms.push_back(FB.mkAtom(I, I + 1));
  OrderModel Model;
  ASSERT_EQ(S->solve(FB, FB.mkAnd(Atoms), Deadline(), &Model),
            SatResult::Sat);
  for (OrderVar I = 0; I < 500; ++I)
    EXPECT_LT(Model.at(I), Model.at(I + 1));
}

TEST(IdlSolver, ChainPlusBackEdgeUnsat) {
  FormulaBuilder FB;
  auto S = createIdlSolver();
  std::vector<NodeRef> Atoms;
  for (OrderVar I = 0; I < 200; ++I)
    Atoms.push_back(FB.mkAtom(I, I + 1));
  Atoms.push_back(FB.mkAtom(200, 0));
  EXPECT_EQ(S->solve(FB, FB.mkAnd(Atoms), Deadline(), nullptr),
            SatResult::Unsat);
}

TEST(IdlSolver, ModelSatisfiesFormula) {
  Rng R(2024);
  for (int Round = 0; Round < 20; ++Round) {
    FormulaBuilder FB;
    NodeRef F = randomFormula(FB, R, 8, 3);
    auto S = createIdlSolver();
    OrderModel Model;
    SatResult Result = S->solve(FB, F, Deadline(), &Model);
    if (Result == SatResult::Sat && FB.node(F).Kind != FormulaKind::True) {
      EXPECT_TRUE(evaluate(FB, F, Model)) << FB.toString(F);
    }
  }
}

// Cross-validation sweep: the in-tree CDCL(T) solver and Z3 must agree on
// satisfiability of random order formulas.
class SolverCrossTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverCrossTest, IdlAgreesWithZ3) {
  auto Z3 = createZ3Solver();
  if (!Z3)
    GTEST_SKIP() << "Z3 backend not built";
  Rng R(GetParam());
  FormulaBuilder FB;
  NodeRef F = randomFormula(FB, R, 6 + R.below(6), 3);
  auto Idl = createIdlSolver();
  OrderModel IdlModel, Z3Model;
  SatResult IdlResult = Idl->solve(FB, F, Deadline(), &IdlModel);
  SatResult Z3Result = Z3->solve(FB, F, Deadline(), &Z3Model);
  ASSERT_NE(IdlResult, SatResult::Unknown);
  ASSERT_NE(Z3Result, SatResult::Unknown);
  EXPECT_EQ(IdlResult, Z3Result) << "seed " << GetParam() << "\n"
                                 << FB.toString(F);
  if (IdlResult == SatResult::Sat && FB.node(F).Kind != FormulaKind::True) {
    EXPECT_TRUE(evaluate(FB, F, IdlModel));
    EXPECT_TRUE(evaluate(FB, F, Z3Model));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverCrossTest,
                         ::testing::Range<uint64_t>(0, 50));

TEST(SolverFactory, ByName) {
  EXPECT_NE(createSolverByName("idl"), nullptr);
  EXPECT_NE(createSolverByName(""), nullptr);
  EXPECT_EQ(createSolverByName("nonsense"), nullptr);
}

// ----------------------------------------------- incremental sessions

TEST(IdlSession, AgreesWithOneShotAcrossQueries) {
  // One session answering a stream of random queries over a shared
  // builder must match a fresh one-shot solver on every single query —
  // regardless of what earlier queries learned or how they ended.
  Rng R(7);
  for (int Round = 0; Round < 10; ++Round) {
    FormulaBuilder FB;
    auto Session = createIdlSession();
    ASSERT_NE(Session, nullptr);
    for (int Query = 0; Query < 8; ++Query) {
      NodeRef F = randomFormula(FB, R, 8, 3);
      OrderModel Model;
      SatResult Got = Session->query(FB, F, Deadline(), &Model);
      auto OneShot = createIdlSolver();
      SatResult Want = OneShot->solve(FB, F, Deadline(), nullptr);
      ASSERT_EQ(Got, Want) << "round " << Round << " query " << Query
                           << "\n"
                           << FB.toString(F);
      if (Got == SatResult::Sat && FB.node(F).Kind != FormulaKind::True)
        EXPECT_TRUE(evaluate(FB, F, Model)) << FB.toString(F);
    }
  }
}

TEST(IdlSession, TheoryBacktracksBetweenQueries) {
  // Query 1 pins a<b, query 2 pins b<a: the theory state asserted for the
  // first query must fully unwind, or the second would be wrongly unsat.
  FormulaBuilder FB;
  auto Session = createIdlSession();
  NodeRef AB = FB.mkAtom(0, 1);
  NodeRef BA = FB.mkAtom(1, 0);
  EXPECT_EQ(Session->query(FB, AB, Deadline(), nullptr), SatResult::Sat);
  EXPECT_EQ(Session->query(FB, BA, Deadline(), nullptr), SatResult::Sat);
  // And the conjunction is still correctly refuted afterwards.
  NodeRef Both = FB.mkAnd({AB, BA});
  EXPECT_EQ(Session->query(FB, Both, Deadline(), nullptr),
            SatResult::Unsat);
  // An unsat query leaves the session healthy for the next sat one.
  EXPECT_EQ(Session->query(FB, AB, Deadline(), nullptr), SatResult::Sat);
}

TEST(IdlSession, ModelReadAfterEarlierFailedQuery) {
  FormulaBuilder FB;
  auto Session = createIdlSession();
  NodeRef Cycle =
      FB.mkAnd({FB.mkAtom(0, 1), FB.mkAtom(1, 2), FB.mkAtom(2, 0)});
  EXPECT_EQ(Session->query(FB, Cycle, Deadline(), nullptr),
            SatResult::Unsat);
  NodeRef Chain = FB.mkAnd({FB.mkAtom(0, 1), FB.mkAtom(1, 2)});
  OrderModel Model;
  ASSERT_EQ(Session->query(FB, Chain, Deadline(), &Model), SatResult::Sat);
  EXPECT_TRUE(evaluate(FB, Chain, Model));
}

TEST(IdlSession, AssertFormulaConstrainsEveryQuery) {
  FormulaBuilder FB;
  auto Session = createIdlSession();
  Session->assertFormula(FB, FB.mkAtom(0, 1)); // a < b, permanently
  EXPECT_EQ(Session->query(FB, FB.mkAtom(1, 0), Deadline(), nullptr),
            SatResult::Unsat);
  EXPECT_EQ(Session->query(FB, FB.mkAtom(0, 1), Deadline(), nullptr),
            SatResult::Sat);
  EXPECT_EQ(Session->query(FB, FB.mkAtom(1, 2), Deadline(), nullptr),
            SatResult::Sat);
  EXPECT_EQ(Session->query(FB, FB.mkAtom(1, 0), Deadline(), nullptr),
            SatResult::Unsat);
}

TEST(IdlSession, ExpiredQueryDeadlineDoesNotStarveNextQuery) {
  // A query given an already-expired budget answers Unknown (or solves
  // within its zero budget); either way the NEXT query must still get its
  // own fresh budget and answer.
  Rng R(99);
  FormulaBuilder FB;
  auto Session = createIdlSession();
  NodeRef Hard = randomFormula(FB, R, 10, 4);
  (void)Session->query(FB, Hard, Deadline::after(0), nullptr);
  NodeRef Easy = FB.mkAtom(0, 1);
  EXPECT_EQ(Session->query(FB, Easy, Deadline::after(60), nullptr),
            SatResult::Sat);
}

TEST(Z3Session, AgreesWithIdlSession) {
  auto Z3 = createZ3Session();
  if (!Z3)
    GTEST_SKIP() << "Z3 backend not built";
  Rng R(21);
  FormulaBuilder FB;
  auto Idl = createIdlSession();
  for (int Query = 0; Query < 12; ++Query) {
    NodeRef F = randomFormula(FB, R, 8, 3);
    OrderModel IdlModel, Z3Model;
    SatResult IdlResult = Idl->query(FB, F, Deadline(), &IdlModel);
    SatResult Z3Result = Z3->query(FB, F, Deadline(), &Z3Model);
    ASSERT_NE(IdlResult, SatResult::Unknown);
    ASSERT_NE(Z3Result, SatResult::Unknown);
    EXPECT_EQ(IdlResult, Z3Result) << "query " << Query << "\n"
                                   << FB.toString(F);
    if (IdlResult == SatResult::Sat &&
        FB.node(F).Kind != FormulaKind::True) {
      EXPECT_TRUE(evaluate(FB, F, IdlModel));
      EXPECT_TRUE(evaluate(FB, F, Z3Model));
    }
  }
}

TEST(SessionFactory, ByName) {
  EXPECT_NE(createSessionByName("idl"), nullptr);
  EXPECT_NE(createSessionByName(""), nullptr);
  EXPECT_EQ(createSessionByName("nonsense"), nullptr);
}
