//===- tests/AtomicityTest.cpp - Atomicity-violation detector tests ----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"

#include "runtime/Interpreter.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// t1's critical section reads and writes `balance`; t2 writes it without
/// the lock. The remote write fits between the read and the write
/// (lost-update pattern).
Trace lostUpdateTrace() {
  TraceBuilder B;
  B.acquire("t1", "l", "a1");
  B.read("t1", "balance", 0, "a2");
  B.write("t1", "balance", 50, "a3");
  B.release("t1", "l", "a4");
  B.write("t2", "balance", 7, "b1"); // unlocked remote write
  return B.build();
}

} // namespace

TEST(Atomicity, PatternClassification) {
  Event R, W;
  R.Kind = EventKind::Read;
  W.Kind = EventKind::Write;
  AtomicityPattern P;
  EXPECT_TRUE(classifyAtomicity(R, W, R, P));
  EXPECT_EQ(P, AtomicityPattern::ReadWriteRead);
  EXPECT_TRUE(classifyAtomicity(W, R, W, P));
  EXPECT_EQ(P, AtomicityPattern::WriteReadWrite);
  EXPECT_TRUE(classifyAtomicity(W, W, R, P));
  EXPECT_EQ(P, AtomicityPattern::WriteWriteRead);
  EXPECT_TRUE(classifyAtomicity(R, W, W, P));
  EXPECT_EQ(P, AtomicityPattern::ReadWriteWrite);
  // Serializable shapes.
  EXPECT_FALSE(classifyAtomicity(R, R, R, P));
  EXPECT_FALSE(classifyAtomicity(R, R, W, P));
  EXPECT_FALSE(classifyAtomicity(W, R, R, P)) << "w..r..r is serializable "
                                                 "(remote read moves after)";
  EXPECT_FALSE(classifyAtomicity(W, W, W, P));
}

TEST(Atomicity, DetectsLostUpdate) {
  Trace T = lostUpdateTrace();
  AtomicityResult R = detectAtomicityViolations(T);
  ASSERT_EQ(R.Violations.size(), 1u);
  const AtomicityReport &V = R.Violations[0];
  EXPECT_EQ(V.Pattern, AtomicityPattern::ReadWriteWrite);
  EXPECT_EQ(V.Variable, "balance");
  EXPECT_TRUE(R.hasViolationAt("a2", "b1", "a3"));
  EXPECT_TRUE(V.WitnessValid);
  // The witness places the remote write strictly between the pair.
  size_t PosA1 = 0, PosB = 0, PosA2 = 0;
  for (size_t I = 0; I < V.Witness.size(); ++I) {
    if (V.Witness[I] == V.First)
      PosA1 = I;
    if (V.Witness[I] == V.Remote)
      PosB = I;
    if (V.Witness[I] == V.Second)
      PosA2 = I;
  }
  EXPECT_LT(PosA1, PosB);
  EXPECT_LT(PosB, PosA2);
}

TEST(Atomicity, LockedRemoteAccessCannotIntrude) {
  TraceBuilder B;
  B.acquire("t1", "l", "a1");
  B.read("t1", "x", 0, "a2");
  B.write("t1", "x", 1, "a3");
  B.release("t1", "l", "a4");
  B.acquire("t2", "l", "b0");
  B.write("t2", "x", 7, "b1"); // holds the same lock
  B.release("t2", "l", "b2");
  Trace T = B.build();
  AtomicityResult R = detectAtomicityViolations(T);
  EXPECT_TRUE(R.Violations.empty())
      << "mutual exclusion protects the region";
}

TEST(Atomicity, ForkJoinOrderingPreventsIntrusion) {
  TraceBuilder B;
  B.acquire("t1", "l", "a1");
  B.read("t1", "x", 0, "a2");
  B.write("t1", "x", 1, "a3");
  B.release("t1", "l", "a4");
  B.fork("t1", "t2", "f");
  B.begin("t2");
  B.write("t2", "x", 7, "b1"); // only exists after the region completes
  Trace T = B.build();
  AtomicityResult R = detectAtomicityViolations(T);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(Atomicity, SerializableRemoteReadNotReported) {
  TraceBuilder B;
  B.acquire("t1", "l", "a1");
  B.read("t1", "x", 0, "a2");
  B.read("t1", "x", 0, "a3"); // read-read region
  B.release("t1", "l", "a4");
  B.read("t2", "x", 0, "b1"); // remote read: serializable
  Trace T = B.build();
  AtomicityResult R = detectAtomicityViolations(T);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(Atomicity, ControlFlowRefutesIntrusion) {
  // The remote write is guarded by a branch whose read must see the
  // region's *second* write — so it can only execute after the region,
  // never inside it. Without branch events this would be a false alarm.
  TraceBuilder B;
  B.acquire("t1", "l", "a1");
  B.read("t1", "x", 0, "a2");
  B.write("t1", "x", 1, "a3");
  B.release("t1", "l", "a4");
  B.read("t2", "x", 1, "b0"); // sees the value written at a3
  B.branch("t2", "b0");
  B.write("t2", "x", 7, "b1");
  Trace T = B.build();
  AtomicityResult R = detectAtomicityViolations(T);
  for (const AtomicityReport &V : R.Violations)
    EXPECT_FALSE(V.LocRemote == "b1" && V.LocFirst == "a2" &&
                 V.LocSecond == "a3")
        << "the guarded write cannot interleave into the region";
}

TEST(Atomicity, UnguardedVariantIsReported) {
  // Same trace minus the branch: the remote write is data-abstract and
  // may interleave.
  TraceBuilder B;
  B.acquire("t1", "l", "a1");
  B.read("t1", "x", 0, "a2");
  B.write("t1", "x", 1, "a3");
  B.release("t1", "l", "a4");
  B.read("t2", "x", 1, "b0");
  B.write("t2", "x", 7, "b1");
  Trace T = B.build();
  AtomicityResult R = detectAtomicityViolations(T);
  EXPECT_TRUE(R.hasViolationAt("a2", "b1", "a3"));
}

TEST(Atomicity, SignatureDeduplication) {
  TraceBuilder B;
  for (int Round = 0; Round < 3; ++Round) {
    B.acquire("t1", "l", "a1");
    B.read("t1", "x", Round == 0 ? 0 : 7, "a2");
    B.write("t1", "x", 7, "a3");
    B.release("t1", "l", "a4");
  }
  B.write("t2", "x", 7, "b1");
  Trace T = B.build();
  AtomicityResult R = detectAtomicityViolations(T);
  EXPECT_EQ(R.Violations.size(), 1u)
      << "three dynamic instances share one static signature";
}

TEST(Atomicity, MiniRvEndToEnd) {
  const char *Source = R"(
shared balance = 100; lock l;
thread transfer {
  sync l {
    local b = balance;
    balance = b + 50;
  }
}
thread rogue { balance = 0; }
main { spawn transfer; spawn rogue; join transfer; join rogue; }
)";
  Trace T;
  RunResult Run;
  std::string Error;
  RandomScheduler S(5);
  ASSERT_TRUE(recordTrace(Source, T, Run, Error, &S)) << Error;
  AtomicityResult R = detectAtomicityViolations(T);
  ASSERT_GE(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].Variable, "balance");
  EXPECT_TRUE(R.Violations[0].WitnessValid);
}
