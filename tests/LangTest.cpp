//===- tests/LangTest.cpp - MiniRV lexer/parser tests ----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(Lexer, Punctuation) {
  auto Tokens = Lexer::tokenize("{ } ( ) [ ] ; = == != < <= > >= + - * / %");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::LBrace,   TokenKind::RBrace,    TokenKind::LParen,
      TokenKind::RParen,   TokenKind::LBracket,  TokenKind::RBracket,
      TokenKind::Semicolon, TokenKind::Assign,   TokenKind::EqEq,
      TokenKind::NotEq,    TokenKind::Less,      TokenKind::LessEq,
      TokenKind::Greater,  TokenKind::GreaterEq, TokenKind::Plus,
      TokenKind::Minus,    TokenKind::Star,      TokenKind::Slash,
      TokenKind::Percent,  TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto Tokens = Lexer::tokenize("shared sharedx if iffy while");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwShared);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "sharedx");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwWhile);
}

TEST(Lexer, IntegersAndLines) {
  auto Tokens = Lexer::tokenize("1\n 23\n456");
  EXPECT_EQ(Tokens[0].Value, 1);
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[1].Value, 23);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Column, 2u);
  EXPECT_EQ(Tokens[2].Value, 456);
  EXPECT_EQ(Tokens[2].Line, 3u);
}

TEST(Lexer, Comments) {
  auto Tokens = Lexer::tokenize("a // comment\n b /* block\n */ c");
  ASSERT_EQ(Tokens.size(), 4u); // a b c eof
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  auto Tokens = Lexer::tokenize("a /* never ends");
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Error);
}

TEST(Lexer, BadCharacterIsError) {
  auto Tokens = Lexer::tokenize("a $ b");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(Lexer, SingleAmpOrPipeIsError) {
  EXPECT_EQ(Lexer::tokenize("a & b")[1].Kind, TokenKind::Error);
  EXPECT_EQ(Lexer::tokenize("a | b")[1].Kind, TokenKind::Error);
  EXPECT_EQ(Lexer::tokenize("a && b")[1].Kind, TokenKind::AndAnd);
  EXPECT_EQ(Lexer::tokenize("a || b")[1].Kind, TokenKind::OrOr);
}

namespace {

Program parseOk(const std::string &Source) {
  std::string Error;
  auto P = parseProgram(Source, Error);
  EXPECT_TRUE(P.has_value()) << Error;
  return P ? std::move(*P) : Program{};
}

std::string parseErr(const std::string &Source) {
  std::string Error;
  auto P = parseProgram(Source, Error);
  EXPECT_FALSE(P.has_value()) << "parse unexpectedly succeeded";
  return Error;
}

} // namespace

TEST(Parser, MinimalProgram) {
  Program P = parseOk("main { skip; }");
  ASSERT_EQ(P.Threads.size(), 1u);
  EXPECT_TRUE(P.Threads[0].IsMain);
  EXPECT_EQ(P.Threads[0].Body.size(), 1u);
}

TEST(Parser, MainIsAlwaysThreadZero) {
  Program P = parseOk("thread a { skip; } main { skip; } thread b { skip; }");
  ASSERT_EQ(P.Threads.size(), 3u);
  EXPECT_EQ(P.Threads[0].Name, "main");
  EXPECT_EQ(P.Threads[1].Name, "a");
  EXPECT_EQ(P.Threads[2].Name, "b");
}

TEST(Parser, Declarations) {
  Program P = parseOk("shared x = 3; shared volatile v; shared a[10];\n"
                      "lock m; main { skip; }");
  ASSERT_EQ(P.Shareds.size(), 3u);
  EXPECT_EQ(P.Shareds[0].Name, "x");
  EXPECT_EQ(P.Shareds[0].Init, 3);
  EXPECT_TRUE(P.Shareds[1].Volatile);
  EXPECT_EQ(P.Shareds[2].ArraySize, 10u);
  ASSERT_EQ(P.Locks.size(), 1u);
  EXPECT_EQ(P.Locks[0].Name, "m");
  EXPECT_EQ(P.Locks[0].Line, 2u);
}

TEST(Parser, NegativeInitializer) {
  Program P = parseOk("shared x = -5; main { skip; }");
  EXPECT_EQ(P.Shareds[0].Init, -5);
}

TEST(Parser, StatementsRoundTrip) {
  Program P = parseOk(R"(
shared x; shared a[4]; lock l;
thread t { x = 1; }
main {
  local r = 1;
  x = r + 1;
  a[r] = 2;
  if (x == 2) { skip; } else if (x == 3) { skip; } else { skip; }
  while (x < 10) { x = x + 1; }
  lock l; unlock l;
  sync l { x = 0; }
  spawn t; join t;
  wait l; notify l; notifyall l;
  assert x >= 0;
}
)");
  const ThreadDecl &Main = P.Threads[0];
  ASSERT_GE(Main.Body.size(), 13u);
  EXPECT_EQ(Main.Body[0]->K, Stmt::Kind::LocalDecl);
  EXPECT_EQ(Main.Body[1]->K, Stmt::Kind::Assign);
  EXPECT_EQ(Main.Body[2]->K, Stmt::Kind::ArrayAssign);
  EXPECT_EQ(Main.Body[3]->K, Stmt::Kind::If);
  ASSERT_EQ(Main.Body[3]->ElseBody.size(), 1u);
  EXPECT_EQ(Main.Body[3]->ElseBody[0]->K, Stmt::Kind::If)
      << "else-if chains nest";
  EXPECT_EQ(Main.Body[4]->K, Stmt::Kind::While);
}

TEST(Parser, ExpressionPrecedence) {
  Program P = parseOk("shared x; main { x = 1 + 2 * 3; }");
  const Expr &E = *P.Threads[0].Body[0]->Value;
  ASSERT_EQ(E.K, Expr::Kind::Binary);
  EXPECT_EQ(E.Op, BinOp::Add);
  EXPECT_EQ(E.Rhs->Op, BinOp::Mul);
}

TEST(Parser, ComparisonBindsTighterThanAnd) {
  Program P = parseOk("shared x; main { x = 1 < 2 && 3 == 3; }");
  const Expr &E = *P.Threads[0].Body[0]->Value;
  EXPECT_EQ(E.Op, BinOp::And);
  EXPECT_EQ(E.Lhs->Op, BinOp::Lt);
  EXPECT_EQ(E.Rhs->Op, BinOp::Eq);
}

TEST(Parser, UnaryAndParens) {
  Program P = parseOk("shared x; main { x = -(1 + 2) * !0; }");
  const Expr &E = *P.Threads[0].Body[0]->Value;
  EXPECT_EQ(E.Op, BinOp::Mul);
  EXPECT_EQ(E.Lhs->K, Expr::Kind::Unary);
}

TEST(Parser, ErrorNoMain) {
  std::string E = parseErr("thread t { skip; }");
  EXPECT_NE(E.find("no 'main'"), std::string::npos);
}

TEST(Parser, ErrorDuplicateMain) {
  std::string E = parseErr("main { skip; } main { skip; }");
  EXPECT_NE(E.find("duplicate"), std::string::npos);
}

TEST(Parser, ErrorDuplicateName) {
  std::string E = parseErr("shared x; lock x; main { skip; }");
  EXPECT_NE(E.find("redefinition"), std::string::npos);
}

TEST(Parser, ErrorMissingSemicolon) {
  std::string E = parseErr("shared x main { skip; }");
  EXPECT_NE(E.find("expected ';'"), std::string::npos);
}

TEST(Parser, ErrorVolatileArray) {
  std::string E = parseErr("shared volatile a[3]; main { skip; }");
  EXPECT_NE(E.find("volatile arrays"), std::string::npos);
}

TEST(Parser, ErrorBadArraySize) {
  parseErr("shared a[0]; main { skip; }");
  parseErr("shared a[-1]; main { skip; }");
}

TEST(Parser, ErrorGarbageStatement) {
  std::string E = parseErr("main { 42; }");
  EXPECT_NE(E.find("expected a statement"), std::string::npos);
}

TEST(Parser, ErrorPositionsReported) {
  std::string E = parseErr("main {\n  x = ;\n}");
  EXPECT_EQ(E.substr(0, 2), "2:");
}
