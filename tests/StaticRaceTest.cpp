//===- tests/StaticRaceTest.cpp - Static tier vs dynamic tier ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validation of the static race tier against the dynamic one: every
/// race the predictive detector reports on a catalog program must be
/// covered by an `rvlint --races` warning on the same variable. This is
/// the completeness contract of analysis/RaceCheck.h — each static filter
/// (thread-escape, static MHB, must-locksets) under-approximates the
/// dynamic condition it discharges, so a dynamically real race can never
/// be filtered away statically.
///
//===----------------------------------------------------------------------===//

#include "analysis/RaceCheck.h"
#include "detect/Detect.h"
#include "lang/Parser.h"
#include "workloads/Catalog.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace rvp;

namespace {

/// The detector reports array cells as "a[3]"; the static tier works on
/// base names.
std::string baseName(const std::string &Var) {
  size_t Bracket = Var.find('[');
  return Bracket == std::string::npos ? Var : Var.substr(0, Bracket);
}

} // namespace

TEST(StaticRace, CoversEveryDynamicCatalogRace) {
  for (const BenchmarkCase &Case : table1Benchmarks()) {
    if (Case.CaseKind != BenchmarkCase::Kind::Program)
      continue; // synthetic rows have no program to analyze

    std::string Error;
    std::optional<Program> P = parseProgram(Case.Source, Error);
    ASSERT_TRUE(P.has_value()) << Case.Name << ": " << Error;

    std::set<std::string> Warned;
    for (const StaticRaceWarning &W : runRaceCheck(*P).Warnings)
      Warned.insert(W.Var);

    Trace T;
    ASSERT_TRUE(benchmarkTrace(Case, T, Error)) << Case.Name << ": "
                                                << Error;
    DetectorOptions Options;
    Options.CollectWitnesses = false;
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    EXPECT_TRUE(R.Unknowns.empty()) << Case.Name;

    for (const RaceReport &Race : R.Races)
      EXPECT_TRUE(Warned.count(baseName(Race.Variable)))
          << Case.Name << ": dynamic race on '" << Race.Variable
          << "' has no static warning (static tier lost completeness)";
  }
}
