//===- tests/TraceIOTest.cpp - Trace text format tests ---------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(TraceIO, RoundTrip) {
  TraceBuilder B;
  B.fork("t1", "t2", "L1");
  B.begin("t2", "L2");
  B.write("t2", "x", 3, "L3");
  B.acquire("t1", "lock", "L4");
  B.read("t1", "x", 3, "L5", /*IsVolatile=*/true);
  B.release("t1", "lock", "L6");
  B.branch("t1", "L7");
  B.end("t2", "L8");
  B.join("t1", "t2", "L9");
  Trace T = B.build();

  std::string Text = writeTraceText(T);
  std::string Error;
  auto Parsed = parseTraceText(Text, Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  ASSERT_EQ(Parsed->size(), T.size());
  for (EventId Id = 0; Id < T.size(); ++Id) {
    const Event &A = T[Id];
    const Event &B2 = (*Parsed)[Id];
    EXPECT_EQ(A.Kind, B2.Kind) << "event " << Id;
    EXPECT_EQ(A.Data, B2.Data) << "event " << Id;
    EXPECT_EQ(A.Volatile, B2.Volatile) << "event " << Id;
    EXPECT_EQ(T.threadName(A.Tid), Parsed->threadName(B2.Tid));
    EXPECT_EQ(T.locName(A.Loc), Parsed->locName(B2.Loc));
  }
}

TEST(TraceIO, RoundTripWaitNotify) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.waitSuspend("t1", "l", 5);
  B.acquire("t2", "l");
  B.notify("t2", "l", 5);
  B.release("t2", "l");
  B.waitResume("t1", "l", 5);
  B.release("t1", "l");
  Trace T = B.build();
  std::string Error;
  auto Parsed = parseTraceText(writeTraceText(T), Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ((*Parsed)[1].Aux, 5u);
  EXPECT_EQ((*Parsed)[3].Aux, 5u);
  EXPECT_EQ(Parsed->notifyOfMatch(5), 3u);
}

TEST(TraceIO, ParsesCommentsAndBlankLines) {
  std::string Error;
  auto T = parseTraceText("# header\n\nwrite t1 x 1\n  \nread t2 x 1\n",
                          Error);
  ASSERT_TRUE(T.has_value()) << Error;
  EXPECT_EQ(T->size(), 2u);
}

TEST(TraceIO, RejectsUnknownKind) {
  std::string Error;
  EXPECT_FALSE(parseTraceText("frobnicate t1 x", Error).has_value());
  EXPECT_NE(Error.find("line 1"), std::string::npos);
}

TEST(TraceIO, RejectsArityErrors) {
  std::string Error;
  EXPECT_FALSE(parseTraceText("write t1 x", Error).has_value());
  EXPECT_FALSE(parseTraceText("read t1 x 1 2", Error).has_value());
  EXPECT_FALSE(parseTraceText("branch", Error).has_value());
  EXPECT_FALSE(parseTraceText("acquire t1", Error).has_value());
}

TEST(TraceIO, RejectsMalformedValue) {
  std::string Error;
  EXPECT_FALSE(parseTraceText("write t1 x abc", Error).has_value());
  EXPECT_FALSE(parseTraceText("write t1 x 1 match=zz", Error).has_value());
}

TEST(TraceIO, SpanSerialization) {
  TraceBuilder B;
  B.write("t1", "x", 1);
  B.write("t1", "x", 2);
  B.write("t1", "x", 3);
  Trace T = B.build();
  std::string Text = writeTraceText(T, {1, 2});
  std::string Error;
  auto Parsed = parseTraceText(Text, Error);
  ASSERT_TRUE(Parsed.has_value());
  ASSERT_EQ(Parsed->size(), 1u);
  EXPECT_EQ((*Parsed)[0].Data, 2);
}
