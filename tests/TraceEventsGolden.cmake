# Schema check for `rvpredict detect --trace-events` (docs/OBSERVABILITY.md):
# every emitted JSONL line must parse as a JSON object and carry the
# documented required fields for its type —
#
#   window: index, begin, end, cops, seconds
#   cop:    window, first, second, loc_first, loc_second, variable,
#           outcome, stage
#   solve:  window, first, second, solver, outcome, seconds
#
# with cop.stage drawn from the documented prune-provenance vocabulary.
# Checked across --jobs={1,4} x --incremental/--no-incremental so the
# parallel and legacy solver paths emit the same schema.
# Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<prog.rv> -DOUT_DIR=<dir>
#         -P TraceEventsGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -DOUT_DIR=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

set(STAGES "static-prune;wcp;signature;lockset;quick-check;unsat;budget;ordered;none")

function(require_fields LINE TYPE FIELDS LABEL)
  foreach(FIELD ${FIELDS})
    string(JSON VALUE ERROR_VARIABLE JSON_ERR GET "${LINE}" "${FIELD}")
    if(JSON_ERR)
      message(FATAL_ERROR "[${LABEL}] ${TYPE} event missing required "
              "field '${FIELD}':\n${LINE}")
    endif()
  endforeach()
endfunction()

function(check_stream EXTRA LABEL)
  set(EVENTS "${OUT_DIR}/events_${LABEL}.jsonl")
  execute_process(
    COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --seed=1 --schedule=rr
            --trace-events=${EVENTS} ${EXTRA}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(RC GREATER 1)
    message(FATAL_ERROR "[${LABEL}] rvpredict detect failed (${RC}):\n"
            "${STDOUT}\n${STDERR}")
  endif()
  if(NOT EXISTS "${EVENTS}")
    message(FATAL_ERROR "[${LABEL}] no trace-events file was written")
  endif()
  file(STRINGS "${EVENTS}" LINES)
  list(LENGTH LINES N)
  if(N EQUAL 0)
    message(FATAL_ERROR "[${LABEL}] trace-events file is empty")
  endif()
  set(SAW_WINDOW 0)
  set(SAW_COP 0)
  foreach(LINE ${LINES})
    string(JSON TYPE ERROR_VARIABLE JSON_ERR GET "${LINE}" type)
    if(JSON_ERR)
      message(FATAL_ERROR "[${LABEL}] line does not parse as a JSON "
              "object with a 'type' field:\n${LINE}\n${JSON_ERR}")
    endif()
    if(TYPE STREQUAL "window")
      set(SAW_WINDOW 1)
      require_fields("${LINE}" window "index;begin;end;cops;seconds"
                     "${LABEL}")
    elseif(TYPE STREQUAL "cop")
      set(SAW_COP 1)
      require_fields("${LINE}" cop
                     "window;first;second;loc_first;loc_second;variable;outcome;stage"
                     "${LABEL}")
      string(JSON STAGE GET "${LINE}" stage)
      list(FIND STAGES "${STAGE}" STAGE_IDX)
      if(STAGE_IDX EQUAL -1)
        message(FATAL_ERROR "[${LABEL}] cop event has undocumented "
                "stage '${STAGE}':\n${LINE}")
      endif()
    elseif(TYPE STREQUAL "solve")
      require_fields("${LINE}" solve
                     "window;first;second;solver;outcome;seconds"
                     "${LABEL}")
    else()
      message(FATAL_ERROR "[${LABEL}] undocumented event type "
              "'${TYPE}':\n${LINE}")
    endif()
  endforeach()
  if(NOT SAW_WINDOW OR NOT SAW_COP)
    message(FATAL_ERROR "[${LABEL}] stream is missing window or cop "
            "events — vacuous check")
  endif()
  message(STATUS "[${LABEL}] ${N} events validated")
endfunction()

foreach(JOBS 1 4)
  foreach(MODE incremental no-incremental)
    if(MODE STREQUAL "incremental")
      set(FLAG "--incremental=true")
    else()
      set(FLAG "--incremental=false")
    endif()
    check_stream("--jobs=${JOBS};${FLAG}" "jobs${JOBS}_${MODE}")
  endforeach()
endforeach()

message(STATUS "trace-events schema check passed")
