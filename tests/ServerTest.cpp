//===- tests/ServerTest.cpp - Framing + streaming detector tests ----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for the rvpredictd building blocks (docs/SERVER.md): the
// framed wire protocol and the incremental StreamDetector. The invariants
// pinned here are what the end-to-end ServerGolden and CheckServer gates
// rely on: chunk boundaries never change results, the cumulative summary
// is byte-identical to the batch report, and a recycled detector carries
// nothing across reset().
//
//===----------------------------------------------------------------------===//

#include "detect/Stream.h"
#include "server/Framing.h"
#include "support/FaultInjector.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <regex>

using namespace rvp;

namespace {

struct FaultGuard {
  FaultGuard() { FaultInjector::reset(); }
  ~FaultGuard() { FaultInjector::reset(); }
};

/// Strips the wall-clock part of report headers so byte-compares only see
/// the findings (mirrors the goldens' normalization).
std::string normalizeTiming(const std::string &S) {
  static const std::regex Timing(" in [0-9.]+s");
  return std::regex_replace(S, Timing, " in Xs");
}

/// A two-thread trace with one unordered write-write race per \p Pairs,
/// each on its own variable so every pair reports separately.
std::string racyTrace(unsigned Pairs) {
  std::string Text;
  for (unsigned I = 0; I < Pairs; ++I) {
    std::string Var = "x" + std::to_string(I);
    Text += "write t1 " + Var + " 1 @w" + std::to_string(I) + "\n";
    Text += "write t2 " + Var + " 2 @v" + std::to_string(I) + "\n";
  }
  return Text;
}

/// Batch reference: parse + detect + render in one shot, exactly what
/// `rvpredict detect` prints for a race run.
std::string batchRaceReport(const std::string &Text,
                            const StreamOptions &Opts) {
  std::string Error;
  auto T = parseTraceText(Text, Error, Opts.Parse);
  EXPECT_TRUE(T.has_value()) << Error;
  DetectionResult R = detectRaces(*T, Opts.Tech, Opts.Detect);
  return renderRaceReport(*T, Opts.Tech, R, Opts.Render);
}

StreamOptions smallWindowOptions(uint32_t Window) {
  StreamOptions Opts;
  Opts.Detect.WindowSize = Window;
  Opts.Render.WitnessTag = true; // Maximal + witnesses, the CLI default
  return Opts;
}

/// Runs a full streaming session over \p Text in \p Chunk-byte pieces and
/// returns the summary. Steps eagerly whenever a window is ready, like
/// the daemon's pump loop.
std::string streamAll(StreamDetector &Det, const std::string &Text,
                      size_t Chunk) {
  std::string Error;
  for (size_t Off = 0; Off < Text.size(); Off += Chunk) {
    Det.feed(std::string_view(Text).substr(
        Off, std::min(Chunk, Text.size() - Off)));
    while (Det.windowReady()) {
      StreamStep Step;
      EXPECT_TRUE(Det.step(Step, /*Degrade=*/false, Error)) << Error;
    }
  }
  std::string Summary;
  EXPECT_TRUE(Det.finish(Summary, Error)) << Error;
  return Summary;
}

// ----------------------------------------------------------------------
// Framing
// ----------------------------------------------------------------------

TEST(ServerFraming, RoundTripCoalesced) {
  std::string Wire = encodeFrame(FrameType::Hello, "technique=rv\n");
  Wire += encodeFrame(FrameType::Data, "write t1 x 1 @a\n");
  Wire += encodeFrame(FrameType::Fin, "");
  FrameDecoder Decoder;
  Decoder.feed(Wire);
  Frame F;
  std::string Error;
  ASSERT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Ready);
  EXPECT_EQ(F.Type, FrameType::Hello);
  EXPECT_EQ(F.Payload, "technique=rv\n");
  ASSERT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Ready);
  EXPECT_EQ(F.Type, FrameType::Data);
  EXPECT_EQ(F.Payload, "write t1 x 1 @a\n");
  ASSERT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Ready);
  EXPECT_EQ(F.Type, FrameType::Fin);
  EXPECT_TRUE(F.Payload.empty());
  EXPECT_EQ(Decoder.next(F, Error), FrameDecoder::Result::NeedMore);
  EXPECT_FALSE(Decoder.midFrame());
}

TEST(ServerFraming, ByteAtATimeDelivery) {
  std::string Wire = encodeFrame(FrameType::Report, "window 0 ok\n");
  FrameDecoder Decoder;
  Frame F;
  std::string Error;
  for (size_t I = 0; I + 1 < Wire.size(); ++I) {
    Decoder.feed(std::string_view(&Wire[I], 1));
    EXPECT_EQ(Decoder.next(F, Error), FrameDecoder::Result::NeedMore);
    EXPECT_TRUE(Decoder.midFrame());
  }
  Decoder.feed(std::string_view(&Wire[Wire.size() - 1], 1));
  ASSERT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Ready);
  EXPECT_EQ(F.Type, FrameType::Report);
  EXPECT_EQ(F.Payload, "window 0 ok\n");
  EXPECT_FALSE(Decoder.midFrame());
}

TEST(ServerFraming, OversizeLengthPoisonsPermanently) {
  // Length 2 MiB > MaxFramePayload, then a perfectly valid frame: the
  // decoder must stay poisoned — resynchronizing inside a hostile byte
  // stream is how protocol confusion bugs happen.
  std::string Wire;
  uint32_t Big = 2u << 20;
  for (int Shift = 24; Shift >= 0; Shift -= 8)
    Wire.push_back(static_cast<char>((Big >> Shift) & 0xff));
  Wire.push_back('D');
  FrameDecoder Decoder;
  Decoder.feed(Wire);
  Frame F;
  std::string Error;
  EXPECT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Malformed);
  EXPECT_FALSE(Error.empty());
  Decoder.feed(encodeFrame(FrameType::Fin, ""));
  EXPECT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Malformed);
}

TEST(ServerFraming, UnknownTypeTagIsMalformed) {
  std::string Wire = encodeFrame(FrameType::Data, "abc");
  Wire[4] = 'X'; // corrupt the tag byte
  FrameDecoder Decoder;
  Decoder.feed(Wire);
  Frame F;
  std::string Error;
  EXPECT_EQ(Decoder.next(F, Error), FrameDecoder::Result::Malformed);
}

TEST(ServerFraming, GarbleFaultCorruptsTheStream) {
  // net.frame_garble flips one received byte upstream of validation; the
  // frame must either fail to decode or decode to different bytes —
  // never crash, and never pretend the stream was clean.
  FaultGuard Guard;
  std::string Error;
  ASSERT_TRUE(
      FaultInjector::configure("seed=1,net.frame_garble", Error))
      << Error;
  std::string Wire = encodeFrame(FrameType::Data, "write t1 x 1 @a\n");
  FrameDecoder Decoder;
  Decoder.feed(Wire);
  FaultInjector::reset(); // only the feed is under fault
  Frame F;
  FrameDecoder::Result R = Decoder.next(F, Error);
  if (R == FrameDecoder::Result::Ready)
    EXPECT_NE(F.Payload, "write t1 x 1 @a\n");
  else
    EXPECT_EQ(R, FrameDecoder::Result::Malformed);
}

// ----------------------------------------------------------------------
// StreamDetector
// ----------------------------------------------------------------------

TEST(StreamDetector, WindowReadyTracksCompleteWindows) {
  StreamDetector Det(smallWindowOptions(4));
  std::string Text = racyTrace(5); // 10 events, window 4 -> 2 full windows
  Det.feed(std::string_view(Text).substr(0, Text.find('\n') + 1));
  EXPECT_FALSE(Det.windowReady()); // 1 event < 4
  Det.feed(std::string_view(Text).substr(Text.find('\n') + 1));
  EXPECT_TRUE(Det.windowReady());
  EXPECT_EQ(Det.pendingWindows(), 2u); // the 2-event tail waits for FIN
  std::string Error;
  StreamStep Step;
  ASSERT_TRUE(Det.step(Step, false, Error)) << Error;
  EXPECT_EQ(Step.Window, 0u);
  EXPECT_EQ(Det.pendingWindows(), 1u);
  ASSERT_TRUE(Det.step(Step, false, Error)) << Error;
  EXPECT_EQ(Step.Window, 1u);
  EXPECT_FALSE(Det.windowReady());
  EXPECT_FALSE(Det.step(Step, false, Error)); // nothing pending
  EXPECT_TRUE(Error.empty());                 // ... and that's not an error
}

TEST(StreamDetector, PartialLinesWaitForTheirNewline) {
  StreamDetector Det(smallWindowOptions(1));
  Det.feed("write t1 x");
  EXPECT_FALSE(Det.windowReady()); // no complete line yet
  Det.feed(" 1 @a\nwrite t2");
  EXPECT_TRUE(Det.windowReady()); // first line completed
  EXPECT_EQ(Det.pendingWindows(), 1u);
}

TEST(StreamDetector, SummaryMatchesBatchAcrossChunkSizes) {
  std::string Text = racyTrace(6); // 12 events
  StreamOptions Opts = smallWindowOptions(5);
  std::string Batch = normalizeTiming(batchRaceReport(Text, Opts));
  for (size_t Chunk : {1u, 7u, 64u, 4096u}) {
    StreamDetector Det(Opts);
    std::string Summary = streamAll(Det, Text, Chunk);
    EXPECT_EQ(normalizeTiming(Summary), Batch)
        << "chunk size " << Chunk << " changed the report";
    EXPECT_EQ(Det.run().WindowsDone, 3u); // 5+5+2 events
  }
}

TEST(StreamDetector, FinishAloneEqualsBatch) {
  // No intermediate steps at all: FIN right after the data must still
  // produce the batch report (the daemon hits this when a client uploads
  // faster than analysis dequeues).
  std::string Text = racyTrace(4);
  StreamOptions Opts = smallWindowOptions(3);
  StreamDetector Det(Opts);
  Det.feed(Text);
  std::string Summary, Error;
  std::vector<StreamStep> Steps;
  ASSERT_TRUE(Det.finish(Summary, Error, &Steps)) << Error;
  EXPECT_EQ(normalizeTiming(Summary),
            normalizeTiming(batchRaceReport(Text, Opts)));
  EXPECT_EQ(Steps.size(), 3u); // 3+3+2 events in 3 windows
}

TEST(StreamDetector, DeltasAreAdditiveAndCountFindings) {
  std::string Text = racyTrace(4); // every window adds races
  StreamDetector Det(smallWindowOptions(2));
  Det.feed(Text);
  std::string Error;
  size_t Total = 0;
  while (Det.windowReady()) {
    StreamStep Step;
    ASSERT_TRUE(Det.step(Step, false, Error)) << Error;
    Total += Step.NewFindings;
    if (Step.NewFindings)
      EXPECT_NE(Step.Delta.find("race on"), std::string::npos);
  }
  std::string Summary;
  ASSERT_TRUE(Det.finish(Summary, Error)) << Error;
  EXPECT_EQ(Total, Det.run().Findings);
  EXPECT_GT(Total, 0u);
}

TEST(StreamDetector, DegradedStepUsesTheWcpTier) {
  std::string Text = racyTrace(4);
  StreamDetector Det(smallWindowOptions(4));
  Det.feed(Text);
  std::string Error;
  StreamStep Step;
  ASSERT_TRUE(Det.step(Step, /*Degrade=*/true, Error)) << Error;
  EXPECT_TRUE(Step.Degraded);
  EXPECT_EQ(Det.run().DegradedWindows, 1u);
  ASSERT_TRUE(Det.step(Step, /*Degrade=*/false, Error)) << Error;
  EXPECT_FALSE(Step.Degraded);
  EXPECT_EQ(Det.run().DegradedWindows, 1u);
}

TEST(StreamDetector, ResetLeavesNoResidue) {
  // Session one: a racy trace. After reset(), a fresh trace with its own
  // names must produce exactly what a brand-new detector produces — no
  // interned strings, findings, or clock state may survive.
  StreamOptions Opts = smallWindowOptions(4);
  StreamDetector Recycled(Opts);
  streamAll(Recycled, racyTrace(5), 64);
  Recycled.reset();
  std::string TextB = "write t3 y 1 @p\nread t4 y 1 @q\n";
  std::string Recycled2 = streamAll(Recycled, TextB, 8);
  StreamDetector Fresh(Opts);
  std::string FreshOut = streamAll(Fresh, TextB, 8);
  EXPECT_EQ(normalizeTiming(Recycled2), normalizeTiming(FreshOut));
  EXPECT_EQ(Recycled.run().WindowsDone, Fresh.run().WindowsDone);
}

TEST(StreamDetector, ParseErrorSurfacesFromCheckParse) {
  StreamOptions Opts = smallWindowOptions(4);
  StreamDetector Det(Opts);
  Det.feed("write t1 x 1 @a\nbogus line here\n");
  std::string Error;
  EXPECT_FALSE(Det.checkParse(Error));
  EXPECT_FALSE(Error.empty());
}

TEST(StreamDetector, SkipBadEventsCoversSemanticRejects) {
  // Satellite of the daemon work: --skip-bad-events drops lines the
  // grammar accepts but the consistency checker rejects (a release by a
  // non-holder, an impossible read value), and counts both kinds.
  std::string Text = "write t1 x 1 @a1\n"
                     "acquire t1 m @a2\n"
                     "release t2 m @b1\n" // t2 never acquired m
                     "read t2 x 1 @b2\n"
                     "read t2 x 7 @b3\n" // 7 was never written
                     "release t1 m @a3\n";
  TraceParseOptions Parse;
  Parse.SkipBadEvents = true;
  TraceParseStats Stats;
  std::string Error;
  auto T = parseTraceText(Text, Error, Parse, &Stats);
  ASSERT_TRUE(T.has_value()) << Error;
  EXPECT_EQ(Stats.SkippedEvents, 2u);
  EXPECT_EQ(T->size(), 4u);
  // The sanitized parse equals parsing the pre-cleaned text directly.
  std::string Cleaned = "write t1 x 1 @a1\n"
                        "acquire t1 m @a2\n"
                        "read t2 x 1 @b2\n"
                        "release t1 m @a3\n";
  auto TC = parseTraceText(Cleaned, Error, TraceParseOptions());
  ASSERT_TRUE(TC.has_value()) << Error;
  EXPECT_EQ(writeTraceText(*T), writeTraceText(*TC));
}

TEST(StreamDetector, RestoreSuspendsUntilPrefixCoversWindows) {
  // Crash recovery: run two windows, capture the state, then restore it
  // into a fresh detector. Before the replayed prefix covers the restored
  // windows, nothing is pending; after a full replay the summary matches
  // the uninterrupted run.
  std::string Text = racyTrace(6); // 12 events
  StreamOptions Opts = smallWindowOptions(4);
  StreamDetector Full(Opts);
  std::string Expected = streamAll(Full, Text, 64);

  StreamDetector First(Opts);
  First.feed(Text);
  std::string Error;
  StreamStep Step;
  ASSERT_TRUE(First.step(Step, false, Error)) << Error;
  ASSERT_TRUE(First.step(Step, false, Error)) << Error;
  std::string Saved = First.state();
  ASSERT_FALSE(Saved.empty());

  StreamDetector Resumed(Opts);
  Resumed.restore(Saved, 2);
  Resumed.feed(Text); // full replay, as the daemon requires
  EXPECT_EQ(Resumed.pendingWindows(), 1u); // only the third window is new
  ASSERT_TRUE(Resumed.step(Step, false, Error)) << Error;
  EXPECT_EQ(Step.Window, 2u);
  std::string Summary;
  ASSERT_TRUE(Resumed.finish(Summary, Error)) << Error;
  EXPECT_EQ(normalizeTiming(Summary), normalizeTiming(Expected));
}

TEST(StreamDetector, ParseStreamPropertyNames) {
  StreamProperty P = StreamProperty::Race;
  EXPECT_TRUE(parseStreamProperty("race", P));
  EXPECT_EQ(P, StreamProperty::Race);
  EXPECT_TRUE(parseStreamProperty("atomicity", P));
  EXPECT_EQ(P, StreamProperty::Atomicity);
  EXPECT_TRUE(parseStreamProperty("deadlock", P));
  EXPECT_EQ(P, StreamProperty::Deadlock);
  EXPECT_FALSE(parseStreamProperty("races", P));
  EXPECT_FALSE(parseStreamProperty("", P));
}

} // namespace
