//===- tests/ResilienceTest.cpp - Degradation & checkpoint tests -----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The robustness layer (docs/ROBUSTNESS.md): fault-spec parsing, the
/// retry-budget ladder, checkpoint framing, and — with injected faults —
/// the end-to-end soundness guarantees: degraded runs report a subset of
/// the fault-free races, with the difference fully covered by the unknown
/// section, and witnesses re-derived after a session fallback validate
/// identically.
///
//===----------------------------------------------------------------------===//

#include "detect/Resilience.h"

#include "detect/Atomicity.h"
#include "detect/Checkpoint.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "support/FaultInjector.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

using namespace rvp;

namespace {

/// Clears the process-wide fault configuration when a test exits, so a
/// failing ASSERT cannot leak faults into later tests.
struct FaultGuard {
  FaultGuard() { FaultInjector::reset(); }
  ~FaultGuard() { FaultInjector::reset(); }
};

void configureOrDie(const std::string &Spec) {
  std::string Error;
  ASSERT_TRUE(FaultInjector::configure(Spec, Error)) << Error;
}

/// Figure 4 of the paper: one real race (f3,f10) under Maximal.
Trace figure4Trace() {
  TraceBuilder B;
  B.fork("t1", "t2", "f1");
  B.acquire("t1", "l", "f2");
  B.write("t1", "x", 1, "f3");
  B.write("t1", "y", 1, "f4");
  B.release("t1", "l", "f5");
  B.begin("t2", "f6");
  B.acquire("t2", "l", "f7");
  B.read("t2", "y", 1, "f8");
  B.release("t2", "l", "f9");
  B.read("t2", "x", 1, "f10");
  B.branch("t2", "f11");
  B.write("t2", "z", 1, "f12");
  B.end("t2", "f13");
  B.join("t1", "t2", "f14");
  B.read("t1", "z", 1, "f15");
  return B.build();
}

/// A per-test checkpoint directory, wiped so snapshots from an earlier
/// ctest invocation cannot leak into this one.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + Name;
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec);
  return Dir;
}

/// Variable + unordered loc pair — the cross-run identity of a finding,
/// stable between race reports and unknown entries.
std::string keyOf(const std::string &Var, const std::string &LocA,
                  const std::string &LocB) {
  return Var + "|" + std::min(LocA, LocB) + "|" + std::max(LocA, LocB);
}

} // namespace

//===----------------------------------------------------------------------===//
// Fault spec parsing and triggers
//===----------------------------------------------------------------------===//

TEST(FaultSpec, NthTriggerFiresExactlyOnce) {
  FaultGuard Guard;
  configureOrDie("solver.timeout=2");
  EXPECT_FALSE(FaultInjector::shouldFail(faults::SolverTimeout));
  EXPECT_TRUE(FaultInjector::shouldFail(faults::SolverTimeout));
  EXPECT_FALSE(FaultInjector::shouldFail(faults::SolverTimeout));
  EXPECT_EQ(FaultInjector::instance().hits(faults::SolverTimeout), 3u);
  EXPECT_EQ(FaultInjector::instance().fired(faults::SolverTimeout), 1u);
}

TEST(FaultSpec, FromNthTriggerFiresFromThereOn) {
  FaultGuard Guard;
  configureOrDie("session.corrupt=2+");
  EXPECT_FALSE(FaultInjector::shouldFail(faults::SessionCorrupt));
  EXPECT_TRUE(FaultInjector::shouldFail(faults::SessionCorrupt));
  EXPECT_TRUE(FaultInjector::shouldFail(faults::SessionCorrupt));
}

TEST(FaultSpec, BareSiteFiresAlways) {
  FaultGuard Guard;
  configureOrDie("trace.garble");
  EXPECT_TRUE(FaultInjector::shouldFail(faults::TraceGarble));
  EXPECT_TRUE(FaultInjector::shouldFail(faults::TraceGarble));
  // Unrelated sites are untouched.
  EXPECT_FALSE(FaultInjector::shouldFail(faults::SolverTimeout));
}

TEST(FaultSpec, PercentTriggerIsDeterministicPerSeed) {
  FaultGuard Guard;
  auto sample = [] {
    std::vector<bool> Out;
    for (int I = 0; I < 64; ++I)
      Out.push_back(FaultInjector::shouldFail(faults::SolverTimeout));
    return Out;
  };
  configureOrDie("seed=7,solver.timeout=50%");
  std::vector<bool> First = sample();
  configureOrDie("seed=7,solver.timeout=50%");
  EXPECT_EQ(sample(), First);
  EXPECT_TRUE(std::find(First.begin(), First.end(), true) != First.end());
  EXPECT_TRUE(std::find(First.begin(), First.end(), false) != First.end());
}

TEST(FaultSpec, RejectsUnknownSiteAndMalformedTrigger) {
  FaultGuard Guard;
  std::string Error;
  EXPECT_FALSE(FaultInjector::configure("no.such.site", Error));
  EXPECT_NE(Error.find("no.such.site"), std::string::npos) << Error;
  EXPECT_FALSE(FaultInjector::configure("solver.timeout=abc", Error));
  EXPECT_FALSE(FaultInjector::configure("solver.timeout=", Error));
}

TEST(FaultSpec, EmptySpecDisablesInjection) {
  FaultGuard Guard;
  configureOrDie("solver.timeout");
  EXPECT_TRUE(FaultInjector::enabled());
  configureOrDie("");
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_FALSE(FaultInjector::shouldFail(faults::SolverTimeout));
}

TEST(FaultSpec, KnownSitesCoverTheCatalog) {
  const std::vector<std::string> &Sites = knownFaultSites();
  for (const char *Site :
       {faults::SolverTimeout, faults::SessionCorrupt, faults::Z3Unavailable,
        faults::SatDbAlloc, faults::TraceShortRead, faults::TraceGarble,
        faults::DetectAbort})
    EXPECT_TRUE(std::find(Sites.begin(), Sites.end(), Site) != Sites.end())
        << Site;
}

//===----------------------------------------------------------------------===//
// Retry budget parsing
//===----------------------------------------------------------------------===//

TEST(BudgetList, ParsesSuffixes) {
  std::vector<double> Out;
  std::string Error;
  ASSERT_TRUE(parseBudgetList("50ms,250ms,1s", Out, Error)) << Error;
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_DOUBLE_EQ(Out[0], 0.05);
  EXPECT_DOUBLE_EQ(Out[1], 0.25);
  EXPECT_DOUBLE_EQ(Out[2], 1.0);
  ASSERT_TRUE(parseBudgetList("100us", Out, Error)) << Error;
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_DOUBLE_EQ(Out[0], 1e-4);
  // Bare numbers mean seconds; an empty spec is an empty ladder.
  ASSERT_TRUE(parseBudgetList(" 2 ", Out, Error)) << Error;
  EXPECT_DOUBLE_EQ(Out[0], 2.0);
  ASSERT_TRUE(parseBudgetList("", Out, Error)) << Error;
  EXPECT_TRUE(Out.empty());
}

TEST(BudgetList, RejectsMalformedEntries) {
  std::vector<double> Out;
  std::string Error;
  for (const char *Bad : {"fast", "-1s", "0ms", "50ms,,1s", "1s,nope"}) {
    EXPECT_FALSE(parseBudgetList(Bad, Out, Error)) << Bad;
    EXPECT_TRUE(Out.empty()) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint framing
//===----------------------------------------------------------------------===//

TEST(Checkpoint, HashIsStableAndSeedChained) {
  EXPECT_EQ(checkpointHash("abc"), checkpointHash("abc"));
  EXPECT_NE(checkpointHash("abc"), checkpointHash("abd"));
  // Chaining folds both inputs in: hash(flags, hash(trace)).
  EXPECT_NE(checkpointHash("abc", checkpointHash("x")),
            checkpointHash("abc", checkpointHash("y")));
}

TEST(Checkpoint, StoreRoundTripsNewestSnapshot) {
  std::string Dir = freshDir("rvp_ckpt_roundtrip");
  CheckpointStore Store(Dir, /*Fingerprint=*/0x1234);
  ASSERT_TRUE(Store.enabled());
  std::string Payload;
  EXPECT_EQ(Store.loadLatest(Payload), -1);
  ASSERT_TRUE(Store.save(3, "state after three\n"));
  ASSERT_TRUE(Store.save(7, "state after seven\n"));
  EXPECT_EQ(Store.loadLatest(Payload), 7);
  EXPECT_EQ(Payload, "state after seven\n");
}

TEST(Checkpoint, FingerprintMismatchIsReportedDistinctly) {
  std::string Dir = freshDir("rvp_ckpt_fingerprint");
  CheckpointStore Writer(Dir, 0xaaaa);
  std::string Payload;
  CheckpointLoad Outcome = CheckpointLoad::Loaded;
  // Empty directory: no snapshot, and explicitly *not* a mismatch.
  EXPECT_EQ(Writer.loadLatest(Payload, &Outcome), -1);
  EXPECT_EQ(Outcome, CheckpointLoad::None);
  ASSERT_TRUE(Writer.save(2, "payload\n"));
  // Another analysis' fingerprint: refused, and the caller can tell the
  // difference from "nothing there" (the drivers turn this into exit 2
  // instead of silently reanalyzing — docs/ROBUSTNESS.md).
  CheckpointStore Other(Dir, 0xbbbb);
  EXPECT_EQ(Other.loadLatest(Payload, &Outcome), -1);
  EXPECT_EQ(Outcome, CheckpointLoad::FingerprintMismatch);
  CheckpointStore Same(Dir, 0xaaaa);
  EXPECT_EQ(Same.loadLatest(Payload, &Outcome), 2);
  EXPECT_EQ(Outcome, CheckpointLoad::Loaded);
  EXPECT_EQ(Payload, "payload\n");
}

TEST(Checkpoint, EmptyDirDisablesTheStore) {
  CheckpointStore Store("", 0x1);
  EXPECT_FALSE(Store.enabled());
  std::string Payload;
  EXPECT_EQ(Store.loadLatest(Payload), -1);
}

//===----------------------------------------------------------------------===//
// Degradation end-to-end
//===----------------------------------------------------------------------===//

TEST(Degradation, ExhaustedBudgetsLandInUnknownNeverInRaces) {
  FaultGuard Guard;
  configureOrDie("solver.timeout,session.corrupt");
  DetectorOptions Options;
  Options.RetryBudgets = {0.01, 0.01};
  DetectionResult R = detectRaces(figure4Trace(), Technique::Maximal, Options);
  // Every solver answer is Unknown, so nothing may be claimed as a race;
  // the candidates surface in the unknown section instead.
  EXPECT_TRUE(R.Races.empty());
  ASSERT_FALSE(R.Unknowns.empty());
  EXPECT_EQ(R.Stats.UnknownCops, R.Unknowns.size());
  for (const UnknownReport &U : R.Unknowns)
    EXPECT_GT(U.Attempts, 1u) << "ladder was not escalated";
  EXPECT_GT(R.Stats.SolverRetries, 0u);
  EXPECT_GT(R.Stats.DegradedSessions, 0u);
}

TEST(Degradation, SessionCorruptionRebuildKeepsResultsIdentical) {
  Trace T = figure4Trace();
  DetectionResult Healthy = detectRaces(T, Technique::Maximal);

  FaultGuard Guard;
  configureOrDie("session.corrupt=1"); // first query poisons the session
  DetectionResult Degraded = detectRaces(T, Technique::Maximal);

  EXPECT_GT(Degraded.Stats.DegradedSessions, 0u);
  ASSERT_EQ(Degraded.Races.size(), Healthy.Races.size());
  EXPECT_TRUE(Degraded.Unknowns.empty());
  for (size_t I = 0; I < Healthy.Races.size(); ++I) {
    EXPECT_EQ(Degraded.Races[I].LocFirst, Healthy.Races[I].LocFirst);
    EXPECT_EQ(Degraded.Races[I].LocSecond, Healthy.Races[I].LocSecond);
    // The witness re-derived after the fallback must validate and match
    // the healthy session's witness event-for-event.
    EXPECT_TRUE(Degraded.Races[I].WitnessValid);
    EXPECT_EQ(Degraded.Races[I].Witness, Healthy.Races[I].Witness);
  }
}

TEST(Degradation, DeadSessionFallsBackToOneShotSolving) {
  Trace T = figure4Trace();
  DetectionResult Healthy = detectRaces(T, Technique::Maximal);

  FaultGuard Guard;
  // Poison every session query: quarantine, rebuild, quarantine again →
  // the host drops to fresh one-shot solvers, which still answer.
  configureOrDie("session.corrupt");
  DetectionResult Degraded = detectRaces(T, Technique::Maximal);

  EXPECT_GE(Degraded.Stats.DegradedSessions, 2u);
  ASSERT_EQ(Degraded.raceCount(), Healthy.raceCount());
  EXPECT_TRUE(Degraded.Unknowns.empty());
  for (size_t I = 0; I < Healthy.Races.size(); ++I) {
    EXPECT_TRUE(Degraded.Races[I].WitnessValid);
    EXPECT_EQ(Degraded.Races[I].Witness, Healthy.Races[I].Witness);
  }
}

TEST(Degradation, Z3OutageFallsBackToIdl) {
  Trace T = figure4Trace();
  DetectorOptions Idl;
  Idl.SolverName = "idl";
  DetectionResult Expected = detectRaces(T, Technique::Maximal, Idl);

  FaultGuard Guard;
  configureOrDie("z3.unavailable");
  DetectorOptions Z3;
  Z3.SolverName = "z3";
  DetectionResult Actual = detectRaces(T, Technique::Maximal, Z3);

  ASSERT_EQ(Actual.raceCount(), Expected.raceCount());
  for (size_t I = 0; I < Expected.Races.size(); ++I) {
    EXPECT_EQ(Actual.Races[I].LocFirst, Expected.Races[I].LocFirst);
    EXPECT_EQ(Actual.Races[I].LocSecond, Expected.Races[I].LocSecond);
  }
}

TEST(Degradation, RandomizedFaultyRunAgreesModuloUnknowns) {
  // Soundness under partial outage: whatever a fault-injected run reports
  // as a race must be a fault-free race, and every fault-free race it
  // misses must sit in its unknown section.
  for (uint64_t Seed : {1u, 2u, 3u}) {
    SyntheticSpec Spec;
    Spec.Workers = 4;
    Spec.TargetEvents = 2000;
    Spec.PlainRaces = 2;
    Spec.RvOnlyRaces = 1;
    Spec.Seed = Seed;
    Trace T = generateSynthetic(Spec);

    DetectorOptions Options;
    Options.RetryBudgets = {0.05, 0.2};
    DetectionResult Healthy = detectRaces(T, Technique::Maximal, Options);

    FaultGuard Guard;
    std::string FaultSpecStr =
        "seed=" + std::to_string(Seed) + ",solver.timeout=40%";
    configureOrDie(FaultSpecStr);
    DetectionResult Faulty = detectRaces(T, Technique::Maximal, Options);
    FaultInjector::reset();

    std::set<std::string> HealthyKeys, FaultyKeys, UnknownKeys;
    for (const RaceReport &R : Healthy.Races)
      HealthyKeys.insert(keyOf(R.Variable, R.LocFirst, R.LocSecond));
    for (const RaceReport &R : Faulty.Races)
      FaultyKeys.insert(keyOf(R.Variable, R.LocFirst, R.LocSecond));
    for (const UnknownReport &U : Faulty.Unknowns)
      UnknownKeys.insert(keyOf(U.Variable, U.LocFirst, U.LocSecond));

    for (const std::string &Key : FaultyKeys)
      EXPECT_TRUE(HealthyKeys.count(Key))
          << "seed " << Seed << ": fault-injected run invented race " << Key;
    for (const std::string &Key : HealthyKeys)
      EXPECT_TRUE(FaultyKeys.count(Key) || UnknownKeys.count(Key))
          << "seed " << Seed << ": race " << Key
          << " silently vanished under faults";
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint resume through the drivers
//===----------------------------------------------------------------------===//

namespace {

/// A multi-window workload with races, an atomicity violation, and a
/// deadlock, so each driver accumulates non-trivial resumable state.
Trace resumableWorkload() {
  SyntheticSpec Spec;
  Spec.Workers = 4;
  Spec.TargetEvents = 4000;
  Spec.PlainRaces = 2;
  Spec.AtomicityPairs = 1;
  Spec.DeadlockCycles = 1;
  Spec.AlignWindow = 1000;
  Trace T = generateSynthetic(Spec);
  return T;
}

/// Multi-window options; pass an empty \p Dir for the checkpoint-free
/// baseline with the same windowing.
DetectorOptions checkpointOptions(const Trace &T, const std::string &Dir) {
  DetectorOptions Options;
  Options.WindowSize = 1000;
  Options.CheckpointDir = Dir;
  if (!Dir.empty())
    Options.CheckpointFingerprint = checkpointHash(writeTraceText(T));
  return Options;
}

} // namespace

TEST(CheckpointResume, RaceDriverResumesToIdenticalResult) {
  Trace T = resumableWorkload();
  DetectionResult Fresh =
      detectRaces(T, Technique::Maximal, checkpointOptions(T, ""));

  std::string Dir = freshDir("rvp_resume_race");
  DetectorOptions Options = checkpointOptions(T, Dir);
  DetectionResult First = detectRaces(T, Technique::Maximal, Options);
  ASSERT_GT(First.Stats.Windows, 1u) << "workload must span windows";

  // Second run finds the final snapshot, restores, and skips every
  // window: no new solver work, identical report.
  DetectionResult Resumed = detectRaces(T, Technique::Maximal, Options);
  EXPECT_EQ(Resumed.Stats.SolverCalls, First.Stats.SolverCalls);
  ASSERT_EQ(Resumed.raceCount(), Fresh.raceCount());
  for (size_t I = 0; I < Fresh.Races.size(); ++I) {
    EXPECT_EQ(Resumed.Races[I].LocFirst, Fresh.Races[I].LocFirst);
    EXPECT_EQ(Resumed.Races[I].LocSecond, Fresh.Races[I].LocSecond);
    EXPECT_EQ(Resumed.Races[I].Witness, Fresh.Races[I].Witness);
    EXPECT_EQ(Resumed.Races[I].WitnessValid, Fresh.Races[I].WitnessValid);
  }
}

TEST(CheckpointResume, AtomicityDriverResumesToIdenticalResult) {
  Trace T = resumableWorkload();
  AtomicityResult Fresh = detectAtomicityViolations(T, checkpointOptions(T, ""));

  std::string Dir = freshDir("rvp_resume_atom");
  DetectorOptions Options = checkpointOptions(T, Dir);
  AtomicityResult First = detectAtomicityViolations(T, Options);
  AtomicityResult Resumed = detectAtomicityViolations(T, Options);
  EXPECT_EQ(Resumed.Stats.SolverCalls, First.Stats.SolverCalls);
  ASSERT_EQ(Resumed.Violations.size(), Fresh.Violations.size());
  for (size_t I = 0; I < Fresh.Violations.size(); ++I) {
    EXPECT_EQ(Resumed.Violations[I].Variable, Fresh.Violations[I].Variable);
    EXPECT_EQ(Resumed.Violations[I].LocFirst, Fresh.Violations[I].LocFirst);
    EXPECT_EQ(Resumed.Violations[I].LocRemote, Fresh.Violations[I].LocRemote);
    EXPECT_EQ(Resumed.Violations[I].LocSecond, Fresh.Violations[I].LocSecond);
  }
}

TEST(CheckpointResume, DeadlockDriverResumesToIdenticalResult) {
  Trace T = resumableWorkload();
  DeadlockResult Fresh = detectDeadlocks(T, checkpointOptions(T, ""));

  std::string Dir = freshDir("rvp_resume_dl");
  DetectorOptions Options = checkpointOptions(T, Dir);
  DeadlockResult First = detectDeadlocks(T, Options);
  DeadlockResult Resumed = detectDeadlocks(T, Options);
  EXPECT_EQ(Resumed.Stats.SolverCalls, First.Stats.SolverCalls);
  ASSERT_EQ(Resumed.Deadlocks.size(), Fresh.Deadlocks.size());
  for (size_t I = 0; I < Fresh.Deadlocks.size(); ++I) {
    EXPECT_EQ(Resumed.Deadlocks[I].LocRequestA, Fresh.Deadlocks[I].LocRequestA);
    EXPECT_EQ(Resumed.Deadlocks[I].LocRequestB, Fresh.Deadlocks[I].LocRequestB);
  }
}

TEST(CheckpointResume, UnknownsSurviveTheSnapshot) {
  // Unknown entries are resumable state too: a run whose solver always
  // times out checkpoints its unknowns, and the resumed run reloads them
  // instead of silently dropping the section.
  Trace T = figure4Trace();
  std::string Dir = freshDir("rvp_resume_unknown");
  DetectorOptions Options = checkpointOptions(T, Dir);

  {
    FaultGuard Guard;
    configureOrDie("solver.timeout,session.corrupt");
    DetectionResult Faulty = detectRaces(T, Technique::Maximal, Options);
    ASSERT_FALSE(Faulty.Unknowns.empty());
  }

  // Resume fault-free: every window is already covered, so the unknowns
  // come straight from the snapshot.
  DetectionResult Resumed = detectRaces(T, Technique::Maximal, Options);
  EXPECT_FALSE(Resumed.Unknowns.empty());
  EXPECT_EQ(Resumed.Stats.UnknownCops, Resumed.Unknowns.size());
}
