//===- tests/DetectInternalsTest.cpp - COP/lockset/encoder internals ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Cop.h"
#include "detect/Lockset.h"
#include "detect/RaceEncoder.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

using namespace rvp;

// ------------------------------------------------------------------ COPs

TEST(Cop, EnumeratesConflictingPairs) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.read("t2", "x", 1);  // 1
  B.read("t3", "x", 1);  // 2
  B.write("t1", "y", 1); // 3
  Trace T = B.build();
  std::vector<Cop> Cops = collectCops(T, T.fullSpan());
  // (0,1), (0,2); the two reads do not conflict; y has one access.
  ASSERT_EQ(Cops.size(), 2u);
  EXPECT_EQ(Cops[0].First, 0u);
  EXPECT_EQ(Cops[0].Second, 1u);
  EXPECT_EQ(Cops[1].Second, 2u);
}

TEST(Cop, RespectsWindow) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.write("t2", "x", 2); // 1
  B.write("t1", "x", 3); // 2
  Trace T = B.build();
  // (0,1) and (1,2); (0,2) is same-thread and therefore not a COP.
  EXPECT_EQ(collectCops(T, T.fullSpan()).size(), 2u);
  EXPECT_EQ(collectCops(T, {0, 2}).size(), 1u);
  EXPECT_EQ(collectCops(T, {1, 3}).size(), 1u);
  EXPECT_EQ(collectCops(T, {2, 3}).size(), 0u);
}

TEST(Cop, SignatureIsUnordered) {
  TraceBuilder B;
  B.write("t1", "x", 1, "locA");
  B.write("t2", "x", 2, "locB");
  Trace T = B.build();
  EXPECT_EQ(RaceSignature::of(T, 0, 1).key(),
            RaceSignature::of(T, 1, 0).key());
}

// --------------------------------------------------------------- lockset

TEST(Lockset, TracksHeldLocks) {
  TraceBuilder B;
  B.acquire("t1", "l1");  // 0
  B.acquire("t1", "l2");  // 1
  B.write("t1", "x", 1);  // 2: holds {l1,l2}
  B.release("t1", "l2");  // 3
  B.write("t1", "x", 2);  // 4: holds {l1}
  B.release("t1", "l1");  // 5
  B.write("t1", "x", 3);  // 6: holds {}
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_EQ(Ls.heldAt(2).size(), 2u);
  EXPECT_EQ(Ls.heldAt(4).size(), 1u);
  EXPECT_TRUE(Ls.heldAt(6).empty());
}

TEST(Lockset, DisjointnessBySharedLock) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");
  B.acquire("t2", "l");
  B.acquire("t2", "m");
  B.write("t2", "x", 2); // 5
  B.release("t2", "m");
  B.release("t2", "l");
  B.write("t3", "x", 3); // 8
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_FALSE(Ls.disjoint(1, 5)) << "both hold l";
  EXPECT_TRUE(Ls.disjoint(1, 8));
  EXPECT_TRUE(Ls.disjoint(5, 8));
}

TEST(Lockset, QuickCheckFiltersOrderedAndLocked) {
  TraceBuilder B;
  B.write("t1", "a", 1);  // 0: MHB-ordered with 4 via fork
  B.fork("t1", "t2");     // 1
  B.begin("t2");          // 2
  B.write("t2", "a", 2);  // 3
  B.write("t2", "b", 1);  // 4
  B.write("t1", "b", 2);  // 5: concurrent with 4 -> passes
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  QuickCheck Qc(T, T.fullSpan(), Mhb);
  EXPECT_FALSE(Qc.pass({0, 3})) << "fork orders the pair";
  EXPECT_TRUE(Qc.pass({4, 5}));
}

// --------------------------------------------------------------- encoder

namespace {

struct EncoderFixture {
  EncoderFixture(Trace Built)
      : T(std::move(Built)), Mhb(T, T.fullSpan(), ClosureConfig::mhb()),
        Encoder(T, T.fullSpan(), Mhb, T.initialValues()) {}

  SatResult solveRace(EventId A, EventId B) {
    FormulaBuilder FB;
    NodeRef Root = Encoder.encodeMaximalRace(FB, A, B);
    return createIdlSolver()->solve(FB, Root, Deadline(), nullptr);
  }

  Trace T;
  EventClosure Mhb;
  RaceEncoder Encoder;
};

} // namespace

TEST(RaceEncoder, GuardingBranchesPerThread) {
  TraceBuilder B;
  B.branch("t1");        // 0
  B.branch("t1");        // 1
  B.write("t1", "x", 1); // 2
  B.fork("t1", "t2");    // 3
  B.begin("t2");         // 4
  B.write("t2", "y", 1); // 5
  B.branch("t1");        // 6: after the fork, does NOT guard t2
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  RaceEncoder Encoder(T, T.fullSpan(), Mhb, T.initialValues());

  // For t1's write: only the last of its own preceding branches.
  EXPECT_EQ(Encoder.guardingBranches(2), (std::vector<EventId>{1}));
  // For t2's write: t1's branch 1 (before the fork) guards it via MHB.
  EXPECT_EQ(Encoder.guardingBranches(5), (std::vector<EventId>{1}));
}

TEST(RaceEncoder, MhbOrderedPairIsUnsat) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.fork("t1", "t2");    // 1
  B.begin("t2");         // 2
  B.write("t2", "x", 2); // 3
  EncoderFixture F(B.build());
  EXPECT_EQ(F.solveRace(0, 3), SatResult::Unsat);
}

TEST(RaceEncoder, ConcurrentPairIsSat) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.begin("t2");
  B.write("t1", "x", 1); // 2
  B.write("t2", "x", 2); // 3
  EncoderFixture F(B.build());
  EXPECT_EQ(F.solveRace(2, 3), SatResult::Sat);
}

TEST(RaceEncoder, WindowInitialValueEnablesReads) {
  // A read of value 7 is only justifiable if the window's initial value
  // is 7 (set by a write in a previous window).
  TraceBuilder B;
  B.write("t1", "x", 7);  // 0: previous window
  B.branch("t2");         // 1: window starts here
  B.read("t2", "x", 7);   // 2
  B.branch("t2");         // 3
  B.write("t2", "y", 1);  // 4
  B.write("t1", "y", 2);  // 5
  Trace T = B.build();
  Span Window = {1, 6};
  EventClosure Mhb(T, Window, ClosureConfig::mhb());

  // With the correct carried-in value, the race on y is feasible.
  std::vector<Value> Carried(T.numVars(), 0);
  Carried[T.internVar("x")] = 7;
  RaceEncoder Good(T, Window, Mhb, Carried);
  FormulaBuilder FB1;
  EXPECT_EQ(createIdlSolver()->solve(
                FB1, Good.encodeMaximalRace(FB1, 4, 5), Deadline(), nullptr),
            SatResult::Sat);

  // With a wrong initial value the guarded read can never be concrete.
  RaceEncoder Bad(T, Window, Mhb, std::vector<Value>(T.numVars(), 0));
  FormulaBuilder FB2;
  EXPECT_EQ(createIdlSolver()->solve(
                FB2, Bad.encodeMaximalRace(FB2, 4, 5), Deadline(), nullptr),
            SatResult::Unsat);
}

TEST(RaceEncoder, InterferingWriteForcesOrdering) {
  // b is guarded by a branch whose read saw value 1 from w1; a second
  // write w2 of a different value must not land between w1 and the read.
  TraceBuilder B;
  B.write("t1", "v", 1);  // 0: w1
  B.read("t2", "v", 1);   // 1: guarded read
  B.branch("t2");         // 2
  B.write("t2", "x", 1);  // 3: race event b
  B.write("t1", "v", 9);  // 4: w2 (interferer)
  B.write("t3", "x", 2);  // 5: race event a'
  EncoderFixture F(B.build());
  // The race (3,5) is feasible: order w1 < read < w2.
  EXPECT_EQ(F.solveRace(3, 5), SatResult::Sat);
}

TEST(RaceEncoder, SaidRejectsValueChangingAdjacency) {
  // Said: the read of x must keep value 0, so the write cannot be moved
  // next to it.
  TraceBuilder B;
  B.read("t2", "x", 0);  // 0
  B.write("t1", "x", 1); // 1
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  RaceEncoder Encoder(T, T.fullSpan(), Mhb, T.initialValues());
  FormulaBuilder FB;
  NodeRef Root = Encoder.encodeSaidRace(FB, 0, 1);
  EXPECT_EQ(createIdlSolver()->solve(FB, Root, Deadline(), nullptr),
            SatResult::Unsat);
  // The maximal encoding has no such constraint (nothing branches on it).
  FormulaBuilder FB2;
  NodeRef Root2 = Encoder.encodeMaximalRace(FB2, 0, 1);
  EXPECT_EQ(createIdlSolver()->solve(FB2, Root2, Deadline(), nullptr),
            SatResult::Sat);
}

// ----------------------------------------------------- cone of influence

namespace {

bool coneHas(const RaceEncoder::ConeInfo &Info, EventId E) {
  return std::binary_search(Info.Events.begin(), Info.Events.end(), E);
}

/// Sliced and unsliced encodings must be equisatisfiable (docs/ENCODER.md).
void expectEquisat(const RaceEncoder &Sliced, EventId A, EventId B) {
  EncoderOptions NoSlice;
  NoSlice.Slice = false;
  RaceEncoder Unsliced(Sliced.sharedWindowEncoding(), NoSlice);
  FormulaBuilder FbS, FbU;
  SatResult S = createIdlSolver()->solve(
      FbS, Sliced.encodeMaximalRace(FbS, A, B), Deadline(), nullptr);
  SatResult U = createIdlSolver()->solve(
      FbU, Unsliced.encodeMaximalRace(FbU, A, B), Deadline(), nullptr);
  EXPECT_EQ(S, U) << "sliced and unsliced verdicts diverge for (" << A
                  << "," << B << ")";
}

} // namespace

TEST(RaceEncoderCone, ForkJoinEdgesStayInConeUnrelatedWritesDoNot) {
  TraceBuilder B;
  B.write("t1", "x", 1);  // 0: unrelated, before the fork
  B.fork("t1", "t2");     // 1
  B.begin("t2");          // 2
  B.write("t2", "p0", 1); // 3: padding — never read, no locks
  B.write("t2", "p1", 1); // 4
  B.write("t2", "p2", 1); // 5
  B.write("t2", "y", 1);  // 6: race event A
  B.end("t2");            // 7
  B.join("t1", "t2");     // 8
  B.write("t1", "y", 2);  // 9: race event B
  EncoderFixture F(B.build());

  RaceEncoder::ConeInfo Info = F.Encoder.coneOf(6, 9);
  // The query events and every cross-thread MHB endpoint are kept: the
  // fork/join edges are what order the pair.
  for (EventId E : {1u, 2u, 6u, 7u, 8u, 9u})
    EXPECT_TRUE(coneHas(Info, E)) << "event " << E;
  // The padding writes constrain nothing the pair can observe.
  for (EventId E : {0u, 3u, 4u, 5u})
    EXPECT_FALSE(coneHas(Info, E)) << "event " << E;
  expectEquisat(F.Encoder, 6, 9);
}

TEST(RaceEncoderCone, NestedLocksActivateEnclosingSections) {
  TraceBuilder B;
  B.acquire("t1", "outer"); // 0
  B.acquire("t1", "inner"); // 1
  B.write("t1", "x", 1);    // 2: race event A
  B.release("t1", "inner"); // 3
  B.release("t1", "outer"); // 4
  B.acquire("t2", "outer"); // 5
  B.acquire("t2", "inner"); // 6
  B.write("t2", "x", 2);    // 7: race event B
  B.release("t2", "inner"); // 8
  B.release("t2", "outer"); // 9
  B.acquire("t1", "other"); // 10: unrelated lock, after the race region
  B.write("t1", "w", 1);    // 11
  B.release("t1", "other"); // 12
  B.acquire("t3", "other"); // 13
  B.write("t3", "z", 1);    // 14
  B.release("t3", "other"); // 15
  EncoderFixture F(B.build());
  ASSERT_EQ(F.Encoder.windowEncoding().LockConstraints.size(), 3u)
      << "inner, outer, other";

  RaceEncoder::ConeInfo Info = F.Encoder.coneOf(2, 7);
  // The race events sit in the inner sections; activating those pulls in
  // the inner acquire/release endpoints, which sit in the outer sections,
  // which activate the outer constraint in turn — but never `other`.
  EXPECT_EQ(Info.ActiveLocks.size(), 2u);
  for (EventId E : {0u, 1u, 3u, 4u, 5u, 6u, 8u, 9u})
    EXPECT_TRUE(coneHas(Info, E)) << "lock endpoint " << E;
  for (EventId E : {10u, 11u, 12u, 13u, 14u, 15u})
    EXPECT_FALSE(coneHas(Info, E)) << "event " << E;
  expectEquisat(F.Encoder, 2, 7);
}

TEST(RaceEncoderCone, CyclicCfDependencyTerminates) {
  // cf(w1) guards r1 whose candidate write is w2; cf(w2) guards r2 whose
  // candidate write is w1 — the cf dependency graph is a cycle.
  TraceBuilder B;
  B.read("t1", "y", 0);  // 0: r1 (initial value, or w2's)
  B.branch("t1");        // 1
  B.write("t1", "x", 1); // 2: w1
  B.read("t2", "x", 1);  // 3: r2 (w1's value)
  B.branch("t2");        // 4
  B.write("t2", "y", 0); // 5: w2 (same value as y's initial)
  EncoderFixture F(B.build());

  RaceEncoder::ConeInfo Info = F.Encoder.coneOf(2, 3);
  // The whole cycle is referenced: r1, w1, r2, w2 plus w1's guarding
  // branch. t2's branch is *not* pulled in — a write's feasibility folds
  // through its thread's reads, never through the branch event itself,
  // and only the query events' own guarding branches become top-level
  // guards.
  EXPECT_EQ(Info.Events, (std::vector<EventId>{0, 1, 2, 3, 5}));
  expectEquisat(F.Encoder, 2, 3);
}

TEST(RaceEncoderCone, UnslicedConeIsTheFullWindow) {
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.acquire("t2", "l");  // 3
  B.write("t2", "x", 2); // 4
  B.release("t2", "l");  // 5
  B.write("t3", "p", 1); // 6: unrelated
  EncoderFixture F(B.build());

  EncoderOptions NoSlice;
  NoSlice.Slice = false;
  RaceEncoder Unsliced(F.Encoder.sharedWindowEncoding(), NoSlice);
  RaceEncoder::ConeInfo Full = Unsliced.coneOf(1, 4);
  EXPECT_EQ(Full.Events.size(), F.T.size());
  EXPECT_EQ(Full.ActiveLocks.size(),
            F.Encoder.windowEncoding().LockConstraints.size());
  // The sliced cone on the same pair is a strict subset.
  RaceEncoder::ConeInfo Sliced = F.Encoder.coneOf(1, 4);
  EXPECT_LT(Sliced.Events.size(), Full.Events.size());
  EXPECT_FALSE(coneHas(Sliced, 6));
}

TEST(RaceEncoderCone, ConcurrentEncodesShareTheSkeletonCache) {
  // Four workers hammer the same const encoder with their own builders —
  // the sharing contract the parallel detect path relies on. Run under
  // scripts/check_tsan.sh this exercises the reader/writer-locked
  // skeleton cache for real.
  TraceBuilder B;
  for (int I = 0; I < 8; ++I) {
    std::string Var = "x" + std::to_string(I);
    B.acquire("t1", "l");
    B.write("t1", Var, 1);
    B.release("t1", "l");
    B.acquire("t2", "l");
    B.write("t2", Var, 2);
    B.release("t2", "l");
  }
  EncoderFixture F(B.build());
  std::vector<Cop> Cops = collectCops(F.T, F.T.fullSpan());
  ASSERT_EQ(Cops.size(), 8u);

  std::vector<std::thread> Workers;
  std::vector<uint64_t> AtomTotals(4, 0);
  for (int W = 0; W < 4; ++W)
    Workers.emplace_back([&, W] {
      for (int Round = 0; Round < 4; ++Round)
        for (const Cop &C : Cops) {
          FormulaBuilder FB;
          EncodeStats Stats;
          F.Encoder.encodeMaximalRace(FB, C.First, C.Second, &Stats);
          AtomTotals[W] += Stats.SlicedAtoms;
        }
    });
  for (std::thread &Worker : Workers)
    Worker.join();
  // Cached or rebuilt, the emitted skeleton is the same formula.
  EXPECT_EQ(AtomTotals[0], AtomTotals[1]);
  EXPECT_EQ(AtomTotals[0], AtomTotals[2]);
  EXPECT_EQ(AtomTotals[0], AtomTotals[3]);
  // And by now every cone's skeleton is resident.
  for (const Cop &C : Cops) {
    FormulaBuilder FB;
    EncodeStats Stats;
    F.Encoder.encodeMaximalRace(FB, C.First, C.Second, &Stats);
    EXPECT_TRUE(Stats.CacheHit);
  }
}

TEST(RaceEncoderCone, SkeletonCacheHitsOnSecondEncode) {
  TraceBuilder B;
  B.fork("t1", "t2");    // 0
  B.begin("t2");         // 1
  B.write("t1", "x", 1); // 2
  B.write("t2", "x", 2); // 3
  EncoderFixture F(B.build());

  EncodeStats First, Second;
  FormulaBuilder Fb1, Fb2;
  F.Encoder.encodeMaximalRace(Fb1, 2, 3, &First);
  F.Encoder.encodeMaximalRace(Fb2, 2, 3, &Second);
  EXPECT_FALSE(First.CacheHit);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(First.ConeEvents, Second.ConeEvents);
  EXPECT_EQ(First.SlicedAtoms, Second.SlicedAtoms);
  EXPECT_GT(First.SlicedAtoms, 0u);
}

// -------------------------------------------------------- witness checker

namespace {

struct WitnessFixture {
  WitnessFixture(Trace Built)
      : T(std::move(Built)), Mhb(T, T.fullSpan(), ClosureConfig::mhb()),
        Encoder(T, T.fullSpan(), Mhb, T.initialValues()) {}

  WitnessCheckResult check(const std::vector<EventId> &Order, EventId A,
                           EventId B) {
    return checkWitness(T, T.fullSpan(), Order, A, B, Encoder, Mhb,
                        T.initialValues());
  }

  Trace T;
  EventClosure Mhb;
  RaceEncoder Encoder;
};

Trace simpleRacyTrace() {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.write("t1", "y", 1); // 1
  B.write("t2", "x", 2); // 2
  return B.build();
}

} // namespace

TEST(WitnessChecker, AcceptsValidAdjacency) {
  WitnessFixture F(simpleRacyTrace());
  EXPECT_TRUE(F.check({0, 2, 1}, 0, 2).Ok);
  EXPECT_TRUE(F.check({2, 0, 1}, 0, 2).Ok) << "either orientation";
}

TEST(WitnessChecker, RejectsNonAdjacent) {
  WitnessFixture F(simpleRacyTrace());
  EXPECT_FALSE(F.check({0, 1, 2}, 0, 2).Ok)
      << "event 1 sits between the racing pair";
}

TEST(WitnessChecker, RejectsProgramOrderViolation) {
  WitnessFixture F(simpleRacyTrace());
  WitnessCheckResult R = F.check({1, 0, 2}, 1, 0);
  // Order {1,0,...} violates t1's program order check only if used as a
  // witness; the pair (1,0) is same-thread and adjacent here, but PO is
  // broken.
  EXPECT_FALSE(R.Ok);
}

TEST(WitnessChecker, RejectsNonPermutation) {
  WitnessFixture F(simpleRacyTrace());
  EXPECT_FALSE(F.check({0, 2}, 0, 2).Ok);
  EXPECT_FALSE(F.check({0, 2, 2}, 0, 2).Ok);
}

TEST(WitnessChecker, RejectsLockViolation) {
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.acquire("t2", "l");  // 3
  B.write("t2", "y", 2); // 4
  B.release("t2", "l");  // 5
  B.write("t2", "x", 9); // 6
  Trace T = B.build();
  WitnessFixture F(std::move(T));
  // Interleaved critical sections: 0,3 both acquire before any release.
  EXPECT_FALSE(F.check({0, 3, 1, 6, 4, 2, 5}, 1, 6).Ok);
  // Proper nesting-free order is fine.
  EXPECT_TRUE(F.check({3, 4, 5, 0, 1, 6, 2}, 1, 6).Ok);
}

TEST(WitnessChecker, RejectsStaleGuardedRead) {
  // The branch guarding b requires the read to stay concrete (value 1);
  // a witness where the read precedes the write is rejected.
  TraceBuilder B;
  B.write("t1", "v", 1); // 0
  B.read("t2", "v", 1);  // 1
  B.branch("t2");        // 2
  B.write("t2", "x", 1); // 3  (race event b)
  B.write("t3", "x", 2); // 4  (race event a)
  Trace T = B.build();
  WitnessFixture F(std::move(T));
  EXPECT_TRUE(F.check({0, 1, 2, 4, 3}, 4, 3).Ok);
  WitnessCheckResult Bad = F.check({1, 0, 2, 4, 3}, 4, 3);
  EXPECT_FALSE(Bad.Ok) << "the guarded read observes 0, not 1";
}

TEST(WitnessChecker, UnguardedReadMayBeStale) {
  // Without a branch, the read is data-abstract and may change value.
  TraceBuilder B;
  B.write("t1", "v", 1); // 0
  B.read("t2", "v", 1);  // 1
  B.write("t2", "x", 1); // 2  (race event b)
  B.write("t3", "x", 2); // 3  (race event a)
  Trace T = B.build();
  WitnessFixture F(std::move(T));
  EXPECT_TRUE(F.check({1, 0, 3, 2}, 3, 2).Ok);
}
