//===- tests/DetectInternalsTest.cpp - COP/lockset/encoder internals ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Cop.h"
#include "detect/Lockset.h"
#include "detect/RaceEncoder.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

// ------------------------------------------------------------------ COPs

TEST(Cop, EnumeratesConflictingPairs) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.read("t2", "x", 1);  // 1
  B.read("t3", "x", 1);  // 2
  B.write("t1", "y", 1); // 3
  Trace T = B.build();
  std::vector<Cop> Cops = collectCops(T, T.fullSpan());
  // (0,1), (0,2); the two reads do not conflict; y has one access.
  ASSERT_EQ(Cops.size(), 2u);
  EXPECT_EQ(Cops[0].First, 0u);
  EXPECT_EQ(Cops[0].Second, 1u);
  EXPECT_EQ(Cops[1].Second, 2u);
}

TEST(Cop, RespectsWindow) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.write("t2", "x", 2); // 1
  B.write("t1", "x", 3); // 2
  Trace T = B.build();
  // (0,1) and (1,2); (0,2) is same-thread and therefore not a COP.
  EXPECT_EQ(collectCops(T, T.fullSpan()).size(), 2u);
  EXPECT_EQ(collectCops(T, {0, 2}).size(), 1u);
  EXPECT_EQ(collectCops(T, {1, 3}).size(), 1u);
  EXPECT_EQ(collectCops(T, {2, 3}).size(), 0u);
}

TEST(Cop, SignatureIsUnordered) {
  TraceBuilder B;
  B.write("t1", "x", 1, "locA");
  B.write("t2", "x", 2, "locB");
  Trace T = B.build();
  EXPECT_EQ(RaceSignature::of(T, 0, 1).key(),
            RaceSignature::of(T, 1, 0).key());
}

// --------------------------------------------------------------- lockset

TEST(Lockset, TracksHeldLocks) {
  TraceBuilder B;
  B.acquire("t1", "l1");  // 0
  B.acquire("t1", "l2");  // 1
  B.write("t1", "x", 1);  // 2: holds {l1,l2}
  B.release("t1", "l2");  // 3
  B.write("t1", "x", 2);  // 4: holds {l1}
  B.release("t1", "l1");  // 5
  B.write("t1", "x", 3);  // 6: holds {}
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_EQ(Ls.heldAt(2).size(), 2u);
  EXPECT_EQ(Ls.heldAt(4).size(), 1u);
  EXPECT_TRUE(Ls.heldAt(6).empty());
}

TEST(Lockset, DisjointnessBySharedLock) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");
  B.acquire("t2", "l");
  B.acquire("t2", "m");
  B.write("t2", "x", 2); // 5
  B.release("t2", "m");
  B.release("t2", "l");
  B.write("t3", "x", 3); // 8
  Trace T = B.build();
  LocksetIndex Ls(T, T.fullSpan());
  EXPECT_FALSE(Ls.disjoint(1, 5)) << "both hold l";
  EXPECT_TRUE(Ls.disjoint(1, 8));
  EXPECT_TRUE(Ls.disjoint(5, 8));
}

TEST(Lockset, QuickCheckFiltersOrderedAndLocked) {
  TraceBuilder B;
  B.write("t1", "a", 1);  // 0: MHB-ordered with 4 via fork
  B.fork("t1", "t2");     // 1
  B.begin("t2");          // 2
  B.write("t2", "a", 2);  // 3
  B.write("t2", "b", 1);  // 4
  B.write("t1", "b", 2);  // 5: concurrent with 4 -> passes
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  QuickCheck Qc(T, T.fullSpan(), Mhb);
  EXPECT_FALSE(Qc.pass({0, 3})) << "fork orders the pair";
  EXPECT_TRUE(Qc.pass({4, 5}));
}

// --------------------------------------------------------------- encoder

namespace {

struct EncoderFixture {
  EncoderFixture(Trace Built)
      : T(std::move(Built)), Mhb(T, T.fullSpan(), ClosureConfig::mhb()),
        Encoder(T, T.fullSpan(), Mhb, T.initialValues()) {}

  SatResult solveRace(EventId A, EventId B) {
    FormulaBuilder FB;
    NodeRef Root = Encoder.encodeMaximalRace(FB, A, B);
    return createIdlSolver()->solve(FB, Root, Deadline(), nullptr);
  }

  Trace T;
  EventClosure Mhb;
  RaceEncoder Encoder;
};

} // namespace

TEST(RaceEncoder, GuardingBranchesPerThread) {
  TraceBuilder B;
  B.branch("t1");        // 0
  B.branch("t1");        // 1
  B.write("t1", "x", 1); // 2
  B.fork("t1", "t2");    // 3
  B.begin("t2");         // 4
  B.write("t2", "y", 1); // 5
  B.branch("t1");        // 6: after the fork, does NOT guard t2
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  RaceEncoder Encoder(T, T.fullSpan(), Mhb, T.initialValues());

  // For t1's write: only the last of its own preceding branches.
  EXPECT_EQ(Encoder.guardingBranches(2), (std::vector<EventId>{1}));
  // For t2's write: t1's branch 1 (before the fork) guards it via MHB.
  EXPECT_EQ(Encoder.guardingBranches(5), (std::vector<EventId>{1}));
}

TEST(RaceEncoder, MhbOrderedPairIsUnsat) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.fork("t1", "t2");    // 1
  B.begin("t2");         // 2
  B.write("t2", "x", 2); // 3
  EncoderFixture F(B.build());
  EXPECT_EQ(F.solveRace(0, 3), SatResult::Unsat);
}

TEST(RaceEncoder, ConcurrentPairIsSat) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.begin("t2");
  B.write("t1", "x", 1); // 2
  B.write("t2", "x", 2); // 3
  EncoderFixture F(B.build());
  EXPECT_EQ(F.solveRace(2, 3), SatResult::Sat);
}

TEST(RaceEncoder, WindowInitialValueEnablesReads) {
  // A read of value 7 is only justifiable if the window's initial value
  // is 7 (set by a write in a previous window).
  TraceBuilder B;
  B.write("t1", "x", 7);  // 0: previous window
  B.branch("t2");         // 1: window starts here
  B.read("t2", "x", 7);   // 2
  B.branch("t2");         // 3
  B.write("t2", "y", 1);  // 4
  B.write("t1", "y", 2);  // 5
  Trace T = B.build();
  Span Window = {1, 6};
  EventClosure Mhb(T, Window, ClosureConfig::mhb());

  // With the correct carried-in value, the race on y is feasible.
  std::vector<Value> Carried(T.numVars(), 0);
  Carried[T.internVar("x")] = 7;
  RaceEncoder Good(T, Window, Mhb, Carried);
  FormulaBuilder FB1;
  EXPECT_EQ(createIdlSolver()->solve(
                FB1, Good.encodeMaximalRace(FB1, 4, 5), Deadline(), nullptr),
            SatResult::Sat);

  // With a wrong initial value the guarded read can never be concrete.
  RaceEncoder Bad(T, Window, Mhb, std::vector<Value>(T.numVars(), 0));
  FormulaBuilder FB2;
  EXPECT_EQ(createIdlSolver()->solve(
                FB2, Bad.encodeMaximalRace(FB2, 4, 5), Deadline(), nullptr),
            SatResult::Unsat);
}

TEST(RaceEncoder, InterferingWriteForcesOrdering) {
  // b is guarded by a branch whose read saw value 1 from w1; a second
  // write w2 of a different value must not land between w1 and the read.
  TraceBuilder B;
  B.write("t1", "v", 1);  // 0: w1
  B.read("t2", "v", 1);   // 1: guarded read
  B.branch("t2");         // 2
  B.write("t2", "x", 1);  // 3: race event b
  B.write("t1", "v", 9);  // 4: w2 (interferer)
  B.write("t3", "x", 2);  // 5: race event a'
  EncoderFixture F(B.build());
  // The race (3,5) is feasible: order w1 < read < w2.
  EXPECT_EQ(F.solveRace(3, 5), SatResult::Sat);
}

TEST(RaceEncoder, SaidRejectsValueChangingAdjacency) {
  // Said: the read of x must keep value 0, so the write cannot be moved
  // next to it.
  TraceBuilder B;
  B.read("t2", "x", 0);  // 0
  B.write("t1", "x", 1); // 1
  Trace T = B.build();
  EventClosure Mhb(T, T.fullSpan(), ClosureConfig::mhb());
  RaceEncoder Encoder(T, T.fullSpan(), Mhb, T.initialValues());
  FormulaBuilder FB;
  NodeRef Root = Encoder.encodeSaidRace(FB, 0, 1);
  EXPECT_EQ(createIdlSolver()->solve(FB, Root, Deadline(), nullptr),
            SatResult::Unsat);
  // The maximal encoding has no such constraint (nothing branches on it).
  FormulaBuilder FB2;
  NodeRef Root2 = Encoder.encodeMaximalRace(FB2, 0, 1);
  EXPECT_EQ(createIdlSolver()->solve(FB2, Root2, Deadline(), nullptr),
            SatResult::Sat);
}

// -------------------------------------------------------- witness checker

namespace {

struct WitnessFixture {
  WitnessFixture(Trace Built)
      : T(std::move(Built)), Mhb(T, T.fullSpan(), ClosureConfig::mhb()),
        Encoder(T, T.fullSpan(), Mhb, T.initialValues()) {}

  WitnessCheckResult check(const std::vector<EventId> &Order, EventId A,
                           EventId B) {
    return checkWitness(T, T.fullSpan(), Order, A, B, Encoder, Mhb,
                        T.initialValues());
  }

  Trace T;
  EventClosure Mhb;
  RaceEncoder Encoder;
};

Trace simpleRacyTrace() {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.write("t1", "y", 1); // 1
  B.write("t2", "x", 2); // 2
  return B.build();
}

} // namespace

TEST(WitnessChecker, AcceptsValidAdjacency) {
  WitnessFixture F(simpleRacyTrace());
  EXPECT_TRUE(F.check({0, 2, 1}, 0, 2).Ok);
  EXPECT_TRUE(F.check({2, 0, 1}, 0, 2).Ok) << "either orientation";
}

TEST(WitnessChecker, RejectsNonAdjacent) {
  WitnessFixture F(simpleRacyTrace());
  EXPECT_FALSE(F.check({0, 1, 2}, 0, 2).Ok)
      << "event 1 sits between the racing pair";
}

TEST(WitnessChecker, RejectsProgramOrderViolation) {
  WitnessFixture F(simpleRacyTrace());
  WitnessCheckResult R = F.check({1, 0, 2}, 1, 0);
  // Order {1,0,...} violates t1's program order check only if used as a
  // witness; the pair (1,0) is same-thread and adjacent here, but PO is
  // broken.
  EXPECT_FALSE(R.Ok);
}

TEST(WitnessChecker, RejectsNonPermutation) {
  WitnessFixture F(simpleRacyTrace());
  EXPECT_FALSE(F.check({0, 2}, 0, 2).Ok);
  EXPECT_FALSE(F.check({0, 2, 2}, 0, 2).Ok);
}

TEST(WitnessChecker, RejectsLockViolation) {
  TraceBuilder B;
  B.acquire("t1", "l");  // 0
  B.write("t1", "x", 1); // 1
  B.release("t1", "l");  // 2
  B.acquire("t2", "l");  // 3
  B.write("t2", "y", 2); // 4
  B.release("t2", "l");  // 5
  B.write("t2", "x", 9); // 6
  Trace T = B.build();
  WitnessFixture F(std::move(T));
  // Interleaved critical sections: 0,3 both acquire before any release.
  EXPECT_FALSE(F.check({0, 3, 1, 6, 4, 2, 5}, 1, 6).Ok);
  // Proper nesting-free order is fine.
  EXPECT_TRUE(F.check({3, 4, 5, 0, 1, 6, 2}, 1, 6).Ok);
}

TEST(WitnessChecker, RejectsStaleGuardedRead) {
  // The branch guarding b requires the read to stay concrete (value 1);
  // a witness where the read precedes the write is rejected.
  TraceBuilder B;
  B.write("t1", "v", 1); // 0
  B.read("t2", "v", 1);  // 1
  B.branch("t2");        // 2
  B.write("t2", "x", 1); // 3  (race event b)
  B.write("t3", "x", 2); // 4  (race event a)
  Trace T = B.build();
  WitnessFixture F(std::move(T));
  EXPECT_TRUE(F.check({0, 1, 2, 4, 3}, 4, 3).Ok);
  WitnessCheckResult Bad = F.check({1, 0, 2, 4, 3}, 4, 3);
  EXPECT_FALSE(Bad.Ok) << "the guarded read observes 0, not 1";
}

TEST(WitnessChecker, UnguardedReadMayBeStale) {
  // Without a branch, the read is data-abstract and may change value.
  TraceBuilder B;
  B.write("t1", "v", 1); // 0
  B.read("t2", "v", 1);  // 1
  B.write("t2", "x", 1); // 2  (race event b)
  B.write("t3", "x", 2); // 3  (race event a)
  Trace T = B.build();
  WitnessFixture F(std::move(T));
  EXPECT_TRUE(F.check({1, 0, 3, 2}, 3, 2).Ok);
}
