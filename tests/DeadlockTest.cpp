//===- tests/DeadlockTest.cpp - Predictive deadlock detector tests -----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Deadlock.h"

#include "runtime/Interpreter.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// Classic opposite-order nesting, recorded WITHOUT deadlocking (t1 runs
/// to completion before t2 starts its nesting).
Trace oppositeOrderTrace() {
  TraceBuilder B;
  B.acquire("t1", "a", "A1");
  B.acquire("t1", "b", "A2"); // t1: a -> b
  B.write("t1", "x", 1);
  B.release("t1", "b");
  B.release("t1", "a");
  B.acquire("t2", "b", "B1");
  B.acquire("t2", "a", "B2"); // t2: b -> a
  B.write("t2", "y", 1);
  B.release("t2", "a");
  B.release("t2", "b");
  return B.build();
}

} // namespace

TEST(Deadlock, PredictsOppositeOrderNesting) {
  Trace T = oppositeOrderTrace();
  DeadlockResult R = detectDeadlocks(T);
  ASSERT_EQ(R.Deadlocks.size(), 1u);
  const DeadlockReport &D = R.Deadlocks[0];
  EXPECT_NE(D.ThreadA, D.ThreadB);
  EXPECT_TRUE(D.WitnessValid);
  // The two inner requests are A2 (t1 acquiring b) and B2 (t2 acquiring a).
  EXPECT_TRUE((D.LocRequestA == "A2" && D.LocRequestB == "B2") ||
              (D.LocRequestA == "B2" && D.LocRequestB == "A2"));
}

TEST(Deadlock, SameOrderNestingIsSafe) {
  TraceBuilder B;
  B.acquire("t1", "a");
  B.acquire("t1", "b");
  B.release("t1", "b");
  B.release("t1", "a");
  B.acquire("t2", "a");
  B.acquire("t2", "b"); // same order: a -> b
  B.release("t2", "b");
  B.release("t2", "a");
  Trace T = B.build();
  DeadlockResult R = detectDeadlocks(T);
  EXPECT_TRUE(R.Deadlocks.empty());
}

TEST(Deadlock, GateLockPreventsDeadlock) {
  // Both nestings happen under a common gate lock g: the hold-and-wait
  // state requires both outer sections active at once, which g forbids.
  TraceBuilder B;
  B.acquire("t1", "g");
  B.acquire("t1", "a");
  B.acquire("t1", "b");
  B.release("t1", "b");
  B.release("t1", "a");
  B.release("t1", "g");
  B.acquire("t2", "g");
  B.acquire("t2", "b");
  B.acquire("t2", "a");
  B.release("t2", "a");
  B.release("t2", "b");
  B.release("t2", "g");
  Trace T = B.build();
  DeadlockResult R = detectDeadlocks(T);
  EXPECT_TRUE(R.Deadlocks.empty())
      << "the gate lock makes the cycle infeasible";
}

TEST(Deadlock, ForkJoinOrderPreventsDeadlock) {
  TraceBuilder B;
  B.acquire("t1", "a");
  B.acquire("t1", "b");
  B.release("t1", "b");
  B.release("t1", "a");
  B.fork("t1", "t2"); // t2 only exists after t1's nesting completed
  B.begin("t2");
  B.acquire("t2", "b");
  B.acquire("t2", "a");
  B.release("t2", "a");
  B.release("t2", "b");
  Trace T = B.build();
  DeadlockResult R = detectDeadlocks(T);
  EXPECT_TRUE(R.Deadlocks.empty());
}

TEST(Deadlock, ControlFlowCanRefuteTheCycle) {
  // t2 only takes the nested path after observing t1's post-release
  // write, so the hold state is infeasible.
  TraceBuilder B;
  B.acquire("t1", "a");
  B.acquire("t1", "b");
  B.release("t1", "b");
  B.release("t1", "a");
  B.write("t1", "flag", 1, "W");
  B.read("t2", "flag", 1, "R");
  B.branch("t2");
  B.acquire("t2", "b");
  B.acquire("t2", "a");
  B.release("t2", "a");
  B.release("t2", "b");
  Trace T = B.build();
  DeadlockResult R = detectDeadlocks(T);
  EXPECT_TRUE(R.Deadlocks.empty())
      << "the guarded nesting cannot overlap t1's sections";
}

TEST(Deadlock, UnguardedVariantIsPredicted) {
  // Same trace minus the branch: the read is data-abstract, the cycle is
  // feasible.
  TraceBuilder B;
  B.acquire("t1", "a");
  B.acquire("t1", "b");
  B.release("t1", "b");
  B.release("t1", "a");
  B.write("t1", "flag", 1, "W");
  B.read("t2", "flag", 1, "R");
  B.acquire("t2", "b");
  B.acquire("t2", "a");
  B.release("t2", "a");
  B.release("t2", "b");
  Trace T = B.build();
  DeadlockResult R = detectDeadlocks(T);
  EXPECT_EQ(R.Deadlocks.size(), 1u);
}

TEST(Deadlock, WitnessReplayReachesTheDeadlock) {
  // End to end: record a clean run of a deadlock-prone MiniRV program,
  // predict the deadlock, replay the witness prefix, and observe the
  // interpreter report an actual deadlock.
  const char *Source = R"(
shared x; lock a; lock b;
thread worker {
  lock b;
  x = x + 1;
  lock a;
  x = x + 2;
  unlock a;
  unlock b;
}
main {
  spawn worker;
  lock a;
  x = x + 10;
  lock b;
  x = x + 20;
  unlock b;
  unlock a;
  join worker;
}
)";
  // Record a schedule that does NOT deadlock: worker runs fully first.
  Trace T;
  RunResult Run;
  std::string Error;
  RoundRobinScheduler Recorder(100);
  ASSERT_TRUE(recordTrace(Source, T, Run, Error, &Recorder)) << Error;
  ASSERT_FALSE(Run.Deadlocked) << "the recording itself must be clean";

  DeadlockResult R = detectDeadlocks(T);
  ASSERT_EQ(R.Deadlocks.size(), 1u);
  const DeadlockReport &D = R.Deadlocks[0];
  ASSERT_TRUE(D.WitnessValid);

  // Truncate the witness schedule right before the later of the two
  // requests; following it drives both threads into their outer sections.
  size_t Cut = 0;
  for (size_t I = 0; I < D.Witness.size(); ++I)
    if (D.Witness[I] == D.RequestA || D.Witness[I] == D.RequestB)
      Cut = I;
  std::vector<ThreadId> Schedule;
  for (size_t I = 0; I < Cut; ++I)
    Schedule.push_back(T[D.Witness[I]].Tid);

  Trace Replayed;
  RunResult ReplayRun;
  ReplayScheduler S(Schedule);
  ASSERT_TRUE(recordTrace(Source, Replayed, ReplayRun, Error, &S));
  EXPECT_TRUE(ReplayRun.Deadlocked)
      << "the predicted schedule must reach the real deadlock";
}
