# Correctness check for --incremental: deciding COPs through a persistent
# per-window solver session (assumption-based incremental solving,
# docs/INCREMENTAL_SOLVING.md) must print byte-identical output (reports,
# witnesses, summary counts; wall-clock timing normalized away) to the
# legacy fresh-solver-per-COP path — for the SMT techniques under both
# schedules, sequentially and with --jobs=4, with and without
# --static-prune, and for the atomicity and deadlock properties. A
# --stats-json run guards against the vacuous pass by requiring the
# session path to actually answer queries (solver.incremental_calls > 0)
# while solver_calls stays mode-invariant.
# Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<prog.rv> -P IncrementalGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

function(run_detect INCREMENTAL EXTRA OUT_VAR)
  execute_process(
    COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --seed=1 --witness=true
            --incremental=${INCREMENTAL} ${EXTRA}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  # Exit 1 just means findings were reported; >=2 is a usage/internal error.
  if(RC GREATER 1)
    message(FATAL_ERROR "rvpredict detect --incremental=${INCREMENTAL} "
            "${EXTRA} failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  string(REGEX REPLACE " in [0-9.]+s" "" STDOUT "${STDOUT}")
  set(${OUT_VAR} "${STDOUT}" PARENT_SCOPE)
endfunction()

function(check_pair EXTRA LABEL)
  run_detect(false "${EXTRA}" LEGACY)
  run_detect(true "${EXTRA}" INCREMENTAL)
  if(NOT LEGACY STREQUAL INCREMENTAL)
    message(FATAL_ERROR "--incremental changed output for ${LABEL}:\n"
            "--- legacy ---\n${LEGACY}\n--- incremental ---\n${INCREMENTAL}")
  endif()
endfunction()

# SMT race techniques: schedules x jobs x static pruning.
foreach(TECHNIQUE rv said)
  foreach(SCHEDULE rr random)
    foreach(JOBS 1 4)
      check_pair("--technique=${TECHNIQUE};--schedule=${SCHEDULE};--jobs=${JOBS}"
                 "technique=${TECHNIQUE} schedule=${SCHEDULE} jobs=${JOBS}")
    endforeach()
  endforeach()
  check_pair("--technique=${TECHNIQUE};--schedule=rr;--jobs=2;--static-prune=true"
             "technique=${TECHNIQUE} static-prune")
endforeach()

# The other SMT-backed properties ride the same DetectorOptions flag.
foreach(PROPERTY atomicity deadlock)
  foreach(JOBS 1 4)
    check_pair("--property=${PROPERTY};--schedule=rr;--jobs=${JOBS}"
               "property=${PROPERTY} jobs=${JOBS}")
  endforeach()
endforeach()

# The closure-based techniques must simply ignore the flag.
foreach(TECHNIQUE cp hb)
  check_pair("--technique=${TECHNIQUE};--schedule=rr;--jobs=1"
             "technique=${TECHNIQUE}")
endforeach()

# Non-vacuity: the incremental run must report the workload's race AND
# route its queries through the session (solver.incremental_calls > 0),
# with solver_calls identical between the modes. Pinned to --tier=smt:
# the default hybrid tier short-circuits this workload's COPs past the
# session entirely (docs/TIERS.md), which would make this check vacuous.
run_detect(true "--technique=rv;--schedule=rr;--jobs=1;--tier=smt;--stats-json=-" INC_STATS)
run_detect(false "--technique=rv;--schedule=rr;--jobs=1;--tier=smt;--stats-json=-" LEG_STATS)
if(NOT INC_STATS MATCHES "1 race")
  message(FATAL_ERROR "incremental run lost the workload's race:\n${INC_STATS}")
endif()
string(REGEX MATCH "\"solver.incremental_calls\": *([0-9]+)" _ "${INC_STATS}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "session path never queried "
          "(solver.incremental_calls missing or 0):\n${INC_STATS}")
endif()
set(INC_CALLS ${CMAKE_MATCH_1})
string(REGEX MATCH "\"solver_calls\": *([0-9]+)" _ "${INC_STATS}")
set(INC_SOLVER_CALLS ${CMAKE_MATCH_1})
string(REGEX MATCH "\"solver_calls\": *([0-9]+)" _ "${LEG_STATS}")
if(NOT INC_SOLVER_CALLS STREQUAL CMAKE_MATCH_1)
  message(FATAL_ERROR "solver_calls diverged: incremental=${INC_SOLVER_CALLS} "
          "legacy=${CMAKE_MATCH_1}")
endif()

message(STATUS "incremental-solving equivalence check passed "
        "(2 SMT techniques x 2 schedules x 2 jobs + prune + atomicity + "
        "deadlock + cp/hb, incremental_calls=${INC_CALLS})")
