//===- tests/TraceTest.cpp - Unit tests for the trace model ----------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"
#include "trace/TraceBuilder.h"
#include "trace/Window.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// The running example of the paper: Figure 4's trace (events numbered
/// 1-15 in the paper; ids 0-14 here).
Trace figure4Trace() {
  TraceBuilder B;
  B.fork("t1", "t2", "f1");         // 1
  B.acquire("t1", "l", "f2");       // 2
  B.write("t1", "x", 1, "f3");      // 3
  B.write("t1", "y", 1, "f4");      // 4
  B.release("t1", "l", "f5");       // 5
  B.begin("t2", "f6");              // 6
  B.acquire("t2", "l", "f7");       // 7
  B.read("t2", "y", 1, "f8");       // 8
  B.release("t2", "l", "f9");       // 9
  B.read("t2", "x", 1, "f10");      // 10
  B.branch("t2", "f11");            // 11
  B.write("t2", "z", 1, "f12");     // 12
  B.end("t2", "f13");               // 13
  B.join("t1", "t2", "f14");        // 14
  B.read("t1", "z", 1, "f15");      // 15
  return B.build();
}

} // namespace

TEST(Trace, InterningIsStable) {
  Trace T;
  ThreadId T1 = T.internThread("t1");
  ThreadId T2 = T.internThread("t2");
  EXPECT_NE(T1, T2);
  EXPECT_EQ(T.internThread("t1"), T1);
  EXPECT_EQ(T.threadName(T1), "t1");
  VarId X = T.internVar("x");
  EXPECT_EQ(T.internVar("x"), X);
  EXPECT_EQ(T.varName(X), "x");
}

TEST(Trace, Figure4Shape) {
  Trace T = figure4Trace();
  EXPECT_EQ(T.size(), 15u);
  TraceStats S = T.stats();
  EXPECT_EQ(S.Threads, 2u);
  EXPECT_EQ(S.Events, 15u);
  EXPECT_EQ(S.ReadsWrites, 6u);
  EXPECT_EQ(S.Branches, 1u);
  EXPECT_EQ(S.Syncs, 8u);
}

TEST(Trace, ThreadProjections) {
  Trace T = figure4Trace();
  ThreadId T1 = T.internThread("t1");
  ThreadId T2 = T.internThread("t2");
  std::vector<EventId> Expect1 = {0, 1, 2, 3, 4, 13, 14};
  std::vector<EventId> Expect2 = {5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_EQ(T.threadEvents(T1), Expect1);
  EXPECT_EQ(T.threadEvents(T2), Expect2);
}

TEST(Trace, VariableAccessLists) {
  Trace T = figure4Trace();
  VarId X = T.internVar("x");
  VarId Y = T.internVar("y");
  VarId Z = T.internVar("z");
  EXPECT_EQ(T.accessesOf(X), (std::vector<EventId>{2, 9}));
  EXPECT_EQ(T.accessesOf(Y), (std::vector<EventId>{3, 7}));
  EXPECT_EQ(T.accessesOf(Z), (std::vector<EventId>{11, 14}));
}

TEST(Trace, LockPairs) {
  Trace T = figure4Trace();
  LockId L = T.internLock("l");
  const auto &Pairs = T.lockPairsOf(L);
  ASSERT_EQ(Pairs.size(), 2u);
  EXPECT_EQ(Pairs[0].AcquireId, 1u);
  EXPECT_EQ(Pairs[0].ReleaseId, 4u);
  EXPECT_EQ(Pairs[1].AcquireId, 6u);
  EXPECT_EQ(Pairs[1].ReleaseId, 8u);
}

TEST(Trace, ForkJoinBeginEndIndex) {
  Trace T = figure4Trace();
  ThreadId T2 = T.internThread("t2");
  EXPECT_EQ(T.forkOf(T2), 0u);
  EXPECT_EQ(T.beginOf(T2), 5u);
  EXPECT_EQ(T.endOf(T2), 12u);
  EXPECT_EQ(T.joinOf(T2), 13u);
  ThreadId T1 = T.internThread("t1");
  EXPECT_EQ(T.forkOf(T1), InvalidEvent);
  EXPECT_EQ(T.joinOf(T1), InvalidEvent);
}

TEST(Trace, HalfOpenLockPair) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.write("t1", "x", 1);
  Trace T = B.build();
  const auto &Pairs = T.lockPairsOf(T.internLock("l"));
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0].AcquireId, 0u);
  EXPECT_EQ(Pairs[0].ReleaseId, InvalidEvent);
}

TEST(Trace, ReleaseWithoutAcquireInFragment) {
  TraceBuilder B;
  B.write("t1", "x", 1);
  B.release("t1", "l");
  Trace T = B.build();
  const auto &Pairs = T.lockPairsOf(T.internLock("l"));
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0].AcquireId, InvalidEvent);
  EXPECT_EQ(Pairs[0].ReleaseId, 1u);
}

TEST(Trace, ConflictingPredicate) {
  Trace T = figure4Trace();
  // (3,10) in paper numbering = ids (2,9): write x vs read x, two threads.
  EXPECT_TRUE(conflicting(T[2], T[9]));
  EXPECT_TRUE(conflicting(T[9], T[2]) ||
              !T[9].isWrite()); // read-first pair conflicts via B write
  // Same-thread accesses never conflict.
  EXPECT_FALSE(conflicting(T[2], T[3]));
  // Read-read does not conflict.
  TraceBuilder B;
  B.read("a", "v", 0);
  B.read("b", "v", 0);
  Trace RR = B.build();
  EXPECT_FALSE(conflicting(RR[0], RR[1]));
}

TEST(Trace, VolatileAccessesNeverConflict) {
  TraceBuilder B;
  B.write("a", "v", 1, "", /*IsVolatile=*/true);
  B.read("b", "v", 1, "", /*IsVolatile=*/true);
  Trace T = B.build();
  EXPECT_FALSE(conflicting(T[0], T[1]));
}

TEST(Trace, StatsOverSpan) {
  Trace T = figure4Trace();
  TraceStats S = T.stats({0, 5});
  EXPECT_EQ(S.Events, 5u);
  EXPECT_EQ(S.Threads, 1u);
  EXPECT_EQ(S.ReadsWrites, 2u);
}

TEST(Window, SplitsEvenly) {
  Trace T = figure4Trace();
  auto Windows = splitWindows(T, 4);
  ASSERT_EQ(Windows.size(), 4u);
  EXPECT_EQ(Windows[0].Begin, 0u);
  EXPECT_EQ(Windows[0].End, 4u);
  EXPECT_EQ(Windows[3].Begin, 12u);
  EXPECT_EQ(Windows[3].End, 15u);
}

TEST(Window, ZeroMeansWholeTrace) {
  Trace T = figure4Trace();
  auto Windows = splitWindows(T, 0);
  ASSERT_EQ(Windows.size(), 1u);
  EXPECT_EQ(Windows[0].size(), 15u);
}

TEST(Window, EmptyTrace) {
  Trace T;
  T.finalize();
  EXPECT_TRUE(splitWindows(T, 10).empty());
  EXPECT_TRUE(splitWindows(T, 0).empty());
}

TEST(Event, ToStringForms) {
  TraceBuilder B;
  B.write("t1", "x", 5);
  B.acquire("t1", "l");
  B.branch("t1");
  B.fork("t1", "t2");
  Trace T = B.build();
  EXPECT_EQ(toString(T[0]), "write(t0, v0, 5)");
  EXPECT_EQ(toString(T[1]), "acquire(t0, l0)");
  EXPECT_EQ(toString(T[2]), "branch(t0)");
  EXPECT_EQ(toString(T[3]), "fork(t0, t1)");
}
