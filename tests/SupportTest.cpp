//===- tests/SupportTest.cpp - Unit tests for src/support ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace rvp;

TEST(StringUtils, SplitKeepsEmptyFields) {
  auto Fields = split("a,,b,", ',');
  ASSERT_EQ(Fields.size(), 4u);
  EXPECT_EQ(Fields[0], "a");
  EXPECT_EQ(Fields[1], "");
  EXPECT_EQ(Fields[2], "b");
  EXPECT_EQ(Fields[3], "");
}

TEST(StringUtils, SplitSingleField) {
  auto Fields = split("abc", ',');
  ASSERT_EQ(Fields.size(), 1u);
  EXPECT_EQ(Fields[0], "abc");
}

TEST(StringUtils, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-", "--"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtils, ParseIntValid) {
  int64_t V = 0;
  EXPECT_TRUE(parseInt("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_TRUE(parseInt(" 10 ", V));
  EXPECT_EQ(V, 10);
  EXPECT_TRUE(parseInt("9223372036854775807", V));
  EXPECT_EQ(V, INT64_MAX);
  EXPECT_TRUE(parseInt("-9223372036854775808", V));
  EXPECT_EQ(V, INT64_MIN);
}

TEST(StringUtils, ParseIntInvalid) {
  int64_t V = 0;
  EXPECT_FALSE(parseInt("", V));
  EXPECT_FALSE(parseInt("x", V));
  EXPECT_FALSE(parseInt("1 2", V));
  EXPECT_FALSE(parseInt("12a", V));
  EXPECT_FALSE(parseInt("9223372036854775808", V)); // overflow
  EXPECT_FALSE(parseInt("-9223372036854775809", V));
  EXPECT_FALSE(parseInt("-", V));
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Random, BelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Random, RangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u) << "all values of a small range should appear";
}

TEST(Random, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 1));
  }
}

TEST(Timer, DeadlineNeverExpiresByDefault) {
  Deadline D;
  EXPECT_FALSE(D.expired());
  EXPECT_FALSE(D.hasLimit());
  EXPECT_LT(D.remainingSeconds(), 0);
}

TEST(Timer, DeadlineHasLimit) {
  EXPECT_TRUE(Deadline::after(10.0).hasLimit());
  // Non-positive budgets mean "no limit" (matches after()'s contract).
  EXPECT_FALSE(Deadline::after(0.0).hasLimit());
  EXPECT_FALSE(Deadline::after(-1.0).hasLimit());
  EXPECT_FALSE(Deadline().hasLimit());
}

TEST(Timer, DeadlineExpires) {
  Deadline D = Deadline::after(0.0001);
  Timer T;
  while (!D.expired() && T.seconds() < 1.0) {
  }
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingSeconds(), 0.0);
}

TEST(CommandLine, ParsesForms) {
  OptionParser P("test");
  P.addOption("alpha", "help");
  P.addOption("beta", "help");
  P.addOption("flag", "help");
  const char *Argv[] = {"prog", "--alpha=3", "--beta=4", "--flag", "pos"};
  ASSERT_TRUE(P.parse(5, Argv));
  EXPECT_EQ(P.getInt("alpha", 0), 3);
  EXPECT_EQ(P.getInt("beta", 0), 4);
  EXPECT_TRUE(P.getBool("flag"));
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "pos");
}

TEST(CommandLine, UnknownOptionRejected) {
  OptionParser P("test");
  const char *Argv[] = {"prog", "--nope"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(CommandLine, DefaultsWhenAbsent) {
  OptionParser P("test");
  P.addOption("x", "help");
  const char *Argv[] = {"prog"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_FALSE(P.hasOption("x"));
  EXPECT_EQ(P.getInt("x", 99), 99);
  EXPECT_EQ(P.getString("x", "d"), "d");
  EXPECT_DOUBLE_EQ(P.getDouble("x", 1.5), 1.5);
}
