//===- tests/ConsistencyTest.cpp - Consistency checker tests ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Consistency.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(Consistency, AcceptsFigure4Trace) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.acquire("t1", "l");
  B.write("t1", "x", 1);
  B.write("t1", "y", 1);
  B.release("t1", "l");
  B.begin("t2");
  B.acquire("t2", "l");
  B.read("t2", "y", 1);
  B.release("t2", "l");
  B.read("t2", "x", 1);
  B.branch("t2");
  B.write("t2", "z", 1);
  B.end("t2");
  B.join("t1", "t2");
  B.read("t1", "z", 1);
  Trace T = B.build();
  ConsistencyResult R = checkConsistency(T, ConsistencyMode::Strict);
  EXPECT_TRUE(R.Ok) << R.Message;
}

TEST(Consistency, RejectsStaleRead) {
  TraceBuilder B;
  B.write("t1", "x", 1);
  B.read("t2", "x", 0); // should read 1
  Trace T = B.build();
  ConsistencyResult R = checkConsistency(T, ConsistencyMode::Strict);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Offender, 1u);
}

TEST(Consistency, InitialValueIsZero) {
  TraceBuilder B;
  B.read("t1", "x", 0);
  Trace T = B.build();
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, RejectsReadBeforeAnyWriteOfNonZero) {
  TraceBuilder B;
  B.read("t1", "x", 7);
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, RejectsDoubleAcquire) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.acquire("t2", "l");
  Trace T = B.build();
  ConsistencyResult R = checkConsistency(T, ConsistencyMode::Strict);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Offender, 1u);
}

TEST(Consistency, RejectsReleaseByNonHolder) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.release("t2", "l");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Fragment).Ok)
      << "non-holder release is wrong even in fragments";
}

TEST(Consistency, StrictRejectsBareReleaseButFragmentAllowsIt) {
  TraceBuilder B;
  B.release("t1", "l");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Fragment).Ok);
}

TEST(Consistency, StrictRejectsHeldLockAtEndButFragmentAllowsIt) {
  TraceBuilder B;
  B.acquire("t1", "l");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Fragment).Ok);
}

TEST(Consistency, RejectsBeginBeforeFork) {
  TraceBuilder B;
  B.begin("t1"); // root thread: fine
  B.begin("t2"); // never forked: strict violation
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Fragment).Ok);
}

TEST(Consistency, RejectsEventAfterEnd) {
  TraceBuilder B;
  B.end("t1");
  B.write("t1", "x", 1);
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Fragment).Ok);
}

TEST(Consistency, RejectsJoinBeforeEnd) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.begin("t2");
  B.join("t1", "t2");
  B.end("t2");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, RejectsDoubleFork) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.fork("t3", "t2");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, RejectsBeginAfterOtherEvents) {
  TraceBuilder B;
  B.write("t1", "x", 1);
  B.begin("t1");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Fragment).Ok);
}

TEST(Consistency, WaitNotifyOrdering) {
  // t1 waits on l; t2 notifies while holding l. Lowered form.
  TraceBuilder B;
  B.acquire("t1", "l");
  B.waitSuspend("t1", "l", /*Match=*/1);
  B.acquire("t2", "l");
  B.notify("t2", "l", /*Match=*/1);
  B.release("t2", "l");
  B.waitResume("t1", "l", /*Match=*/1);
  B.release("t1", "l");
  Trace T = B.build();
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, WaitResumeBeforeNotifyRejected) {
  TraceBuilder B;
  B.acquire("t1", "l");
  B.waitSuspend("t1", "l", 1);
  B.waitResume("t1", "l", 1); // resumed without its notify
  B.release("t1", "l");
  B.acquire("t2", "l");
  B.notify("t2", "l", 1);
  B.release("t2", "l");
  Trace T = B.build();
  EXPECT_FALSE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, ReorderedSequenceChecked) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.write("t2", "x", 2); // 1
  B.read("t1", "x", 2);  // 2
  Trace T = B.build();
  // Recorded order is consistent.
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  // Swapping the writes makes the read stale.
  EXPECT_FALSE(checkConsistency(T, {1, 0, 2}, ConsistencyMode::Strict).Ok);
}

TEST(Consistency, ReadConsistencyWithDataAbstractEvents) {
  TraceBuilder B;
  B.write("t1", "x", 1); // 0
  B.read("t2", "x", 1);  // 1
  Trace T = B.build();
  // Reordered so the read precedes the write: inconsistent normally...
  std::vector<bool> NoAbstract(2, false);
  EXPECT_FALSE(checkReadConsistency(T, {1, 0}, NoAbstract).Ok);
  // ...but fine if the read is allowed to be data-abstract (its value may
  // differ in the reordered trace, Section 2.3).
  std::vector<bool> Abstract = {false, true};
  EXPECT_TRUE(checkReadConsistency(T, {1, 0}, Abstract).Ok);
}
