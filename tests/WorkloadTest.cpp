//===- tests/WorkloadTest.cpp - Workload generator tests --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Catalog.h"
#include "workloads/Fuzzer.h"
#include "workloads/Programs.h"
#include "workloads/Synthetic.h"

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "runtime/Compile.h"
#include "runtime/Interpreter.h"
#include "trace/Consistency.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(Programs, AllCompile) {
  for (const std::string &Source :
       {figure1Program(), criticalProgram(), accountProgram(),
        airlineProgram(), pingpongProgram(), boundedBufferProgram(),
        bubblesortProgram(), bufwriterProgram(), mergesortProgram(),
        moldynProgram(), montecarloProgram(), raytracerProgram()}) {
    std::string Error;
    EXPECT_TRUE(compileSource(Source, Error).has_value()) << Error;
  }
}

TEST(Programs, AllRunCleanlyAndRecordConsistentTraces) {
  for (const BenchmarkCase &Case : table1Benchmarks()) {
    if (Case.CaseKind != BenchmarkCase::Kind::Program)
      continue;
    Trace T;
    std::string Error;
    ASSERT_TRUE(benchmarkTrace(Case, T, Error)) << Case.Name << ": "
                                                << Error;
    ConsistencyResult C = checkConsistency(T, ConsistencyMode::Strict);
    EXPECT_TRUE(C.Ok) << Case.Name << ": " << C.Message;
    EXPECT_GT(T.size(), 10u) << Case.Name;
  }
}

TEST(Programs, MergesortHasNoRaces) {
  auto Case = findBenchmark("mergesort");
  ASSERT_TRUE(Case.has_value());
  Trace T;
  std::string Error;
  ASSERT_TRUE(benchmarkTrace(*Case, T, Error)) << Error;
  DetectionResult R = detectRaces(T, Technique::Maximal);
  EXPECT_EQ(R.raceCount(), 0u) << "mergesort is fully fork/join ordered";
}

TEST(Programs, ExampleReproducesFigure1Race) {
  auto Case = findBenchmark("example");
  ASSERT_TRUE(Case.has_value());
  Trace T;
  std::string Error;
  ASSERT_TRUE(benchmarkTrace(*Case, T, Error)) << Error;
  DetectionResult Rv = detectRaces(T, Technique::Maximal);
  EXPECT_EQ(Rv.raceCount(), 1u);
  EXPECT_EQ(detectRaces(T, Technique::Hb).raceCount(), 0u);
  EXPECT_EQ(detectRaces(T, Technique::Cp).raceCount(), 0u);
  EXPECT_EQ(detectRaces(T, Technique::Said).raceCount(), 0u);
}

TEST(Programs, RacyContestBenchmarksHaveRaces) {
  for (const char *Name : {"critical", "account", "pingpong", "airline"}) {
    auto Case = findBenchmark(Name);
    ASSERT_TRUE(Case.has_value()) << Name;
    Trace T;
    std::string Error;
    ASSERT_TRUE(benchmarkTrace(*Case, T, Error)) << Name << ": " << Error;
    DetectionResult R = detectRaces(T, Technique::Maximal);
    EXPECT_GT(R.raceCount(), 0u) << Name;
  }
}

TEST(Synthetic, SmallSpecProducesExactCounts) {
  SyntheticSpec Spec;
  Spec.Name = "unit";
  Spec.Workers = 4;
  Spec.TargetEvents = 1500;
  Spec.PlainRaces = 2;
  Spec.CpOnlyRaces = 2;
  Spec.SaidOnlyRaces = 2;
  Spec.HbNotSaidRaces = 2;
  Spec.RvOnlyRaces = 2;
  Spec.QcOnlyPairs = 2;
  Spec.OrderedPairs = 2;
  Spec.Seed = 42;
  Trace T = generateSynthetic(Spec);

  ConsistencyResult C = checkConsistency(T, ConsistencyMode::Strict);
  ASSERT_TRUE(C.Ok) << C.Message;

  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  EXPECT_EQ(detectRaces(T, Technique::Hb, Options).raceCount(),
            Spec.expectedHb());
  EXPECT_EQ(detectRaces(T, Technique::Cp, Options).raceCount(),
            Spec.expectedCp());
  EXPECT_EQ(detectRaces(T, Technique::Said, Options).raceCount(),
            Spec.expectedSaid());
  DetectionResult Rv = detectRaces(T, Technique::Maximal, Options);
  EXPECT_EQ(Rv.raceCount(), Spec.expectedRv());
  EXPECT_EQ(Rv.Stats.QcPassed, Spec.expectedQc());
  for (const RaceReport &Race : Rv.Races)
    EXPECT_TRUE(Race.WitnessValid) << Race.LocFirst << "," << Race.LocSecond;
}

TEST(Synthetic, ExtensionPatternsProduceExactCounts) {
  SyntheticSpec Spec;
  Spec.Name = "ext-unit";
  Spec.Workers = 6;
  Spec.TargetEvents = 2000;
  Spec.AtomicityPairs = 3;
  Spec.DeadlockCycles = 2;
  Spec.PlainRaces = 1;
  Spec.Seed = 77;
  Trace T = generateSynthetic(Spec);
  ASSERT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok);

  AtomicityResult Atom = detectAtomicityViolations(T);
  EXPECT_EQ(Atom.Violations.size(), Spec.expectedAtomicity());
  for (const AtomicityReport &V : Atom.Violations)
    EXPECT_TRUE(V.WitnessValid);

  DeadlockResult Dl = detectDeadlocks(T);
  EXPECT_EQ(Dl.Deadlocks.size(), Spec.expectedDeadlocks());
  for (const DeadlockReport &D : Dl.Deadlocks)
    EXPECT_TRUE(D.WitnessValid);

  // The atomicity pairs also contribute their two race signatures each.
  DetectionResult Races = detectRaces(T, Technique::Maximal);
  EXPECT_EQ(Races.raceCount(), Spec.expectedRv());
}

TEST(Synthetic, SeedChangesInterleavingNotCounts) {
  SyntheticSpec Spec;
  Spec.Workers = 3;
  Spec.TargetEvents = 800;
  Spec.PlainRaces = 1;
  Spec.RvOnlyRaces = 1;
  for (uint64_t Seed : {1ull, 2ull, 3ull}) {
    Spec.Seed = Seed;
    Trace T = generateSynthetic(Spec);
    ASSERT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok)
        << "seed " << Seed;
    DetectionResult R = detectRaces(T, Technique::Maximal);
    EXPECT_EQ(R.raceCount(), Spec.expectedRv()) << "seed " << Seed;
  }
}

TEST(Synthetic, TargetSizeRoughlyHonored) {
  SyntheticSpec Spec;
  Spec.TargetEvents = 5000;
  Spec.PlainRaces = 1;
  Trace T = generateSynthetic(Spec);
  EXPECT_GE(T.size(), 4800u);
  EXPECT_LE(T.size(), 6000u);
}

TEST(Synthetic, RealSystemSpecsAreConsistent) {
  for (const SyntheticSpec &Spec : realSystemSpecs()) {
    SyntheticSpec Small = Spec;
    Small.TargetEvents = 3000; // downscaled structural check
    Trace T = generateSynthetic(Small);
    ConsistencyResult C = checkConsistency(T, ConsistencyMode::Strict);
    EXPECT_TRUE(C.Ok) << Spec.Name << ": " << C.Message;
    TraceStats Stats = T.stats();
    EXPECT_EQ(Stats.Threads, Spec.Workers + 1) << Spec.Name;
    EXPECT_GT(Stats.Branches, 0u) << Spec.Name;
    EXPECT_GT(Stats.Syncs, 0u) << Spec.Name;
  }
}

TEST(Synthetic, PaperCalibration) {
  // The per-technique totals across the seven real-system rows keep the
  // paper's shape: HB < CP << Said << RV, with RV = 299 exactly.
  uint32_t Hb = 0, Cp = 0, Said = 0, Rv = 0;
  for (const SyntheticSpec &Spec : realSystemSpecs()) {
    Hb += Spec.expectedHb();
    Cp += Spec.expectedCp();
    Said += Spec.expectedSaid();
    Rv += Spec.expectedRv();
  }
  EXPECT_EQ(Hb, 68u);
  EXPECT_EQ(Cp, 76u);
  EXPECT_EQ(Rv, 299u);
  EXPECT_GT(Said, Cp);
  EXPECT_LT(Said, Rv);
  // The ftpserver inversion: Said far below HB.
  SyntheticSpec Ftp = realSystemSpec("ftpserver");
  EXPECT_LT(Ftp.expectedSaid(), Ftp.expectedHb());
  // Derby shows the largest RV gap.
  SyntheticSpec Derby = realSystemSpec("derby");
  EXPECT_GT(Derby.expectedRv(),
            static_cast<uint32_t>(5) * Derby.expectedSaid());
}

TEST(Catalog, AllRowsResolve) {
  std::vector<BenchmarkCase> Cases = table1Benchmarks();
  EXPECT_EQ(Cases.size(), 21u);
  EXPECT_FALSE(findBenchmark("nonexistent").has_value());
  EXPECT_TRUE(findBenchmark("derby").has_value());
  EXPECT_TRUE(findBenchmark("highcop").has_value());
  EXPECT_TRUE(findBenchmark("staticflow").has_value());
}

TEST(Fuzzer, GeneratedProgramsCompileAndTerminate) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    std::string Source = fuzzProgram(Seed);
    std::string Error;
    auto Compiled = compileSource(Source, Error);
    ASSERT_TRUE(Compiled.has_value())
        << "seed " << Seed << ": " << Error << "\n" << Source;
    Trace T;
    RunResult Result;
    RandomScheduler S(Seed);
    RunLimits Limits;
    Limits.MaxEvents = 50000;
    ASSERT_TRUE(recordTrace(Source, T, Result, Error, &S, Limits));
    EXPECT_FALSE(Result.Deadlocked) << "seed " << Seed << "\n" << Source;
    EXPECT_FALSE(Result.HitEventLimit) << "seed " << Seed << "\n" << Source;
    ConsistencyResult C = checkConsistency(T, ConsistencyMode::Strict);
    EXPECT_TRUE(C.Ok) << "seed " << Seed << ": " << C.Message;
  }
}
