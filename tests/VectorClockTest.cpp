//===- tests/VectorClockTest.cpp - Vector-clock algebra tests ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/VectorClock.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(VectorClock, GetSetTick) {
  VectorClock C(3);
  EXPECT_EQ(C.get(0), 0u);
  C.set(1, 7);
  EXPECT_EQ(C.get(1), 7u);
  C.tick(1);
  EXPECT_EQ(C.get(1), 8u);
  C.tick(2);
  EXPECT_EQ(C.get(2), 1u);
}

TEST(VectorClock, GetPastWidthReadsZero) {
  VectorClock C(2);
  C.set(0, 5);
  EXPECT_EQ(C.get(7), 0u) << "missing components read as 0, not OOB";
}

TEST(VectorClock, SetAndTickWiden) {
  VectorClock C; // default-constructed: width 0
  C.set(3, 4);
  EXPECT_EQ(C.size(), 4u);
  EXPECT_EQ(C.get(3), 4u);
  EXPECT_EQ(C.get(0), 0u);
  C.tick(5);
  EXPECT_EQ(C.get(5), 1u);
}

TEST(VectorClock, JoinPointwiseMax) {
  VectorClock A(3), B(3);
  A.set(0, 5);
  A.set(1, 1);
  B.set(1, 9);
  B.set(2, 2);
  A.join(B);
  EXPECT_EQ(A.get(0), 5u);
  EXPECT_EQ(A.get(1), 9u);
  EXPECT_EQ(A.get(2), 2u);
}

// Regression: join with a wider operand used to iterate only over this
// clock's components, silently dropping the wider clock's tail — a
// late-spawned thread's history would vanish from the join.
TEST(VectorClock, JoinWidensToWiderOperand) {
  VectorClock Narrow(1), Wide(4);
  Narrow.set(0, 3);
  Wide.set(3, 8);
  Narrow.join(Wide);
  EXPECT_EQ(Narrow.size(), 4u);
  EXPECT_EQ(Narrow.get(0), 3u);
  EXPECT_EQ(Narrow.get(3), 8u) << "the wider operand's tail must survive";
}

TEST(VectorClock, JoinWithNarrowerOperandKeepsTail) {
  VectorClock Wide(4), Narrow(1);
  Wide.set(3, 8);
  Narrow.set(0, 3);
  Wide.join(Narrow);
  EXPECT_EQ(Wide.get(0), 3u);
  EXPECT_EQ(Wide.get(3), 8u);
}

TEST(VectorClock, JoinEpoch) {
  VectorClock C(2);
  C.set(1, 5);
  C.joinEpoch({1, 3});
  EXPECT_EQ(C.get(1), 5u) << "joinEpoch never lowers a component";
  C.joinEpoch({1, 9});
  EXPECT_EQ(C.get(1), 9u);
  C.joinEpoch({4, 2});
  EXPECT_EQ(C.get(4), 2u) << "joinEpoch widens for unseen threads";
}

TEST(VectorClock, Covers) {
  VectorClock C(2);
  C.set(1, 5);
  EXPECT_TRUE(C.covers({1, 5}));
  EXPECT_TRUE(C.covers({1, 4}));
  EXPECT_FALSE(C.covers({1, 6}));
  EXPECT_TRUE(C.covers({7, 0})) << "time 0 is vacuously covered";
  EXPECT_FALSE(C.covers({7, 1}));
}

TEST(VectorClock, LessOrEqual) {
  VectorClock A(2), B(2);
  A.set(0, 1);
  B.set(0, 2);
  B.set(1, 1);
  EXPECT_TRUE(A.lessOrEqual(B));
  EXPECT_FALSE(B.lessOrEqual(A));
  EXPECT_TRUE(A.lessOrEqual(A));
}

// Regression: lessOrEqual across widths used to index out of the shorter
// clock; missing components must compare as 0 on either side.
TEST(VectorClock, LessOrEqualMismatchedWidths) {
  VectorClock Narrow(1), Wide(3);
  Narrow.set(0, 1);
  Wide.set(0, 1);
  Wide.set(2, 4);
  EXPECT_TRUE(Narrow.lessOrEqual(Wide));
  EXPECT_FALSE(Wide.lessOrEqual(Narrow)) << "the wide tail exceeds 0";
  VectorClock ZeroTail(3);
  ZeroTail.set(0, 1);
  EXPECT_TRUE(ZeroTail.lessOrEqual(Narrow))
      << "a zero tail compares equal to missing components";
}

TEST(VectorClock, EqualityIsWidthInsensitive) {
  VectorClock A(1), B(4);
  A.set(0, 2);
  B.set(0, 2);
  EXPECT_TRUE(A == B);
  B.set(3, 1);
  EXPECT_FALSE(A == B);
}
