//===- tests/ThreadPoolTest.cpp - Work-stealing pool + parallel solving ----===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The pool itself (submit futures, parallelFor coverage, exception
/// propagation, shutdown draining), concurrent use of independent solver
/// instances, and end-to-end determinism: every detector must produce the
/// same reports and summary statistics with Jobs=4 as with the sequential
/// Jobs=1 path.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "smt/Solver.h"
#include "workloads/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace rvp;

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPool, SubmitRunsOnPoolThreads) {
  ThreadPool Pool(2);
  const std::thread::id Caller = std::this_thread::get_id();
  auto Tid = Pool.submit([] { return std::this_thread::get_id(); }).get();
  EXPECT_NE(Tid, Caller);
}

TEST(ThreadPool, WorkerIndexInsideTask) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.currentWorkerIndex(), -1);
  int Index = Pool.submit([&Pool] { return Pool.currentWorkerIndex(); })
                  .get();
  EXPECT_GE(Index, 0);
  EXPECT_LT(Index, 3);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(0, N, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForEmptyAndSingleRange) {
  ThreadPool Pool(2);
  std::atomic<int> Calls{0};
  Pool.parallelFor(5, 5, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
  Pool.parallelFor(7, 8, [&](size_t I) {
    EXPECT_EQ(I, 7u);
    ++Calls;
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  std::future<int> F = Pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(F.get(), std::runtime_error);
  // The pool stays usable after a throwing task.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForRethrowsAndCompletes) {
  ThreadPool Pool(4);
  constexpr size_t N = 64;
  std::vector<std::atomic<int>> Hits(N);
  EXPECT_THROW(Pool.parallelFor(0, N,
                                [&](size_t I) {
                                  Hits[I].fetch_add(1);
                                  if (I == 13)
                                    throw std::runtime_error("body failed");
                                }),
               std::runtime_error);
  // The barrier still waited for every index.
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  std::vector<std::future<int>> Futures;
  {
    ThreadPool Pool(1);
    for (int I = 0; I < 50; ++I)
      Futures.push_back(Pool.submit([I] { return I; }));
    // Destructor must run every queued task before joining.
  }
  for (int I = 0; I < 50; ++I) {
    ASSERT_EQ(Futures[static_cast<size_t>(I)].wait_for(
                  std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I);
  }
}

TEST(ThreadPool, StealingKeepsAllWorkersFed) {
  // Submissions from the main thread round-robin across queues; a tiny
  // pool with many more tasks than workers exercises the steal path. The
  // invariant checked is completion, not placement.
  ThreadPool Pool(4);
  std::atomic<int> Done{0};
  std::set<int> Indices;
  std::mutex M;
  Pool.parallelFor(0, 256, [&](size_t) {
    int Index = Pool.currentWorkerIndex();
    {
      std::lock_guard<std::mutex> G(M);
      Indices.insert(Index);
    }
    Done.fetch_add(1);
  });
  EXPECT_EQ(Done.load(), 256);
  for (int Index : Indices) {
    EXPECT_GE(Index, 0);
    EXPECT_LT(Index, 4);
  }
}

// Satellite: two solver instances used from different threads at once must
// not interfere (no shared static scratch state in Sat/IdlSolver).
TEST(ThreadPool, ConcurrentSolverInstancesAreIndependent) {
  ThreadPool Pool(2);
  auto SolveChain = [](uint32_t Vars) {
    // O0 < O1 < ... < On, satisfiable; plus the reversed chain with a
    // shared endpoint, unsatisfiable.
    FormulaBuilder FB;
    std::vector<NodeRef> Atoms;
    for (uint32_t I = 0; I + 1 < Vars; ++I)
      Atoms.push_back(FB.mkAtom(I, I + 1));
    auto S = createIdlSolver();
    OrderModel Model;
    SatResult Chain =
        S->solve(FB, FB.mkAnd(Atoms), Deadline(), &Model);
    Atoms.push_back(FB.mkAtom(Vars - 1, 0)); // close the cycle
    SatResult Cycle = S->solve(FB, FB.mkAnd(Atoms), Deadline(), nullptr);
    return Chain == SatResult::Sat && Cycle == SatResult::Unsat;
  };
  for (int Round = 0; Round < 20; ++Round) {
    std::future<bool> A = Pool.submit([&] { return SolveChain(40); });
    std::future<bool> B = Pool.submit([&] { return SolveChain(25); });
    EXPECT_TRUE(A.get());
    EXPECT_TRUE(B.get());
  }
}

namespace {

Trace parallelTestTrace() {
  SyntheticSpec Spec;
  Spec.Name = "pool-unit";
  Spec.Workers = 6;
  Spec.TargetEvents = 4000;
  Spec.PlainRaces = 3;
  Spec.CpOnlyRaces = 2;
  Spec.SaidOnlyRaces = 2;
  Spec.RvOnlyRaces = 2;
  Spec.QcOnlyPairs = 3;
  Spec.OrderedPairs = 4;
  Spec.AtomicityPairs = 3;
  Spec.DeadlockCycles = 2;
  Spec.Seed = 99;
  return generateSynthetic(Spec);
}

void expectSameStats(const DetectionStats &A, const DetectionStats &B) {
  EXPECT_EQ(A.Windows, B.Windows);
  EXPECT_EQ(A.Cops, B.Cops);
  EXPECT_EQ(A.QcPassed, B.QcPassed);
  EXPECT_EQ(A.SolverCalls, B.SolverCalls);
  EXPECT_EQ(A.SolverTimeouts, B.SolverTimeouts);
}

} // namespace

TEST(ParallelDetect, RacesMatchSequential) {
  Trace T = parallelTestTrace();
  DetectorOptions Seq;
  Seq.PerCopBudgetSeconds = 30;
  DetectorOptions Par = Seq;
  Par.Jobs = 4;

  DetectionResult A = detectRaces(T, Technique::Maximal, Seq);
  DetectionResult B = detectRaces(T, Technique::Maximal, Par);
  ASSERT_GT(A.raceCount(), 0u);
  ASSERT_EQ(A.raceCount(), B.raceCount());
  expectSameStats(A.Stats, B.Stats);
  EXPECT_EQ(A.Stats.Jobs, 1u);
  EXPECT_EQ(B.Stats.Jobs, 4u);
  for (size_t I = 0; I < A.raceCount(); ++I) {
    EXPECT_EQ(A.Races[I].First, B.Races[I].First);
    EXPECT_EQ(A.Races[I].Second, B.Races[I].Second);
    EXPECT_EQ(A.Races[I].LocFirst, B.Races[I].LocFirst);
    EXPECT_EQ(A.Races[I].LocSecond, B.Races[I].LocSecond);
    EXPECT_EQ(A.Races[I].Witness, B.Races[I].Witness);
    EXPECT_EQ(A.Races[I].WitnessValid, B.Races[I].WitnessValid);
  }
}

TEST(ParallelDetect, SaidMatchesSequential) {
  Trace T = parallelTestTrace();
  DetectorOptions Seq;
  Seq.PerCopBudgetSeconds = 30;
  DetectorOptions Par = Seq;
  Par.Jobs = 4;
  DetectionResult A = detectRaces(T, Technique::Said, Seq);
  DetectionResult B = detectRaces(T, Technique::Said, Par);
  ASSERT_EQ(A.raceCount(), B.raceCount());
  expectSameStats(A.Stats, B.Stats);
  for (size_t I = 0; I < A.raceCount(); ++I) {
    EXPECT_EQ(A.Races[I].First, B.Races[I].First);
    EXPECT_EQ(A.Races[I].Second, B.Races[I].Second);
  }
}

TEST(ParallelDetect, AtomicityMatchesSequential) {
  Trace T = parallelTestTrace();
  DetectorOptions Seq;
  Seq.PerCopBudgetSeconds = 30;
  DetectorOptions Par = Seq;
  Par.Jobs = 4;
  AtomicityResult A = detectAtomicityViolations(T, Seq);
  AtomicityResult B = detectAtomicityViolations(T, Par);
  ASSERT_GT(A.Violations.size(), 0u);
  ASSERT_EQ(A.Violations.size(), B.Violations.size());
  expectSameStats(A.Stats, B.Stats);
  for (size_t I = 0; I < A.Violations.size(); ++I) {
    EXPECT_EQ(A.Violations[I].First, B.Violations[I].First);
    EXPECT_EQ(A.Violations[I].Remote, B.Violations[I].Remote);
    EXPECT_EQ(A.Violations[I].Second, B.Violations[I].Second);
    EXPECT_EQ(A.Violations[I].Pattern, B.Violations[I].Pattern);
    EXPECT_EQ(A.Violations[I].Witness, B.Violations[I].Witness);
    EXPECT_EQ(A.Violations[I].WitnessValid, B.Violations[I].WitnessValid);
  }
}

TEST(ParallelDetect, DeadlocksMatchSequential) {
  Trace T = parallelTestTrace();
  DetectorOptions Seq;
  Seq.PerCopBudgetSeconds = 30;
  DetectorOptions Par = Seq;
  Par.Jobs = 4;
  DeadlockResult A = detectDeadlocks(T, Seq);
  DeadlockResult B = detectDeadlocks(T, Par);
  ASSERT_GT(A.Deadlocks.size(), 0u);
  ASSERT_EQ(A.Deadlocks.size(), B.Deadlocks.size());
  expectSameStats(A.Stats, B.Stats);
  for (size_t I = 0; I < A.Deadlocks.size(); ++I) {
    EXPECT_EQ(A.Deadlocks[I].RequestA, B.Deadlocks[I].RequestA);
    EXPECT_EQ(A.Deadlocks[I].RequestB, B.Deadlocks[I].RequestB);
    EXPECT_EQ(A.Deadlocks[I].Witness, B.Deadlocks[I].Witness);
    EXPECT_EQ(A.Deadlocks[I].WitnessValid, B.Deadlocks[I].WitnessValid);
  }
}

TEST(ParallelDetect, JobsZeroMeansHardwareConcurrency) {
  Trace T = parallelTestTrace();
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.Jobs = 0;
  DetectionResult R = detectRaces(T, Technique::Maximal, Options);
  EXPECT_EQ(R.Stats.Jobs, ThreadPool::defaultWorkerCount());
}
