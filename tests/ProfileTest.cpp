//===- tests/ProfileTest.cpp - Chrome/Perfetto trace export tests ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Profile.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

using namespace rvp;

namespace {

/// Installs a collector for one test and always deactivates it, so a
/// failing assertion can't leak profiling into the next test.
class CollectorGuard {
public:
  explicit CollectorGuard(ProfileCollector &C) {
    ProfileCollector::setActive(&C);
  }
  ~CollectorGuard() { ProfileCollector::setActive(nullptr); }
};

TEST(Profile, InactiveByDefault) {
  EXPECT_EQ(ProfileCollector::active(), nullptr);
}

TEST(Profile, RecordsSpansCountersAndInstants) {
  ProfileCollector C;
  C.span("encode", "phase", 10, 5);
  C.counter("cops", 42);
  C.instant("solver-retry", "resilience");
  EXPECT_EQ(C.eventCount(), 3u);

  std::string Json = C.toJson();
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":5"), std::string::npos);
}

TEST(Profile, ThreadNameMetadataComesFirst) {
  ProfileCollector C;
  C.setThreadName("main");
  C.span("detect", "phase", 0, 1);
  std::string Json = C.toJson();
  size_t Meta = Json.find("thread_name");
  size_t Span = Json.find("\"name\":\"detect\"");
  ASSERT_NE(Meta, std::string::npos);
  ASSERT_NE(Span, std::string::npos);
  EXPECT_LT(Meta, Span);
  EXPECT_NE(Json.find("\"name\":\"main\""), std::string::npos);
}

TEST(Profile, UnnamedThreadsGetSyntheticNames) {
  ProfileCollector C;
  C.span("work", "phase", 0, 1); // names no thread
  std::string Json = C.toJson();
  EXPECT_NE(Json.find("\"name\":\"thread-0\""), std::string::npos);
}

TEST(Profile, DistinctThreadsGetDistinctTids) {
  ProfileCollector C;
  uint32_t MainTid = C.currentTid();
  uint32_t OtherTid = MainTid;
  std::thread T([&] {
    OtherTid = C.currentTid();
    C.setThreadName("worker-0");
    C.span("solve", "phase", 0, 2);
  });
  T.join();
  EXPECT_NE(MainTid, OtherTid);
  std::string Json = C.toJson();
  EXPECT_NE(Json.find("\"name\":\"worker-0\""), std::string::npos);
}

TEST(Profile, TidIsPerCollector) {
  // The thread-local tid slot is keyed by collector: a second collector
  // on the same thread starts numbering from zero again.
  uint32_t A, B;
  {
    ProfileCollector C1;
    A = C1.currentTid();
  }
  {
    ProfileCollector C2;
    B = C2.currentTid();
  }
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 0u);
}

TEST(Profile, EventsSortedByTimestamp) {
  ProfileCollector C;
  C.span("late", "phase", 100, 1);
  C.span("early", "phase", 5, 1);
  std::string Json = C.toJson();
  EXPECT_LT(Json.find("\"name\":\"early\""), Json.find("\"name\":\"late\""));
}

TEST(Profile, NamesAreJsonEscaped) {
  ProfileCollector C;
  C.setThreadName("quo\"te");
  C.span("spa\\n", "phase", 0, 1);
  std::string Json = C.toJson();
  EXPECT_NE(Json.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(Json.find("spa\\\\n"), std::string::npos);
}

TEST(Profile, ScopedPhaseTimerEmitsSpanWhenActive) {
  ProfileCollector C;
  CollectorGuard Guard(C);
  { ScopedPhaseTimer T("profiled-phase"); }
  EXPECT_EQ(C.eventCount(), 1u);
  EXPECT_NE(C.toJson().find("\"name\":\"profiled-phase\""),
            std::string::npos);
}

TEST(Profile, ScopedPhaseTimerSilentWhenInactive) {
  ProfileCollector C;
  { ScopedPhaseTimer T("unprofiled-phase"); }
  EXPECT_EQ(C.eventCount(), 0u);
}

TEST(Profile, WriteFileRoundTrips) {
  ProfileCollector C;
  C.span("detect", "phase", 0, 3);
  std::string Path =
      testing::TempDir() + "rvp_profile_test_trace.json";
  std::string Error;
  ASSERT_TRUE(C.writeFile(Path, Error)) << Error;
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  std::string Content;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_EQ(Content, C.toJson());
}

TEST(Profile, WriteFileReportsUnwritablePath) {
  ProfileCollector C;
  std::string Error;
  EXPECT_FALSE(C.writeFile("/nonexistent-dir/trace.json", Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
