//===- tests/StatsTest.cpp - Metrics registry and telemetry tests ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "runtime/Interpreter.h"
#include "support/Stats.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

using namespace rvp;

namespace {

/// Turns telemetry on for one test and restores the disabled default,
/// leaving the global registry clean for whoever runs next.
class TelemetryGuard {
public:
  TelemetryGuard() {
    Telemetry::setEnabled(true);
    Telemetry::instance().reset();
  }
  ~TelemetryGuard() {
    Telemetry::instance().setSink(nullptr);
    Telemetry::instance().reset();
    Telemetry::setEnabled(false);
  }
};

TEST(Stats, CounterBasics) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("a.b");
  C.inc();
  C.add(4);
  EXPECT_EQ(C.value(), 5u);
  // Lookups by the same name return the same counter.
  Reg.counter("a.b").inc();
  EXPECT_EQ(C.value(), 6u);
  EXPECT_EQ(Reg.snapshot().counterValue("a.b"), 6u);
  EXPECT_EQ(Reg.snapshot().counterValue("missing"), 0u);
}

TEST(Stats, ResetKeepsReferencesValid) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("kept");
  Histogram &H = Reg.histogram("kept.hist");
  C.add(7);
  H.record(0.5);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.count(), 0u);
  // The cached references still feed the same registrations.
  C.inc();
  H.record(1.0);
  MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counterValue("kept"), 1u);
  ASSERT_EQ(S.Histograms.size(), 1u);
  EXPECT_EQ(S.Histograms[0].second.Count, 1u);
}

TEST(Stats, HistogramSingleValueIsExactEverywhere) {
  Histogram H;
  H.record(0.25);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1u);
  EXPECT_DOUBLE_EQ(S.Sum, 0.25);
  EXPECT_DOUBLE_EQ(S.Min, 0.25);
  EXPECT_DOUBLE_EQ(S.Max, 0.25);
  // Percentiles clamp to the observed range: exact for one value.
  EXPECT_DOUBLE_EQ(S.P50, 0.25);
  EXPECT_DOUBLE_EQ(S.P99, 0.25);
}

TEST(Stats, HistogramPercentilesOnKnownDistribution) {
  Histogram H;
  // 1000 evenly spaced values in (0, 1]: the q-percentile is ~q.
  for (int I = 1; I <= 1000; ++I)
    H.record(I / 1000.0);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1000u);
  EXPECT_NEAR(S.Sum, 500.5, 1e-9);
  EXPECT_DOUBLE_EQ(S.Min, 0.001);
  EXPECT_DOUBLE_EQ(S.Max, 1.0);
  // Log-spaced buckets bound the relative error by the 30% growth factor.
  EXPECT_NEAR(S.P50, 0.5, 0.5 * 0.3);
  EXPECT_NEAR(S.P90, 0.9, 0.9 * 0.3);
  EXPECT_NEAR(S.P99, 0.99, 0.99 * 0.3);
  EXPECT_LE(S.P50, S.P90);
  EXPECT_LE(S.P90, S.P99);
  EXPECT_LE(S.P99, S.Max);
}

TEST(Stats, HistogramAllInOneBucketStaysInObservedRange) {
  // Many samples landing in a single log bucket: interpolation across the
  // full bucket width would report quantiles outside [min, max], so the
  // estimator must tighten the bucket to the observed range.
  Histogram H;
  for (int I = 0; I < 100; ++I)
    H.record(0.105); // one bucket holds every sample
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 100u);
  for (double P : {S.P50, S.P90, S.P99}) {
    EXPECT_GE(P, S.Min);
    EXPECT_LE(P, S.Max);
  }
  EXPECT_DOUBLE_EQ(S.P50, 0.105);
  EXPECT_DOUBLE_EQ(S.P99, 0.105);
}

TEST(Stats, HistogramTwoDistinctValuesBracketPercentiles) {
  Histogram H;
  H.record(0.001);
  H.record(10.0);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_DOUBLE_EQ(S.Min, 0.001);
  EXPECT_DOUBLE_EQ(S.Max, 10.0);
  for (double P : {S.P50, S.P90, S.P99}) {
    EXPECT_GE(P, S.Min);
    EXPECT_LE(P, S.Max);
  }
  EXPECT_LE(S.P50, S.P90);
  EXPECT_LE(S.P90, S.P99);
}

TEST(Stats, HistogramOverflowBucketClampsToMax) {
  // Values beyond the last bucket bound land in the overflow bucket,
  // whose upper edge is +inf: quantiles must come back as the observed
  // max, never inf.
  Histogram H;
  double Huge = 1e12;
  for (int I = 0; I < 10; ++I)
    H.record(Huge);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 10u);
  EXPECT_DOUBLE_EQ(S.P50, Huge);
  EXPECT_DOUBLE_EQ(S.P99, Huge);
}

TEST(Stats, HistogramEmptyIsAllZero) {
  Histogram H;
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_DOUBLE_EQ(S.P50, 0.0);
  EXPECT_DOUBLE_EQ(H.percentile(0.99), 0.0);
}

TEST(Stats, ConcurrentIncrementsAreExact) {
  // Counters, gauges, and histograms are shared across solver workers;
  // concurrent updates and registry lookups must neither lose increments
  // nor tear. 4 threads x 10k operations each.
  MetricsRegistry Reg;
  Counter &C = Reg.counter("par.count");
  Histogram &H = Reg.histogram("par.hist");
  constexpr int Threads = 4;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Workers;
  for (int W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      for (int I = 0; I < PerThread; ++I) {
        C.inc();
        Reg.counter("par.count2").add(2);
        H.record((I % 100 + 1) / 100.0);
        Reg.gauge("par.gauge").set(static_cast<double>(W));
        if (I % 1000 == 0)
          (void)Reg.snapshot(); // concurrent readers are safe too
      }
    });
  for (std::thread &Worker : Workers)
    Worker.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(Reg.counter("par.count2").value(),
            static_cast<uint64_t>(Threads) * PerThread * 2);
  EXPECT_EQ(H.count(), static_cast<uint64_t>(Threads) * PerThread);
  double G = Reg.gauge("par.gauge").value();
  EXPECT_GE(G, 0.0);
  EXPECT_LT(G, Threads);
}

TEST(Stats, BucketBoundsAreMonotone) {
  for (size_t I = 1; I < Histogram::NumBuckets; ++I)
    EXPECT_GT(Histogram::bucketUpperBound(I),
              Histogram::bucketUpperBound(I - 1));
}

TEST(Stats, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("line\nbreak\tand\r"), "line\\nbreak\\tand\\r");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  // Location strings like "Account.java:42" pass through unchanged.
  EXPECT_EQ(jsonEscape("Account.java:42"), "Account.java:42");
}

TEST(Stats, JsonObjectBuildsValidObject) {
  JsonObject O;
  O.field("n", static_cast<uint64_t>(3))
      .field("x", 1.5)
      .field("ok", true)
      .field("s", "he said \"hi\"")
      .raw("nested", "{\"a\":1}");
  EXPECT_EQ(O.str(), "{\"n\":3,\"x\":1.5,\"ok\":true,"
                     "\"s\":\"he said \\\"hi\\\"\",\"nested\":{\"a\":1}}");
}

TEST(Stats, MetricsToJsonShape) {
  MetricsRegistry Reg;
  Reg.counter("c").add(2);
  Reg.gauge("g").set(0.5);
  Reg.histogram("h").record(1.0);
  std::string Json = metricsToJson(Reg.snapshot());
  EXPECT_NE(Json.find("\"counters\":{\"c\":2}"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"gauges\":{\"g\":0.5}"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"h\":{\"count\":1"), std::string::npos) << Json;
}

TEST(Telemetry, PhaseTreeNesting) {
  PhaseTree Tree;
  Tree.enter("outer");
  Tree.enter("inner");
  Tree.exit(0.25);
  Tree.enter("inner");
  Tree.exit(0.25);
  Tree.exit(1.0);
  EXPECT_TRUE(Tree.atRoot());

  PhaseSnapshot Root = Tree.snapshot();
  EXPECT_EQ(Root.Name, "total");
  EXPECT_DOUBLE_EQ(Root.Seconds, 1.0);
  const PhaseSnapshot *Outer = Root.find("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->Count, 1u);
  const PhaseSnapshot *Inner = Root.find("inner");
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Count, 2u) << "re-entered phases accumulate in one node";
  EXPECT_DOUBLE_EQ(Inner->Seconds, 0.5);
  EXPECT_LE(Outer->childSeconds(), Outer->Seconds);
  EXPECT_EQ(Root.find("nope"), nullptr);
}

TEST(Telemetry, ScopedPhaseTimerRespectsEnableFlag) {
  {
    TelemetryGuard Guard;
    {
      ScopedPhaseTimer Outer("t-outer");
      ScopedPhaseTimer Inner("t-inner");
    }
    PhaseSnapshot Root = Telemetry::instance().phases().snapshot();
    ASSERT_NE(Root.find("t-outer"), nullptr);
    EXPECT_NE(Root.find("t-inner"), nullptr);
  }
  // Disabled: no phases recorded at all.
  {
    ScopedPhaseTimer Off("t-off");
  }
  PhaseSnapshot Root = Telemetry::instance().phases().snapshot();
  EXPECT_EQ(Root.find("t-off"), nullptr);
}

TEST(Telemetry, SinkWritesOneLinePerEvent) {
  TelemetryGuard Guard;
  std::string Path = testing::TempDir() + "rvp_stats_sink_test.jsonl";
  TraceEventSink Sink;
  std::string Error;
  ASSERT_TRUE(Sink.open(Path, Error)) << Error;
  JsonObject A;
  A.field("type", "window").field("index", static_cast<uint64_t>(0));
  Sink.write(A);
  JsonObject B;
  B.field("type", "cop").field("loc", "a\"b");
  Sink.write(B);
  EXPECT_EQ(Sink.eventsWritten(), 2u);
  Sink.close();

  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[256];
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  EXPECT_STREQ(Buf, "{\"type\":\"window\",\"index\":0}\n");
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  EXPECT_STREQ(Buf, "{\"type\":\"cop\",\"loc\":\"a\\\"b\"}\n");
  std::fclose(F);
  std::remove(Path.c_str());
}

/// The README quickstart program: one sync'd write racing a bare write.
constexpr const char *RacyProgram = R"(
shared x;
lock l;
thread t {
  sync l { x = 1; }
}
main {
  spawn t;
  x = 2;
  join t;
}
)";

TEST(Telemetry, DetectRacesCapturesSnapshot) {
  TelemetryGuard Guard;
  Trace T;
  RunResult Run;
  std::string Error;
  ASSERT_TRUE(recordTrace(RacyProgram, T, Run, Error)) << Error;

  DetectorOptions Options;
  DetectionResult R = detectRaces(T, Technique::Maximal, Options);
  ASSERT_TRUE(R.Stats.Telemetry.Captured);

  // Interpreter counters recorded before detection survive the snapshot.
  const MetricsSnapshot &M = R.Stats.Telemetry.Metrics;
  EXPECT_GT(M.counterValue("runtime.scheduler_steps"), 0u);
  EXPECT_GT(M.counterValue("runtime.events.write"), 0u);
  EXPECT_EQ(M.counterValue("detect.windows"), R.Stats.Windows);
  EXPECT_EQ(M.counterValue("detect.races"), R.raceCount());
  EXPECT_EQ(M.counterValue("solver.calls"), R.Stats.SolverCalls);

  // Phase hierarchy: detect > window >= cop-enum + quick-check + ...
  const PhaseSnapshot &Root = R.Stats.Telemetry.Phases;
  const PhaseSnapshot *Detect = Root.find("detect");
  ASSERT_NE(Detect, nullptr);
  EXPECT_EQ(Detect->Count, 1u);
  const PhaseSnapshot *Window = Detect->Children.empty()
                                    ? nullptr
                                    : Root.find("window");
  ASSERT_NE(Window, nullptr);
  EXPECT_EQ(Window->Count, R.Stats.Windows);
  EXPECT_LE(Window->Seconds, Detect->Seconds + 1e-6);
  EXPECT_LE(Window->childSeconds(), Window->Seconds + 1e-6);

  // Both renderings carry the Table-1 fields.
  std::string Table = renderStatsTable(R.Stats, "RV");
  EXPECT_NE(Table.find("windows="), std::string::npos);
  EXPECT_NE(Table.find("detect"), std::string::npos);
  std::string Json = statsToJson(R.Stats, "RV");
  for (const char *Key : {"\"windows\"", "\"cops\"", "\"qc_passed\"",
                          "\"solver_calls\"", "\"solver_timeouts\"",
                          "\"metrics\"", "\"phases\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key << " in " << Json;
}

TEST(Telemetry, DisabledRunsCaptureNothing) {
  Trace T;
  RunResult Run;
  std::string Error;
  ASSERT_TRUE(recordTrace(RacyProgram, T, Run, Error)) << Error;
  DetectionResult R = detectRaces(T, Technique::Maximal, DetectorOptions());
  EXPECT_FALSE(R.Stats.Telemetry.Captured);
  std::string Json = statsToJson(R.Stats, "RV");
  EXPECT_EQ(Json.find("\"phases\""), std::string::npos);
  // The classic one-line summary is still rendered.
  EXPECT_NE(renderStatsTable(R.Stats, "RV").find("windows="),
            std::string::npos);
}

} // namespace
