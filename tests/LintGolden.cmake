# Golden-file check for the rvlint tool: each lint_<kind>.rv program under
# tests/golden/ must produce byte-identical text output to its .expected
# file (rvlint prints basenames, so the goldens are path-independent), the
# right exit code (1 with diagnostics, 0 clean), and JSON output that
# parses with a matching diagnostic count and carries the run-metadata
# header (schema_version/git_sha/timestamp). lint_races_* cases run with
# --races so the static race pass is covered end to end. Invoked by CTest
#   cmake -DRVLINT=<tool> -DGOLDEN_DIR=<dir> -P LintGolden.cmake

if(NOT DEFINED RVLINT OR NOT DEFINED GOLDEN_DIR)
  message(FATAL_ERROR "usage: cmake -DRVLINT=... -DGOLDEN_DIR=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

file(GLOB CASES "${GOLDEN_DIR}/lint_*.rv")
list(LENGTH CASES NCASES)
if(NCASES LESS 8)
  message(FATAL_ERROR "expected >= 8 lint goldens under ${GOLDEN_DIR}, found ${NCASES}")
endif()

set(KINDS_SEEN "")
foreach(CASE ${CASES})
  get_filename_component(NAME "${CASE}" NAME_WE)
  set(EXPECTED_FILE "${GOLDEN_DIR}/${NAME}.expected")
  if(NOT EXISTS "${EXPECTED_FILE}")
    message(FATAL_ERROR "missing golden ${EXPECTED_FILE}")
  endif()
  file(READ "${EXPECTED_FILE}" EXPECTED)

  # The lint_races_* fixtures exercise the static race pass.
  set(FLAGS "")
  if(NAME MATCHES "^lint_races_")
    set(FLAGS "--races")
  endif()

  execute_process(
    COMMAND "${RVLINT}" "${CASE}" ${FLAGS}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(NOT STDOUT STREQUAL EXPECTED)
    message(FATAL_ERROR "rvlint output differs for ${NAME}:\n"
            "--- expected ---\n${EXPECTED}\n--- actual ---\n${STDOUT}\n${STDERR}")
  endif()

  # Exit code discipline: 0 exactly when the expected report is clean.
  if(EXPECTED MATCHES "no issues found")
    if(NOT RC EQUAL 0)
      message(FATAL_ERROR "rvlint ${NAME} exited ${RC}, expected 0")
    endif()
  elseif(NOT RC EQUAL 1)
    message(FATAL_ERROR "rvlint ${NAME} exited ${RC}, expected 1")
  endif()

  # The JSON rendering must parse, agree on the warning count
  # (diagnostics plus race warnings), and carry the run-metadata header.
  execute_process(
    COMMAND "${RVLINT}" "${CASE}" ${FLAGS} --json
    RESULT_VARIABLE JSON_RC
    OUTPUT_VARIABLE JSON_TEXT)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON NDIAGS ERROR_VARIABLE JSON_ERR LENGTH "${JSON_TEXT}"
           diagnostics)
    if(JSON_ERR)
      message(FATAL_ERROR "unparsable rvlint --json for ${NAME}: ${JSON_ERR}\n${JSON_TEXT}")
    endif()
    string(JSON NRACES ERROR_VARIABLE JSON_ERR LENGTH "${JSON_TEXT}" races)
    if(JSON_ERR)
      message(FATAL_ERROR "rvlint --json for ${NAME} lacks races array: ${JSON_ERR}")
    endif()
    string(REGEX MATCHALL "warning:" TEXT_WARNINGS "${EXPECTED}")
    list(LENGTH TEXT_WARNINGS NTEXT)
    math(EXPR NTOTAL "${NDIAGS} + ${NRACES}")
    if(NOT NTOTAL EQUAL NTEXT)
      message(FATAL_ERROR "${NAME}: ${NDIAGS} JSON diagnostics + ${NRACES} "
              "races vs ${NTEXT} text warnings")
    endif()
    foreach(KEY schema_version git_sha timestamp)
      string(JSON META ERROR_VARIABLE JSON_ERR GET "${JSON_TEXT}" ${KEY})
      if(JSON_ERR OR META STREQUAL "")
        message(FATAL_ERROR "rvlint --json for ${NAME} lacks run metadata "
                "key '${KEY}': ${JSON_ERR}")
      endif()
    endforeach()
  endif()

  # Collect the [kind] tags so the suite provably covers every checker.
  string(REGEX MATCHALL "\\[[a-z-]+\\]" TAGS "${EXPECTED}")
  list(APPEND KINDS_SEEN ${TAGS})
endforeach()

list(REMOVE_DUPLICATES KINDS_SEEN)
list(LENGTH KINDS_SEEN NKINDS)
if(NKINDS LESS 7)
  message(FATAL_ERROR "lint goldens cover only ${NKINDS} diagnostic kinds: ${KINDS_SEEN}")
endif()

message(STATUS "rvlint golden check passed: ${NCASES} programs, ${NKINDS} kinds")
