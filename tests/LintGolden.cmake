# Golden-file check for the rvlint tool: each lint_<kind>.rv program under
# tests/golden/ must produce byte-identical text output to its .expected
# file (rvlint prints basenames, so the goldens are path-independent), the
# right exit code (1 with diagnostics, 0 clean), and JSON output that
# parses with a matching diagnostic count. Invoked by CTest as
#   cmake -DRVLINT=<tool> -DGOLDEN_DIR=<dir> -P LintGolden.cmake

if(NOT DEFINED RVLINT OR NOT DEFINED GOLDEN_DIR)
  message(FATAL_ERROR "usage: cmake -DRVLINT=... -DGOLDEN_DIR=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

file(GLOB CASES "${GOLDEN_DIR}/lint_*.rv")
list(LENGTH CASES NCASES)
if(NCASES LESS 8)
  message(FATAL_ERROR "expected >= 8 lint goldens under ${GOLDEN_DIR}, found ${NCASES}")
endif()

set(KINDS_SEEN "")
foreach(CASE ${CASES})
  get_filename_component(NAME "${CASE}" NAME_WE)
  set(EXPECTED_FILE "${GOLDEN_DIR}/${NAME}.expected")
  if(NOT EXISTS "${EXPECTED_FILE}")
    message(FATAL_ERROR "missing golden ${EXPECTED_FILE}")
  endif()
  file(READ "${EXPECTED_FILE}" EXPECTED)

  execute_process(
    COMMAND "${RVLINT}" "${CASE}"
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(NOT STDOUT STREQUAL EXPECTED)
    message(FATAL_ERROR "rvlint output differs for ${NAME}:\n"
            "--- expected ---\n${EXPECTED}\n--- actual ---\n${STDOUT}\n${STDERR}")
  endif()

  # Exit code discipline: 0 only for the clean program.
  if(NAME STREQUAL "lint_clean")
    if(NOT RC EQUAL 0)
      message(FATAL_ERROR "rvlint ${NAME} exited ${RC}, expected 0")
    endif()
  elseif(NOT RC EQUAL 1)
    message(FATAL_ERROR "rvlint ${NAME} exited ${RC}, expected 1")
  endif()

  # The JSON rendering must parse and agree on the diagnostic count.
  execute_process(
    COMMAND "${RVLINT}" "${CASE}" --json
    RESULT_VARIABLE JSON_RC
    OUTPUT_VARIABLE JSON_TEXT)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON NDIAGS ERROR_VARIABLE JSON_ERR LENGTH "${JSON_TEXT}"
           diagnostics)
    if(JSON_ERR)
      message(FATAL_ERROR "unparsable rvlint --json for ${NAME}: ${JSON_ERR}\n${JSON_TEXT}")
    endif()
    string(REGEX MATCHALL "warning:" TEXT_WARNINGS "${EXPECTED}")
    list(LENGTH TEXT_WARNINGS NTEXT)
    if(NOT NDIAGS EQUAL NTEXT)
      message(FATAL_ERROR "${NAME}: ${NDIAGS} JSON diagnostics vs ${NTEXT} text warnings")
    endif()
  endif()

  # Collect the [kind] tags so the suite provably covers every checker.
  string(REGEX MATCHALL "\\[[a-z-]+\\]" TAGS "${EXPECTED}")
  list(APPEND KINDS_SEEN ${TAGS})
endforeach()

list(REMOVE_DUPLICATES KINDS_SEEN)
list(LENGTH KINDS_SEEN NKINDS)
if(NKINDS LESS 7)
  message(FATAL_ERROR "lint goldens cover only ${NKINDS} diagnostic kinds: ${KINDS_SEEN}")
endif()

message(STATUS "rvlint golden check passed: ${NCASES} programs, ${NKINDS} kinds")
