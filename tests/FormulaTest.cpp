//===- tests/FormulaTest.cpp - Formula builder tests -----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Formula.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(Formula, ConstantsAreFixedRefs) {
  FormulaBuilder FB;
  EXPECT_EQ(FB.node(FB.mkTrue()).Kind, FormulaKind::True);
  EXPECT_EQ(FB.node(FB.mkFalse()).Kind, FormulaKind::False);
}

TEST(Formula, AtomsHashConsed) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(1, 2);
  NodeRef C = FB.mkAtom(2, 1);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(Formula, AndSimplifications) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  EXPECT_EQ(FB.mkAnd({}), FB.mkTrue());
  EXPECT_EQ(FB.mkAnd({A}), A);
  EXPECT_EQ(FB.mkAnd({A, FB.mkTrue()}), A);
  EXPECT_EQ(FB.mkAnd({A, FB.mkFalse()}), FB.mkFalse());
  EXPECT_EQ(FB.mkAnd({A, A}), A);
  EXPECT_EQ(FB.mkAnd({A, B}), FB.mkAnd({B, A})) << "children canonicalized";
}

TEST(Formula, OrSimplifications) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  EXPECT_EQ(FB.mkOr({}), FB.mkFalse());
  EXPECT_EQ(FB.mkOr({A}), A);
  EXPECT_EQ(FB.mkOr({A, FB.mkFalse()}), A);
  EXPECT_EQ(FB.mkOr({A, FB.mkTrue()}), FB.mkTrue());
}

TEST(Formula, ComplementDetection) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef NotA = FB.mkAtom(2, 1);
  EXPECT_EQ(FB.mkAnd({A, NotA}), FB.mkFalse())
      << "a<b and b<a cannot both hold";
  EXPECT_EQ(FB.mkOr({A, NotA}), FB.mkTrue())
      << "distinct positions are totally ordered";
}

TEST(Formula, NestedFlattening) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  NodeRef C = FB.mkAtom(5, 6);
  NodeRef Nested = FB.mkAnd({A, FB.mkAnd({B, C})});
  NodeRef Flat = FB.mkAnd({A, B, C});
  EXPECT_EQ(Nested, Flat);
}

TEST(Formula, MixedAndOrNotFlattened) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  NodeRef Or = FB.mkOr({A, B});
  NodeRef And = FB.mkAnd({A, Or});
  EXPECT_EQ(FB.node(And).Kind, FormulaKind::And);
  EXPECT_EQ(FB.node(And).numChildren(), 2u);
}

TEST(Formula, CollectVars) {
  FormulaBuilder FB;
  NodeRef F = FB.mkOr(
      {FB.mkAnd({FB.mkAtom(5, 2), FB.mkAtom(2, 9)}), FB.mkAtom(7, 5)});
  std::vector<OrderVar> Vars = FB.collectVars(F);
  EXPECT_EQ(Vars, (std::vector<OrderVar>{2, 5, 7, 9}));
}

TEST(Formula, ToStringRendering) {
  FormulaBuilder FB;
  NodeRef F = FB.mkAnd({FB.mkAtom(1, 2), FB.mkAtom(3, 4)});
  std::string S = FB.toString(F);
  EXPECT_NE(S.find("O1 < O2"), std::string::npos);
  EXPECT_NE(S.find(" & "), std::string::npos);
  EXPECT_EQ(FB.toString(FB.mkTrue()), "true");
}

TEST(Formula, HashConsingSharesNaryNodes) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  size_t Before = FB.numNodes();
  NodeRef First = FB.mkAnd({A, B});
  NodeRef Second = FB.mkAnd({A, B});
  EXPECT_EQ(First, Second);
  EXPECT_EQ(FB.numNodes(), Before + 1);
}
