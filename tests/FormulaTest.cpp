//===- tests/FormulaTest.cpp - Formula builder tests -----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Formula.h"
#include "support/MemStats.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace rvp;

TEST(Formula, ConstantsAreFixedRefs) {
  FormulaBuilder FB;
  EXPECT_EQ(FB.node(FB.mkTrue()).Kind, FormulaKind::True);
  EXPECT_EQ(FB.node(FB.mkFalse()).Kind, FormulaKind::False);
}

TEST(Formula, AtomsHashConsed) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(1, 2);
  NodeRef C = FB.mkAtom(2, 1);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(Formula, AndSimplifications) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  EXPECT_EQ(FB.mkAnd({}), FB.mkTrue());
  EXPECT_EQ(FB.mkAnd({A}), A);
  EXPECT_EQ(FB.mkAnd({A, FB.mkTrue()}), A);
  EXPECT_EQ(FB.mkAnd({A, FB.mkFalse()}), FB.mkFalse());
  EXPECT_EQ(FB.mkAnd({A, A}), A);
  EXPECT_EQ(FB.mkAnd({A, B}), FB.mkAnd({B, A})) << "children canonicalized";
}

TEST(Formula, OrSimplifications) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  EXPECT_EQ(FB.mkOr({}), FB.mkFalse());
  EXPECT_EQ(FB.mkOr({A}), A);
  EXPECT_EQ(FB.mkOr({A, FB.mkFalse()}), A);
  EXPECT_EQ(FB.mkOr({A, FB.mkTrue()}), FB.mkTrue());
}

TEST(Formula, ComplementDetection) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef NotA = FB.mkAtom(2, 1);
  EXPECT_EQ(FB.mkAnd({A, NotA}), FB.mkFalse())
      << "a<b and b<a cannot both hold";
  EXPECT_EQ(FB.mkOr({A, NotA}), FB.mkTrue())
      << "distinct positions are totally ordered";
}

TEST(Formula, NestedFlattening) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  NodeRef C = FB.mkAtom(5, 6);
  NodeRef Nested = FB.mkAnd({A, FB.mkAnd({B, C})});
  NodeRef Flat = FB.mkAnd({A, B, C});
  EXPECT_EQ(Nested, Flat);
}

TEST(Formula, MixedAndOrNotFlattened) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  NodeRef Or = FB.mkOr({A, B});
  NodeRef And = FB.mkAnd({A, Or});
  EXPECT_EQ(FB.node(And).Kind, FormulaKind::And);
  EXPECT_EQ(FB.node(And).numChildren(), 2u);
}

TEST(Formula, CollectVars) {
  FormulaBuilder FB;
  NodeRef F = FB.mkOr(
      {FB.mkAnd({FB.mkAtom(5, 2), FB.mkAtom(2, 9)}), FB.mkAtom(7, 5)});
  std::vector<OrderVar> Vars = FB.collectVars(F);
  EXPECT_EQ(Vars, (std::vector<OrderVar>{2, 5, 7, 9}));
}

TEST(Formula, ToStringRendering) {
  FormulaBuilder FB;
  NodeRef F = FB.mkAnd({FB.mkAtom(1, 2), FB.mkAtom(3, 4)});
  std::string S = FB.toString(F);
  EXPECT_NE(S.find("O1 < O2"), std::string::npos);
  EXPECT_NE(S.find(" & "), std::string::npos);
  EXPECT_EQ(FB.toString(FB.mkTrue()), "true");
}

TEST(Formula, HashConsingSharesNaryNodes) {
  FormulaBuilder FB;
  NodeRef A = FB.mkAtom(1, 2);
  NodeRef B = FB.mkAtom(3, 4);
  size_t Before = FB.numNodes();
  NodeRef First = FB.mkAnd({A, B});
  NodeRef Second = FB.mkAnd({A, B});
  EXPECT_EQ(First, Second);
  EXPECT_EQ(FB.numNodes(), Before + 1);
}

TEST(Formula, ArenaChargesFormulaDagAndBulkFreesAtBarrier) {
  // The builder's node storage lives in a bump arena charged to
  // MemPool::FormulaDag; the charge must appear while the builder is
  // alive and vanish entirely when it dies (the window barrier).
  Telemetry::setEnabled(true);
  uint64_t Baseline = MemStats::current(MemPool::FormulaDag);
  {
    FormulaBuilder FB;
    std::vector<NodeRef> Conj;
    for (uint32_t I = 0; I < 20000; ++I)
      Conj.push_back(FB.mkAtom(I, I + 1));
    FB.mkAnd(std::move(Conj));
    EXPECT_GT(MemStats::current(MemPool::FormulaDag), Baseline)
        << "arena chunks are charged while the builder lives";
  }
  EXPECT_EQ(MemStats::current(MemPool::FormulaDag), Baseline)
      << "the builder's death releases every chunk at once";
  Telemetry::setEnabled(false);
}

TEST(Formula, ArenaRelocationPreservesNodes) {
  // ArenaVector growth relocates node and child storage with memcpy;
  // NodeRefs are indices, so formulas built early must survive heavy
  // later allocation verbatim.
  FormulaBuilder FB;
  NodeRef Early = FB.mkAnd({FB.mkAtom(1, 2), FB.mkAtom(3, 4)});
  std::string Rendered = FB.toString(Early);
  std::vector<OrderVar> Vars = FB.collectVars(Early);
  for (uint32_t I = 10; I < 30000; ++I)
    FB.mkAtom(I, I + 1);
  EXPECT_EQ(FB.toString(Early), Rendered);
  EXPECT_EQ(FB.collectVars(Early), Vars);
  EXPECT_EQ(FB.node(Early).Kind, FormulaKind::And);
  EXPECT_EQ(FB.node(Early).numChildren(), 2u);
}
