//===- tests/SatTest.cpp - CDCL SAT solver tests ---------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// Brute-force satisfiability for cross-checking (up to ~20 vars).
bool bruteForceSat(uint32_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool AllSat = true;
    for (const auto &Clause : Clauses) {
      bool ClauseSat = false;
      for (Lit L : Clause) {
        bool Value = (Mask >> L.var()) & 1;
        if (Value != L.sign()) {
          ClauseSat = true;
          break;
        }
      }
      if (!ClauseSat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

} // namespace

TEST(Sat, EmptyProblemIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Sat, SingleUnit) {
  SatSolver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(V)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(V));
}

TEST(Sat, ContradictoryUnitsUnsat) {
  SatSolver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(V)}));
  EXPECT_FALSE(S.addClause({Lit::neg(V)}));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, TautologyIgnored) {
  SatSolver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(V), Lit::neg(V)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Sat, SimpleImplicationChain) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  // A, A->B, B->C, so C must be true.
  S.addClause({Lit::pos(A)});
  S.addClause({Lit::neg(A), Lit::pos(B)});
  S.addClause({Lit::neg(B), Lit::pos(C)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(C));
}

TEST(Sat, XorChainSat) {
  // (a xor b) and (b xor c): satisfiable.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({Lit::pos(A), Lit::pos(B)});
  S.addClause({Lit::neg(A), Lit::neg(B)});
  S.addClause({Lit::pos(B), Lit::pos(C)});
  S.addClause({Lit::neg(B), Lit::neg(C)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_NE(S.modelValue(A), S.modelValue(B));
  EXPECT_NE(S.modelValue(B), S.modelValue(C));
}

TEST(Sat, PigeonHole3Into2Unsat) {
  // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
  SatSolver S;
  Var V[3][2];
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  for (int P = 0; P < 3; ++P)
    S.addClause({Lit::pos(V[P][0]), Lit::pos(V[P][1])});
  for (int H = 0; H < 2; ++H)
    for (int P1 = 0; P1 < 3; ++P1)
      for (int P2 = P1 + 1; P2 < 3; ++P2)
        S.addClause({Lit::neg(V[P1][H]), Lit::neg(V[P2][H])});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonHole5Into4Unsat) {
  SatSolver S;
  constexpr int P = 5, H = 4;
  Var V[P][H];
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> Clause;
    for (int J = 0; J < H; ++J)
      Clause.push_back(Lit::pos(V[I][J]));
    S.addClause(Clause);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause({Lit::neg(V[I1][J]), Lit::neg(V[I2][J])});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, ModelSatisfiesAllClauses) {
  Rng R(42);
  SatSolver S;
  constexpr uint32_t NumVars = 30;
  for (uint32_t I = 0; I < NumVars; ++I)
    S.newVar();
  std::vector<std::vector<Lit>> Clauses;
  for (int I = 0; I < 80; ++I) {
    std::vector<Lit> Clause;
    for (int K = 0; K < 3; ++K) {
      Var V = static_cast<Var>(R.below(NumVars));
      Clause.push_back(R.chance(1, 2) ? Lit::pos(V) : Lit::neg(V));
    }
    Clauses.push_back(Clause);
    S.addClause(Clause);
  }
  if (S.solve() != SatResult::Sat)
    GTEST_SKIP() << "random instance unsat; model check not applicable";
  for (const auto &Clause : Clauses) {
    bool Satisfied = false;
    for (Lit L : Clause)
      Satisfied |= S.modelValue(L.var()) != L.sign();
    EXPECT_TRUE(Satisfied);
  }
}

TEST(Sat, DeadlineReturnsUnknown) {
  // A hard pigeonhole instance with a ~zero budget must time out cleanly.
  SatSolver S;
  constexpr int P = 9, H = 8;
  std::vector<std::vector<Var>> V(P, std::vector<Var>(H));
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> Clause;
    for (int J = 0; J < H; ++J)
      Clause.push_back(Lit::pos(V[I][J]));
    S.addClause(Clause);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause({Lit::neg(V[I1][J]), Lit::neg(V[I2][J])});
  EXPECT_EQ(S.solve(Deadline::after(1e-6)), SatResult::Unknown);
  // The solver remains usable afterwards with a real budget.
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, ResolveAfterSatKeepsWorking) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit::pos(A), Lit::pos(B)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // Adding a clause after a Sat answer requires returning to the root.
  S.backtrackToRoot();
  S.addClause({Lit::neg(A)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  S.backtrackToRoot();
  S.addClause({Lit::neg(B)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

// ------------------------------------------------ assumption solving

TEST(Sat, UnsatUnderAssumptionsIsNotGloballyUnsat) {
  // (a \/ b) is satisfiable, but not under assumptions {~a, ~b}.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(A), Lit::pos(B)}));
  EXPECT_EQ(S.solve({Lit::neg(A), Lit::neg(B)}), SatResult::Unsat);
  EXPECT_GE(S.numAssumptionConflicts(), 1u);
  // The refutation names only assumption literals.
  ASSERT_FALSE(S.failedAssumptions().empty());
  for (Lit L : S.failedAssumptions())
    EXPECT_TRUE(L == Lit::neg(A) || L == Lit::neg(B));
  // The clause database itself stays satisfiable: no poisoning.
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Sat, GloballyUnsatUnderAssumptionsStaysUnsat) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  // (a) (~a \/ b) (~b): unsat regardless of assumptions. Root-level
  // propagation spots the contradiction as the last clause arrives.
  ASSERT_TRUE(S.addClause({Lit::pos(A)}));
  ASSERT_TRUE(S.addClause({Lit::neg(A), Lit::pos(B)}));
  EXPECT_FALSE(S.addClause({Lit::neg(B)}));
  Var C = S.newVar();
  EXPECT_EQ(S.solve({Lit::pos(C)}), SatResult::Unsat);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, ModelCorrectAfterFailedAssumptionQuery) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(A), Lit::pos(B)}));
  ASSERT_TRUE(S.addClause({Lit::neg(C), Lit::pos(A)}));
  ASSERT_EQ(S.solve({Lit::neg(A), Lit::neg(B)}), SatResult::Unsat);
  // A later satisfiable query must produce a full, consistent model.
  ASSERT_EQ(S.solve({Lit::pos(C)}), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(C));
  EXPECT_TRUE(S.modelValue(A)); // forced by C -> A
  EXPECT_TRUE(S.modelValue(A) || S.modelValue(B));
}

TEST(Sat, AlreadyImpliedAssumptionGetsEmptyLevel) {
  // Unit a makes assumption {a} already true at the root; the solver must
  // still answer and still respect later assumptions.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(A)}));
  ASSERT_TRUE(S.addClause({Lit::pos(B), Lit::neg(A)}));
  EXPECT_EQ(S.solve({Lit::pos(A), Lit::pos(B)}), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_EQ(S.solve({Lit::pos(A), Lit::neg(B)}), SatResult::Unsat);
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Sat, LearnedClausesPersistAcrossAssumptionQueries) {
  // Selector-guarded pigeonhole: each query re-solves the same hard core
  // under a fresh assumption. Lemmas learned in query 1 must survive into
  // queries 2 and 3 (the incremental-session contract).
  SatSolver S;
  constexpr int P = 7, H = 6;
  std::vector<std::vector<Var>> V(P, std::vector<Var>(H));
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  Var Sel = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> Clause = {Lit::neg(Sel)};
    for (int J = 0; J < H; ++J)
      Clause.push_back(Lit::pos(V[I][J]));
    ASSERT_TRUE(S.addClause(Clause));
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        ASSERT_TRUE(S.addClause({Lit::neg(Sel), Lit::neg(V[I1][J]),
                                 Lit::neg(V[I2][J])}));

  ASSERT_EQ(S.solve({Lit::pos(Sel)}), SatResult::Unsat);
  uint64_t KeptAfterFirst = S.numLearnedClauses();
  EXPECT_GT(KeptAfterFirst, 0u);
  uint64_t FirstConflicts = S.numConflicts();

  // Two more rounds: with the learned clauses in place, refuting the same
  // selector never needs more conflicts than the first round, and the
  // database is never wiped between calls.
  for (int Round = 0; Round < 2; ++Round) {
    ASSERT_EQ(S.solve({Lit::pos(Sel)}), SatResult::Unsat);
    EXPECT_GT(S.numLearnedClauses(), 0u);
    EXPECT_LE(S.numConflicts(), FirstConflicts);
  }
  // Unguarded, the instance is satisfiable (selector off).
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.modelValue(Sel));
}

TEST(Sat, AssumptionQueryDeadlineDoesNotStarveNextQuery) {
  // Query k exhausting its budget must not consume query k+1's: each
  // solve(assumptions) call gets a fresh Deadline.
  SatSolver S;
  constexpr int P = 9, H = 8;
  std::vector<std::vector<Var>> V(P, std::vector<Var>(H));
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  Var Sel = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> Clause = {Lit::neg(Sel)};
    for (int J = 0; J < H; ++J)
      Clause.push_back(Lit::pos(V[I][J]));
    S.addClause(Clause);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause({Lit::neg(Sel), Lit::neg(V[I1][J]), Lit::neg(V[I2][J])});
  EXPECT_EQ(S.solve({Lit::pos(Sel)}, Deadline::after(1e-6)),
            SatResult::Unknown);
  // A fresh per-query budget answers the easy next query immediately.
  EXPECT_EQ(S.solve({Lit::neg(Sel)}, Deadline::after(60)), SatResult::Sat);
  EXPECT_FALSE(S.modelValue(Sel));
}

TEST(Sat, RandomAssumptionQueriesAgreeWithOneShot) {
  // The same instance under the same assumptions must answer identically
  // whether solved incrementally (one solver, many queries) or one-shot
  // (fresh solver per query with assumptions baked in as units).
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    Rng R(Seed);
    uint32_t NumVars = 8 + static_cast<uint32_t>(R.below(5));
    std::vector<std::vector<Lit>> Clauses;
    SatSolver Inc;
    for (uint32_t I = 0; I < NumVars; ++I)
      Inc.newVar();
    bool AddedOk = true;
    for (uint32_t I = 0; I < NumVars * 3; ++I) {
      std::vector<Lit> Clause;
      uint32_t Width = 2 + static_cast<uint32_t>(R.below(2));
      for (uint32_t K = 0; K < Width; ++K) {
        Var V = static_cast<Var>(R.below(NumVars));
        Clause.push_back(R.chance(1, 2) ? Lit::pos(V) : Lit::neg(V));
      }
      Clauses.push_back(Clause);
      AddedOk = Inc.addClause(Clause) && AddedOk;
    }
    if (!AddedOk)
      continue;
    for (int Query = 0; Query < 5; ++Query) {
      std::vector<Lit> Assumed;
      for (int K = 0; K < 3; ++K) {
        Var V = static_cast<Var>(R.below(NumVars));
        Assumed.push_back(R.chance(1, 2) ? Lit::pos(V) : Lit::neg(V));
      }
      SatResult Got = Inc.solve(Assumed);
      SatSolver OneShot;
      for (uint32_t I = 0; I < NumVars; ++I)
        OneShot.newVar();
      bool Ok = true;
      for (const auto &Clause : Clauses)
        Ok = OneShot.addClause(Clause) && Ok;
      for (Lit L : Assumed)
        Ok = Ok && OneShot.addClause({L});
      SatResult Want = Ok ? OneShot.solve() : SatResult::Unsat;
      EXPECT_EQ(Got, Want) << "seed " << Seed << " query " << Query;
    }
  }
}

// Property sweep: random 3-SAT instances cross-checked against brute force.
class SatRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  Rng R(GetParam());
  uint32_t NumVars = 6 + static_cast<uint32_t>(R.below(7)); // 6..12
  uint32_t NumClauses = NumVars * 3 + static_cast<uint32_t>(R.below(20));
  std::vector<std::vector<Lit>> Clauses;
  SatSolver S;
  for (uint32_t I = 0; I < NumVars; ++I)
    S.newVar();
  bool AddedOk = true;
  for (uint32_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> Clause;
    uint32_t Width = 1 + static_cast<uint32_t>(R.below(3));
    for (uint32_t K = 0; K < Width; ++K) {
      Var V = static_cast<Var>(R.below(NumVars));
      Clause.push_back(R.chance(1, 2) ? Lit::pos(V) : Lit::neg(V));
    }
    Clauses.push_back(Clause);
    AddedOk = S.addClause(Clause) && AddedOk;
  }
  bool Expected = bruteForceSat(NumVars, Clauses);
  SatResult Got = AddedOk ? S.solve() : SatResult::Unsat;
  EXPECT_EQ(Got == SatResult::Sat, Expected) << "seed " << GetParam();
  if (Got == SatResult::Sat) {
    for (const auto &Clause : Clauses) {
      bool Satisfied = false;
      for (Lit L : Clause)
        Satisfied |= S.modelValue(L.var()) != L.sign();
      EXPECT_TRUE(Satisfied) << "model violates a clause, seed "
                             << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SatRandomTest,
                         ::testing::Range<uint64_t>(0, 60));
