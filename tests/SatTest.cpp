//===- tests/SatTest.cpp - CDCL SAT solver tests ---------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

/// Brute-force satisfiability for cross-checking (up to ~20 vars).
bool bruteForceSat(uint32_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ULL << NumVars); ++Mask) {
    bool AllSat = true;
    for (const auto &Clause : Clauses) {
      bool ClauseSat = false;
      for (Lit L : Clause) {
        bool Value = (Mask >> L.var()) & 1;
        if (Value != L.sign()) {
          ClauseSat = true;
          break;
        }
      }
      if (!ClauseSat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

} // namespace

TEST(Sat, EmptyProblemIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Sat, SingleUnit) {
  SatSolver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(V)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(V));
}

TEST(Sat, ContradictoryUnitsUnsat) {
  SatSolver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(V)}));
  EXPECT_FALSE(S.addClause({Lit::neg(V)}));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, TautologyIgnored) {
  SatSolver S;
  Var V = S.newVar();
  ASSERT_TRUE(S.addClause({Lit::pos(V), Lit::neg(V)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Sat, SimpleImplicationChain) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  // A, A->B, B->C, so C must be true.
  S.addClause({Lit::pos(A)});
  S.addClause({Lit::neg(A), Lit::pos(B)});
  S.addClause({Lit::neg(B), Lit::pos(C)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(C));
}

TEST(Sat, XorChainSat) {
  // (a xor b) and (b xor c): satisfiable.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({Lit::pos(A), Lit::pos(B)});
  S.addClause({Lit::neg(A), Lit::neg(B)});
  S.addClause({Lit::pos(B), Lit::pos(C)});
  S.addClause({Lit::neg(B), Lit::neg(C)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_NE(S.modelValue(A), S.modelValue(B));
  EXPECT_NE(S.modelValue(B), S.modelValue(C));
}

TEST(Sat, PigeonHole3Into2Unsat) {
  // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
  SatSolver S;
  Var V[3][2];
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  for (int P = 0; P < 3; ++P)
    S.addClause({Lit::pos(V[P][0]), Lit::pos(V[P][1])});
  for (int H = 0; H < 2; ++H)
    for (int P1 = 0; P1 < 3; ++P1)
      for (int P2 = P1 + 1; P2 < 3; ++P2)
        S.addClause({Lit::neg(V[P1][H]), Lit::neg(V[P2][H])});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonHole5Into4Unsat) {
  SatSolver S;
  constexpr int P = 5, H = 4;
  Var V[P][H];
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> Clause;
    for (int J = 0; J < H; ++J)
      Clause.push_back(Lit::pos(V[I][J]));
    S.addClause(Clause);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause({Lit::neg(V[I1][J]), Lit::neg(V[I2][J])});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, ModelSatisfiesAllClauses) {
  Rng R(42);
  SatSolver S;
  constexpr uint32_t NumVars = 30;
  for (uint32_t I = 0; I < NumVars; ++I)
    S.newVar();
  std::vector<std::vector<Lit>> Clauses;
  for (int I = 0; I < 80; ++I) {
    std::vector<Lit> Clause;
    for (int K = 0; K < 3; ++K) {
      Var V = static_cast<Var>(R.below(NumVars));
      Clause.push_back(R.chance(1, 2) ? Lit::pos(V) : Lit::neg(V));
    }
    Clauses.push_back(Clause);
    S.addClause(Clause);
  }
  if (S.solve() != SatResult::Sat)
    GTEST_SKIP() << "random instance unsat; model check not applicable";
  for (const auto &Clause : Clauses) {
    bool Satisfied = false;
    for (Lit L : Clause)
      Satisfied |= S.modelValue(L.var()) != L.sign();
    EXPECT_TRUE(Satisfied);
  }
}

TEST(Sat, DeadlineReturnsUnknown) {
  // A hard pigeonhole instance with a ~zero budget must time out cleanly.
  SatSolver S;
  constexpr int P = 9, H = 8;
  std::vector<std::vector<Var>> V(P, std::vector<Var>(H));
  for (auto &Row : V)
    for (Var &X : Row)
      X = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> Clause;
    for (int J = 0; J < H; ++J)
      Clause.push_back(Lit::pos(V[I][J]));
    S.addClause(Clause);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause({Lit::neg(V[I1][J]), Lit::neg(V[I2][J])});
  EXPECT_EQ(S.solve(Deadline::after(1e-6)), SatResult::Unknown);
  // The solver remains usable afterwards with a real budget.
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, ResolveAfterSatKeepsWorking) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit::pos(A), Lit::pos(B)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // Adding a clause after a Sat answer requires returning to the root.
  S.backtrackToRoot();
  S.addClause({Lit::neg(A)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  S.backtrackToRoot();
  S.addClause({Lit::neg(B)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

// Property sweep: random 3-SAT instances cross-checked against brute force.
class SatRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  Rng R(GetParam());
  uint32_t NumVars = 6 + static_cast<uint32_t>(R.below(7)); // 6..12
  uint32_t NumClauses = NumVars * 3 + static_cast<uint32_t>(R.below(20));
  std::vector<std::vector<Lit>> Clauses;
  SatSolver S;
  for (uint32_t I = 0; I < NumVars; ++I)
    S.newVar();
  bool AddedOk = true;
  for (uint32_t I = 0; I < NumClauses; ++I) {
    std::vector<Lit> Clause;
    uint32_t Width = 1 + static_cast<uint32_t>(R.below(3));
    for (uint32_t K = 0; K < Width; ++K) {
      Var V = static_cast<Var>(R.below(NumVars));
      Clause.push_back(R.chance(1, 2) ? Lit::pos(V) : Lit::neg(V));
    }
    Clauses.push_back(Clause);
    AddedOk = S.addClause(Clause) && AddedOk;
  }
  bool Expected = bruteForceSat(NumVars, Clauses);
  SatResult Got = AddedOk ? S.solve() : SatResult::Unsat;
  EXPECT_EQ(Got == SatResult::Sat, Expected) << "seed " << GetParam();
  if (Got == SatResult::Sat) {
    for (const auto &Clause : Clauses) {
      bool Satisfied = false;
      for (Lit L : Clause)
        Satisfied |= S.modelValue(L.var()) != L.sign();
      EXPECT_TRUE(Satisfied) << "model violates a clause, seed "
                             << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SatRandomTest,
                         ::testing::Range<uint64_t>(0, 60));
