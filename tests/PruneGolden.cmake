# Soundness check for --static-prune: for every technique and schedule,
# `rvpredict detect` with the static pruner installed must print
# byte-identical output (reports, witnesses, summary counts; wall-clock
# timing normalized away) to a run without it — the pruner may only skip
# work, never change results. A separate --stats run guards against the
# vacuous pass by requiring pruned_static > 0 and at least one race.
# Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DWORKLOAD=<prog.rv> -P PruneGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED WORKLOAD)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DWORKLOAD=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

function(run_detect TECHNIQUE SCHEDULE PRUNE EXTRA OUT_VAR)
  execute_process(
    COMMAND "${RVPREDICT}" detect "${WORKLOAD}" --technique=${TECHNIQUE}
            --schedule=${SCHEDULE} --seed=1 --witness=true --jobs=2
            --static-prune=${PRUNE} ${EXTRA}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  # Exit 1 just means findings were reported; >=2 is a usage/internal error.
  if(RC GREATER 1)
    message(FATAL_ERROR "rvpredict detect --technique=${TECHNIQUE} "
            "--static-prune=${PRUNE} failed (${RC}):\n${STDOUT}\n${STDERR}")
  endif()
  string(REGEX REPLACE " in [0-9.]+s" "" STDOUT "${STDOUT}")
  set(${OUT_VAR} "${STDOUT}" PARENT_SCOPE)
endfunction()

foreach(TECHNIQUE rv said cp hb)
  foreach(SCHEDULE rr random)
    run_detect(${TECHNIQUE} ${SCHEDULE} false "" BASELINE)
    run_detect(${TECHNIQUE} ${SCHEDULE} true "" PRUNED)
    if(NOT BASELINE STREQUAL PRUNED)
      message(FATAL_ERROR "--static-prune changed output for "
              "technique=${TECHNIQUE} schedule=${SCHEDULE}:\n"
              "--- without ---\n${BASELINE}\n--- with ---\n${PRUNED}")
    endif()
  endforeach()
endforeach()

# Non-vacuity: the workload must report a race AND the pruner must fire.
run_detect(rv rr true "--stats" STATS)
if(NOT STATS MATCHES "1 race")
  message(FATAL_ERROR "prune workload lost its race:\n${STATS}")
endif()
string(REGEX MATCH "pruned_static=([0-9]+)" _ "${STATS}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "static pruner never fired (pruned_static=0):\n${STATS}")
endif()

message(STATUS "static-prune soundness check passed "
        "(4 techniques x 2 schedules, pruned_static=${CMAKE_MATCH_1})")

# The staticflow catalog row exercises the deeper stages: the MHB stage
# must prune its nested fork/join pairs and the value-range fold must
# drop its constant guard — all without changing any report byte.
set(SAVED_WORKLOAD "${WORKLOAD}")
set(WORKLOAD "bench:staticflow")
foreach(TECHNIQUE rv said hb)
  run_detect(${TECHNIQUE} rr false "" BASELINE)
  run_detect(${TECHNIQUE} rr true "" PRUNED)
  if(NOT BASELINE STREQUAL PRUNED)
    message(FATAL_ERROR "--static-prune changed staticflow output for "
            "technique=${TECHNIQUE}:\n"
            "--- without ---\n${BASELINE}\n--- with ---\n${PRUNED}")
  endif()
endforeach()

execute_process(
  COMMAND "${RVPREDICT}" detect bench:staticflow --static-prune
          --stats-json=-
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STATS_JSON
  ERROR_VARIABLE STDERR)
if(RC GREATER 1)
  message(FATAL_ERROR "staticflow stats run failed (${RC}):\n${STDERR}")
endif()
string(REGEX MATCH "\"analysis.pruned_static_mhb\":([0-9]+)" _ "${STATS_JSON}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "MHB prune stage never fired on staticflow:\n${STATS_JSON}")
endif()
set(MHB_PRUNED ${CMAKE_MATCH_1})
string(REGEX MATCH "\"analysis.ranges_folded\":([0-9]+)" _ "${STATS_JSON}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "value-range fold never fired on staticflow:\n${STATS_JSON}")
endif()
set(WORKLOAD "${SAVED_WORKLOAD}")

message(STATUS "staticflow stage check passed (pruned_static_mhb="
        "${MHB_PRUNED}, ranges_folded=${CMAKE_MATCH_1})")
