# Robustness golden checks (docs/ROBUSTNESS.md): corrupt-trace diagnostics
# carry file:line:col and the offending token, --skip-bad-events counts and
# skips exactly the bad lines, CLI misuse exits 2 with a diagnostic, and
# the documented exit-code taxonomy (0 clean / 1 findings / 3 unknowns)
# holds end to end. Invoked by CTest as
#   cmake -DRVPREDICT=<tool> -DGOLDEN_DIR=<dir> -P RobustGolden.cmake

if(NOT DEFINED RVPREDICT OR NOT DEFINED GOLDEN_DIR)
  message(FATAL_ERROR "usage: cmake -DRVPREDICT=... -DGOLDEN_DIR=... -P ${CMAKE_CURRENT_LIST_FILE}")
endif()

# Runs rvpredict with ARGS (a ;-list); leaves RC / STDOUT / STDERR.
function(run_tool)
  execute_process(
    COMMAND "${RVPREDICT}" ${ARGN}
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  set(RC "${RC}" PARENT_SCOPE)
  set(STDOUT "${STDOUT}" PARENT_SCOPE)
  set(STDERR "${STDERR}" PARENT_SCOPE)
endfunction()

function(expect_rc WANT LABEL)
  if(NOT RC EQUAL ${WANT})
    message(FATAL_ERROR "${LABEL}: expected exit ${WANT}, got ${RC}\n"
            "stdout:\n${STDOUT}\nstderr:\n${STDERR}")
  endif()
endfunction()

function(expect_stderr NEEDLE LABEL)
  string(FIND "${STDERR}" "${NEEDLE}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "${LABEL}: stderr missing '${NEEDLE}':\n${STDERR}")
  endif()
endfunction()

# --- Parse diagnostics: file:line:col plus the offending token ----------

run_tool(detect "${GOLDEN_DIR}/corrupt_kind.txt")
expect_rc(2 "strict parse of corrupt_kind.txt")
expect_stderr("corrupt_kind.txt:3:1: unknown event kind 'frobnicate'"
              "unknown-kind diagnostic")
expect_stderr("(offending token 'frobnicate')" "unknown-kind token")

run_tool(detect "${GOLDEN_DIR}/corrupt_value.txt")
expect_rc(2 "strict parse of corrupt_value.txt")
expect_stderr("corrupt_value.txt:1:12: malformed value" "bad-value diagnostic")
expect_stderr("(offending token 'banana')" "bad-value token")

# --- --skip-bad-events: count, skip, and match the cleaned trace --------

run_tool(detect "${GOLDEN_DIR}/corrupt_kind.txt" --skip-bad-events=true)
expect_rc(1 "detect with --skip-bad-events (the surviving pair races)")
expect_stderr("skipped 2 malformed or inconsistent event line(s)"
              "skip counter note")
string(REGEX REPLACE " in [0-9.]+s" "" SKIPPED_OUT "${STDOUT}")

run_tool(detect "${GOLDEN_DIR}/corrupt_kind_cleaned.txt")
expect_rc(1 "detect on the pre-cleaned trace")
string(REGEX REPLACE " in [0-9.]+s" "" CLEANED_OUT "${STDOUT}")
if(NOT SKIPPED_OUT STREQUAL CLEANED_OUT)
  message(FATAL_ERROR "--skip-bad-events diverged from the cleaned trace:\n"
          "--- skipped ---\n${SKIPPED_OUT}\n--- cleaned ---\n${CLEANED_OUT}")
endif()

# --- --skip-bad-events covers semantic validation too -------------------
# Every line of inconsistent.txt parses; two of them are semantically
# impossible (a release by a non-holder, a read of a never-written value).
# The sanitizer must drop exactly those two and match the cleaned trace.

run_tool(detect "${GOLDEN_DIR}/inconsistent.txt")
expect_rc(2 "strict parse of inconsistent.txt")
expect_stderr("inconsistent input trace" "semantic-reject diagnostic")

run_tool(detect "${GOLDEN_DIR}/inconsistent.txt" --skip-bad-events=true)
expect_rc(1 "detect with --skip-bad-events (semantic rejects)")
expect_stderr("skipped 2 malformed or inconsistent event line(s)"
              "semantic skip counter note")
string(REGEX REPLACE " in [0-9.]+s" "" SKIPPED_OUT "${STDOUT}")

run_tool(detect "${GOLDEN_DIR}/inconsistent_cleaned.txt")
expect_rc(1 "detect on the pre-cleaned semantic trace")
string(REGEX REPLACE " in [0-9.]+s" "" CLEANED_OUT "${STDOUT}")
if(NOT SKIPPED_OUT STREQUAL CLEANED_OUT)
  message(FATAL_ERROR "--skip-bad-events diverged on semantic rejects:\n"
          "--- skipped ---\n${SKIPPED_OUT}\n--- cleaned ---\n${CLEANED_OUT}")
endif()

# --- Checkpoint fingerprint mismatch ------------------------------------
# Resuming a checkpoint directory with different flags must refuse with a
# clear diagnostic (exit 2), never silently resume the wrong analysis.

set(CKPT_DIR "robust_ckpt_dir")
file(REMOVE_RECURSE "${CKPT_DIR}")
run_tool(detect "${GOLDEN_DIR}/corrupt_kind_cleaned.txt"
         "--checkpoint=${CKPT_DIR}")
expect_rc(1 "checkpointed run with findings")

run_tool(detect "${GOLDEN_DIR}/corrupt_kind_cleaned.txt"
         "--checkpoint=${CKPT_DIR}" --tier=smt)
expect_rc(2 "resume with a different --tier")
expect_stderr("holds snapshots from a different analysis"
              "fingerprint-mismatch diagnostic")
expect_stderr("rerun with the original flags" "fingerprint-mismatch advice")

# Same flags still resume fine after the refusal.
run_tool(detect "${GOLDEN_DIR}/corrupt_kind_cleaned.txt"
         "--checkpoint=${CKPT_DIR}")
expect_rc(1 "resume with the original flags")
file(REMOVE_RECURSE "${CKPT_DIR}")

# --- CLI validation: misuse is exit 2 with a diagnostic -----------------

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --jobs=0)
expect_rc(2 "--jobs=0")
expect_stderr("explicit --jobs=0 is invalid" "--jobs=0 diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --window=-5)
expect_rc(2 "--window=-5")
expect_stderr("--window must be a positive event count" "--window diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --retry-budgets=banana)
expect_rc(2 "--retry-budgets=banana")
expect_stderr("malformed retry budget 'banana'" "--retry-budgets diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --inject-faults=no.such.site)
expect_rc(2 "--inject-faults=no.such.site")
expect_stderr("unknown fault site 'no.such.site'" "--inject-faults diagnostic")

run_tool(detect "${GOLDEN_DIR}/does_not_exist.txt")
expect_rc(2 "missing input file")
expect_stderr("cannot open" "missing-file diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --tier=turbo)
expect_rc(2 "--tier=turbo")
expect_stderr("--tier must be vc, smt, or hybrid" "--tier diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --check-tiers)
# --check-tiers alone is fine: the default tier is hybrid.
expect_rc(0 "--check-tiers with the default (hybrid) tier")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --tier=smt --check-tiers)
expect_rc(2 "--check-tiers with --tier=smt")
expect_stderr("requires --tier=hybrid" "--check-tiers tier diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --check-tiers --technique=hb)
expect_rc(2 "--check-tiers with --technique=hb")
expect_stderr("solver-backed race pipeline" "--check-tiers technique diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --tier=vc --property=deadlock)
expect_rc(2 "--tier=vc with --property=deadlock")
expect_stderr("--tier=vc detects races only" "--tier=vc property diagnostic")

run_tool(detect "${GOLDEN_DIR}/quiet.txt" --tier=vc --technique=cp)
expect_rc(2 "--tier=vc with --technique=cp")
expect_stderr("has its own dedicated detector" "--tier=vc technique diagnostic")

# --- Exit-code taxonomy -------------------------------------------------

run_tool(detect "${GOLDEN_DIR}/quiet.txt")
expect_rc(0 "clean run with no findings")

run_tool(detect "${GOLDEN_DIR}/corrupt_kind_cleaned.txt")
expect_rc(1 "run with findings")

# Solver outage on a racy trace: the pair can no longer be proven either
# way, so it must land in the unknown section (exit 3), never in the races.
run_tool(detect "${GOLDEN_DIR}/corrupt_kind_cleaned.txt"
         "--inject-faults=solver.timeout,session.corrupt")
expect_rc(3 "degraded run with undecided COPs")
string(FIND "${STDOUT}" "unknown:" POS)
if(POS EQUAL -1)
  message(FATAL_ERROR "degraded run printed no unknown section:\n${STDOUT}")
endif()
string(FIND "${STDOUT}" "0 race(s)" POS)
if(POS EQUAL -1)
  message(FATAL_ERROR "degraded run still claimed races:\n${STDOUT}")
endif()

message(STATUS "robustness golden checks passed")
