//===- tests/AnalysisTest.cpp - CFG / dataflow / escape / prune units --------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Lint.h"
#include "analysis/RaceCheck.h"
#include "analysis/StaticLockset.h"
#include "analysis/StaticMhb.h"
#include "analysis/StaticPrune.h"
#include "analysis/ThreadEscape.h"
#include "analysis/ValueRange.h"
#include "lang/Parser.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace rvp;

namespace {

Program parse(const char *Src) {
  std::string Error;
  std::optional<Program> P = parseProgram(Src, Error);
  EXPECT_TRUE(P.has_value()) << Error;
  return std::move(*P);
}

const ThreadDecl &threadNamed(const Program &P, const std::string &Name) {
  for (const ThreadDecl &T : P.Threads)
    if (T.Name == Name)
      return T;
  ADD_FAILURE() << "no thread " << Name;
  return P.Threads[0];
}

uint32_t countKind(const Cfg &G, CfgNode::Kind K) {
  uint32_t N = 0;
  for (const CfgNode &Node : G.nodes())
    if (Node.K == K)
      ++N;
  return N;
}

bool hasDiag(const LintResult &R, DiagKind K) {
  return std::any_of(R.Diags.begin(), R.Diags.end(),
                     [&](const Diagnostic &D) { return D.K == K; });
}

} // namespace

// ------------------------------------------------------------------- CFG

TEST(Cfg, StraightLineShape) {
  Program P = parse("shared x;\n"
                    "thread t { x = 1; x = 2; }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  // Entry, Exit, two statement nodes; a single path through all of them.
  EXPECT_EQ(G.size(), 4u);
  EXPECT_EQ(countKind(G, CfgNode::Kind::Stmt), 2u);
  EXPECT_EQ(G.node(G.entry()).Succs.size(), 1u);
  EXPECT_EQ(G.node(G.exit()).Preds.size(), 1u);
  for (uint32_t Id = 0; Id < G.size(); ++Id)
    EXPECT_TRUE(G.reachable(Id)) << "node " << Id;
  EXPECT_TRUE(G.unreachableNodes().empty());
}

TEST(Cfg, BranchHasTwoSuccessors) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  if (x == 0) { x = 1; } else { x = 2; }\n"
                    "  x = 3;\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  EXPECT_EQ(countKind(G, CfgNode::Kind::Branch), 1u);
  for (const CfgNode &N : G.nodes())
    if (N.K == CfgNode::Kind::Branch)
      EXPECT_EQ(N.Succs.size(), 2u);
  // Both arms converge on the final statement; everything is reachable.
  EXPECT_TRUE(G.unreachableNodes().empty());
}

TEST(Cfg, WhileLoopHasBackEdge) {
  Program P = parse("shared x;\n"
                    "thread t { while (x < 3) { x = x + 1; } }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  uint32_t BranchId = 0;
  for (uint32_t Id = 0; Id < G.size(); ++Id)
    if (G.node(Id).K == CfgNode::Kind::Branch)
      BranchId = Id;
  ASSERT_NE(BranchId, 0u);
  // The condition has two predecessors: entry and the loop body.
  EXPECT_EQ(G.node(BranchId).Preds.size(), 2u);
  EXPECT_EQ(G.node(BranchId).Succs.size(), 2u);
}

TEST(Cfg, SyncLowersToAcquireRelease) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread t { sync m { x = 1; } }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  EXPECT_EQ(countKind(G, CfgNode::Kind::Acquire), 1u);
  EXPECT_EQ(countKind(G, CfgNode::Kind::Release), 1u);
  EXPECT_EQ(countKind(G, CfgNode::Kind::Stmt), 1u);
}

TEST(Cfg, ConstantFalseBranchIsUnreachable) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  if (0) { x = 1; }\n"
                    "  x = 2;\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  std::vector<uint32_t> Dead = G.unreachableNodes();
  ASSERT_EQ(Dead.size(), 1u);
  EXPECT_EQ(G.node(Dead[0]).Line, 3u) << "the x = 1 inside if (0)";
}

TEST(Cfg, CodeAfterInfiniteLoopIsUnreachable) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  while (1) { x = 1; }\n"
                    "  x = 2;\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  std::vector<uint32_t> Dead = G.unreachableNodes();
  ASSERT_EQ(Dead.size(), 1u);
  EXPECT_EQ(G.node(Dead[0]).Line, 4u);
  EXPECT_FALSE(G.reachable(G.exit())) << "nothing leaves while (1)";
}

TEST(Cfg, NonConstantBranchKeepsBothEdges) {
  // `if (x)` cannot fold: both the body and the fallthrough stay live.
  Program P = parse("shared x;\n"
                    "thread t { if (x) { x = 1; } x = 2; }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  EXPECT_TRUE(G.unreachableNodes().empty());
}

// --------------------------------------------------------- static lockset

TEST(StaticLockset, MustHeldInsideSync) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread t {\n"
                    "  sync m { x = 1; }\n"
                    "  x = 2;\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  StaticLocksetAnalysis LS(P, G);
  int M = LS.lockIndex("m");
  ASSERT_GE(M, 0);
  for (uint32_t Id = 0; Id < G.size(); ++Id) {
    const CfgNode &N = G.node(Id);
    if (N.K != CfgNode::Kind::Stmt || !N.S ||
        N.S->K != Stmt::Kind::Assign)
      continue;
    uint32_t Count = LS.mustAt(Id)[static_cast<uint32_t>(M)];
    // Line 4 sits inside the sync; line 5 follows the release.
    EXPECT_EQ(Count, N.Line == 4 ? 1u : 0u) << "line " << N.Line;
  }
  EXPECT_EQ(LS.mustAt(G.exit())[static_cast<uint32_t>(M)], 0u);
}

TEST(StaticLockset, BranchDependentLockIsNotMust) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread t {\n"
                    "  if (x) { lock m; }\n"
                    "  x = 1;\n"
                    "  if (x) { unlock m; }\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  StaticLocksetAnalysis LS(P, G);
  int M = LS.lockIndex("m");
  ASSERT_GE(M, 0);
  for (uint32_t Id = 0; Id < G.size(); ++Id) {
    const CfgNode &N = G.node(Id);
    if (N.K == CfgNode::Kind::Stmt && N.S &&
        N.S->K == Stmt::Kind::Assign) {
      // Held on one path only: may but not must.
      EXPECT_EQ(LS.mustAt(Id)[static_cast<uint32_t>(M)], 0u);
      EXPECT_GT(LS.mayAt(Id)[static_cast<uint32_t>(M)], 0u);
    }
  }
}

TEST(StaticLockset, ReentrantCountsStack) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread t {\n"
                    "  lock m;\n"
                    "  lock m;\n"
                    "  x = 1;\n"
                    "  unlock m;\n"
                    "  x = 2;\n"
                    "  unlock m;\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  StaticLocksetAnalysis LS(P, G);
  uint32_t M = static_cast<uint32_t>(LS.lockIndex("m"));
  for (uint32_t Id = 0; Id < G.size(); ++Id) {
    const CfgNode &N = G.node(Id);
    if (N.K != CfgNode::Kind::Stmt || !N.S ||
        N.S->K != Stmt::Kind::Assign)
      continue;
    EXPECT_EQ(LS.mustAt(Id)[M], N.Line == 6 ? 2u : 1u) << "line " << N.Line;
  }
  EXPECT_EQ(LS.mustAt(G.exit())[M], 0u);
  EXPECT_EQ(LS.mayAt(G.exit())[M], 0u);
}

TEST(StaticLockset, LeakedLockVisibleAtExit) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread t { if (x) { lock m; } }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  StaticLocksetAnalysis LS(P, G);
  uint32_t M = static_cast<uint32_t>(LS.lockIndex("m"));
  EXPECT_EQ(LS.mustAt(G.exit())[M], 0u) << "not held on the else path";
  EXPECT_GT(LS.mayAt(G.exit())[M], 0u) << "leaked on the then path";
}

TEST(StaticLockset, MayCountSaturatesInLoop) {
  // Re-acquiring in a loop must terminate via the MayCap saturation, not
  // climb forever.
  Program P = parse("shared x;\nlock m;\n"
                    "thread t { while (x) { lock m; } x = 1; }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  StaticLocksetAnalysis LS(P, G);
  uint32_t M = static_cast<uint32_t>(LS.lockIndex("m"));
  for (uint32_t Id = 0; Id < G.size(); ++Id)
    if (LS.reached(Id))
      EXPECT_LE(LS.mayAt(Id)[M], StaticLocksetAnalysis::MayCap);
}

TEST(StaticLockset, UndeclaredLockIndexIsNegative) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread t { x = 1; }\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  StaticLocksetAnalysis LS(P, G);
  EXPECT_EQ(LS.lockIndex("nope"), -1);
  EXPECT_EQ(LS.numLocks(), 1u);
}

// ---------------------------------------------------------- thread escape

namespace {

const char *SequentialSpawns = "shared x;\n"
                               "thread a { x = 1; }\n"
                               "thread b { x = 2; }\n"
                               "main {\n"
                               "  spawn a;\n"
                               "  join a;\n"
                               "  spawn b;\n"
                               "  join b;\n"
                               "  x = 3;\n"
                               "}\n";

} // namespace

TEST(ThreadEscape, SequentialThreadsNeverParallel) {
  Program P = parse(SequentialSpawns);
  ThreadEscapeAnalysis E(P);
  // Indices: 0 = main, 1 = a, 2 = b (declaration order).
  EXPECT_FALSE(E.mayHappenInParallel(1, 2));
  EXPECT_FALSE(E.mayHappenInParallel(2, 1));
  EXPECT_FALSE(E.mayHappenInParallel(1, 1)) << "a thread with itself";
  EXPECT_FALSE(E.isThreadShared("x"));
  EXPECT_EQ(E.threadLocalDeclCount(), 1u);
}

TEST(ThreadEscape, OverlappingSpawnsMayRace) {
  Program P = parse("shared x;\n"
                    "thread a { x = 1; }\n"
                    "thread b { x = 2; }\n"
                    "main { spawn a; spawn b; join a; join b; }\n");
  ThreadEscapeAnalysis E(P);
  EXPECT_TRUE(E.mayHappenInParallel(1, 2));
  EXPECT_TRUE(E.isThreadShared("x"));
  EXPECT_EQ(E.threadLocalDeclCount(), 0u);
}

TEST(ThreadEscape, MainAccessOutsideLiveInterval) {
  Program P = parse(SequentialSpawns);
  ThreadEscapeAnalysis E(P);
  // Line 9 is main's x = 3, after both joins: neither thread overlaps it.
  EXPECT_FALSE(E.lineMayOverlap(9, 1));
  EXPECT_FALSE(E.lineMayOverlap(9, 2));
  // An unknown line answers true (conservative).
  EXPECT_TRUE(E.lineMayOverlap(999, 1));
}

TEST(ThreadEscape, ConditionalSpawnWidensToAlwaysLive) {
  // The spawn sits under a branch: the analysis must give up on the
  // interval and treat the thread as always live.
  Program P = parse("shared x;\n"
                    "thread a { x = 1; }\n"
                    "thread b { x = 2; }\n"
                    "main {\n"
                    "  if (x) { spawn a; }\n"
                    "  join a;\n"
                    "  spawn b;\n"
                    "  join b;\n"
                    "}\n");
  ThreadEscapeAnalysis E(P);
  EXPECT_TRUE(E.mayHappenInParallel(1, 2));
  EXPECT_TRUE(E.isThreadShared("x"));
}

TEST(ThreadEscape, UnspawnedThreadNeverRuns) {
  Program P = parse("shared x;\n"
                    "thread a { x = 1; }\n"
                    "thread b { x = 2; }\n"
                    "main { spawn b; join b; x = 3; }\n");
  ThreadEscapeAnalysis E(P);
  EXPECT_FALSE(E.mayHappenInParallel(1, 2)) << "a is never spawned";
  EXPECT_FALSE(E.mayHappenInParallel(0, 1));
  EXPECT_FALSE(E.isThreadShared("x")) << "only b and post-join main access";
}

TEST(ThreadEscape, ArrayAccessesUseBaseName) {
  Program P = parse("shared v[4];\n"
                    "thread a { v[0] = 1; }\n"
                    "thread b { v[1] = 2; }\n"
                    "main { spawn a; spawn b; join a; join b; }\n");
  ThreadEscapeAnalysis E(P);
  // Static analysis cannot separate elements: base name is shared.
  EXPECT_TRUE(E.isThreadShared("v"));
  EXPECT_EQ(E.accessors("v").size(), 2u);
  EXPECT_TRUE(E.isWritten("v"));
  EXPECT_FALSE(E.isRead("v"));
}

// ------------------------------------------------------------------ lint

TEST(Lint, EachKindFires) {
  struct Case {
    DiagKind K;
    const char *Src;
  };
  const Case Cases[] = {
      {DiagKind::NeverShared, SequentialSpawns},
      {DiagKind::UnlockedAccess,
       "shared x;\nthread a { x = 1; }\nthread b { x = 2; }\n"
       "main { spawn a; spawn b; join a; join b; }\n"},
      {DiagKind::UnreleasedLock,
       "shared x;\nlock m;\nthread t { lock m; x = 1; }\n"
       "main { spawn t; join t; }\n"},
      {DiagKind::ReentrantAcquire,
       "shared x;\nlock m;\nthread t { lock m; lock m; x = 1;\n"
       "unlock m; unlock m; }\nmain { spawn t; join t; }\n"},
      {DiagKind::UnreachableCode,
       "shared x;\nthread t { if (0) { x = 1; } x = 2; }\n"
       "main { spawn t; join t; }\n"},
      {DiagKind::ReadNeverWritten,
       "shared x;\nshared y;\nthread t { x = y; }\n"
       "main { spawn t; join t; }\n"},
      {DiagKind::ReleaseUnheld,
       "shared x;\nlock m;\nthread t { unlock m; x = 1; }\n"
       "main { spawn t; join t; }\n"},
  };
  for (const Case &C : Cases) {
    Program P = parse(C.Src);
    LintResult R = runLint(P);
    EXPECT_TRUE(hasDiag(R, C.K)) << diagKindName(C.K);
  }
}

TEST(Lint, CleanProgramHasNoDiags) {
  Program P = parse("shared x;\nlock m;\n"
                    "thread a { sync m { x = 1; } }\n"
                    "thread b { sync m { x = x + 1; } }\n"
                    "main { spawn a; spawn b; join a; join b; }\n");
  LintResult R = runLint(P);
  EXPECT_TRUE(R.Diags.empty()) << R.Diags.size() << " diagnostics";
}

TEST(Lint, DiagnosticsAreSorted) {
  Program P = parse("shared x;\nshared y;\n"
                    "thread a { x = 1; y = 2; }\n"
                    "thread b { x = 3; y = 4; }\n"
                    "main { spawn a; spawn b; join a; join b; }\n");
  LintResult R = runLint(P);
  ASSERT_GE(R.Diags.size(), 2u);
  for (size_t I = 1; I < R.Diags.size(); ++I) {
    const Diagnostic &A = R.Diags[I - 1];
    const Diagnostic &B = R.Diags[I];
    EXPECT_TRUE(A.Line < B.Line || (A.Line == B.Line && A.Col <= B.Col));
  }
}

TEST(Lint, VolatileAccessNeedsNoLock) {
  Program P = parse("shared volatile x;\n"
                    "thread a { x = 1; }\n"
                    "thread b { x = 2; }\n"
                    "main { spawn a; spawn b; join a; join b; }\n");
  LintResult R = runLint(P);
  EXPECT_FALSE(hasDiag(R, DiagKind::UnlockedAccess));
}

// ----------------------------------------------------------- prune oracle

namespace {

/// Builds a trace whose thread ids line up with the program's declaration
/// order (main interned first) and whose locations use the compiler's
/// "L<line>" scheme, as StaticPruneOracle::bind expects.
struct OracleFixture {
  explicit OracleFixture(const char *Src) : P(parse(Src)), Oracle(P) {
    B.trace().internThread("main");
    for (size_t I = 1; I < P.Threads.size(); ++I)
      B.trace().internThread(P.Threads[I].Name);
  }

  /// Builds, binds, and returns the trace by reference — the oracle keys
  /// on the trace's address, so it must not be moved afterwards.
  Trace &bindTrace() {
    T = B.build();
    Oracle.bind(T);
    return T;
  }

  Program P;
  StaticPruneOracle Oracle;
  TraceBuilder B;
  Trace T;
};

} // namespace

TEST(StaticPrune, CommonMustLockIsPrunable) {
  OracleFixture F("shared x;\nlock m;\n"
                  "thread a { sync m { x = 1; } }\n"
                  "thread b { sync m { x = 2; } }\n"
                  "main { spawn a; spawn b; join a; join b; }\n");
  F.B.write("a", "x", 1, "L3"); // 0
  F.B.write("b", "x", 2, "L4"); // 1
  Trace &T = F.bindTrace();
  EXPECT_TRUE(F.Oracle.prunable(T, 0, 1));
  EXPECT_TRUE(F.Oracle.prunable(T, 1, 0)) << "symmetric";
}

TEST(StaticPrune, UnprotectedPairIsNotPrunable) {
  OracleFixture F("shared x;\nlock m;\n"
                  "thread a { sync m { x = 1; } }\n"
                  "thread b { x = 2; }\n"
                  "main { spawn a; spawn b; join a; join b; }\n");
  F.B.write("a", "x", 1, "L3");
  F.B.write("b", "x", 2, "L4");
  Trace &T = F.bindTrace();
  EXPECT_FALSE(F.Oracle.prunable(T, 0, 1));
}

TEST(StaticPrune, DisjointIntervalsArePrunable) {
  OracleFixture F(SequentialSpawns);
  F.B.write("a", "x", 1, "L2");
  F.B.write("b", "x", 2, "L3");
  F.B.write("main", "x", 3, "L9");
  Trace &T = F.bindTrace();
  EXPECT_TRUE(F.Oracle.prunable(T, 0, 1)) << "a joined before b spawns";
  EXPECT_TRUE(F.Oracle.prunable(T, 0, 2)) << "main writes after join a";
  EXPECT_TRUE(F.Oracle.prunable(T, 1, 2));
}

TEST(StaticPrune, UnknownInformationAnswersFalse) {
  OracleFixture F("shared x;\nlock m;\n"
                  "thread a { sync m { x = 1; } }\n"
                  "thread b { sync m { x = 2; } }\n"
                  "main { spawn a; spawn b; join a; join b; }\n");
  F.B.write("a", "x", 1, "somewhere"); // unparsable location
  F.B.write("b", "x", 2, "L4");
  F.B.write("a", "x", 3, "L3");
  Trace &T = F.bindTrace();
  EXPECT_FALSE(F.Oracle.prunable(T, 0, 1)) << "unknown loc: no lock info";
  EXPECT_FALSE(F.Oracle.prunable(T, 0, 2)) << "same thread";
  // An unbound (different) trace must never prune.
  TraceBuilder Other;
  Other.write("t1", "x", 1, "L3").write("t2", "x", 2, "L4");
  Trace T2 = Other.build();
  EXPECT_FALSE(F.Oracle.prunable(T2, 0, 1));
}

TEST(StaticPrune, LineOutsideLockIsNotPrunable) {
  // Same thread has both locked and unlocked accesses; only the locked
  // line may prune.
  OracleFixture F("shared x;\nlock m;\n"
                  "thread a {\n"
                  "  sync m { x = 1; }\n"
                  "  x = 2;\n"
                  "}\n"
                  "thread b { sync m { x = 3; } }\n"
                  "main { spawn a; spawn b; join a; join b; }\n");
  F.B.write("a", "x", 1, "L4"); // 0: locked
  F.B.write("a", "x", 2, "L5"); // 1: unlocked
  F.B.write("b", "x", 3, "L7"); // 2: locked
  Trace &T = F.bindTrace();
  EXPECT_TRUE(F.Oracle.prunable(T, 0, 2));
  EXPECT_FALSE(F.Oracle.prunable(T, 1, 2));
}

TEST(StaticPrune, ThreadLocalVarsCounted) {
  OracleFixture F(SequentialSpawns);
  EXPECT_EQ(F.Oracle.threadLocalVars(), 1u);
}

// -------------------------------------------------------------- Dataflow

namespace {

uint32_t threadIndex(const Program &P, const std::string &Name) {
  for (uint32_t I = 0; I < P.Threads.size(); ++I)
    if (P.Threads[I].Name == Name)
      return I;
  ADD_FAILURE() << "no thread " << Name;
  return 0;
}

/// Saturating step counter: transfer adds one per statement node, meet
/// takes the max, and everything clamps at Cap — a finite-height domain
/// whose fixpoint on a cyclic CFG must hit the clamp, not diverge.
struct SaturatingCount {
  static constexpr uint32_t Cap = 5;
  using Domain = uint32_t;
  Domain boundary() const { return 0; }
  bool meet(Domain &Out, const Domain &In) const {
    Domain Merged = std::max(Out, In);
    bool Changed = Merged != Out;
    Out = Merged;
    return Changed;
  }
  void transfer(const CfgNode &N, Domain &D) const {
    if (N.K == CfgNode::Kind::Stmt && D < Cap)
      ++D;
  }
};

} // namespace

TEST(Dataflow, CyclicCfgTerminatesAtSaturation) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  local i = 0;\n"
                    "  while (i < 100) { x = i; i = i + 1; }\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  DataflowResult<SaturatingCount> R = solveDataflow(G, SaturatingCount{});
  // The loop pumps the counter around the back-edge until the clamp: a
  // non-saturating domain would never leave the worklist.
  EXPECT_TRUE(R.Reached[G.exit()]);
  EXPECT_EQ(R.In[G.exit()], SaturatingCount::Cap);
}

TEST(Dataflow, UnreachedBranchKeepsDefaultState) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  if (0 == 1) { x = 1; x = 2; }\n"
                    "  x = 3;\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  DataflowResult<SaturatingCount> R = solveDataflow(G, SaturatingCount{});
  // The constant-false arm is never reached: its nodes keep the
  // default-constructed domain and are flagged, and the dead state does
  // not leak into the join after the branch.
  bool SawDead = false;
  for (uint32_t Id = 0; Id < G.size(); ++Id)
    if (!G.reachable(Id)) {
      SawDead = true;
      EXPECT_FALSE(R.Reached[Id]);
      EXPECT_EQ(R.In[Id], 0u);
    }
  EXPECT_TRUE(SawDead);
  EXPECT_TRUE(R.Reached[G.exit()]);
}

TEST(Dataflow, BackEdgeMeetsWithLoopEntry) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  local i = 0;\n"
                    "  while (i < 2) { i = i + 1; }\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  Cfg G(threadNamed(P, "t"));
  DataflowResult<SaturatingCount> R = solveDataflow(G, SaturatingCount{});
  // The loop-head branch meets the entry path (1 statement: the decl)
  // with the richer back-edge path; max-meet must keep the back-edge
  // value, so the exit sees the saturated count, not the entry count.
  for (uint32_t Id = 0; Id < G.size(); ++Id)
    if (G.node(Id).K == CfgNode::Kind::Branch)
      EXPECT_GT(R.In[Id], 1u);
}

// ------------------------------------------------------------ ValueRange

TEST(ValueRange, IntervalArithmetic) {
  Interval A = Interval::range(1, 2), B = Interval::range(3, 4);
  EXPECT_EQ(evalBinary(BinOp::Add, A, B), Interval::range(4, 6));
  EXPECT_EQ(evalBinary(BinOp::Sub, A, B), Interval::range(-3, -1));
  EXPECT_EQ(evalBinary(BinOp::Mul, A, B), Interval::range(3, 8));
  // Comparisons on disjoint intervals decide exactly.
  EXPECT_TRUE(evalBinary(BinOp::Lt, A, B).isConstant());
  EXPECT_TRUE(evalBinary(BinOp::Eq, A, B).isZero());
  // Overflow saturates to infinity instead of wrapping.
  Interval Big = Interval::constant(INT64_MAX);
  EXPECT_EQ(evalBinary(BinOp::Add, Big, Interval::constant(1)).Hi,
            Interval::PosInf);
  // Division by a zero-containing divisor stays top (runtime error path).
  EXPECT_TRUE(
      evalBinary(BinOp::Div, A, Interval::range(0, 4)).isTop());
  EXPECT_EQ(evalUnary(UnOp::Neg, A), Interval::range(-2, -1));
}

TEST(ValueRange, ReadOnlySharedIsSingleValued) {
  Program P = parse("shared gate = 7; shared x;\n"
                    "thread t { if (gate == 7) { x = 1; } }\n"
                    "main { spawn t; x = 2; join t; }\n");
  ValueRangeAnalysis VR(P);
  EXPECT_TRUE(VR.sharedSingleValued("gate"));
  EXPECT_EQ(VR.sharedRange("gate"), Interval::constant(7));
  EXPECT_FALSE(VR.sharedSingleValued("x"));
}

TEST(ValueRange, BranchOnReadOnlySharedIsConstant) {
  Program P = parse("shared gate = 1; shared x;\n"
                    "thread t {\n"
                    "  if (gate == 1) { x = 1; }\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  ValueRangeAnalysis VR(P);
  // Line 3 is the `if` — its branch event is provably taken.
  EXPECT_TRUE(VR.branchConstantAt(threadIndex(P, "t"), 3));
  EXPECT_GE(VR.branchSites(), 1u);
  EXPECT_GE(VR.constantBranchSites(), 1u);
}

TEST(ValueRange, BranchOnWrittenSharedIsNotConstant) {
  Program P = parse("shared flag; shared x;\n"
                    "thread t {\n"
                    "  if (flag == 1) { x = 1; }\n"
                    "}\n"
                    "thread u { flag = 1; }\n"
                    "main { spawn t; spawn u; join t; join u; }\n");
  ValueRangeAnalysis VR(P);
  // flag may be 0 or 1 depending on interleaving: never foldable.
  EXPECT_FALSE(VR.branchConstantAt(threadIndex(P, "t"), 3));
}

TEST(ValueRange, LoopCounterWidensWithoutDivergence) {
  Program P = parse("shared x;\n"
                    "thread t {\n"
                    "  local i = 0;\n"
                    "  while (i < 1000000) { x = x + i; i = i + 1; }\n"
                    "}\n"
                    "main { spawn t; join t; }\n");
  // Construction is the assertion: the two-level fixpoint must terminate
  // on an unbounded-looking accumulation (widening, not enumeration).
  ValueRangeAnalysis VR(P);
  EXPECT_FALSE(VR.branchConstantAt(threadIndex(P, "t"), 4));
}

// ------------------------------------------------------------- StaticMhb

TEST(StaticMhb, NestedForkJoinOrdersParentAccesses) {
  Program P = parse("shared hand; shared x;\n"
                    "thread helper { hand = hand + 1; }\n"
                    "thread t1 {\n"
                    "  hand = 1;\n"
                    "  spawn helper;\n"
                    "  join helper;\n"
                    "  x = hand;\n"
                    "}\n"
                    "thread t2 { x = 2; }\n"
                    "main { spawn t1; spawn t2; join t1; join t2; }\n");
  StaticMhbAnalysis Mhb(P);
  uint32_t T1 = threadIndex(P, "t1"), T2 = threadIndex(P, "t2");
  uint32_t Helper = threadIndex(P, "helper");
  // t1's pre-spawn write precedes every helper statement; helper's write
  // precedes t1's post-join read.
  EXPECT_TRUE(Mhb.orderedBefore(T1, 4, Helper, 2));
  EXPECT_TRUE(Mhb.orderedBefore(Helper, 2, T1, 7));
  // The post-join read is NOT ordered the other way around.
  EXPECT_FALSE(Mhb.orderedBefore(T1, 7, Helper, 2));
  // Siblings t1/t2 overlap: nothing orders their bodies.
  EXPECT_FALSE(Mhb.orderedBefore(T1, 7, T2, 9));
  EXPECT_FALSE(Mhb.orderedBefore(T2, 9, T1, 7));
  EXPECT_TRUE(Mhb.threadOrdered(Helper, T1) ||
              Mhb.orderedBefore(Helper, 2, T1, 7));
}

TEST(StaticMhb, ConditionalJoinDoesNotOrder) {
  Program P = parse("shared x; shared c;\n"
                    "thread t { x = 1; }\n"
                    "main {\n"
                    "  spawn t;\n"
                    "  if (c == 1) { join t; }\n"
                    "  x = 2;\n"
                    "}\n");
  StaticMhbAnalysis Mhb(P);
  uint32_t T = threadIndex(P, "t");
  // The join happens on one path only: it cannot prove main's late write
  // ordered after t's write.
  EXPECT_FALSE(Mhb.orderedBefore(T, 2, 0, 6));
}

TEST(StaticMhb, SequentialSpawnJoinChains) {
  Program P = parse("shared x;\n"
                    "thread a { x = 1; }\n"
                    "thread b { x = 2; }\n"
                    "main { spawn a; join a; spawn b; join b; }\n");
  StaticMhbAnalysis Mhb(P);
  uint32_t A = threadIndex(P, "a"), B = threadIndex(P, "b");
  // a fully precedes b through main's join-then-spawn.
  EXPECT_TRUE(Mhb.threadOrdered(A, B));
  EXPECT_TRUE(Mhb.orderedBefore(A, 2, B, 3));
  EXPECT_FALSE(Mhb.orderedBefore(B, 3, A, 2));
}

// ------------------------------------------------------------- RaceCheck

TEST(RaceCheck, FindsAndRanksTrueRace) {
  Program P = parse("shared x;\n"
                    "thread t1 { x = 1; }\n"
                    "thread t2 { x = 2; }\n"
                    "main { spawn t1; spawn t2; join t1; join t2; }\n");
  RaceCheckResult R = runRaceCheck(P);
  ASSERT_EQ(R.Warnings.size(), 1u);
  const StaticRaceWarning &W = R.Warnings[0];
  EXPECT_EQ(W.Var, "x");
  // Both writes, neither locked: maximal rank.
  EXPECT_EQ(W.Rank, 3);
  EXPECT_TRUE(W.A.Write);
  EXPECT_TRUE(W.B.Write);
}

TEST(RaceCheck, CommonMustLockFiltersPair) {
  Program P = parse("shared x; lock l;\n"
                    "thread t1 { sync l { x = 1; } }\n"
                    "thread t2 { sync l { x = x + 1; } }\n"
                    "main { spawn t1; spawn t2; join t1; join t2; }\n");
  RaceCheckResult R = runRaceCheck(P);
  EXPECT_TRUE(R.Warnings.empty());
  EXPECT_GT(R.PairsLockProtected, 0u);
}

TEST(RaceCheck, StaticMhbFiltersForkJoinPairs) {
  Program P = parse("shared x;\n"
                    "thread t { x = 1; }\n"
                    "main { spawn t; join t; x = 2; }\n");
  RaceCheckResult R = runRaceCheck(P);
  // main's post-join write is ordered after t's write in every run.
  EXPECT_TRUE(R.Warnings.empty());
}

TEST(RaceCheck, VolatileAccessesNeverWarn) {
  Program P = parse("shared volatile x;\n"
                    "thread t1 { x = 1; }\n"
                    "thread t2 { x = 2; }\n"
                    "main { spawn t1; spawn t2; join t1; join t2; }\n");
  RaceCheckResult R = runRaceCheck(P);
  EXPECT_TRUE(R.Warnings.empty());
}
