//===- tests/RuntimeTest.cpp - Interpreter/recorder tests ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Compile.h"
#include "runtime/Interpreter.h"

#include "trace/Consistency.h"

#include <gtest/gtest.h>

using namespace rvp;

namespace {

struct Recorded {
  Trace T;
  RunResult R;
};

Recorded record(const std::string &Source, Scheduler *S = nullptr,
                RunLimits Limits = RunLimits()) {
  Recorded Out;
  std::string Error;
  bool Compiled = recordTrace(Source, Out.T, Out.R, Error, S, Limits);
  EXPECT_TRUE(Compiled) << Error;
  return Out;
}

size_t countKind(const Trace &T, EventKind K) {
  size_t N = 0;
  for (const Event &E : T.events())
    N += E.Kind == K;
  return N;
}

} // namespace

TEST(Compile, ErrorUndeclaredVariable) {
  std::string Error;
  EXPECT_FALSE(compileSource("main { x = 1; }", Error).has_value());
  EXPECT_NE(Error.find("undeclared"), std::string::npos);
}

TEST(Compile, ErrorArrayWithoutIndex) {
  std::string Error;
  EXPECT_FALSE(
      compileSource("shared a[2]; main { a = 1; }", Error).has_value());
}

TEST(Compile, ErrorConstantIndexOutOfBounds) {
  std::string Error;
  EXPECT_FALSE(
      compileSource("shared a[2]; main { a[2] = 1; }", Error).has_value());
}

TEST(Compile, ErrorSpawnMain) {
  std::string Error;
  EXPECT_FALSE(compileSource("main { spawn main; }", Error).has_value());
}

TEST(Compile, ErrorLocalShadowsGlobal) {
  std::string Error;
  EXPECT_FALSE(
      compileSource("shared x; main { local x; }", Error).has_value());
}

TEST(Compile, ErrorUndeclaredLockAndThread) {
  std::string Error;
  EXPECT_FALSE(compileSource("main { lock nope; }", Error).has_value());
  EXPECT_FALSE(compileSource("main { spawn ghost; }", Error).has_value());
}

TEST(Runtime, StraightLineComputation) {
  Recorded R = record("shared x; main { x = 2 + 3 * 4; }");
  EXPECT_TRUE(R.R.ok());
  EXPECT_EQ(R.R.FinalCells.at("x"), 14);
  // begin, write, end
  EXPECT_EQ(R.T.size(), 3u);
}

TEST(Runtime, LocalsInvisibleInTrace) {
  Recorded R = record("shared x; main { local a = 5; local b = a + 1; "
                      "x = b; }");
  EXPECT_EQ(R.R.FinalCells.at("x"), 6);
  EXPECT_EQ(countKind(R.T, EventKind::Read), 0u);
  EXPECT_EQ(countKind(R.T, EventKind::Write), 1u);
}

TEST(Runtime, IfEmitsBranchAndReads) {
  Recorded R = record("shared x = 1; shared y; main { "
                      "if (x == 1) { y = 7; } }");
  EXPECT_EQ(R.R.FinalCells.at("y"), 7);
  EXPECT_EQ(countKind(R.T, EventKind::Branch), 1u);
  EXPECT_EQ(countKind(R.T, EventKind::Read), 1u);
}

TEST(Runtime, WhileLoopEmitsBranchPerIteration) {
  Recorded R = record("shared x; main { while (x < 3) { x = x + 1; } }");
  EXPECT_EQ(R.R.FinalCells.at("x"), 3);
  // 4 condition evaluations -> 4 branches; reads: 4 (cond) + 3 (body).
  EXPECT_EQ(countKind(R.T, EventKind::Branch), 4u);
  EXPECT_EQ(countKind(R.T, EventKind::Read), 7u);
  EXPECT_EQ(countKind(R.T, EventKind::Write), 3u);
}

TEST(Runtime, ConstantArrayIndexHasNoBranch) {
  Recorded R = record("shared a[3]; main { a[1] = 5; a[1] = a[1] + 1; }");
  EXPECT_EQ(R.R.FinalCells.at("a[1]"), 6);
  EXPECT_EQ(countKind(R.T, EventKind::Branch), 0u)
      << "constant indices need no branch events (Section 4)";
}

TEST(Runtime, DynamicArrayIndexEmitsBranch) {
  Recorded R = record("shared a[3]; shared i = 2; main { a[i] = 9; }");
  EXPECT_EQ(R.R.FinalCells.at("a[2]"), 9);
  EXPECT_EQ(countKind(R.T, EventKind::Branch), 1u);
}

TEST(Runtime, ArrayCellsAreDistinctTraceVariables) {
  Recorded R = record("shared a[2]; main { a[0] = 1; a[1] = 2; }");
  VarId V0 = R.T.internVar("a[0]");
  VarId V1 = R.T.internVar("a[1]");
  EXPECT_NE(V0, V1);
  EXPECT_EQ(R.T.accessesOf(V0).size(), 1u);
  EXPECT_EQ(R.T.accessesOf(V1).size(), 1u);
}

TEST(Runtime, OutOfBoundsIndexIsRuntimeError) {
  Recorded R = record("shared a[2]; shared i = 5; main { a[i] = 1; }");
  ASSERT_EQ(R.R.Errors.size(), 1u);
  EXPECT_NE(R.R.Errors[0].Message.find("out of bounds"), std::string::npos);
}

TEST(Runtime, DivisionByZeroIsRuntimeError) {
  Recorded R = record("shared x = 1; shared y; main { y = x / (x - 1); }");
  ASSERT_EQ(R.R.Errors.size(), 1u);
  EXPECT_NE(R.R.Errors[0].Message.find("division"), std::string::npos);
}

TEST(Runtime, AssertFailureRecorded) {
  Recorded R = record("shared x; main { assert x == 1; }");
  ASSERT_EQ(R.R.Errors.size(), 1u);
  EXPECT_NE(R.R.Errors[0].Message.find("assertion"), std::string::npos);
}

TEST(Runtime, ForkJoinOrder) {
  Recorded R = record("shared x; thread t { x = 1; } "
                      "main { spawn t; join t; assert x == 1; }");
  EXPECT_TRUE(R.R.ok()) << (R.R.Errors.empty()
                                ? "?"
                                : R.R.Errors[0].Message);
  EXPECT_EQ(countKind(R.T, EventKind::Fork), 1u);
  EXPECT_EQ(countKind(R.T, EventKind::Join), 1u);
  EXPECT_EQ(countKind(R.T, EventKind::Begin), 2u);
  EXPECT_EQ(countKind(R.T, EventKind::End), 2u);
  EXPECT_TRUE(checkConsistency(R.T, ConsistencyMode::Strict).Ok);
}

TEST(Runtime, LockMutualExclusionInTrace) {
  Recorded R = record(R"(
shared x; lock l;
thread t { sync l { x = x + 1; } }
main { spawn t; sync l { x = x + 1; } join t; assert x == 2; }
)");
  EXPECT_TRUE(R.R.ok());
  ConsistencyResult C = checkConsistency(R.T, ConsistencyMode::Strict);
  EXPECT_TRUE(C.Ok) << C.Message;
}

TEST(Runtime, ReentrantLockPairsFiltered) {
  Recorded R = record("shared x; lock l; main { "
                      "sync l { sync l { x = 1; } } }");
  EXPECT_TRUE(R.R.ok());
  EXPECT_EQ(countKind(R.T, EventKind::Acquire), 1u)
      << "inner reentrant pair must be silent (Section 4)";
  EXPECT_EQ(countKind(R.T, EventKind::Release), 1u);
}

TEST(Runtime, UnlockWithoutLockIsError) {
  Recorded R = record("lock l; main { unlock l; }");
  ASSERT_EQ(R.R.Errors.size(), 1u);
}

TEST(Runtime, DeadlockDetected) {
  Recorded R = record(R"(
lock a; lock b; shared x;
thread t { lock b; x = x + 0; lock a; unlock a; unlock b; }
main { spawn t; lock a; x = x + 0; lock b; unlock b; unlock a; }
)");
  EXPECT_TRUE(R.R.Deadlocked);
}

TEST(Runtime, EventLimitStopsRunawayLoop) {
  RunLimits Limits;
  Limits.MaxEvents = 100;
  Recorded R = record("shared x; main { while (1 == 1) { x = 1; } }",
                      nullptr, Limits);
  EXPECT_TRUE(R.R.HitEventLimit);
  EXPECT_LE(R.T.size(), 101u);
}

TEST(Runtime, VolatileAccessesFlagged) {
  Recorded R = record("shared volatile v; main { v = 1; }");
  bool FoundVolatileWrite = false;
  for (const Event &E : R.T.events())
    if (E.isWrite())
      FoundVolatileWrite = E.Volatile;
  EXPECT_TRUE(FoundVolatileWrite);
}

TEST(Runtime, WaitNotifyRoundTrip) {
  Recorded R = record(R"(
shared flag; lock l;
thread consumer {
  sync l {
    while (flag == 0) { wait l; }
  }
}
main {
  spawn consumer;
  sync l { flag = 1; notify l; }
  join consumer;
}
)");
  EXPECT_TRUE(R.R.ok()) << (R.R.Errors.empty() ? (R.R.Deadlocked ? "deadlock"
                                                                 : "?")
                                               : R.R.Errors[0].Message);
  EXPECT_EQ(countKind(R.T, EventKind::Notify), 1u);
  ConsistencyResult C = checkConsistency(R.T, ConsistencyMode::Strict);
  EXPECT_TRUE(C.Ok) << C.Message;
}

TEST(Runtime, NotifyAllWakesEveryone) {
  Recorded R = record(R"(
shared flag; shared done; lock l;
thread w1 { sync l { while (flag == 0) { wait l; } } done = done + 1; }
thread w2 { sync l { while (flag == 0) { wait l; } } done = done + 1; }
main {
  spawn w1; spawn w2;
  sync l { skip; }
  sync l { flag = 1; notifyall l; }
  join w1; join w2;
}
)");
  // The main thread may notify before both waiters suspended; accept
  // either full success or the run not deadlocking with done == 2.
  EXPECT_FALSE(R.R.Deadlocked);
  EXPECT_EQ(R.R.FinalCells.at("done"), 2);
}

TEST(Runtime, NotifyWithNoWaiterHasAuxZero) {
  Recorded R = record("lock l; main { sync l { notify l; } }");
  for (const Event &E : R.T.events()) {
    if (E.Kind == EventKind::Notify) {
      EXPECT_EQ(E.Aux, 0u);
    }
  }
}

TEST(Runtime, RecordedTracesAlwaysConsistent) {
  // Random schedules over a contended program still record consistent
  // traces (the recorder logs what actually happened).
  const char *Source = R"(
shared x; shared y; shared a[4]; lock l;
thread t1 { sync l { x = x + 1; } y = 2; a[x] = y; }
thread t2 { sync l { x = x + 2; } y = 3; a[1] = x; }
main { spawn t1; spawn t2; join t1; join t2; }
)";
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    RandomScheduler S(Seed);
    Trace T;
    RunResult R;
    std::string Error;
    ASSERT_TRUE(recordTrace(Source, T, R, Error, &S));
    EXPECT_FALSE(R.Deadlocked);
    ConsistencyResult C = checkConsistency(T, ConsistencyMode::Strict);
    EXPECT_TRUE(C.Ok) << "seed " << Seed << ": " << C.Message;
  }
}

TEST(Runtime, ReplaySchedulerFollowsSequence) {
  const char *Source = R"(
shared x;
thread t { x = 2; }
main { spawn t; x = 1; join t; }
)";
  // main: begin, fork, write, join, end = tids 0,0,0,0,0
  // t: begin, write, end = 1,1,1
  // Interleave: main begin+fork, then all of t, then rest of main.
  ReplayScheduler S({0, 0, 1, 1, 1, 0, 0, 0});
  Trace T;
  RunResult R;
  std::string Error;
  ASSERT_TRUE(recordTrace(Source, T, R, Error, &S));
  EXPECT_FALSE(S.diverged());
  ASSERT_EQ(T.size(), 8u);
  EXPECT_EQ(T[2].Kind, EventKind::Begin);
  EXPECT_EQ(T[2].Tid, 1u);
  EXPECT_EQ(T[3].Kind, EventKind::Write);
  EXPECT_EQ(T[3].Data, 2);
  EXPECT_EQ(T[5].Kind, EventKind::Write);
  EXPECT_EQ(T[5].Data, 1);
  EXPECT_EQ(R.FinalCells.at("x"), 1);
}

TEST(Runtime, ReplayDivergenceDetected) {
  const char *Source = "shared x; main { x = 1; }";
  ReplayScheduler S({5, 5, 5}); // thread 5 never exists
  Trace T;
  RunResult R;
  std::string Error;
  ASSERT_TRUE(recordTrace(Source, T, R, Error, &S));
  EXPECT_TRUE(S.diverged());
}

TEST(Runtime, RoundRobinQuantumInterleaves) {
  const char *Source = R"(
shared x;
thread t { x = 2; x = 3; }
main { spawn t; x = 1; x = 4; join t; }
)";
  RoundRobinScheduler S(2);
  Trace T;
  RunResult R;
  std::string Error;
  ASSERT_TRUE(recordTrace(Source, T, R, Error, &S));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(countKind(T, EventKind::Write), 4u);
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok);
}

TEST(Runtime, Figure1ProgramRecordsExpectedTrace) {
  // The paper's Figure 1 program, scheduled to follow the paper's order.
  const char *Source = R"(
shared x; shared y; shared z; lock l;
thread t2 {
  local r1; local r2;
  sync l { r1 = y; }
  r2 = x;
  if (r1 == r2) { z = 1; }
}
main {
  spawn t2;
  sync l { x = 1; y = 1; }
  join t2;
  local r3 = z;
  assert r3 != 0;
}
)";
  // main: begin fork acq w(x) w(y) rel | t2: begin acq r(y) rel r(x)
  // branch w(z) end | main: join r(z) branch end
  ReplayScheduler S({0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0});
  Trace T;
  RunResult R;
  std::string Error;
  ASSERT_TRUE(recordTrace(Source, T, R, Error, &S));
  EXPECT_FALSE(S.diverged());
  EXPECT_TRUE(R.Errors.empty()) << "z==1 so the assert passes";
  EXPECT_TRUE(checkConsistency(T, ConsistencyMode::Strict).Ok);
  TraceStats Stats = T.stats();
  EXPECT_EQ(Stats.Threads, 2u);
  EXPECT_EQ(Stats.Branches, 2u); // t2's if + main's assert
  EXPECT_EQ(Stats.ReadsWrites, 6u);
}

TEST(Scheduler, RoundRobinIsDeterministic) {
  RoundRobinScheduler A(2), B(2);
  std::vector<ThreadId> Runnable = {0, 1, 2};
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(A.pick(Runnable), B.pick(Runnable));
}

TEST(Scheduler, RoundRobinHonorsQuantum) {
  RoundRobinScheduler S(3);
  std::vector<ThreadId> Runnable = {0, 1};
  std::vector<ThreadId> Picks;
  for (int I = 0; I < 6; ++I)
    Picks.push_back(S.pick(Runnable));
  EXPECT_EQ(Picks, (std::vector<ThreadId>{0, 0, 0, 1, 1, 1}));
}

TEST(Scheduler, RoundRobinSkipsUnrunnable) {
  RoundRobinScheduler S(1);
  EXPECT_EQ(S.pick({2}), 2u);
  EXPECT_EQ(S.pick({1, 3}), 3u) << "wraps to the next id after 2";
}

TEST(Scheduler, RandomIsSeedDeterministic) {
  RandomScheduler A(9), B(9);
  std::vector<ThreadId> Runnable = {0, 1, 2, 3};
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(A.pick(Runnable), B.pick(Runnable));
}

TEST(Scheduler, ReplayReportsPositionAndDivergence) {
  ReplayScheduler S({1, 0, 1});
  EXPECT_EQ(S.pick({0, 1}), 1u);
  EXPECT_EQ(S.position(), 1u);
  EXPECT_EQ(S.pick({0, 1}), 0u);
  EXPECT_FALSE(S.diverged());
  EXPECT_EQ(S.pick({0}), 0u) << "wanted 1, must fall back";
  EXPECT_TRUE(S.diverged());
  EXPECT_EQ(S.pick({0}), 0u) << "past the sequence end";
}
