//===- workloads/Synthetic.cpp - Synthetic real-system traces ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Synthetic.h"

#include "support/Random.h"
#include "support/StringUtils.h"
#include "trace/TraceBuilder.h"

#include <algorithm>
#include <deque>
#include <functional>

using namespace rvp;

namespace {

/// One pattern instance: an ordered list of event-emitting steps whose
/// internal order must be preserved by the interleaver.
using Step = std::function<void(TraceBuilder &)>;
/// A pattern factory: instantiated with the two threads it runs on when
/// its cluster is emitted.
using PatternFactory =
    std::function<std::vector<Step>(std::string, std::string)>;

class Generator {
public:
  explicit Generator(const SyntheticSpec &Spec) : Spec(Spec), R(Spec.Seed) {}

  Trace run() {
    makeThreads();
    makePatterns();
    emitSkeletonHead();
    emitBody();
    emitSkeletonTail();
    Trace T = B.build();
    return T;
  }

private:
  // ------------------------------------------------------------ threads
  void makeThreads() {
    Threads.push_back("main");
    for (uint32_t I = 0; I < Spec.Workers; ++I)
      Threads.push_back(formatString("w%u", I + 1));
    LastFillerValue.assign(Threads.size(), 0);
  }

  const std::string &worker(uint32_t I) const {
    return Threads[1 + I % Spec.Workers];
  }

  /// Workers are split into pattern threads and filler threads: branch
  /// events are only emitted on filler threads, so no filler branch ever
  /// guards a pattern access (which would add read-concreteness
  /// constraints and change the expected per-technique counts).
  uint32_t numPatternWorkers() const {
    return std::min(Spec.Workers,
                    std::max<uint32_t>(4, Spec.Workers / 2) & ~1u);
  }

  /// Pattern threads are used in disjoint pairs; patterns within one
  /// cluster always run on distinct pairs, so critical sections of
  /// different patterns can never chain through program order (which
  /// would trigger CP's rule (b) across patterns or couple Said queries).
  uint32_t numPairs() const { return std::max(1u, numPatternWorkers() / 2); }

  std::pair<std::string, std::string> pairThreads(uint32_t PairIndex) {
    uint32_t P = PairIndex % numPairs();
    return {worker(2 * P), worker(2 * P + 1)};
  }

  void makePatterns() {
    auto add = [&](PatternFactory Factory) {
      Factories.push_back(std::move(Factory));
    };

    for (uint32_t I = 0; I < Spec.PlainRaces; ++I) {
      std::string X = formatString("plain%u", I);
      std::string La = formatString("plain%u_a", I);
      std::string Lb = formatString("plain%u_b", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.write(Ta, X, 1, La); },
                [=](TraceBuilder &B) { B.write(Tb, X, 2, Lb); }};
      });
    }

    for (uint32_t I = 0; I < Spec.CpOnlyRaces; ++I) {
      std::string X = formatString("cp%u_x", I);
      std::string Z = formatString("cp%u_z", I);
      std::string W = formatString("cp%u_w", I);
      std::string L = formatString("cp%u_l", I);
      std::string La = formatString("cp%u_a", I);
      std::string Lb = formatString("cp%u_b", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.write(Ta, X, 1, La); },
                [=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.write(Ta, Z, 1); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.acquire(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, W, 2); },
                [=](TraceBuilder &B) { B.release(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, X, 2, Lb); }};
      });
    }

    for (uint32_t I = 0; I < Spec.SaidOnlyRaces; ++I) {
      std::string X = formatString("said%u_x", I);
      std::string Z = formatString("said%u_z", I);
      std::string L = formatString("said%u_l", I);
      std::string La = formatString("said%u_a", I);
      std::string Lb = formatString("said%u_b", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.write(Ta, X, 1, La); },
                [=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.write(Ta, Z, 1); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.acquire(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, Z, 2); },
                [=](TraceBuilder &B) { B.release(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, X, 2, Lb); }};
      });
    }

    for (uint32_t I = 0; I < Spec.HbNotSaidRaces; ++I) {
      // Tb reads x's initial value before Ta's locked write; bringing the
      // read next to the write would change the value read, so Said's
      // whole-trace consistency refutes it while HB sees the pair
      // unordered. The write-write pair is lock-protected (no companion
      // race).
      std::string X = formatString("hbns%u_x", I);
      std::string L = formatString("hbns%u_l", I);
      std::string La = formatString("hbns%u_a", I);
      std::string Lb = formatString("hbns%u_b", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.read(Tb, X, 0, Lb); },
                [=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.write(Ta, X, 1, La); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.acquire(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, X, 2); },
                [=](TraceBuilder &B) { B.release(Tb, L); }};
      });
    }

    for (uint32_t I = 0; I < Spec.RvOnlyRaces; ++I) {
      std::string X = formatString("rv%u_x", I);
      std::string Y = formatString("rv%u_y", I);
      std::string L = formatString("rv%u_l", I);
      std::string La = formatString("rv%u_a", I);
      std::string Lb = formatString("rv%u_b", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.write(Ta, X, 1, La); },
                [=](TraceBuilder &B) { B.write(Ta, Y, 1); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.acquire(Tb, L); },
                [=](TraceBuilder &B) { B.read(Tb, Y, 1); },
                [=](TraceBuilder &B) { B.release(Tb, L); },
                [=](TraceBuilder &B) { B.read(Tb, X, 1, Lb); }};
      });
    }

    for (uint32_t I = 0; I < Spec.QcOnlyPairs; ++I) {
      std::string Idx = formatString("qc%u_i", I);
      std::string Arr = formatString("qc%u_arr", I);
      std::string L = formatString("qc%u_l", I);
      std::string La = formatString("qc%u_a", I);
      std::string Lb = formatString("qc%u_b", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.read(Ta, Idx, 0); },
                [=](TraceBuilder &B) { B.branch(Ta); },
                [=](TraceBuilder &B) { B.write(Ta, Arr, 2, La); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.acquire(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, Idx, 1); },
                [=](TraceBuilder &B) { B.release(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, Arr, 1, Lb); }};
      });
    }

    for (uint32_t I = 0; I < Spec.AtomicityPairs; ++I) {
      std::string V = formatString("atom%u_v", I);
      std::string L = formatString("atom%u_l", I);
      std::string La = formatString("atom%u_r", I);
      std::string Lb = formatString("atom%u_w", I);
      std::string Lc = formatString("atom%u_x", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.read(Ta, V, 0, La); },
                [=](TraceBuilder &B) { B.write(Ta, V, 1, Lb); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.write(Tb, V, 7, Lc); }};
      });
    }

    for (uint32_t I = 0; I < Spec.DeadlockCycles; ++I) {
      std::string La = formatString("dl%u_a", I);
      std::string Lb = formatString("dl%u_b", I);
      std::string R1 = formatString("dl%u_r1", I);
      std::string R2 = formatString("dl%u_r2", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.acquire(Ta, La); },
                [=](TraceBuilder &B) { B.acquire(Ta, Lb, R1); },
                [=](TraceBuilder &B) { B.release(Ta, Lb); },
                [=](TraceBuilder &B) { B.release(Ta, La); },
                [=](TraceBuilder &B) { B.acquire(Tb, Lb); },
                [=](TraceBuilder &B) { B.acquire(Tb, La, R2); },
                [=](TraceBuilder &B) { B.release(Tb, La); },
                [=](TraceBuilder &B) { B.release(Tb, Lb); }};
      });
    }

    for (uint32_t I = 0; I < Spec.OrderedPairs; ++I) {
      std::string X = formatString("ord%u_x", I);
      std::string L = formatString("ord%u_l", I);
      add([=](std::string Ta, std::string Tb) -> std::vector<Step> {
        return {[=](TraceBuilder &B) { B.acquire(Ta, L); },
                [=](TraceBuilder &B) { B.write(Ta, X, 1); },
                [=](TraceBuilder &B) { B.release(Ta, L); },
                [=](TraceBuilder &B) { B.acquire(Tb, L); },
                [=](TraceBuilder &B) { B.write(Tb, X, 2); },
                [=](TraceBuilder &B) { B.release(Tb, L); }};
      });
    }

    // Deterministic shuffle so pattern classes mix across the trace.
    for (size_t I = Factories.size(); I > 1; --I)
      std::swap(Factories[I - 1], Factories[R.below(I)]);
  }

  // ------------------------------------------------------------- filler
  void emitFiller(uint32_t Count) {
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t W = static_cast<uint32_t>(R.below(Spec.Workers));
      const std::string &Tid = Threads[1 + W];
      std::string Var = formatString("priv_w%u", W + 1);
      std::string Lock = formatString("privl_w%u", W + 1);
      uint64_t Dice = R.below(100);
      bool BranchAllowed = W >= numPatternWorkers();
      if (BranchAllowed && Dice < Spec.BranchPercent) {
        B.branch(Tid, formatString("fb%u", W));
      } else if (Dice < Spec.BranchPercent + Spec.SyncPercent) {
        // A tiny private critical section (4 events).
        B.acquire(Tid, Lock, formatString("fa%u", W));
        B.write(Tid, Var, ++LastFillerValue[1 + W],
                formatString("fw%u", W));
        B.release(Tid, Lock, formatString("fr%u", W));
        I += 2;
      } else if (R.chance(1, 2)) {
        B.write(Tid, Var, ++LastFillerValue[1 + W],
                formatString("fw%u", W));
      } else {
        B.read(Tid, Var, LastFillerValue[1 + W], formatString("fd%u", W));
      }
    }
  }

  // ------------------------------------------------------------ skeleton
  void emitSkeletonHead() {
    B.begin("main", "sk0");
    for (uint32_t I = 0; I < Spec.Workers; ++I) {
      B.fork("main", Threads[1 + I], formatString("skf%u", I));
      B.begin(Threads[1 + I], formatString("skb%u", I));
    }
  }

  void emitSkeletonTail() {
    for (uint32_t I = 0; I < Spec.Workers; ++I) {
      B.end(Threads[1 + I], formatString("ske%u", I));
      B.join("main", Threads[1 + I], formatString("skj%u", I));
    }
    B.end("main", "sk1");
  }

  // ---------------------------------------------------------------- body
  uint64_t size() { return B.trace().size(); }

  /// Pads with filler so the next \p Needed events stay inside the
  /// current window.
  void alignForCluster(uint64_t Needed) {
    if (Spec.AlignWindow == 0)
      return;
    uint64_t Offset = size() % Spec.AlignWindow;
    if (Offset + Needed + 8 >= Spec.AlignWindow)
      emitFiller(static_cast<uint32_t>(Spec.AlignWindow - Offset));
  }

  void emitBody() {
    const uint64_t TailReserve = 2 * Spec.Workers + 2;
    const size_t ClusterSize = std::min<size_t>(6, numPairs());
    size_t NextPattern = 0;
    while (NextPattern < Factories.size()) {
      // Gather a cluster of patterns, each on its own thread pair.
      std::vector<std::deque<Step>> Streams;
      uint64_t ClusterEvents = 0;
      while (NextPattern < Factories.size() &&
             Streams.size() < ClusterSize) {
        auto [Ta, Tb] =
            pairThreads(static_cast<uint32_t>(Streams.size()));
        std::vector<Step> P = Factories[NextPattern++](Ta, Tb);
        ClusterEvents += P.size();
        Streams.emplace_back(P.begin(), P.end());
      }
      alignForCluster(ClusterEvents * 3);

      // Interleave the streams with a sprinkling of filler, preserving
      // each stream's internal order.
      while (!Streams.empty()) {
        size_t Pick = R.below(Streams.size());
        uint32_t Burst = 1 + static_cast<uint32_t>(R.below(3));
        while (Burst-- > 0 && !Streams[Pick].empty()) {
          Streams[Pick].front()(B);
          Streams[Pick].pop_front();
        }
        if (Streams[Pick].empty())
          Streams.erase(Streams.begin() + Pick);
        if (Spec.PatternSpread > 0)
          emitFiller(static_cast<uint32_t>(R.below(Spec.PatternSpread)));
        else if (R.chance(1, 3))
          emitFiller(1 + static_cast<uint32_t>(R.below(3)));
      }
    }
    // Top up to the target size.
    while (size() + TailReserve < Spec.TargetEvents)
      emitFiller(16);
  }

  SyntheticSpec Spec;
  Rng R;
  TraceBuilder B;
  std::vector<std::string> Threads;
  std::vector<Value> LastFillerValue;
  std::vector<PatternFactory> Factories;
};

} // namespace

Trace rvp::generateSynthetic(const SyntheticSpec &Spec) {
  return Generator(Spec).run();
}

std::vector<SyntheticSpec> rvp::realSystemSpecs() {
  // Pattern counts calibrated to the paper's Table 1 per-technique race
  // counts: HB 68, CP 76, Said < RV with the ftpserver inversion
  // (Said << HB), derby as the largest RV gap, RV total 299.
  std::vector<SyntheticSpec> Specs;

  SyntheticSpec Ftp;
  Ftp.Name = "ftpserver";
  Ftp.Workers = 11;
  Ftp.TargetEvents = 40000;
  Ftp.PlainRaces = 3;
  Ftp.HbNotSaidRaces = 24;
  Ftp.CpOnlyRaces = 4;
  Ftp.RvOnlyRaces = 7;
  Ftp.QcOnlyPairs = 12;
  Ftp.OrderedPairs = 20;
  Ftp.Seed = 101;
  Specs.push_back(Ftp);

  SyntheticSpec Jigsaw;
  Jigsaw.Name = "jigsaw";
  Jigsaw.Workers = 10;
  Jigsaw.TargetEvents = 60000;
  Jigsaw.PlainRaces = 4;
  Jigsaw.SaidOnlyRaces = 16;
  Jigsaw.RvOnlyRaces = 4;
  Jigsaw.QcOnlyPairs = 8;
  Jigsaw.OrderedPairs = 30;
  Jigsaw.Seed = 102;
  Specs.push_back(Jigsaw);

  SyntheticSpec Derby;
  Derby.Name = "derby";
  Derby.Workers = 6;
  Derby.TargetEvents = 80000;
  Derby.PlainRaces = 10;
  Derby.HbNotSaidRaces = 2;
  Derby.CpOnlyRaces = 2;
  Derby.SaidOnlyRaces = 3;
  Derby.RvOnlyRaces = 101;
  Derby.QcOnlyPairs = 40;
  Derby.OrderedPairs = 60;
  Derby.SyncPercent = 24; // "many fine-grained critical sections"
  Derby.Seed = 103;
  Specs.push_back(Derby);

  SyntheticSpec Sunflow;
  Sunflow.Name = "sunflow";
  Sunflow.Workers = 16;
  Sunflow.TargetEvents = 30000;
  Sunflow.PlainRaces = 6;
  Sunflow.SaidOnlyRaces = 13;
  Sunflow.RvOnlyRaces = 3;
  Sunflow.QcOnlyPairs = 6;
  Sunflow.OrderedPairs = 12;
  Sunflow.Seed = 104;
  Specs.push_back(Sunflow);

  SyntheticSpec Xalan;
  Xalan.Name = "xalan";
  Xalan.Workers = 9;
  Xalan.TargetEvents = 50000;
  Xalan.PlainRaces = 8;
  Xalan.CpOnlyRaces = 2;
  Xalan.SaidOnlyRaces = 12;
  Xalan.RvOnlyRaces = 6;
  Xalan.QcOnlyPairs = 10;
  Xalan.OrderedPairs = 24;
  Xalan.Seed = 105;
  Specs.push_back(Xalan);

  SyntheticSpec Lusearch;
  Lusearch.Name = "lusearch";
  Lusearch.Workers = 10;
  Lusearch.TargetEvents = 30000;
  Lusearch.PlainRaces = 3;
  Lusearch.SaidOnlyRaces = 13;
  Lusearch.RvOnlyRaces = 4;
  Lusearch.QcOnlyPairs = 6;
  Lusearch.OrderedPairs = 12;
  Lusearch.Seed = 106;
  Specs.push_back(Lusearch);

  SyntheticSpec Eclipse;
  Eclipse.Name = "eclipse";
  Eclipse.Workers = 18;
  Eclipse.TargetEvents = 120000;
  Eclipse.PlainRaces = 8;
  Eclipse.SaidOnlyRaces = 26;
  Eclipse.RvOnlyRaces = 15;
  Eclipse.QcOnlyPairs = 16;
  Eclipse.OrderedPairs = 40;
  Eclipse.Seed = 107;
  Specs.push_back(Eclipse);

  return Specs;
}

SyntheticSpec rvp::realSystemSpec(const std::string &Name) {
  for (const SyntheticSpec &Spec : realSystemSpecs())
    if (Spec.Name == Name)
      return Spec;
  return SyntheticSpec();
}
