//===- workloads/Programs.h - MiniRV benchmark programs ----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniRV ports of the paper's small benchmarks: the Figure 1 example
/// program, an IBM-Contest-style suite of classic concurrency-bug
/// patterns, and Java-Grande-style compute kernels (parameterized so the
/// bench harness can scale trace sizes).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_WORKLOADS_PROGRAMS_H
#define RVP_WORKLOADS_PROGRAMS_H

#include <string>

namespace rvp {

/// Figure 1 of the paper: the race (3,10) that only the maximal technique
/// detects among the sound ones.
std::string figure1Program();

// --- IBM-Contest-style small benchmarks --------------------------------

/// Unprotected vs. protected counter increment (lost update).
std::string criticalProgram();
/// Bank account with an unsynchronized deposit.
std::string accountProgram();
/// Ticket agents checking availability outside the lock.
std::string airlineProgram(int Tickets = 5);
/// Two threads hammering one counter without a lock.
std::string pingpongProgram(int Rounds = 3);
/// Producer/consumer over a circular buffer with wait/notify; one racy
/// progress peek.
std::string boundedBufferProgram(int Items = 6);
/// Concurrent bubble passes over overlapping array segments.
std::string bubblesortProgram();
/// Writers appending under a lock; a flusher peeking the length without.
std::string bufwriterProgram(int Writes = 4);
/// Fork/join mergesort; fully ordered, no races.
std::string mergesortProgram();

// --- Java-Grande-style kernels ------------------------------------------

/// N-body-style force accumulation: partitioned updates plus a guarded
/// global energy sum and one racy iteration counter.
std::string moldynProgram(int Particles = 8, int Steps = 3);
/// Per-task simulation into disjoint slots with a racy global aggregate.
std::string montecarloProgram(int Tasks = 8);
/// Row-partitioned rendering with the classic racy checksum.
std::string raytracerProgram(int Rows = 8);

// --- Static-tier exercisers ---------------------------------------------

/// Read-only guard on a racy write (value-range fold) plus a nested
/// fork/join chain only static MHB can order; one real race remains.
std::string staticflowProgram();

} // namespace rvp

#endif // RVP_WORKLOADS_PROGRAMS_H
