//===- workloads/Catalog.cpp - Table 1 benchmark catalog --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Catalog.h"

#include "runtime/Interpreter.h"
#include "workloads/Programs.h"

using namespace rvp;

std::vector<BenchmarkCase> rvp::table1Benchmarks() {
  std::vector<BenchmarkCase> Cases;

  auto addProgram = [&](const std::string &Name, const std::string &Group,
                        std::string Source, uint64_t Seed) {
    BenchmarkCase Case;
    Case.Name = Name;
    Case.Group = Group;
    Case.CaseKind = BenchmarkCase::Kind::Program;
    Case.Source = std::move(Source);
    Case.ScheduleSeed = Seed;
    Cases.push_back(std::move(Case));
  };

  // Row 1: the example of Figure 1.
  addProgram("example", "example", figure1Program(), 7);

  // IBM-Contest-style small benchmarks.
  addProgram("critical", "contest", criticalProgram(), 11);
  addProgram("account", "contest", accountProgram(), 12);
  addProgram("airline", "contest", airlineProgram(5), 13);
  addProgram("pingpong", "contest", pingpongProgram(3), 14);
  addProgram("bbuffer", "contest", boundedBufferProgram(6), 15);
  addProgram("bubblesort", "contest", bubblesortProgram(), 16);
  addProgram("bufwriter", "contest", bufwriterProgram(4), 17);
  addProgram("mergesort", "contest", mergesortProgram(), 18);

  // Java-Grande-style kernels.
  addProgram("moldyn", "grande", moldynProgram(8, 3), 21);
  addProgram("montecarlo", "grande", montecarloProgram(8), 22);
  addProgram("raytracer", "grande", raytracerProgram(8), 23);

  // Static-tier exerciser: constant guard + nested fork/join.
  addProgram("staticflow", "static", staticflowProgram(), 24);

  // Synthetic real-system workloads.
  for (const SyntheticSpec &Spec : realSystemSpecs()) {
    BenchmarkCase Case;
    Case.Name = Spec.Name;
    Case.Group = "real";
    Case.CaseKind = BenchmarkCase::Kind::Synthetic;
    Case.Spec = Spec;
    Cases.push_back(std::move(Case));
  }

  // Encoding stress row: many branch-light pattern threads hammering
  // plain and quick-check-passing pairs, so each window carries a heavy
  // per-COP solver load whose cones are tiny next to the window. The
  // encoding bench and scripts/bench_report.py A/B the cone slicer on it
  // (docs/ENCODER.md).
  {
    BenchmarkCase Case;
    Case.Name = "highcop";
    Case.Group = "stress";
    Case.CaseKind = BenchmarkCase::Kind::Synthetic;
    SyntheticSpec Spec;
    Spec.Name = "highcop";
    Spec.Workers = 24;
    Spec.TargetEvents = 40000;
    Spec.PlainRaces = 40;
    Spec.QcOnlyPairs = 120;
    Spec.BranchPercent = 4;
    Spec.SyncPercent = 8;
    Spec.Seed = 108;
    Case.Spec = Spec;
    Cases.push_back(std::move(Case));
  }

  return Cases;
}

std::optional<BenchmarkCase> rvp::findBenchmark(const std::string &Name) {
  for (BenchmarkCase &Case : table1Benchmarks())
    if (Case.Name == Name)
      return std::move(Case);
  return std::nullopt;
}

bool rvp::benchmarkTrace(const BenchmarkCase &Case, Trace &T,
                         std::string &Error) {
  if (Case.CaseKind == BenchmarkCase::Kind::Synthetic) {
    T = generateSynthetic(Case.Spec);
    return true;
  }
  RandomScheduler Scheduler(Case.ScheduleSeed, /*StickyPercent=*/60);
  RunResult Result;
  if (!recordTrace(Case.Source, T, Result, Error, &Scheduler))
    return false;
  if (Result.Deadlocked) {
    Error = "benchmark execution deadlocked";
    return false;
  }
  return true;
}
