//===- workloads/Catalog.h - Table 1 benchmark catalog -----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark rows of Table 1: the Figure 1 example, the
/// IBM-Contest-style set, the Java-Grande-style set, and the seven
/// synthetic real-system workloads, each resolvable to a recorded trace.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_WORKLOADS_CATALOG_H
#define RVP_WORKLOADS_CATALOG_H

#include "trace/Trace.h"
#include "workloads/Synthetic.h"

#include <optional>
#include <string>
#include <vector>

namespace rvp {

struct BenchmarkCase {
  enum class Kind : uint8_t { Program, Synthetic };

  std::string Name;
  std::string Group; ///< "example", "contest", "grande", "real"
  Kind CaseKind = Kind::Program;
  std::string Source;         ///< MiniRV source (Kind::Program)
  SyntheticSpec Spec;         ///< generator spec (Kind::Synthetic)
  uint64_t ScheduleSeed = 7;  ///< recording schedule for programs
};

/// All rows of Table 1, in the paper's order.
std::vector<BenchmarkCase> table1Benchmarks();

/// Looks a row up by name; std::nullopt when unknown.
std::optional<BenchmarkCase> findBenchmark(const std::string &Name);

/// Produces the recorded trace for a row (runs the program under a seeded
/// random scheduler, or invokes the synthetic generator). Returns false
/// and fills \p Error if the program fails to compile or run.
bool benchmarkTrace(const BenchmarkCase &Case, Trace &T, std::string &Error);

} // namespace rvp

#endif // RVP_WORKLOADS_CATALOG_H
