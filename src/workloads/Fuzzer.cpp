//===- workloads/Fuzzer.cpp - Random MiniRV program generator ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Fuzzer.h"

#include "support/Random.h"
#include "support/StringUtils.h"

using namespace rvp;

namespace {

class ProgramFuzzer {
public:
  ProgramFuzzer(uint64_t Seed, const FuzzConfig &Config)
      : R(Seed), Config(Config) {}

  std::string run() {
    NumThreads = 1 + static_cast<uint32_t>(R.below(Config.MaxThreads));
    NumVars = 1 + static_cast<uint32_t>(R.below(Config.MaxVars));
    NumArrays = static_cast<uint32_t>(R.below(Config.MaxArrays + 1));
    NumLocks = static_cast<uint32_t>(R.below(Config.MaxLocks + 1));
    bool Handshake = Config.UseWaitNotify && R.chance(1, 4);

    std::string Out;
    for (uint32_t I = 0; I < NumVars; ++I) {
      bool Volatile = Config.UseVolatile && R.chance(1, 6);
      Out += formatString("shared %sv%u;\n", Volatile ? "volatile " : "", I);
    }
    for (uint32_t I = 0; I < NumArrays; ++I)
      Out += formatString("shared arr%u[4];\n", I);
    for (uint32_t I = 0; I < NumLocks; ++I)
      Out += formatString("lock m%u;\n", I);

    for (uint32_t T = 0; T < NumThreads; ++T) {
      Out += formatString("thread t%u {\n", T);
      Out += body(2 + R.below(Config.MaxStmtsPerThread), 1);
      Out += "}\n";
    }

    if (Handshake) {
      // A deadlock-free wait/notify handshake: the waiter re-checks the
      // flag under the lock, so a notify that arrives first is never
      // lost. Exercises the lowered release-notify-acquire encoding.
      Out += "shared hsFlag; lock hsLock;\n";
      Out += "thread hsWaiter {\n"
             "  sync hsLock { while (hsFlag == 0) { wait hsLock; } }\n"
             "  v0 = v0 + 1;\n"
             "}\n";
      Out += "thread hsSignaler {\n";
      Out += body(1 + R.below(3), 1);
      Out += "  sync hsLock { hsFlag = 1; notifyall hsLock; }\n"
             "}\n";
    }

    Out += "main {\n";
    for (uint32_t T = 0; T < NumThreads; ++T)
      Out += formatString("  spawn t%u;\n", T);
    if (Handshake)
      Out += "  spawn hsWaiter;\n  spawn hsSignaler;\n";
    Out += body(1 + R.below(Config.MaxStmtsPerThread / 2), 1);
    for (uint32_t T = 0; T < NumThreads; ++T)
      Out += formatString("  join t%u;\n", T);
    if (Handshake)
      Out += "  join hsWaiter;\n  join hsSignaler;\n";
    Out += "}\n";
    return Out;
  }

private:
  std::string indent(uint32_t Depth) { return std::string(2 * Depth, ' '); }

  /// A random side-effect-free expression over shared state and constants.
  std::string expr(uint32_t Depth) {
    if (Depth == 0 || R.chance(1, 2)) {
      switch (R.below(3)) {
      case 0:
        return std::to_string(R.below(4));
      case 1:
        return formatString("v%u", static_cast<uint32_t>(R.below(NumVars)));
      default:
        if (NumArrays > 0)
          return formatString("arr%u[%u]",
                              static_cast<uint32_t>(R.below(NumArrays)),
                              static_cast<uint32_t>(R.below(4)));
        return formatString("v%u", static_cast<uint32_t>(R.below(NumVars)));
      }
    }
    static const char *Ops[] = {"+", "-", "*", "==", "!=", "<", "<="};
    return formatString("(%s %s %s)", expr(Depth - 1).c_str(),
                        Ops[R.below(7)], expr(Depth - 1).c_str());
  }

  std::string stmt(uint32_t Depth) {
    std::string Pad = indent(Depth);
    switch (R.below(10)) {
    case 0:
    case 1:
    case 2: // shared scalar write
      return Pad + formatString("v%u = %s;\n",
                                static_cast<uint32_t>(R.below(NumVars)),
                                expr(1).c_str());
    case 3: // array write (index may be dynamic -> implicit branch)
      if (NumArrays > 0)
        return Pad +
               formatString("arr%u[%s %% 4] = %s;\n",
                            static_cast<uint32_t>(R.below(NumArrays)),
                            expr(0).c_str(), expr(1).c_str());
      return Pad + formatString("v%u = %s;\n",
                                static_cast<uint32_t>(R.below(NumVars)),
                                expr(1).c_str());
    case 4: { // bounded loop over a fresh local
      std::string Counter = formatString("i%u", LocalCounter++);
      uint32_t Bound = 1 + static_cast<uint32_t>(R.below(Config.MaxLoopIters));
      std::string Out =
          Pad + formatString("local %s = 0;\n", Counter.c_str());
      Out += Pad + formatString("while (%s < %u) {\n", Counter.c_str(),
                                Bound);
      Out += stmt(Depth + 1);
      Out += indent(Depth + 1) +
             formatString("%s = %s + 1;\n", Counter.c_str(),
                          Counter.c_str());
      Out += Pad + "}\n";
      return Out;
    }
    case 5: { // conditional
      std::string Out =
          Pad + formatString("if (%s) {\n", expr(1).c_str());
      Out += stmt(Depth + 1);
      if (R.chance(1, 2)) {
        Out += Pad + "} else {\n";
        Out += stmt(Depth + 1);
      }
      Out += Pad + "}\n";
      return Out;
    }
    case 6: // synchronized block
      if (NumLocks > 0) {
        std::string Out =
            Pad + formatString("sync m%u {\n",
                               static_cast<uint32_t>(R.below(NumLocks)));
        Out += stmt(Depth + 1);
        Out += Pad + "}\n";
        return Out;
      }
      [[fallthrough]];
    case 7: { // local snapshot of shared state
      std::string Name = formatString("s%u", LocalCounter++);
      return Pad + formatString("local %s = %s;\n", Name.c_str(),
                                expr(1).c_str());
    }
    case 8: // read-and-increment
      {
        uint32_t V = static_cast<uint32_t>(R.below(NumVars));
        return Pad + formatString("v%u = v%u + 1;\n", V, V);
      }
    default:
      return Pad + "skip;\n";
    }
  }

  std::string body(uint64_t Count, uint32_t Depth) {
    std::string Out;
    for (uint64_t I = 0; I < Count; ++I)
      Out += stmt(Depth);
    return Out;
  }

  Rng R;
  FuzzConfig Config;
  uint32_t NumThreads = 1, NumVars = 1, NumArrays = 0, NumLocks = 0;
  uint32_t LocalCounter = 0;
};

} // namespace

std::string rvp::fuzzProgram(uint64_t Seed, const FuzzConfig &Config) {
  return ProgramFuzzer(Seed, Config).run();
}
