//===- workloads/Synthetic.h - Synthetic real-system traces ------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized trace generators standing in for the paper's seven real
/// systems (FTPServer, Jigsaw, Derby, Sunflow, Xalan, Lusearch, Eclipse),
/// whose executions we cannot reproduce here. Each generator emits a
/// consistent recorded trace containing a controlled number of race
/// *pattern instances* of each detectability class:
///
///   plain      — unordered, unprotected: found by HB/CP/Said/RV.
///   cpOnly     — HB lock edge between non-conflicting critical sections:
///                missed by HB, found by CP/Said/RV.
///   saidOnly   — like cpOnly but the sections conflict: missed by HB/CP,
///                found by Said/RV.
///   hbNotSaid  — a pre-race read forces whole-trace inconsistency:
///                found by HB/CP/RV, missed by Said (the ftpserver
///                phenomenon the paper describes).
///   rvOnly     — Figure-1-shaped: a value read under a lock with no
///                control-flow dependence: found only by RV.
///   qcOnly     — the Section 4 array pattern: passes the quick check but
///                is not a race (solver refutes it).
///   ordered    — lock-protected conflicting pairs: filtered by lockset.
///
/// Expected counts per technique follow directly:
///   HB   = plain + hbNotSaid
///   CP   = HB + cpOnly
///   Said = plain + cpOnly + saidOnly
///   RV   = plain + cpOnly + saidOnly + hbNotSaid + rvOnly
///   QC   = RV + qcOnly
///
/// Pattern instances are interleaved in clusters padded away from window
/// boundaries, so the expected counts are exact under the default
/// windowing. Filler traffic (thread-private reads/writes/branches and
/// lock activity) brings each trace to its target size and event mix.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_WORKLOADS_SYNTHETIC_H
#define RVP_WORKLOADS_SYNTHETIC_H

#include "trace/Trace.h"
#include "trace/Window.h"

#include <string>
#include <vector>

namespace rvp {

struct SyntheticSpec {
  std::string Name = "synthetic";
  uint32_t Workers = 8;
  uint64_t TargetEvents = 20000;
  uint32_t PlainRaces = 0;
  uint32_t CpOnlyRaces = 0;
  uint32_t SaidOnlyRaces = 0;
  uint32_t HbNotSaidRaces = 0;
  uint32_t RvOnlyRaces = 0;
  uint32_t QcOnlyPairs = 0;
  uint32_t OrderedPairs = 0;
  /// Atomicity-violation patterns (a locked read-modify-write intruded by
  /// an unlocked remote write). NOTE: each instance also contributes two
  /// plain race signatures; the Table 1 specs therefore leave this at 0.
  uint32_t AtomicityPairs = 0;
  /// Opposite-order lock nestings (one predicted deadlock each; no races).
  uint32_t DeadlockCycles = 0;
  /// Percent of filler events that are branches / lock operations.
  uint32_t BranchPercent = 30;
  uint32_t SyncPercent = 14;
  /// Clusters of patterns are padded away from multiples of this window
  /// size so no pattern straddles a boundary.
  uint32_t AlignWindow = DefaultWindowSize;
  /// When nonzero, up to this much filler is inserted between consecutive
  /// events of a pattern, stretching each race across a wide span (used by
  /// the window-size ablation to make boundary losses visible).
  uint32_t PatternSpread = 0;
  uint64_t Seed = 1;

  uint32_t expectedHb() const {
    return PlainRaces + HbNotSaidRaces + 2 * AtomicityPairs;
  }
  uint32_t expectedCp() const { return expectedHb() + CpOnlyRaces; }
  uint32_t expectedSaid() const {
    return PlainRaces + CpOnlyRaces + SaidOnlyRaces + 2 * AtomicityPairs;
  }
  uint32_t expectedRv() const {
    return PlainRaces + CpOnlyRaces + SaidOnlyRaces + HbNotSaidRaces +
           RvOnlyRaces + 2 * AtomicityPairs;
  }
  uint32_t expectedQc() const {
    return expectedRv() + QcOnlyPairs + 2 * AtomicityPairs;
  }
  uint32_t expectedAtomicity() const { return AtomicityPairs; }
  uint32_t expectedDeadlocks() const { return DeadlockCycles; }
};

/// Generates the trace for \p Spec (finalized, strictly consistent).
Trace generateSynthetic(const SyntheticSpec &Spec);

/// The seven real-system rows of Table 1, with pattern counts calibrated
/// to the paper's per-technique race counts (see EXPERIMENTS.md).
std::vector<SyntheticSpec> realSystemSpecs();

/// Looks up one real-system spec by name ("ftpserver", "jigsaw", "derby",
/// "sunflow", "xalan", "lusearch", "eclipse"); returns the default spec
/// when unknown.
SyntheticSpec realSystemSpec(const std::string &Name);

} // namespace rvp

#endif // RVP_WORKLOADS_SYNTHETIC_H
