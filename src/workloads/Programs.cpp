//===- workloads/Programs.cpp - MiniRV benchmark programs -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Programs.h"

#include "support/StringUtils.h"

using namespace rvp;

std::string rvp::figure1Program() {
  return R"(
// Figure 1 of the paper. The race is between `x = 1` (t1) and `r2 = x`
// (t2); the authentication of z at the end depends on it.
shared x; shared y; shared z;
lock l;
thread t2 {
  local r1; local r2;
  sync l { r1 = y; }
  r2 = x;
  if (r1 == r2) { z = 1; }
}
main {
  spawn t2;
  sync l { x = 1; y = 1; }
  join t2;
  local r3 = z;
  assert r3 != 0;
}
)";
}

std::string rvp::criticalProgram() {
  return R"(
// IBM-Contest-style "critical": a lost update because t1 skips the lock.
shared c; lock l;
thread t1 { local tmp = c; c = tmp + 1; }
thread t2 { sync l { local tmp = c; c = tmp + 1; } }
main {
  spawn t1; spawn t2;
  join t1; join t2;
  assert c >= 1;
}
)";
}

std::string rvp::accountProgram() {
  return R"(
// IBM-Contest-style "account": the deposit forgets the lock.
shared balance = 100; lock l;
thread depositor { local b = balance; balance = b + 50; }
thread withdrawer { sync l { local b = balance; balance = b - 30; } }
main {
  spawn depositor; spawn withdrawer;
  join depositor; join withdrawer;
  assert balance >= 70;
}
)";
}

std::string rvp::airlineProgram(int Tickets) {
  return formatString(R"(
// IBM-Contest-style "airline": agents check availability outside the lock.
shared tickets = %d; shared sold; lock l;
thread agent1 {
  local stop = 0;
  while (stop == 0) {
    local t = tickets;
    if (t > 0) { sync l { tickets = tickets - 1; sold = sold + 1; } }
    else { stop = 1; }
  }
}
thread agent2 {
  local stop = 0;
  while (stop == 0) {
    local t = tickets;
    if (t > 0) { sync l { tickets = tickets - 1; sold = sold + 1; } }
    else { stop = 1; }
  }
}
main {
  spawn agent1; spawn agent2;
  join agent1; join agent2;
  assert sold >= %d;
}
)",
                      Tickets, Tickets);
}

std::string rvp::pingpongProgram(int Rounds) {
  return formatString(R"(
// IBM-Contest-style "pingpong": an unprotected shared counter.
shared ball;
thread ping {
  local i = 0;
  while (i < %d) { local b = ball; ball = b + 1; i = i + 1; }
}
thread pong {
  local i = 0;
  while (i < %d) { local b = ball; ball = b + 1; i = i + 1; }
}
main { spawn ping; spawn pong; join ping; join pong; }
)",
                      Rounds, Rounds);
}

std::string rvp::boundedBufferProgram(int Items) {
  return formatString(R"(
// IBM-Contest-style "boundedbuffer": a correct wait/notify circular
// buffer, plus one racy progress peek in main.
shared buf[4]; shared count; shared head; shared tail;
shared produced; lock m;
thread producer {
  local i = 0;
  while (i < %d) {
    sync m {
      while (count == 4) { wait m; }
      buf[tail] = i;
      tail = (tail + 1) %% 4;
      count = count + 1;
      notifyall m;
    }
    i = i + 1;
  }
  produced = 1;
}
thread consumer {
  local j = 0; local v;
  while (j < %d) {
    sync m {
      while (count == 0) { wait m; }
      v = buf[head];
      head = (head + 1) %% 4;
      count = count - 1;
      notifyall m;
    }
    j = j + 1;
  }
}
main {
  spawn producer; spawn consumer;
  local peek = produced;
  join producer; join consumer;
  assert count == 0;
}
)",
                      Items, Items);
}

std::string rvp::bubblesortProgram() {
  return R"(
// IBM-Contest-style "bubblesort": sorting passes over overlapping
// segments; the overlap region races.
shared a[6]; lock l;
thread left {
  local i = 0;
  while (i < 3) {
    local x = a[i]; local y = a[i + 1];
    if (x > y) { a[i] = y; a[i + 1] = x; }
    i = i + 1;
  }
}
thread right {
  local i = 2;
  while (i < 5) {
    local x = a[i]; local y = a[i + 1];
    if (x > y) { a[i] = y; a[i + 1] = x; }
    i = i + 1;
  }
}
main {
  a[0] = 5; a[1] = 4; a[2] = 3; a[3] = 2; a[4] = 1; a[5] = 0;
  spawn left; spawn right;
  join left; join right;
}
)";
}

std::string rvp::bufwriterProgram(int Writes) {
  return formatString(R"(
// IBM-Contest-style "bufwriter": appends are locked, but the flusher
// peeks the length and the last element without the lock.
shared data[8]; shared len; lock l;
thread writer1 {
  local i = 0;
  while (i < %d) {
    sync l { data[len] = i; len = len + 1; }
    i = i + 1;
  }
}
thread writer2 {
  local i = 0;
  while (i < %d) {
    sync l { data[len] = i + 100; len = len + 1; }
    i = i + 1;
  }
}
thread flusher {
  local n = len;
  if (n > 0) { local last = data[n - 1]; assert last >= 0; }
}
main {
  spawn writer1; spawn writer2; spawn flusher;
  join writer1; join writer2; join flusher;
  assert len >= 0;
}
)",
                      Writes, Writes);
}

std::string rvp::mergesortProgram() {
  return R"(
// IBM-Contest-style "mergesort": disjoint halves + a fork/join-ordered
// merge. Fully synchronized: no races.
shared a[8]; shared b[8]; lock l;
thread sortLeft {
  local i = 0;
  while (i < 3) {
    local j = 0;
    while (j < 3 - i) {
      local x = a[j]; local y = a[j + 1];
      if (x > y) { a[j] = y; a[j + 1] = x; }
      j = j + 1;
    }
    i = i + 1;
  }
}
thread sortRight {
  local i = 0;
  while (i < 3) {
    local j = 4;
    while (j < 7 - i) {
      local x = a[j]; local y = a[j + 1];
      if (x > y) { a[j] = y; a[j + 1] = x; }
      j = j + 1;
    }
    i = i + 1;
  }
}
main {
  a[0] = 7; a[1] = 3; a[2] = 5; a[3] = 1;
  a[4] = 6; a[5] = 2; a[6] = 4; a[7] = 0;
  spawn sortLeft; spawn sortRight;
  join sortLeft; join sortRight;
  local i = 0; local j = 4; local k = 0;
  while (k < 8) {
    local takeLeft = 0;
    if (i < 4) {
      if (j >= 8) { takeLeft = 1; }
      else { if (a[i] <= a[j]) { takeLeft = 1; } }
    }
    if (takeLeft == 1) { b[k] = a[i]; i = i + 1; }
    else { b[k] = a[j]; j = j + 1; }
    k = k + 1;
  }
  assert b[0] <= b[7];
}
)";
}

std::string rvp::moldynProgram(int Particles, int Steps) {
  return formatString(R"(
// Java-Grande-style "moldyn": two workers update disjoint particle
// ranges, accumulate energy under a lock, and bump a racy step counter.
shared pos[%d]; shared vel[%d]; shared energy; shared steps; lock l;
thread worker1 {
  local s = 0;
  while (s < %d) {
    local i = 0;
    while (i < %d) {
      local p = pos[i]; local v = vel[i];
      pos[i] = p + v; vel[i] = v + 1;
      sync l { energy = energy + p * p; }
      i = i + 1;
    }
    steps = steps + 1;
    s = s + 1;
  }
}
thread worker2 {
  local s = 0;
  while (s < %d) {
    local i = %d;
    while (i < %d) {
      local p = pos[i]; local v = vel[i];
      pos[i] = p + v; vel[i] = v + 1;
      sync l { energy = energy + p * p; }
      i = i + 1;
    }
    steps = steps + 1;
    s = s + 1;
  }
}
main {
  spawn worker1; spawn worker2;
  join worker1; join worker2;
  assert steps >= 1;
}
)",
                      Particles, Particles, Steps, Particles / 2, Steps,
                      Particles / 2, Particles);
}

std::string rvp::montecarloProgram(int Tasks) {
  return formatString(R"(
// Java-Grande-style "montecarlo": disjoint result slots, racy aggregate.
shared results[%d]; shared sum; shared doneCount; lock l;
thread sim1 {
  local t = 0;
  while (t < %d) {
    local r = (t * 7 + 3) %% 11;
    results[t] = r;
    sync l { sum = sum + r; }
    t = t + 1;
  }
  doneCount = doneCount + 1;
}
thread sim2 {
  local t = %d;
  while (t < %d) {
    local r = (t * 7 + 3) %% 11;
    results[t] = r;
    sync l { sum = sum + r; }
    t = t + 1;
  }
  doneCount = doneCount + 1;
}
main {
  spawn sim1; spawn sim2;
  join sim1; join sim2;
  assert doneCount >= 1;
}
)",
                      Tasks, Tasks / 2, Tasks / 2, Tasks);
}

std::string rvp::raytracerProgram(int Rows) {
  return formatString(R"(
// Java-Grande-style "raytracer": row-partitioned rendering with the
// classic unsynchronized checksum accumulation.
shared image[%d]; shared checksum; lock l;
thread render1 {
  local y = 0;
  while (y < %d) {
    local c = y * 13 %% 7;
    image[y] = c;
    local k = checksum; checksum = k + c;
    y = y + 1;
  }
}
thread render2 {
  local y = %d;
  while (y < %d) {
    local c = y * 13 %% 7;
    image[y] = c;
    local k = checksum; checksum = k + c;
    y = y + 1;
  }
}
main {
  spawn render1; spawn render2;
  join render1; join render2;
  assert checksum >= 0;
}
)",
                      Rows, Rows / 2, Rows / 2, Rows);
}

std::string rvp::staticflowProgram() {
  return R"(
// Static-tier exerciser. `gate` is read-only, so the guard on t1's write
// is a provably constant branch (value-range fold drops it from the cf
// encodings); t1's own fork/join of `helper` orders every `hand` access,
// which only the static MHB stage can prune — main's top-level intervals
// see helper as always-live. The one real race is x: t1 vs t2.
shared x; shared gate = 1; shared hand;
thread helper { local h = hand; hand = h + 1; }
thread t1 {
  hand = 1;
  spawn helper;
  join helper;
  local h = hand;
  if (gate == 1) { x = h; }
}
thread t2 { x = 2; }
main {
  spawn t1; spawn t2;
  join t1; join t2;
  assert x != 0;
}
)";
}
