//===- workloads/Fuzzer.h - Random MiniRV program generator ------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, always-terminating MiniRV programs for the property
/// test suite: the detectors are run on traces of these programs and their
/// containment invariants (HB ⊆ CP ⊆ RV, Said ⊆ RV), witness validity,
/// and solver-backend agreement are asserted for every seed.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_WORKLOADS_FUZZER_H
#define RVP_WORKLOADS_FUZZER_H

#include <cstdint>
#include <string>

namespace rvp {

struct FuzzConfig {
  uint32_t MaxThreads = 3;   ///< worker threads besides main
  uint32_t MaxVars = 3;      ///< shared scalars
  uint32_t MaxArrays = 1;    ///< shared arrays (size 4)
  uint32_t MaxLocks = 2;
  uint32_t MaxStmtsPerThread = 8;
  uint32_t MaxLoopIters = 3; ///< loops count up to this bound
  bool UseVolatile = true;
  /// Occasionally append a deadlock-free wait/notify handshake pair.
  bool UseWaitNotify = true;
};

/// Produces the source of a random program for \p Seed. The program
/// always terminates (loops are bounded by local counters) and never
/// deadlocks (locks are only taken via `sync` blocks, one at a time).
std::string fuzzProgram(uint64_t Seed,
                        const FuzzConfig &Config = FuzzConfig());

} // namespace rvp

#endif // RVP_WORKLOADS_FUZZER_H
