//===- detect/WindowEncoding.cpp - Shared per-window encoding state ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/WindowEncoding.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace rvp;

WindowEncoding::WindowEncoding(const Trace &T, Span S, const EventClosure &Mhb,
                               const std::vector<Value> &Initial)
    : T(T), Window(S), Mhb(Mhb) {
  InitialValues.assign(T.numVars(), 0);
  for (size_t I = 0; I < Initial.size() && I < InitialValues.size(); ++I)
    InitialValues[I] = Initial[I];

  ThreadEvents.resize(T.numThreads());
  ThreadBranches.resize(T.numThreads());
  ThreadReads.resize(T.numThreads());
  VarWrites.resize(T.numVars());

  struct WaitTriple {
    EventId Release = InvalidEvent;
    EventId Notify = InvalidEvent;
    EventId Acquire = InvalidEvent;
  };
  std::unordered_map<uint32_t, WaitTriple> TriplesByMatch;
  for (EventId Id = S.Begin; Id < S.End; ++Id) {
    const Event &E = T[Id];
    ThreadEvents[E.Tid].push_back(Id);
    switch (E.Kind) {
    case EventKind::Branch:
      ThreadBranches[E.Tid].push_back(Id);
      break;
    case EventKind::Read:
      ThreadReads[E.Tid].push_back(Id);
      AllReads.push_back(Id);
      break;
    case EventKind::Write:
      VarWrites[E.Target].push_back(Id);
      break;
    case EventKind::Release:
      if (E.Aux != 0)
        TriplesByMatch[E.Aux].Release = Id;
      break;
    case EventKind::Acquire:
      if (E.Aux != 0)
        TriplesByMatch[E.Aux].Acquire = Id;
      break;
    case EventKind::Notify:
      if (E.Aux != 0)
        TriplesByMatch[E.Aux].Notify = Id;
      break;
    default:
      break;
    }
  }

  // Φ_mhb atoms, in encodeMhb's emission order: per-thread root anchor and
  // program-order chain, then fork/join, then wait/notify triples.
  for (const std::vector<EventId> &Events : ThreadEvents) {
    if (Events.empty())
      continue;
    MhbEdges.emplace_back(RootVar, Events.front());
    for (size_t I = 0; I + 1 < Events.size(); ++I)
      MhbEdges.emplace_back(Events[I], Events[I + 1]);
  }
  // Cross-thread edges are mirrored into CrossEdges: the sliced encoder
  // keeps all of them and compresses only the per-thread chains.
  for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
    EventId Fork = T.forkOf(Tid);
    EventId Begin = T.beginOf(Tid);
    if (Fork != InvalidEvent && Begin != InvalidEvent &&
        Window.contains(Fork) && Window.contains(Begin)) {
      MhbEdges.emplace_back(Fork, Begin);
      CrossEdges.emplace_back(Fork, Begin);
    }
    EventId End = T.endOf(Tid);
    EventId Join = T.joinOf(Tid);
    if (End != InvalidEvent && Join != InvalidEvent &&
        Window.contains(End) && Window.contains(Join)) {
      MhbEdges.emplace_back(End, Join);
      CrossEdges.emplace_back(End, Join);
    }
  }
  // wait/notify: release(wait) < notify < acquire(wait) (Section 4).
  for (const auto &[Match, W] : TriplesByMatch) {
    (void)Match;
    if (W.Notify == InvalidEvent)
      continue;
    if (W.Release != InvalidEvent) {
      MhbEdges.emplace_back(W.Release, W.Notify);
      CrossEdges.emplace_back(W.Release, W.Notify);
    }
    if (W.Acquire != InvalidEvent) {
      MhbEdges.emplace_back(W.Notify, W.Acquire);
      CrossEdges.emplace_back(W.Notify, W.Acquire);
    }
  }

  // Φ_lock descriptors, in encodeLock's emission order. Exclusions are
  // applied at emission time via the section acquire tags, so the list
  // carries every cross-thread section pair.
  struct SpanPair {
    EventId Acq = InvalidEvent; ///< InvalidEvent when outside the window
    EventId Rel = InvalidEvent;
    EventId SectionAcq = InvalidEvent; ///< trace-level acquire id
    ThreadId Tid = 0;
    uint32_t SectionId = UINT32_MAX; ///< assigned on first constraint
  };
  // Window-clipped spans of the sections that end up in a constraint, for
  // the EventSections index below.
  struct SectionSpan {
    EventId Lo = InvalidEvent;
    EventId Hi = InvalidEvent;
    ThreadId Tid = 0;
  };
  std::vector<SectionSpan> Sections;
  auto sectionIdOf = [&](SpanPair &SP) -> uint32_t {
    if (SP.SectionId != UINT32_MAX)
      return SP.SectionId;
    SP.SectionId = static_cast<uint32_t>(Sections.size());
    SectionSpan Span;
    Span.Lo = SP.Acq != InvalidEvent ? SP.Acq : Window.Begin;
    Span.Hi = SP.Rel != InvalidEvent ? SP.Rel : Window.End - 1;
    Span.Tid = SP.Tid;
    Sections.push_back(Span);
    SectionConstraints.emplace_back();
    return SP.SectionId;
  };
  auto linkSections = [&](SpanPair &P, SpanPair &Q) {
    uint32_t LcIndex = static_cast<uint32_t>(LockConstraints.size() - 1);
    SectionConstraints[sectionIdOf(P)].push_back(LcIndex);
    SectionConstraints[sectionIdOf(Q)].push_back(LcIndex);
  };
  for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
    std::vector<SpanPair> Pairs;
    for (const LockPair &P : T.lockPairsOf(Lock)) {
      SpanPair SP;
      SP.Tid = P.Tid;
      SP.SectionAcq = P.AcquireId;
      if (P.AcquireId != InvalidEvent && Window.contains(P.AcquireId))
        SP.Acq = P.AcquireId;
      if (P.ReleaseId != InvalidEvent && Window.contains(P.ReleaseId))
        SP.Rel = P.ReleaseId;
      if (SP.Acq != InvalidEvent || SP.Rel != InvalidEvent)
        Pairs.push_back(SP);
    }
    for (size_t I = 0; I < Pairs.size(); ++I) {
      for (size_t J = I + 1; J < Pairs.size(); ++J) {
        SpanPair &P = Pairs[I];
        SpanPair &Q = Pairs[J];
        // Same-thread critical sections are already program-ordered.
        if (P.Tid == Q.Tid)
          continue;
        LockConstraint LC;
        LC.SectionAcqP = P.SectionAcq;
        LC.SectionAcqQ = Q.SectionAcq;
        bool PComplete = P.Acq != InvalidEvent && P.Rel != InvalidEvent;
        bool QComplete = Q.Acq != InvalidEvent && Q.Rel != InvalidEvent;
        if (PComplete && QComplete) {
          LC.Mutex = true;
          LC.RelP = P.Rel;
          LC.AcqQ = Q.Acq;
          LC.RelQ = Q.Rel;
          LC.AcqP = P.Acq;
          LockConstraints.push_back(LC);
          linkSections(P, Q);
          continue;
        }
        // A section missing its release holds the lock to the window end:
        // every other section must come first. A section missing its
        // acquire held the lock from the window start: it must come first.
        if (P.Rel == InvalidEvent && Q.Rel == InvalidEvent)
          continue; // cannot both hold to the end; unreachable on recorded
                    // traces, and no finite constraint expresses it
        if (P.Rel == InvalidEvent) {
          if (Q.Rel != InvalidEvent && P.Acq != InvalidEvent) {
            LC.RelP = Q.Rel;
            LC.AcqQ = P.Acq;
            LockConstraints.push_back(LC);
            linkSections(P, Q);
          }
          continue;
        }
        if (Q.Rel == InvalidEvent) {
          if (Q.Acq != InvalidEvent) {
            LC.RelP = P.Rel;
            LC.AcqQ = Q.Acq;
            LockConstraints.push_back(LC);
            linkSections(P, Q);
          }
          continue;
        }
        // P or Q started before the window (release without acquire):
        // that section must be first.
        if (P.Acq == InvalidEvent) {
          LC.RelP = P.Rel;
          LC.AcqQ = Q.Acq;
          LockConstraints.push_back(LC);
          linkSections(P, Q);
          continue;
        }
        if (Q.Acq == InvalidEvent) {
          LC.RelP = Q.Rel;
          LC.AcqQ = P.Acq;
          LockConstraints.push_back(LC);
          linkSections(P, Q);
        }
      }
    }
  }

  // Invert the section spans into a per-event index so the cone fixpoint
  // can find the constraints an event activates in O(enclosing sections).
  EventSections.resize(S.End - S.Begin);
  for (uint32_t Sid = 0; Sid < Sections.size(); ++Sid) {
    if (SectionConstraints[Sid].empty())
      continue;
    const SectionSpan &Span = Sections[Sid];
    const std::vector<EventId> &Events = ThreadEvents[Span.Tid];
    auto It = std::lower_bound(Events.begin(), Events.end(), Span.Lo);
    for (; It != Events.end() && *It <= Span.Hi; ++It)
      EventSections[*It - Window.Begin].push_back(Sid);
  }

  // Read-consistency skeletons (the COP-invariant part of the Φ_value
  // disjunction readValueFormula emits), indexed by window offset.
  Reads.resize(S.End - S.Begin);
  for (EventId R : AllReads) {
    const Event &Read = T[R];
    VarId Var = Read.Target;
    Value Wanted = Read.Data;
    ReadInfo Info;

    for (EventId W : VarWrites[Var]) {
      // A write that must happen after the read can never interfere
      // (its order variable always exceeds the read's).
      if (W == R || Mhb.ordered(R, W))
        continue;
      Info.Interfering.push_back(W);
    }

    for (EventId W : Info.Interfering) {
      if (T[W].Data != Wanted)
        continue;
      // Paper pruning: skip candidate w1 when some other write w2
      // satisfies w1 ≼ w2 ≼ r — the read can never observe w1.
      bool Shadowed = false;
      for (EventId W2 : Info.Interfering) {
        if (W2 != W && Mhb.ordered(W, W2) && Mhb.ordered(W2, R)) {
          Shadowed = true;
          break;
        }
      }
      if (Shadowed)
        continue;
      ReadCandidate Cand;
      Cand.Write = W;
      for (EventId W2 : Info.Interfering) {
        if (W2 == W)
          continue;
        // w2 ≼ w never interferes: it is always before w.
        if (Mhb.ordered(W2, W))
          continue;
        Cand.Others.push_back(W2);
      }
      Info.Candidates.push_back(std::move(Cand));
    }

    if (Wanted == InitialValues[Var]) {
      bool SomeWriteMustPrecede = false;
      for (EventId W : Info.Interfering) {
        if (Mhb.ordered(W, R)) {
          SomeWriteMustPrecede = true;
          break;
        }
      }
      Info.InitialOk = !SomeWriteMustPrecede;
    }

    Reads[R - Window.Begin] = std::move(Info);
  }

  if (Telemetry::enabled()) {
    // Container-footprint estimate: the index vectors plus the per-read
    // skeletons. An estimate is enough — the gauge tracks growth across
    // windows, not allocator-exact bytes.
    uint64_t Bytes = MhbEdges.size() * sizeof(MhbEdges[0]) +
                     CrossEdges.size() * sizeof(CrossEdges[0]) +
                     LockConstraints.size() * sizeof(LockConstraint);
    for (const std::vector<EventId> &V : ThreadEvents)
      Bytes += V.size() * sizeof(EventId);
    for (const std::vector<EventId> &V : ThreadBranches)
      Bytes += V.size() * sizeof(EventId);
    for (const std::vector<EventId> &V : ThreadReads)
      Bytes += V.size() * sizeof(EventId);
    for (const std::vector<EventId> &V : VarWrites)
      Bytes += V.size() * sizeof(EventId);
    Bytes += AllReads.size() * sizeof(EventId);
    for (const std::vector<uint32_t> &V : EventSections)
      Bytes += sizeof(V) + V.size() * sizeof(uint32_t);
    for (const std::vector<uint32_t> &V : SectionConstraints)
      Bytes += sizeof(V) + V.size() * sizeof(uint32_t);
    for (const ReadInfo &Info : Reads) {
      Bytes += sizeof(Info);
      Bytes += Info.Interfering.size() * sizeof(EventId);
      for (const ReadCandidate &C : Info.Candidates)
        Bytes += sizeof(C) + C.Others.size() * sizeof(EventId);
    }
    Mem.charge(Bytes);
  }
}

const WindowEncoding::ReadInfo &WindowEncoding::readInfo(EventId R) const {
  assert(Window.contains(R) && "read-consistency query outside the window");
  return Reads[R - Window.Begin];
}
