//===- detect/Lockset.h - Locksets and the hybrid quick check ----*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eraser-style lockset computation plus the *quick check* of Section 4: a
/// hybrid of lockset and a weak form of happens-before (MHB only — no lock
/// edges, as in PECAN) that cheaply filters conflicting operation pairs
/// before any constraints are built. The quick check is deliberately
/// unsound (it over-approximates the set of real races); every COP that
/// passes it still goes through the sound SMT-based analysis.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_LOCKSET_H
#define RVP_DETECT_LOCKSET_H

#include "detect/Closure.h"
#include "detect/Cop.h"
#include "trace/Trace.h"

#include <vector>

namespace rvp {

/// Computes, for every event in \p S, the set of locks held by its thread
/// at that point (as a sorted vector of LockIds; reentrancy is already
/// filtered by the recorder).
class LocksetIndex {
public:
  LocksetIndex(const Trace &T, Span S);

  /// Locks held at event \p Id (valid for access events).
  const std::vector<LockId> &heldAt(EventId Id) const {
    return Held[Id - Window.Begin];
  }

  /// True iff the two events share no lock.
  bool disjoint(EventId A, EventId B) const;

private:
  Span Window;
  std::vector<std::vector<LockId>> Held;
};

/// The hybrid lockset + weak-HB filter (Section 4). \p Mhb must be the
/// MHB closure of the same window.
class QuickCheck {
public:
  QuickCheck(const Trace &T, Span S, const EventClosure &Mhb)
      : Locksets(T, S), Mhb(Mhb) {}

  /// True iff \p C is a *potential* race: disjoint locksets and not
  /// MHB-ordered.
  bool pass(const Cop &C) const {
    return Locksets.disjoint(C.First, C.Second) &&
           !Mhb.ordered(C.First, C.Second) &&
           !Mhb.ordered(C.Second, C.First);
  }

  /// Which component rejected \p C — "lockset" when a common lock protects
  /// the pair, "quick-check" when weak HB ordered it. Only meaningful when
  /// pass() returned false; used for the per-COP prune provenance in trace
  /// events (docs/OBSERVABILITY.md).
  const char *failStage(const Cop &C) const {
    return Locksets.disjoint(C.First, C.Second) ? "quick-check" : "lockset";
  }

private:
  LocksetIndex Locksets;
  const EventClosure &Mhb;
};

} // namespace rvp

#endif // RVP_DETECT_LOCKSET_H
