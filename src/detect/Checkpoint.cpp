//===- detect/Checkpoint.cpp - Window checkpoint/resume -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Checkpoint.h"

#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace rvp;

uint64_t rvp::checkpointHash(std::string_view Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

CheckpointStore::CheckpointStore(std::string Dir, uint64_t Fingerprint)
    : Dir(std::move(Dir)), Fingerprint(Fingerprint) {
  if (this->Dir.empty())
    return;
  std::error_code Ec;
  std::filesystem::create_directories(this->Dir, Ec);
  if (Ec)
    this->Dir.clear(); // unusable directory: run without checkpoints
}

std::string CheckpointStore::fileFor(uint64_t Index) const {
  return formatString("%s/window-%llu.ckpt", Dir.c_str(),
                      static_cast<unsigned long long>(Index));
}

int64_t CheckpointStore::loadLatest(std::string &Payload,
                                    CheckpointLoad *Outcome) const {
  Payload.clear();
  if (Outcome)
    *Outcome = CheckpointLoad::None;
  if (!enabled())
    return -1;
  int64_t Best = -1;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec)) {
    std::string Name = Entry.path().filename().string();
    if (!startsWith(Name, "window-") || Name.size() <= 12 ||
        Name.substr(Name.size() - 5) != ".ckpt")
      continue;
    int64_t Index = 0;
    if (!parseInt(std::string_view(Name).substr(7, Name.size() - 12), Index))
      continue;
    if (Index > Best)
      Best = Index;
  }
  if (Best < 0)
    return -1;

  std::ifstream In(fileFor(static_cast<uint64_t>(Best)),
                   std::ios::in | std::ios::binary);
  if (!In)
    return -1;
  std::string Header;
  if (!std::getline(In, Header))
    return -1;
  std::vector<std::string_view> Parts = split(trim(Header), ' ');
  if (Parts.size() != 3 || Parts[0] != "rvpckpt" || Parts[1] != "1")
    return -1; // unknown format/version: start from scratch
  std::string Stamp =
      formatString("%016llx", static_cast<unsigned long long>(Fingerprint));
  if (Parts[2] != Stamp) {
    // Well-formed snapshot from a different trace or flag set. Callers
    // decide whether that is fatal (the drivers make it exit 2).
    if (Outcome)
      *Outcome = CheckpointLoad::FingerprintMismatch;
    return -1;
  }
  std::ostringstream Rest;
  Rest << In.rdbuf();
  Payload = Rest.str();
  if (Outcome)
    *Outcome = CheckpointLoad::Loaded;
  return Best;
}

void CheckpointStore::refuseMismatch(const CheckpointStore &Store) {
  std::fprintf(stderr,
               "error: checkpoint directory '%s' holds snapshots from a "
               "different analysis (the trace or the detection flags "
               "changed); rerun with the original flags or point "
               "--checkpoint at a fresh directory\n",
               Store.directory().c_str());
  std::exit(ExitUsage);
}

bool CheckpointStore::save(uint64_t Index, const std::string &Payload) const {
  if (!enabled())
    return false;
  std::string Final = fileFor(Index);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::out | std::ios::binary |
                               std::ios::trunc);
    if (!Out)
      return false;
    Out << formatString("rvpckpt 1 %016llx\n",
                        static_cast<unsigned long long>(Fingerprint))
        << Payload;
    Out.flush();
    if (!Out)
      return false;
  }
  // rename() is atomic within a filesystem: a reader sees the old file or
  // the new one, never a torn write.
  if (std::rename(Tmp.c_str(), Final.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
