//===- detect/Stream.cpp - Incremental window-at-a-time detection ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Stream.h"

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "trace/Window.h"

using namespace rvp;

bool rvp::parseStreamProperty(std::string_view Name, StreamProperty &Out) {
  if (Name == "race")
    Out = StreamProperty::Race;
  else if (Name == "atomicity")
    Out = StreamProperty::Atomicity;
  else if (Name == "deadlock")
    Out = StreamProperty::Deadlock;
  else
    return false;
  return true;
}

void StreamDetector::feed(std::string_view Text) {
  if (Run.Finished || Text.empty())
    return;
  // Chunks can end mid-line; only complete lines move into the parse
  // buffer, so the parser never sees a torn event.
  Run.Pending.append(Text);
  size_t Cut = Run.Pending.rfind('\n');
  if (Cut == std::string::npos)
    return;
  Run.Buffer.append(Run.Pending, 0, Cut + 1);
  Run.Pending.erase(0, Cut + 1);
  Run.Dirty = true;
}

bool StreamDetector::ensureParsed(std::string &Error) {
  if (!Run.Dirty && Run.Parsed)
    return true;
  // Re-parsing the whole prefix keeps interning byte-identical to the
  // batch parse of the full trace (intern order is prefix-stable), which
  // is what makes streamed window K equal batch window K.
  std::string ParseError;
  TraceParseStats Stats;
  std::optional<Trace> T =
      parseTraceText(Run.Buffer, ParseError, Opts.Parse, &Stats);
  if (!T) {
    Error = ParseError;
    return false;
  }
  Run.SkippedEvents = Stats.SkippedEvents;
  Run.Parsed = std::move(T);
  Run.Dirty = false;
  return true;
}

uint32_t StreamDetector::windowSize() const { return Opts.Detect.WindowSize; }

uint64_t StreamDetector::totalWindows(const Trace &T, bool Final) const {
  uint32_t WS = windowSize();
  if (WS == 0) // one window over the whole trace: only FIN closes it
    return Final ? 1 : 0;
  if (Final)
    return (T.size() + WS - 1) / WS;
  return T.size() / WS; // full windows only; the tail waits for FIN
}

uint64_t StreamDetector::pendingWindows() {
  std::string Error;
  if (!ensureParsed(Error))
    return 0;
  uint64_t Total = totalWindows(*Run.Parsed, Run.Finished);
  return Total > Run.WindowsDone ? Total - Run.WindowsDone : 0;
}

bool StreamDetector::windowReady() {
  if (Run.Finished)
    return false;
  std::string Error;
  if (!ensureParsed(Error))
    return false; // the parse error surfaces from the next step()
  return Run.WindowsDone < totalWindows(*Run.Parsed, false);
}

bool StreamDetector::step(StreamStep &Out, bool Degrade,
                          std::string &Error) {
  return analyzeOne(Out, Degrade, /*Final=*/Run.Finished, Error);
}

bool StreamDetector::analyzeOne(StreamStep &Out, bool Degrade, bool Final,
                                std::string &Error) {
  Error.clear();
  if (!ensureParsed(Error))
    return false;
  const Trace &T = *Run.Parsed;
  if (Run.WindowsDone >= totalWindows(T, Final))
    return false;

  DetectorOptions D = Opts.Detect;
  D.ResumeState = &Run.State;
  D.SaveState = &Run.State;
  D.MaxWindows = 1;
  D.FlushTelemetry = false; // exactly once per session, in finish()
  D.CheckpointDir.clear();  // the daemon checkpoints Run.State itself
  bool Degraded = Degrade && Opts.Property == StreamProperty::Race;
  if (Degraded) {
    // Load shedding: answer this window from the linear WCP tier. The
    // verdicts are weakly sound (docs/TIERS.md) and carry no witnesses;
    // the caller marks the window `degraded` so consumers know.
    D.Tier = DetectTier::Vc;
    D.CheckTiers = false;
    D.CollectWitnesses = false;
  }

  Out = StreamStep();
  Out.Window = Run.WindowsDone;
  Out.Degraded = Degraded;
  size_t PrevFindings = Run.Findings, PrevUnknowns = Run.Unknowns;

  switch (Opts.Property) {
  case StreamProperty::Race: {
    DetectionResult R = detectRaces(T, Opts.Tech, D);
    for (size_t I = PrevFindings; I < R.Races.size(); ++I)
      Out.Delta += renderRaceLine(T, R.Races[I], Opts.Render);
    for (size_t I = PrevUnknowns; I < R.Unknowns.size(); ++I)
      Out.Delta += renderUnknownLine(R.Unknowns[I]);
    Run.Findings = R.Races.size();
    Run.Unknowns = R.Unknowns.size();
    Run.Stats = R.Stats;
    break;
  }
  case StreamProperty::Atomicity: {
    AtomicityResult R = detectAtomicityViolations(T, D);
    for (size_t I = PrevFindings; I < R.Violations.size(); ++I)
      Out.Delta += renderAtomicityLine(R.Violations[I]);
    for (size_t I = PrevUnknowns; I < R.Unknowns.size(); ++I)
      Out.Delta += renderUnknownLine(R.Unknowns[I]);
    Run.Findings = R.Violations.size();
    Run.Unknowns = R.Unknowns.size();
    Run.Stats = R.Stats;
    break;
  }
  case StreamProperty::Deadlock: {
    DeadlockResult R = detectDeadlocks(T, D);
    for (size_t I = PrevFindings; I < R.Deadlocks.size(); ++I)
      Out.Delta += renderDeadlockLine(T, R.Deadlocks[I]);
    for (size_t I = PrevUnknowns; I < R.Unknowns.size(); ++I)
      Out.Delta += renderUnknownLine(R.Unknowns[I]);
    Run.Findings = R.Deadlocks.size();
    Run.Unknowns = R.Unknowns.size();
    Run.Stats = R.Stats;
    break;
  }
  }
  Out.NewFindings = Run.Findings > PrevFindings
                        ? Run.Findings - PrevFindings
                        : 0;
  Out.NewUnknowns = Run.Unknowns > PrevUnknowns
                        ? Run.Unknowns - PrevUnknowns
                        : 0;
  if (Degraded)
    ++Run.DegradedWindows;
  Run.WindowsDone = Run.Stats.Windows;
  return true;
}

bool StreamDetector::finish(std::string &Summary, std::string &Error,
                            std::vector<StreamStep> *Steps) {
  Error.clear();
  if (Run.Complete) {
    Summary = Run.SummaryText;
    return true;
  }
  if (!Run.Finished) {
    if (!Run.Pending.empty()) { // the input need not end with a newline
      Run.Buffer += Run.Pending;
      Run.Pending.clear();
      Run.Dirty = true;
    }
    Run.Finished = true;
  }

  // Drain the tail one window at a time so callers still get per-window
  // deltas for everything that arrived after the last step().
  for (;;) {
    StreamStep S;
    if (!analyzeOne(S, /*Degrade=*/false, /*Final=*/true, Error)) {
      if (!Error.empty())
        return false;
      break;
    }
    if (Steps)
      Steps->push_back(std::move(S));
  }

  // Closing call: MaxWindows=0 sweeps any splitWindows edge case the
  // counting above missed (e.g. the empty trace), and FlushTelemetry
  // lands this session's counters in the registry exactly once. With no
  // windows left it restores, re-serializes, and renders — cheap.
  if (!ensureParsed(Error))
    return false;
  const Trace &T = *Run.Parsed;
  DetectorOptions D = Opts.Detect;
  D.ResumeState = &Run.State;
  D.SaveState = &Run.State;
  D.MaxWindows = 0;
  D.FlushTelemetry = true;
  D.CheckpointDir.clear();

  switch (Opts.Property) {
  case StreamProperty::Race: {
    DetectionResult R = detectRaces(T, Opts.Tech, D);
    Summary = renderRaceReport(T, Opts.Tech, R, Opts.Render);
    Run.Findings = R.raceCount();
    Run.Unknowns = R.Unknowns.size();
    Run.Stats = R.Stats;
    break;
  }
  case StreamProperty::Atomicity: {
    AtomicityResult R = detectAtomicityViolations(T, D);
    Summary = renderAtomicityReport(R);
    Run.Findings = R.Violations.size();
    Run.Unknowns = R.Unknowns.size();
    Run.Stats = R.Stats;
    break;
  }
  case StreamProperty::Deadlock: {
    DeadlockResult R = detectDeadlocks(T, D);
    Summary = renderDeadlockReport(T, R);
    Run.Findings = R.Deadlocks.size();
    Run.Unknowns = R.Unknowns.size();
    Run.Stats = R.Stats;
    break;
  }
  }
  Run.WindowsDone = Run.Stats.Windows;
  Run.SummaryText = Summary;
  Run.Complete = true;
  return true;
}
