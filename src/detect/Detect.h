//===- detect/Detect.h - Predictive race detectors ---------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four detectors compared in the paper's evaluation, behind one entry
/// point:
///
///  * Technique::Hb      — Lamport happens-before [22].
///  * Technique::Cp      — causally-precedes (Smaragdakis et al.) [35].
///  * Technique::Said    — SMT with whole-trace read-write consistency
///                         (Said et al.) [30].
///  * Technique::Maximal — this paper: control-flow abstraction + minimal
///                         feasibility constraints; sound and maximal.
///
/// All techniques share the driver: fixed-size windows (Section 4), COP
/// enumeration, the hybrid quick-check filter and race-signature pruning
/// for the SMT-based ones, and per-COP solving budgets.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_DETECT_H
#define RVP_DETECT_DETECT_H

#include "detect/Cop.h"
#include "support/CostLedger.h"
#include "support/Telemetry.h"
#include "trace/Trace.h"
#include "trace/Window.h"

#include <string>
#include <vector>

namespace rvp {

enum class Technique : uint8_t { Hb, Cp, Said, Maximal };

const char *techniqueName(Technique Tech);

/// Which detection tiers run (docs/TIERS.md):
///  * Vc     — the linear-time WCP vector-clock detector alone; no
///             encoder, no solver. Sound (every reported race is one the
///             maximal detector reports) but not maximal.
///  * Smt    — the historical pipeline: static prune, signature,
///             quick check, SMT solve per residual COP.
///  * Hybrid — the default ladder: the WCP pass first prunes
///             MHB-ordered COPs and short-circuits WCP-provable races
///             past the solver; only the residue is encoded and solved.
///             Reports are byte-identical to Smt.
enum class DetectTier : uint8_t { Vc, Smt, Hybrid };

const char *tierName(DetectTier Tier);

/// Interface for sound static COP pruning (the analysis layer's
/// StaticPruneOracle implements it; the detectors only see this base so
/// rvp_detect does not depend on rvp_analysis).
///
/// Soundness obligation on implementations: prunable(T, A, B) may return
/// true only when NO technique could report the pair — i.e. when every
/// feasible reordering of any window containing both events keeps them
/// ordered or mutually excluded. The driver then skips the pair before
/// quick-check/encoding, and race reports are byte-identical with and
/// without the pruner.
class CopPruner {
public:
  virtual ~CopPruner() = default;
  /// \p A and \p B are the trace-ordered events of one COP.
  virtual bool prunable(const Trace &T, EventId A, EventId B) const = 0;
};

/// Interface for static control-flow constant folding (the analysis
/// layer's StaticPruneOracle implements it via its value-range pass; the
/// encoder only sees this base so rvp_detect does not depend on
/// rvp_analysis).
///
/// Soundness obligation on implementations: foldableBranch(T, B) may
/// return true only when the branch event \p B takes the recorded
/// direction in *every* execution — its condition (or array index) is
/// statically a constant. The encoder then omits the cf read-consistency
/// guard for it: any model of the weakened formula still replays the
/// recorded control flow at that branch, so folded runs can only be more
/// maximal, never unsound. Witness re-derivation stays unfolded, keeping
/// witness orders byte-identical to unfolded runs.
class CfFoldOracle {
public:
  virtual ~CfFoldOracle() = default;
  /// \p Branch is a branch event of the bound trace.
  virtual bool foldableBranch(const Trace &T, EventId Branch) const = 0;
};

struct DetectorOptions {
  uint32_t WindowSize = DefaultWindowSize;
  /// Per-COP solver budget in seconds (Section 4 uses 60s).
  double PerCopBudgetSeconds = 60.0;
  /// Solver backend: "idl" (in-tree) or "z3".
  std::string SolverName = "idl";
  /// Run the hybrid lockset + weak-HB quick check before building
  /// constraints (Section 4).
  bool UseQuickCheck = true;
  /// Use the `Oa := Ob` substitution instead of an explicit adjacency
  /// encoding (ablation knob; Section 4).
  bool SubstituteRaceVars = true;
  /// Cone-of-influence slicing of the per-COP encodings (docs/ENCODER.md).
  /// The sliced formula is equisatisfiable with the full one, so reports
  /// are identical either way; `--no-slice` is the debug cross-check
  /// mode. Witness models are always re-derived through an unsliced
  /// encoder so witness orders match byte for byte too.
  bool Slice = true;
  /// Extract, validate, and keep a witness order per reported race.
  bool CollectWitnesses = true;
  /// Sound static pruner consulted per COP before any other filter; null
  /// disables static pruning. Not owned; must outlive the detection run.
  const CopPruner *StaticPruner = nullptr;
  /// Static branch-constancy oracle: branches it proves data-independent
  /// lose their cf guards in the per-COP encodings (see CfFoldOracle).
  /// Null disables folding. Not owned; must outlive the detection run.
  const CfFoldOracle *CfFold = nullptr;
  /// Decide COPs through a persistent per-window solver session
  /// (assumption-based incremental solving: the shared window encoding is
  /// asserted once, every COP is decided under a fresh selector literal,
  /// and learned clauses carry over between queries — see
  /// docs/INCREMENTAL_SOLVING.md). Reports are byte-identical with the
  /// legacy fresh-solver-per-COP path; with Jobs > 1 each worker keeps its
  /// own session. Each query still gets its own fresh per-COP Deadline.
  bool Incremental = true;
  /// Worker threads for the per-COP encode+solve loop of the SMT
  /// techniques. 1 (the default) runs the exact sequential code path; 0
  /// means one worker per hardware thread. Race reports are identical for
  /// every value — parallel windows pre-filter sequentially, solve
  /// independently, then collect results in COP order (see
  /// docs/OBSERVABILITY.md).
  uint32_t Jobs = 1;
  /// Escalating per-attempt solver budgets (`--retry-budgets`, parsed by
  /// parseBudgetList): an Unknown answer is retried at the next budget
  /// before the COP lands in the unknown section. Empty (the default)
  /// means a single attempt at PerCopBudgetSeconds — the exact historical
  /// behaviour. See docs/ROBUSTNESS.md.
  std::vector<double> RetryBudgets;
  /// Seed for the retry backoff jitter (deterministic runs).
  uint64_t RetryJitterSeed = 1;
  /// Directory for per-window checkpoints (`--checkpoint`); empty
  /// disables them. A run restarted with the same flags and trace resumes
  /// after the last completed window. See docs/ROBUSTNESS.md.
  std::string CheckpointDir;
  /// Fingerprint guarding CheckpointDir (hash of trace + flags, computed
  /// by the front end via checkpointHash); snapshots with a different
  /// fingerprint are ignored.
  uint64_t CheckpointFingerprint = 0;
  /// Tier ladder (`--tier`, docs/TIERS.md). Hybrid (the default) runs the
  /// WCP vector-clock pass before the SMT stages; Smt is the historical
  /// solver-only pipeline; Vc is the vector-clock detector alone.
  DetectTier Tier = DetectTier::Hybrid;
  /// Cross-validation oracle (`--check-tiers`, Hybrid + Maximal only):
  /// every solved COP additionally gets a WCP verdict, a WCP-racy COP the
  /// solver decided Unsat counts as a mismatch (DetectionStats::
  /// WcpMismatches), and the fast paths are disabled so the full SMT
  /// semantics is what WCP is checked against.
  bool CheckTiers = false;

  // ---- Streaming hooks (detect/Stream.h, docs/SERVER.md). Batch runs
  // leave all four at their defaults; every driver honors them the same
  // way, so the streaming front end is property-agnostic.

  /// Stop after this many windows processed *by this run* (0 = no limit).
  /// Windows a resumed snapshot already covers do not count.
  uint64_t MaxWindows = 0;
  /// In-memory resume: cumulative driver state a previous run serialized
  /// over a prefix of the same trace (the checkpoint payload format, see
  /// docs/ROBUSTNESS.md). Restored after any CheckpointDir snapshot, so
  /// the caller-held state is authoritative during streaming while the
  /// directory still covers daemon restarts. Not owned; may be null.
  const std::string *ResumeState = nullptr;
  /// When non-null, receives the serialized cumulative driver state after
  /// the last processed window (the checkpoint payload format).
  std::string *SaveState = nullptr;
  /// Flush the per-run tallies into the process-wide MetricsRegistry and
  /// capture Stats.Telemetry at the end of the run. The streaming front
  /// end disables this for intermediate window steps so one session's
  /// counters land in the registry exactly once (at finish).
  bool FlushTelemetry = true;
};

/// One reported race (first COP found per signature).
struct RaceReport {
  RaceSignature Sig;
  EventId First = InvalidEvent;
  EventId Second = InvalidEvent;
  std::string LocFirst, LocSecond, Variable; ///< resolved display names
  /// Witness: the reordered window manifesting the race (Maximal only,
  /// when CollectWitnesses is set).
  std::vector<EventId> Witness;
  bool WitnessValid = false;
};

/// A pair the pipeline could not decide within every retry budget (or
/// whose solves kept failing under degradation). Soundness: these are
/// *maybe* races — they are reported in their own section, never merged
/// into the race list, so the race list stays sound under faults and
/// budget exhaustion (docs/ROBUSTNESS.md). The same struct serves the
/// atomicity and deadlock drivers, where First/Second are the defining
/// pair of the undecided candidate.
struct UnknownReport {
  EventId First = InvalidEvent;
  EventId Second = InvalidEvent;
  std::string LocFirst, LocSecond, Variable; ///< resolved display names
  /// Solve attempts spent before giving up.
  uint32_t Attempts = 1;
};

struct DetectionStats {
  uint64_t Windows = 0;
  uint64_t Cops = 0;
  /// Distinct signatures passing the quick check (Table 1's QC column).
  uint64_t QcPassed = 0;
  /// COPs skipped by DetectorOptions::StaticPruner before any dynamic
  /// filter ran (0 when no pruner is installed).
  uint64_t CopsPrunedStatic = 0;
  uint64_t SolverCalls = 0;
  uint64_t SolverTimeouts = 0;
  /// Extra solve attempts beyond each COP's first (the escalation ladder;
  /// 0 unless --retry-budgets is set and Unknowns occurred).
  uint64_t SolverRetries = 0;
  /// Incremental sessions quarantined and rebuilt (or dropped to one-shot
  /// solving) after corruption or a failed-query streak.
  uint64_t DegradedSessions = 0;
  /// Distinct signatures left undecided after all retry tiers — the
  /// entries of DetectionResult::Unknowns.
  uint64_t UnknownCops = 0;
  /// Races the WCP tier proved without a solver call (Vc tier reports;
  /// Hybrid short-circuits past the solver, Maximal only).
  uint64_t WcpRaces = 0;
  /// COPs the WCP tier pruned as MHB-ordered before signature/quick-check
  /// (Hybrid/Vc; a new prune stage ahead of the historical ones).
  uint64_t WcpPruned = 0;
  /// COPs the WCP tier could not decide — the residue that reached the
  /// signature/quick-check/SMT stages (Hybrid only).
  uint64_t WcpResidue = 0;
  /// Solver calls the Hybrid tier skipped because WCP already proved the
  /// COP racy (the `solver_calls_saved` JSON field).
  uint64_t WcpShortCircuits = 0;
  /// --check-tiers: WCP-racy COPs the solver decided Unsat. Always 0 when
  /// the tier is sound; any nonzero value fails the run (exit 2).
  uint64_t WcpMismatches = 0;
  /// Effective worker count used for per-COP solving (1 when the
  /// technique has no solver loop or the run was sequential).
  uint32_t Jobs = 1;
  double Seconds = 0;
  /// Registry + phase-tree snapshot, captured at the end of the run when
  /// telemetry is enabled (Telemetry::setEnabled); empty otherwise. See
  /// docs/OBSERVABILITY.md for the metric names and phase hierarchy.
  TelemetrySnapshot Telemetry;
  /// The K most expensive windows and COPs of the run (encode/solve/
  /// witness split, memory delta, attempts), populated only when telemetry
  /// is enabled; rendered as the `top-costs` section of --stats and the
  /// "top_costs" member of --stats-json. See docs/OBSERVABILITY.md.
  CostLedger TopCosts;
};

/// Human-readable statistics: the classic one-line summary, followed (when
/// a telemetry snapshot was captured) by the phase tree, the counters, and
/// the latency histograms. \p What names the analysis ("RV", "Said",
/// "atomicity", ...).
std::string renderStatsTable(const DetectionStats &Stats, const char *What);

/// The same data as machine-readable JSON: one object with the Table-1
/// fields (windows, cops, qc_passed, solver_calls, solver_timeouts,
/// jobs, seconds) plus, when captured, "counters"/"gauges"/"histograms"
/// and the hierarchical "phases" tree. Schema in docs/OBSERVABILITY.md.
std::string statsToJson(const DetectionStats &Stats, const char *What);

struct DetectionResult {
  std::vector<RaceReport> Races;
  /// Maybe-races the solver never decided (one per signature, first COP
  /// seen); disjoint from Races. Empty in a healthy run with adequate
  /// budgets, so reports only grow this section when degradation happened.
  std::vector<UnknownReport> Unknowns;
  DetectionStats Stats;

  /// Distinct race signatures found (the paper's race counts).
  size_t raceCount() const { return Races.size(); }
  bool hasRaceAt(const std::string &LocA, const std::string &LocB) const;
};

/// Runs \p Tech over the whole trace.
DetectionResult detectRaces(const Trace &T, Technique Tech,
                            const DetectorOptions &Options =
                                DetectorOptions());

} // namespace rvp

#endif // RVP_DETECT_DETECT_H
