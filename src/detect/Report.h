//===- detect/Report.h - Textual finding renderers --------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// One place that turns findings into report text. `rvpredict detect` has
// always printed these lines; the daemon streams the same findings one
// window at a time, and the ServerGolden gate compares the two byte for
// byte — which only works if both sides share the renderer instead of
// each keeping a private copy of the printf formats.
//
// Every function returns the exact bytes the batch CLI writes, including
// the trailing newline. Headers (the "<technique>: N race(s) in Ss"
// lines) and finding lines are separate so the daemon can emit per-window
// deltas without a header, then a batch-identical summary at FIN.
//
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_REPORT_H
#define RVP_DETECT_REPORT_H

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"

#include <string>
#include <vector>

namespace rvp {

/// Presentation switches mirroring the CLI flags that shape the report.
struct ReportRenderOptions {
  /// The run answered from the WCP tier: the race header says "WCP"
  /// instead of the requested technique (which the tier did not run).
  bool VcTier = false;
  /// Tag race lines with "  [witness validated|UNVALIDATED]" (Maximal
  /// technique with witness collection on).
  bool WitnessTag = false;
  /// Print the reordered witness schedule under each race (--witness).
  bool WitnessEvents = false;
};

/// "Maximal: 3 race(s) in 0.12s\n" (or "WCP: ..." under the vc tier).
std::string renderRaceHeader(Technique Tech, size_t Count, double Seconds,
                             const ReportRenderOptions &Opts);

/// "  race on x  loc1 <-> loc2[  [witness ...]]\n" plus, when
/// WitnessEvents is set, the indented witness schedule.
std::string renderRaceLine(const Trace &T, const RaceReport &Race,
                           const ReportRenderOptions &Opts);

/// "atomicity: 2 violation(s) in 0.12s\n".
std::string renderAtomicityHeader(size_t Count, double Seconds);

/// "  x  read-write-read: a .. [b] .. c  [witness validated]\n".
std::string renderAtomicityLine(const AtomicityReport &V);

/// "deadlock: 1 potential deadlock(s) in 0.12s\n".
std::string renderDeadlockHeader(size_t Count, double Seconds);

/// "  t1 holds l1 and requests l2 at a; t2 holds ...  [witness ...]\n".
std::string renderDeadlockLine(const Trace &T, const DeadlockReport &D);

/// One entry of the `unknown` section, without the section header. The
/// daemon's per-window delta frames use this; the batch section is
/// renderUnknowns below.
std::string renderUnknownLine(const UnknownReport &U);

/// The whole `unknown` section, or "" when there are no unknowns. \p Pair
/// names the undecided thing: "pair" (race), "candidate" (atomicity),
/// "lock pair" (deadlock).
std::string renderUnknowns(const std::vector<UnknownReport> &Unknowns,
                           const char *Pair);

/// Full batch reports: header + one line per finding + unknown section.
/// Byte-identical to what `rvpredict detect` prints for the result.
std::string renderRaceReport(const Trace &T, Technique Tech,
                             const DetectionResult &R,
                             const ReportRenderOptions &Opts);
std::string renderAtomicityReport(const AtomicityResult &R);
std::string renderDeadlockReport(const Trace &T, const DeadlockResult &R);

} // namespace rvp

#endif // RVP_DETECT_REPORT_H
