//===- detect/Deadlock.cpp - Predictive deadlock detection -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Deadlock.h"

#include "detect/Checkpoint.h"
#include "detect/Closure.h"
#include "detect/RaceEncoder.h"
#include "detect/Resilience.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"
#include "support/CommandLine.h"
#include "support/FaultInjector.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_set>

using namespace rvp;

namespace {

/// A nested acquisition: \p Request acquires \p Inner while the section
/// \p Outer (on \p OuterLock) is held by the same thread.
struct LockDependency {
  ThreadId Tid = 0;
  LockId OuterLock = 0;
  LockId InnerLock = 0;
  EventId Request = InvalidEvent;
  LockPair Outer;        ///< the enclosing critical section
  LockPair RequestPair;  ///< the requested (inner) section
};

class DeadlockDriver {
public:
  DeadlockDriver(const Trace &T, const DetectorOptions &Options)
      : T(T), Options(Options) {}

  DeadlockResult run() {
    Timer Clock;
    UseIncremental = Options.Incremental;
    Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                             : Options.Jobs;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs);
    Result.Stats.Jobs = Jobs;
    RunningValues.assign(T.numVars(), 0);
    for (VarId Var = 0; Var < T.numVars(); ++Var)
      RunningValues[Var] = T.initialValueOf(Var);

    // Resume: same contract as the race driver (docs/ROBUSTNESS.md).
    CheckpointStore Ckpt(Options.CheckpointDir,
                         Options.CheckpointFingerprint);
    uint64_t SkipWindows = 0;
    if (Ckpt.enabled()) {
      std::string Payload;
      CheckpointLoad Outcome = CheckpointLoad::None;
      int64_t Last = Ckpt.loadLatest(Payload, &Outcome);
      if (Outcome == CheckpointLoad::FingerprintMismatch)
        CheckpointStore::refuseMismatch(Ckpt);
      if (Last >= 0 && restoreState(Payload))
        SkipWindows = static_cast<uint64_t>(Last) + 1;
    }
    // In-memory resume (the streaming front end) — same contract as the
    // race driver: the caller-held state is authoritative.
    if (Options.ResumeState && !Options.ResumeState->empty() &&
        restoreState(*Options.ResumeState))
      SkipWindows = Result.Stats.Windows;

    {
      ScopedPhaseTimer DetectPhase("deadlock");
      uint64_t Index = 0, Processed = 0;
      for (Span Window : splitWindows(T, Options.WindowSize)) {
        if (Index++ < SkipWindows)
          continue;
        if (Options.MaxWindows && Processed == Options.MaxWindows)
          break;
        ++Processed;
        ++Result.Stats.Windows;
        processWindow(Window);
        for (EventId Id = Window.Begin; Id < Window.End; ++Id)
          if (T[Id].isWrite())
            RunningValues[T[Id].Target] = T[Id].Data;
        if (Ckpt.enabled()) {
          Ckpt.save(Index - 1, serializeState());
          if (FaultInjector::shouldFail(faults::DetectAbort))
            std::_Exit(ExitInternal);
        }
      }
    }
    Result.Stats.UnknownCops = Result.Unknowns.size();
    Result.Stats.Seconds = Clock.seconds();
    if (Options.SaveState)
      *Options.SaveState = serializeState();
    if (Telemetry::enabled() && Options.FlushTelemetry) {
      MetricsRegistry &Reg = MetricsRegistry::global();
      if (SpeculativeSolves)
        Reg.counter("detect.speculative_solves").add(SpeculativeSolves);
      if (Result.Stats.SolverRetries)
        Reg.counter("solver.retries").add(Result.Stats.SolverRetries);
      if (Result.Stats.DegradedSessions)
        Reg.counter("solver.degraded_sessions")
            .add(Result.Stats.DegradedSessions);
      if (BackendFallbacks)
        Reg.counter("solver.backend_fallbacks").add(BackendFallbacks);
      if (Result.Stats.UnknownCops)
        Reg.counter("detect.unknown_cops").add(Result.Stats.UnknownCops);
      if (SkipWindows)
        Reg.counter("detect.resumed_windows").add(SkipWindows);
      Result.Stats.Telemetry = Telemetry::instance().snapshot();
    }
    return std::move(Result);
  }

private:
  std::vector<LockDependency> collectDependencies(Span Window) const {
    // Group each thread's complete in-window sections, then match every
    // acquire against the enclosing sections of the same thread.
    struct ThreadPair {
      LockId Lock;
      LockPair Pair;
    };
    std::vector<std::vector<ThreadPair>> PerThread(T.numThreads());
    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock)
      for (const LockPair &P : T.lockPairsOf(Lock))
        if (P.AcquireId != InvalidEvent && Window.contains(P.AcquireId))
          PerThread[P.Tid].push_back({Lock, P});

    std::vector<LockDependency> Deps;
    for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
      const std::vector<ThreadPair> &Pairs = PerThread[Tid];
      for (const ThreadPair &Req : Pairs) {
        for (const ThreadPair &Out : Pairs) {
          if (Out.Lock == Req.Lock || Out.Pair.ReleaseId == InvalidEvent ||
              !Window.contains(Out.Pair.ReleaseId))
            continue;
          if (Out.Pair.AcquireId < Req.Pair.AcquireId &&
              Req.Pair.AcquireId < Out.Pair.ReleaseId) {
            LockDependency Dep;
            Dep.Tid = Tid;
            Dep.OuterLock = Out.Lock;
            Dep.InnerLock = Req.Lock;
            Dep.Request = Req.Pair.AcquireId;
            Dep.Outer = Out.Pair;
            Dep.RequestPair = Req.Pair;
            Deps.push_back(Dep);
          }
        }
      }
    }
    return Deps;
  }

  static uint64_t signatureOf(const Trace &T, EventId ReqA, EventId ReqB) {
    LocId A = T[ReqA].Loc;
    LocId B = T[ReqB].Loc;
    if (A > B)
      std::swap(A, B);
    return (static_cast<uint64_t>(A) << 32) | B;
  }

  /// One opposite-order dependency pair plus the facts the parallel
  /// pre-filter derives for it; enumeration order matches the sequential
  /// nested loops.
  struct DeadlockCandidate {
    LockDependency A, B;
    uint64_t Sig = 0;
    /// Refuted by the MHB quick check (signature-independent).
    bool QcRejected = false;
  };

  struct DeadlockTaskResult {
    bool Solved = false;
    SatResult Sat = SatResult::Unknown;
    /// Escalation attempts the host spent on this candidate.
    uint32_t Attempts = 1;
    DeadlockReport Report;
  };

  /// Per-window solve state: the SolveHost (session or one-shot solver)
  /// plus, in incremental mode, the shared hash-consing builder. One per
  /// window (sequential) or per worker per window (jobs > 1).
  struct DlSolveCtx {
    FormulaBuilder FB;
    std::unique_ptr<SolveHost> Host;
  };

  void processWindow(Span Window) {
    std::vector<LockDependency> Deps = collectDependencies(Window);
    if (Deps.empty())
      return;
    EventClosure Mhb(T, Window, ClosureConfig::mhb());
    EncoderOptions EncOpts;
    EncOpts.Slice = Options.Slice;
    EncOpts.Fold = Options.CfFold; // decision path only; rederive is full
    RaceEncoder Encoder(T, Window, Mhb, RunningValues, EncOpts);

    if (Pool) {
      processWindowParallel(Window, Mhb, Encoder, Deps);
      return;
    }

    // One SolveHost per window, whatever the mode (docs/ROBUSTNESS.md).
    DlSolveCtx WindowCtx;
    WindowCtx.Host = std::make_unique<SolveHost>(
        Options.SolverName, UseIncremental, Options.PerCopBudgetSeconds,
        Options.RetryBudgets,
        Options.RetryJitterSeed + Result.Stats.Windows);
    DlSolveCtx *Ctx = &WindowCtx;

    for (size_t I = 0; I < Deps.size(); ++I) {
      for (size_t J = I + 1; J < Deps.size(); ++J) {
        const LockDependency &A = Deps[I];
        const LockDependency &B = Deps[J];
        // Opposite-order acquisition by different threads.
        if (A.Tid == B.Tid || A.OuterLock != B.InnerLock ||
            A.InnerLock != B.OuterLock)
          continue;
        ++Result.Stats.Cops;
        if (SeenSignatures.count(signatureOf(T, A.Request, B.Request)))
          continue;
        // Cheap refutations: an MHB order between a request and the other
        // side's section makes the hold state impossible.
        if (Options.UseQuickCheck) {
          if (Mhb.ordered(A.Request, B.Outer.AcquireId) ||
              Mhb.ordered(B.Outer.ReleaseId, A.Request) ||
              Mhb.ordered(B.Request, A.Outer.AcquireId) ||
              Mhb.ordered(A.Outer.ReleaseId, B.Request))
            continue;
          ++Result.Stats.QcPassed;
        }
        solveCandidate(Window, Mhb, Encoder, A, B, Ctx);
      }
    }
    absorbHostStats(WindowCtx.Host->stats());
  }

  /// Folds one host's resilience tallies into the run's stats (called at
  /// each window barrier; the parallel path folds every worker's host).
  void absorbHostStats(const ResilienceStats &S) {
    Result.Stats.SolverRetries += S.Retries;
    Result.Stats.DegradedSessions += S.DegradedSessions;
    BackendFallbacks += S.BackendFallbacks;
  }

  /// Parallel window: enumerate pairs sequentially (phase A), encode+solve
  /// the quick-check survivors concurrently (B), then replay in pair order
  /// against the live signature set (C). Mirrors the race and atomicity
  /// parallel paths; see docs/OBSERVABILITY.md.
  void processWindowParallel(Span Window, const EventClosure &Mhb,
                             const RaceEncoder &Encoder,
                             const std::vector<LockDependency> &Deps) {
    std::vector<DeadlockCandidate> Candidates;
    for (size_t I = 0; I < Deps.size(); ++I) {
      for (size_t J = I + 1; J < Deps.size(); ++J) {
        const LockDependency &A = Deps[I];
        const LockDependency &B = Deps[J];
        if (A.Tid == B.Tid || A.OuterLock != B.InnerLock ||
            A.InnerLock != B.OuterLock)
          continue;
        ++Result.Stats.Cops;
        DeadlockCandidate C;
        C.A = A;
        C.B = B;
        C.Sig = signatureOf(T, A.Request, B.Request);
        if (Options.UseQuickCheck)
          C.QcRejected = Mhb.ordered(A.Request, B.Outer.AcquireId) ||
                         Mhb.ordered(B.Outer.ReleaseId, A.Request) ||
                         Mhb.ordered(B.Request, A.Outer.AcquireId) ||
                         Mhb.ordered(A.Outer.ReleaseId, B.Request);
        Candidates.push_back(C);
      }
    }

    std::vector<DeadlockTaskResult> Results(Candidates.size());
    // Per-worker window-scoped solve state; the trailing slot serves the
    // main thread (currentWorkerIndex() == -1) when it helps out.
    std::vector<DlSolveCtx> Contexts(Pool->numWorkers() + 1);
    Pool->parallelFor(0, Candidates.size(), [&](size_t Index) {
      const DeadlockCandidate &C = Candidates[Index];
      if (C.QcRejected)
        return;
      int W = Pool->currentWorkerIndex();
      DlSolveCtx *Ctx = &Contexts[W >= 0 ? static_cast<size_t>(W)
                                         : Contexts.size() - 1];
      solveCandidateTask(Window, Mhb, Encoder, C, Ctx, Results[Index]);
    });
    for (const DlSolveCtx &Ctx : Contexts)
      if (Ctx.Host)
        absorbHostStats(Ctx.Host->stats());

    for (size_t Index = 0; Index < Candidates.size(); ++Index) {
      const DeadlockCandidate &C = Candidates[Index];
      DeadlockTaskResult &R = Results[Index];
      if (SeenSignatures.count(C.Sig)) {
        if (R.Solved)
          ++SpeculativeSolves;
        continue;
      }
      if (C.QcRejected)
        continue;
      if (Options.UseQuickCheck)
        ++Result.Stats.QcPassed;
      ++Result.Stats.SolverCalls;
      if (R.Sat == SatResult::Unknown) {
        ++Result.Stats.SolverTimeouts;
        recordUnknown(C.A.Request, C.B.Request, R.Attempts);
        continue;
      }
      if (R.Sat == SatResult::Unsat)
        continue;
      eraseUnknown(C.Sig);
      SeenSignatures.insert(C.Sig);
      Result.Deadlocks.push_back(std::move(R.Report));
    }
  }

  /// Phase B worker body: solve one pair with a private solver instance
  /// and build the complete report, witness included.
  void solveCandidateTask(Span Window, const EventClosure &Mhb,
                          const RaceEncoder &Encoder,
                          const DeadlockCandidate &C, DlSolveCtx *Ctx,
                          DeadlockTaskResult &Out) {
    const LockDependency &A = C.A;
    const LockDependency &B = C.B;
    if (!Ctx->Host)
      Ctx->Host = std::make_unique<SolveHost>(
          Options.SolverName, UseIncremental, Options.PerCopBudgetSeconds,
          Options.RetryBudgets,
          Options.RetryJitterSeed + Result.Stats.Windows);
    FormulaBuilder TaskFB;
    FormulaBuilder &FB = UseIncremental ? Ctx->FB : TaskFB;
    NodeRef Root =
        Encoder.encodeDeadlock(FB, A.Request, B.Request, A.Outer, B.Outer);
    OrderModel Model;
    SolveHost::Outcome Decided = Ctx->Host->decide(
        FB, Root, Options.CollectWitnesses ? &Model : nullptr);
    Out.Sat = Decided.Sat;
    Out.Attempts = Decided.Attempts;
    Out.Solved = true;
    if (Out.Sat != SatResult::Sat)
      return;
    if (Options.CollectWitnesses &&
        (!Decided.ModelFromSolve || Options.Slice))
      rederiveModel(Encoder, A, B, Model);

    DeadlockReport &Report = Out.Report;
    Report.ThreadA = A.Tid;
    Report.ThreadB = B.Tid;
    Report.LockHeldByA = A.OuterLock;
    Report.LockHeldByB = B.OuterLock;
    Report.RequestA = A.Request;
    Report.RequestB = B.Request;
    Report.LocRequestA = T.locName(T[A.Request].Loc);
    Report.LocRequestB = T.locName(T[B.Request].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      std::unordered_set<EventId> Skip = {A.Request, B.Request};
      if (A.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(A.RequestPair.ReleaseId);
      if (B.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(B.RequestPair.ReleaseId);
      Report.WitnessValid =
          checkDeadlockWitness(T, Window, Report.Witness, A.Request,
                               B.Request, A.Outer, B.Outer, Skip, Encoder,
                               Mhb, RunningValues)
              .Ok;
    }
  }

  void solveCandidate(Span Window, const EventClosure &Mhb,
                      const RaceEncoder &Encoder, const LockDependency &A,
                      const LockDependency &B, DlSolveCtx *Ctx) {
    FormulaBuilder LocalFB;
    FormulaBuilder &FB = UseIncremental ? Ctx->FB : LocalFB;
    NodeRef Root =
        Encoder.encodeDeadlock(FB, A.Request, B.Request, A.Outer, B.Outer);
    OrderModel Model;
    ++Result.Stats.SolverCalls;
    SolveHost::Outcome Decided = Ctx->Host->decide(
        FB, Root, Options.CollectWitnesses ? &Model : nullptr);
    SatResult Sat = Decided.Sat;
    if (Sat == SatResult::Unknown) {
      ++Result.Stats.SolverTimeouts;
      recordUnknown(A.Request, B.Request, Decided.Attempts);
      return;
    }
    if (Sat == SatResult::Unsat)
      return;
    if (Options.CollectWitnesses &&
        (!Decided.ModelFromSolve || Options.Slice))
      rederiveModel(Encoder, A, B, Model);

    DeadlockReport Report;
    Report.ThreadA = A.Tid;
    Report.ThreadB = B.Tid;
    Report.LockHeldByA = A.OuterLock;
    Report.LockHeldByB = B.OuterLock;
    Report.RequestA = A.Request;
    Report.RequestB = B.Request;
    Report.LocRequestA = T.locName(T[A.Request].Loc);
    Report.LocRequestB = T.locName(T[B.Request].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      std::unordered_set<EventId> Skip = {A.Request, B.Request};
      if (A.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(A.RequestPair.ReleaseId);
      if (B.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(B.RequestPair.ReleaseId);
      Report.WitnessValid =
          checkDeadlockWitness(T, Window, Report.Witness, A.Request,
                               B.Request, A.Outer, B.Outer, Skip, Encoder,
                               Mhb, RunningValues)
              .Ok;
    }
    uint64_t Sig = signatureOf(T, A.Request, B.Request);
    eraseUnknown(Sig);
    SeenSignatures.insert(Sig);
    Result.Deadlocks.push_back(std::move(Report));
  }

  /// Parks an undecided dependency pair in the unknown section (one entry
  /// per signature) — never in the deadlock list, so degradation keeps the
  /// reports sound. Variable stays empty: the pair is about locks.
  void recordUnknown(EventId ReqA, EventId ReqB, uint32_t Attempts) {
    if (!UnknownSigs.insert(signatureOf(T, ReqA, ReqB)).second)
      return;
    UnknownReport U;
    U.First = ReqA;
    U.Second = ReqB;
    U.LocFirst = T.locName(T[ReqA].Loc);
    U.LocSecond = T.locName(T[ReqB].Loc);
    U.Attempts = Attempts;
    Result.Unknowns.push_back(std::move(U));
  }

  /// A signature provisionally parked as unknown has now been decided:
  /// the reported deadlock supersedes the maybe-entry.
  void eraseUnknown(uint64_t Sig) {
    if (!UnknownSigs.erase(Sig))
      return;
    Result.Unknowns.erase(
        std::remove_if(Result.Unknowns.begin(), Result.Unknowns.end(),
                       [&](const UnknownReport &U) {
                         return signatureOf(T, U.First, U.Second) == Sig;
                       }),
        Result.Unknowns.end());
  }

  // ----------------------------------------------------- checkpointing
  // Same contract as the race driver's pair in Detect.cpp: only event ids
  // and counters are stored; threads, locks, and display strings are
  // re-derived from the request events on restore.

  std::string serializeState() const {
    std::string Out;
    Out += formatString(
        "stats %llu %llu %llu %llu %llu %llu %llu\n",
        static_cast<unsigned long long>(Result.Stats.Windows),
        static_cast<unsigned long long>(Result.Stats.Cops),
        static_cast<unsigned long long>(Result.Stats.QcPassed),
        static_cast<unsigned long long>(Result.Stats.SolverCalls),
        static_cast<unsigned long long>(Result.Stats.SolverTimeouts),
        static_cast<unsigned long long>(Result.Stats.SolverRetries),
        static_cast<unsigned long long>(Result.Stats.DegradedSessions));
    Out += formatString("tallies %llu %llu\n",
                        static_cast<unsigned long long>(SpeculativeSolves),
                        static_cast<unsigned long long>(BackendFallbacks));
    Out += "values";
    for (Value V : RunningValues)
      Out += formatString(" %lld", static_cast<long long>(V));
    Out += "\n";
    // Sorted so the same state always serializes to the same bytes.
    std::vector<uint64_t> Keys(SeenSignatures.begin(),
                               SeenSignatures.end());
    std::sort(Keys.begin(), Keys.end());
    Out += "seen";
    for (uint64_t K : Keys)
      Out += formatString(" %llx", static_cast<unsigned long long>(K));
    Out += "\n";
    for (const DeadlockReport &D : Result.Deadlocks) {
      Out += formatString("dl %llu %llu %d",
                          static_cast<unsigned long long>(D.RequestA),
                          static_cast<unsigned long long>(D.RequestB),
                          D.WitnessValid ? 1 : 0);
      for (EventId Id : D.Witness)
        Out += formatString(" %llu", static_cast<unsigned long long>(Id));
      Out += "\n";
    }
    for (const UnknownReport &U : Result.Unknowns)
      Out += formatString("unknown %llu %llu %u\n",
                          static_cast<unsigned long long>(U.First),
                          static_cast<unsigned long long>(U.Second),
                          static_cast<unsigned>(U.Attempts));
    return Out;
  }

  /// Inverse of serializeState. All-or-nothing: any malformed or
  /// out-of-range field rejects the snapshot and the run starts from
  /// scratch (sound; checkpoints only save time).
  bool restoreState(const std::string &Payload) {
    auto parseU64 = [](std::string_view S, uint64_t &Out) {
      int64_t V = 0;
      if (!parseInt(S, V) || V < 0)
        return false;
      Out = static_cast<uint64_t>(V);
      return true;
    };
    auto parseHex = [](std::string_view S, uint64_t &Out) {
      if (S.empty() || S.size() > 16)
        return false;
      uint64_t V = 0;
      for (char C : S) {
        int D;
        if (C >= '0' && C <= '9')
          D = C - '0';
        else if (C >= 'a' && C <= 'f')
          D = C - 'a' + 10;
        else
          return false;
        V = V << 4 | static_cast<uint64_t>(D);
      }
      Out = V;
      return true;
    };
    auto parseEvent = [&](std::string_view S, EventId &Out) {
      uint64_t V = 0;
      if (!parseU64(S, V) || V >= T.size())
        return false;
      Out = static_cast<EventId>(V);
      return true;
    };
    auto parseRequest = [&](std::string_view S, EventId &Out) {
      return parseEvent(S, Out) && T[Out].isAcquire() &&
             T[Out].Target < T.numLocks();
    };

    std::vector<DeadlockReport> NewDeadlocks;
    std::vector<UnknownReport> NewUnknowns;
    std::vector<Value> NewValues;
    std::unordered_set<uint64_t> NewSeen, NewUnkSet;
    uint64_t S[7] = {0}, Tally[2] = {0};
    bool SawStats = false, SawTallies = false, SawValues = false;

    for (std::string_view Line : split(Payload, '\n')) {
      Line = trim(Line);
      if (Line.empty())
        continue;
      std::vector<std::string_view> F = split(Line, ' ');
      if (F[0] == "stats") {
        if (F.size() != 8)
          return false;
        for (size_t I = 0; I < 7; ++I)
          if (!parseU64(F[I + 1], S[I]))
            return false;
        SawStats = true;
      } else if (F[0] == "tallies") {
        if (F.size() != 3)
          return false;
        for (size_t I = 0; I < 2; ++I)
          if (!parseU64(F[I + 1], Tally[I]))
            return false;
        SawTallies = true;
      } else if (F[0] == "values") {
        for (size_t I = 1; I < F.size(); ++I) {
          int64_t V = 0;
          if (!parseInt(F[I], V))
            return false;
          NewValues.push_back(static_cast<Value>(V));
        }
        SawValues = true;
      } else if (F[0] == "seen") {
        for (size_t I = 1; I < F.size(); ++I) {
          uint64_t K = 0;
          if (!parseHex(F[I], K))
            return false;
          NewSeen.insert(K);
        }
      } else if (F[0] == "dl") {
        if (F.size() < 4)
          return false;
        DeadlockReport D;
        uint64_t Valid = 0;
        if (!parseRequest(F[1], D.RequestA) ||
            !parseRequest(F[2], D.RequestB) || !parseU64(F[3], Valid) ||
            Valid > 1)
          return false;
        D.ThreadA = T[D.RequestA].Tid;
        D.ThreadB = T[D.RequestB].Tid;
        D.LockHeldByB = T[D.RequestA].Target; // A requests B's lock
        D.LockHeldByA = T[D.RequestB].Target;
        D.LocRequestA = T.locName(T[D.RequestA].Loc);
        D.LocRequestB = T.locName(T[D.RequestB].Loc);
        D.WitnessValid = Valid != 0;
        for (size_t I = 4; I < F.size(); ++I) {
          EventId Id = InvalidEvent;
          if (!parseEvent(F[I], Id))
            return false;
          D.Witness.push_back(Id);
        }
        NewDeadlocks.push_back(std::move(D));
      } else if (F[0] == "unknown") {
        if (F.size() != 4)
          return false;
        UnknownReport U;
        uint64_t Attempts = 0;
        if (!parseEvent(F[1], U.First) || !parseEvent(F[2], U.Second) ||
            !parseU64(F[3], Attempts) || Attempts == 0)
          return false;
        U.LocFirst = T.locName(T[U.First].Loc);
        U.LocSecond = T.locName(T[U.Second].Loc);
        U.Attempts = static_cast<uint32_t>(Attempts);
        NewUnkSet.insert(signatureOf(T, U.First, U.Second));
        NewUnknowns.push_back(std::move(U));
      } else {
        return false; // written by a different build: start from scratch
      }
    }
    if (!SawStats || !SawTallies || !SawValues ||
        NewValues.size() > T.numVars())
      return false;
    // Prefix snapshots (streaming steps) can predate variables first seen
    // in later windows; they still hold their initial values.
    while (NewValues.size() < T.numVars())
      NewValues.push_back(
          T.initialValueOf(static_cast<VarId>(NewValues.size())));

    Result.Stats.Windows = S[0];
    Result.Stats.Cops = S[1];
    Result.Stats.QcPassed = S[2];
    Result.Stats.SolverCalls = S[3];
    Result.Stats.SolverTimeouts = S[4];
    Result.Stats.SolverRetries = S[5];
    Result.Stats.DegradedSessions = S[6];
    SpeculativeSolves = Tally[0];
    BackendFallbacks = Tally[1];
    RunningValues = std::move(NewValues);
    SeenSignatures = std::move(NewSeen);
    UnknownSigs = std::move(NewUnkSet);
    Result.Deadlocks = std::move(NewDeadlocks);
    Result.Unknowns = std::move(NewUnknowns);
    return true;
  }

  /// Same role as Detect.cpp's rederiveModel: witnesses come from
  /// re-encoding the pair into a fresh builder and solving one-shot —
  /// exactly the legacy path's instance — so they match byte for byte and
  /// never depend on session history or shared-builder ref numbering.
  bool rederiveModel(const RaceEncoder &Encoder, const LockDependency &A,
                     const LockDependency &B, OrderModel &Model) const {
    // Witness models come from the unsliced formula: a sliced model has
    // no positions for events outside the cone, and buildWitness orders
    // the whole window (see Detect.cpp's rederiveModel).
    EncoderOptions NoSlice;
    NoSlice.Slice = false;
    RaceEncoder Unsliced(Encoder.sharedWindowEncoding(), NoSlice);
    FormulaBuilder FreshFB;
    NodeRef Root = Unsliced.encodeDeadlock(FreshFB, A.Request, B.Request,
                                           A.Outer, B.Outer);
    std::unique_ptr<SmtSolver> Fresh =
        createSolverByName(Options.SolverName);
    if (!Fresh)
      Fresh = createIdlSolver();
    if (Telemetry::enabled())
      MetricsRegistry::global().counter("solver.witness_resolves").inc();
    return Fresh->solve(FreshFB, Root,
                        Deadline::after(Options.PerCopBudgetSeconds),
                        &Model) == SatResult::Sat;
  }

  std::vector<EventId> buildWitness(Span Window,
                                    const OrderModel &Model) const {
    std::vector<EventId> Order;
    Order.reserve(Window.size());
    for (EventId Id = Window.Begin; Id < Window.End; ++Id)
      Order.push_back(Id);
    std::sort(Order.begin(), Order.end(), [&](EventId X, EventId Y) {
      auto KeyOf = [&](EventId Id) -> std::pair<int64_t, int64_t> {
        auto It = Model.find(Id);
        return {It == Model.end() ? INT64_MAX : It->second,
                static_cast<int64_t>(Id)};
      };
      return KeyOf(X) < KeyOf(Y);
    });
    return Order;
  }

  const Trace &T;
  DetectorOptions Options;
  DeadlockResult Result;
  std::unique_ptr<ThreadPool> Pool;
  uint32_t Jobs = 1;
  bool UseIncremental = false;
  uint64_t SpeculativeSolves = 0;
  /// Backend factory failures absorbed by the hosts (telemetry only).
  uint64_t BackendFallbacks = 0;
  std::vector<Value> RunningValues;
  std::unordered_set<uint64_t> SeenSignatures;
  /// Signatures parked in Result.Unknowns (recordUnknown/eraseUnknown).
  std::unordered_set<uint64_t> UnknownSigs;
};

} // namespace

DeadlockResult rvp::detectDeadlocks(const Trace &T,
                                    const DetectorOptions &Options) {
  return DeadlockDriver(T, Options).run();
}
