//===- detect/Deadlock.cpp - Predictive deadlock detection -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Deadlock.h"

#include "detect/Closure.h"
#include "detect/RaceEncoder.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

using namespace rvp;

namespace {

/// A nested acquisition: \p Request acquires \p Inner while the section
/// \p Outer (on \p OuterLock) is held by the same thread.
struct LockDependency {
  ThreadId Tid = 0;
  LockId OuterLock = 0;
  LockId InnerLock = 0;
  EventId Request = InvalidEvent;
  LockPair Outer;        ///< the enclosing critical section
  LockPair RequestPair;  ///< the requested (inner) section
};

class DeadlockDriver {
public:
  DeadlockDriver(const Trace &T, const DetectorOptions &Options)
      : T(T), Options(Options) {}

  DeadlockResult run() {
    Timer Clock;
    Solver = createSolverByName(Options.SolverName);
    if (!Solver)
      Solver = createIdlSolver();
    UseIncremental = Options.Incremental;
    Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                             : Options.Jobs;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs);
    Result.Stats.Jobs = Jobs;
    RunningValues.assign(T.numVars(), 0);
    for (VarId Var = 0; Var < T.numVars(); ++Var)
      RunningValues[Var] = T.initialValueOf(Var);

    {
      ScopedPhaseTimer DetectPhase("deadlock");
      for (Span Window : splitWindows(T, Options.WindowSize)) {
        ++Result.Stats.Windows;
        processWindow(Window);
        for (EventId Id = Window.Begin; Id < Window.End; ++Id)
          if (T[Id].isWrite())
            RunningValues[T[Id].Target] = T[Id].Data;
      }
    }
    Result.Stats.Seconds = Clock.seconds();
    if (Telemetry::enabled()) {
      if (SpeculativeSolves)
        MetricsRegistry::global()
            .counter("detect.speculative_solves")
            .add(SpeculativeSolves);
      Result.Stats.Telemetry = Telemetry::instance().snapshot();
    }
    return std::move(Result);
  }

private:
  std::vector<LockDependency> collectDependencies(Span Window) const {
    // Group each thread's complete in-window sections, then match every
    // acquire against the enclosing sections of the same thread.
    struct ThreadPair {
      LockId Lock;
      LockPair Pair;
    };
    std::vector<std::vector<ThreadPair>> PerThread(T.numThreads());
    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock)
      for (const LockPair &P : T.lockPairsOf(Lock))
        if (P.AcquireId != InvalidEvent && Window.contains(P.AcquireId))
          PerThread[P.Tid].push_back({Lock, P});

    std::vector<LockDependency> Deps;
    for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
      const std::vector<ThreadPair> &Pairs = PerThread[Tid];
      for (const ThreadPair &Req : Pairs) {
        for (const ThreadPair &Out : Pairs) {
          if (Out.Lock == Req.Lock || Out.Pair.ReleaseId == InvalidEvent ||
              !Window.contains(Out.Pair.ReleaseId))
            continue;
          if (Out.Pair.AcquireId < Req.Pair.AcquireId &&
              Req.Pair.AcquireId < Out.Pair.ReleaseId) {
            LockDependency Dep;
            Dep.Tid = Tid;
            Dep.OuterLock = Out.Lock;
            Dep.InnerLock = Req.Lock;
            Dep.Request = Req.Pair.AcquireId;
            Dep.Outer = Out.Pair;
            Dep.RequestPair = Req.Pair;
            Deps.push_back(Dep);
          }
        }
      }
    }
    return Deps;
  }

  static uint64_t signatureOf(const Trace &T, EventId ReqA, EventId ReqB) {
    LocId A = T[ReqA].Loc;
    LocId B = T[ReqB].Loc;
    if (A > B)
      std::swap(A, B);
    return (static_cast<uint64_t>(A) << 32) | B;
  }

  /// One opposite-order dependency pair plus the facts the parallel
  /// pre-filter derives for it; enumeration order matches the sequential
  /// nested loops.
  struct DeadlockCandidate {
    LockDependency A, B;
    uint64_t Sig = 0;
    /// Refuted by the MHB quick check (signature-independent).
    bool QcRejected = false;
  };

  struct DeadlockTaskResult {
    bool Solved = false;
    SatResult Sat = SatResult::Unknown;
    DeadlockReport Report;
  };

  /// Incremental mode: one shared builder + persistent solver session
  /// per window (sequential) or per worker per window (jobs > 1).
  struct DlSolveCtx {
    FormulaBuilder FB;
    std::unique_ptr<SmtSession> Session;
  };

  void processWindow(Span Window) {
    std::vector<LockDependency> Deps = collectDependencies(Window);
    if (Deps.empty())
      return;
    EventClosure Mhb(T, Window, ClosureConfig::mhb());
    RaceEncoder Encoder(T, Window, Mhb, RunningValues);

    if (Pool) {
      processWindowParallel(Window, Mhb, Encoder, Deps);
      return;
    }

    DlSolveCtx WindowCtx;
    DlSolveCtx *Ctx = nullptr;
    if (UseIncremental) {
      WindowCtx.Session = createSessionByName(Options.SolverName);
      if (!WindowCtx.Session)
        WindowCtx.Session = createIdlSession();
      Ctx = &WindowCtx;
    }

    for (size_t I = 0; I < Deps.size(); ++I) {
      for (size_t J = I + 1; J < Deps.size(); ++J) {
        const LockDependency &A = Deps[I];
        const LockDependency &B = Deps[J];
        // Opposite-order acquisition by different threads.
        if (A.Tid == B.Tid || A.OuterLock != B.InnerLock ||
            A.InnerLock != B.OuterLock)
          continue;
        ++Result.Stats.Cops;
        if (SeenSignatures.count(signatureOf(T, A.Request, B.Request)))
          continue;
        // Cheap refutations: an MHB order between a request and the other
        // side's section makes the hold state impossible.
        if (Options.UseQuickCheck) {
          if (Mhb.ordered(A.Request, B.Outer.AcquireId) ||
              Mhb.ordered(B.Outer.ReleaseId, A.Request) ||
              Mhb.ordered(B.Request, A.Outer.AcquireId) ||
              Mhb.ordered(A.Outer.ReleaseId, B.Request))
            continue;
          ++Result.Stats.QcPassed;
        }
        solveCandidate(Window, Mhb, Encoder, A, B, Ctx);
      }
    }
  }

  /// Parallel window: enumerate pairs sequentially (phase A), encode+solve
  /// the quick-check survivors concurrently (B), then replay in pair order
  /// against the live signature set (C). Mirrors the race and atomicity
  /// parallel paths; see docs/OBSERVABILITY.md.
  void processWindowParallel(Span Window, const EventClosure &Mhb,
                             const RaceEncoder &Encoder,
                             const std::vector<LockDependency> &Deps) {
    std::vector<DeadlockCandidate> Candidates;
    for (size_t I = 0; I < Deps.size(); ++I) {
      for (size_t J = I + 1; J < Deps.size(); ++J) {
        const LockDependency &A = Deps[I];
        const LockDependency &B = Deps[J];
        if (A.Tid == B.Tid || A.OuterLock != B.InnerLock ||
            A.InnerLock != B.OuterLock)
          continue;
        ++Result.Stats.Cops;
        DeadlockCandidate C;
        C.A = A;
        C.B = B;
        C.Sig = signatureOf(T, A.Request, B.Request);
        if (Options.UseQuickCheck)
          C.QcRejected = Mhb.ordered(A.Request, B.Outer.AcquireId) ||
                         Mhb.ordered(B.Outer.ReleaseId, A.Request) ||
                         Mhb.ordered(B.Request, A.Outer.AcquireId) ||
                         Mhb.ordered(A.Outer.ReleaseId, B.Request);
        Candidates.push_back(C);
      }
    }

    std::vector<DeadlockTaskResult> Results(Candidates.size());
    // Per-worker window-scoped sessions; the trailing slot serves the
    // main thread (currentWorkerIndex() == -1) when it helps out.
    std::vector<DlSolveCtx> Contexts;
    if (UseIncremental)
      Contexts.resize(Pool->numWorkers() + 1);
    Pool->parallelFor(0, Candidates.size(), [&](size_t Index) {
      const DeadlockCandidate &C = Candidates[Index];
      if (C.QcRejected)
        return;
      DlSolveCtx *Ctx = nullptr;
      if (!Contexts.empty()) {
        int W = Pool->currentWorkerIndex();
        Ctx = &Contexts[W >= 0 ? static_cast<size_t>(W)
                               : Contexts.size() - 1];
      }
      solveCandidateTask(Window, Mhb, Encoder, C, Ctx, Results[Index]);
    });

    for (size_t Index = 0; Index < Candidates.size(); ++Index) {
      const DeadlockCandidate &C = Candidates[Index];
      DeadlockTaskResult &R = Results[Index];
      if (SeenSignatures.count(C.Sig)) {
        if (R.Solved)
          ++SpeculativeSolves;
        continue;
      }
      if (C.QcRejected)
        continue;
      if (Options.UseQuickCheck)
        ++Result.Stats.QcPassed;
      ++Result.Stats.SolverCalls;
      if (R.Sat == SatResult::Unknown) {
        ++Result.Stats.SolverTimeouts;
        continue;
      }
      if (R.Sat == SatResult::Unsat)
        continue;
      SeenSignatures.insert(C.Sig);
      Result.Deadlocks.push_back(std::move(R.Report));
    }
  }

  /// Phase B worker body: solve one pair with a private solver instance
  /// and build the complete report, witness included.
  void solveCandidateTask(Span Window, const EventClosure &Mhb,
                          const RaceEncoder &Encoder,
                          const DeadlockCandidate &C, DlSolveCtx *Ctx,
                          DeadlockTaskResult &Out) {
    const LockDependency &A = C.A;
    const LockDependency &B = C.B;
    if (Ctx && !Ctx->Session) {
      Ctx->Session = createSessionByName(Options.SolverName);
      if (!Ctx->Session)
        Ctx->Session = createIdlSession();
    }
    FormulaBuilder TaskFB;
    FormulaBuilder &FB = Ctx ? Ctx->FB : TaskFB;
    NodeRef Root =
        Encoder.encodeDeadlock(FB, A.Request, B.Request, A.Outer, B.Outer);
    OrderModel Model;
    if (Ctx) {
      Out.Sat = Ctx->Session->query(
          FB, Root, Deadline::after(Options.PerCopBudgetSeconds), nullptr);
    } else {
      std::unique_ptr<SmtSolver> TaskSolver =
          createSolverByName(Options.SolverName);
      if (!TaskSolver)
        TaskSolver = createIdlSolver();
      Out.Sat = TaskSolver->solve(
          FB, Root, Deadline::after(Options.PerCopBudgetSeconds),
          Options.CollectWitnesses ? &Model : nullptr);
    }
    Out.Solved = true;
    if (Out.Sat != SatResult::Sat)
      return;
    if (Ctx && Options.CollectWitnesses)
      rederiveModel(Encoder, A, B, Model);

    DeadlockReport &Report = Out.Report;
    Report.ThreadA = A.Tid;
    Report.ThreadB = B.Tid;
    Report.LockHeldByA = A.OuterLock;
    Report.LockHeldByB = B.OuterLock;
    Report.RequestA = A.Request;
    Report.RequestB = B.Request;
    Report.LocRequestA = T.locName(T[A.Request].Loc);
    Report.LocRequestB = T.locName(T[B.Request].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      std::unordered_set<EventId> Skip = {A.Request, B.Request};
      if (A.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(A.RequestPair.ReleaseId);
      if (B.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(B.RequestPair.ReleaseId);
      Report.WitnessValid =
          checkDeadlockWitness(T, Window, Report.Witness, A.Request,
                               B.Request, A.Outer, B.Outer, Skip, Encoder,
                               Mhb, RunningValues)
              .Ok;
    }
  }

  void solveCandidate(Span Window, const EventClosure &Mhb,
                      const RaceEncoder &Encoder, const LockDependency &A,
                      const LockDependency &B, DlSolveCtx *Ctx) {
    FormulaBuilder LocalFB;
    FormulaBuilder &FB = Ctx ? Ctx->FB : LocalFB;
    NodeRef Root =
        Encoder.encodeDeadlock(FB, A.Request, B.Request, A.Outer, B.Outer);
    OrderModel Model;
    ++Result.Stats.SolverCalls;
    SatResult Sat =
        Ctx ? Ctx->Session->query(
                  FB, Root, Deadline::after(Options.PerCopBudgetSeconds),
                  nullptr)
            : Solver->solve(
                  FB, Root, Deadline::after(Options.PerCopBudgetSeconds),
                  Options.CollectWitnesses ? &Model : nullptr);
    if (Sat == SatResult::Unknown) {
      ++Result.Stats.SolverTimeouts;
      return;
    }
    if (Sat == SatResult::Unsat)
      return;
    if (Ctx && Options.CollectWitnesses)
      rederiveModel(Encoder, A, B, Model);

    DeadlockReport Report;
    Report.ThreadA = A.Tid;
    Report.ThreadB = B.Tid;
    Report.LockHeldByA = A.OuterLock;
    Report.LockHeldByB = B.OuterLock;
    Report.RequestA = A.Request;
    Report.RequestB = B.Request;
    Report.LocRequestA = T.locName(T[A.Request].Loc);
    Report.LocRequestB = T.locName(T[B.Request].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      std::unordered_set<EventId> Skip = {A.Request, B.Request};
      if (A.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(A.RequestPair.ReleaseId);
      if (B.RequestPair.ReleaseId != InvalidEvent)
        Skip.insert(B.RequestPair.ReleaseId);
      Report.WitnessValid =
          checkDeadlockWitness(T, Window, Report.Witness, A.Request,
                               B.Request, A.Outer, B.Outer, Skip, Encoder,
                               Mhb, RunningValues)
              .Ok;
    }
    SeenSignatures.insert(signatureOf(T, A.Request, B.Request));
    Result.Deadlocks.push_back(std::move(Report));
  }

  /// Same role as Detect.cpp's rederiveModel: witnesses come from
  /// re-encoding the pair into a fresh builder and solving one-shot —
  /// exactly the legacy path's instance — so they match byte for byte and
  /// never depend on session history or shared-builder ref numbering.
  bool rederiveModel(const RaceEncoder &Encoder, const LockDependency &A,
                     const LockDependency &B, OrderModel &Model) const {
    FormulaBuilder FreshFB;
    NodeRef Root = Encoder.encodeDeadlock(FreshFB, A.Request, B.Request,
                                          A.Outer, B.Outer);
    std::unique_ptr<SmtSolver> Fresh =
        createSolverByName(Options.SolverName);
    if (!Fresh)
      Fresh = createIdlSolver();
    if (Telemetry::enabled())
      MetricsRegistry::global().counter("solver.witness_resolves").inc();
    return Fresh->solve(FreshFB, Root,
                        Deadline::after(Options.PerCopBudgetSeconds),
                        &Model) == SatResult::Sat;
  }

  std::vector<EventId> buildWitness(Span Window,
                                    const OrderModel &Model) const {
    std::vector<EventId> Order;
    Order.reserve(Window.size());
    for (EventId Id = Window.Begin; Id < Window.End; ++Id)
      Order.push_back(Id);
    std::sort(Order.begin(), Order.end(), [&](EventId X, EventId Y) {
      auto KeyOf = [&](EventId Id) -> std::pair<int64_t, int64_t> {
        auto It = Model.find(Id);
        return {It == Model.end() ? INT64_MAX : It->second,
                static_cast<int64_t>(Id)};
      };
      return KeyOf(X) < KeyOf(Y);
    });
    return Order;
  }

  const Trace &T;
  DetectorOptions Options;
  DeadlockResult Result;
  std::unique_ptr<SmtSolver> Solver;
  std::unique_ptr<ThreadPool> Pool;
  uint32_t Jobs = 1;
  bool UseIncremental = false;
  uint64_t SpeculativeSolves = 0;
  std::vector<Value> RunningValues;
  std::unordered_set<uint64_t> SeenSignatures;
};

} // namespace

DeadlockResult rvp::detectDeadlocks(const Trace &T,
                                    const DetectorOptions &Options) {
  return DeadlockDriver(T, Options).run();
}
