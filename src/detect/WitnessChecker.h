//===- detect/WitnessChecker.h - Race witness validation ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent validation of a predicted race witness, mirroring the
/// construction in the proof of Theorem 3: the reordered window must
/// respect program order, the must-happen-before rules, lock mutual
/// exclusion, bring the two accesses adjacent, and keep every read that
/// control flow depends on *concrete* (reading its recorded value). Events
/// not reachable from the race's guarding branches are data-abstract and
/// may observe different values.
///
/// The detectors run this on every witness before reporting; a failure
/// indicates an encoder or solver bug, never a user error.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_WITNESSCHECKER_H
#define RVP_DETECT_WITNESSCHECKER_H

#include "detect/RaceEncoder.h"
#include "trace/Trace.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace rvp {

struct WitnessCheckResult {
  bool Ok = true;
  std::string Message;
};

/// Validates \p Order (a permutation of the events of \p S) as a witness
/// that \p A and \p B race. \p Encoder supplies the window's guarding
/// branches and initial values; \p Mhb the window's MHB closure.
WitnessCheckResult checkWitness(const Trace &T, Span S,
                                const std::vector<EventId> &Order,
                                EventId A, EventId B,
                                const RaceEncoder &Encoder,
                                const EventClosure &Mhb,
                                const std::vector<Value> &InitialValues);

/// Validates \p Order as a hold-and-wait deadlock witness: \p ReqA sits
/// inside the section OutB and \p ReqB inside OutA, with the requests'
/// own lock effects excluded (they never complete). \p SkipLockEffects
/// must contain the two requests and their (never-happening) releases.
WitnessCheckResult checkDeadlockWitness(
    const Trace &T, Span S, const std::vector<EventId> &Order,
    EventId ReqA, EventId ReqB, const LockPair &OutA, const LockPair &OutB,
    const std::unordered_set<EventId> &SkipLockEffects,
    const RaceEncoder &Encoder, const EventClosure &Mhb,
    const std::vector<Value> &InitialValues);

/// Validates \p Order as an atomicity-violation witness: \p Remote
/// executes strictly between \p First and \p Second, with the same
/// structural and concrete-read requirements as race witnesses.
WitnessCheckResult
checkAtomicityWitness(const Trace &T, Span S,
                      const std::vector<EventId> &Order, EventId First,
                      EventId Remote, EventId Second,
                      const RaceEncoder &Encoder, const EventClosure &Mhb,
                      const std::vector<Value> &InitialValues);

} // namespace rvp

#endif // RVP_DETECT_WITNESSCHECKER_H
