//===- detect/WindowEncoding.h - Shared per-window encoding state -*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The COP-invariant half of the race encoding (detect/RaceEncoder.h),
/// factored out so it is computed once per analysis window instead of once
/// per encode call, and so the parallel per-COP solve loop
/// (detect/Detect.cpp) can share it read-only across worker tasks:
///
///  * per-thread event/branch/read indices and per-variable write indices,
///  * the Φ_mhb atom list (program order, fork/join, wait/notify) in the
///    exact order encodeMhb emits it,
///  * the Φ_lock constraint descriptors (mutual exclusion of critical-
///    section pairs, window-clipped), tagged with the sections' acquire
///    events so deadlock queries can exclude sections after the fact,
///  * the read-consistency skeleton per in-window read: interfering
///    writes, value-matched unshadowed candidate writes, and whether the
///    initial-value disjunct applies.
///
/// Only the substitution `Oa := Ob` and the control-flow guards differ per
/// COP; RaceEncoder applies those at emission time. A WindowEncoding is
/// immutable after construction: concurrent readers need no
/// synchronization. The referenced Trace and EventClosure must outlive it.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_WINDOWENCODING_H
#define RVP_DETECT_WINDOWENCODING_H

#include "detect/Closure.h"
#include "smt/Formula.h"
#include "support/MemStats.h"
#include "trace/Trace.h"

#include <utility>
#include <vector>

namespace rvp {

class WindowEncoding {
public:
  /// Synthetic order variable placed before every window event; it gives
  /// every event at least one atom so that models are total over the
  /// window (needed when assembling witness orders).
  static constexpr OrderVar RootVar = UINT32_MAX - 7;

  /// \p InitialValues gives each variable's value at window entry (index
  /// by VarId; missing entries default to 0). \p Mhb must be the MHB
  /// closure (ClosureConfig::mhb()) of the same window.
  WindowEncoding(const Trace &T, Span S, const EventClosure &Mhb,
                 const std::vector<Value> &InitialValues);

  WindowEncoding(const WindowEncoding &) = delete;
  WindowEncoding &operator=(const WindowEncoding &) = delete;

  const Trace &T;
  const Span Window;
  const EventClosure &Mhb;
  std::vector<Value> InitialValues; ///< per VarId at window entry

  /// Per-thread event ids within the window, ascending.
  std::vector<std::vector<EventId>> ThreadEvents;
  /// Per-thread branch events within the window, ascending.
  std::vector<std::vector<EventId>> ThreadBranches;
  /// Per-thread read events within the window, ascending.
  std::vector<std::vector<EventId>> ThreadReads;
  /// Per-variable write events within the window, ascending.
  std::vector<std::vector<EventId>> VarWrites;
  /// All read events within the window (for the Said encoding).
  std::vector<EventId> AllReads;

  /// Φ_mhb as ordered (from, to) atom operands; `from` may be RootVar.
  std::vector<std::pair<OrderVar, OrderVar>> MhbEdges;

  /// The cross-thread subset of Φ_mhb (fork/join and wait/notify edges,
  /// in MhbEdges order). The cone-sliced encoder keeps every cross edge
  /// unconditionally — they are few, and seeding their endpoints into the
  /// cone means the per-thread chain compression can never lose an
  /// inter-thread ordering (docs/ENCODER.md).
  std::vector<std::pair<OrderVar, OrderVar>> CrossEdges;

  /// One Φ_lock conjunct: Or(RelP < AcqQ, RelQ < AcqP) when Mutex, the
  /// single atom RelP < AcqQ otherwise (one-sided sections clipped by the
  /// window). SectionAcqP/Q are the two sections' trace-level acquire
  /// events, used to drop constraints for sections a deadlock query
  /// excludes.
  struct LockConstraint {
    EventId RelP = InvalidEvent;
    EventId AcqQ = InvalidEvent;
    EventId RelQ = InvalidEvent;
    EventId AcqP = InvalidEvent;
    bool Mutex = false;
    EventId SectionAcqP = InvalidEvent;
    EventId SectionAcqQ = InvalidEvent;
  };
  std::vector<LockConstraint> LockConstraints;

  /// Lock-section index for the cone-of-influence fixpoint
  /// (docs/ENCODER.md): a lock constraint is relevant to a COP exactly
  /// when some cone event lies inside (or at an endpoint of) one of its
  /// two critical sections. Sections are the window-clipped acquire/
  /// release spans that participate in at least one LockConstraint.
  /// sectionsOf() maps a window event to the sections enclosing it;
  /// SectionConstraints maps a section to the LockConstraints it is a
  /// side of; endpoints to pull into the cone live on the constraint
  /// itself (RelP/AcqQ/RelQ/AcqP).
  const std::vector<uint32_t> &sectionsOf(EventId E) const {
    return EventSections[E - Window.Begin];
  }
  std::vector<std::vector<uint32_t>> SectionConstraints;

  /// Read-consistency skeleton for one read (Section 3.2's Φ_value, minus
  /// the per-COP substitution).
  struct ReadCandidate {
    EventId Write = InvalidEvent;
    /// Interfering writes needing an ordering disjunction around the
    /// candidate, in interference order.
    std::vector<EventId> Others;
  };
  struct ReadInfo {
    /// In-window writes to the read's variable not MHB-after the read.
    std::vector<EventId> Interfering;
    /// Value-matched, unshadowed candidate writes, in interference order.
    std::vector<ReadCandidate> Candidates;
    /// The initial-value disjunct applies: the read's value equals the
    /// window-entry value and no interfering write must precede the read.
    bool InitialOk = false;
  };

  /// The skeleton for in-window read \p R.
  const ReadInfo &readInfo(EventId R) const;

private:
  /// Indexed by window offset (R - Window.Begin); non-read offsets hold a
  /// default ReadInfo. readInfo() sits on the encode hot path, so the
  /// flat vector replaces the former hash map: one subtraction instead of
  /// a hash lookup per read.
  std::vector<ReadInfo> Reads;
  /// Indexed by window offset: section ids enclosing the event.
  std::vector<std::vector<uint32_t>> EventSections;
  /// mem.encoding_* accounting, charged once at the end of construction
  /// with the container footprint (support/MemStats.h).
  MemCharge Mem{MemPool::Encoding};
};

} // namespace rvp

#endif // RVP_DETECT_WINDOWENCODING_H
