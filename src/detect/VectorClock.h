//===- detect/VectorClock.h - Vector clocks ----------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width vector clocks over the threads of one trace, used by the
/// MHB closure, the HB detector, the CP detector, and the WCP tier.
///
/// Clocks may be narrower than the thread universe (a clock built before a
/// late spawn, or default-constructed empty): every operation treats the
/// missing components as 0, and the mutating ones widen the clock first,
/// so mixed-width algebra is well-defined instead of indexing out of the
/// shorter vector.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_VECTORCLOCK_H
#define RVP_DETECT_VECTORCLOCK_H

#include "trace/Event.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace rvp {

/// One component of a vector clock: thread \p Tid at local time \p Time.
/// The WCP tier's release publications and ordering queries pass these
/// around instead of full clocks (the FastTrack-style epoch idiom).
struct Epoch {
  ThreadId Tid = 0;
  uint64_t Time = 0;
};

class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(uint32_t NumThreads) : Clock(NumThreads, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(Clock.size()); }

  /// Components past the clock's width read as 0 (nothing of that thread
  /// is covered yet).
  uint64_t get(ThreadId Tid) const {
    return Tid < Clock.size() ? Clock[Tid] : 0;
  }
  void set(ThreadId Tid, uint64_t Value) {
    ensure(Tid + 1);
    Clock[Tid] = Value;
  }
  void tick(ThreadId Tid) {
    ensure(Tid + 1);
    ++Clock[Tid];
  }

  /// Widens the clock to at least \p NumThreads components (new ones 0).
  void ensure(uint32_t NumThreads) {
    if (Clock.size() < NumThreads)
      Clock.resize(NumThreads, 0);
  }

  /// Pointwise maximum. A narrower operand contributes 0 for its missing
  /// components; a wider one widens this clock first, so no component of
  /// either side is ever dropped (late-spawned threads).
  void join(const VectorClock &Other) {
    ensure(Other.size());
    for (uint32_t I = 0; I < Other.Clock.size(); ++I)
      Clock[I] = std::max(Clock[I], Other.Clock[I]);
  }

  /// Join with one component raised to at least E.Time — the
  /// increment-join of the WCP release publications (send = clock joined
  /// with the sender's own release time).
  void joinEpoch(const Epoch &E) {
    ensure(E.Tid + 1);
    Clock[E.Tid] = std::max(Clock[E.Tid], E.Time);
  }

  /// True iff this clock covers thread E.Tid up to time E.Time.
  bool covers(const Epoch &E) const { return get(E.Tid) >= E.Time; }

  /// True iff this <= Other pointwise (this happens-before-or-equals).
  /// Missing components on either side compare as 0.
  bool lessOrEqual(const VectorClock &Other) const {
    for (uint32_t I = 0; I < Clock.size(); ++I)
      if (Clock[I] > Other.get(I))
        return false;
    return true;
  }

  /// Width-insensitive equality: clocks differing only in trailing zero
  /// components are equal.
  bool operator==(const VectorClock &Other) const {
    const VectorClock &Short = size() <= Other.size() ? *this : Other;
    const VectorClock &Long = size() <= Other.size() ? Other : *this;
    for (uint32_t I = 0; I < Short.size(); ++I)
      if (Short.Clock[I] != Long.Clock[I])
        return false;
    for (uint32_t I = Short.size(); I < Long.size(); ++I)
      if (Long.Clock[I] != 0)
        return false;
    return true;
  }

private:
  std::vector<uint64_t> Clock;
};

} // namespace rvp

#endif // RVP_DETECT_VECTORCLOCK_H
