//===- detect/VectorClock.h - Vector clocks ----------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width vector clocks over the threads of one trace, used by the
/// MHB closure, the HB detector, and the CP detector.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_VECTORCLOCK_H
#define RVP_DETECT_VECTORCLOCK_H

#include "trace/Event.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace rvp {

class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(uint32_t NumThreads) : Clock(NumThreads, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(Clock.size()); }

  uint64_t get(ThreadId Tid) const { return Clock[Tid]; }
  void set(ThreadId Tid, uint64_t Value) { Clock[Tid] = Value; }
  void tick(ThreadId Tid) { ++Clock[Tid]; }

  /// Pointwise maximum.
  void join(const VectorClock &Other) {
    for (uint32_t I = 0; I < Clock.size(); ++I)
      Clock[I] = std::max(Clock[I], Other.Clock[I]);
  }

  /// True iff this <= Other pointwise (this happens-before-or-equals).
  bool lessOrEqual(const VectorClock &Other) const {
    for (uint32_t I = 0; I < Clock.size(); ++I)
      if (Clock[I] > Other.Clock[I])
        return false;
    return true;
  }

  bool operator==(const VectorClock &Other) const {
    return Clock == Other.Clock;
  }

private:
  std::vector<uint64_t> Clock;
};

} // namespace rvp

#endif // RVP_DETECT_VECTORCLOCK_H
