//===- detect/Atomicity.cpp - Maximal atomicity-violation detection ----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"

#include "detect/Closure.h"
#include "detect/Lockset.h"
#include "detect/RaceEncoder.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"
#include "support/Compiler.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

using namespace rvp;

const char *rvp::atomicityPatternName(AtomicityPattern Pattern) {
  switch (Pattern) {
  case AtomicityPattern::ReadWriteRead:
    return "r-W-r (unrepeatable read)";
  case AtomicityPattern::WriteReadWrite:
    return "w-R-w (dirty read)";
  case AtomicityPattern::WriteWriteRead:
    return "w-W-r (remote overwrite observed)";
  case AtomicityPattern::ReadWriteWrite:
    return "r-W-w (lost local update)";
  }
  RVP_UNREACHABLE("unknown atomicity pattern");
}

bool rvp::classifyAtomicity(const Event &First, const Event &Remote,
                            const Event &Second, AtomicityPattern &Out) {
  const bool F = First.isWrite();
  const bool R = Remote.isWrite();
  const bool S = Second.isWrite();
  if (!F && R && !S) {
    Out = AtomicityPattern::ReadWriteRead;
    return true;
  }
  if (F && !R && S) {
    Out = AtomicityPattern::WriteReadWrite;
    return true;
  }
  if (F && R && !S) {
    Out = AtomicityPattern::WriteWriteRead;
    return true;
  }
  if (!F && R && S) {
    Out = AtomicityPattern::ReadWriteWrite;
    return true;
  }
  return false; // remote read between non-writes etc.: serializable
}

bool AtomicityResult::hasViolationAt(const std::string &First,
                                     const std::string &Remote,
                                     const std::string &Second) const {
  for (const AtomicityReport &V : Violations)
    if (V.LocFirst == First && V.LocRemote == Remote &&
        V.LocSecond == Second)
      return true;
  return false;
}

namespace {

/// Signature of a violation: the three static locations.
uint64_t signatureOf(const Trace &T, EventId A1, EventId B, EventId A2) {
  uint64_t H = 1469598103934665603ULL;
  for (LocId Loc : {T[A1].Loc, T[B].Loc, T[A2].Loc}) {
    H ^= Loc;
    H *= 1099511628211ULL;
  }
  return H;
}

/// One enumerated candidate plus every fact the parallel pre-filter phase
/// derives for it. Enumeration order matches the sequential nested loops,
/// so the sequential collection phase reproduces the exact sequential
/// SeenSignatures evolution and statistics.
struct AtomCandidate {
  LockId Lock = 0;
  LockPair Region;
  EventId A1 = InvalidEvent;
  EventId B = InvalidEvent;
  EventId A2 = InvalidEvent;
  AtomicityPattern Pattern = AtomicityPattern::ReadWriteRead;
  uint64_t Sig = 0;
  /// Rejected by the lockset / MHB quick check (signature-independent, so
  /// it is safe to precompute before the solving phase).
  bool QcRejected = false;
};

/// What a parallel solve task produced for one candidate.
struct AtomTaskResult {
  bool Solved = false;
  SatResult Sat = SatResult::Unknown;
  AtomicityReport Report;
};

/// Incremental mode: a shared hash-consing builder plus a persistent
/// solver session. One per window sequentially; one per worker (plus the
/// helping main thread) per window with jobs > 1.
struct AtomSolveCtx {
  FormulaBuilder FB;
  std::unique_ptr<SmtSession> Session;
};

class AtomicityDriver {
public:
  AtomicityDriver(const Trace &T, const DetectorOptions &Options)
      : T(T), Options(Options) {}

  AtomicityResult run() {
    Timer Clock;
    Solver = createSolverByName(Options.SolverName);
    if (!Solver)
      Solver = createIdlSolver();
    UseIncremental = Options.Incremental;
    Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                             : Options.Jobs;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs);
    Result.Stats.Jobs = Jobs;
    RunningValues.assign(T.numVars(), 0);
    for (VarId Var = 0; Var < T.numVars(); ++Var)
      RunningValues[Var] = T.initialValueOf(Var);

    {
      ScopedPhaseTimer DetectPhase("atomicity");
      for (Span Window : splitWindows(T, Options.WindowSize)) {
        ++Result.Stats.Windows;
        processWindow(Window);
        for (EventId Id = Window.Begin; Id < Window.End; ++Id)
          if (T[Id].isWrite())
            RunningValues[T[Id].Target] = T[Id].Data;
      }
    }
    Result.Stats.Seconds = Clock.seconds();
    if (Telemetry::enabled()) {
      if (SpeculativeSolves)
        MetricsRegistry::global()
            .counter("detect.speculative_solves")
            .add(SpeculativeSolves);
      Result.Stats.Telemetry = Telemetry::instance().snapshot();
    }
    return std::move(Result);
  }

private:
  void processWindow(Span Window) {
    EventClosure Mhb(T, Window, ClosureConfig::mhb());
    EncoderOptions EncOpts; // no substitution for the between-query
    RaceEncoder Encoder(T, Window, Mhb, RunningValues, EncOpts);
    LocksetIndex Locksets(T, Window);

    if (Pool) {
      processWindowParallel(Window, Mhb, Encoder, Locksets);
      return;
    }

    AtomSolveCtx WindowCtx;
    AtomSolveCtx *Ctx = nullptr;
    if (UseIncremental) {
      WindowCtx.Session = createSessionByName(Options.SolverName);
      if (!WindowCtx.Session)
        WindowCtx.Session = createIdlSession();
      Ctx = &WindowCtx;
    }

    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
      for (const LockPair &Region : T.lockPairsOf(Lock)) {
        if (Region.AcquireId == InvalidEvent ||
            Region.ReleaseId == InvalidEvent ||
            !Window.contains(Region.AcquireId) ||
            !Window.contains(Region.ReleaseId))
          continue;
        checkRegion(Window, Mhb, Encoder, Locksets, Lock, Region, Ctx);
      }
    }
  }

  /// Same role as Detect.cpp's rederiveModel: the incremental session only
  /// answers sat/unsat, so the witness model comes from re-encoding the
  /// candidate into a fresh builder and solving one-shot — exactly the
  /// legacy path's instance, byte-identical model included. (The shared
  /// window builder would not do: And/Or children are canonicalized by
  /// node reference, so ref numbering from earlier candidates reshapes the
  /// DAG and the model the solver happens to pick.)
  bool rederiveModel(const RaceEncoder &Encoder, EventId A1, EventId B,
                     EventId A2, OrderModel &Model) const {
    FormulaBuilder FreshFB;
    NodeRef Root = Encoder.encodeBetween(FreshFB, A1, B, A2);
    std::unique_ptr<SmtSolver> Fresh =
        createSolverByName(Options.SolverName);
    if (!Fresh)
      Fresh = createIdlSolver();
    if (Telemetry::enabled())
      MetricsRegistry::global().counter("solver.witness_resolves").inc();
    return Fresh->solve(FreshFB, Root,
                        Deadline::after(Options.PerCopBudgetSeconds),
                        &Model) == SatResult::Sat;
  }

  /// Phase A of the parallel path: enumerate candidates in the exact
  /// sequential nested-loop order, counting Stats.Cops and precomputing
  /// the signature and the (signature-independent) quick-check verdict.
  std::vector<AtomCandidate>
  enumerateCandidates(Span Window, const EventClosure &Mhb,
                      const LocksetIndex &Locksets) {
    std::vector<AtomCandidate> Candidates;
    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
      for (const LockPair &Region : T.lockPairsOf(Lock)) {
        if (Region.AcquireId == InvalidEvent ||
            Region.ReleaseId == InvalidEvent ||
            !Window.contains(Region.AcquireId) ||
            !Window.contains(Region.ReleaseId))
          continue;
        std::vector<EventId> Local;
        for (EventId Id = Region.AcquireId + 1; Id < Region.ReleaseId;
             ++Id)
          if (T[Id].Tid == Region.Tid && T[Id].isAccess() &&
              !T[Id].Volatile)
            Local.push_back(Id);
        for (size_t I = 0; I < Local.size(); ++I) {
          for (size_t J = I + 1; J < Local.size(); ++J) {
            EventId A1 = Local[I];
            EventId A2 = Local[J];
            if (T[A1].Target != T[A2].Target)
              continue;
            for (EventId B : T.accessesOf(T[A1].Target)) {
              if (!Window.contains(B) || T[B].Tid == Region.Tid ||
                  T[B].Volatile)
                continue;
              AtomicityPattern Pattern;
              if (!classifyAtomicity(T[A1], T[B], T[A2], Pattern))
                continue;
              ++Result.Stats.Cops;
              AtomCandidate C;
              C.Lock = Lock;
              C.Region = Region;
              C.A1 = A1;
              C.B = B;
              C.A2 = A2;
              C.Pattern = Pattern;
              C.Sig = signatureOf(T, A1, B, A2);
              if (Options.UseQuickCheck) {
                const std::vector<LockId> &Held = Locksets.heldAt(B);
                C.QcRejected =
                    std::find(Held.begin(), Held.end(), Lock) !=
                        Held.end() ||
                    Mhb.ordered(B, A1) || Mhb.ordered(A2, B);
              }
              Candidates.push_back(C);
            }
          }
        }
      }
    }
    return Candidates;
  }

  /// Parallel window: enumerate sequentially (A), encode+solve every
  /// quick-check survivor concurrently (B), then replay the results in
  /// candidate order against the live signature set (C) so reports and
  /// summary statistics match the sequential path exactly. Solves whose
  /// signature turns out to be already seen are speculative and are
  /// discarded in phase C.
  void processWindowParallel(Span Window, const EventClosure &Mhb,
                             const RaceEncoder &Encoder,
                             const LocksetIndex &Locksets) {
    std::vector<AtomCandidate> Candidates =
        enumerateCandidates(Window, Mhb, Locksets);
    std::vector<AtomTaskResult> Results(Candidates.size());

    // Incremental mode: per-worker window-scoped sessions; the trailing
    // slot serves the main thread (currentWorkerIndex() == -1) when it
    // helps drain the queue.
    std::vector<AtomSolveCtx> Contexts;
    if (UseIncremental)
      Contexts.resize(Pool->numWorkers() + 1);
    Pool->parallelFor(0, Candidates.size(), [&](size_t Index) {
      const AtomCandidate &C = Candidates[Index];
      if (C.QcRejected)
        return;
      AtomSolveCtx *Ctx = nullptr;
      if (!Contexts.empty()) {
        int W = Pool->currentWorkerIndex();
        Ctx = &Contexts[W >= 0 ? static_cast<size_t>(W)
                               : Contexts.size() - 1];
      }
      solveCandidateTask(Window, Mhb, Encoder, C, Ctx, Results[Index]);
    });

    for (size_t Index = 0; Index < Candidates.size(); ++Index) {
      const AtomCandidate &C = Candidates[Index];
      AtomTaskResult &R = Results[Index];
      if (SeenSignatures.count(C.Sig)) {
        if (R.Solved)
          ++SpeculativeSolves;
        continue;
      }
      if (C.QcRejected)
        continue;
      if (Options.UseQuickCheck)
        ++Result.Stats.QcPassed;
      ++Result.Stats.SolverCalls;
      if (R.Sat == SatResult::Unknown) {
        ++Result.Stats.SolverTimeouts;
        continue;
      }
      if (R.Sat == SatResult::Unsat)
        continue;
      SeenSignatures.insert(C.Sig);
      Result.Violations.push_back(std::move(R.Report));
    }
  }

  /// Phase B worker body: encode and solve one candidate with a private
  /// solver instance, building the full report (witness included) so the
  /// collection phase only has to accept or discard it.
  void solveCandidateTask(Span Window, const EventClosure &Mhb,
                          const RaceEncoder &Encoder,
                          const AtomCandidate &C, AtomSolveCtx *Ctx,
                          AtomTaskResult &Out) {
    if (Ctx && !Ctx->Session) {
      Ctx->Session = createSessionByName(Options.SolverName);
      if (!Ctx->Session)
        Ctx->Session = createIdlSession();
    }
    FormulaBuilder TaskFB;
    FormulaBuilder &FB = Ctx ? Ctx->FB : TaskFB;
    NodeRef Root = Encoder.encodeBetween(FB, C.A1, C.B, C.A2);
    OrderModel Model;
    if (Ctx) {
      Out.Sat = Ctx->Session->query(
          FB, Root, Deadline::after(Options.PerCopBudgetSeconds), nullptr);
    } else {
      std::unique_ptr<SmtSolver> TaskSolver =
          createSolverByName(Options.SolverName);
      if (!TaskSolver)
        TaskSolver = createIdlSolver();
      Out.Sat = TaskSolver->solve(
          FB, Root, Deadline::after(Options.PerCopBudgetSeconds),
          Options.CollectWitnesses ? &Model : nullptr);
    }
    Out.Solved = true;
    if (Out.Sat != SatResult::Sat)
      return;
    if (Ctx && Options.CollectWitnesses)
      rederiveModel(Encoder, C.A1, C.B, C.A2, Model);

    AtomicityReport &Report = Out.Report;
    Report.RegionLock = C.Lock;
    Report.RegionAcquire = C.Region.AcquireId;
    Report.RegionRelease = C.Region.ReleaseId;
    Report.First = C.A1;
    Report.Remote = C.B;
    Report.Second = C.A2;
    Report.Pattern = C.Pattern;
    Report.Variable = T.varName(T[C.A1].Target);
    Report.LocFirst = T.locName(T[C.A1].Loc);
    Report.LocRemote = T.locName(T[C.B].Loc);
    Report.LocSecond = T.locName(T[C.A2].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      Report.WitnessValid =
          checkAtomicityWitness(T, Window, Report.Witness, C.A1, C.B,
                                C.A2, Encoder, Mhb, RunningValues)
              .Ok;
    }
  }

  void checkRegion(Span Window, const EventClosure &Mhb,
                   const RaceEncoder &Encoder,
                   const LocksetIndex &Locksets, LockId Lock,
                   const LockPair &Region, AtomSolveCtx *Ctx) {
    // Local same-variable access pairs inside the region.
    std::vector<EventId> Local;
    for (EventId Id = Region.AcquireId + 1; Id < Region.ReleaseId; ++Id)
      if (T[Id].Tid == Region.Tid && T[Id].isAccess() && !T[Id].Volatile)
        Local.push_back(Id);

    for (size_t I = 0; I < Local.size(); ++I) {
      for (size_t J = I + 1; J < Local.size(); ++J) {
        EventId A1 = Local[I];
        EventId A2 = Local[J];
        if (T[A1].Target != T[A2].Target)
          continue;
        // Candidate remote accesses on the same variable.
        for (EventId B : T.accessesOf(T[A1].Target)) {
          if (!Window.contains(B) || T[B].Tid == Region.Tid ||
              T[B].Volatile)
            continue;
          AtomicityPattern Pattern;
          if (!classifyAtomicity(T[A1], T[B], T[A2], Pattern))
            continue;
          ++Result.Stats.Cops;
          if (SeenSignatures.count(signatureOf(T, A1, B, A2)))
            continue;
          // Quick filters: holding the region's lock, or an MHB order
          // incompatible with "between", make the query unsatisfiable.
          if (Options.UseQuickCheck) {
            const std::vector<LockId> &Held = Locksets.heldAt(B);
            if (std::find(Held.begin(), Held.end(), Lock) != Held.end())
              continue;
            if (Mhb.ordered(B, A1) || Mhb.ordered(A2, B))
              continue;
            ++Result.Stats.QcPassed;
          }

          solveCandidate(Window, Mhb, Encoder, Lock, Region, A1, B, A2,
                         Pattern, Ctx);
        }
      }
    }
  }

  void solveCandidate(Span Window, const EventClosure &Mhb,
                      const RaceEncoder &Encoder, LockId Lock,
                      const LockPair &Region, EventId A1, EventId B,
                      EventId A2, AtomicityPattern Pattern,
                      AtomSolveCtx *Ctx) {
    FormulaBuilder LocalFB;
    FormulaBuilder &FB = Ctx ? Ctx->FB : LocalFB;
    NodeRef Root = Encoder.encodeBetween(FB, A1, B, A2);
    OrderModel Model;
    ++Result.Stats.SolverCalls;
    SatResult Sat =
        Ctx ? Ctx->Session->query(
                  FB, Root, Deadline::after(Options.PerCopBudgetSeconds),
                  nullptr)
            : Solver->solve(
                  FB, Root, Deadline::after(Options.PerCopBudgetSeconds),
                  Options.CollectWitnesses ? &Model : nullptr);
    if (Sat == SatResult::Unknown) {
      ++Result.Stats.SolverTimeouts;
      return;
    }
    if (Sat == SatResult::Unsat)
      return;
    if (Ctx && Options.CollectWitnesses)
      rederiveModel(Encoder, A1, B, A2, Model);

    AtomicityReport Report;
    Report.RegionLock = Lock;
    Report.RegionAcquire = Region.AcquireId;
    Report.RegionRelease = Region.ReleaseId;
    Report.First = A1;
    Report.Remote = B;
    Report.Second = A2;
    Report.Pattern = Pattern;
    Report.Variable = T.varName(T[A1].Target);
    Report.LocFirst = T.locName(T[A1].Loc);
    Report.LocRemote = T.locName(T[B].Loc);
    Report.LocSecond = T.locName(T[A2].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      Report.WitnessValid =
          checkAtomicityWitness(T, Window, Report.Witness, A1, B, A2,
                                Encoder, Mhb, RunningValues)
              .Ok;
    }
    SeenSignatures.insert(signatureOf(T, A1, B, A2));
    Result.Violations.push_back(std::move(Report));
  }

  std::vector<EventId> buildWitness(Span Window,
                                    const OrderModel &Model) const {
    std::vector<EventId> Order;
    Order.reserve(Window.size());
    for (EventId Id = Window.Begin; Id < Window.End; ++Id)
      Order.push_back(Id);
    std::sort(Order.begin(), Order.end(), [&](EventId X, EventId Y) {
      auto KeyOf = [&](EventId Id) -> std::pair<int64_t, int64_t> {
        auto It = Model.find(Id);
        return {It == Model.end() ? INT64_MAX : It->second,
                static_cast<int64_t>(Id)};
      };
      return KeyOf(X) < KeyOf(Y);
    });
    return Order;
  }

  const Trace &T;
  DetectorOptions Options;
  AtomicityResult Result;
  std::unique_ptr<SmtSolver> Solver;
  std::unique_ptr<ThreadPool> Pool;
  uint32_t Jobs = 1;
  bool UseIncremental = false;
  uint64_t SpeculativeSolves = 0;
  std::vector<Value> RunningValues;
  std::unordered_set<uint64_t> SeenSignatures;
};

} // namespace

AtomicityResult
rvp::detectAtomicityViolations(const Trace &T,
                               const DetectorOptions &Options) {
  return AtomicityDriver(T, Options).run();
}
