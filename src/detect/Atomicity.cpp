//===- detect/Atomicity.cpp - Maximal atomicity-violation detection ----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"

#include "detect/Checkpoint.h"
#include "detect/Closure.h"
#include "detect/Lockset.h"
#include "detect/RaceEncoder.h"
#include "detect/Resilience.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"
#include "support/CommandLine.h"
#include "support/Compiler.h"
#include "support/FaultInjector.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_set>

using namespace rvp;

const char *rvp::atomicityPatternName(AtomicityPattern Pattern) {
  switch (Pattern) {
  case AtomicityPattern::ReadWriteRead:
    return "r-W-r (unrepeatable read)";
  case AtomicityPattern::WriteReadWrite:
    return "w-R-w (dirty read)";
  case AtomicityPattern::WriteWriteRead:
    return "w-W-r (remote overwrite observed)";
  case AtomicityPattern::ReadWriteWrite:
    return "r-W-w (lost local update)";
  }
  RVP_UNREACHABLE("unknown atomicity pattern");
}

bool rvp::classifyAtomicity(const Event &First, const Event &Remote,
                            const Event &Second, AtomicityPattern &Out) {
  const bool F = First.isWrite();
  const bool R = Remote.isWrite();
  const bool S = Second.isWrite();
  if (!F && R && !S) {
    Out = AtomicityPattern::ReadWriteRead;
    return true;
  }
  if (F && !R && S) {
    Out = AtomicityPattern::WriteReadWrite;
    return true;
  }
  if (F && R && !S) {
    Out = AtomicityPattern::WriteWriteRead;
    return true;
  }
  if (!F && R && S) {
    Out = AtomicityPattern::ReadWriteWrite;
    return true;
  }
  return false; // remote read between non-writes etc.: serializable
}

bool AtomicityResult::hasViolationAt(const std::string &First,
                                     const std::string &Remote,
                                     const std::string &Second) const {
  for (const AtomicityReport &V : Violations)
    if (V.LocFirst == First && V.LocRemote == Remote &&
        V.LocSecond == Second)
      return true;
  return false;
}

namespace {

/// Signature of a violation: the three static locations.
uint64_t signatureOf(const Trace &T, EventId A1, EventId B, EventId A2) {
  uint64_t H = 1469598103934665603ULL;
  for (LocId Loc : {T[A1].Loc, T[B].Loc, T[A2].Loc}) {
    H ^= Loc;
    H *= 1099511628211ULL;
  }
  return H;
}

/// One enumerated candidate plus every fact the parallel pre-filter phase
/// derives for it. Enumeration order matches the sequential nested loops,
/// so the sequential collection phase reproduces the exact sequential
/// SeenSignatures evolution and statistics.
struct AtomCandidate {
  LockId Lock = 0;
  LockPair Region;
  EventId A1 = InvalidEvent;
  EventId B = InvalidEvent;
  EventId A2 = InvalidEvent;
  AtomicityPattern Pattern = AtomicityPattern::ReadWriteRead;
  uint64_t Sig = 0;
  /// Rejected by the lockset / MHB quick check (signature-independent, so
  /// it is safe to precompute before the solving phase).
  bool QcRejected = false;
  /// The MHB component rejected the candidate — under the WCP tier
  /// (--tier != smt) those rejects are tallied as the wcp prune stage
  /// (docs/TIERS.md). Counted in the sequential collection phase so the
  /// tally matches --jobs=1 exactly.
  bool MhbOrdered = false;
};

/// What a parallel solve task produced for one candidate.
struct AtomTaskResult {
  bool Solved = false;
  SatResult Sat = SatResult::Unknown;
  /// Escalation attempts the host spent on this candidate.
  uint32_t Attempts = 1;
  AtomicityReport Report;
};

/// Per-window solve state: the SolveHost owning the session (or the
/// one-shot solver) plus, in incremental mode, the shared hash-consing
/// builder. One per window sequentially; one per worker (plus the helping
/// main thread) per window with jobs > 1.
struct AtomSolveCtx {
  FormulaBuilder FB;
  std::unique_ptr<SolveHost> Host;
};

class AtomicityDriver {
public:
  AtomicityDriver(const Trace &T, const DetectorOptions &Options)
      : T(T), Options(Options) {}

  AtomicityResult run() {
    Timer Clock;
    UseIncremental = Options.Incremental;
    Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                             : Options.Jobs;
    if (Jobs > 1)
      Pool = std::make_unique<ThreadPool>(Jobs);
    Result.Stats.Jobs = Jobs;
    RunningValues.assign(T.numVars(), 0);
    for (VarId Var = 0; Var < T.numVars(); ++Var)
      RunningValues[Var] = T.initialValueOf(Var);

    // Resume: same contract as the race driver (docs/ROBUSTNESS.md) —
    // reload everything accumulated up to the last completed window and
    // continue past it, byte-identical to an uninterrupted run.
    CheckpointStore Ckpt(Options.CheckpointDir,
                         Options.CheckpointFingerprint);
    uint64_t SkipWindows = 0;
    if (Ckpt.enabled()) {
      std::string Payload;
      CheckpointLoad Outcome = CheckpointLoad::None;
      int64_t Last = Ckpt.loadLatest(Payload, &Outcome);
      if (Outcome == CheckpointLoad::FingerprintMismatch)
        CheckpointStore::refuseMismatch(Ckpt);
      if (Last >= 0 && restoreState(Payload))
        SkipWindows = static_cast<uint64_t>(Last) + 1;
    }
    // In-memory resume (the streaming front end) — same contract as the
    // race driver: the caller-held state is authoritative.
    if (Options.ResumeState && !Options.ResumeState->empty() &&
        restoreState(*Options.ResumeState))
      SkipWindows = Result.Stats.Windows;

    {
      ScopedPhaseTimer DetectPhase("atomicity");
      uint64_t Index = 0, Processed = 0;
      for (Span Window : splitWindows(T, Options.WindowSize)) {
        if (Index++ < SkipWindows)
          continue;
        if (Options.MaxWindows && Processed == Options.MaxWindows)
          break;
        ++Processed;
        ++Result.Stats.Windows;
        processWindow(Window);
        for (EventId Id = Window.Begin; Id < Window.End; ++Id)
          if (T[Id].isWrite())
            RunningValues[T[Id].Target] = T[Id].Data;
        if (Ckpt.enabled()) {
          Ckpt.save(Index - 1, serializeState());
          if (FaultInjector::shouldFail(faults::DetectAbort))
            std::_Exit(ExitInternal);
        }
      }
    }
    Result.Stats.UnknownCops = Result.Unknowns.size();
    Result.Stats.Seconds = Clock.seconds();
    if (Options.SaveState)
      *Options.SaveState = serializeState();
    if (Telemetry::enabled() && Options.FlushTelemetry) {
      MetricsRegistry &Reg = MetricsRegistry::global();
      if (SpeculativeSolves)
        Reg.counter("detect.speculative_solves").add(SpeculativeSolves);
      if (Result.Stats.SolverRetries)
        Reg.counter("solver.retries").add(Result.Stats.SolverRetries);
      if (Result.Stats.DegradedSessions)
        Reg.counter("solver.degraded_sessions")
            .add(Result.Stats.DegradedSessions);
      if (BackendFallbacks)
        Reg.counter("solver.backend_fallbacks").add(BackendFallbacks);
      if (Result.Stats.UnknownCops)
        Reg.counter("detect.unknown_cops").add(Result.Stats.UnknownCops);
      if (Result.Stats.WcpPruned)
        Reg.counter("wcp.pruned_cops").add(Result.Stats.WcpPruned);
      if (SkipWindows)
        Reg.counter("detect.resumed_windows").add(SkipWindows);
      Result.Stats.Telemetry = Telemetry::instance().snapshot();
    }
    return std::move(Result);
  }

private:
  void processWindow(Span Window) {
    EventClosure Mhb(T, Window, ClosureConfig::mhb());
    EncoderOptions EncOpts; // no substitution for the between-query
    EncOpts.Slice = Options.Slice;
    EncOpts.Fold = Options.CfFold; // decision path only; rederive is full
    RaceEncoder Encoder(T, Window, Mhb, RunningValues, EncOpts);
    LocksetIndex Locksets(T, Window);

    if (Pool) {
      processWindowParallel(Window, Mhb, Encoder, Locksets);
      return;
    }

    // One SolveHost per window, whatever the mode: it owns the session
    // (incremental) or the one-shot solver (legacy) and the whole
    // degradation policy (docs/ROBUSTNESS.md).
    AtomSolveCtx WindowCtx;
    WindowCtx.Host = std::make_unique<SolveHost>(
        Options.SolverName, UseIncremental, Options.PerCopBudgetSeconds,
        Options.RetryBudgets,
        Options.RetryJitterSeed + Result.Stats.Windows);

    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
      for (const LockPair &Region : T.lockPairsOf(Lock)) {
        if (Region.AcquireId == InvalidEvent ||
            Region.ReleaseId == InvalidEvent ||
            !Window.contains(Region.AcquireId) ||
            !Window.contains(Region.ReleaseId))
          continue;
        checkRegion(Window, Mhb, Encoder, Locksets, Lock, Region,
                    &WindowCtx);
      }
    }
    absorbHostStats(WindowCtx.Host->stats());
  }

  /// Folds one host's resilience tallies into the run's stats (called at
  /// each window barrier; the parallel path folds every worker's host).
  void absorbHostStats(const ResilienceStats &S) {
    Result.Stats.SolverRetries += S.Retries;
    Result.Stats.DegradedSessions += S.DegradedSessions;
    BackendFallbacks += S.BackendFallbacks;
  }

  /// Same role as Detect.cpp's rederiveModel: the incremental session only
  /// answers sat/unsat, so the witness model comes from re-encoding the
  /// candidate into a fresh builder and solving one-shot — exactly the
  /// legacy path's instance, byte-identical model included. (The shared
  /// window builder would not do: And/Or children are canonicalized by
  /// node reference, so ref numbering from earlier candidates reshapes the
  /// DAG and the model the solver happens to pick.)
  bool rederiveModel(const RaceEncoder &Encoder, EventId A1, EventId B,
                     EventId A2, OrderModel &Model) const {
    // Witness models come from the unsliced formula: a sliced model has
    // no positions for events outside the cone, and buildWitness orders
    // the whole window (see Detect.cpp's rederiveModel).
    EncoderOptions NoSlice;
    NoSlice.Slice = false;
    RaceEncoder Unsliced(Encoder.sharedWindowEncoding(), NoSlice);
    FormulaBuilder FreshFB;
    NodeRef Root = Unsliced.encodeBetween(FreshFB, A1, B, A2);
    std::unique_ptr<SmtSolver> Fresh =
        createSolverByName(Options.SolverName);
    if (!Fresh)
      Fresh = createIdlSolver();
    if (Telemetry::enabled())
      MetricsRegistry::global().counter("solver.witness_resolves").inc();
    return Fresh->solve(FreshFB, Root,
                        Deadline::after(Options.PerCopBudgetSeconds),
                        &Model) == SatResult::Sat;
  }

  /// Phase A of the parallel path: enumerate candidates in the exact
  /// sequential nested-loop order, counting Stats.Cops and precomputing
  /// the signature and the (signature-independent) quick-check verdict.
  std::vector<AtomCandidate>
  enumerateCandidates(Span Window, const EventClosure &Mhb,
                      const LocksetIndex &Locksets) {
    std::vector<AtomCandidate> Candidates;
    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
      for (const LockPair &Region : T.lockPairsOf(Lock)) {
        if (Region.AcquireId == InvalidEvent ||
            Region.ReleaseId == InvalidEvent ||
            !Window.contains(Region.AcquireId) ||
            !Window.contains(Region.ReleaseId))
          continue;
        std::vector<EventId> Local;
        for (EventId Id = Region.AcquireId + 1; Id < Region.ReleaseId;
             ++Id)
          if (T[Id].Tid == Region.Tid && T[Id].isAccess() &&
              !T[Id].Volatile)
            Local.push_back(Id);
        for (size_t I = 0; I < Local.size(); ++I) {
          for (size_t J = I + 1; J < Local.size(); ++J) {
            EventId A1 = Local[I];
            EventId A2 = Local[J];
            if (T[A1].Target != T[A2].Target)
              continue;
            for (EventId B : T.accessesOf(T[A1].Target)) {
              if (!Window.contains(B) || T[B].Tid == Region.Tid ||
                  T[B].Volatile)
                continue;
              AtomicityPattern Pattern;
              if (!classifyAtomicity(T[A1], T[B], T[A2], Pattern))
                continue;
              ++Result.Stats.Cops;
              AtomCandidate C;
              C.Lock = Lock;
              C.Region = Region;
              C.A1 = A1;
              C.B = B;
              C.A2 = A2;
              C.Pattern = Pattern;
              C.Sig = signatureOf(T, A1, B, A2);
              if (Options.UseQuickCheck) {
                const std::vector<LockId> &Held = Locksets.heldAt(B);
                C.MhbOrdered = Mhb.ordered(B, A1) || Mhb.ordered(A2, B);
                C.QcRejected =
                    std::find(Held.begin(), Held.end(), Lock) !=
                        Held.end() ||
                    C.MhbOrdered;
              }
              Candidates.push_back(C);
            }
          }
        }
      }
    }
    return Candidates;
  }

  /// Parallel window: enumerate sequentially (A), encode+solve every
  /// quick-check survivor concurrently (B), then replay the results in
  /// candidate order against the live signature set (C) so reports and
  /// summary statistics match the sequential path exactly. Solves whose
  /// signature turns out to be already seen are speculative and are
  /// discarded in phase C.
  void processWindowParallel(Span Window, const EventClosure &Mhb,
                             const RaceEncoder &Encoder,
                             const LocksetIndex &Locksets) {
    std::vector<AtomCandidate> Candidates =
        enumerateCandidates(Window, Mhb, Locksets);
    std::vector<AtomTaskResult> Results(Candidates.size());

    // Per-worker window-scoped solve state (session or one-shot solver,
    // behind a SolveHost); the trailing slot serves the main thread
    // (currentWorkerIndex() == -1) when it helps drain the queue.
    std::vector<AtomSolveCtx> Contexts(Pool->numWorkers() + 1);
    Pool->parallelFor(0, Candidates.size(), [&](size_t Index) {
      const AtomCandidate &C = Candidates[Index];
      if (C.QcRejected)
        return;
      int W = Pool->currentWorkerIndex();
      AtomSolveCtx &Ctx = Contexts[W >= 0 ? static_cast<size_t>(W)
                                          : Contexts.size() - 1];
      solveCandidateTask(Window, Mhb, Encoder, C, Ctx, Results[Index]);
    });
    for (const AtomSolveCtx &Ctx : Contexts)
      if (Ctx.Host)
        absorbHostStats(Ctx.Host->stats());

    for (size_t Index = 0; Index < Candidates.size(); ++Index) {
      const AtomCandidate &C = Candidates[Index];
      AtomTaskResult &R = Results[Index];
      if (SeenSignatures.count(C.Sig)) {
        if (R.Solved)
          ++SpeculativeSolves;
        continue;
      }
      if (C.QcRejected) {
        if (Options.Tier != DetectTier::Smt && C.MhbOrdered)
          ++Result.Stats.WcpPruned;
        continue;
      }
      if (Options.UseQuickCheck)
        ++Result.Stats.QcPassed;
      ++Result.Stats.SolverCalls;
      if (R.Sat == SatResult::Unknown) {
        ++Result.Stats.SolverTimeouts;
        recordUnknown(C.A1, C.B, C.Sig, R.Attempts);
        continue;
      }
      if (R.Sat == SatResult::Unsat)
        continue;
      eraseUnknown(C.Sig);
      SeenSignatures.insert(C.Sig);
      Result.Violations.push_back(std::move(R.Report));
    }
  }

  /// Phase B worker body: encode and solve one candidate with a private
  /// solver instance, building the full report (witness included) so the
  /// collection phase only has to accept or discard it.
  void solveCandidateTask(Span Window, const EventClosure &Mhb,
                          const RaceEncoder &Encoder,
                          const AtomCandidate &C, AtomSolveCtx &Ctx,
                          AtomTaskResult &Out) {
    if (!Ctx.Host)
      Ctx.Host = std::make_unique<SolveHost>(
          Options.SolverName, UseIncremental, Options.PerCopBudgetSeconds,
          Options.RetryBudgets,
          Options.RetryJitterSeed + Result.Stats.Windows);
    FormulaBuilder TaskFB;
    FormulaBuilder &FB = UseIncremental ? Ctx.FB : TaskFB;
    NodeRef Root = Encoder.encodeBetween(FB, C.A1, C.B, C.A2);
    OrderModel Model;
    SolveHost::Outcome Decided = Ctx.Host->decide(
        FB, Root, Options.CollectWitnesses ? &Model : nullptr);
    Out.Sat = Decided.Sat;
    Out.Attempts = Decided.Attempts;
    Out.Solved = true;
    if (Out.Sat != SatResult::Sat)
      return;
    if (Options.CollectWitnesses &&
        (!Decided.ModelFromSolve || Options.Slice))
      rederiveModel(Encoder, C.A1, C.B, C.A2, Model);

    AtomicityReport &Report = Out.Report;
    Report.RegionLock = C.Lock;
    Report.RegionAcquire = C.Region.AcquireId;
    Report.RegionRelease = C.Region.ReleaseId;
    Report.First = C.A1;
    Report.Remote = C.B;
    Report.Second = C.A2;
    Report.Pattern = C.Pattern;
    Report.Variable = T.varName(T[C.A1].Target);
    Report.LocFirst = T.locName(T[C.A1].Loc);
    Report.LocRemote = T.locName(T[C.B].Loc);
    Report.LocSecond = T.locName(T[C.A2].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      Report.WitnessValid =
          checkAtomicityWitness(T, Window, Report.Witness, C.A1, C.B,
                                C.A2, Encoder, Mhb, RunningValues)
              .Ok;
    }
  }

  void checkRegion(Span Window, const EventClosure &Mhb,
                   const RaceEncoder &Encoder,
                   const LocksetIndex &Locksets, LockId Lock,
                   const LockPair &Region, AtomSolveCtx *Ctx) {
    // Local same-variable access pairs inside the region.
    std::vector<EventId> Local;
    for (EventId Id = Region.AcquireId + 1; Id < Region.ReleaseId; ++Id)
      if (T[Id].Tid == Region.Tid && T[Id].isAccess() && !T[Id].Volatile)
        Local.push_back(Id);

    for (size_t I = 0; I < Local.size(); ++I) {
      for (size_t J = I + 1; J < Local.size(); ++J) {
        EventId A1 = Local[I];
        EventId A2 = Local[J];
        if (T[A1].Target != T[A2].Target)
          continue;
        // Candidate remote accesses on the same variable.
        for (EventId B : T.accessesOf(T[A1].Target)) {
          if (!Window.contains(B) || T[B].Tid == Region.Tid ||
              T[B].Volatile)
            continue;
          AtomicityPattern Pattern;
          if (!classifyAtomicity(T[A1], T[B], T[A2], Pattern))
            continue;
          ++Result.Stats.Cops;
          if (SeenSignatures.count(signatureOf(T, A1, B, A2)))
            continue;
          // Quick filters: holding the region's lock, or an MHB order
          // incompatible with "between", make the query unsatisfiable.
          // Under the WCP tier the MHB component runs first as its own
          // counted prune stage (docs/TIERS.md); the reject set and
          // QcPassed are identical either way since rejects emit nothing.
          if (Options.UseQuickCheck) {
            bool MhbOrdered = Mhb.ordered(B, A1) || Mhb.ordered(A2, B);
            if (Options.Tier != DetectTier::Smt && MhbOrdered) {
              ++Result.Stats.WcpPruned;
              continue;
            }
            const std::vector<LockId> &Held = Locksets.heldAt(B);
            if (std::find(Held.begin(), Held.end(), Lock) != Held.end())
              continue;
            if (MhbOrdered)
              continue;
            ++Result.Stats.QcPassed;
          }

          solveCandidate(Window, Mhb, Encoder, Lock, Region, A1, B, A2,
                         Pattern, Ctx);
        }
      }
    }
  }

  void solveCandidate(Span Window, const EventClosure &Mhb,
                      const RaceEncoder &Encoder, LockId Lock,
                      const LockPair &Region, EventId A1, EventId B,
                      EventId A2, AtomicityPattern Pattern,
                      AtomSolveCtx *Ctx) {
    FormulaBuilder LocalFB;
    FormulaBuilder &FB = UseIncremental ? Ctx->FB : LocalFB;
    NodeRef Root = Encoder.encodeBetween(FB, A1, B, A2);
    OrderModel Model;
    ++Result.Stats.SolverCalls;
    SolveHost::Outcome Decided = Ctx->Host->decide(
        FB, Root, Options.CollectWitnesses ? &Model : nullptr);
    SatResult Sat = Decided.Sat;
    if (Sat == SatResult::Unknown) {
      ++Result.Stats.SolverTimeouts;
      recordUnknown(A1, B, signatureOf(T, A1, B, A2), Decided.Attempts);
      return;
    }
    if (Sat == SatResult::Unsat)
      return;
    if (Options.CollectWitnesses &&
        (!Decided.ModelFromSolve || Options.Slice))
      rederiveModel(Encoder, A1, B, A2, Model);

    AtomicityReport Report;
    Report.RegionLock = Lock;
    Report.RegionAcquire = Region.AcquireId;
    Report.RegionRelease = Region.ReleaseId;
    Report.First = A1;
    Report.Remote = B;
    Report.Second = A2;
    Report.Pattern = Pattern;
    Report.Variable = T.varName(T[A1].Target);
    Report.LocFirst = T.locName(T[A1].Loc);
    Report.LocRemote = T.locName(T[B].Loc);
    Report.LocSecond = T.locName(T[A2].Loc);
    if (Options.CollectWitnesses) {
      Report.Witness = buildWitness(Window, Model);
      Report.WitnessValid =
          checkAtomicityWitness(T, Window, Report.Witness, A1, B, A2,
                                Encoder, Mhb, RunningValues)
              .Ok;
    }
    uint64_t Sig = signatureOf(T, A1, B, A2);
    eraseUnknown(Sig);
    SeenSignatures.insert(Sig);
    Result.Violations.push_back(std::move(Report));
  }

  /// Parks an undecided candidate in the unknown section — one entry per
  /// signature, keyed by the full (A1, B, A2) location triple; the report
  /// shows the first local access and the remote intruder. Never merged
  /// into Violations, so degradation keeps the violation list sound.
  void recordUnknown(EventId A1, EventId B, uint64_t Sig,
                     uint32_t Attempts) {
    if (!UnknownSigs.insert(Sig).second)
      return;
    UnknownReport U;
    U.First = A1;
    U.Second = B;
    U.LocFirst = T.locName(T[A1].Loc);
    U.LocSecond = T.locName(T[B].Loc);
    U.Variable = T.varName(T[A1].Target);
    U.Attempts = Attempts;
    UnknownSigList.push_back(Sig);
    Result.Unknowns.push_back(std::move(U));
  }

  /// A signature provisionally parked as unknown has now been decided
  /// (a later candidate with the same locations solved sat): the reported
  /// violation supersedes the maybe-entry.
  void eraseUnknown(uint64_t Sig) {
    if (!UnknownSigs.erase(Sig))
      return;
    for (size_t I = 0; I < UnknownSigList.size(); ++I)
      if (UnknownSigList[I] == Sig) {
        UnknownSigList.erase(UnknownSigList.begin() +
                             static_cast<ptrdiff_t>(I));
        Result.Unknowns.erase(Result.Unknowns.begin() +
                              static_cast<ptrdiff_t>(I));
        break;
      }
  }

  // ----------------------------------------------------- checkpointing
  // Same contract as the race driver's pair in Detect.cpp: only event ids
  // and counters are stored; display strings, patterns, and the region
  // lock are re-derived from the trace on restore (the store's fingerprint
  // pins trace and flags).

  std::string serializeState() const {
    std::string Out;
    Out += formatString(
        "stats %llu %llu %llu %llu %llu %llu %llu\n",
        static_cast<unsigned long long>(Result.Stats.Windows),
        static_cast<unsigned long long>(Result.Stats.Cops),
        static_cast<unsigned long long>(Result.Stats.QcPassed),
        static_cast<unsigned long long>(Result.Stats.SolverCalls),
        static_cast<unsigned long long>(Result.Stats.SolverTimeouts),
        static_cast<unsigned long long>(Result.Stats.SolverRetries),
        static_cast<unsigned long long>(Result.Stats.DegradedSessions));
    Out += formatString(
        "tallies %llu %llu %llu\n",
        static_cast<unsigned long long>(SpeculativeSolves),
        static_cast<unsigned long long>(BackendFallbacks),
        static_cast<unsigned long long>(Result.Stats.WcpPruned));
    Out += "values";
    for (Value V : RunningValues)
      Out += formatString(" %lld", static_cast<long long>(V));
    Out += "\n";
    // Sorted so the same state always serializes to the same bytes.
    std::vector<uint64_t> Keys(SeenSignatures.begin(),
                               SeenSignatures.end());
    std::sort(Keys.begin(), Keys.end());
    Out += "seen";
    for (uint64_t K : Keys)
      Out += formatString(" %llx", static_cast<unsigned long long>(K));
    Out += "\n";
    for (const AtomicityReport &V : Result.Violations) {
      Out += formatString(
          "viol %llu %llu %llu %llu %llu %d",
          static_cast<unsigned long long>(V.RegionAcquire),
          static_cast<unsigned long long>(V.RegionRelease),
          static_cast<unsigned long long>(V.First),
          static_cast<unsigned long long>(V.Remote),
          static_cast<unsigned long long>(V.Second),
          V.WitnessValid ? 1 : 0);
      for (EventId Id : V.Witness)
        Out += formatString(" %llu", static_cast<unsigned long long>(Id));
      Out += "\n";
    }
    for (size_t I = 0; I < Result.Unknowns.size(); ++I) {
      const UnknownReport &U = Result.Unknowns[I];
      Out += formatString(
          "unknown %llu %llu %u %llx\n",
          static_cast<unsigned long long>(U.First),
          static_cast<unsigned long long>(U.Second),
          static_cast<unsigned>(U.Attempts),
          static_cast<unsigned long long>(UnknownSigList[I]));
    }
    return Out;
  }

  /// Inverse of serializeState. All-or-nothing: any malformed or
  /// out-of-range field rejects the snapshot and the run starts from
  /// scratch (sound; checkpoints only save time).
  bool restoreState(const std::string &Payload) {
    auto parseU64 = [](std::string_view S, uint64_t &Out) {
      int64_t V = 0;
      if (!parseInt(S, V) || V < 0)
        return false;
      Out = static_cast<uint64_t>(V);
      return true;
    };
    auto parseHex = [](std::string_view S, uint64_t &Out) {
      if (S.empty() || S.size() > 16)
        return false;
      uint64_t V = 0;
      for (char C : S) {
        int D;
        if (C >= '0' && C <= '9')
          D = C - '0';
        else if (C >= 'a' && C <= 'f')
          D = C - 'a' + 10;
        else
          return false;
        V = V << 4 | static_cast<uint64_t>(D);
      }
      Out = V;
      return true;
    };
    auto parseEvent = [&](std::string_view S, EventId &Out) {
      uint64_t V = 0;
      if (!parseU64(S, V) || V >= T.size())
        return false;
      Out = static_cast<EventId>(V);
      return true;
    };

    std::vector<AtomicityReport> NewViolations;
    std::vector<UnknownReport> NewUnknowns;
    std::vector<uint64_t> NewUnknownSigs;
    std::vector<Value> NewValues;
    std::unordered_set<uint64_t> NewSeen, NewUnkSet;
    uint64_t S[7] = {0}, Tally[3] = {0};
    bool SawStats = false, SawTallies = false, SawValues = false;

    for (std::string_view Line : split(Payload, '\n')) {
      Line = trim(Line);
      if (Line.empty())
        continue;
      std::vector<std::string_view> F = split(Line, ' ');
      if (F[0] == "stats") {
        if (F.size() != 8)
          return false;
        for (size_t I = 0; I < 7; ++I)
          if (!parseU64(F[I + 1], S[I]))
            return false;
        SawStats = true;
      } else if (F[0] == "tallies") {
        if (F.size() != 4)
          return false;
        for (size_t I = 0; I < 3; ++I)
          if (!parseU64(F[I + 1], Tally[I]))
            return false;
        SawTallies = true;
      } else if (F[0] == "values") {
        for (size_t I = 1; I < F.size(); ++I) {
          int64_t V = 0;
          if (!parseInt(F[I], V))
            return false;
          NewValues.push_back(static_cast<Value>(V));
        }
        SawValues = true;
      } else if (F[0] == "seen") {
        for (size_t I = 1; I < F.size(); ++I) {
          uint64_t K = 0;
          if (!parseHex(F[I], K))
            return false;
          NewSeen.insert(K);
        }
      } else if (F[0] == "viol") {
        if (F.size() < 7)
          return false;
        AtomicityReport V;
        uint64_t Valid = 0;
        if (!parseEvent(F[1], V.RegionAcquire) ||
            !parseEvent(F[2], V.RegionRelease) ||
            !parseEvent(F[3], V.First) || !parseEvent(F[4], V.Remote) ||
            !parseEvent(F[5], V.Second) || !parseU64(F[6], Valid) ||
            Valid > 1)
          return false;
        if (!T[V.RegionAcquire].isAcquire() ||
            T[V.RegionAcquire].Target >= T.numLocks() ||
            !classifyAtomicity(T[V.First], T[V.Remote], T[V.Second],
                               V.Pattern))
          return false;
        V.RegionLock = T[V.RegionAcquire].Target;
        V.Variable = T.varName(T[V.First].Target);
        V.LocFirst = T.locName(T[V.First].Loc);
        V.LocRemote = T.locName(T[V.Remote].Loc);
        V.LocSecond = T.locName(T[V.Second].Loc);
        V.WitnessValid = Valid != 0;
        for (size_t I = 7; I < F.size(); ++I) {
          EventId Id = InvalidEvent;
          if (!parseEvent(F[I], Id))
            return false;
          V.Witness.push_back(Id);
        }
        NewViolations.push_back(std::move(V));
      } else if (F[0] == "unknown") {
        if (F.size() != 5)
          return false;
        UnknownReport U;
        uint64_t Attempts = 0, Sig = 0;
        if (!parseEvent(F[1], U.First) || !parseEvent(F[2], U.Second) ||
            !parseU64(F[3], Attempts) || Attempts == 0 ||
            !parseHex(F[4], Sig))
          return false;
        U.LocFirst = T.locName(T[U.First].Loc);
        U.LocSecond = T.locName(T[U.Second].Loc);
        U.Variable = T.varName(T[U.First].Target);
        U.Attempts = static_cast<uint32_t>(Attempts);
        NewUnkSet.insert(Sig);
        NewUnknownSigs.push_back(Sig);
        NewUnknowns.push_back(std::move(U));
      } else {
        return false; // written by a different build: start from scratch
      }
    }
    if (!SawStats || !SawTallies || !SawValues ||
        NewValues.size() > T.numVars())
      return false;
    // Prefix snapshots (streaming steps) can predate variables first seen
    // in later windows; they still hold their initial values.
    while (NewValues.size() < T.numVars())
      NewValues.push_back(
          T.initialValueOf(static_cast<VarId>(NewValues.size())));

    Result.Stats.Windows = S[0];
    Result.Stats.Cops = S[1];
    Result.Stats.QcPassed = S[2];
    Result.Stats.SolverCalls = S[3];
    Result.Stats.SolverTimeouts = S[4];
    Result.Stats.SolverRetries = S[5];
    Result.Stats.DegradedSessions = S[6];
    SpeculativeSolves = Tally[0];
    BackendFallbacks = Tally[1];
    Result.Stats.WcpPruned = Tally[2];
    RunningValues = std::move(NewValues);
    SeenSignatures = std::move(NewSeen);
    UnknownSigs = std::move(NewUnkSet);
    UnknownSigList = std::move(NewUnknownSigs);
    Result.Violations = std::move(NewViolations);
    Result.Unknowns = std::move(NewUnknowns);
    return true;
  }

  std::vector<EventId> buildWitness(Span Window,
                                    const OrderModel &Model) const {
    std::vector<EventId> Order;
    Order.reserve(Window.size());
    for (EventId Id = Window.Begin; Id < Window.End; ++Id)
      Order.push_back(Id);
    std::sort(Order.begin(), Order.end(), [&](EventId X, EventId Y) {
      auto KeyOf = [&](EventId Id) -> std::pair<int64_t, int64_t> {
        auto It = Model.find(Id);
        return {It == Model.end() ? INT64_MAX : It->second,
                static_cast<int64_t>(Id)};
      };
      return KeyOf(X) < KeyOf(Y);
    });
    return Order;
  }

  const Trace &T;
  DetectorOptions Options;
  AtomicityResult Result;
  std::unique_ptr<ThreadPool> Pool;
  uint32_t Jobs = 1;
  bool UseIncremental = false;
  uint64_t SpeculativeSolves = 0;
  /// Backend factory failures absorbed by the hosts (telemetry only).
  uint64_t BackendFallbacks = 0;
  std::vector<Value> RunningValues;
  std::unordered_set<uint64_t> SeenSignatures;
  /// Signatures parked in Result.Unknowns, plus the list aligned with it
  /// (signatures cover the full triple, which UnknownReport does not
  /// store, so supersede/serialize need them on the side).
  std::unordered_set<uint64_t> UnknownSigs;
  std::vector<uint64_t> UnknownSigList;
};

} // namespace

AtomicityResult
rvp::detectAtomicityViolations(const Trace &T,
                               const DetectorOptions &Options) {
  return AtomicityDriver(T, Options).run();
}
