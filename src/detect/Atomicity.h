//===- detect/Atomicity.h - Maximal atomicity-violation detection -*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension Section 2.5 of the paper sketches: "the same maximal
/// causal model approach can be used to define other notions" of
/// concurrency error. This module instantiates it for atomicity: critical
/// sections are taken as intended-atomic regions, and a violation is a
/// feasible reordering that places a conflicting remote access *between*
/// two same-variable accesses of one region in a non-serializable pattern
/// (Lu et al.'s classification):
///
///   read   - remote write - read    (unrepeatable read)
///   write  - remote read  - write   (dirty read)
///   write  - remote write - read    (lost remote update becomes visible)
///   read   - remote write - write   (lost local update)
///
/// The encoding reuses the race encoder's feasibility machinery (MHB,
/// locks, and the control-flow cf constraints for all three events); only
/// the query changes: `O_a1 < O_b < O_a2` — two plain difference atoms, no
/// substitution needed. Soundness carries over verbatim: a satisfying
/// order is a feasible reordering witnessing the violation.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_ATOMICITY_H
#define RVP_DETECT_ATOMICITY_H

#include "detect/Detect.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rvp {

enum class AtomicityPattern : uint8_t {
  ReadWriteRead,   ///< r .. remote w .. r
  WriteReadWrite,  ///< w .. remote r .. w
  WriteWriteRead,  ///< w .. remote w .. r
  ReadWriteWrite,  ///< r .. remote w .. w
};

const char *atomicityPatternName(AtomicityPattern Pattern);

/// Classifies the access triple; returns true iff it is one of the four
/// non-serializable patterns.
bool classifyAtomicity(const Event &First, const Event &Remote,
                       const Event &Second, AtomicityPattern &Out);

struct AtomicityReport {
  /// The intended-atomic region (a critical section).
  LockId RegionLock = 0;
  EventId RegionAcquire = InvalidEvent;
  EventId RegionRelease = InvalidEvent;
  /// The two local accesses and the remote intruder.
  EventId First = InvalidEvent;
  EventId Remote = InvalidEvent;
  EventId Second = InvalidEvent;
  AtomicityPattern Pattern = AtomicityPattern::ReadWriteRead;
  std::string Variable;
  std::string LocFirst, LocRemote, LocSecond;
  /// Witness order over the window, validated like race witnesses.
  std::vector<EventId> Witness;
  bool WitnessValid = false;
};

struct AtomicityResult {
  std::vector<AtomicityReport> Violations;
  /// Candidates the solver never decided within every retry budget —
  /// First/Second hold the region's first local access and the remote
  /// intruder. Maybe-violations, kept out of Violations so degradation
  /// stays sound (docs/ROBUSTNESS.md).
  std::vector<UnknownReport> Unknowns;
  DetectionStats Stats;

  bool hasViolationAt(const std::string &First, const std::string &Remote,
                      const std::string &Second) const;
};

/// Predicts atomicity violations of the critical sections of \p T, using
/// the same windowing, budget, and solver options as race detection.
AtomicityResult detectAtomicityViolations(const Trace &T,
                                          const DetectorOptions &Options =
                                              DetectorOptions());

} // namespace rvp

#endif // RVP_DETECT_ATOMICITY_H
