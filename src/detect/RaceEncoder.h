//===- detect/RaceEncoder.h - Race constraint encoding -----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the first-order formulae of Section 3.2 for one trace window:
///
///   Φ = Φ_mhb ∧ Φ_lock ∧ Φ_race
///
/// over integer order variables O_e (one per event). Φ_race comes in two
/// flavours:
///
///  * encodeMaximalRace — the paper's technique: the adjacency of the COP
///    via the `Oa := Ob` substitution (Section 4) plus the control-flow
///    feasibility Φ^cf of both events. cf(e) definitions are emitted as
///    guarded boolean variables because their dependency graph (read →
///    matched write → that thread's earlier reads → ...) may be cyclic.
///
///  * encodeSaidRace — the Said et al. baseline: no control flow; instead
///    the *whole window* must stay read-write consistent (every read keeps
///    its original value).
///
/// Windowing: events before the window are fixed context; their only
/// influence is the initial value each variable has at window entry,
/// supplied by the caller.
///
/// The COP-invariant state (indices, Φ_mhb atoms, Φ_lock descriptors,
/// read-consistency skeletons) lives in a WindowEncoding built once per
/// window; every encode call only applies the per-COP substitution and
/// control-flow guards. A const RaceEncoder is safe to share across the
/// parallel solve workers — encode calls touch nothing but the immutable
/// WindowEncoding, the caller's FormulaBuilder, and the internal
/// skeleton cache (reader/writer locked).
///
/// Cone-of-influence slicing (docs/ENCODER.md): with EncoderOptions::Slice
/// (the default) the Φ_mhb/Φ_lock conjunctions are restricted to the
/// events that can actually constrain the query — the events referenced by
/// the control-flow / read-consistency part, the query events themselves,
/// every cross-thread MHB edge, and the endpoints of lock constraints one
/// of whose critical sections contains a cone event. Per-thread program-
/// order chains are compressed to consecutive cone events. The sliced
/// formula is equisatisfiable with the full one (the soundness proof lives
/// in docs/ENCODER.md), so detection decisions are unchanged; witnesses
/// are re-derived through an unsliced encoder by the drivers so reports
/// stay byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_RACEENCODER_H
#define RVP_DETECT_RACEENCODER_H

#include "detect/Closure.h"
#include "detect/WindowEncoding.h"
#include "smt/Formula.h"
#include "trace/Trace.h"

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace rvp {

class CfFoldOracle;

struct EncoderOptions {
  /// Use the `Oa := Ob` substitution (Section 4). When false, adjacency is
  /// encoded explicitly as `Oa < Ob` plus "no event between them", which
  /// is the naive encoding the ablation bench compares against.
  bool SubstituteRaceVars = true;
  /// Cone-of-influence slicing (docs/ENCODER.md): restrict Φ_mhb/Φ_lock
  /// to the events that can constrain the query. Off (`--no-slice`) emits
  /// the full window encoding — the debug cross-check mode. The naive
  /// adjacency encoding references every window event, so slicing is
  /// ignored when SubstituteRaceVars is false.
  bool Slice = true;
  /// Static branch-constancy oracle (detect/Detect.h): a guarding branch
  /// it proves data-independent needs no cf constraint — the guard set
  /// walks back to the last *non*-foldable branch of each thread, which
  /// still covers every earlier one (cf is monotone along a thread).
  /// Shrinks the cone before construction; null (the default) folds
  /// nothing. Not owned; must outlive the encoder.
  const CfFoldOracle *Fold = nullptr;
};

/// Per-encode-call statistics, filled when the caller passes one to an
/// encode method. Only the sliced path reports: an unsliced call leaves
/// the struct zeroed.
struct EncodeStats {
  uint64_t ConeEvents = 0;  ///< window events in the cone of influence
  uint64_t SlicedAtoms = 0; ///< Φ_mhb/Φ_lock atoms actually emitted
  bool CacheHit = false;    ///< skeleton served from the per-window cache
};

class RaceEncoder {
public:
  /// Builds a fresh WindowEncoding for the window. \p InitialValues gives
  /// each variable's value at window entry (index by VarId; missing
  /// entries default to 0). \p Mhb must be the MHB closure
  /// (ClosureConfig::mhb()) of the same window.
  RaceEncoder(const Trace &T, Span S, const EventClosure &Mhb,
              const std::vector<Value> &InitialValues,
              EncoderOptions Options = EncoderOptions());

  /// Shares an existing WindowEncoding (one per window, many encoders or
  /// many concurrent encode calls).
  explicit RaceEncoder(std::shared_ptr<const WindowEncoding> Encoding,
                       EncoderOptions Options = EncoderOptions());

  const WindowEncoding &windowEncoding() const { return *Enc; }
  std::shared_ptr<const WindowEncoding> sharedWindowEncoding() const {
    return Enc;
  }

  /// Φ for "COP (A,B) is a race" under the maximal technique.
  NodeRef encodeMaximalRace(FormulaBuilder &FB, EventId A, EventId B,
                            EncodeStats *Stats = nullptr) const;

  /// Φ for "COP (A,B) is a race" under Said et al.'s whole-trace
  /// read-write consistency.
  NodeRef encodeSaidRace(FormulaBuilder &FB, EventId A, EventId B,
                         EncodeStats *Stats = nullptr) const;

  /// Φ for "\p B can execute strictly between \p A1 and \p A2" with all
  /// three events control-flow feasible — the atomicity-violation query
  /// (see detect/Atomicity.h). No substitution: the between condition is
  /// the two atoms `O_A1 < O_B < O_A2`.
  NodeRef encodeBetween(FormulaBuilder &FB, EventId A1, EventId B,
                        EventId A2, EncodeStats *Stats = nullptr) const;

  /// Φ for a hold-and-wait deadlock between two lock-dependency chains
  /// (see detect/Deadlock.h): \p ReqA requests the lock of the section
  /// [OutB.AcquireId, OutB.ReleaseId) while that section is active, and
  /// symmetrically for \p ReqB and OutA. The critical sections of the two
  /// requests themselves are excluded from the mutual-exclusion
  /// constraints — in the deadlocked prefix they never start.
  NodeRef encodeDeadlock(FormulaBuilder &FB, EventId ReqA, EventId ReqB,
                         const LockPair &OutA, const LockPair &OutB,
                         EncodeStats *Stats = nullptr) const;

  /// The cone of influence of COP (A,B): the window events whose order
  /// variables the sliced maximal-race encoding references, plus the
  /// indices of the active LockConstraints. Exposed for tests; computed
  /// by running the real encoding into a scratch builder so it can never
  /// diverge from what encodeMaximalRace emits. With slicing disabled
  /// (or under the naive adjacency encoding) the cone is the full window.
  struct ConeInfo {
    std::vector<EventId> Events;      ///< ascending
    std::vector<uint32_t> ActiveLocks; ///< LockConstraint indices, ascending
  };
  ConeInfo coneOf(EventId A, EventId B) const;

  /// Pieces exposed for the Figure 5 pretty-printer and tests. \p A/B of
  /// InvalidEvent means "no substitution". \p ExcludedAcquires names
  /// critical sections (by acquire event) left out of the mutual-exclusion
  /// constraints (deadlock queries).
  NodeRef encodeMhb(FormulaBuilder &FB, EventId A = InvalidEvent,
                    EventId B = InvalidEvent) const;
  NodeRef encodeLock(FormulaBuilder &FB, EventId A = InvalidEvent,
                     EventId B = InvalidEvent,
                     const std::vector<EventId> &ExcludedAcquires = {}) const;

  /// The last branch event of each thread that must happen before \p E
  /// (the set B_e of Section 3.2), in ascending order.
  std::vector<EventId> guardingBranches(EventId E) const;

private:
  struct Subst {
    EventId A = InvalidEvent;
    EventId B = InvalidEvent;
    OrderVar operator()(EventId E) const { return E == A ? B : E; }
  };

  /// Cone-of-influence accumulator for one sliced encode call (defined in
  /// the .cpp; CfState only carries a pointer so the unsliced path pays
  /// nothing).
  struct Cone;

  /// Shared builder state for one encode call. When \p C is non-null the
  /// call is sliced: every event whose order or feasibility variable the
  /// cf/value part references is recorded into the cone as a side effect
  /// of emission, so the cone is the referenced-variable set by
  /// construction.
  struct CfState {
    FormulaBuilder &FB;
    Subst S;
    std::vector<NodeRef> Defs;
    std::unordered_map<EventId, uint32_t> VarOf;
    std::vector<EventId> Worklist;
    Cone *C = nullptr;
  };

  /// Cone-restricted Φ_mhb/Φ_lock skeleton, memoized per cone signature
  /// in the per-window cache below. MhbAtoms are pre-substitution
  /// (root anchors, compressed per-thread chains, cross edges); the
  /// active lock constraints are emitted from their indices so deadlock
  /// queries can still exclude sections at emission time.
  struct Skeleton {
    std::vector<EventId> Events;      ///< sorted cone events (cache key)
    std::vector<uint32_t> ActiveLcs;  ///< sorted LC indices (cache key)
    std::vector<std::pair<OrderVar, OrderVar>> MhbAtoms;
  };

  NodeRef cfVar(CfState &St, EventId E) const;
  void emitCfDefs(CfState &St) const;
  /// Read-value consistency disjunction for read \p R; with \p Guarded the
  /// matched write's own feasibility variable is included (maximal mode).
  NodeRef readValueFormula(CfState &St, EventId R, bool Guarded) const;
  NodeRef branchGuards(CfState &St, EventId E) const;
  NodeRef adjacency(FormulaBuilder &FB, Subst S, EventId A, EventId B) const;
  /// Atom `S(X) < S(Y)` that also records X and Y into the cone when the
  /// encode call is sliced.
  NodeRef atomS(CfState &St, EventId X, EventId Y) const;

  /// Looks the cone's skeleton up in the per-window cache, building and
  /// inserting it on a miss. Concurrent-reader-safe: --jobs workers share
  /// the cache through the encoder they already share.
  const Skeleton &skeletonFor(Cone &C, EncodeStats *Stats) const;
  /// Emits the skeleton's Φ_mhb ∧ Φ_lock under substitution \p S.
  NodeRef emitSkeleton(FormulaBuilder &FB, const Skeleton &Sk, Subst S,
                       const std::vector<EventId> &ExcludedAcquires,
                       EncodeStats *Stats) const;
  NodeRef encodeMaximalImpl(FormulaBuilder &FB, EventId A, EventId B,
                            EncodeStats *Stats, ConeInfo *ConeOut) const;

  std::shared_ptr<const WindowEncoding> Enc;
  const Trace &T;
  Span Window;
  const EventClosure &Mhb;
  EncoderOptions Options;

  /// Per-window skeleton cache keyed by cone-signature hash; values are
  /// pointer-stable so references stay valid across inserts. Guarded by
  /// SkelMutex (shared for lookups, exclusive for inserts); mutable
  /// because encode calls on a shared const encoder populate it.
  mutable std::unordered_map<uint64_t, std::vector<std::unique_ptr<Skeleton>>>
      SkelCache;
  mutable std::shared_mutex SkelMutex;
};

} // namespace rvp

#endif // RVP_DETECT_RACEENCODER_H
