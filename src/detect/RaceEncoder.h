//===- detect/RaceEncoder.h - Race constraint encoding -----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the first-order formulae of Section 3.2 for one trace window:
///
///   Φ = Φ_mhb ∧ Φ_lock ∧ Φ_race
///
/// over integer order variables O_e (one per event). Φ_race comes in two
/// flavours:
///
///  * encodeMaximalRace — the paper's technique: the adjacency of the COP
///    via the `Oa := Ob` substitution (Section 4) plus the control-flow
///    feasibility Φ^cf of both events. cf(e) definitions are emitted as
///    guarded boolean variables because their dependency graph (read →
///    matched write → that thread's earlier reads → ...) may be cyclic.
///
///  * encodeSaidRace — the Said et al. baseline: no control flow; instead
///    the *whole window* must stay read-write consistent (every read keeps
///    its original value).
///
/// Windowing: events before the window are fixed context; their only
/// influence is the initial value each variable has at window entry,
/// supplied by the caller.
///
/// The COP-invariant state (indices, Φ_mhb atoms, Φ_lock descriptors,
/// read-consistency skeletons) lives in a WindowEncoding built once per
/// window; every encode call only applies the per-COP substitution and
/// control-flow guards. A const RaceEncoder is safe to share across the
/// parallel solve workers — encode calls touch nothing but the immutable
/// WindowEncoding and the caller's FormulaBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_RACEENCODER_H
#define RVP_DETECT_RACEENCODER_H

#include "detect/Closure.h"
#include "detect/WindowEncoding.h"
#include "smt/Formula.h"
#include "trace/Trace.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace rvp {

struct EncoderOptions {
  /// Use the `Oa := Ob` substitution (Section 4). When false, adjacency is
  /// encoded explicitly as `Oa < Ob` plus "no event between them", which
  /// is the naive encoding the ablation bench compares against.
  bool SubstituteRaceVars = true;
};

class RaceEncoder {
public:
  /// Builds a fresh WindowEncoding for the window. \p InitialValues gives
  /// each variable's value at window entry (index by VarId; missing
  /// entries default to 0). \p Mhb must be the MHB closure
  /// (ClosureConfig::mhb()) of the same window.
  RaceEncoder(const Trace &T, Span S, const EventClosure &Mhb,
              const std::vector<Value> &InitialValues,
              EncoderOptions Options = EncoderOptions());

  /// Shares an existing WindowEncoding (one per window, many encoders or
  /// many concurrent encode calls).
  explicit RaceEncoder(std::shared_ptr<const WindowEncoding> Encoding,
                       EncoderOptions Options = EncoderOptions());

  const WindowEncoding &windowEncoding() const { return *Enc; }
  std::shared_ptr<const WindowEncoding> sharedWindowEncoding() const {
    return Enc;
  }

  /// Φ for "COP (A,B) is a race" under the maximal technique.
  NodeRef encodeMaximalRace(FormulaBuilder &FB, EventId A, EventId B) const;

  /// Φ for "COP (A,B) is a race" under Said et al.'s whole-trace
  /// read-write consistency.
  NodeRef encodeSaidRace(FormulaBuilder &FB, EventId A, EventId B) const;

  /// Φ for "\p B can execute strictly between \p A1 and \p A2" with all
  /// three events control-flow feasible — the atomicity-violation query
  /// (see detect/Atomicity.h). No substitution: the between condition is
  /// the two atoms `O_A1 < O_B < O_A2`.
  NodeRef encodeBetween(FormulaBuilder &FB, EventId A1, EventId B,
                        EventId A2) const;

  /// Φ for a hold-and-wait deadlock between two lock-dependency chains
  /// (see detect/Deadlock.h): \p ReqA requests the lock of the section
  /// [OutB.AcquireId, OutB.ReleaseId) while that section is active, and
  /// symmetrically for \p ReqB and OutA. The critical sections of the two
  /// requests themselves are excluded from the mutual-exclusion
  /// constraints — in the deadlocked prefix they never start.
  NodeRef encodeDeadlock(FormulaBuilder &FB, EventId ReqA, EventId ReqB,
                         const LockPair &OutA, const LockPair &OutB) const;

  /// Pieces exposed for the Figure 5 pretty-printer and tests. \p A/B of
  /// InvalidEvent means "no substitution". \p ExcludedAcquires names
  /// critical sections (by acquire event) left out of the mutual-exclusion
  /// constraints (deadlock queries).
  NodeRef encodeMhb(FormulaBuilder &FB, EventId A = InvalidEvent,
                    EventId B = InvalidEvent) const;
  NodeRef encodeLock(FormulaBuilder &FB, EventId A = InvalidEvent,
                     EventId B = InvalidEvent,
                     const std::vector<EventId> &ExcludedAcquires = {}) const;

  /// The last branch event of each thread that must happen before \p E
  /// (the set B_e of Section 3.2), in ascending order.
  std::vector<EventId> guardingBranches(EventId E) const;

private:
  struct Subst {
    EventId A = InvalidEvent;
    EventId B = InvalidEvent;
    OrderVar operator()(EventId E) const { return E == A ? B : E; }
  };

  /// Shared builder state for one encode call.
  struct CfState {
    FormulaBuilder &FB;
    Subst S;
    std::vector<NodeRef> Defs;
    std::unordered_map<EventId, uint32_t> VarOf;
    std::vector<EventId> Worklist;
  };

  NodeRef cfVar(CfState &St, EventId E) const;
  void emitCfDefs(CfState &St) const;
  /// Read-value consistency disjunction for read \p R; with \p Guarded the
  /// matched write's own feasibility variable is included (maximal mode).
  NodeRef readValueFormula(CfState &St, EventId R, bool Guarded) const;
  NodeRef branchGuards(CfState &St, EventId E) const;
  NodeRef adjacency(FormulaBuilder &FB, Subst S, EventId A, EventId B) const;

  std::shared_ptr<const WindowEncoding> Enc;
  const Trace &T;
  Span Window;
  const EventClosure &Mhb;
  EncoderOptions Options;
};

} // namespace rvp

#endif // RVP_DETECT_RACEENCODER_H
