//===- detect/Report.cpp - Textual finding renderers ----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Report.h"

#include "support/StringUtils.h"

using namespace rvp;

std::string rvp::renderRaceHeader(Technique Tech, size_t Count,
                                  double Seconds,
                                  const ReportRenderOptions &Opts) {
  // The vc tier answers with WCP, not the requested maximal technique;
  // say so in the header rather than implying solver-grade precision.
  return formatString("%s: %zu race(s) in %.2fs\n",
                      Opts.VcTier ? "WCP" : techniqueName(Tech), Count,
                      Seconds);
}

std::string rvp::renderRaceLine(const Trace &T, const RaceReport &Race,
                                const ReportRenderOptions &Opts) {
  std::string Out =
      formatString("  race on %-12s %s <-> %s", Race.Variable.c_str(),
                   Race.LocFirst.c_str(), Race.LocSecond.c_str());
  if (Opts.WitnessTag)
    Out += formatString("  [witness %s]",
                        Race.WitnessValid ? "validated" : "UNVALIDATED");
  Out += '\n';
  if (Opts.WitnessEvents && !Race.Witness.empty()) {
    for (EventId Id : Race.Witness) {
      const char *Mark =
          Id == Race.First || Id == Race.Second ? " <== race" : "";
      Out += formatString("      %s%s\n", toString(T[Id]).c_str(), Mark);
    }
  }
  return Out;
}

std::string rvp::renderAtomicityHeader(size_t Count, double Seconds) {
  return formatString("atomicity: %zu violation(s) in %.2fs\n", Count,
                      Seconds);
}

std::string rvp::renderAtomicityLine(const AtomicityReport &V) {
  return formatString("  %-10s %s: %s .. [%s] .. %s  [witness %s]\n",
                      V.Variable.c_str(), atomicityPatternName(V.Pattern),
                      V.LocFirst.c_str(), V.LocRemote.c_str(),
                      V.LocSecond.c_str(),
                      V.WitnessValid ? "validated" : "UNVALIDATED");
}

std::string rvp::renderDeadlockHeader(size_t Count, double Seconds) {
  return formatString("deadlock: %zu potential deadlock(s) in %.2fs\n",
                      Count, Seconds);
}

std::string rvp::renderDeadlockLine(const Trace &T,
                                    const DeadlockReport &D) {
  return formatString(
      "  %s holds %s and requests %s at %s; %s holds %s and "
      "requests %s at %s  [witness %s]\n",
      T.threadName(D.ThreadA).c_str(), T.lockName(D.LockHeldByA).c_str(),
      T.lockName(D.LockHeldByB).c_str(), D.LocRequestA.c_str(),
      T.threadName(D.ThreadB).c_str(), T.lockName(D.LockHeldByB).c_str(),
      T.lockName(D.LockHeldByA).c_str(), D.LocRequestB.c_str(),
      D.WitnessValid ? "validated" : "UNVALIDATED");
}

std::string rvp::renderUnknowns(const std::vector<UnknownReport> &Unknowns,
                                const char *Pair) {
  // Printed only when non-empty, so healthy runs are byte-identical to
  // builds without the resilience layer; these are maybe-findings, never
  // merged into the sound report above (docs/ROBUSTNESS.md).
  if (Unknowns.empty())
    return std::string();
  std::string Out =
      formatString("unknown: %zu undecided %s(s) (exhausted every solver "
                   "budget; NOT findings)\n",
                   Unknowns.size(), Pair);
  for (const UnknownReport &U : Unknowns)
    Out += renderUnknownLine(U);
  return Out;
}

std::string rvp::renderUnknownLine(const UnknownReport &U) {
  std::string Out = "  unknown";
  if (!U.Variable.empty())
    Out += formatString(" on %-12s", U.Variable.c_str());
  Out += formatString(" %s <-> %s  [%u attempt(s)]\n", U.LocFirst.c_str(),
                      U.LocSecond.c_str(), U.Attempts);
  return Out;
}

std::string rvp::renderRaceReport(const Trace &T, Technique Tech,
                                  const DetectionResult &R,
                                  const ReportRenderOptions &Opts) {
  std::string Out =
      renderRaceHeader(Tech, R.raceCount(), R.Stats.Seconds, Opts);
  for (const RaceReport &Race : R.Races)
    Out += renderRaceLine(T, Race, Opts);
  Out += renderUnknowns(R.Unknowns, "pair");
  return Out;
}

std::string rvp::renderAtomicityReport(const AtomicityResult &R) {
  std::string Out =
      renderAtomicityHeader(R.Violations.size(), R.Stats.Seconds);
  for (const AtomicityReport &V : R.Violations)
    Out += renderAtomicityLine(V);
  Out += renderUnknowns(R.Unknowns, "candidate");
  return Out;
}

std::string rvp::renderDeadlockReport(const Trace &T,
                                      const DeadlockResult &R) {
  std::string Out =
      renderDeadlockHeader(R.Deadlocks.size(), R.Stats.Seconds);
  for (const DeadlockReport &D : R.Deadlocks)
    Out += renderDeadlockLine(T, D);
  Out += renderUnknowns(R.Unknowns, "lock pair");
  return Out;
}
