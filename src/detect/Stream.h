//===- detect/Stream.h - Incremental window-at-a-time detection -*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// StreamDetector runs the batch detectors one window at a time over a
// trace that arrives incrementally — the analysis core of rvpredictd.
// Each step re-parses the accumulated text prefix (interning is
// prefix-stable, so window K's events and name tables are byte-identical
// to the batch parse) and resumes the driver from the serialized state of
// the previous step via DetectorOptions::{ResumeState, MaxWindows,
// SaveState}. The cumulative result after the last step is therefore the
// batch result, and finish() renders it with the shared Report renderers
// — the property the ServerGolden gate checks byte for byte.
//
// All per-session state lives in one DetectorRun value; reset() replaces
// it wholesale, so a recycled detector inherits no interned strings,
// stats, or clock state from the previous session. Telemetry flushes to
// the process-wide registry exactly once per session, at finish(), under
// the drivers' FlushTelemetry gate.
//
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_STREAM_H
#define RVP_DETECT_STREAM_H

#include "detect/Report.h"
#include "trace/TraceIO.h"

#include <optional>
#include <string>
#include <vector>

namespace rvp {

enum class StreamProperty : uint8_t { Race, Atomicity, Deadlock };

/// Maps "race"/"atomicity"/"deadlock" (the daemon's HELLO `property` key);
/// returns false on anything else.
bool parseStreamProperty(std::string_view Name, StreamProperty &Out);

struct StreamOptions {
  StreamProperty Property = StreamProperty::Race;
  Technique Tech = Technique::Maximal;
  /// Base driver options for every step. ResumeState/SaveState/MaxWindows/
  /// FlushTelemetry are owned by the detector and overwritten per step.
  DetectorOptions Detect;
  TraceParseOptions Parse;
  ReportRenderOptions Render;
};

/// What one analyzed window produced (the daemon's REPORT frame body).
struct StreamStep {
  uint64_t Window = 0;   ///< index of the window just analyzed
  bool Degraded = false; ///< answered by the WCP tier under load shedding
  /// Rendered lines for findings and unknowns new in this window. Deltas
  /// are additive-only (a later window can retire an unknown by deciding
  /// its signature; only the summary reflects that), so the cumulative
  /// summary — not the concatenation of deltas — is authoritative.
  std::string Delta;
  size_t NewFindings = 0;
  size_t NewUnknowns = 0;
};

/// All state one streaming session accumulates. Sessions never share one
/// of these, and reset() swaps in a fresh value, which is what guarantees
/// session isolation (no interned-string, value, or signature bleed).
struct DetectorRun {
  std::string Buffer;   ///< complete lines received so far
  std::string Pending;  ///< trailing partial line (no newline yet)
  std::string State;    ///< serialized cumulative driver state
  std::optional<Trace> Parsed; ///< cache of parseTraceText(Buffer)
  bool Dirty = true;    ///< Buffer changed since Parsed was built
  bool Finished = false;
  uint64_t WindowsDone = 0;
  uint64_t DegradedWindows = 0;
  uint64_t SkippedEvents = 0;
  size_t Findings = 0;
  size_t Unknowns = 0;
  /// Stats of the most recent driver call (cumulative via resume).
  DetectionStats Stats;
  /// finish() ran; SummaryText caches its report so a second finish()
  /// cannot double-flush telemetry.
  bool Complete = false;
  std::string SummaryText;
};

class StreamDetector {
public:
  explicit StreamDetector(StreamOptions Opts) : Opts(std::move(Opts)) {}

  /// Appends raw trace text; chunks may end mid-line.
  void feed(std::string_view Text);

  /// True when at least one full unanalyzed window is buffered. Parses
  /// the buffer if it changed; a parse error reports false here and
  /// surfaces from the next step()/finish().
  bool windowReady();

  /// Analyzes the next pending window (one full window; partial tails
  /// wait for finish()). \p Degrade answers this window from the WCP
  /// vector-clock tier instead of the solver pipeline — race property
  /// only; atomicity/deadlock steps ignore it and run normally. Returns
  /// false with \p Error set on parse failure, false with \p Error empty
  /// when no full window is pending.
  bool step(StreamStep &Out, bool Degrade, std::string &Error);

  /// End of input: analyzes any residual partial window (each step
  /// appended to \p Steps when non-null), flushes telemetry, and renders
  /// the cumulative report — byte-identical to `rvpredict detect` on the
  /// full trace when no window was degraded. Idempotent per session.
  bool finish(std::string &Summary, std::string &Error,
              std::vector<StreamStep> *Steps = nullptr);

  /// Discards every trace of the previous session (satellite of the
  /// daemon work: recycled detectors must behave like new ones).
  void reset() { Run = DetectorRun(); }

  /// Crash recovery: installs a state payload (CheckpointStore format,
  /// sans header) covering the first \p WindowsDone windows. Analysis
  /// stays suspended until the replayed trace covers those windows again,
  /// then resumes after them. Call before the first feed().
  void restore(std::string Payload, uint64_t WindowsDone) {
    Run.State = std::move(Payload);
    Run.WindowsDone = WindowsDone;
  }

  /// Full windows buffered but not yet analyzed (the backpressure and
  /// load-shedding signal). 0 while the buffer fails to parse.
  uint64_t pendingWindows();

  /// Eager parse check so the daemon can fail a session on the first bad
  /// DATA chunk instead of waiting for the next analysis step.
  bool checkParse(std::string &Error) { return ensureParsed(Error); }

  const DetectorRun &run() const { return Run; }
  const StreamOptions &options() const { return Opts; }
  /// Serialized cumulative state (checkpoint payload format) — what the
  /// daemon persists for crash recovery.
  const std::string &state() const { return Run.State; }

private:
  bool ensureParsed(std::string &Error);
  uint32_t windowSize() const;
  /// Windows the batch run would analyze for the current buffer.
  uint64_t totalWindows(const Trace &T, bool Final) const;
  bool analyzeOne(StreamStep &Out, bool Degrade, bool Final,
                  std::string &Error);

  StreamOptions Opts;
  DetectorRun Run;
};

} // namespace rvp

#endif // RVP_DETECT_STREAM_H
