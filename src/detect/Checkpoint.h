//===- detect/Checkpoint.h - Window checkpoint/resume ------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable per-window checkpoints for the detection drivers
/// (`--checkpoint=dir`, docs/ROBUSTNESS.md). The drivers process windows
/// strictly in trace order, so the whole resumable state is "everything
/// accumulated after window K": the store keeps one cumulative snapshot
/// file per completed window and a killed run restarted with the same
/// flags reloads the newest one and continues at window K+1, producing a
/// byte-identical final report.
///
/// File layout inside the directory:
///
///   window-<K>.ckpt     cumulative driver state after window K, written
///                       tmp+rename so a crash never leaves a torn file
///
/// Every file opens with `rvpckpt 1 <fingerprint>`; the fingerprint hashes
/// the trace contents and the detection-relevant flags, so a checkpoint
/// directory can never resume a different analysis. Snapshots with the
/// wrong fingerprint or version are ignored (the run starts from scratch
/// and overwrites them).
///
/// The payload format is owned by each driver (serialize/restore pairs in
/// Detect.cpp, Atomicity.cpp, Deadlock.cpp); this class only handles
/// framing, atomicity, and discovery.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_CHECKPOINT_H
#define RVP_DETECT_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <string_view>

namespace rvp {

/// FNV-1a over \p Data folded into \p Seed — the fingerprint hash (stable
/// across platforms and runs, unlike std::hash).
uint64_t checkpointHash(std::string_view Data, uint64_t Seed = 0xcbf29ce484222325ULL);

/// What loadLatest found in the directory, beyond the snapshot itself.
/// FingerprintMismatch means the newest well-formed snapshot was written
/// by a *different* analysis (other trace or flags): resuming over it
/// would silently reanalyze and then overwrite someone else's snapshots,
/// so the drivers refuse with a usage error instead (docs/ROBUSTNESS.md).
/// Stale-version files (a pre-`rvpckpt 1` build) still count as None —
/// overwriting an obsolete format is the upgrade path, not an error.
enum class CheckpointLoad : uint8_t { None, Loaded, FingerprintMismatch };

class CheckpointStore {
public:
  /// Opens (creating if needed) \p Dir for snapshots guarded by
  /// \p Fingerprint. An empty \p Dir disables the store.
  CheckpointStore(std::string Dir, uint64_t Fingerprint);

  bool enabled() const { return !Dir.empty(); }

  /// Loads the newest snapshot whose header matches the fingerprint.
  /// Returns the window index it covers and fills \p Payload (the bytes
  /// after the header line); -1 when there is none. \p Outcome (when
  /// non-null) distinguishes an empty directory from one holding another
  /// analysis' snapshots (CheckpointLoad::FingerprintMismatch).
  int64_t loadLatest(std::string &Payload,
                     CheckpointLoad *Outcome = nullptr) const;

  const std::string &directory() const { return Dir; }

  /// Shared driver reaction to CheckpointLoad::FingerprintMismatch:
  /// diagnose on stderr and exit with the usage code (2). Resuming would
  /// silently reanalyze from scratch and overwrite another analysis'
  /// snapshots — a clear operator error, never something to paper over.
  [[noreturn]] static void refuseMismatch(const CheckpointStore &Store);

  /// Atomically writes the cumulative \p Payload for completed window
  /// \p Index. Returns false on I/O failure (the run continues without
  /// checkpoint coverage; never fatal).
  bool save(uint64_t Index, const std::string &Payload) const;

private:
  std::string fileFor(uint64_t Index) const;

  std::string Dir;
  uint64_t Fingerprint;
};

} // namespace rvp

#endif // RVP_DETECT_CHECKPOINT_H
