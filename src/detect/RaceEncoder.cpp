//===- detect/RaceEncoder.cpp - Race constraint encoding --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceEncoder.h"

#include "detect/Detect.h"
#include "support/Compiler.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace rvp;

RaceEncoder::RaceEncoder(const Trace &T, Span S, const EventClosure &Mhb,
                         const std::vector<Value> &Initial,
                         EncoderOptions Options)
    : RaceEncoder(std::make_shared<const WindowEncoding>(T, S, Mhb, Initial),
                  Options) {}

RaceEncoder::RaceEncoder(std::shared_ptr<const WindowEncoding> Encoding,
                         EncoderOptions Options)
    : Enc(std::move(Encoding)), T(Enc->T), Window(Enc->Window), Mhb(Enc->Mhb),
      Options(Options) {}

// --------------------------------------------------------------- helpers

/// Atom under substitution; two events merged onto one position can never
/// be strictly ordered, so such atoms collapse to False. (They arise only
/// in queries that are unsatisfiable anyway; see the interference
/// discussion in readValueFormula.)
static NodeRef mkAtomS(FormulaBuilder &FB, OrderVar X, OrderVar Y) {
  if (X == Y)
    return FB.mkFalse();
  return FB.mkAtom(X, Y);
}

static uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

// ------------------------------------------------------ cone of influence

/// Cone accumulator for one sliced encode call (docs/ENCODER.md). Events
/// are recorded as the cf/value emission references their variables, the
/// query events and all cross-thread MHB endpoints are seeded up front,
/// and close() runs the lock fixpoint: any cone event inside (or at an
/// endpoint of) a critical section activates every lock constraint that
/// section is a side of, pulling the constraint's endpoints into the cone
/// in turn (which may activate enclosing sections — nested locking).
///
/// Membership tests use epoch-stamped thread_local scratch instead of a
/// per-call bitmap so per-COP cost stays proportional to the cone, not
/// the window (the same trick FormulaBuilder's complement scratch uses).
struct RaceEncoder::Cone {
  const WindowEncoding &Enc;
  std::vector<EventId> Events;     ///< insertion order until close()
  std::vector<uint32_t> ActiveLcs; ///< insertion order until close()
  size_t ScanPos = 0;

  struct Scratch {
    std::vector<uint64_t> EventStamp;
    std::vector<uint64_t> LcStamp;
    uint64_t Epoch = 0;
  };
  Scratch &Scr;

  explicit Cone(const WindowEncoding &Enc) : Enc(Enc), Scr(scratch()) {
    ++Scr.Epoch;
    size_t WindowSize = Enc.Window.End - Enc.Window.Begin;
    if (Scr.EventStamp.size() < WindowSize)
      Scr.EventStamp.resize(WindowSize, 0);
    if (Scr.LcStamp.size() < Enc.LockConstraints.size())
      Scr.LcStamp.resize(Enc.LockConstraints.size(), 0);
  }

  static Scratch &scratch() {
    static thread_local Scratch S;
    return S;
  }

  /// Records a window event; RootVar and InvalidEvent fall outside the
  /// window and are ignored.
  void addEvent(EventId E) {
    if (!Enc.Window.contains(E))
      return;
    uint64_t &Stamp = Scr.EventStamp[E - Enc.Window.Begin];
    if (Stamp == Scr.Epoch)
      return;
    Stamp = Scr.Epoch;
    Events.push_back(E);
  }

  void activate(uint32_t Lc) {
    uint64_t &Stamp = Scr.LcStamp[Lc];
    if (Stamp == Scr.Epoch)
      return;
    Stamp = Scr.Epoch;
    ActiveLcs.push_back(Lc);
    const WindowEncoding::LockConstraint &LC = Enc.LockConstraints[Lc];
    addEvent(LC.RelP);
    addEvent(LC.AcqQ);
    addEvent(LC.RelQ);
    addEvent(LC.AcqP);
  }

  /// Seeds the unconditionally-kept parts: every cross-thread MHB edge
  /// (few, and they anchor the per-thread chains to each other) and every
  /// one-sided (window-clipped) lock constraint — those are directional,
  /// and the gap-placement soundness argument only covers the symmetric
  /// mutual-exclusion disjunction for cone-free section pairs.
  void seed() {
    for (const auto &[From, To] : Enc.CrossEdges) {
      addEvent(From);
      addEvent(To);
    }
    for (uint32_t I = 0; I < Enc.LockConstraints.size(); ++I)
      if (!Enc.LockConstraints[I].Mutex)
        activate(I);
  }

  /// Lock fixpoint over everything recorded so far, then canonical order.
  void close() {
    while (ScanPos < Events.size()) {
      EventId E = Events[ScanPos++];
      for (uint32_t Sid : Enc.sectionsOf(E))
        for (uint32_t Lc : Enc.SectionConstraints[Sid])
          activate(Lc);
    }
    std::sort(Events.begin(), Events.end());
    std::sort(ActiveLcs.begin(), ActiveLcs.end());
  }
};

NodeRef RaceEncoder::encodeMhb(FormulaBuilder &FB, EventId A,
                               EventId B) const {
  Subst S{A, B};
  std::vector<NodeRef> Conj;
  Conj.reserve(Enc->MhbEdges.size());
  // The precomputed list carries the anchor under the synthetic root,
  // program-order chains, fork/join, and wait/notify atoms in emission
  // order; the substitution never touches RootVar.
  for (const auto &[From, To] : Enc->MhbEdges)
    Conj.push_back(mkAtomS(FB, S(From), S(To)));
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeLock(
    FormulaBuilder &FB, EventId A, EventId B,
    const std::vector<EventId> &ExcludedAcquires) const {
  Subst S{A, B};
  auto Excluded = [&](EventId SectionAcq) {
    return SectionAcq != InvalidEvent &&
           std::find(ExcludedAcquires.begin(), ExcludedAcquires.end(),
                     SectionAcq) != ExcludedAcquires.end();
  };
  std::vector<NodeRef> Conj;
  for (const WindowEncoding::LockConstraint &LC : Enc->LockConstraints) {
    if (!ExcludedAcquires.empty() &&
        (Excluded(LC.SectionAcqP) || Excluded(LC.SectionAcqQ)))
      continue;
    if (LC.Mutex)
      Conj.push_back(FB.mkOr2(mkAtomS(FB, S(LC.RelP), S(LC.AcqQ)),
                              mkAtomS(FB, S(LC.RelQ), S(LC.AcqP))));
    else
      Conj.push_back(mkAtomS(FB, S(LC.RelP), S(LC.AcqQ)));
  }
  return FB.mkAnd(std::move(Conj));
}

std::vector<EventId> RaceEncoder::guardingBranches(EventId E) const {
  std::vector<EventId> Guards;
  for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
    const std::vector<EventId> &Branches = Enc->ThreadBranches[Tid];
    // ordered(br, E) is monotone along a thread's branches: if a later
    // branch must happen before E, so must every earlier one. Binary
    // search for the last branch with br ≼ E.
    int64_t Lo = 0, Hi = static_cast<int64_t>(Branches.size()) - 1;
    int64_t Best = -1;
    while (Lo <= Hi) {
      int64_t Mid = (Lo + Hi) / 2;
      if (Branches[Mid] != E && Mhb.ordered(Branches[Mid], E)) {
        Best = Mid;
        Lo = Mid + 1;
      } else {
        Hi = Mid - 1;
      }
    }
    // A statically constant branch takes the recorded direction in every
    // execution, so cf(e) needs no guard for it; walk back to the last
    // branch the oracle cannot fold — guarding it still covers all
    // earlier branches (cf is monotone along the thread).
    uint64_t Folded = 0;
    while (Best >= 0 && Options.Fold &&
           Options.Fold->foldableBranch(T, Branches[Best])) {
      --Best;
      ++Folded;
    }
    if (Folded > 0 && Telemetry::enabled()) {
      static Counter &RangesFolded =
          MetricsRegistry::global().counter("analysis.ranges_folded");
      RangesFolded.add(Folded);
    }
    if (Best >= 0)
      Guards.push_back(Branches[Best]);
  }
  std::sort(Guards.begin(), Guards.end());
  return Guards;
}

NodeRef RaceEncoder::cfVar(CfState &St, EventId E) const {
  if (St.C)
    St.C->addEvent(E);
  auto [It, Inserted] = St.VarOf.try_emplace(E, E);
  if (Inserted)
    St.Worklist.push_back(E);
  return St.FB.mkBoolVar(It->second);
}

NodeRef RaceEncoder::atomS(CfState &St, EventId X, EventId Y) const {
  if (St.C) {
    St.C->addEvent(X);
    St.C->addEvent(Y);
  }
  return mkAtomS(St.FB, St.S(X), St.S(Y));
}

NodeRef RaceEncoder::branchGuards(CfState &St, EventId E) const {
  std::vector<NodeRef> Conj;
  for (EventId Branch : guardingBranches(E))
    Conj.push_back(cfVar(St, Branch));
  if (Telemetry::enabled()) {
    // References into the registry stay valid across reset(), so the
    // lookup cost is paid once per process, not per constraint.
    static Counter &BranchConstraints =
        MetricsRegistry::global().counter("encoder.branch_constraints");
    BranchConstraints.add(Conj.size());
  }
  return St.FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::readValueFormula(CfState &St, EventId R,
                                      bool Guarded) const {
  FormulaBuilder &FB = St.FB;
  const Subst &S = St.S;
  const WindowEncoding::ReadInfo &Info = Enc->readInfo(R);

  std::vector<NodeRef> Disjuncts;
  for (const WindowEncoding::ReadCandidate &Cand : Info.Candidates) {
    EventId W = Cand.Write;
    if (S(W) == S(R)) {
      // The candidate is the race write merged with this read (the COP
      // itself): the read sits immediately after the write, so it reads
      // from it with nothing in between.
      Disjuncts.push_back(Guarded ? cfVar(St, W) : FB.mkTrue());
      continue;
    }

    std::vector<NodeRef> Conj;
    if (Guarded)
      Conj.push_back(cfVar(St, W));
    Conj.push_back(atomS(St, W, R));
    for (EventId W2 : Cand.Others)
      Conj.push_back(FB.mkOr2(atomS(St, W2, W), atomS(St, R, W2)));
    Disjuncts.push_back(FB.mkAnd(std::move(Conj)));
  }

  // Initial-value disjunct: the read observes the value the variable had
  // at window entry, i.e. every in-window write is moved after it.
  if (Info.InitialOk) {
    std::vector<NodeRef> Conj;
    for (EventId W : Info.Interfering)
      Conj.push_back(atomS(St, R, W));
    Disjuncts.push_back(FB.mkAnd(std::move(Conj)));
  }

  if (Telemetry::enabled()) {
    static Counter &ReadConsistency = MetricsRegistry::global().counter(
        "encoder.read_consistency_constraints");
    ReadConsistency.inc();
  }
  return FB.mkOr(std::move(Disjuncts));
}

void RaceEncoder::emitCfDefs(CfState &St) const {
  while (!St.Worklist.empty()) {
    EventId E = St.Worklist.back();
    St.Worklist.pop_back();
    const Event &Ev = T[E];
    NodeRef Def;
    if (Ev.Kind == EventKind::Branch || Ev.isWrite()) {
      // Local branch/write determinism: feasible iff the whole read
      // history of the thread stays concrete (Section 3.2).
      std::vector<NodeRef> Conj;
      const std::vector<EventId> &Reads = Enc->ThreadReads[Ev.Tid];
      for (EventId R : Reads) {
        if (R >= E)
          break;
        Conj.push_back(cfVar(St, R));
      }
      Def = St.FB.mkAnd(std::move(Conj));
    } else if (Ev.isRead()) {
      Def = readValueFormula(St, E, /*Guarded=*/true);
    } else {
      RVP_UNREACHABLE("cf variable for a non-branch/read/write event");
    }
    St.Defs.push_back(St.FB.mkGuardedDef(St.VarOf.at(E), Def));
    if (Telemetry::enabled()) {
      static Counter &CfDefs =
          MetricsRegistry::global().counter("encoder.cf_defs");
      CfDefs.inc();
    }
  }
}

NodeRef RaceEncoder::adjacency(FormulaBuilder &FB, Subst S, EventId A,
                               EventId B) const {
  // Naive adjacency (ablation mode): A immediately precedes B, i.e.
  // A < B and no window event lies between them.
  std::vector<NodeRef> Conj = {FB.mkAtom(A, B)};
  for (EventId E = Window.Begin; E < Window.End; ++E) {
    if (E == A || E == B)
      continue;
    Conj.push_back(FB.mkOr2(FB.mkAtom(E, A), FB.mkAtom(B, E)));
  }
  return FB.mkAnd(std::move(Conj));
}

// ----------------------------------------------------- skeleton cache

/// Records the per-cone counters once the skeleton is known.
static void recordConeStats(size_t ConeEvents, EncodeStats *Stats) {
  if (Stats)
    Stats->ConeEvents += ConeEvents;
  if (Telemetry::enabled()) {
    static Counter &Events =
        MetricsRegistry::global().counter("encoder.cone_events");
    Events.add(ConeEvents);
  }
}

const RaceEncoder::Skeleton &RaceEncoder::skeletonFor(Cone &C,
                                                      EncodeStats *Stats) const {
  uint64_t Hash = hashCombine(0x51CEDA7ABCDEF01ULL, C.Events.size());
  for (EventId E : C.Events)
    Hash = hashCombine(Hash, E);
  Hash = hashCombine(Hash, C.ActiveLcs.size());
  for (uint32_t Lc : C.ActiveLcs)
    Hash = hashCombine(Hash, Lc);

  auto Matches = [&](const Skeleton &Sk) {
    return Sk.Events == C.Events && Sk.ActiveLcs == C.ActiveLcs;
  };
  {
    std::shared_lock<std::shared_mutex> Lock(SkelMutex);
    auto It = SkelCache.find(Hash);
    if (It != SkelCache.end())
      for (const std::unique_ptr<Skeleton> &Sk : It->second)
        if (Matches(*Sk)) {
          if (Stats)
            Stats->CacheHit = true;
          if (Telemetry::enabled()) {
            static Counter &Hits = MetricsRegistry::global().counter(
                "encoder.skeleton_cache_hits");
            Hits.inc();
          }
          return *Sk;
        }
  }

  auto Sk = std::make_unique<Skeleton>();
  Sk->Events = C.Events;
  Sk->ActiveLcs = C.ActiveLcs;
  // Compressed per-thread chains over the sorted cone: each thread's
  // first cone event is anchored under the synthetic root, every later
  // one under its cone predecessor. Transitivity of `<` makes the
  // compressed chain equivalent to the full program-order chain over the
  // cone's variables. Cross-thread edges are kept verbatim.
  Sk->MhbAtoms.reserve(Sk->Events.size() + Enc->CrossEdges.size());
  std::vector<EventId> Last(T.numThreads(), InvalidEvent);
  for (EventId E : Sk->Events) {
    ThreadId Tid = T[E].Tid;
    Sk->MhbAtoms.emplace_back(
        Last[Tid] == InvalidEvent ? WindowEncoding::RootVar : Last[Tid], E);
    Last[Tid] = E;
  }
  for (const auto &[From, To] : Enc->CrossEdges)
    Sk->MhbAtoms.emplace_back(From, To);

  std::unique_lock<std::shared_mutex> Lock(SkelMutex);
  std::vector<std::unique_ptr<Skeleton>> &Bucket = SkelCache[Hash];
  // Another worker may have built the same skeleton while we did; keep
  // the first insert so cached references stay stable.
  for (const std::unique_ptr<Skeleton> &Existing : Bucket)
    if (Matches(*Existing))
      return *Existing;
  Bucket.push_back(std::move(Sk));
  return *Bucket.back();
}

NodeRef RaceEncoder::emitSkeleton(FormulaBuilder &FB, const Skeleton &Sk,
                                  Subst S,
                                  const std::vector<EventId> &ExcludedAcquires,
                                  EncodeStats *Stats) const {
  auto Excluded = [&](EventId SectionAcq) {
    return SectionAcq != InvalidEvent &&
           std::find(ExcludedAcquires.begin(), ExcludedAcquires.end(),
                     SectionAcq) != ExcludedAcquires.end();
  };
  std::vector<NodeRef> Conj;
  Conj.reserve(Sk.MhbAtoms.size() + Sk.ActiveLcs.size());
  for (const auto &[From, To] : Sk.MhbAtoms)
    Conj.push_back(mkAtomS(FB, S(From), S(To)));
  uint64_t Atoms = Sk.MhbAtoms.size();
  for (uint32_t Lc : Sk.ActiveLcs) {
    const WindowEncoding::LockConstraint &LC = Enc->LockConstraints[Lc];
    if (!ExcludedAcquires.empty() &&
        (Excluded(LC.SectionAcqP) || Excluded(LC.SectionAcqQ)))
      continue;
    if (LC.Mutex) {
      Conj.push_back(FB.mkOr2(mkAtomS(FB, S(LC.RelP), S(LC.AcqQ)),
                              mkAtomS(FB, S(LC.RelQ), S(LC.AcqP))));
      Atoms += 2;
    } else {
      Conj.push_back(mkAtomS(FB, S(LC.RelP), S(LC.AcqQ)));
      Atoms += 1;
    }
  }
  if (Stats)
    Stats->SlicedAtoms += Atoms;
  if (Telemetry::enabled()) {
    static Counter &Sliced =
        MetricsRegistry::global().counter("encoder.sliced_atoms");
    Sliced.add(Atoms);
  }
  return FB.mkAnd(std::move(Conj));
}

// --------------------------------------------------------- encode calls

NodeRef RaceEncoder::encodeMaximalImpl(FormulaBuilder &FB, EventId A,
                                       EventId B, EncodeStats *Stats,
                                       ConeInfo *ConeOut) const {
  Subst S;
  if (Options.SubstituteRaceVars)
    S = Subst{A, B};

  // The naive adjacency encoding references every window event, so there
  // is nothing to slice.
  if (!Options.Slice || !Options.SubstituteRaceVars) {
    if (ConeOut) {
      for (EventId E = Window.Begin; E < Window.End; ++E)
        ConeOut->Events.push_back(E);
      for (uint32_t I = 0; I < Enc->LockConstraints.size(); ++I)
        ConeOut->ActiveLocks.push_back(I);
    }
    CfState St{FB, S, {}, {}, {}};
    std::vector<NodeRef> Conj;
    Conj.push_back(encodeMhb(FB, S.A, S.B));
    Conj.push_back(encodeLock(FB, S.A, S.B));
    if (!Options.SubstituteRaceVars)
      Conj.push_back(adjacency(FB, S, A, B));
    Conj.push_back(branchGuards(St, A));
    Conj.push_back(branchGuards(St, B));
    emitCfDefs(St);
    for (NodeRef Def : St.Defs)
      Conj.push_back(Def);
    return FB.mkAnd(std::move(Conj));
  }

  // Sliced: emit the control-flow part first so the cone is complete
  // (every referenced variable recorded) before the skeleton is chosen.
  // mkAnd sorts its children, so conjunct order does not change the
  // resulting formula.
  Cone C(*Enc);
  CfState St{FB, S, {}, {}, {}, &C};
  C.addEvent(A);
  C.addEvent(B);
  C.seed();
  NodeRef GuardsA = branchGuards(St, A);
  NodeRef GuardsB = branchGuards(St, B);
  emitCfDefs(St);
  C.close();
  const Skeleton &Sk = skeletonFor(C, Stats);
  recordConeStats(Sk.Events.size(), Stats);
  if (ConeOut) {
    ConeOut->Events = Sk.Events;
    ConeOut->ActiveLocks = Sk.ActiveLcs;
  }

  std::vector<NodeRef> Conj;
  Conj.reserve(St.Defs.size() + 3);
  Conj.push_back(emitSkeleton(FB, Sk, S, {}, Stats));
  Conj.push_back(GuardsA);
  Conj.push_back(GuardsB);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeMaximalRace(FormulaBuilder &FB, EventId A,
                                       EventId B, EncodeStats *Stats) const {
  return encodeMaximalImpl(FB, A, B, Stats, nullptr);
}

RaceEncoder::ConeInfo RaceEncoder::coneOf(EventId A, EventId B) const {
  ConeInfo Info;
  FormulaBuilder Scratch;
  encodeMaximalImpl(Scratch, A, B, nullptr, &Info);
  return Info;
}

NodeRef RaceEncoder::encodeBetween(FormulaBuilder &FB, EventId A1, EventId B,
                                   EventId A2, EncodeStats *Stats) const {
  if (!Options.Slice) {
    CfState St{FB, Subst{}, {}, {}, {}};
    std::vector<NodeRef> Conj;
    Conj.push_back(encodeMhb(FB));
    Conj.push_back(encodeLock(FB));
    Conj.push_back(FB.mkAtom(A1, B));
    Conj.push_back(FB.mkAtom(B, A2));
    Conj.push_back(branchGuards(St, A1));
    Conj.push_back(branchGuards(St, B));
    Conj.push_back(branchGuards(St, A2));
    emitCfDefs(St);
    for (NodeRef Def : St.Defs)
      Conj.push_back(Def);
    return FB.mkAnd(std::move(Conj));
  }

  Cone C(*Enc);
  CfState St{FB, Subst{}, {}, {}, {}, &C};
  C.addEvent(A1);
  C.addEvent(B);
  C.addEvent(A2);
  C.seed();
  NodeRef Guards1 = branchGuards(St, A1);
  NodeRef Guards2 = branchGuards(St, B);
  NodeRef Guards3 = branchGuards(St, A2);
  emitCfDefs(St);
  C.close();
  const Skeleton &Sk = skeletonFor(C, Stats);
  recordConeStats(Sk.Events.size(), Stats);

  std::vector<NodeRef> Conj;
  Conj.reserve(St.Defs.size() + 6);
  Conj.push_back(emitSkeleton(FB, Sk, Subst{}, {}, Stats));
  Conj.push_back(FB.mkAtom(A1, B));
  Conj.push_back(FB.mkAtom(B, A2));
  Conj.push_back(Guards1);
  Conj.push_back(Guards2);
  Conj.push_back(Guards3);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeDeadlock(FormulaBuilder &FB, EventId ReqA,
                                    EventId ReqB, const LockPair &OutA,
                                    const LockPair &OutB,
                                    EncodeStats *Stats) const {
  if (!Options.Slice) {
    CfState St{FB, Subst{}, {}, {}, {}};
    std::vector<NodeRef> Conj;
    Conj.push_back(encodeMhb(FB));
    Conj.push_back(encodeLock(FB, InvalidEvent, InvalidEvent,
                              {ReqA, ReqB}));
    // Hold-and-wait: each request falls inside the other thread's held
    // section.
    Conj.push_back(FB.mkAtom(OutB.AcquireId, ReqA));
    Conj.push_back(FB.mkAtom(ReqA, OutB.ReleaseId));
    Conj.push_back(FB.mkAtom(OutA.AcquireId, ReqB));
    Conj.push_back(FB.mkAtom(ReqB, OutA.ReleaseId));
    Conj.push_back(branchGuards(St, ReqA));
    Conj.push_back(branchGuards(St, ReqB));
    emitCfDefs(St);
    for (NodeRef Def : St.Defs)
      Conj.push_back(Def);
    return FB.mkAnd(std::move(Conj));
  }

  Cone C(*Enc);
  CfState St{FB, Subst{}, {}, {}, {}, &C};
  C.addEvent(ReqA);
  C.addEvent(ReqB);
  C.addEvent(OutA.AcquireId);
  C.addEvent(OutA.ReleaseId);
  C.addEvent(OutB.AcquireId);
  C.addEvent(OutB.ReleaseId);
  C.seed();
  NodeRef GuardsA = branchGuards(St, ReqA);
  NodeRef GuardsB = branchGuards(St, ReqB);
  emitCfDefs(St);
  C.close();
  const Skeleton &Sk = skeletonFor(C, Stats);
  recordConeStats(Sk.Events.size(), Stats);

  std::vector<NodeRef> Conj;
  Conj.reserve(St.Defs.size() + 7);
  Conj.push_back(emitSkeleton(FB, Sk, Subst{}, {ReqA, ReqB}, Stats));
  Conj.push_back(FB.mkAtom(OutB.AcquireId, ReqA));
  Conj.push_back(FB.mkAtom(ReqA, OutB.ReleaseId));
  Conj.push_back(FB.mkAtom(OutA.AcquireId, ReqB));
  Conj.push_back(FB.mkAtom(ReqB, OutA.ReleaseId));
  Conj.push_back(GuardsA);
  Conj.push_back(GuardsB);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeSaidRace(FormulaBuilder &FB, EventId A,
                                    EventId B, EncodeStats *Stats) const {
  Subst S;
  if (Options.SubstituteRaceVars)
    S = Subst{A, B};

  if (!Options.Slice || !Options.SubstituteRaceVars) {
    CfState St{FB, S, {}, {}, {}};
    std::vector<NodeRef> Conj;
    Conj.push_back(encodeMhb(FB, S.A, S.B));
    Conj.push_back(encodeLock(FB, S.A, S.B));
    if (!Options.SubstituteRaceVars)
      Conj.push_back(adjacency(FB, S, A, B));
    // Whole-window read-write consistency: every read keeps its value.
    for (EventId R : Enc->AllReads)
      Conj.push_back(readValueFormula(St, R, /*Guarded=*/false));
    assert(St.Worklist.empty() && "unguarded encoding queued cf definitions");
    return FB.mkAnd(std::move(Conj));
  }

  Cone C(*Enc);
  CfState St{FB, S, {}, {}, {}, &C};
  C.addEvent(A);
  C.addEvent(B);
  C.seed();
  std::vector<NodeRef> Value;
  Value.reserve(Enc->AllReads.size());
  for (EventId R : Enc->AllReads)
    Value.push_back(readValueFormula(St, R, /*Guarded=*/false));
  assert(St.Worklist.empty() && "unguarded encoding queued cf definitions");
  C.close();
  const Skeleton &Sk = skeletonFor(C, Stats);
  recordConeStats(Sk.Events.size(), Stats);

  std::vector<NodeRef> Conj;
  Conj.reserve(Value.size() + 1);
  Conj.push_back(emitSkeleton(FB, Sk, S, {}, Stats));
  for (NodeRef V : Value)
    Conj.push_back(V);
  return FB.mkAnd(std::move(Conj));
}
