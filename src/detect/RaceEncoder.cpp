//===- detect/RaceEncoder.cpp - Race constraint encoding --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceEncoder.h"

#include "support/Compiler.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace rvp;

RaceEncoder::RaceEncoder(const Trace &T, Span S, const EventClosure &Mhb,
                         const std::vector<Value> &Initial,
                         EncoderOptions Options)
    : RaceEncoder(std::make_shared<const WindowEncoding>(T, S, Mhb, Initial),
                  Options) {}

RaceEncoder::RaceEncoder(std::shared_ptr<const WindowEncoding> Encoding,
                         EncoderOptions Options)
    : Enc(std::move(Encoding)), T(Enc->T), Window(Enc->Window), Mhb(Enc->Mhb),
      Options(Options) {}

// --------------------------------------------------------------- helpers

/// Atom under substitution; two events merged onto one position can never
/// be strictly ordered, so such atoms collapse to False. (They arise only
/// in queries that are unsatisfiable anyway; see the interference
/// discussion in readValueFormula.)
static NodeRef mkAtomS(FormulaBuilder &FB, OrderVar X, OrderVar Y) {
  if (X == Y)
    return FB.mkFalse();
  return FB.mkAtom(X, Y);
}

NodeRef RaceEncoder::encodeMhb(FormulaBuilder &FB, EventId A,
                               EventId B) const {
  Subst S{A, B};
  std::vector<NodeRef> Conj;
  Conj.reserve(Enc->MhbEdges.size());
  // The precomputed list carries the anchor under the synthetic root,
  // program-order chains, fork/join, and wait/notify atoms in emission
  // order; the substitution never touches RootVar.
  for (const auto &[From, To] : Enc->MhbEdges)
    Conj.push_back(mkAtomS(FB, S(From), S(To)));
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeLock(
    FormulaBuilder &FB, EventId A, EventId B,
    const std::vector<EventId> &ExcludedAcquires) const {
  Subst S{A, B};
  auto Excluded = [&](EventId SectionAcq) {
    return SectionAcq != InvalidEvent &&
           std::find(ExcludedAcquires.begin(), ExcludedAcquires.end(),
                     SectionAcq) != ExcludedAcquires.end();
  };
  std::vector<NodeRef> Conj;
  for (const WindowEncoding::LockConstraint &LC : Enc->LockConstraints) {
    if (!ExcludedAcquires.empty() &&
        (Excluded(LC.SectionAcqP) || Excluded(LC.SectionAcqQ)))
      continue;
    if (LC.Mutex)
      Conj.push_back(FB.mkOr2(mkAtomS(FB, S(LC.RelP), S(LC.AcqQ)),
                              mkAtomS(FB, S(LC.RelQ), S(LC.AcqP))));
    else
      Conj.push_back(mkAtomS(FB, S(LC.RelP), S(LC.AcqQ)));
  }
  return FB.mkAnd(std::move(Conj));
}

std::vector<EventId> RaceEncoder::guardingBranches(EventId E) const {
  std::vector<EventId> Guards;
  for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
    const std::vector<EventId> &Branches = Enc->ThreadBranches[Tid];
    // ordered(br, E) is monotone along a thread's branches: if a later
    // branch must happen before E, so must every earlier one. Binary
    // search for the last branch with br ≼ E.
    int64_t Lo = 0, Hi = static_cast<int64_t>(Branches.size()) - 1;
    int64_t Best = -1;
    while (Lo <= Hi) {
      int64_t Mid = (Lo + Hi) / 2;
      if (Branches[Mid] != E && Mhb.ordered(Branches[Mid], E)) {
        Best = Mid;
        Lo = Mid + 1;
      } else {
        Hi = Mid - 1;
      }
    }
    if (Best >= 0)
      Guards.push_back(Branches[Best]);
  }
  std::sort(Guards.begin(), Guards.end());
  return Guards;
}

NodeRef RaceEncoder::cfVar(CfState &St, EventId E) const {
  auto [It, Inserted] = St.VarOf.try_emplace(E, E);
  if (Inserted)
    St.Worklist.push_back(E);
  return St.FB.mkBoolVar(It->second);
}

NodeRef RaceEncoder::branchGuards(CfState &St, EventId E) const {
  std::vector<NodeRef> Conj;
  for (EventId Branch : guardingBranches(E))
    Conj.push_back(cfVar(St, Branch));
  if (Telemetry::enabled()) {
    // References into the registry stay valid across reset(), so the
    // lookup cost is paid once per process, not per constraint.
    static Counter &BranchConstraints =
        MetricsRegistry::global().counter("encoder.branch_constraints");
    BranchConstraints.add(Conj.size());
  }
  return St.FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::readValueFormula(CfState &St, EventId R,
                                      bool Guarded) const {
  FormulaBuilder &FB = St.FB;
  const Subst &S = St.S;
  const WindowEncoding::ReadInfo &Info = Enc->readInfo(R);

  std::vector<NodeRef> Disjuncts;
  for (const WindowEncoding::ReadCandidate &Cand : Info.Candidates) {
    EventId W = Cand.Write;
    if (S(W) == S(R)) {
      // The candidate is the race write merged with this read (the COP
      // itself): the read sits immediately after the write, so it reads
      // from it with nothing in between.
      Disjuncts.push_back(Guarded ? cfVar(St, W) : FB.mkTrue());
      continue;
    }

    std::vector<NodeRef> Conj;
    if (Guarded)
      Conj.push_back(cfVar(St, W));
    Conj.push_back(mkAtomS(FB, S(W), S(R)));
    for (EventId W2 : Cand.Others)
      Conj.push_back(FB.mkOr2(mkAtomS(FB, S(W2), S(W)),
                              mkAtomS(FB, S(R), S(W2))));
    Disjuncts.push_back(FB.mkAnd(std::move(Conj)));
  }

  // Initial-value disjunct: the read observes the value the variable had
  // at window entry, i.e. every in-window write is moved after it.
  if (Info.InitialOk) {
    std::vector<NodeRef> Conj;
    for (EventId W : Info.Interfering)
      Conj.push_back(mkAtomS(FB, S(R), S(W)));
    Disjuncts.push_back(FB.mkAnd(std::move(Conj)));
  }

  if (Telemetry::enabled()) {
    static Counter &ReadConsistency = MetricsRegistry::global().counter(
        "encoder.read_consistency_constraints");
    ReadConsistency.inc();
  }
  return FB.mkOr(std::move(Disjuncts));
}

void RaceEncoder::emitCfDefs(CfState &St) const {
  while (!St.Worklist.empty()) {
    EventId E = St.Worklist.back();
    St.Worklist.pop_back();
    const Event &Ev = T[E];
    NodeRef Def;
    if (Ev.Kind == EventKind::Branch || Ev.isWrite()) {
      // Local branch/write determinism: feasible iff the whole read
      // history of the thread stays concrete (Section 3.2).
      std::vector<NodeRef> Conj;
      const std::vector<EventId> &Reads = Enc->ThreadReads[Ev.Tid];
      for (EventId R : Reads) {
        if (R >= E)
          break;
        Conj.push_back(cfVar(St, R));
      }
      Def = St.FB.mkAnd(std::move(Conj));
    } else if (Ev.isRead()) {
      Def = readValueFormula(St, E, /*Guarded=*/true);
    } else {
      RVP_UNREACHABLE("cf variable for a non-branch/read/write event");
    }
    St.Defs.push_back(St.FB.mkGuardedDef(St.VarOf.at(E), Def));
    if (Telemetry::enabled()) {
      static Counter &CfDefs =
          MetricsRegistry::global().counter("encoder.cf_defs");
      CfDefs.inc();
    }
  }
}

NodeRef RaceEncoder::adjacency(FormulaBuilder &FB, Subst S, EventId A,
                               EventId B) const {
  // Naive adjacency (ablation mode): A immediately precedes B, i.e.
  // A < B and no window event lies between them.
  std::vector<NodeRef> Conj = {FB.mkAtom(A, B)};
  for (EventId E = Window.Begin; E < Window.End; ++E) {
    if (E == A || E == B)
      continue;
    Conj.push_back(FB.mkOr2(FB.mkAtom(E, A), FB.mkAtom(B, E)));
  }
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeMaximalRace(FormulaBuilder &FB, EventId A,
                                       EventId B) const {
  Subst S;
  if (Options.SubstituteRaceVars)
    S = Subst{A, B};
  CfState St{FB, S, {}, {}, {}};

  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB, S.A, S.B));
  Conj.push_back(encodeLock(FB, S.A, S.B));
  if (!Options.SubstituteRaceVars)
    Conj.push_back(adjacency(FB, S, A, B));
  Conj.push_back(branchGuards(St, A));
  Conj.push_back(branchGuards(St, B));
  emitCfDefs(St);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeBetween(FormulaBuilder &FB, EventId A1,
                                   EventId B, EventId A2) const {
  CfState St{FB, Subst{}, {}, {}, {}};
  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB));
  Conj.push_back(encodeLock(FB));
  Conj.push_back(FB.mkAtom(A1, B));
  Conj.push_back(FB.mkAtom(B, A2));
  Conj.push_back(branchGuards(St, A1));
  Conj.push_back(branchGuards(St, B));
  Conj.push_back(branchGuards(St, A2));
  emitCfDefs(St);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeDeadlock(FormulaBuilder &FB, EventId ReqA,
                                    EventId ReqB, const LockPair &OutA,
                                    const LockPair &OutB) const {
  CfState St{FB, Subst{}, {}, {}, {}};
  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB));
  Conj.push_back(encodeLock(FB, InvalidEvent, InvalidEvent,
                            {ReqA, ReqB}));
  // Hold-and-wait: each request falls inside the other thread's held
  // section.
  Conj.push_back(FB.mkAtom(OutB.AcquireId, ReqA));
  Conj.push_back(FB.mkAtom(ReqA, OutB.ReleaseId));
  Conj.push_back(FB.mkAtom(OutA.AcquireId, ReqB));
  Conj.push_back(FB.mkAtom(ReqB, OutA.ReleaseId));
  Conj.push_back(branchGuards(St, ReqA));
  Conj.push_back(branchGuards(St, ReqB));
  emitCfDefs(St);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeSaidRace(FormulaBuilder &FB, EventId A,
                                    EventId B) const {
  Subst S;
  if (Options.SubstituteRaceVars)
    S = Subst{A, B};
  CfState St{FB, S, {}, {}, {}};

  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB, S.A, S.B));
  Conj.push_back(encodeLock(FB, S.A, S.B));
  if (!Options.SubstituteRaceVars)
    Conj.push_back(adjacency(FB, S, A, B));
  // Whole-window read-write consistency: every read keeps its value.
  for (EventId R : Enc->AllReads)
    Conj.push_back(readValueFormula(St, R, /*Guarded=*/false));
  assert(St.Worklist.empty() && "unguarded encoding queued cf definitions");
  return FB.mkAnd(std::move(Conj));
}
