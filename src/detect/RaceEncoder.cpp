//===- detect/RaceEncoder.cpp - Race constraint encoding --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceEncoder.h"

#include "support/Compiler.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <unordered_map>

using namespace rvp;

namespace {

/// Synthetic order variable placed before every window event; it gives
/// every event at least one atom so that models are total over the window
/// (needed when assembling witness orders).
constexpr OrderVar RootVar = UINT32_MAX - 7;

} // namespace

RaceEncoder::RaceEncoder(const Trace &T, Span S, const EventClosure &Mhb,
                         const std::vector<Value> &Initial,
                         EncoderOptions Options)
    : T(T), Window(S), Mhb(Mhb), Options(Options) {
  InitialValues.assign(T.numVars(), 0);
  for (size_t I = 0; I < Initial.size() && I < InitialValues.size(); ++I)
    InitialValues[I] = Initial[I];

  ThreadEvents.resize(T.numThreads());
  ThreadBranches.resize(T.numThreads());
  ThreadReads.resize(T.numThreads());
  VarWrites.resize(T.numVars());

  std::unordered_map<uint32_t, WaitTriple> TriplesByMatch;
  for (EventId Id = S.Begin; Id < S.End; ++Id) {
    const Event &E = T[Id];
    ThreadEvents[E.Tid].push_back(Id);
    switch (E.Kind) {
    case EventKind::Branch:
      ThreadBranches[E.Tid].push_back(Id);
      break;
    case EventKind::Read:
      ThreadReads[E.Tid].push_back(Id);
      AllReads.push_back(Id);
      break;
    case EventKind::Write:
      VarWrites[E.Target].push_back(Id);
      break;
    case EventKind::Release:
      if (E.Aux != 0)
        TriplesByMatch[E.Aux].Release = Id;
      break;
    case EventKind::Acquire:
      if (E.Aux != 0)
        TriplesByMatch[E.Aux].Acquire = Id;
      break;
    case EventKind::Notify:
      if (E.Aux != 0)
        TriplesByMatch[E.Aux].Notify = Id;
      break;
    default:
      break;
    }
  }
  for (auto &[Match, Triple] : TriplesByMatch) {
    (void)Match;
    WaitTriples.push_back(Triple);
  }
}

// --------------------------------------------------------------- helpers

/// Atom under substitution; two events merged onto one position can never
/// be strictly ordered, so such atoms collapse to False. (They arise only
/// in queries that are unsatisfiable anyway; see the interference
/// discussion in readValueFormula.)
static NodeRef mkAtomS(FormulaBuilder &FB, OrderVar X, OrderVar Y) {
  if (X == Y)
    return FB.mkFalse();
  return FB.mkAtom(X, Y);
}

NodeRef RaceEncoder::encodeMhb(FormulaBuilder &FB, EventId A,
                               EventId B) const {
  Subst S{A, B};
  std::vector<NodeRef> Conj;

  for (const std::vector<EventId> &Events : ThreadEvents) {
    if (Events.empty())
      continue;
    // Anchor each thread under the synthetic root...
    Conj.push_back(mkAtomS(FB, RootVar, S(Events.front())));
    // ...and chain program order.
    for (size_t I = 0; I + 1 < Events.size(); ++I)
      Conj.push_back(mkAtomS(FB, S(Events[I]), S(Events[I + 1])));
  }

  // fork -> begin, end -> join (when both ends are inside the window).
  for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
    EventId Fork = T.forkOf(Tid);
    EventId Begin = T.beginOf(Tid);
    if (Fork != InvalidEvent && Begin != InvalidEvent &&
        Window.contains(Fork) && Window.contains(Begin))
      Conj.push_back(mkAtomS(FB, S(Fork), S(Begin)));
    EventId End = T.endOf(Tid);
    EventId Join = T.joinOf(Tid);
    if (End != InvalidEvent && Join != InvalidEvent &&
        Window.contains(End) && Window.contains(Join))
      Conj.push_back(mkAtomS(FB, S(End), S(Join)));
  }

  // wait/notify: release(wait) < notify < acquire(wait) (Section 4).
  for (const WaitTriple &W : WaitTriples) {
    if (W.Notify == InvalidEvent)
      continue;
    if (W.Release != InvalidEvent)
      Conj.push_back(mkAtomS(FB, S(W.Release), S(W.Notify)));
    if (W.Acquire != InvalidEvent)
      Conj.push_back(mkAtomS(FB, S(W.Notify), S(W.Acquire)));
  }

  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeLock(
    FormulaBuilder &FB, EventId A, EventId B,
    const std::vector<EventId> &ExcludedAcquires) const {
  Subst S{A, B};
  std::vector<NodeRef> Conj;

  struct SpanPair {
    EventId Acq = InvalidEvent; ///< InvalidEvent when outside the window
    EventId Rel = InvalidEvent;
    ThreadId Tid = 0;
  };

  for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
    std::vector<SpanPair> Pairs;
    for (const LockPair &P : T.lockPairsOf(Lock)) {
      SpanPair SP;
      SP.Tid = P.Tid;
      if (P.AcquireId != InvalidEvent &&
          std::find(ExcludedAcquires.begin(), ExcludedAcquires.end(),
                    P.AcquireId) != ExcludedAcquires.end())
        continue;
      if (P.AcquireId != InvalidEvent && Window.contains(P.AcquireId))
        SP.Acq = P.AcquireId;
      if (P.ReleaseId != InvalidEvent && Window.contains(P.ReleaseId))
        SP.Rel = P.ReleaseId;
      if (SP.Acq != InvalidEvent || SP.Rel != InvalidEvent)
        Pairs.push_back(SP);
    }
    for (size_t I = 0; I < Pairs.size(); ++I) {
      for (size_t J = I + 1; J < Pairs.size(); ++J) {
        const SpanPair &P = Pairs[I];
        const SpanPair &Q = Pairs[J];
        // Same-thread critical sections are already program-ordered.
        if (P.Tid == Q.Tid)
          continue;
        bool PComplete = P.Acq != InvalidEvent && P.Rel != InvalidEvent;
        bool QComplete = Q.Acq != InvalidEvent && Q.Rel != InvalidEvent;
        if (PComplete && QComplete) {
          Conj.push_back(FB.mkOr2(mkAtomS(FB, S(P.Rel), S(Q.Acq)),
                                  mkAtomS(FB, S(Q.Rel), S(P.Acq))));
          continue;
        }
        // A section missing its release holds the lock to the window end:
        // every other section must come first. A section missing its
        // acquire held the lock from the window start: it must come first.
        if (P.Rel == InvalidEvent && Q.Rel == InvalidEvent)
          continue; // cannot both hold to the end; unreachable on recorded
                    // traces, and no finite constraint expresses it
        if (P.Rel == InvalidEvent) {
          if (Q.Rel != InvalidEvent && P.Acq != InvalidEvent)
            Conj.push_back(mkAtomS(FB, S(Q.Rel), S(P.Acq)));
          continue;
        }
        if (Q.Rel == InvalidEvent) {
          if (Q.Acq != InvalidEvent)
            Conj.push_back(mkAtomS(FB, S(P.Rel), S(Q.Acq)));
          continue;
        }
        // P or Q started before the window (release without acquire):
        // that section must be first.
        if (P.Acq == InvalidEvent) {
          Conj.push_back(mkAtomS(FB, S(P.Rel), S(Q.Acq)));
          continue;
        }
        if (Q.Acq == InvalidEvent)
          Conj.push_back(mkAtomS(FB, S(Q.Rel), S(P.Acq)));
      }
    }
  }
  return FB.mkAnd(std::move(Conj));
}

std::vector<EventId> RaceEncoder::guardingBranches(EventId E) const {
  std::vector<EventId> Guards;
  for (ThreadId Tid = 0; Tid < T.numThreads(); ++Tid) {
    const std::vector<EventId> &Branches = ThreadBranches[Tid];
    // ordered(br, E) is monotone along a thread's branches: if a later
    // branch must happen before E, so must every earlier one. Binary
    // search for the last branch with br ≼ E.
    int64_t Lo = 0, Hi = static_cast<int64_t>(Branches.size()) - 1;
    int64_t Best = -1;
    while (Lo <= Hi) {
      int64_t Mid = (Lo + Hi) / 2;
      if (Branches[Mid] != E && Mhb.ordered(Branches[Mid], E)) {
        Best = Mid;
        Lo = Mid + 1;
      } else {
        Hi = Mid - 1;
      }
    }
    if (Best >= 0)
      Guards.push_back(Branches[Best]);
  }
  std::sort(Guards.begin(), Guards.end());
  return Guards;
}

NodeRef RaceEncoder::cfVar(CfState &St, EventId E) const {
  auto [It, Inserted] = St.VarOf.try_emplace(E, E);
  if (Inserted)
    St.Worklist.push_back(E);
  return St.FB.mkBoolVar(It->second);
}

NodeRef RaceEncoder::branchGuards(CfState &St, EventId E) const {
  std::vector<NodeRef> Conj;
  for (EventId Branch : guardingBranches(E))
    Conj.push_back(cfVar(St, Branch));
  if (Telemetry::enabled()) {
    // References into the registry stay valid across reset(), so the
    // lookup cost is paid once per process, not per constraint.
    static Counter &BranchConstraints =
        MetricsRegistry::global().counter("encoder.branch_constraints");
    BranchConstraints.add(Conj.size());
  }
  return St.FB.mkAnd(std::move(Conj));
}

std::vector<EventId> RaceEncoder::interferingWrites(VarId Var,
                                                    EventId R) const {
  std::vector<EventId> Writes;
  for (EventId W : VarWrites[Var]) {
    // A write that must happen after the read can never interfere
    // (its order variable always exceeds the read's).
    if (W == R || Mhb.ordered(R, W))
      continue;
    Writes.push_back(W);
  }
  return Writes;
}

NodeRef RaceEncoder::readValueFormula(CfState &St, EventId R,
                                      bool Guarded) const {
  FormulaBuilder &FB = St.FB;
  const Subst &S = St.S;
  const Event &Read = T[R];
  VarId Var = Read.Target;
  Value Wanted = Read.Data;

  std::vector<EventId> Writes = interferingWrites(Var, R);

  std::vector<NodeRef> Disjuncts;
  for (EventId W : Writes) {
    if (T[W].Data != Wanted)
      continue;
    // Paper pruning: skip candidate w1 when some other write w2 satisfies
    // w1 ≼ w2 ≼ r — the read can never observe w1.
    bool Shadowed = false;
    for (EventId W2 : Writes) {
      if (W2 != W && Mhb.ordered(W, W2) && Mhb.ordered(W2, R)) {
        Shadowed = true;
        break;
      }
    }
    if (Shadowed)
      continue;

    if (S(W) == S(R)) {
      // The candidate is the race write merged with this read (the COP
      // itself): the read sits immediately after the write, so it reads
      // from it with nothing in between.
      Disjuncts.push_back(Guarded ? cfVar(St, W) : FB.mkTrue());
      continue;
    }

    std::vector<NodeRef> Conj;
    if (Guarded)
      Conj.push_back(cfVar(St, W));
    Conj.push_back(mkAtomS(FB, S(W), S(R)));
    for (EventId W2 : Writes) {
      if (W2 == W)
        continue;
      // w2 ≼ w never interferes: it is always before w.
      if (Mhb.ordered(W2, W))
        continue;
      Conj.push_back(FB.mkOr2(mkAtomS(FB, S(W2), S(W)),
                              mkAtomS(FB, S(R), S(W2))));
    }
    Disjuncts.push_back(FB.mkAnd(std::move(Conj)));
  }

  // Initial-value disjunct: the read observes the value the variable had
  // at window entry, i.e. every in-window write is moved after it.
  if (Wanted == InitialValues[Var]) {
    bool SomeWriteMustPrecede = false;
    for (EventId W : Writes) {
      if (Mhb.ordered(W, R)) {
        SomeWriteMustPrecede = true;
        break;
      }
    }
    if (!SomeWriteMustPrecede) {
      std::vector<NodeRef> Conj;
      for (EventId W : Writes)
        Conj.push_back(mkAtomS(FB, S(R), S(W)));
      Disjuncts.push_back(FB.mkAnd(std::move(Conj)));
    }
  }

  if (Telemetry::enabled()) {
    static Counter &ReadConsistency = MetricsRegistry::global().counter(
        "encoder.read_consistency_constraints");
    ReadConsistency.inc();
  }
  return FB.mkOr(std::move(Disjuncts));
}

void RaceEncoder::emitCfDefs(CfState &St) const {
  while (!St.Worklist.empty()) {
    EventId E = St.Worklist.back();
    St.Worklist.pop_back();
    const Event &Ev = T[E];
    NodeRef Def;
    if (Ev.Kind == EventKind::Branch || Ev.isWrite()) {
      // Local branch/write determinism: feasible iff the whole read
      // history of the thread stays concrete (Section 3.2).
      std::vector<NodeRef> Conj;
      const std::vector<EventId> &Reads = ThreadReads[Ev.Tid];
      for (EventId R : Reads) {
        if (R >= E)
          break;
        Conj.push_back(cfVar(St, R));
      }
      Def = St.FB.mkAnd(std::move(Conj));
    } else if (Ev.isRead()) {
      Def = readValueFormula(St, E, /*Guarded=*/true);
    } else {
      RVP_UNREACHABLE("cf variable for a non-branch/read/write event");
    }
    St.Defs.push_back(St.FB.mkGuardedDef(St.VarOf.at(E), Def));
    if (Telemetry::enabled()) {
      static Counter &CfDefs =
          MetricsRegistry::global().counter("encoder.cf_defs");
      CfDefs.inc();
    }
  }
}

NodeRef RaceEncoder::adjacency(FormulaBuilder &FB, Subst S, EventId A,
                               EventId B) const {
  // Naive adjacency (ablation mode): A immediately precedes B, i.e.
  // A < B and no window event lies between them.
  std::vector<NodeRef> Conj = {FB.mkAtom(A, B)};
  for (EventId E = Window.Begin; E < Window.End; ++E) {
    if (E == A || E == B)
      continue;
    Conj.push_back(FB.mkOr2(FB.mkAtom(E, A), FB.mkAtom(B, E)));
  }
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeMaximalRace(FormulaBuilder &FB, EventId A,
                                       EventId B) const {
  Subst S;
  if (Options.SubstituteRaceVars)
    S = Subst{A, B};
  CfState St{FB, S, {}, {}, {}};

  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB, S.A, S.B));
  Conj.push_back(encodeLock(FB, S.A, S.B));
  if (!Options.SubstituteRaceVars)
    Conj.push_back(adjacency(FB, S, A, B));
  Conj.push_back(branchGuards(St, A));
  Conj.push_back(branchGuards(St, B));
  emitCfDefs(St);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeBetween(FormulaBuilder &FB, EventId A1,
                                   EventId B, EventId A2) const {
  CfState St{FB, Subst{}, {}, {}, {}};
  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB));
  Conj.push_back(encodeLock(FB));
  Conj.push_back(FB.mkAtom(A1, B));
  Conj.push_back(FB.mkAtom(B, A2));
  Conj.push_back(branchGuards(St, A1));
  Conj.push_back(branchGuards(St, B));
  Conj.push_back(branchGuards(St, A2));
  emitCfDefs(St);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeDeadlock(FormulaBuilder &FB, EventId ReqA,
                                    EventId ReqB, const LockPair &OutA,
                                    const LockPair &OutB) const {
  CfState St{FB, Subst{}, {}, {}, {}};
  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB));
  Conj.push_back(encodeLock(FB, InvalidEvent, InvalidEvent,
                            {ReqA, ReqB}));
  // Hold-and-wait: each request falls inside the other thread's held
  // section.
  Conj.push_back(FB.mkAtom(OutB.AcquireId, ReqA));
  Conj.push_back(FB.mkAtom(ReqA, OutB.ReleaseId));
  Conj.push_back(FB.mkAtom(OutA.AcquireId, ReqB));
  Conj.push_back(FB.mkAtom(ReqB, OutA.ReleaseId));
  Conj.push_back(branchGuards(St, ReqA));
  Conj.push_back(branchGuards(St, ReqB));
  emitCfDefs(St);
  for (NodeRef Def : St.Defs)
    Conj.push_back(Def);
  return FB.mkAnd(std::move(Conj));
}

NodeRef RaceEncoder::encodeSaidRace(FormulaBuilder &FB, EventId A,
                                    EventId B) const {
  Subst S;
  if (Options.SubstituteRaceVars)
    S = Subst{A, B};
  CfState St{FB, S, {}, {}, {}};

  std::vector<NodeRef> Conj;
  Conj.push_back(encodeMhb(FB, S.A, S.B));
  Conj.push_back(encodeLock(FB, S.A, S.B));
  if (!Options.SubstituteRaceVars)
    Conj.push_back(adjacency(FB, S, A, B));
  // Whole-window read-write consistency: every read keeps its value.
  for (EventId R : AllReads)
    Conj.push_back(readValueFormula(St, R, /*Guarded=*/false));
  assert(St.Worklist.empty() && "unguarded encoding queued cf definitions");
  return FB.mkAnd(std::move(Conj));
}
