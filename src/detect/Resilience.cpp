//===- detect/Resilience.cpp - Budget escalation & degradation ------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Resilience.h"

#include "support/Profile.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

using namespace rvp;

bool rvp::parseBudgetList(const std::string &Spec, std::vector<double> &Out,
                          std::string &Error) {
  Out.clear();
  std::string_view Trimmed = trim(Spec);
  if (Trimmed.empty())
    return true;
  for (std::string_view Raw : split(Trimmed, ',')) {
    std::string_view Entry = trim(Raw);
    double Scale = 1.0;
    if (Entry.size() > 2 && Entry.substr(Entry.size() - 2) == "ms") {
      Scale = 1e-3;
      Entry.remove_suffix(2);
    } else if (Entry.size() > 2 && Entry.substr(Entry.size() - 2) == "us") {
      Scale = 1e-6;
      Entry.remove_suffix(2);
    } else if (Entry.size() > 1 && Entry.back() == 's') {
      Entry.remove_suffix(1);
    }
    std::string Num(Entry);
    char *End = nullptr;
    double Value = Num.empty() ? 0.0 : std::strtod(Num.c_str(), &End);
    if (Num.empty() || End != Num.c_str() + Num.size() ||
        !std::isfinite(Value) || Value <= 0) {
      Error = formatString(
          "malformed retry budget '%s' (want a positive duration like "
          "50ms, 250ms, or 1s)",
          std::string(trim(Raw)).c_str());
      Out.clear();
      return false;
    }
    Out.push_back(Value * Scale);
  }
  return true;
}

SolveHost::SolveHost(std::string SolverName, bool Incremental,
                     double BaseBudgetSeconds,
                     std::vector<double> RetryBudgets, uint64_t JitterSeed)
    : SolverName(std::move(SolverName)), Incremental(Incremental),
      BaseBudgetSeconds(BaseBudgetSeconds),
      RetryBudgets(std::move(RetryBudgets)),
      RngState(JitterSeed ? JitterSeed : 0x9e3779b97f4a7c15ULL) {}

SolveHost::~SolveHost() = default;

const char *SolveHost::backendName() const {
  if (Incremental && !SessionDead && Session)
    return Session->name();
  if (Solver)
    return Solver->name();
  return SolverName.empty() ? "idl" : SolverName.c_str();
}

void SolveHost::ensureSession() {
  if (Session)
    return;
  Session = createSessionByName(SolverName);
  if (!Session) {
    if (!SolverName.empty() && SolverName != "idl") {
      ++Stats.BackendFallbacks;
      if (ProfileCollector *P = ProfileCollector::active())
        P->instant("backend-fallback", "resilience");
    }
    Session = createIdlSession();
  }
}

void SolveHost::ensureSolver() {
  if (Solver)
    return;
  Solver = createSolverByName(SolverName);
  if (!Solver) {
    if (!SolverName.empty() && SolverName != "idl") {
      ++Stats.BackendFallbacks;
      if (ProfileCollector *P = ProfileCollector::active())
        P->instant("backend-fallback", "resilience");
    }
    Solver = createIdlSolver();
  }
}

void SolveHost::quarantineSession() {
  ++Stats.DegradedSessions;
  if (ProfileCollector *P = ProfileCollector::active())
    P->instant("session-quarantine", "resilience");
  Session.reset();
  FailedStreak = 0;
  // One rebuild is worth trying: corruption may have been transient and
  // the window's learned clauses rebuild quickly. A second quarantine in
  // the same window means the session path itself is unhealthy here, so
  // every later query goes to a fresh one-shot solver instead.
  if (RebuiltOnce)
    SessionDead = true;
  else
    RebuiltOnce = true;
}

void SolveHost::backoff() {
  // xorshift64* — deterministic per host, sub-millisecond so escalation
  // never dominates the budget it protects.
  RngState ^= RngState >> 12;
  RngState ^= RngState << 25;
  RngState ^= RngState >> 27;
  uint64_t Us = 50 + (RngState * 0x2545f4914f6cdd1dULL >> 32) % 400;
  std::this_thread::sleep_for(std::chrono::microseconds(Us));
}

SatResult SolveHost::attemptOnce(const FormulaBuilder &FB, NodeRef Root,
                                 double BudgetSeconds, OrderModel *ModelOut,
                                 bool &FromSolve) {
  if (Incremental && !SessionDead) {
    ensureSession();
    // Session models depend on query history; witness models are always
    // re-derived one-shot by the caller, so no model is requested here.
    SatResult Result =
        Session->query(FB, Root, Deadline::after(BudgetSeconds), nullptr);
    FromSolve = false;
    if (Session->poisoned()) {
      quarantineSession();
      return SatResult::Unknown;
    }
    if (Result == SatResult::Unknown) {
      if (++FailedStreak >= FailedStreakLimit)
        quarantineSession();
    } else {
      FailedStreak = 0;
    }
    return Result;
  }

  ensureSolver();
  // In legacy (non-incremental) mode the caller's builder holds exactly
  // this COP's formula, so the solve's model IS the canonical witness
  // model. In degraded session mode the builder is the shared window
  // builder and the model would depend on earlier COPs' numbering — the
  // caller re-derives instead, exactly like the healthy session path.
  OrderModel *Out = Incremental ? nullptr : ModelOut;
  SatResult Result =
      Solver->solve(FB, Root, Deadline::after(BudgetSeconds), Out);
  FromSolve = !Incremental;
  return Result;
}

SolveHost::Outcome SolveHost::decide(const FormulaBuilder &FB, NodeRef Root,
                                     OrderModel *ModelOut) {
  Outcome Out;
  size_t Tiers = RetryBudgets.empty() ? 1 : RetryBudgets.size();
  uint32_t Attempt = 0;
  for (size_t Tier = 0; Tier < Tiers; ++Tier) {
    double Budget =
        RetryBudgets.empty() ? BaseBudgetSeconds : RetryBudgets[Tier];
    bool Repeat = true;
    while (Repeat) {
      Repeat = false;
      if (Attempt > 0) {
        ++Stats.Retries;
        if (ProfileCollector *P = ProfileCollector::active())
          P->instant("solver-retry", "resilience");
        backoff();
      }
      bool FromSolve = false;
      uint64_t QuarantinesBefore = Stats.DegradedSessions;
      Out.Sat = attemptOnce(FB, Root, Budget, ModelOut, FromSolve);
      Out.Attempts = ++Attempt;
      Out.ModelFromSolve = FromSolve && Out.Sat == SatResult::Sat;
      if (Out.Sat != SatResult::Unknown)
        return Out;
      // A query lost to session sickness (quarantine fired during the
      // attempt) was never really asked — repeat it at the same tier
      // against the rebuilt session or the one-shot fallback. Bounded:
      // a host quarantines at most twice (rebuild once, then dead).
      if (Stats.DegradedSessions != QuarantinesBefore)
        Repeat = true;
    }
  }
  return Out;
}
