//===- detect/Wcp.cpp - Streaming WCP vector-clock tier ---------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Wcp.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

using namespace rvp;

namespace {

/// Rule (a) state: release sends of completed sections over (lock, var),
/// split by access kind so reads only order against writes.
uint64_t lockVarKey(LockId L, VarId V) {
  return static_cast<uint64_t>(L) << 32 | V;
}

/// One open critical section of a thread. AcqTime is 0 for sections whose
/// acquire precedes the window (the pre-pass below); their rule-(b)
/// trigger is then vacuously true, which over-orders — the safe direction:
/// an over-ordered pair falls back to the solver, it is never called racy.
struct OpenSection {
  LockId Lock = 0;
  uint64_t AcqTime = 0;
  std::vector<VarId> Reads, Writes;
};

/// Rule (b) state per lock: completed-section records in release order,
/// plus each consumer thread's import cursor and not-yet-triggered queue.
struct SectionRecord {
  ThreadId Tid = 0;
  uint64_t AcqTime = 0;
  VectorClock RelSend;
};

struct LockConsumer {
  size_t NextImport = 0;        ///< records already moved into Pending
  std::vector<size_t> Pending;  ///< record indices awaiting their trigger
};

struct LockState {
  std::vector<SectionRecord> Records;
  std::unordered_map<ThreadId, LockConsumer> Consumers;
};

} // namespace

WcpIndex::WcpIndex(const Trace &T, Span S) : T(T), Window(S) { build(); }

void WcpIndex::build() {
  const uint32_t NumThreads = T.numThreads();
  Snapshots.assign(Window.size(), PerEvent{VectorClock(NumThreads),
                                           VectorClock(NumThreads)});

  std::vector<VectorClock> P(NumThreads, VectorClock(NumThreads));
  std::vector<VectorClock> M(NumThreads, VectorClock(NumThreads));

  // HB-edge carries for P (rule (c): x ≺wcp y ≤hb z ⇒ x ≺wcp z) and the
  // MHB mirror for M — the same maps, keyed the same way, as Closure.cpp
  // so the M verdicts match the quick check's EventClosure exactly. M
  // deliberately has no lock or volatile entries (ClosureConfig::mhb()).
  std::unordered_map<ThreadId, VectorClock> PendingBeginP, PendingBeginM;
  std::unordered_map<ThreadId, VectorClock> EndP, EndM;
  std::unordered_map<LockId, VectorClock> LastReleaseP;
  std::unordered_map<VarId, VectorClock> LastVolatileWriteP;
  std::unordered_map<uint32_t, VectorClock> WaitRelP, WaitRelM;
  std::unordered_map<uint32_t, VectorClock> NotifyP, NotifyM;

  std::unordered_map<uint64_t, VectorClock> ReadSends, WriteSends;
  std::unordered_map<LockId, LockState> Locks;
  std::vector<std::vector<OpenSection>> Open(NumThreads);

  // Pre-pass: a release whose acquire lies before the window means the
  // thread entered the window already holding the lock; open a section
  // for it from the window start so rule (a) still sees its accesses.
  {
    std::vector<std::vector<LockId>> Depth(NumThreads);
    for (EventId Id = Window.Begin; Id < Window.End; ++Id) {
      const Event &E = T[Id];
      if (E.isAcquire()) {
        Depth[E.Tid].push_back(E.Target);
      } else if (E.isRelease()) {
        std::vector<LockId> &D = Depth[E.Tid];
        if (!D.empty() && D.back() == E.Target)
          D.pop_back();
        else
          Open[E.Tid].push_back(OpenSection{E.Target, 0, {}, {}});
      }
    }
  }

  auto joinIfPresent = [](VectorClock &Into, const auto &Map, auto Key) {
    auto It = Map.find(Key);
    if (It != Map.end())
      Into.join(It->second);
  };

  // Rule (b) drain: import records completed since this thread's last
  // visit, then join every record whose acquire the consumer's P already
  // covers. Joining a send can raise P enough to trigger another pending
  // record (chained sections), so iterate to a local fixpoint.
  auto drainLock = [&](ThreadId Tid, LockId Lock) {
    auto LockIt = Locks.find(Lock);
    if (LockIt == Locks.end())
      return;
    LockState &LS = LockIt->second;
    LockConsumer &C = LS.Consumers[Tid];
    while (C.NextImport < LS.Records.size())
      C.Pending.push_back(C.NextImport++);
    VectorClock &PT = P[Tid];
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t I = 0; I < C.Pending.size();) {
        const SectionRecord &R = LS.Records[C.Pending[I]];
        if (PT.covers({R.Tid, R.AcqTime})) {
          PT.join(R.RelSend);
          C.Pending[I] = C.Pending.back();
          C.Pending.pop_back();
          Progress = true;
        } else {
          ++I;
        }
      }
    }
  };

  for (EventId Id = Window.Begin; Id < Window.End; ++Id) {
    const Event &E = T[Id];
    VectorClock &PT = P[E.Tid];
    VectorClock &MT = M[E.Tid];

    // Inbound edges join before the event's own stamp.
    switch (E.Kind) {
    case EventKind::Begin:
      joinIfPresent(PT, PendingBeginP, E.Tid);
      joinIfPresent(MT, PendingBeginM, E.Tid);
      break;
    case EventKind::Join:
      joinIfPresent(PT, EndP, static_cast<ThreadId>(E.Target));
      joinIfPresent(MT, EndM, static_cast<ThreadId>(E.Target));
      break;
    case EventKind::Acquire:
      joinIfPresent(PT, LastReleaseP, static_cast<LockId>(E.Target));
      if (E.Aux != 0) {
        joinIfPresent(PT, NotifyP, E.Aux);
        joinIfPresent(MT, NotifyM, E.Aux);
      }
      Open[E.Tid].push_back(
          OpenSection{static_cast<LockId>(E.Target), time(Id), {}, {}});
      break;
    case EventKind::Notify:
      if (E.Aux != 0) {
        joinIfPresent(PT, WaitRelP, E.Aux);
        joinIfPresent(MT, WaitRelM, E.Aux);
      }
      break;
    case EventKind::Read:
    case EventKind::Write:
      if (E.Volatile) {
        joinIfPresent(PT, LastVolatileWriteP, static_cast<VarId>(E.Target));
      } else {
        // Rule (a): under each held lock, join the sends of earlier
        // sections whose accesses conflict with this one, and record the
        // access into every enclosing section for its own send.
        for (OpenSection &S : Open[E.Tid]) {
          uint64_t Key = lockVarKey(S.Lock, E.Target);
          joinIfPresent(PT, WriteSends, Key);
          if (E.isWrite()) {
            joinIfPresent(PT, ReadSends, Key);
            S.Writes.push_back(E.Target);
          } else {
            S.Reads.push_back(E.Target);
          }
        }
      }
      break;
    case EventKind::Release:
      // Rule (b): conclusions (release₁ ≺wcp release₂) land exactly at
      // this release, before its own send is published below.
      drainLock(E.Tid, static_cast<LockId>(E.Target));
      break;
    default:
      break; // Branch, Wait marker, Fork, End: no inbound edges
    }

    // The event itself: own program order is MHB, never proper WCP.
    MT.set(E.Tid, time(Id));
    PerEvent &Snap = Snapshots[Id - Window.Begin];
    Snap.P = PT;
    Snap.M = MT;

    // Outbound edges snapshot the clocks after the event.
    switch (E.Kind) {
    case EventKind::Fork:
      PendingBeginP[static_cast<ThreadId>(E.Target)] = PT;
      PendingBeginM[static_cast<ThreadId>(E.Target)] = MT;
      break;
    case EventKind::End:
      EndP[E.Tid] = PT;
      EndM[E.Tid] = MT;
      break;
    case EventKind::Release: {
      if (E.Aux != 0) {
        WaitRelP[E.Aux] = PT;
        WaitRelM[E.Aux] = MT;
      }
      LastReleaseP[static_cast<LockId>(E.Target)] = PT;
      // Close the innermost open section on this lock and publish its
      // send: P at the release joined with the releaser's own time — the
      // one place WCP hands out its own component (rules (a)/(b)).
      std::vector<OpenSection> &Stack = Open[E.Tid];
      for (size_t I = Stack.size(); I-- > 0;) {
        if (Stack[I].Lock != static_cast<LockId>(E.Target))
          continue;
        OpenSection S = std::move(Stack[I]);
        Stack.erase(Stack.begin() + static_cast<ptrdiff_t>(I));
        VectorClock RelSend = PT;
        RelSend.joinEpoch({E.Tid, time(Id)});
        std::sort(S.Reads.begin(), S.Reads.end());
        S.Reads.erase(std::unique(S.Reads.begin(), S.Reads.end()),
                      S.Reads.end());
        std::sort(S.Writes.begin(), S.Writes.end());
        S.Writes.erase(std::unique(S.Writes.begin(), S.Writes.end()),
                       S.Writes.end());
        for (VarId V : S.Reads)
          ReadSends[lockVarKey(S.Lock, V)].join(RelSend);
        for (VarId V : S.Writes)
          WriteSends[lockVarKey(S.Lock, V)].join(RelSend);
        Locks[S.Lock].Records.push_back(
            SectionRecord{E.Tid, S.AcqTime, std::move(RelSend)});
        break;
      }
      break;
    }
    case EventKind::Notify:
      if (E.Aux != 0) {
        NotifyP[E.Aux] = PT;
        NotifyM[E.Aux] = MT;
      }
      break;
    case EventKind::Write:
      if (E.Volatile)
        LastVolatileWriteP[static_cast<VarId>(E.Target)] = PT;
      break;
    default:
      break;
    }
  }
}
