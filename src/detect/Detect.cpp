//===- detect/Detect.cpp - Predictive race detectors -------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"

#include "detect/Checkpoint.h"
#include "detect/Closure.h"
#include "detect/Lockset.h"
#include "detect/RaceEncoder.h"
#include "detect/Resilience.h"
#include "detect/Wcp.h"
#include "detect/WindowEncoding.h"
#include "detect/WitnessChecker.h"
#include "smt/Solver.h"
#include "support/BuildInfo.h"
#include "support/CommandLine.h"
#include "support/Compiler.h"
#include "support/FaultInjector.h"
#include "support/MemStats.h"
#include "support/Profile.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <unordered_set>

using namespace rvp;

const char *rvp::techniqueName(Technique Tech) {
  switch (Tech) {
  case Technique::Hb:
    return "HB";
  case Technique::Cp:
    return "CP";
  case Technique::Said:
    return "Said";
  case Technique::Maximal:
    return "RV";
  }
  RVP_UNREACHABLE("unknown technique");
}

const char *rvp::tierName(DetectTier Tier) {
  switch (Tier) {
  case DetectTier::Vc:
    return "vc";
  case DetectTier::Smt:
    return "smt";
  case DetectTier::Hybrid:
    return "hybrid";
  }
  RVP_UNREACHABLE("unknown tier");
}

std::string rvp::renderStatsTable(const DetectionStats &Stats,
                                  const char *What) {
  std::string Out = formatString(
      "windows=%llu cops=%llu pruned_static=%llu qc=%llu solves=%llu "
      "timeouts=%llu jobs=%u\n",
      static_cast<unsigned long long>(Stats.Windows),
      static_cast<unsigned long long>(Stats.Cops),
      static_cast<unsigned long long>(Stats.CopsPrunedStatic),
      static_cast<unsigned long long>(Stats.QcPassed),
      static_cast<unsigned long long>(Stats.SolverCalls),
      static_cast<unsigned long long>(Stats.SolverTimeouts),
      static_cast<unsigned>(Stats.Jobs));
  // Degradation line only when something degraded, so healthy runs print
  // the classic summary unchanged (docs/ROBUSTNESS.md).
  if (Stats.SolverRetries || Stats.DegradedSessions || Stats.UnknownCops)
    Out += formatString(
        "resilience: retries=%llu degraded_sessions=%llu unknown=%llu\n",
        static_cast<unsigned long long>(Stats.SolverRetries),
        static_cast<unsigned long long>(Stats.DegradedSessions),
        static_cast<unsigned long long>(Stats.UnknownCops));
  // Tier line only when the WCP tier ran (docs/TIERS.md): --tier=smt runs
  // print the classic summary unchanged.
  if (Stats.WcpRaces || Stats.WcpPruned || Stats.WcpResidue ||
      Stats.WcpShortCircuits || Stats.WcpMismatches)
    Out += formatString(
        "wcp: races=%llu pruned=%llu residue=%llu short_circuits=%llu\n",
        static_cast<unsigned long long>(Stats.WcpRaces),
        static_cast<unsigned long long>(Stats.WcpPruned),
        static_cast<unsigned long long>(Stats.WcpResidue),
        static_cast<unsigned long long>(Stats.WcpShortCircuits));
  if (!Stats.Telemetry.Captured)
    return Out;
  Out += formatString("phases (%s, wall seconds):\n", What);
  Stats.Telemetry.Phases.renderInto(Out);
  if (!Stats.Telemetry.Metrics.empty()) {
    Out += "metrics:\n";
    Out += Stats.Telemetry.Metrics.renderTable();
  }
  Out += Stats.TopCosts.renderTable();
  return Out;
}

std::string rvp::statsToJson(const DetectionStats &Stats, const char *What) {
  JsonObject O;
  // Identity triple first, so trajectory tooling can key records without
  // scanning (docs/OBSERVABILITY.md).
  appendRunMetadata(O);
  O.field("technique", What)
      .field("seconds", Stats.Seconds)
      .field("windows", Stats.Windows)
      .field("cops", Stats.Cops)
      .field("cops_pruned_static", Stats.CopsPrunedStatic)
      .field("qc_passed", Stats.QcPassed)
      .field("solver_calls", Stats.SolverCalls)
      .field("solver_timeouts", Stats.SolverTimeouts)
      .field("solver_retries", Stats.SolverRetries)
      .field("degraded_sessions", Stats.DegradedSessions)
      .field("unknown_cops", Stats.UnknownCops)
      .field("wcp_races", Stats.WcpRaces)
      .field("wcp_pruned_cops", Stats.WcpPruned)
      .field("wcp_residue_cops", Stats.WcpResidue)
      .field("solver_calls_saved", Stats.WcpShortCircuits)
      .field("wcp_mismatches", Stats.WcpMismatches)
      .field("jobs", static_cast<uint64_t>(Stats.Jobs));
  if (Stats.Telemetry.Captured) {
    O.raw("metrics", metricsToJson(Stats.Telemetry.Metrics));
    O.raw("phases", Stats.Telemetry.Phases.toJson());
    Stats.TopCosts.addToJson(O);
  }
  return O.str();
}

bool DetectionResult::hasRaceAt(const std::string &LocA,
                                const std::string &LocB) const {
  for (const RaceReport &R : Races) {
    if ((R.LocFirst == LocA && R.LocSecond == LocB) ||
        (R.LocFirst == LocB && R.LocSecond == LocA))
      return true;
  }
  return false;
}

namespace {

// ------------------------------------------------------------------ CP

/// The causally-precedes relation of Smaragdakis et al. [35], computed per
/// window at critical-section granularity. CP keeps the must-happen-before
/// and volatile edges of HB but only those release->acquire edges that the
/// rules justify:
///
///  (a) the two critical sections contain conflicting accesses, or
///  (b) they contain CP-ordered events — decided through a fixpoint over
///      the section graph, with HB composition on both sides implicit in
///      the vector-clock closure.
class CpOrder {
public:
  CpOrder(const Trace &T, Span S) : T(T), Window(S) {
    collectSections();
    seedConflictEdges();
    // Fixpoint: recompute the closure with the active edges, then try to
    // activate more candidate edges via rule (b).
    for (;;) {
      rebuildClosure();
      if (!activateByRuleB())
        break;
    }
  }

  /// Final CP-order query (A before B in trace order).
  bool ordered(EventId A, EventId B) const {
    return Closure->ordered(A, B);
  }

private:
  struct Section {
    LockId Lock = 0;
    ThreadId Tid = 0;
    EventId Acq = InvalidEvent;   ///< InvalidEvent when before the window
    EventId Rel = InvalidEvent;   ///< InvalidEvent when after the window
    EventId FirstEv = InvalidEvent; ///< first in-window event of the CS
    EventId LastEv = InvalidEvent;  ///< last in-window event of the CS
    /// Accessed variables: bit0 = read, bit1 = write (non-volatile only).
    std::unordered_map<VarId, uint8_t> Access;
  };

  void collectSections() {
    for (LockId Lock = 0; Lock < T.numLocks(); ++Lock) {
      for (const LockPair &P : T.lockPairsOf(Lock)) {
        Section Sec;
        Sec.Lock = Lock;
        Sec.Tid = P.Tid;
        if (P.AcquireId != InvalidEvent && Window.contains(P.AcquireId))
          Sec.Acq = P.AcquireId;
        if (P.ReleaseId != InvalidEvent && Window.contains(P.ReleaseId))
          Sec.Rel = P.ReleaseId;
        if (Sec.Acq == InvalidEvent && Sec.Rel == InvalidEvent)
          continue;
        // Body range in trace positions (clipped to the window).
        EventId Lo = Sec.Acq != InvalidEvent ? Sec.Acq : Window.Begin;
        EventId Hi = Sec.Rel != InvalidEvent ? Sec.Rel : Window.End - 1;
        Sec.FirstEv = Lo;
        Sec.LastEv = Hi;
        for (EventId Id = Lo; Id <= Hi && Id < Window.End; ++Id) {
          const Event &E = T[Id];
          if (E.Tid != Sec.Tid || !E.isAccess() || E.Volatile)
            continue;
          Sec.Access[E.Target] |= E.isWrite() ? 2 : 1;
        }
        Sections.push_back(std::move(Sec));
      }
    }
    // Candidate edges: same lock, different threads, source has a release
    // in window, target has an acquire in window, forward in trace order.
    for (size_t I = 0; I < Sections.size(); ++I) {
      for (size_t J = 0; J < Sections.size(); ++J) {
        if (I == J)
          continue;
        const Section &P = Sections[I];
        const Section &Q = Sections[J];
        if (P.Lock != Q.Lock || P.Tid == Q.Tid)
          continue;
        if (P.Rel == InvalidEvent || Q.Acq == InvalidEvent)
          continue;
        if (P.Rel > Q.Acq)
          continue;
        Candidates.push_back({static_cast<uint32_t>(I),
                              static_cast<uint32_t>(J)});
      }
    }
    Active.assign(Candidates.size(), false);
  }

  static bool bodiesConflict(const Section &P, const Section &Q) {
    const auto &Small = P.Access.size() <= Q.Access.size() ? P : Q;
    const auto &Large = P.Access.size() <= Q.Access.size() ? Q : P;
    for (const auto &[Var, Flags] : Small.Access) {
      auto It = Large.Access.find(Var);
      if (It == Large.Access.end())
        continue;
      if ((Flags & 2) || (It->second & 2))
        return true;
    }
    return false;
  }

  void seedConflictEdges() {
    for (size_t C = 0; C < Candidates.size(); ++C) {
      auto [I, J] = Candidates[C];
      if (bodiesConflict(Sections[I], Sections[J]))
        Active[C] = true;
    }
  }

  void rebuildClosure() {
    std::vector<ExtraEdge> Edges;
    for (size_t C = 0; C < Candidates.size(); ++C) {
      if (!Active[C])
        continue;
      auto [I, J] = Candidates[C];
      Edges.push_back({Sections[I].Rel, Sections[J].Acq});
    }
    Closure.emplace(T, Window, ClosureConfig::cpBase(), Edges);
  }

  bool orderedEq(EventId A, EventId B) const {
    return A == B || Closure->ordered(A, B);
  }

  /// Rule (b): activate candidate (i,j) when some event of CS_i is
  /// CP-before some event of CS_j through an already-active edge (m,n);
  /// taking the earliest event of CS_i and the latest of CS_j gives the
  /// exact existential check.
  bool activateByRuleB() {
    bool Any = false;
    for (size_t C = 0; C < Candidates.size(); ++C) {
      if (Active[C])
        continue;
      auto [I, J] = Candidates[C];
      for (size_t C2 = 0; C2 < Candidates.size(); ++C2) {
        if (!Active[C2])
          continue;
        auto [M, N] = Candidates[C2];
        if (orderedEq(Sections[I].FirstEv, Sections[M].Rel) &&
            orderedEq(Sections[N].Acq, Sections[J].LastEv)) {
          Active[C] = true;
          Any = true;
          break;
        }
      }
    }
    return Any;
  }

  const Trace &T;
  Span Window;
  std::vector<Section> Sections;
  std::vector<std::pair<uint32_t, uint32_t>> Candidates;
  std::vector<bool> Active;
  std::optional<EventClosure> Closure;
};

// -------------------------------------------------------------- driver

class Driver {
public:
  Driver(const Trace &T, Technique Tech, const DetectorOptions &Options)
      : T(T), Tech(Tech), Options(Options) {}

  DetectionResult run() {
    Timer Clock;
    RunningValues.assign(T.numVars(), 0);
    for (VarId Var = 0; Var < T.numVars(); ++Var)
      RunningValues[Var] = T.initialValueOf(Var);

    // The Vc tier replaces the whole encode+solve machinery with the WCP
    // pass: no solver, no pool, no incremental sessions (docs/TIERS.md).
    if ((Tech == Technique::Said || Tech == Technique::Maximal) &&
        Options.Tier != DetectTier::Vc) {
      Solver = createSolverByName(Options.SolverName);
      if (!Solver)
        Solver = createIdlSolver();
      UseIncremental = Options.Incremental;
      Jobs = Options.Jobs == 0 ? ThreadPool::defaultWorkerCount()
                               : Options.Jobs;
      if (Jobs > 1)
        Pool = std::make_unique<ThreadPool>(Jobs);
      Result.Stats.Jobs = Jobs;
    }

    // Resume: with --checkpoint, reload everything accumulated up to the
    // last completed window and skip straight past it. The fingerprint
    // check inside the store guarantees the snapshot came from the same
    // trace and flags, so the continued run is byte-identical to an
    // uninterrupted one (docs/ROBUSTNESS.md).
    CheckpointStore Ckpt(Options.CheckpointDir,
                         Options.CheckpointFingerprint);
    uint64_t SkipWindows = 0;
    if (Ckpt.enabled()) {
      std::string Payload;
      CheckpointLoad Outcome = CheckpointLoad::None;
      int64_t Last = Ckpt.loadLatest(Payload, &Outcome);
      if (Outcome == CheckpointLoad::FingerprintMismatch)
        CheckpointStore::refuseMismatch(Ckpt);
      if (Last >= 0 && restoreState(Payload))
        SkipWindows = static_cast<uint64_t>(Last) + 1;
      ResumedWindows = SkipWindows;
    }
    // In-memory resume (the streaming front end): the caller-held state is
    // restored last, so it is authoritative during streaming; the
    // directory path above only wins after a daemon restart, when the
    // caller has no state yet.
    if (Options.ResumeState && !Options.ResumeState->empty() &&
        restoreState(*Options.ResumeState))
      SkipWindows = Result.Stats.Windows;

    {
      ScopedPhaseTimer DetectPhase("detect");
      uint64_t Index = 0, Processed = 0;
      for (Span Window : splitWindows(T, Options.WindowSize)) {
        if (Index++ < SkipWindows)
          continue;
        if (Options.MaxWindows && Processed == Options.MaxWindows)
          break;
        ++Processed;
        ++Result.Stats.Windows;
        processWindow(Window);
        advanceValues(Window);
        if (Ckpt.enabled()) {
          Ckpt.save(Index - 1, serializeState());
          if (ProfileCollector *P = ProfileCollector::active())
            P->instant("checkpoint-save", "resilience");
          // Deterministic kill point for the resume tests: dies exactly
          // at a window barrier, after the snapshot is durable.
          if (FaultInjector::shouldFail(faults::DetectAbort))
            std::_Exit(ExitInternal);
        }
      }
    }
    Result.Stats.UnknownCops = Result.Unknowns.size();
    Result.Stats.Seconds = Clock.seconds();
    if (Options.SaveState)
      *Options.SaveState = serializeState();
    if (Telemetry::enabled() && Options.FlushTelemetry) {
      flushTelemetryCounters();
      Result.Stats.Telemetry = Telemetry::instance().snapshot();
    }
    return std::move(Result);
  }

private:
  void advanceValues(Span Window) {
    for (EventId Id = Window.Begin; Id < Window.End; ++Id) {
      const Event &E = T[Id];
      if (E.isWrite())
        RunningValues[E.Target] = E.Data;
    }
  }

  void report(EventId A, EventId B, std::vector<EventId> Witness,
              bool WitnessValid) {
    RaceReport R;
    R.Sig = RaceSignature::of(T, A, B);
    R.First = A;
    R.Second = B;
    R.LocFirst = T.locName(T[A].Loc);
    R.LocSecond = T.locName(T[B].Loc);
    R.Variable = T.varName(T[A].Target);
    R.Witness = std::move(Witness);
    R.WitnessValid = WitnessValid;
    RacySignatures.insert(R.Sig.key());
    // A signature provisionally parked in the unknown section (an earlier
    // window's COP ran out of budget) has now been decided: the race
    // report supersedes the maybe-entry.
    if (UnknownSignatures.erase(R.Sig.key()))
      Result.Unknowns.erase(
          std::remove_if(Result.Unknowns.begin(), Result.Unknowns.end(),
                         [&](const UnknownReport &U) {
                           return RaceSignature::of(T, U.First, U.Second)
                                      .key() == R.Sig.key();
                         }),
          Result.Unknowns.end());
    Result.Races.push_back(std::move(R));
  }

  /// Parks an undecided COP in the unknown section (one entry per
  /// signature, first COP seen) — never in the race list, so degradation
  /// keeps the race reports sound.
  void recordUnknown(const Cop &C, uint32_t Attempts) {
    uint64_t Key = RaceSignature::of(T, C.First, C.Second).key();
    if (!UnknownSignatures.insert(Key).second)
      return;
    UnknownReport U;
    U.First = C.First;
    U.Second = C.Second;
    U.LocFirst = T.locName(T[C.First].Loc);
    U.LocSecond = T.locName(T[C.Second].Loc);
    U.Variable = T.varName(T[C.First].Target);
    U.Attempts = Attempts;
    Result.Unknowns.push_back(std::move(U));
  }

  void processWindow(Span Window) {
    ScopedPhaseTimer WindowPhase("window");
    Timer WindowClock;
    uint64_t SolvesBefore = Result.Stats.SolverCalls;
    size_t CopsInWindow = processWindowImpl(Window);
    double Seconds = WindowClock.seconds();
    emitWindowEvent(Window, CopsInWindow, Seconds);
    if (Telemetry::enabled()) {
      WindowCost W;
      W.Index = Result.Stats.Windows - 1;
      W.Cops = CopsInWindow;
      W.Solves = Result.Stats.SolverCalls - SolvesBefore;
      W.Seconds = Seconds;
      Result.Stats.TopCosts.recordWindow(W);
    }
    // Live counter tracks, sampled once per window barrier — enough
    // resolution to see trends in Perfetto without bloating the trace.
    if (ProfileCollector *P = ProfileCollector::active()) {
      P->counter("cops", static_cast<double>(Result.Stats.Cops));
      P->counter("races", static_cast<double>(Result.Races.size()));
      P->counter("solver-calls",
                 static_cast<double>(Result.Stats.SolverCalls));
      P->counter("mem.formula_bytes",
                 static_cast<double>(MemStats::current(MemPool::Formula)));
      P->counter("mem.rss_bytes",
                 static_cast<double>(MemStats::currentRssBytes()));
    }
  }

  size_t processWindowImpl(Span Window) {
    std::vector<Cop> Cops;
    {
      ScopedPhaseTimer CopPhase("cop-enum");
      Cops = collectCops(T, Window);
    }
    Result.Stats.Cops += Cops.size();
    if (Cops.empty())
      return 0;

    // Sound static pruning: decided once per COP, before every dynamic
    // filter, from program structure alone — so it is identical across
    // schedules, jobs counts, and windows.
    std::vector<bool> Pruned(Cops.size(), false);
    if (Options.StaticPruner) {
      ScopedPhaseTimer PrunePhase("static-prune");
      for (size_t I = 0; I < Cops.size(); ++I) {
        Pruned[I] = Options.StaticPruner->prunable(T, Cops[I].First,
                                                   Cops[I].Second);
        if (Pruned[I])
          ++StaticPruned;
      }
      Result.Stats.CopsPrunedStatic = StaticPruned;
    }

    std::optional<EventClosure> MhbStorage;
    {
      ScopedPhaseTimer ClosurePhase("closure");
      MhbStorage.emplace(T, Window, ClosureConfig::mhb());
    }
    EventClosure &Mhb = *MhbStorage;
    QuickCheck Qc(T, Window, Mhb);
    {
      ScopedPhaseTimer QcPhase("quick-check");
      for (size_t I = 0; I < Cops.size(); ++I) {
        const Cop &C = Cops[I];
        if (Pruned[I])
          continue; // skipped pairs do not enter the QC accounting
        if (Qc.pass(C)) {
          ++QcHits;
          QcSignatures.insert(
              RaceSignature::of(T, C.First, C.Second).key());
        } else {
          ++QcMisses;
        }
      }
    }
    Result.Stats.QcPassed = QcSignatures.size();

    // The WCP tier (docs/TIERS.md): one linear vector-clock pass per
    // window. Hybrid uses it to prune MHB-ordered COPs and short-circuit
    // WCP-provable races past the solver; Vc replaces the solver with it
    // entirely. --check-tiers keeps the full SMT semantics (no fast
    // paths) and compares WCP's verdict against every solver decision.
    std::optional<WcpIndex> WcpStorage;
    if (wcpActive()) {
      ScopedPhaseTimer WcpPhase("wcp");
      Timer WcpClock;
      WcpStorage.emplace(T, Window);
      if (Telemetry::enabled())
        MetricsRegistry::global()
            .histogram("wcp.latency_seconds")
            .record(WcpClock.seconds());
    }

    switch (Tech) {
    case Technique::Hb: {
      EventClosure Hb(T, Window, ClosureConfig::hb());
      for (size_t I = 0; I < Cops.size(); ++I) {
        const Cop &C = Cops[I];
        if (Pruned[I]) {
          emitCopEvent(Window, C, "static-pruned", "static-prune");
          continue;
        }
        if (RacySignatures.count(RaceSignature::of(T, C.First,
                                                   C.Second).key())) {
          ++SigPruned;
          continue;
        }
        bool Racy = !Hb.ordered(C.First, C.Second) &&
                    !Hb.ordered(C.Second, C.First);
        if (Racy)
          report(C.First, C.Second, {}, false);
        const char *Outcome = Racy ? "race" : "ordered";
        emitCopEvent(Window, C, Outcome, stageForOutcome(Outcome));
      }
      return Cops.size();
    }
    case Technique::Cp: {
      CpOrder Cp(T, Window);
      for (size_t I = 0; I < Cops.size(); ++I) {
        const Cop &C = Cops[I];
        if (Pruned[I]) {
          emitCopEvent(Window, C, "static-pruned", "static-prune");
          continue;
        }
        if (RacySignatures.count(RaceSignature::of(T, C.First,
                                                   C.Second).key())) {
          ++SigPruned;
          continue;
        }
        bool Racy = !Cp.ordered(C.First, C.Second) &&
                    !Cp.ordered(C.Second, C.First);
        if (Racy)
          report(C.First, C.Second, {}, false);
        const char *Outcome = Racy ? "race" : "ordered";
        emitCopEvent(Window, C, Outcome, stageForOutcome(Outcome));
      }
      return Cops.size();
    }
    case Technique::Said:
    case Technique::Maximal:
      break;
    }

    // --tier=vc: the WCP detector alone decides every COP, like the
    // Hb/Cp branches above — no encoder, no solver, no witnesses. Sound
    // in the same weak sense as those detectors (every reported pair is
    // WCP-unordered; the first one is guaranteed predictable).
    if (WcpStorage && Options.Tier == DetectTier::Vc) {
      WcpIndex &Wcp = *WcpStorage;
      for (size_t I = 0; I < Cops.size(); ++I) {
        const Cop &C = Cops[I];
        if (Pruned[I]) {
          emitCopEvent(Window, C, "static-pruned", "static-prune");
          continue;
        }
        if (RacySignatures.count(
                RaceSignature::of(T, C.First, C.Second).key())) {
          ++SigPruned;
          continue;
        }
        // The quick check's lockset/weak-HB components are implied by the
        // WCP rules, but gating on them keeps the Vc loop shaped like the
        // other tiers and guards the windowed approximations.
        if (Options.UseQuickCheck && !Qc.pass(C)) {
          emitCopEvent(Window, C, "qc-fail", Qc.failStage(C));
          continue;
        }
        bool Racy = Wcp.racy(C.First, C.Second);
        if (Racy) {
          ++Result.Stats.WcpRaces;
          report(C.First, C.Second, {}, false);
        }
        const char *Outcome = Racy ? "race" : "ordered";
        emitCopEvent(Window, C, Outcome, Racy ? "wcp"
                                              : stageForOutcome(Outcome));
      }
      return Cops.size();
    }

    // SMT-based techniques. The COP-invariant encoding state is built
    // once per window and shared read-only by every encode+solve — the
    // sequential loop and the parallel workers alike.
    EncoderOptions EncOpts;
    EncOpts.SubstituteRaceVars = Options.SubstituteRaceVars;
    EncOpts.Slice = Options.Slice;
    // Statically constant branches lose their cf guards on the decision
    // path only; rederiveModel below keeps the full guards so witness
    // orders stay byte-identical to unfolded runs.
    EncOpts.Fold = Options.CfFold;
    RaceEncoder Encoder(
        std::make_shared<const WindowEncoding>(T, Window, Mhb,
                                               RunningValues),
        EncOpts);

    // Hybrid fast paths, disabled under --check-tiers so the cross
    // validation compares WCP against the full SMT semantics.
    const WcpIndex *Wcp = WcpStorage ? &*WcpStorage : nullptr;
    const bool WcpFastPath = Wcp && !Options.CheckTiers;

    if (Pool) {
      processCopsParallel(Window, Cops, Pruned, Qc, Mhb, Encoder, Wcp);
      return Cops.size();
    }

    // Incremental path: one persistent solver session and one shared
    // hash-consing builder per window. Every surviving COP is decided
    // under its own selector assumption; the shared encoding and all
    // learned clauses carry over between queries, while each query still
    // gets its own fresh per-COP Deadline (Section 4's budget). The
    // SolveHost owns the session (or the one-shot solver in legacy mode)
    // plus the whole degradation policy: budget escalation, session
    // quarantine/rebuild, backend fallback (docs/ROBUSTNESS.md).
    FormulaBuilder WindowFB;
    SolveHost Host(Options.SolverName, UseIncremental,
                   Options.PerCopBudgetSeconds, Options.RetryBudgets,
                   Options.RetryJitterSeed + Result.Stats.Windows);

    for (size_t I = 0; I < Cops.size(); ++I) {
      const Cop &C = Cops[I];
      if (Pruned[I]) {
        emitCopEvent(Window, C, "static-pruned", "static-prune");
        continue;
      }
      // WCP/MHB prune: exact mirror of the closure the quick check uses,
      // so every pair pruned here would have been a qc-fail in the Smt
      // tier — reports are identical, the weak-HB recheck is skipped.
      if (WcpFastPath && (Wcp->mhbOrdered(C.First, C.Second) ||
                          Wcp->mhbOrdered(C.Second, C.First))) {
        ++Result.Stats.WcpPruned;
        emitCopEvent(Window, C, "wcp-ordered", "wcp");
        continue;
      }
      if (RacySignatures.count(
              RaceSignature::of(T, C.First, C.Second).key())) {
        ++SigPruned; // signature pruning (Section 4)
        emitCopEvent(Window, C, "pruned", "signature");
        continue;
      }
      if (Options.UseQuickCheck && !Qc.pass(C)) {
        emitCopEvent(Window, C, "qc-fail", Qc.failStage(C));
        continue;
      }
      // WCP short-circuit (Maximal only): a pair WCP proves racy skips
      // the sliced encode and the session solve. With witnesses on the
      // race is verified through the same unsliced one-shot re-derivation
      // the Smt tier uses for witness models, so reports stay
      // byte-identical; with witnesses off the WCP verdict is trusted
      // (the Vc-tier semantics; --check-tiers is the standing oracle).
      if (WcpFastPath && Tech == Technique::Maximal &&
          Wcp->racy(C.First, C.Second)) {
        ++Result.Stats.WcpShortCircuits;
        shortCircuitCop(Window, C, Encoder, Mhb);
        continue;
      }
      if (WcpFastPath)
        ++Result.Stats.WcpResidue;

      FormulaBuilder CopFB;
      FormulaBuilder &FB = UseIncremental ? WindowFB : CopFB;
      size_t NodesBefore = FB.numNodes();
      NodeRef Root;
      double EncodeSeconds = 0;
      EncodeStats EncStats;
      {
        ScopedPhaseTimer EncodePhase("encode");
        Timer EncodeClock;
        Root = Tech == Technique::Maximal
                   ? Encoder.encodeMaximalRace(FB, C.First, C.Second,
                                               &EncStats)
                   : Encoder.encodeSaidRace(FB, C.First, C.Second,
                                            &EncStats);
        EncodeSeconds = EncodeClock.seconds();
      }
      if (Telemetry::enabled())
        recordFormulaMetrics(FB, NodesBefore, Root);
      OrderModel Model;
      ++Result.Stats.SolverCalls;
      SolveHost::Outcome Decided;
      double SolveSeconds = 0;
      {
        ScopedPhaseTimer SolvePhase("solve");
        Timer SolveClock;
        Decided = Host.decide(FB, Root,
                              Options.CollectWitnesses ? &Model : nullptr);
        SolveSeconds = SolveClock.seconds();
      }
      SatResult Sat = Decided.Sat;
      // --check-tiers: WCP claimed a race the full pipeline refutes —
      // the windowed over-report weak soundness permits beyond the first
      // race. Counted here, surfaced as an error by the front end.
      if (Options.CheckTiers && Wcp && Sat == SatResult::Unsat &&
          Wcp->racy(C.First, C.Second))
        ++Result.Stats.WcpMismatches;
      if (Telemetry::enabled())
        MetricsRegistry::global()
            .histogram("solver.latency_seconds")
            .record(SolveSeconds);
      const char *Outcome = Sat == SatResult::Sat     ? "sat"
                            : Sat == SatResult::Unsat ? "unsat"
                                                      : "timeout";
      CopEventExtra Extra;
      Extra.Stage = stageForOutcome(Outcome);
      Extra.EncodeSeconds = EncodeSeconds;
      Extra.MemDeltaBytes =
          (FB.numNodes() - NodesBefore) * sizeof(FormulaNode);
      Extra.Attempts = Decided.Attempts;
      Extra.ConeEvents = EncStats.ConeEvents;
      emitSolveEvent(Window, C, Outcome, SolveSeconds);
      if (Sat != SatResult::Sat) {
        if (Sat == SatResult::Unknown) {
          ++Result.Stats.SolverTimeouts;
          recordUnknown(C, Decided.Attempts);
        }
        emitCopEventRange(C, Outcome, FB, NodesBefore, Root, SolveSeconds,
                          Extra);
        recordCopCost(C, Outcome, SolveSeconds, Extra);
        continue;
      }

      std::vector<EventId> Witness;
      bool WitnessValid = false;
      if (Options.CollectWitnesses && Tech == Technique::Maximal) {
        ScopedPhaseTimer WitnessPhase("witness");
        Timer WitnessClock;
        // A sliced model only orders the cone; witness orders must cover
        // the window, so they are always re-derived unsliced.
        if (!Decided.ModelFromSolve || sliceActive())
          rederiveModel(Encoder, C, Model);
        Witness = buildWitness(Window, Model, C);
        WitnessValid =
            checkWitness(T, Window, Witness, C.First, C.Second, Encoder,
                         Mhb, RunningValues)
                .Ok;
        Extra.WitnessSeconds = WitnessClock.seconds();
      }
      emitCopEventRange(C, Outcome, FB, NodesBefore, Root, SolveSeconds,
                        Extra);
      recordCopCost(C, Outcome, SolveSeconds, Extra);
      report(C.First, C.Second, std::move(Witness), WitnessValid);
    }
    absorbHostStats(Host.stats());
    return Cops.size();
  }

  /// Folds one host's resilience tallies into the run's stats (called at
  /// each window barrier; the parallel path folds every worker's host).
  void absorbHostStats(const ResilienceStats &S) {
    Result.Stats.SolverRetries += S.Retries;
    Result.Stats.DegradedSessions += S.DegradedSessions;
    BackendFallbacks += S.BackendFallbacks;
  }

  // ----------------------------------------------------- checkpointing

  /// Serializes everything the driver accumulates across windows
  /// (docs/ROBUSTNESS.md). Only event ids and counters are stored —
  /// display strings and signatures are re-derived from the trace on
  /// restore, so the payload stays small and cannot drift from the trace
  /// (the store's fingerprint pins trace and flags).
  std::string serializeState() const {
    std::string Out;
    Out += formatString(
        "stats %llu %llu %llu %llu %llu %llu %llu %llu\n",
        static_cast<unsigned long long>(Result.Stats.Windows),
        static_cast<unsigned long long>(Result.Stats.Cops),
        static_cast<unsigned long long>(Result.Stats.QcPassed),
        static_cast<unsigned long long>(Result.Stats.CopsPrunedStatic),
        static_cast<unsigned long long>(Result.Stats.SolverCalls),
        static_cast<unsigned long long>(Result.Stats.SolverTimeouts),
        static_cast<unsigned long long>(Result.Stats.SolverRetries),
        static_cast<unsigned long long>(Result.Stats.DegradedSessions));
    Out += formatString(
        "tallies %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu\n",
        static_cast<unsigned long long>(QcHits),
        static_cast<unsigned long long>(QcMisses),
        static_cast<unsigned long long>(SigPruned),
        static_cast<unsigned long long>(StaticPruned),
        static_cast<unsigned long long>(SpeculativeSolves),
        static_cast<unsigned long long>(BackendFallbacks),
        static_cast<unsigned long long>(Result.Stats.WcpRaces),
        static_cast<unsigned long long>(Result.Stats.WcpPruned),
        static_cast<unsigned long long>(Result.Stats.WcpResidue),
        static_cast<unsigned long long>(Result.Stats.WcpShortCircuits),
        static_cast<unsigned long long>(Result.Stats.WcpMismatches));
    Out += "values";
    for (Value V : RunningValues)
      Out += formatString(" %lld", static_cast<long long>(V));
    Out += "\n";
    appendKeySet(Out, "racy", RacySignatures);
    appendKeySet(Out, "qcsig", QcSignatures);
    for (const RaceReport &R : Result.Races) {
      Out += formatString("race %llu %llu %d",
                          static_cast<unsigned long long>(R.First),
                          static_cast<unsigned long long>(R.Second),
                          R.WitnessValid ? 1 : 0);
      for (EventId Id : R.Witness)
        Out += formatString(" %llu", static_cast<unsigned long long>(Id));
      Out += "\n";
    }
    for (const UnknownReport &U : Result.Unknowns)
      Out += formatString("unknown %llu %llu %u\n",
                          static_cast<unsigned long long>(U.First),
                          static_cast<unsigned long long>(U.Second),
                          static_cast<unsigned>(U.Attempts));
    return Out;
  }

  static void appendKeySet(std::string &Out, const char *Tag,
                           const std::unordered_set<uint64_t> &Set) {
    // Sorted so the same state always serializes to the same bytes.
    std::vector<uint64_t> Keys(Set.begin(), Set.end());
    std::sort(Keys.begin(), Keys.end());
    Out += Tag;
    for (uint64_t K : Keys)
      Out += formatString(" %llx", static_cast<unsigned long long>(K));
    Out += "\n";
  }

  /// Inverse of serializeState. All-or-nothing: any malformed or
  /// out-of-range field rejects the snapshot (the run then starts from
  /// scratch, which is always sound — checkpoints only save time).
  bool restoreState(const std::string &Payload) {
    auto parseU64 = [](std::string_view S, uint64_t &Out) {
      int64_t V = 0;
      if (!parseInt(S, V) || V < 0)
        return false;
      Out = static_cast<uint64_t>(V);
      return true;
    };
    auto parseHex = [](std::string_view S, uint64_t &Out) {
      if (S.empty() || S.size() > 16)
        return false;
      uint64_t V = 0;
      for (char C : S) {
        int D;
        if (C >= '0' && C <= '9')
          D = C - '0';
        else if (C >= 'a' && C <= 'f')
          D = C - 'a' + 10;
        else
          return false;
        V = V << 4 | static_cast<uint64_t>(D);
      }
      Out = V;
      return true;
    };
    auto parseEvent = [&](std::string_view S, EventId &Out) {
      uint64_t V = 0;
      if (!parseU64(S, V) || V >= T.size())
        return false;
      Out = static_cast<EventId>(V);
      return true;
    };

    std::vector<RaceReport> NewRaces;
    std::vector<UnknownReport> NewUnknowns;
    std::vector<Value> NewValues;
    std::unordered_set<uint64_t> NewRacy, NewQc, NewUnkSigs;
    uint64_t S[8] = {0}, Tally[11] = {0};
    bool SawStats = false, SawTallies = false, SawValues = false;

    for (std::string_view Line : split(Payload, '\n')) {
      Line = trim(Line);
      if (Line.empty())
        continue;
      std::vector<std::string_view> F = split(Line, ' ');
      if (F[0] == "stats") {
        if (F.size() != 9)
          return false;
        for (size_t I = 0; I < 8; ++I)
          if (!parseU64(F[I + 1], S[I]))
            return false;
        SawStats = true;
      } else if (F[0] == "tallies") {
        // 12 fields since the WCP tier landed; older 7-field snapshots
        // (written by a pre-tier build) are rejected wholesale, which is
        // always sound — the run just starts from scratch.
        if (F.size() != 12)
          return false;
        for (size_t I = 0; I < 11; ++I)
          if (!parseU64(F[I + 1], Tally[I]))
            return false;
        SawTallies = true;
      } else if (F[0] == "values") {
        for (size_t I = 1; I < F.size(); ++I) {
          int64_t V = 0;
          if (!parseInt(F[I], V))
            return false;
          NewValues.push_back(static_cast<Value>(V));
        }
        SawValues = true;
      } else if (F[0] == "racy" || F[0] == "qcsig") {
        auto &Set = F[0] == "racy" ? NewRacy : NewQc;
        for (size_t I = 1; I < F.size(); ++I) {
          uint64_t K = 0;
          if (!parseHex(F[I], K))
            return false;
          Set.insert(K);
        }
      } else if (F[0] == "race") {
        if (F.size() < 4)
          return false;
        RaceReport R;
        uint64_t Valid = 0;
        if (!parseEvent(F[1], R.First) || !parseEvent(F[2], R.Second) ||
            !parseU64(F[3], Valid) || Valid > 1)
          return false;
        R.Sig = RaceSignature::of(T, R.First, R.Second);
        R.LocFirst = T.locName(T[R.First].Loc);
        R.LocSecond = T.locName(T[R.Second].Loc);
        R.Variable = T.varName(T[R.First].Target);
        R.WitnessValid = Valid != 0;
        for (size_t I = 4; I < F.size(); ++I) {
          EventId Id = InvalidEvent;
          if (!parseEvent(F[I], Id))
            return false;
          R.Witness.push_back(Id);
        }
        NewRaces.push_back(std::move(R));
      } else if (F[0] == "unknown") {
        if (F.size() != 4)
          return false;
        UnknownReport U;
        uint64_t Attempts = 0;
        if (!parseEvent(F[1], U.First) || !parseEvent(F[2], U.Second) ||
            !parseU64(F[3], Attempts) || Attempts == 0)
          return false;
        U.LocFirst = T.locName(T[U.First].Loc);
        U.LocSecond = T.locName(T[U.Second].Loc);
        U.Variable = T.varName(T[U.First].Target);
        U.Attempts = static_cast<uint32_t>(Attempts);
        NewUnkSigs.insert(RaceSignature::of(T, U.First, U.Second).key());
        NewUnknowns.push_back(std::move(U));
      } else {
        return false; // unknown section: written by a different build
      }
    }
    if (!SawStats || !SawTallies || !SawValues ||
        NewValues.size() > T.numVars())
      return false;
    // A snapshot taken over a prefix of the trace (streaming steps) can
    // predate variables first seen in later windows; they still hold
    // their initial values. Batch snapshots always match exactly.
    while (NewValues.size() < T.numVars())
      NewValues.push_back(
          T.initialValueOf(static_cast<VarId>(NewValues.size())));

    Result.Stats.Windows = S[0];
    Result.Stats.Cops = S[1];
    Result.Stats.QcPassed = S[2];
    Result.Stats.CopsPrunedStatic = S[3];
    Result.Stats.SolverCalls = S[4];
    Result.Stats.SolverTimeouts = S[5];
    Result.Stats.SolverRetries = S[6];
    Result.Stats.DegradedSessions = S[7];
    QcHits = Tally[0];
    QcMisses = Tally[1];
    SigPruned = Tally[2];
    StaticPruned = Tally[3];
    SpeculativeSolves = Tally[4];
    BackendFallbacks = Tally[5];
    Result.Stats.WcpRaces = Tally[6];
    Result.Stats.WcpPruned = Tally[7];
    Result.Stats.WcpResidue = Tally[8];
    Result.Stats.WcpShortCircuits = Tally[9];
    Result.Stats.WcpMismatches = Tally[10];
    RunningValues = std::move(NewValues);
    RacySignatures = std::move(NewRacy);
    QcSignatures = std::move(NewQc);
    UnknownSignatures = std::move(NewUnkSigs);
    Result.Races = std::move(NewRaces);
    Result.Unknowns = std::move(NewUnknowns);
    return true;
  }

  /// Canonical witness model for the incremental path: re-encode the COP
  /// into a fresh builder and solve it one-shot — exactly the instance the
  /// legacy path builds, so witnesses are byte-identical across modes and
  /// independent of session history. (Reusing the shared window builder
  /// would not do: the simplifier canonicalizes And/Or children by node
  /// reference, so ref numbering from earlier COPs reshapes the DAG and
  /// with it the model the solver happens to pick.) Tallied as
  /// solver.witness_resolves, not as a COP decision (solver_calls is
  /// mode-invariant).
  /// Whether the encoder actually slices: the naive adjacency encoding
  /// references every window event, so slicing is a no-op without the
  /// substitution.
  bool sliceActive() const {
    return Options.Slice && Options.SubstituteRaceVars;
  }

  /// Whether the WCP tier runs at all: Hybrid/Vc, SMT-based techniques
  /// only (the Hb/Cp detectors are already linear-time).
  bool wcpActive() const {
    return Options.Tier != DetectTier::Smt &&
           (Tech == Technique::Said || Tech == Technique::Maximal);
  }

  /// Hybrid short-circuit of one WCP-racy COP (sequential path). With
  /// witnesses on, the race is verified and its model derived through the
  /// same unsliced one-shot solve the Smt tier's witness path runs, so
  /// every outcome — the report, an unsat's silence, an unknown entry —
  /// matches the Smt tier byte for byte. With witnesses off the WCP
  /// verdict is reported directly: zero solver work (the measured
  /// speedup), sound in the Vc-tier sense, auditable via --check-tiers.
  void shortCircuitCop(Span Window, const Cop &C,
                       const RaceEncoder &Encoder,
                       const EventClosure &Mhb) {
    if (!Options.CollectWitnesses) {
      ++Result.Stats.WcpRaces;
      CopEventExtra Extra;
      Extra.Stage = "wcp";
      emitCopEvent(Window, C, "race", "wcp");
      recordCopCost(C, "race", 0, Extra);
      report(C.First, C.Second, {}, false);
      return;
    }
    ScopedPhaseTimer WitnessPhase("witness");
    Timer WitnessClock;
    OrderModel Model;
    SatResult Sat = rederiveModel(Encoder, C, Model);
    CopEventExtra Extra;
    if (Sat != SatResult::Sat) {
      const char *Outcome = Sat == SatResult::Unsat ? "unsat" : "timeout";
      if (Sat == SatResult::Unknown) {
        ++Result.Stats.SolverTimeouts;
        recordUnknown(C, 1);
      }
      Extra.Stage = stageForOutcome(Outcome);
      Extra.WitnessSeconds = WitnessClock.seconds();
      emitCopEvent(Window, C, Outcome, Extra.Stage);
      recordCopCost(C, Outcome, 0, Extra);
      return;
    }
    std::vector<EventId> Witness = buildWitness(Window, Model, C);
    bool WitnessValid = checkWitness(T, Window, Witness, C.First, C.Second,
                                     Encoder, Mhb, RunningValues)
                            .Ok;
    ++Result.Stats.WcpRaces;
    Extra.Stage = "wcp";
    Extra.WitnessSeconds = WitnessClock.seconds();
    emitCopEvent(Window, C, "sat", "wcp");
    recordCopCost(C, "sat", 0, Extra);
    report(C.First, C.Second, std::move(Witness), WitnessValid);
  }

  SatResult rederiveModel(const RaceEncoder &Encoder, const Cop &C,
                          OrderModel &Model) const {
    // Witness models come from the unsliced formula: a sliced model has
    // no positions for events outside the cone, and buildWitness orders
    // the whole window. Sharing the WindowEncoding makes the unsliced
    // encoder construction free.
    EncoderOptions NoSlice;
    NoSlice.SubstituteRaceVars = Options.SubstituteRaceVars;
    NoSlice.Slice = false;
    RaceEncoder Unsliced(Encoder.sharedWindowEncoding(), NoSlice);
    FormulaBuilder FreshFB;
    NodeRef Root = Tech == Technique::Maximal
                       ? Unsliced.encodeMaximalRace(FreshFB, C.First,
                                                    C.Second)
                       : Unsliced.encodeSaidRace(FreshFB, C.First, C.Second);
    std::unique_ptr<SmtSolver> Fresh =
        createSolverByName(Options.SolverName);
    if (!Fresh)
      Fresh = createIdlSolver();
    if (Telemetry::enabled())
      MetricsRegistry::global().counter("solver.witness_resolves").inc();
    return Fresh->solve(FreshFB, Root,
                        Deadline::after(Options.PerCopBudgetSeconds),
                        &Model);
  }

  // -------------------------------------------------- parallel solving

  /// Jobs > 1: each worker keeps its own SolveHost for the current window
  /// — in incremental mode that host owns the worker's persistent session
  /// and the shared builder below, so queries of COPs that land on the
  /// same worker reuse each other's encoding and learned clauses without
  /// any cross-thread solver state; in legacy mode the host just owns the
  /// worker's one-shot solver (all solver state is per-solve). Either
  /// way the host also runs the per-worker degradation policy.
  struct WorkerSolveCtx {
    FormulaBuilder FB;
    std::unique_ptr<SolveHost> Host;
  };

  /// Outcome of one COP, decided in phase A (pre-filters) or phase B
  /// (solve task) and consumed in COP order by phase C.
  struct CopTaskResult {
    uint64_t SigKey = 0;
    bool StaticPruned = false; ///< skipped by the static oracle
    bool WcpPruned = false;    ///< MHB-ordered per the WCP tier's clocks
    bool PreFiltered = false;  ///< signature racy at window start
    bool QcFail = false;
    /// WCP proved the pair racy (hybrid fast path): the task re-derives
    /// the witness model instead of encode+solve; with witnesses off it
    /// does nothing and phase C reports the WCP verdict directly.
    bool WcpRacy = false;
    /// Which quick-check component rejected the COP (set iff QcFail).
    const char *QcStage = nullptr;
    bool Solved = false;
    SatResult Sat = SatResult::Unknown;
    /// Escalation attempts the host spent on this COP.
    uint32_t Attempts = 1;
    double SolveSeconds = 0;
    double EncodeSeconds = 0;
    double WitnessSeconds = 0;
    uint64_t MemDeltaBytes = 0;
    uint64_t FormulaNodes = 0;
    uint64_t DifferenceAtoms = 0;
    uint64_t OrderVars = 0;
    uint64_t ConeEvents = 0;
    std::vector<EventId> Witness;
    bool WitnessValid = false;
  };

  /// The jobs>1 replacement for the sequential COP loop. Three phases keep
  /// the output deterministic and equal to --jobs 1:
  ///
  ///  A (sequential) — per-COP pre-filters whose inputs are fixed at
  ///    window start: signatures racy from *earlier* windows and the
  ///    quick check.
  ///  B (parallel)   — encode+solve of every surviving COP as independent
  ///    tasks: own FormulaBuilder, own solver instance, read-only shared
  ///    WindowEncoding. No cross-task state.
  ///  C (sequential, ascending COP index) — replays the sequential loop's
  ///    accounting: a COP whose signature became racy earlier in this
  ///    window is pruned exactly as the sequential run would have pruned
  ///    it (its speculative solve is discarded and tallied separately),
  ///    so reports, stats, and trace events match byte for byte.
  ///
  /// One caveat: a COP near the per-COP budget can tip from sat/unsat to
  /// timeout under contention (wall-clock budgets are the one
  /// scheduling-dependent input).
  void processCopsParallel(Span Window, const std::vector<Cop> &Cops,
                           const std::vector<bool> &Pruned,
                           const QuickCheck &Qc, const EventClosure &Mhb,
                           const RaceEncoder &Encoder,
                           const WcpIndex *Wcp) {
    const bool WcpFastPath = Wcp && !Options.CheckTiers;
    std::vector<CopTaskResult> Results(Cops.size());
    for (size_t I = 0; I < Cops.size(); ++I) {
      CopTaskResult &R = Results[I];
      R.SigKey = RaceSignature::of(T, Cops[I].First, Cops[I].Second).key();
      R.StaticPruned = Pruned[I];
      if (R.StaticPruned)
        continue;
      R.WcpPruned =
          WcpFastPath && (Wcp->mhbOrdered(Cops[I].First, Cops[I].Second) ||
                          Wcp->mhbOrdered(Cops[I].Second, Cops[I].First));
      if (R.WcpPruned)
        continue;
      R.PreFiltered = RacySignatures.count(R.SigKey) != 0;
      if (R.PreFiltered)
        continue;
      R.QcFail = Options.UseQuickCheck && !Qc.pass(Cops[I]);
      if (R.QcFail) {
        R.QcStage = Qc.failStage(Cops[I]);
        continue;
      }
      R.WcpRacy = WcpFastPath && Tech == Technique::Maximal &&
                  Wcp->racy(Cops[I].First, Cops[I].Second);
    }

    const bool Observing = Telemetry::enabled();
    const bool WantEventMetrics = activeSink() != nullptr;
    std::vector<PhaseTree> WorkerTrees(Observing ? Pool->numWorkers() : 0);
    // Per-worker solve state, window-scoped. The extra trailing slot
    // belongs to the main thread, which helps drain the queue inside
    // parallelFor and reports currentWorkerIndex() == -1.
    std::vector<WorkerSolveCtx> Contexts(Pool->numWorkers() + 1);
    Pool->parallelFor(0, Cops.size(), [&](size_t I) {
      CopTaskResult &R = Results[I];
      if (R.StaticPruned || R.WcpPruned || R.PreFiltered || R.QcFail)
        return;
      int W = Pool->currentWorkerIndex();
      std::optional<ThreadPhaseScope> PhaseScope;
      if (Observing && W >= 0)
        PhaseScope.emplace(&WorkerTrees[W]);
      WorkerSolveCtx &Ctx = Contexts[W >= 0 ? static_cast<size_t>(W)
                                            : Contexts.size() - 1];
      solveCopTask(Cops[I], Encoder, Mhb, Window, WantEventMetrics, Ctx,
                   R);
    });
    for (const WorkerSolveCtx &Ctx : Contexts)
      if (Ctx.Host)
        absorbHostStats(Ctx.Host->stats());
    if (Observing) {
      // The main thread is inside the "window" phase here, so the merge
      // nests each worker's encode/solve/witness times under it.
      PhaseTree &Main = Telemetry::instance().phases();
      for (const PhaseTree &WT : WorkerTrees)
        Main.absorb(WT);
    }

    for (size_t I = 0; I < Cops.size(); ++I) {
      const Cop &C = Cops[I];
      CopTaskResult &R = Results[I];
      if (R.StaticPruned) {
        emitCopEvent(Window, C, "static-pruned", "static-prune");
        continue;
      }
      if (R.WcpPruned) {
        ++Result.Stats.WcpPruned;
        emitCopEvent(Window, C, "wcp-ordered", "wcp");
        continue;
      }
      if (RacySignatures.count(R.SigKey)) {
        ++SigPruned; // signature pruning (Section 4)
        if (R.Solved)
          ++SpeculativeSolves;
        emitCopEvent(Window, C, "pruned", "signature");
        continue;
      }
      if (R.QcFail) {
        emitCopEvent(Window, C, "qc-fail", R.QcStage);
        continue;
      }
      if (R.WcpRacy) {
        // Mirrors the sequential shortCircuitCop, consuming the witness
        // work phase B already did.
        ++Result.Stats.WcpShortCircuits;
        if (!Options.CollectWitnesses) {
          ++Result.Stats.WcpRaces;
          CopEventExtra Extra;
          Extra.Stage = "wcp";
          emitCopEvent(Window, C, "race", "wcp");
          recordCopCost(C, "race", 0, Extra);
          report(C.First, C.Second, {}, false);
          continue;
        }
        const char *ScOutcome = R.Sat == SatResult::Sat     ? "sat"
                                : R.Sat == SatResult::Unsat ? "unsat"
                                                            : "timeout";
        CopEventExtra Extra;
        Extra.Stage = R.Sat == SatResult::Sat ? "wcp"
                                              : stageForOutcome(ScOutcome);
        Extra.WitnessSeconds = R.WitnessSeconds;
        if (R.Sat == SatResult::Unknown) {
          ++Result.Stats.SolverTimeouts;
          recordUnknown(C, 1);
        }
        emitCopEvent(Window, C, ScOutcome, Extra.Stage);
        recordCopCost(C, ScOutcome, 0, Extra);
        if (R.Sat == SatResult::Sat) {
          ++Result.Stats.WcpRaces;
          report(C.First, C.Second, std::move(R.Witness), R.WitnessValid);
        }
        continue;
      }
      ++Result.Stats.SolverCalls;
      if (WcpFastPath)
        ++Result.Stats.WcpResidue;
      if (Options.CheckTiers && Wcp && R.Sat == SatResult::Unsat &&
          Wcp->racy(C.First, C.Second))
        ++Result.Stats.WcpMismatches;
      const char *Outcome = R.Sat == SatResult::Sat     ? "sat"
                            : R.Sat == SatResult::Unsat ? "unsat"
                                                        : "timeout";
      CopEventExtra Extra;
      Extra.Stage = stageForOutcome(Outcome);
      Extra.EncodeSeconds = R.EncodeSeconds;
      Extra.WitnessSeconds = R.WitnessSeconds;
      Extra.MemDeltaBytes = R.MemDeltaBytes;
      Extra.Attempts = R.Attempts;
      Extra.ConeEvents = R.ConeEvents;
      emitSolveEvent(Window, C, Outcome, R.SolveSeconds);
      if (R.Sat == SatResult::Unknown) {
        ++Result.Stats.SolverTimeouts;
        recordUnknown(C, R.Attempts);
      }
      emitCopEventFields(C, Outcome, true, R.FormulaNodes,
                         R.DifferenceAtoms, R.OrderVars, R.SolveSeconds,
                         Extra);
      recordCopCost(C, Outcome, R.SolveSeconds, Extra);
      if (R.Sat == SatResult::Sat)
        report(C.First, C.Second, std::move(R.Witness), R.WitnessValid);
    }
  }

  /// Phase-B body: fully independent of every other COP. Runs on a pool
  /// worker (or inline); may only touch immutable window state, the
  /// registry (atomic), and its own CopTaskResult slot.
  void solveCopTask(const Cop &C, const RaceEncoder &Encoder,
                    const EventClosure &Mhb, Span Window,
                    bool WantEventMetrics, WorkerSolveCtx &Ctx,
                    CopTaskResult &R) {
    if (R.WcpRacy) {
      // WCP short-circuit: no encode, no session solve. With witnesses
      // on, verify + derive the model exactly like the Smt tier's
      // witness path (unsliced one-shot; thread-safe — fresh solver per
      // call); with witnesses off there is nothing to compute here.
      if (!Options.CollectWitnesses)
        return;
      ScopedPhaseTimer WitnessPhase("witness");
      Timer WitnessClock;
      OrderModel Model;
      R.Sat = rederiveModel(Encoder, C, Model);
      if (R.Sat == SatResult::Sat) {
        R.Witness = buildWitness(Window, Model, C);
        R.WitnessValid = checkWitness(T, Window, R.Witness, C.First,
                                      C.Second, Encoder, Mhb,
                                      RunningValues)
                             .Ok;
      }
      R.WitnessSeconds = WitnessClock.seconds();
      return;
    }
    if (!Ctx.Host)
      Ctx.Host = std::make_unique<SolveHost>(
          Options.SolverName, UseIncremental, Options.PerCopBudgetSeconds,
          Options.RetryBudgets,
          Options.RetryJitterSeed + Result.Stats.Windows);
    FormulaBuilder TaskFB;
    FormulaBuilder &FB = UseIncremental ? Ctx.FB : TaskFB;
    size_t NodesBefore = FB.numNodes();
    NodeRef Root;
    EncodeStats EncStats;
    {
      ScopedPhaseTimer EncodePhase("encode");
      Timer EncodeClock;
      Root = Tech == Technique::Maximal
                 ? Encoder.encodeMaximalRace(FB, C.First, C.Second,
                                             &EncStats)
                 : Encoder.encodeSaidRace(FB, C.First, C.Second,
                                          &EncStats);
      R.EncodeSeconds = EncodeClock.seconds();
    }
    R.ConeEvents = EncStats.ConeEvents;
    R.MemDeltaBytes = (FB.numNodes() - NodesBefore) * sizeof(FormulaNode);
    if (Telemetry::enabled())
      recordFormulaMetrics(FB, NodesBefore, Root);
    if (WantEventMetrics) {
      R.FormulaNodes = FB.numNodes() - NodesBefore;
      for (size_t I = NodesBefore; I < FB.numNodes(); ++I)
        if (FB.node(static_cast<NodeRef>(I)).Kind == FormulaKind::Atom)
          ++R.DifferenceAtoms;
      R.OrderVars = FB.collectVars(Root).size();
    }
    OrderModel Model;
    R.Solved = true;
    SolveHost::Outcome Decided;
    {
      ScopedPhaseTimer SolvePhase("solve");
      Timer SolveClock;
      Decided = Ctx.Host->decide(
          FB, Root, Options.CollectWitnesses ? &Model : nullptr);
      R.SolveSeconds = SolveClock.seconds();
    }
    R.Sat = Decided.Sat;
    R.Attempts = Decided.Attempts;
    if (Telemetry::enabled())
      MetricsRegistry::global()
          .histogram("solver.latency_seconds")
          .record(R.SolveSeconds);
    if (R.Sat == SatResult::Sat && Options.CollectWitnesses &&
        Tech == Technique::Maximal) {
      ScopedPhaseTimer WitnessPhase("witness");
      Timer WitnessClock;
      // See the sequential loop: sliced models only order the cone.
      if (!Decided.ModelFromSolve || sliceActive())
        rederiveModel(Encoder, C, Model);
      R.Witness = buildWitness(Window, Model, C);
      R.WitnessValid = checkWitness(T, Window, R.Witness, C.First, C.Second,
                                    Encoder, Mhb, RunningValues)
                           .Ok;
      R.WitnessSeconds = WitnessClock.seconds();
    }
  }

  // ------------------------------------------------------- telemetry

  void flushTelemetryCounters() {
    MetricsRegistry &Reg = MetricsRegistry::global();
    Reg.counter("detect.windows").add(Result.Stats.Windows);
    Reg.counter("detect.cops").add(Result.Stats.Cops);
    Reg.counter("detect.qc_hits").add(QcHits);
    Reg.counter("detect.qc_misses").add(QcMisses);
    Reg.counter("detect.qc_passed_signatures").add(Result.Stats.QcPassed);
    Reg.counter("detect.signature_pruned").add(SigPruned);
    Reg.counter("analysis.cops_pruned_static").add(StaticPruned);
    Reg.counter("detect.races").add(Result.Races.size());
    Reg.counter("solver.calls").add(Result.Stats.SolverCalls);
    Reg.counter("solver.timeouts").add(Result.Stats.SolverTimeouts);
    Reg.counter("solver.retries").add(Result.Stats.SolverRetries);
    Reg.counter("solver.degraded_sessions")
        .add(Result.Stats.DegradedSessions);
    Reg.counter("solver.backend_fallbacks").add(BackendFallbacks);
    Reg.counter("detect.unknown_cops").add(Result.Stats.UnknownCops);
    Reg.counter("detect.resumed_windows").add(ResumedWindows);
    Reg.counter("detect.speculative_solves").add(SpeculativeSolves);
    if (wcpActive()) {
      Reg.counter("wcp.races").add(Result.Stats.WcpRaces);
      Reg.counter("wcp.pruned_cops").add(Result.Stats.WcpPruned);
      Reg.counter("wcp.residue_cops").add(Result.Stats.WcpResidue);
      Reg.counter("wcp.check_mismatches").add(Result.Stats.WcpMismatches);
    }
    Reg.gauge("detect.jobs").set(Result.Stats.Jobs);
    // Memory gauges: the accounted pools plus process RSS. Trace storage
    // is owned outside the detectors, so its gauge is set directly from
    // the (immutable) event array instead of through a MemCharge.
    MemStats::publishGauges(Reg);
    double TraceBytes =
        static_cast<double>(T.size()) * static_cast<double>(sizeof(Event));
    Reg.gauge("mem.trace_bytes").set(TraceBytes);
    Reg.gauge("mem.trace_peak_bytes").set(TraceBytes);
  }

  /// Formula-size accounting after one encode: total nodes, difference
  /// atoms, distinct cf boolean variables, and order variables reachable
  /// from the root.
  /// \p NodesBefore is the builder's size before this COP's encode: with a
  /// per-COP builder it is 0 and the whole builder is counted (the legacy
  /// numbers); with the incremental path's shared per-window builder only
  /// this COP's newly hash-consed nodes count, so encoder.nodes measures
  /// real encoding work, not re-reads of shared structure.
  void recordFormulaMetrics(const FormulaBuilder &FB, size_t NodesBefore,
                            NodeRef Root) {
    uint64_t Atoms = 0;
    std::unordered_set<uint32_t> BoolIds;
    for (size_t I = NodesBefore; I < FB.numNodes(); ++I) {
      const FormulaNode &N = FB.node(static_cast<NodeRef>(I));
      if (N.Kind == FormulaKind::Atom)
        ++Atoms;
      else if (N.Kind == FormulaKind::BoolVar)
        BoolIds.insert(N.VarA);
    }
    MetricsRegistry &Reg = MetricsRegistry::global();
    Reg.counter("encoder.formulas").inc();
    Reg.counter("encoder.nodes").add(FB.numNodes() - NodesBefore);
    Reg.counter("encoder.difference_atoms").add(Atoms);
    Reg.counter("encoder.bool_vars").add(BoolIds.size());
    Reg.counter("encoder.order_vars").add(FB.collectVars(Root).size());
  }

  TraceEventSink *activeSink() const {
    return Telemetry::enabled() ? Telemetry::instance().sink() : nullptr;
  }

  void emitWindowEvent(Span Window, size_t Cops, double Seconds) {
    TraceEventSink *Sink = activeSink();
    if (!Sink)
      return;
    JsonObject O;
    O.field("type", "window")
        .field("index", Result.Stats.Windows - 1)
        .field("begin", static_cast<uint64_t>(Window.Begin))
        .field("end", static_cast<uint64_t>(Window.End))
        .field("cops", static_cast<uint64_t>(Cops))
        .field("seconds", Seconds);
    Sink->write(O);
  }

  /// Per-COP attribution beyond the formula-size numbers: the prune
  /// provenance (which stage decided the pair) plus, for solved COPs, the
  /// encode/witness split, the formula-arena delta, and the escalation
  /// attempts. Carried into cop trace events and the cost ledger.
  struct CopEventExtra {
    const char *Stage = "none";
    double EncodeSeconds = 0;
    double WitnessSeconds = 0;
    uint64_t MemDeltaBytes = 0;
    uint32_t Attempts = 0;
    uint64_t ConeEvents = 0; ///< sliced-encode cone size (0 unsliced)
  };

  /// Prune provenance of a solved/ordered COP from its outcome string.
  /// Filter outcomes (static-pruned/pruned/qc-fail) carry their stage
  /// explicitly at the call site instead.
  static const char *stageForOutcome(const char *Outcome) {
    if (std::strcmp(Outcome, "unsat") == 0)
      return "unsat";
    if (std::strcmp(Outcome, "timeout") == 0)
      return "budget";
    if (std::strcmp(Outcome, "ordered") == 0)
      return "ordered";
    return "none"; // sat / race: nothing killed the pair
  }

  void emitCopEvent(Span, const Cop &C, const char *Outcome,
                    const char *Stage) {
    CopEventExtra Extra;
    Extra.Stage = Stage;
    emitCopEventFields(C, Outcome, false, 0, 0, 0, 0, Extra);
  }

  /// Delta variant for builders that outlive one COP: the incremental
  /// path's shared per-window builder accumulates nodes, so this COP's
  /// contribution is the range [NodesBefore, numNodes()). With
  /// NodesBefore == 0 (the legacy per-COP builder) the whole builder is
  /// counted, reproducing the legacy numbers exactly.
  void emitCopEventRange(const Cop &C, const char *Outcome,
                         const FormulaBuilder &FB, size_t NodesBefore,
                         NodeRef Root, double SolveSeconds,
                         const CopEventExtra &Extra) {
    if (!activeSink())
      return;
    uint64_t Atoms = 0;
    for (size_t I = NodesBefore; I < FB.numNodes(); ++I)
      if (FB.node(static_cast<NodeRef>(I)).Kind == FormulaKind::Atom)
        ++Atoms;
    emitCopEventFields(C, Outcome, true, FB.numNodes() - NodesBefore,
                       Atoms, FB.collectVars(Root).size(), SolveSeconds,
                       Extra);
  }

  /// Same event from precomputed numbers — the parallel path measures
  /// formula sizes inside the task and emits in COP order afterwards.
  void emitCopEventFields(const Cop &C, const char *Outcome,
                          bool HasFormula, uint64_t Nodes, uint64_t Atoms,
                          uint64_t OrderVars, double SolveSeconds,
                          const CopEventExtra &Extra) {
    TraceEventSink *Sink = activeSink();
    if (!Sink)
      return;
    JsonObject O;
    O.field("type", "cop")
        .field("window", Result.Stats.Windows - 1)
        .field("first", static_cast<uint64_t>(C.First))
        .field("second", static_cast<uint64_t>(C.Second))
        .field("loc_first", T.locName(T[C.First].Loc))
        .field("loc_second", T.locName(T[C.Second].Loc))
        .field("variable", T.varName(T[C.First].Target))
        .field("outcome", Outcome)
        .field("stage", Extra.Stage);
    if (HasFormula)
      O.field("formula_nodes", Nodes)
          .field("difference_atoms", Atoms)
          .field("order_vars", OrderVars)
          .field("solve_seconds", SolveSeconds)
          .field("encode_seconds", Extra.EncodeSeconds)
          .field("witness_seconds", Extra.WitnessSeconds)
          .field("mem_delta_bytes", Extra.MemDeltaBytes)
          .field("attempts", static_cast<uint64_t>(Extra.Attempts))
          .field("cone_events", Extra.ConeEvents);
    Sink->write(O);
  }

  /// Feeds one decided COP into the run's cost ledger (telemetry-gated;
  /// called only from sequential contexts, so the ledger needs no lock).
  void recordCopCost(const Cop &C, const char *Outcome,
                     double SolveSeconds, const CopEventExtra &Extra) {
    if (!Telemetry::enabled())
      return;
    CopCost Cost;
    Cost.Window = Result.Stats.Windows - 1;
    Cost.LocFirst = T.locName(T[C.First].Loc);
    Cost.LocSecond = T.locName(T[C.Second].Loc);
    Cost.Variable = T.varName(T[C.First].Target);
    Cost.Outcome = Outcome;
    Cost.EncodeSeconds = Extra.EncodeSeconds;
    Cost.SolveSeconds = SolveSeconds;
    Cost.WitnessSeconds = Extra.WitnessSeconds;
    Cost.MemDeltaBytes = Extra.MemDeltaBytes;
    Cost.Attempts = Extra.Attempts;
    Cost.ConeEvents = Extra.ConeEvents;
    Result.Stats.TopCosts.recordCop(std::move(Cost));
  }

  void emitSolveEvent(Span, const Cop &C, const char *Outcome,
                      double Seconds) {
    TraceEventSink *Sink = activeSink();
    if (!Sink)
      return;
    JsonObject O;
    O.field("type", "solve")
        .field("window", Result.Stats.Windows - 1)
        .field("first", static_cast<uint64_t>(C.First))
        .field("second", static_cast<uint64_t>(C.Second))
        .field("solver", Solver ? Solver->name() : "none")
        .field("outcome", Outcome)
        .field("seconds", Seconds);
    Sink->write(O);
  }

  /// Sorts the window's events by their model positions; the substituted
  /// race event shares its partner's position and is placed right before
  /// it.
  std::vector<EventId> buildWitness(Span Window, const OrderModel &Model,
                                    const Cop &C) const {
    std::vector<EventId> Order;
    Order.reserve(Window.size());
    for (EventId Id = Window.Begin; Id < Window.End; ++Id)
      Order.push_back(Id);
    auto keyOf = [&](EventId Id) -> std::pair<int64_t, int64_t> {
      EventId Var = Options.SubstituteRaceVars && Id == C.First ? C.Second
                                                                : Id;
      auto It = Model.find(Var);
      // Events without constraints sort by trace position at the end.
      int64_t Pos = It == Model.end() ? INT64_MAX : It->second;
      // Tie-break: the first race event precedes the second; otherwise
      // keep trace order.
      int64_t Tie = Id == C.First ? -1 : static_cast<int64_t>(Id);
      return {Pos, Tie};
    };
    std::sort(Order.begin(), Order.end(), [&](EventId A, EventId B) {
      return keyOf(A) < keyOf(B);
    });
    return Order;
  }

  const Trace &T;
  Technique Tech;
  DetectorOptions Options;
  DetectionResult Result;
  std::unique_ptr<SmtSolver> Solver;
  /// Worker pool for the per-COP solve loop; null when Jobs <= 1 (the
  /// sequential code path) or the technique has no solver loop.
  std::unique_ptr<ThreadPool> Pool;
  uint32_t Jobs = 1;
  /// Options.Incremental, latched for the SMT techniques: COPs are decided
  /// through persistent per-window SmtSessions instead of fresh one-shot
  /// solvers (docs/INCREMENTAL_SOLVING.md).
  bool UseIncremental = false;
  std::vector<Value> RunningValues;
  std::unordered_set<uint64_t> RacySignatures;
  std::unordered_set<uint64_t> QcSignatures;
  /// Signatures currently parked in Result.Unknowns (kept in sync by
  /// recordUnknown/report).
  std::unordered_set<uint64_t> UnknownSignatures;
  /// Backend factory failures absorbed by falling back to idl.
  uint64_t BackendFallbacks = 0;
  /// Windows skipped because a checkpoint snapshot covered them
  /// (telemetry detect.resumed_windows).
  uint64_t ResumedWindows = 0;
  /// Plain tallies on the hot path, flushed into the registry once per run
  /// (flushTelemetryCounters) so disabled telemetry costs nothing.
  uint64_t QcHits = 0;
  uint64_t QcMisses = 0;
  uint64_t SigPruned = 0;
  /// COPs skipped by Options.StaticPruner across all windows.
  uint64_t StaticPruned = 0;
  /// Parallel-only: solves whose COP turned out signature-pruned once an
  /// earlier COP of the same window reported; their results are discarded
  /// so stats match the sequential run.
  uint64_t SpeculativeSolves = 0;
};

} // namespace

DetectionResult rvp::detectRaces(const Trace &T, Technique Tech,
                                 const DetectorOptions &Options) {
  return Driver(T, Tech, Options).run();
}
