//===- detect/Cop.cpp - Conflicting operation pairs ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Cop.h"

using namespace rvp;

std::vector<Cop> rvp::collectCops(const Trace &T, Span S) {
  std::vector<Cop> Cops;
  for (VarId Var = 0; Var < T.numVars(); ++Var) {
    const std::vector<EventId> &Accesses = T.accessesOf(Var);
    // Restrict to the window.
    size_t Begin = 0;
    while (Begin < Accesses.size() && Accesses[Begin] < S.Begin)
      ++Begin;
    size_t End = Begin;
    while (End < Accesses.size() && Accesses[End] < S.End)
      ++End;
    for (size_t I = Begin; I < End; ++I) {
      const Event &A = T[Accesses[I]];
      if (A.Volatile)
        continue;
      for (size_t J = I + 1; J < End; ++J) {
        const Event &B = T[Accesses[J]];
        if (conflicting(A, B))
          Cops.push_back({Accesses[I], Accesses[J]});
      }
    }
  }
  return Cops;
}
