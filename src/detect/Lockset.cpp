//===- detect/Lockset.cpp - Locksets and the hybrid quick check -------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Lockset.h"

#include <algorithm>
#include <map>

using namespace rvp;

LocksetIndex::LocksetIndex(const Trace &T, Span S) : Window(S) {
  Held.resize(S.size());
  // Per-thread multiset of held locks; a window may start inside critical
  // sections, in which case releases without acquires are ignored (the
  // held-set is then an under-approximation, which only makes the filter
  // pass more COPs — it stays a superset of the real races).
  std::map<ThreadId, std::vector<LockId>> PerThread;
  for (EventId Id = S.Begin; Id < S.End; ++Id) {
    const Event &E = T[Id];
    std::vector<LockId> &Locks = PerThread[E.Tid];
    if (E.isAcquire())
      Locks.push_back(E.Target);
    else if (E.isRelease()) {
      auto It = std::find(Locks.begin(), Locks.end(), E.Target);
      if (It != Locks.end())
        Locks.erase(It);
    }
    Held[Id - S.Begin] = Locks;
    std::sort(Held[Id - S.Begin].begin(), Held[Id - S.Begin].end());
  }
}

bool LocksetIndex::disjoint(EventId A, EventId B) const {
  const std::vector<LockId> &La = heldAt(A);
  const std::vector<LockId> &Lb = heldAt(B);
  size_t I = 0, J = 0;
  while (I < La.size() && J < Lb.size()) {
    if (La[I] == Lb[J])
      return false;
    if (La[I] < Lb[J])
      ++I;
    else
      ++J;
  }
  return true;
}
