//===- detect/Closure.cpp - Happens-before style closures -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/Closure.h"

#include <cassert>
#include <unordered_map>

using namespace rvp;

EventClosure::EventClosure(const Trace &T, Span S, ClosureConfig Config,
                           const std::vector<ExtraEdge> &Extra)
    : T(T), Window(S) {
  uint32_t NumThreads = T.numThreads();
  Clocks.assign(S.size(), VectorClock(NumThreads));

  std::vector<VectorClock> ThreadClock(NumThreads,
                                       VectorClock(NumThreads));
  std::unordered_map<ThreadId, VectorClock> PendingBegin; // fork -> begin
  std::unordered_map<ThreadId, VectorClock> EndClock;     // end -> join
  std::unordered_map<LockId, VectorClock> LastRelease;    // lock sync
  std::unordered_map<VarId, VectorClock> LastVolatileWrite;
  std::unordered_map<uint32_t, VectorClock> WaitReleaseClock; // by match
  std::unordered_map<uint32_t, VectorClock> NotifyClock;      // by match

  // Extra edges, grouped by target event.
  std::unordered_map<EventId, std::vector<EventId>> ExtraByTarget;
  for (const ExtraEdge &E : Extra) {
    assert(E.From < E.To && "extra edges must point forward");
    ExtraByTarget[E.To].push_back(E.From);
  }

  for (EventId Id = S.Begin; Id < S.End; ++Id) {
    const Event &E = T[Id];
    VectorClock &Current = ThreadClock[E.Tid];

    // Inbound edges join into the thread's clock before the event ticks.
    switch (E.Kind) {
    case EventKind::Begin:
      if (Config.ForkJoin) {
        auto It = PendingBegin.find(E.Tid);
        if (It != PendingBegin.end())
          Current.join(It->second);
      }
      break;
    case EventKind::Join:
      if (Config.ForkJoin) {
        auto It = EndClock.find(E.Target);
        if (It != EndClock.end())
          Current.join(It->second);
      }
      break;
    case EventKind::Acquire:
      if (Config.LockSync) {
        auto It = LastRelease.find(E.Target);
        if (It != LastRelease.end())
          Current.join(It->second);
      }
      if (Config.WaitNotify && E.Aux != 0) {
        auto It = NotifyClock.find(E.Aux);
        if (It != NotifyClock.end())
          Current.join(It->second);
      }
      break;
    case EventKind::Notify:
      if (Config.WaitNotify && E.Aux != 0) {
        auto It = WaitReleaseClock.find(E.Aux);
        if (It != WaitReleaseClock.end())
          Current.join(It->second);
      }
      break;
    case EventKind::Read:
      if (Config.VolatileSync && E.Volatile) {
        auto It = LastVolatileWrite.find(E.Target);
        if (It != LastVolatileWrite.end())
          Current.join(It->second);
      }
      break;
    case EventKind::Write:
      if (Config.VolatileSync && E.Volatile) {
        auto It = LastVolatileWrite.find(E.Target);
        if (It != LastVolatileWrite.end())
          Current.join(It->second);
      }
      break;
    default:
      break;
    }
    if (!ExtraByTarget.empty()) {
      auto It = ExtraByTarget.find(Id);
      if (It != ExtraByTarget.end())
        for (EventId From : It->second)
          Current.join(Clocks[From - S.Begin]);
    }

    // The event itself.
    Current.tick(E.Tid);
    Clocks[Id - S.Begin] = Current;

    // Outbound edges snapshot the clock after the event.
    switch (E.Kind) {
    case EventKind::Fork:
      if (Config.ForkJoin)
        PendingBegin[E.Target] = Current;
      break;
    case EventKind::End:
      if (Config.ForkJoin)
        EndClock[E.Tid] = Current;
      break;
    case EventKind::Release:
      if (Config.LockSync)
        LastRelease[E.Target] = Current;
      if (Config.WaitNotify && E.Aux != 0)
        WaitReleaseClock[E.Aux] = Current;
      break;
    case EventKind::Notify:
      if (Config.WaitNotify && E.Aux != 0)
        NotifyClock[E.Aux] = Current;
      break;
    case EventKind::Write:
      if (Config.VolatileSync && E.Volatile)
        LastVolatileWrite[E.Target] = Current;
      break;
    default:
      break;
    }
  }
}
