//===- detect/Cop.h - Conflicting operation pairs ----------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// COP extraction (Definition 3): pairs of same-variable accesses from
/// different threads, at least one a write, volatile accesses excluded.
/// Pairs are oriented in trace order (First occurs before Second) and carry
/// the race *signature* — the unordered pair of static program locations —
/// used for reporting and for the signature pruning of Section 4.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_COP_H
#define RVP_DETECT_COP_H

#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace rvp {

/// Unordered pair of static locations identifying "the same race".
struct RaceSignature {
  LocId LocA = UnknownLoc; ///< min of the two
  LocId LocB = UnknownLoc; ///< max of the two

  static RaceSignature of(const Trace &T, EventId A, EventId B) {
    LocId La = T[A].Loc;
    LocId Lb = T[B].Loc;
    if (La > Lb)
      std::swap(La, Lb);
    return {La, Lb};
  }

  bool operator==(const RaceSignature &O) const {
    return LocA == O.LocA && LocB == O.LocB;
  }
  bool operator<(const RaceSignature &O) const {
    return LocA != O.LocA ? LocA < O.LocA : LocB < O.LocB;
  }
  uint64_t key() const {
    return (static_cast<uint64_t>(LocA) << 32) | LocB;
  }
};

/// A conflicting operation pair, trace-ordered: First < Second.
struct Cop {
  EventId First = InvalidEvent;
  EventId Second = InvalidEvent;
};

/// Enumerates all COPs within \p S, in deterministic order (by variable,
/// then by position). Quadratic per variable in the number of accesses;
/// callers bound work via windowing.
std::vector<Cop> collectCops(const Trace &T, Span S);

} // namespace rvp

#endif // RVP_DETECT_COP_H
