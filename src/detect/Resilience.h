//===- detect/Resilience.h - Budget escalation & degradation -----*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The degradation policy shared by the race, atomicity, and deadlock
/// drivers (docs/ROBUSTNESS.md). A SolveHost owns everything that can go
/// wrong between "formula encoded" and "COP decided":
///
///  * budget escalation — an Unknown answer is retried through the
///    `--retry-budgets` ladder (with a tiny seeded jittered backoff
///    between attempts) before the COP is given up;
///  * session quarantine — a poisoned incremental session (failed
///    clause-database allocation, backend exception, injected
///    `session.corrupt`) or a long streak of failed queries gets the
///    session quarantined and rebuilt once; a second quarantine drops the
///    host to one-shot fresh-solver queries for the rest of the window;
///  * backend fallback — when the named backend's factory reports
///    unavailable (no Z3 in the build, or the injected `z3.unavailable`
///    outage), the host silently falls back to the in-tree idl solver.
///
/// Soundness: the host only ever *repeats* a query against an equivalent
/// solver; it never invents an answer. A COP that stays Unknown after the
/// whole ladder is reported in the `unknown` section, never as a race.
///
/// With an empty ladder (the default) and no faults, decide() performs
/// exactly one attempt at the base budget — byte-identical behaviour to a
/// pipeline without this layer.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_RESILIENCE_H
#define RVP_DETECT_RESILIENCE_H

#include "smt/Solver.h"

#include <memory>
#include <string>
#include <vector>

namespace rvp {

/// Parses a `--retry-budgets` list ("50ms,250ms,1s") into seconds.
/// Accepted suffixes: us, ms, s (bare numbers mean seconds). Returns false
/// and fills \p Error on malformed input; an empty spec yields an empty
/// ladder (single attempt at the base budget).
bool parseBudgetList(const std::string &Spec, std::vector<double> &Out,
                     std::string &Error);

/// What the resilience layer had to do, accumulated per host and summed by
/// the drivers into DetectionStats (and from there into the telemetry
/// registry; see docs/OBSERVABILITY.md).
struct ResilienceStats {
  /// Extra solve attempts beyond each COP's first (solver.retries).
  uint64_t Retries = 0;
  /// Sessions quarantined for corruption or failed-query streaks
  /// (solver.degraded_sessions).
  uint64_t DegradedSessions = 0;
  /// Backend factory failures absorbed by falling back to idl.
  uint64_t BackendFallbacks = 0;

  ResilienceStats &operator+=(const ResilienceStats &O) {
    Retries += O.Retries;
    DegradedSessions += O.DegradedSessions;
    BackendFallbacks += O.BackendFallbacks;
    return *this;
  }
};

/// One host per window (per worker when solving in parallel): holds the
/// incremental session — or the one-shot solver the host degrades to — and
/// runs the escalation ladder for every COP of that window.
class SolveHost {
public:
  /// \p SolverName       backend to try first ("idl" or "z3");
  /// \p Incremental      decide through a persistent session;
  /// \p BaseBudgetSeconds the per-COP budget when the ladder is empty;
  /// \p RetryBudgets     escalating per-attempt budgets (empty = one
  ///                     attempt at the base budget);
  /// \p JitterSeed       seeds the backoff jitter (deterministic per host).
  SolveHost(std::string SolverName, bool Incremental,
            double BaseBudgetSeconds, std::vector<double> RetryBudgets,
            uint64_t JitterSeed);
  ~SolveHost();

  struct Outcome {
    SatResult Sat = SatResult::Unknown;
    /// Solve attempts spent on this COP (1 = no retry).
    uint32_t Attempts = 1;
    /// True when \p ModelOut was filled by a one-shot solve of the
    /// caller's own builder — directly usable as a witness model. False in
    /// session mode, where models depend on session history and callers
    /// re-derive them one-shot (Driver::rederiveModel).
    bool ModelFromSolve = false;
  };

  /// Decides \p Root, escalating through the budget ladder on Unknown and
  /// degrading the session as needed. \p ModelOut (may be null) is only
  /// filled when the outcome says ModelFromSolve.
  Outcome decide(const FormulaBuilder &FB, NodeRef Root,
                 OrderModel *ModelOut);

  const ResilienceStats &stats() const { return Stats; }

  /// Name of the backend actually answering queries right now.
  const char *backendName() const;

private:
  SatResult attemptOnce(const FormulaBuilder &FB, NodeRef Root,
                        double BudgetSeconds, OrderModel *ModelOut,
                        bool &FromSolve);
  void ensureSession();
  void ensureSolver();
  void quarantineSession();
  void backoff();

  /// Consecutive failed session queries that get the session quarantined
  /// on suspicion of sickness even without a poisoned() report.
  static constexpr uint64_t FailedStreakLimit = 4;

  std::string SolverName;
  bool Incremental;
  double BaseBudgetSeconds;
  std::vector<double> RetryBudgets;
  uint64_t RngState;

  std::unique_ptr<SmtSession> Session;
  std::unique_ptr<SmtSolver> Solver;
  /// Quarantine history: after one rebuild the next quarantine is final.
  bool RebuiltOnce = false;
  /// Session path abandoned for this window; all queries go one-shot.
  bool SessionDead = false;
  uint64_t FailedStreak = 0;
  ResilienceStats Stats;
};

} // namespace rvp

#endif // RVP_DETECT_RESILIENCE_H
