//===- detect/Deadlock.h - Predictive deadlock detection ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Another maximal-causal-model property (Section 2.5): predicting
/// resource deadlocks from one — possibly deadlock-free — recorded
/// execution. A candidate is a pair of *lock dependencies*: thread A
/// acquires lock m while holding lock l, thread B acquires l while
/// holding m. The deadlock is real iff a feasible reordering reaches the
/// hold-and-wait state: each request falls inside the other thread's held
/// section, with the usual MHB/lock/control-flow feasibility constraints
/// and the requesting sections' own mutual-exclusion constraints dropped
/// (in the deadlocked prefix they never start).
///
/// As with races, a satisfying order is a witness; its thread schedule can
/// be replayed in the interpreter to drive the program into the actual
/// deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_DEADLOCK_H
#define RVP_DETECT_DEADLOCK_H

#include "detect/Detect.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace rvp {

struct DeadlockReport {
  ThreadId ThreadA = 0, ThreadB = 0;
  LockId LockHeldByA = 0; ///< requested by B
  LockId LockHeldByB = 0; ///< requested by A
  EventId RequestA = InvalidEvent; ///< A's acquire of LockHeldByB
  EventId RequestB = InvalidEvent; ///< B's acquire of LockHeldByA
  std::string LocRequestA, LocRequestB;
  /// Witness order over the window; truncating it at the requests gives a
  /// schedule that drives the program into the deadlock.
  std::vector<EventId> Witness;
  bool WitnessValid = false;
};

struct DeadlockResult {
  std::vector<DeadlockReport> Deadlocks;
  /// Dependency pairs the solver never decided within every retry budget —
  /// First/Second hold the two lock requests. Maybe-deadlocks, kept out of
  /// Deadlocks so degradation stays sound (docs/ROBUSTNESS.md).
  std::vector<UnknownReport> Unknowns;
  DetectionStats Stats;
};

/// Predicts two-thread/two-lock deadlocks from \p T, using the shared
/// windowing/budget/solver options.
DeadlockResult detectDeadlocks(const Trace &T,
                               const DetectorOptions &Options =
                                   DetectorOptions());

} // namespace rvp

#endif // RVP_DETECT_DEADLOCK_H
