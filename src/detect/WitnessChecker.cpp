//===- detect/WitnessChecker.cpp - Race witness validation ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "detect/WitnessChecker.h"

#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace rvp;

namespace {

/// Shared validation core: permutation, per-thread program order, MHB
/// event rules, lock mutual exclusion, and the concrete-read closure
/// seeded from the guarding branches of \p Seeds. Fills \p PosOut with
/// the witness position of every event.
WitnessCheckResult checkCore(const Trace &T, Span S,
                             const std::vector<EventId> &Order,
                             const std::vector<EventId> &Seeds,
                             const RaceEncoder &Encoder,
                             const std::vector<Value> &Initial,
                             std::vector<uint32_t> &PosOut,
                             const std::unordered_set<EventId>
                                 &SkipLockEffects = {}) {
  auto fail = [](std::string Msg) {
    return WitnessCheckResult{false, std::move(Msg)};
  };

  // 1. Permutation of the window.
  if (Order.size() != S.size())
    return fail("witness does not cover the window");
  std::vector<uint32_t> PosOf(S.size(), UINT32_MAX);
  for (uint32_t Pos = 0; Pos < Order.size(); ++Pos) {
    EventId Id = Order[Pos];
    if (!S.contains(Id))
      return fail("witness contains an event outside the window");
    if (PosOf[Id - S.Begin] != UINT32_MAX)
      return fail("witness repeats an event");
    PosOf[Id - S.Begin] = Pos;
  }
  auto posOf = [&](EventId Id) { return PosOf[Id - S.Begin]; };

  // 2. Program order per thread; fork/begin, end/join, wait/notify rules;
  //    lock mutual exclusion.
  std::unordered_map<ThreadId, EventId> LastOfThread;
  std::unordered_map<LockId, ThreadId> Holder;
  std::unordered_set<LockId> HeldAtStart;
  std::unordered_map<uint32_t, uint32_t> NotifySeen; // match -> pos

  // Sections active at window entry (release without acquire) hold their
  // lock from the start.
  for (LockId Lock = 0; Lock < T.numLocks(); ++Lock)
    for (const LockPair &P : T.lockPairsOf(Lock))
      if (P.ReleaseId != InvalidEvent && S.contains(P.ReleaseId) &&
          (P.AcquireId == InvalidEvent || !S.contains(P.AcquireId))) {
        Holder[Lock] = P.Tid;
        HeldAtStart.insert(Lock);
      }

  for (uint32_t Pos = 0; Pos < Order.size(); ++Pos) {
    const EventId Id = Order[Pos];
    const Event &E = T[Id];

    auto It = LastOfThread.find(E.Tid);
    if (It != LastOfThread.end() && It->second > Id)
      return fail(formatString("program order violated in thread %s",
                               T.threadName(E.Tid).c_str()));
    LastOfThread[E.Tid] = Id;

    if (SkipLockEffects.count(Id)) {
      // Deadlock queries: this event is a pending lock request (or the
      // release of one); it has no lock-state effect in the witness.
      continue;
    }

    switch (E.Kind) {
    case EventKind::Begin: {
      EventId Fork = T.forkOf(E.Tid);
      if (Fork != InvalidEvent && S.contains(Fork) && posOf(Fork) > Pos)
        return fail("begin before its fork");
      break;
    }
    case EventKind::Join: {
      EventId End = T.endOf(E.Target);
      if (End != InvalidEvent && S.contains(End) && posOf(End) > Pos)
        return fail("join before the joined thread's end");
      break;
    }
    case EventKind::Acquire: {
      auto HolderIt = Holder.find(E.Target);
      if (HolderIt != Holder.end())
        return fail(formatString("lock %s acquired while held",
                                 T.lockName(E.Target).c_str()));
      Holder[E.Target] = E.Tid;
      if (E.Aux != 0) {
        auto NotifyIt = NotifySeen.find(E.Aux);
        EventId Notify = T.notifyOfMatch(E.Aux);
        if (Notify != InvalidEvent && S.contains(Notify) &&
            NotifyIt == NotifySeen.end())
          return fail("wait resumed before its notify");
      }
      break;
    }
    case EventKind::Release: {
      auto HolderIt = Holder.find(E.Target);
      if (HolderIt == Holder.end() || HolderIt->second != E.Tid)
        return fail(formatString("lock %s released by non-holder",
                                 T.lockName(E.Target).c_str()));
      Holder.erase(HolderIt);
      break;
    }
    case EventKind::Notify:
      if (E.Aux != 0)
        NotifySeen[E.Aux] = Pos;
      break;
    default:
      break;
    }
  }

  // 3. Concrete reads: every read that the query's control flow depends
  //    on must observe its recorded value in the witness (the
  //    construction from Theorem 3's proof). Seed with the guarding
  //    branches of the query events, close over thread prefixes and
  //    reads-from edges.
  std::unordered_set<EventId> MustConcrete;
  std::vector<EventId> Work;
  auto need = [&](EventId Id) {
    if (MustConcrete.insert(Id).second)
      Work.push_back(Id);
  };
  for (EventId Seed : Seeds)
    for (EventId Branch : Encoder.guardingBranches(Seed))
      need(Branch);

  // Precompute reads-from in witness order per read.
  std::unordered_map<VarId, EventId> LastWrite;
  std::unordered_map<EventId, EventId> ReadsFrom; // read -> write or Invalid
  for (EventId Id : Order) {
    const Event &E = T[Id];
    if (E.isRead()) {
      auto WIt = LastWrite.find(E.Target);
      ReadsFrom[Id] = WIt == LastWrite.end() ? InvalidEvent : WIt->second;
    } else if (E.isWrite()) {
      LastWrite[E.Target] = Id;
    }
  }

  while (!Work.empty()) {
    EventId Id = Work.back();
    Work.pop_back();
    const Event &E = T[Id];
    if (E.Kind == EventKind::Branch || E.isWrite()) {
      // All earlier reads of the same thread must be concrete.
      for (EventId Prev : T.threadEvents(E.Tid)) {
        if (Prev >= Id)
          break;
        if (S.contains(Prev) && T[Prev].isRead())
          need(Prev);
      }
      continue;
    }
    if (!E.isRead())
      continue;
    EventId From = ReadsFrom.at(Id);
    if (From == InvalidEvent) {
      Value Expect =
          E.Target < Initial.size() ? Initial[E.Target] : 0;
      if (E.Data != Expect)
        return fail(formatString(
            "concrete read %u observes the initial value %lld, expected "
            "%lld",
            Id, static_cast<long long>(Expect),
            static_cast<long long>(E.Data)));
      continue;
    }
    if (T[From].Data != E.Data)
      return fail(formatString(
          "concrete read %u observes %lld from write %u, expected %lld",
          Id, static_cast<long long>(T[From].Data), From,
          static_cast<long long>(E.Data)));
    need(From); // the justifying write must itself be concrete
  }

  (void)HeldAtStart;
  PosOut = std::move(PosOf);
  return {};
}

} // namespace

WitnessCheckResult rvp::checkWitness(const Trace &T, Span S,
                                     const std::vector<EventId> &Order,
                                     EventId A, EventId B,
                                     const RaceEncoder &Encoder,
                                     const EventClosure &Mhb,
                                     const std::vector<Value> &Initial) {
  (void)Mhb;
  std::vector<uint32_t> Pos;
  WitnessCheckResult Core =
      checkCore(T, S, Order, {A, B}, Encoder, Initial, Pos);
  if (!Core.Ok)
    return Core;
  // Adjacency of the race pair (either orientation, footnote 2).
  uint32_t PosA = Pos[A - S.Begin];
  uint32_t PosB = Pos[B - S.Begin];
  if (PosA + 1 != PosB && PosB + 1 != PosA)
    return WitnessCheckResult{false,
                              "race events are not adjacent in the witness"};
  return {};
}

WitnessCheckResult rvp::checkDeadlockWitness(
    const Trace &T, Span S, const std::vector<EventId> &Order,
    EventId ReqA, EventId ReqB, const LockPair &OutA, const LockPair &OutB,
    const std::unordered_set<EventId> &SkipLockEffects,
    const RaceEncoder &Encoder, const EventClosure &Mhb,
    const std::vector<Value> &Initial) {
  (void)Mhb;
  std::vector<uint32_t> Pos;
  WitnessCheckResult Core = checkCore(T, S, Order, {ReqA, ReqB}, Encoder,
                                      Initial, Pos, SkipLockEffects);
  if (!Core.Ok)
    return Core;
  auto posOf = [&](EventId Id) { return Pos[Id - S.Begin]; };
  if (!(posOf(OutB.AcquireId) < posOf(ReqA) &&
        posOf(ReqA) < posOf(OutB.ReleaseId)))
    return WitnessCheckResult{
        false, "request A does not fall inside the held section"};
  if (!(posOf(OutA.AcquireId) < posOf(ReqB) &&
        posOf(ReqB) < posOf(OutA.ReleaseId)))
    return WitnessCheckResult{
        false, "request B does not fall inside the held section"};
  return {};
}

WitnessCheckResult rvp::checkAtomicityWitness(
    const Trace &T, Span S, const std::vector<EventId> &Order,
    EventId First, EventId Remote, EventId Second,
    const RaceEncoder &Encoder, const EventClosure &Mhb,
    const std::vector<Value> &Initial) {
  (void)Mhb;
  std::vector<uint32_t> Pos;
  WitnessCheckResult Core =
      checkCore(T, S, Order, {First, Remote, Second}, Encoder, Initial,
                Pos);
  if (!Core.Ok)
    return Core;
  if (!(Pos[First - S.Begin] < Pos[Remote - S.Begin] &&
        Pos[Remote - S.Begin] < Pos[Second - S.Begin]))
    return WitnessCheckResult{
        false, "remote access is not between the atomic pair"};
  return {};
}
