//===- detect/Closure.h - Happens-before style closures ----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector-clock closure over the events of one window, with configurable
/// edge sets. One engine serves three consumers:
///
///  * MHB (must happen-before, Section 2.2/3.2): program order + fork/begin
///    + end/join + the wait/notify ordering — the partial order every
///    reordering must respect. Used by the constraint builder and the
///    quick check.
///  * HB (Lamport happens-before): MHB + release->later-acquire edges per
///    lock + volatile write->access edges. The classic sound detector.
///  * CP: MHB + volatile edges + an explicit set of *active* lock edges,
///    recomputed per fixpoint round by the CP detector.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_DETECT_CLOSURE_H
#define RVP_DETECT_CLOSURE_H

#include "detect/VectorClock.h"
#include "trace/Trace.h"

#include <cassert>
#include <vector>

namespace rvp {

struct ClosureConfig {
  bool ForkJoin = true;     ///< fork->begin, end->join
  bool WaitNotify = true;   ///< release(wait)->notify->acquire(wait)
  bool LockSync = false;    ///< release->later acquire, same lock
  bool VolatileSync = false; ///< volatile write->later access, same var

  static ClosureConfig mhb() { return {true, true, false, false}; }
  static ClosureConfig hb() { return {true, true, true, true}; }
  /// CP base order: HB minus the lock edges (re-added selectively).
  static ClosureConfig cpBase() { return {true, true, false, true}; }
};

/// An ordered edge between two events of the window, used to inject the
/// CP detector's active lock edges.
struct ExtraEdge {
  EventId From = InvalidEvent;
  EventId To = InvalidEvent;
};

class EventClosure {
public:
  /// Builds per-event clocks for \p S. \p Extra edges must point forward
  /// in trace order (From < To), as all lock edges do.
  EventClosure(const Trace &T, Span S, ClosureConfig Config,
               const std::vector<ExtraEdge> &Extra = {});

  /// True iff \p A happens before \p B in this closure (strict). Inline
  /// because guardingBranches' binary search makes this the hottest call
  /// on the sliced encode path. Same-thread pairs short-circuit on trace
  /// order: every closure config includes program order, so within a
  /// thread `ordered` and `<` coincide.
  bool ordered(EventId A, EventId B) const {
    assert(Window.contains(A) && Window.contains(B) &&
           "events outside the closure window");
    if (A == B)
      return false;
    const Event &EA = T[A];
    if (EA.Tid == T[B].Tid)
      return A < B;
    const VectorClock &CA = Clocks[A - Window.Begin];
    const VectorClock &CB = Clocks[B - Window.Begin];
    return CA.get(EA.Tid) <= CB.get(EA.Tid);
  }

  const VectorClock &clockOf(EventId Id) const {
    return Clocks[Id - Window.Begin];
  }

  Span span() const { return Window; }

private:
  const Trace &T;
  Span Window;
  std::vector<VectorClock> Clocks; ///< indexed by Id - Window.Begin
};

} // namespace rvp

#endif // RVP_DETECT_CLOSURE_H
