//===- lang/Lexer.h - MiniRV lexer -------------------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniRV. Supports `//` line comments and
/// `/* */` block comments; integers are 64-bit signed decimals.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_LANG_LEXER_H
#define RVP_LANG_LEXER_H

#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace rvp {

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Produces the next token; EndOfFile forever once exhausted. Malformed
  /// input yields an Error token carrying a message in Text.
  Token next();

  /// Tokenizes the whole input (including the final EndOfFile).
  static std::vector<Token> tokenize(std::string_view Source);

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool skipTrivia(); ///< whitespace and comments; false on bad comment
  Token make(TokenKind Kind, std::string Text = "");

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint32_t TokenLine = 1;
  uint32_t TokenColumn = 1;
};

} // namespace rvp

#endif // RVP_LANG_LEXER_H
