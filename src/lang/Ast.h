//===- lang/Ast.h - MiniRV abstract syntax -----------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniRV. The language is deliberately small: shared (optionally
/// volatile) 64-bit integer scalars and fixed-size arrays, locks, statically
/// named threads spawned/joined at runtime, wait/notify on locks,
/// structured control flow, and thread-local variables. This covers every
/// construct the paper's traces contain (Figure 3) plus the implicit-branch
/// cases of Section 4 (array accesses with non-constant indices).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_LANG_AST_H
#define RVP_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rvp {

enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

enum class UnOp : uint8_t { Neg, Not };

/// Expression node; a single tagged struct keeps the tree walkable without
/// RTTI.
struct Expr {
  enum class Kind : uint8_t {
    IntLit, ///< IntValue
    Name,   ///< Name (local or shared scalar; resolved by the compiler)
    Index,  ///< Name[ Lhs ] — shared array element
    Unary,  ///< UOp applied to Lhs
    Binary, ///< Lhs Op Rhs
  };

  Kind K;
  uint32_t Line = 0;
  uint32_t Col = 0;
  int64_t IntValue = 0;
  std::string Name;
  BinOp Op = BinOp::Add;
  UnOp UOp = UnOp::Neg;
  std::unique_ptr<Expr> Lhs, Rhs;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Statement node.
struct Stmt {
  enum class Kind : uint8_t {
    LocalDecl,   ///< local Name [= Value]
    Assign,      ///< Name = Value (local or shared scalar)
    ArrayAssign, ///< Name[Index] = Value
    If,          ///< if (Cond) Body [else ElseBody]
    While,       ///< while (Cond) Body
    Lock,        ///< lock Name
    Unlock,      ///< unlock Name
    Sync,        ///< sync Name { Body } — acquire/release wrapper
    Spawn,       ///< spawn Name
    Join,        ///< join Name
    Wait,        ///< wait Name
    Notify,      ///< notify Name
    NotifyAll,   ///< notifyall Name
    Assert,      ///< assert Value — records an error when 0
    Skip,        ///< no-op
  };

  Kind K;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Name;
  ExprPtr Index, Value, Cond;
  std::vector<std::unique_ptr<Stmt>> Body, ElseBody;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// `shared [volatile] name [\[size\]] [= init];`
struct SharedDecl {
  std::string Name;
  bool Volatile = false;
  int64_t Init = 0;
  uint32_t ArraySize = 0; ///< 0 for scalars
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// `lock name;`
struct LockDecl {
  std::string Name;
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// `thread name { ... }` or `main { ... }`.
struct ThreadDecl {
  std::string Name;
  bool IsMain = false;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::vector<StmtPtr> Body;
};

/// A whole MiniRV program.
struct Program {
  std::vector<SharedDecl> Shareds;
  std::vector<LockDecl> Locks;
  std::vector<ThreadDecl> Threads; ///< Threads[0] is main

  const ThreadDecl *findThread(const std::string &Name) const {
    for (const ThreadDecl &T : Threads)
      if (T.Name == Name)
        return &T;
    return nullptr;
  }

  const SharedDecl *findShared(const std::string &Name) const {
    for (const SharedDecl &D : Shareds)
      if (D.Name == Name)
        return &D;
    return nullptr;
  }
};

} // namespace rvp

#endif // RVP_LANG_AST_H
