//===- lang/Parser.h - MiniRV parser -----------------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniRV.
///
/// Grammar (EBNF):
///
///   program   ::= decl*
///   decl      ::= 'shared' ['volatile'] ident ['[' int ']'] ['=' int] ';'
///               | 'lock' ident ';'
///               | 'thread' ident block
///               | 'main' block
///   block     ::= '{' stmt* '}'
///   stmt      ::= 'local' ident ['=' expr] ';'
///               | ident '=' expr ';'
///               | ident '[' expr ']' '=' expr ';'
///               | 'if' '(' expr ')' block ['else' (block | if-stmt)]
///               | 'while' '(' expr ')' block
///               | 'lock' ident ';' | 'unlock' ident ';'
///               | 'sync' ident block
///               | 'spawn' ident ';' | 'join' ident ';'
///               | 'wait' ident ';' | 'notify' ident ';'
///               | 'notifyall' ident ';'
///               | 'assert' expr ';'
///               | 'skip' ';'
///   expr      ::= or-expr, with C precedence for
///                 || && (== !=) (< <= > >=) (+ -) (* / %) and unary - !
///
/// Exactly one 'main' is required; thread/lock/shared names share one
/// global namespace and must be unique.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_LANG_PARSER_H
#define RVP_LANG_PARSER_H

#include "lang/Ast.h"

#include <optional>
#include <string>
#include <string_view>

namespace rvp {

/// Parses MiniRV source. On failure returns std::nullopt and fills
/// \p Error with "line:col: message".
std::optional<Program> parseProgram(std::string_view Source,
                                    std::string &Error);

} // namespace rvp

#endif // RVP_LANG_PARSER_H
