//===- lang/Token.h - MiniRV tokens ------------------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token vocabulary of MiniRV, the small concurrent imperative language
/// this project uses in place of instrumented Java programs. See
/// lang/Parser.h for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_LANG_TOKEN_H
#define RVP_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace rvp {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Identifier,
  Integer,
  // Keywords.
  KwShared,
  KwVolatile,
  KwLock,     // both the declaration and the statement
  KwUnlock,
  KwSync,
  KwThread,
  KwMain,
  KwLocal,
  KwIf,
  KwElse,
  KwWhile,
  KwSpawn,
  KwJoin,
  KwWait,
  KwNotify,
  KwNotifyAll,
  KwAssert,
  KwSkip,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Assign, // =
  // Operators.
  OrOr,
  AndAnd,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Not,
  // Sentinels.
  EndOfFile,
  Error,
};

/// Returns a human-readable token kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;  ///< identifier spelling or literal text
  int64_t Value = 0; ///< integer literals
  uint32_t Line = 0; ///< 1-based
  uint32_t Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace rvp

#endif // RVP_LANG_TOKEN_H
