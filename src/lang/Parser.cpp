//===- lang/Parser.cpp - MiniRV parser -------------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/StringUtils.h"

#include <unordered_set>

using namespace rvp;

namespace {

class Parser {
public:
  explicit Parser(std::string_view Source) : Lex(Source) {
    Current = Lex.next();
  }

  std::optional<Program> run(std::string &Error) {
    Program P;
    bool SawMain = false;
    while (!Current.is(TokenKind::EndOfFile)) {
      if (Failed)
        break;
      if (Current.is(TokenKind::KwShared)) {
        parseSharedDecl(P);
      } else if (Current.is(TokenKind::KwLock)) {
        uint32_t Line = Current.Line;
        uint32_t Col = Current.Column;
        consume();
        std::string Name = expectIdent("lock name");
        expect(TokenKind::Semicolon);
        declareName(Name, "lock");
        P.Locks.push_back({Name, Line, Col});
      } else if (Current.is(TokenKind::KwThread)) {
        uint32_t Line = Current.Line;
        uint32_t Col = Current.Column;
        consume();
        ThreadDecl T;
        T.Name = expectIdent("thread name");
        T.Line = Line;
        T.Col = Col;
        declareName(T.Name, "thread");
        T.Body = parseBlock();
        P.Threads.push_back(std::move(T));
      } else if (Current.is(TokenKind::KwMain)) {
        uint32_t Line = Current.Line;
        uint32_t Col = Current.Column;
        consume();
        if (SawMain)
          fail(Line, 1, "duplicate 'main'");
        SawMain = true;
        ThreadDecl T;
        T.Name = "main";
        T.IsMain = true;
        T.Line = Line;
        T.Col = Col;
        T.Body = parseBlock();
        // Main goes first so ThreadId 0 is always the root thread.
        P.Threads.insert(P.Threads.begin(), std::move(T));
      } else {
        fail(Current.Line, Current.Column,
             std::string("expected a declaration, found ") +
                 tokenKindName(Current.Kind));
      }
    }
    if (!Failed && !SawMain)
      fail(1, 1, "program has no 'main'");
    if (Failed) {
      Error = ErrorMessage;
      return std::nullopt;
    }
    return P;
  }

private:
  // ------------------------------------------------------------ helpers
  void consume() { Current = Lex.next(); }

  void fail(uint32_t Line, uint32_t Column, const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    ErrorMessage = formatString("%u:%u: %s", Line, Column, Message.c_str());
  }

  void expect(TokenKind Kind) {
    if (Failed)
      return;
    if (Current.is(TokenKind::Error)) {
      fail(Current.Line, Current.Column, Current.Text);
      return;
    }
    if (!Current.is(Kind)) {
      fail(Current.Line, Current.Column,
           std::string("expected ") + tokenKindName(Kind) + ", found " +
               tokenKindName(Current.Kind));
      return;
    }
    consume();
  }

  std::string expectIdent(const char *What) {
    if (Failed)
      return "";
    if (!Current.is(TokenKind::Identifier)) {
      fail(Current.Line, Current.Column,
           std::string("expected ") + What + ", found " +
               tokenKindName(Current.Kind));
      return "";
    }
    std::string Name = Current.Text;
    consume();
    return Name;
  }

  int64_t expectInteger() {
    if (Failed)
      return 0;
    bool Negative = false;
    if (Current.is(TokenKind::Minus)) {
      Negative = true;
      consume();
    }
    if (!Current.is(TokenKind::Integer)) {
      fail(Current.Line, Current.Column,
           std::string("expected integer, found ") +
               tokenKindName(Current.Kind));
      return 0;
    }
    int64_t Value = Current.Value;
    consume();
    return Negative ? -Value : Value;
  }

  void declareName(const std::string &Name, const char *What) {
    if (Name.empty())
      return;
    if (!DeclaredNames.insert(Name).second)
      fail(Current.Line, Current.Column,
           "redefinition of '" + Name + "' as " + What);
  }

  // ------------------------------------------------------- declarations
  void parseSharedDecl(Program &P) {
    SharedDecl D;
    D.Line = Current.Line;
    D.Col = Current.Column;
    consume(); // 'shared'
    if (Current.is(TokenKind::KwVolatile)) {
      D.Volatile = true;
      consume();
    }
    D.Name = expectIdent("variable name");
    declareName(D.Name, "shared variable");
    if (Current.is(TokenKind::LBracket)) {
      consume();
      int64_t Size = expectInteger();
      if (!Failed && (Size <= 0 || Size > (1 << 20)))
        fail(D.Line, 1, "array size must be in [1, 2^20]");
      D.ArraySize = static_cast<uint32_t>(Size);
      expect(TokenKind::RBracket);
      if (D.Volatile)
        fail(D.Line, 1, "volatile arrays are not supported");
    }
    if (Current.is(TokenKind::Assign)) {
      consume();
      D.Init = expectInteger();
    }
    expect(TokenKind::Semicolon);
    P.Shareds.push_back(std::move(D));
  }

  // ---------------------------------------------------------- statements
  std::vector<StmtPtr> parseBlock() {
    std::vector<StmtPtr> Body;
    expect(TokenKind::LBrace);
    while (!Failed && !Current.is(TokenKind::RBrace)) {
      if (Current.is(TokenKind::EndOfFile)) {
        fail(Current.Line, Current.Column, "unterminated block");
        break;
      }
      StmtPtr S = parseStmt();
      if (S)
        Body.push_back(std::move(S));
    }
    expect(TokenKind::RBrace);
    return Body;
  }

  StmtPtr makeStmt(Stmt::Kind K, uint32_t Line, uint32_t Col) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = Line;
    S->Col = Col;
    return S;
  }

  StmtPtr parseStmt() {
    uint32_t Line = Current.Line;
    uint32_t Col = Current.Column;
    switch (Current.Kind) {
    case TokenKind::KwLocal: {
      consume();
      StmtPtr S = makeStmt(Stmt::Kind::LocalDecl, Line, Col);
      S->Name = expectIdent("local variable name");
      if (Current.is(TokenKind::Assign)) {
        consume();
        S->Value = parseExpr();
      }
      expect(TokenKind::Semicolon);
      return S;
    }
    case TokenKind::Identifier: {
      std::string Name = Current.Text;
      consume();
      if (Current.is(TokenKind::LBracket)) {
        consume();
        StmtPtr S = makeStmt(Stmt::Kind::ArrayAssign, Line, Col);
        S->Name = std::move(Name);
        S->Index = parseExpr();
        expect(TokenKind::RBracket);
        expect(TokenKind::Assign);
        S->Value = parseExpr();
        expect(TokenKind::Semicolon);
        return S;
      }
      StmtPtr S = makeStmt(Stmt::Kind::Assign, Line, Col);
      S->Name = std::move(Name);
      expect(TokenKind::Assign);
      S->Value = parseExpr();
      expect(TokenKind::Semicolon);
      return S;
    }
    case TokenKind::KwIf: {
      consume();
      StmtPtr S = makeStmt(Stmt::Kind::If, Line, Col);
      expect(TokenKind::LParen);
      S->Cond = parseExpr();
      expect(TokenKind::RParen);
      S->Body = parseBlock();
      if (Current.is(TokenKind::KwElse)) {
        consume();
        if (Current.is(TokenKind::KwIf)) {
          // else-if chains nest as a single-statement else block.
          StmtPtr Nested = parseStmt();
          if (Nested)
            S->ElseBody.push_back(std::move(Nested));
        } else {
          S->ElseBody = parseBlock();
        }
      }
      return S;
    }
    case TokenKind::KwWhile: {
      consume();
      StmtPtr S = makeStmt(Stmt::Kind::While, Line, Col);
      expect(TokenKind::LParen);
      S->Cond = parseExpr();
      expect(TokenKind::RParen);
      S->Body = parseBlock();
      return S;
    }
    case TokenKind::KwLock:
    case TokenKind::KwUnlock:
    case TokenKind::KwSpawn:
    case TokenKind::KwJoin:
    case TokenKind::KwWait:
    case TokenKind::KwNotify:
    case TokenKind::KwNotifyAll: {
      Stmt::Kind K;
      switch (Current.Kind) {
      case TokenKind::KwLock:
        K = Stmt::Kind::Lock;
        break;
      case TokenKind::KwUnlock:
        K = Stmt::Kind::Unlock;
        break;
      case TokenKind::KwSpawn:
        K = Stmt::Kind::Spawn;
        break;
      case TokenKind::KwJoin:
        K = Stmt::Kind::Join;
        break;
      case TokenKind::KwWait:
        K = Stmt::Kind::Wait;
        break;
      case TokenKind::KwNotify:
        K = Stmt::Kind::Notify;
        break;
      default:
        K = Stmt::Kind::NotifyAll;
        break;
      }
      consume();
      StmtPtr S = makeStmt(K, Line, Col);
      S->Name = expectIdent("name");
      expect(TokenKind::Semicolon);
      return S;
    }
    case TokenKind::KwSync: {
      consume();
      StmtPtr S = makeStmt(Stmt::Kind::Sync, Line, Col);
      S->Name = expectIdent("lock name");
      S->Body = parseBlock();
      return S;
    }
    case TokenKind::KwAssert: {
      consume();
      StmtPtr S = makeStmt(Stmt::Kind::Assert, Line, Col);
      S->Value = parseExpr();
      expect(TokenKind::Semicolon);
      return S;
    }
    case TokenKind::KwSkip: {
      consume();
      expect(TokenKind::Semicolon);
      return makeStmt(Stmt::Kind::Skip, Line, Col);
    }
    case TokenKind::Error:
      fail(Current.Line, Current.Column, Current.Text);
      return nullptr;
    default:
      fail(Current.Line, Current.Column,
           std::string("expected a statement, found ") +
               tokenKindName(Current.Kind));
      return nullptr;
    }
  }

  // --------------------------------------------------------- expressions
  ExprPtr makeExpr(Expr::Kind K, uint32_t Line, uint32_t Col) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = Line;
    E->Col = Col;
    return E;
  }

  ExprPtr parseExpr() { return parseBinary(0); }

  /// Precedence climbing; level 0 is '||'.
  ExprPtr parseBinary(int MinPrec) {
    ExprPtr Lhs = parseUnary();
    for (;;) {
      int Prec;
      BinOp Op;
      switch (Current.Kind) {
      case TokenKind::OrOr:
        Prec = 0;
        Op = BinOp::Or;
        break;
      case TokenKind::AndAnd:
        Prec = 1;
        Op = BinOp::And;
        break;
      case TokenKind::EqEq:
        Prec = 2;
        Op = BinOp::Eq;
        break;
      case TokenKind::NotEq:
        Prec = 2;
        Op = BinOp::Ne;
        break;
      case TokenKind::Less:
        Prec = 3;
        Op = BinOp::Lt;
        break;
      case TokenKind::LessEq:
        Prec = 3;
        Op = BinOp::Le;
        break;
      case TokenKind::Greater:
        Prec = 3;
        Op = BinOp::Gt;
        break;
      case TokenKind::GreaterEq:
        Prec = 3;
        Op = BinOp::Ge;
        break;
      case TokenKind::Plus:
        Prec = 4;
        Op = BinOp::Add;
        break;
      case TokenKind::Minus:
        Prec = 4;
        Op = BinOp::Sub;
        break;
      case TokenKind::Star:
        Prec = 5;
        Op = BinOp::Mul;
        break;
      case TokenKind::Slash:
        Prec = 5;
        Op = BinOp::Div;
        break;
      case TokenKind::Percent:
        Prec = 5;
        Op = BinOp::Mod;
        break;
      default:
        return Lhs;
      }
      if (Prec < MinPrec)
        return Lhs;
      uint32_t Line = Current.Line;
      uint32_t Col = Current.Column;
      consume();
      ExprPtr Rhs = parseBinary(Prec + 1);
      ExprPtr Node = makeExpr(Expr::Kind::Binary, Line, Col);
      Node->Op = Op;
      Node->Lhs = std::move(Lhs);
      Node->Rhs = std::move(Rhs);
      Lhs = std::move(Node);
    }
  }

  ExprPtr parseUnary() {
    uint32_t Line = Current.Line;
    uint32_t Col = Current.Column;
    if (Current.is(TokenKind::Minus) || Current.is(TokenKind::Not)) {
      UnOp Op = Current.is(TokenKind::Minus) ? UnOp::Neg : UnOp::Not;
      consume();
      ExprPtr E = makeExpr(Expr::Kind::Unary, Line, Col);
      E->UOp = Op;
      E->Lhs = parseUnary();
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    uint32_t Line = Current.Line;
    uint32_t Col = Current.Column;
    if (Current.is(TokenKind::Integer)) {
      ExprPtr E = makeExpr(Expr::Kind::IntLit, Line, Col);
      E->IntValue = Current.Value;
      consume();
      return E;
    }
    if (Current.is(TokenKind::Identifier)) {
      std::string Name = Current.Text;
      consume();
      if (Current.is(TokenKind::LBracket)) {
        consume();
        ExprPtr E = makeExpr(Expr::Kind::Index, Line, Col);
        E->Name = std::move(Name);
        E->Lhs = parseExpr();
        expect(TokenKind::RBracket);
        return E;
      }
      ExprPtr E = makeExpr(Expr::Kind::Name, Line, Col);
      E->Name = std::move(Name);
      return E;
    }
    if (Current.is(TokenKind::LParen)) {
      consume();
      ExprPtr E = parseExpr();
      expect(TokenKind::RParen);
      return E;
    }
    if (Current.is(TokenKind::Error))
      fail(Current.Line, Current.Column, Current.Text);
    else
      fail(Current.Line, Current.Column,
           std::string("expected an expression, found ") +
               tokenKindName(Current.Kind));
    // Error recovery: produce a dummy literal so parsing can report the
    // first error cleanly.
    return makeExpr(Expr::Kind::IntLit, Line, Col);
  }

  Lexer Lex;
  Token Current;
  bool Failed = false;
  std::string ErrorMessage;
  std::unordered_set<std::string> DeclaredNames;
};

} // namespace

std::optional<Program> rvp::parseProgram(std::string_view Source,
                                         std::string &Error) {
  return Parser(Source).run(Error);
}
