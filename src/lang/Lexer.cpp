//===- lang/Lexer.cpp - MiniRV lexer ---------------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace rvp;

const char *rvp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer";
  case TokenKind::KwShared:
    return "'shared'";
  case TokenKind::KwVolatile:
    return "'volatile'";
  case TokenKind::KwLock:
    return "'lock'";
  case TokenKind::KwUnlock:
    return "'unlock'";
  case TokenKind::KwSync:
    return "'sync'";
  case TokenKind::KwThread:
    return "'thread'";
  case TokenKind::KwMain:
    return "'main'";
  case TokenKind::KwLocal:
    return "'local'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwJoin:
    return "'join'";
  case TokenKind::KwWait:
    return "'wait'";
  case TokenKind::KwNotify:
    return "'notify'";
  case TokenKind::KwNotifyAll:
    return "'notifyall'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0')
          return false; // unterminated block comment
        advance();
      }
      advance();
      advance();
      continue;
    }
    return true;
  }
}

Token Lexer::make(TokenKind Kind, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Line = TokenLine;
  T.Column = TokenColumn;
  return T;
}

Token Lexer::next() {
  if (!skipTrivia()) {
    TokenLine = Line;
    TokenColumn = Column;
    return make(TokenKind::Error, "unterminated block comment");
  }
  TokenLine = Line;
  TokenColumn = Column;
  char C = peek();
  if (C == '\0')
    return make(TokenKind::EndOfFile);

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_')
      Text += advance();
    static const std::unordered_map<std::string, TokenKind> Keywords = {
        {"shared", TokenKind::KwShared},
        {"volatile", TokenKind::KwVolatile},
        {"lock", TokenKind::KwLock},
        {"unlock", TokenKind::KwUnlock},
        {"sync", TokenKind::KwSync},
        {"thread", TokenKind::KwThread},
        {"main", TokenKind::KwMain},
        {"local", TokenKind::KwLocal},
        {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},
        {"while", TokenKind::KwWhile},
        {"spawn", TokenKind::KwSpawn},
        {"join", TokenKind::KwJoin},
        {"wait", TokenKind::KwWait},
        {"notify", TokenKind::KwNotify},
        {"notifyall", TokenKind::KwNotifyAll},
        {"assert", TokenKind::KwAssert},
        {"skip", TokenKind::KwSkip},
    };
    auto It = Keywords.find(Text);
    if (It != Keywords.end())
      return make(It->second, std::move(Text));
    return make(TokenKind::Identifier, std::move(Text));
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    Token T = make(TokenKind::Integer, Text);
    if (!parseInt(Text, T.Value)) {
      T.Kind = TokenKind::Error;
      T.Text = "integer literal out of range";
    }
    return T;
  }

  advance();
  switch (C) {
  case '{':
    return make(TokenKind::LBrace);
  case '}':
    return make(TokenKind::RBrace);
  case '(':
    return make(TokenKind::LParen);
  case ')':
    return make(TokenKind::RParen);
  case '[':
    return make(TokenKind::LBracket);
  case ']':
    return make(TokenKind::RBracket);
  case ';':
    return make(TokenKind::Semicolon);
  case '+':
    return make(TokenKind::Plus);
  case '-':
    return make(TokenKind::Minus);
  case '*':
    return make(TokenKind::Star);
  case '/':
    return make(TokenKind::Slash);
  case '%':
    return make(TokenKind::Percent);
  case '=':
    if (peek() == '=') {
      advance();
      return make(TokenKind::EqEq);
    }
    return make(TokenKind::Assign);
  case '!':
    if (peek() == '=') {
      advance();
      return make(TokenKind::NotEq);
    }
    return make(TokenKind::Not);
  case '<':
    if (peek() == '=') {
      advance();
      return make(TokenKind::LessEq);
    }
    return make(TokenKind::Less);
  case '>':
    if (peek() == '=') {
      advance();
      return make(TokenKind::GreaterEq);
    }
    return make(TokenKind::Greater);
  case '|':
    if (peek() == '|') {
      advance();
      return make(TokenKind::OrOr);
    }
    return make(TokenKind::Error, "expected '||'");
  case '&':
    if (peek() == '&') {
      advance();
      return make(TokenKind::AndAnd);
    }
    return make(TokenKind::Error, "expected '&&'");
  default:
    return make(TokenKind::Error,
                std::string("unexpected character '") + C + "'");
  }
}

std::vector<Token> Lexer::tokenize(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(L.next());
    if (Tokens.back().is(TokenKind::EndOfFile) ||
        Tokens.back().is(TokenKind::Error))
      return Tokens;
  }
}
