//===- runtime/Interpreter.h - MiniRV interpreter ----------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sequentially consistent interpreter for compiled MiniRV programs that
/// records the execution as a Trace — the project's stand-in for the
/// paper's instrumented-JVM trace collection. One scheduler decision is
/// made per emitted event; thread-local computation is invisible, exactly
/// matching the event granularity of the abstract model (Section 2.1):
///
///  * shared reads/writes (arrays are expanded to one variable per cell),
///  * acquire/release (reentrant pairs are filtered dynamically: only the
///    outermost pair emits events, as in Section 4),
///  * fork/join/begin/end,
///  * wait/notify in the lowered release-notify-acquire form (Section 4),
///  * branch events at every condition and non-constant array index.
///
/// The interpreter doubles as the *witness replayer*: run with a
/// ReplayScheduler carrying a predicted schedule, a predicted race can be
/// observed manifesting (the two accesses execute back to back).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_RUNTIME_INTERPRETER_H
#define RVP_RUNTIME_INTERPRETER_H

#include "runtime/Bytecode.h"
#include "runtime/Scheduler.h"
#include "trace/Trace.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace rvp {

/// A runtime fault (assertion failure, division by zero, out-of-bounds
/// index, lock misuse). Execution continues past errors; they are
/// collected here.
struct RuntimeError {
  ThreadId Tid = 0;
  uint32_t Line = 0;
  std::string Message;
};

struct RunLimits {
  /// Stop after this many events (guards runaway loops).
  uint64_t MaxEvents = 1000000;
};

struct RunResult {
  bool Deadlocked = false;
  bool HitEventLimit = false;
  uint64_t EventCount = 0;
  std::vector<RuntimeError> Errors;
  /// Final shared memory, by cell name.
  std::unordered_map<std::string, Value> FinalCells;

  bool ok() const { return !Deadlocked && !HitEventLimit && Errors.empty(); }
};

/// Executes \p P under scheduler \p S, appending events to \p T (which is
/// finalized before returning). Thread ids in the trace equal the indices
/// of P.Threads (main == RootThread == 0).
RunResult runProgram(const CompiledProgram &P, Scheduler &S, Trace &T,
                     const RunLimits &Limits = RunLimits());

/// Convenience: compile-and-run a MiniRV source under a round-robin
/// scheduler. Returns false on compile errors (reported in \p Error).
bool recordTrace(std::string_view Source, Trace &T, RunResult &Result,
                 std::string &Error, Scheduler *S = nullptr,
                 const RunLimits &Limits = RunLimits());

} // namespace rvp

#endif // RVP_RUNTIME_INTERPRETER_H
