//===- runtime/Compile.h - MiniRV AST -> bytecode ----------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a parsed MiniRV program into the stack-machine form of
/// Bytecode.h, resolving names (shared cells, locks, threads, per-thread
/// locals) and placing EmitBranch instructions at every control-flow
/// abstraction point. Array accesses with *constant* indices fold to plain
/// scalar accesses and get no branch event, exactly mirroring the
/// instrumentation policy of Section 4.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_RUNTIME_COMPILE_H
#define RVP_RUNTIME_COMPILE_H

#include "runtime/Bytecode.h"

#include <optional>
#include <string>

namespace rvp {

/// Compiles \p P. On failure returns std::nullopt and fills \p Error with
/// "line: message".
std::optional<CompiledProgram> compileProgram(const Program &P,
                                              std::string &Error);

/// Convenience: parse + compile in one step.
std::optional<CompiledProgram> compileSource(std::string_view Source,
                                             std::string &Error);

} // namespace rvp

#endif // RVP_RUNTIME_COMPILE_H
