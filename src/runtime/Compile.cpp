//===- runtime/Compile.cpp - MiniRV AST -> bytecode ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Compile.h"

#include "lang/Parser.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace rvp;

namespace {

class Compiler {
public:
  std::optional<CompiledProgram> run(const Program &P, std::string &Error) {
    // Global name tables.
    for (const SharedDecl &D : P.Shareds) {
      if (D.ArraySize == 0) {
        ScalarCell[D.Name] = Out.numCells();
        addCell(D.Name, D.Init, D.Volatile);
      } else {
        uint32_t ArrayId = static_cast<uint32_t>(Out.Arrays.size());
        ArrayIds[D.Name] = ArrayId;
        Out.Arrays.push_back({Out.numCells(), D.ArraySize});
        for (uint32_t I = 0; I < D.ArraySize; ++I)
          addCell(formatString("%s[%u]", D.Name.c_str(), I), D.Init,
                  /*IsVolatile=*/false);
      }
    }
    for (const LockDecl &L : P.Locks) {
      LockIds[L.Name] = static_cast<uint32_t>(Out.Locks.size());
      Out.Locks.push_back(L.Name);
    }
    for (uint32_t I = 0; I < P.Threads.size(); ++I)
      ThreadIds[P.Threads[I].Name] = I;

    for (const ThreadDecl &T : P.Threads) {
      CompiledThread CT;
      CT.Name = T.Name;
      Locals.clear();
      Code = &CT.Code;
      for (const StmtPtr &S : T.Body)
        compileStmt(*S);
      emit(OpCode::Halt, 0, 0);
      CT.NumLocals = static_cast<uint32_t>(Locals.size());
      Out.Threads.push_back(std::move(CT));
      if (Failed)
        break;
    }

    if (Failed) {
      Error = ErrorMessage;
      return std::nullopt;
    }
    return std::move(Out);
  }

private:
  void addCell(const std::string &Name, int64_t Init, bool IsVolatile) {
    Out.CellNames.push_back(Name);
    Out.CellInit.push_back(Init);
    Out.CellVolatile.push_back(IsVolatile);
  }

  void fail(uint32_t Line, const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    ErrorMessage = formatString("%u: %s", Line, Message.c_str());
  }

  size_t emit(OpCode Op, int64_t A, uint32_t Line) {
    Code->push_back({Op, A, Line});
    return Code->size() - 1;
  }

  void patchTarget(size_t InstrIndex) {
    (*Code)[InstrIndex].A = static_cast<int64_t>(Code->size());
  }

  // ---------------------------------------------------------- expressions
  /// Returns the constant value of \p E if it folds, for constant-index
  /// array accesses.
  std::optional<int64_t> constantOf(const Expr &E) {
    if (E.K == Expr::Kind::IntLit)
      return E.IntValue;
    if (E.K == Expr::Kind::Unary && E.UOp == UnOp::Neg) {
      if (auto V = constantOf(*E.Lhs))
        return -*V;
    }
    return std::nullopt;
  }

  void compileExpr(const Expr &E) {
    if (Failed)
      return;
    switch (E.K) {
    case Expr::Kind::IntLit:
      emit(OpCode::LoadConst, E.IntValue, E.Line);
      return;
    case Expr::Kind::Name: {
      if (auto It = Locals.find(E.Name); It != Locals.end()) {
        emit(OpCode::LoadLocal, It->second, E.Line);
        return;
      }
      if (auto It = ScalarCell.find(E.Name); It != ScalarCell.end()) {
        emit(OpCode::ReadShared, It->second, E.Line);
        return;
      }
      if (ArrayIds.count(E.Name)) {
        fail(E.Line, "array '" + E.Name + "' needs an index");
        return;
      }
      fail(E.Line, "use of undeclared variable '" + E.Name + "'");
      return;
    }
    case Expr::Kind::Index: {
      auto It = ArrayIds.find(E.Name);
      if (It == ArrayIds.end()) {
        fail(E.Line, "'" + E.Name + "' is not a shared array");
        return;
      }
      const CompiledProgram::ArrayInfo &Info = Out.Arrays[It->second];
      if (auto Const = constantOf(*E.Lhs)) {
        if (*Const < 0 || *Const >= Info.Size) {
          fail(E.Line, "constant index out of bounds");
          return;
        }
        // Constant index: plain scalar access, no branch event (§4).
        emit(OpCode::ReadShared, Info.Base + *Const, E.Line);
        return;
      }
      compileExpr(*E.Lhs);
      // Non-constant index: the address depends on data, so the access is
      // guarded by a branch event (§4's implicit data-flow points).
      emit(OpCode::EmitBranch, 0, E.Line);
      emit(OpCode::ReadArray, It->second, E.Line);
      return;
    }
    case Expr::Kind::Unary:
      compileExpr(*E.Lhs);
      emit(OpCode::Unary, static_cast<int64_t>(E.UOp), E.Line);
      return;
    case Expr::Kind::Binary:
      compileExpr(*E.Lhs);
      compileExpr(*E.Rhs);
      emit(OpCode::Binary, static_cast<int64_t>(E.Op), E.Line);
      return;
    }
    RVP_UNREACHABLE("unknown expression kind");
  }

  // ----------------------------------------------------------- statements
  uint32_t localSlot(const std::string &Name) {
    auto [It, Inserted] =
        Locals.try_emplace(Name, static_cast<uint32_t>(Locals.size()));
    (void)Inserted;
    return It->second;
  }

  uint32_t lookupLock(const std::string &Name, uint32_t Line) {
    auto It = LockIds.find(Name);
    if (It == LockIds.end()) {
      fail(Line, "use of undeclared lock '" + Name + "'");
      return 0;
    }
    return It->second;
  }

  uint32_t lookupThread(const std::string &Name, uint32_t Line) {
    auto It = ThreadIds.find(Name);
    if (It == ThreadIds.end()) {
      fail(Line, "use of undeclared thread '" + Name + "'");
      return 0;
    }
    if (It->second == 0) {
      fail(Line, "'main' cannot be spawned or joined");
      return 0;
    }
    return It->second;
  }

  void compileBlock(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &S : Body)
      compileStmt(*S);
  }

  void compileStmt(const Stmt &S) {
    if (Failed)
      return;
    switch (S.K) {
    case Stmt::Kind::LocalDecl: {
      if (Locals.count(S.Name)) {
        fail(S.Line, "redefinition of local '" + S.Name + "'");
        return;
      }
      if (ScalarCell.count(S.Name) || ArrayIds.count(S.Name) ||
          LockIds.count(S.Name) || ThreadIds.count(S.Name)) {
        fail(S.Line, "local '" + S.Name + "' shadows a global name");
        return;
      }
      uint32_t Slot = localSlot(S.Name);
      if (S.Value)
        compileExpr(*S.Value);
      else
        emit(OpCode::LoadConst, 0, S.Line);
      emit(OpCode::StoreLocal, Slot, S.Line);
      return;
    }
    case Stmt::Kind::Assign: {
      if (auto It = Locals.find(S.Name); It != Locals.end()) {
        compileExpr(*S.Value);
        emit(OpCode::StoreLocal, It->second, S.Line);
        return;
      }
      if (auto It = ScalarCell.find(S.Name); It != ScalarCell.end()) {
        compileExpr(*S.Value);
        emit(OpCode::WriteShared, It->second, S.Line);
        return;
      }
      if (ArrayIds.count(S.Name)) {
        fail(S.Line, "array '" + S.Name + "' needs an index");
        return;
      }
      fail(S.Line, "assignment to undeclared variable '" + S.Name + "'");
      return;
    }
    case Stmt::Kind::ArrayAssign: {
      auto It = ArrayIds.find(S.Name);
      if (It == ArrayIds.end()) {
        fail(S.Line, "'" + S.Name + "' is not a shared array");
        return;
      }
      const CompiledProgram::ArrayInfo &Info = Out.Arrays[It->second];
      if (auto Const = constantOf(*S.Index)) {
        if (*Const < 0 || *Const >= Info.Size) {
          fail(S.Line, "constant index out of bounds");
          return;
        }
        compileExpr(*S.Value);
        emit(OpCode::WriteShared, Info.Base + *Const, S.Line);
        return;
      }
      compileExpr(*S.Value);
      compileExpr(*S.Index);
      emit(OpCode::EmitBranch, 0, S.Line);
      emit(OpCode::WriteArray, It->second, S.Line);
      return;
    }
    case Stmt::Kind::If: {
      compileExpr(*S.Cond);
      emit(OpCode::EmitBranch, 0, S.Line);
      size_t ToElse = emit(OpCode::JumpIfZero, 0, S.Line);
      compileBlock(S.Body);
      if (S.ElseBody.empty()) {
        patchTarget(ToElse);
      } else {
        size_t ToEnd = emit(OpCode::Jump, 0, S.Line);
        patchTarget(ToElse);
        compileBlock(S.ElseBody);
        patchTarget(ToEnd);
      }
      return;
    }
    case Stmt::Kind::While: {
      size_t LoopHead = Code->size();
      compileExpr(*S.Cond);
      emit(OpCode::EmitBranch, 0, S.Line);
      size_t ToEnd = emit(OpCode::JumpIfZero, 0, S.Line);
      compileBlock(S.Body);
      emit(OpCode::Jump, static_cast<int64_t>(LoopHead), S.Line);
      patchTarget(ToEnd);
      return;
    }
    case Stmt::Kind::Lock:
      emit(OpCode::Acquire, lookupLock(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::Unlock:
      emit(OpCode::Release, lookupLock(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::Sync: {
      uint32_t Lock = lookupLock(S.Name, S.Line);
      emit(OpCode::Acquire, Lock, S.Line);
      compileBlock(S.Body);
      emit(OpCode::Release, Lock, S.Line);
      return;
    }
    case Stmt::Kind::Spawn:
      emit(OpCode::SpawnThread, lookupThread(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::Join:
      emit(OpCode::JoinThread, lookupThread(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::Wait:
      emit(OpCode::WaitLock, lookupLock(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::Notify:
      emit(OpCode::NotifyLock, lookupLock(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::NotifyAll:
      emit(OpCode::NotifyAllLock, lookupLock(S.Name, S.Line), S.Line);
      return;
    case Stmt::Kind::Assert:
      compileExpr(*S.Value);
      emit(OpCode::EmitBranch, 0, S.Line);
      emit(OpCode::AssertTrue, 0, S.Line);
      return;
    case Stmt::Kind::Skip:
      return;
    }
    RVP_UNREACHABLE("unknown statement kind");
  }

  CompiledProgram Out;
  std::vector<Instr> *Code = nullptr;
  std::unordered_map<std::string, uint32_t> ScalarCell;
  std::unordered_map<std::string, uint32_t> ArrayIds;
  std::unordered_map<std::string, uint32_t> LockIds;
  std::unordered_map<std::string, uint32_t> ThreadIds;
  std::unordered_map<std::string, uint32_t> Locals;
  bool Failed = false;
  std::string ErrorMessage;
};

} // namespace

std::optional<CompiledProgram> rvp::compileProgram(const Program &P,
                                                   std::string &Error) {
  return Compiler().run(P, Error);
}

std::optional<CompiledProgram> rvp::compileSource(std::string_view Source,
                                                  std::string &Error) {
  std::optional<Program> P = parseProgram(Source, Error);
  if (!P)
    return std::nullopt;
  return compileProgram(*P, Error);
}
