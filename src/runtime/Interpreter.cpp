//===- runtime/Interpreter.cpp - MiniRV interpreter -------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "runtime/Compile.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <array>
#include <deque>

using namespace rvp;

namespace {

class Interpreter {
public:
  Interpreter(const CompiledProgram &P, Trace &T, const RunLimits &Limits)
      : P(P), T(T), Limits(Limits) {}

  RunResult run(Scheduler &S) {
    setup();
    while (Result.EventCount < Limits.MaxEvents) {
      std::vector<ThreadId> Runnable = collectRunnable();
      if (Runnable.empty()) {
        Result.Deadlocked = anyUnfinished();
        break;
      }
      ThreadId Tid = S.pick(Runnable);
      ++SchedulerSteps;
      stepThread(Tid);
    }
    if (Result.EventCount >= Limits.MaxEvents)
      Result.HitEventLimit = anyUnfinished();
    for (uint32_t Cell = 0; Cell < P.numCells(); ++Cell)
      Result.FinalCells[P.CellNames[Cell]] = Cells[Cell];
    T.finalize();
    flushTelemetry();
    return std::move(Result);
  }

private:
  enum class ThreadState : uint8_t {
    NotSpawned,
    ReadyToBegin, ///< spawned; Begin not yet emitted
    Running,
    Waiting,     ///< suspended in wait(); not runnable until notified
    Reacquiring, ///< notified; waiting for the lock to be free
    Finished,    ///< End emitted
  };

  struct ThreadRt {
    ThreadState State = ThreadState::NotSpawned;
    uint32_t Pc = 0;
    std::vector<Value> Locals;
    std::vector<Value> Stack;
    uint32_t WaitLockId = 0;
    uint32_t WaitMatch = 0;
    uint32_t SavedLockCount = 0;
  };

  struct LockRt {
    bool Held = false;
    ThreadId Holder = 0;
    uint32_t Count = 0; ///< reentrancy depth
    std::deque<ThreadId> Waiters;
  };

  // ------------------------------------------------------------- setup
  void setup() {
    // Intern names so trace ids equal program indices.
    for (const CompiledThread &CT : P.Threads)
      T.internThread(CT.Name);
    for (uint32_t Cell = 0; Cell < P.numCells(); ++Cell) {
      VarId Var = T.internVar(P.CellNames[Cell]);
      if (P.CellInit[Cell] != 0)
        T.setInitialValue(Var, P.CellInit[Cell]);
    }
    for (const std::string &Name : P.Locks)
      T.internLock(Name);

    Cells.assign(P.CellInit.begin(), P.CellInit.end());
    Locks.assign(P.Locks.size(), LockRt());
    Threads.assign(P.Threads.size(), ThreadRt());
    for (size_t I = 0; I < P.Threads.size(); ++I)
      Threads[I].Locals.assign(P.Threads[I].NumLocals, 0);
    Threads[RootThread].State = ThreadState::ReadyToBegin;
  }

  // --------------------------------------------------------- scheduling
  bool anyUnfinished() const {
    for (const ThreadRt &TR : Threads)
      if (TR.State != ThreadState::Finished &&
          TR.State != ThreadState::NotSpawned)
        return true;
    return false;
  }

  bool isRunnable(ThreadId Tid) const {
    const ThreadRt &TR = Threads[Tid];
    switch (TR.State) {
    case ThreadState::NotSpawned:
    case ThreadState::Waiting:
    case ThreadState::Finished:
      return false;
    case ThreadState::ReadyToBegin:
      return true;
    case ThreadState::Reacquiring:
      return !Locks[TR.WaitLockId].Held;
    case ThreadState::Running:
      break;
    }
    // A running thread is stuck only if its next instruction blocks.
    const Instr &I = P.Threads[Tid].Code[TR.Pc];
    switch (I.Op) {
    case OpCode::Acquire: {
      const LockRt &L = Locks[I.A];
      return !L.Held || L.Holder == Tid;
    }
    case OpCode::JoinThread:
      return Threads[I.A].State == ThreadState::Finished;
    default:
      return true;
    }
  }

  std::vector<ThreadId> collectRunnable() const {
    std::vector<ThreadId> Runnable;
    for (ThreadId Tid = 0; Tid < Threads.size(); ++Tid)
      if (isRunnable(Tid))
        Runnable.push_back(Tid);
    return Runnable;
  }

  // ------------------------------------------------------------ events
  LocId locOf(uint32_t Line) {
    if (Line == 0)
      return UnknownLoc;
    return T.internLoc("L" + std::to_string(Line));
  }

  void emitEvent(ThreadId Tid, EventKind Kind, uint32_t Target, Value Data,
                 uint32_t Line, bool IsVolatile = false, uint32_t Aux = 0) {
    Event E;
    E.Tid = Tid;
    E.Kind = Kind;
    E.Target = Target;
    E.Data = Data;
    E.Loc = locOf(Line);
    E.Volatile = IsVolatile;
    E.Aux = Aux;
    T.append(E);
    ++Result.EventCount;
    ++EventsByKind[static_cast<size_t>(Kind)];
  }

  /// One registry write per run; the per-event cost is a plain array
  /// increment whether telemetry is on or off.
  void flushTelemetry() {
    if (!Telemetry::enabled())
      return;
    MetricsRegistry &Reg = MetricsRegistry::global();
    Reg.counter("runtime.scheduler_steps").add(SchedulerSteps);
    for (size_t K = 0; K < EventsByKind.size(); ++K) {
      if (EventsByKind[K] == 0)
        continue;
      Reg.counter(std::string("runtime.events.") +
                  eventKindName(static_cast<EventKind>(K)))
          .add(EventsByKind[K]);
    }
  }

  void error(ThreadId Tid, uint32_t Line, std::string Message) {
    Result.Errors.push_back({Tid, Line, std::move(Message)});
  }

  // -------------------------------------------------------------- step
  Value pop(ThreadRt &TR) {
    assert(!TR.Stack.empty() && "operand stack underflow");
    Value V = TR.Stack.back();
    TR.Stack.pop_back();
    return V;
  }

  Value applyBinary(BinOp Op, Value L, Value R, ThreadId Tid,
                    uint32_t Line) {
    switch (Op) {
    case BinOp::Add:
      return static_cast<Value>(static_cast<uint64_t>(L) +
                                static_cast<uint64_t>(R));
    case BinOp::Sub:
      return static_cast<Value>(static_cast<uint64_t>(L) -
                                static_cast<uint64_t>(R));
    case BinOp::Mul:
      return static_cast<Value>(static_cast<uint64_t>(L) *
                                static_cast<uint64_t>(R));
    case BinOp::Div:
      if (R == 0) {
        error(Tid, Line, "division by zero");
        return 0;
      }
      if (L == INT64_MIN && R == -1)
        return INT64_MIN; // wrap, avoiding UB
      return L / R;
    case BinOp::Mod:
      if (R == 0) {
        error(Tid, Line, "modulo by zero");
        return 0;
      }
      if (L == INT64_MIN && R == -1)
        return 0;
      return L % R;
    case BinOp::Eq:
      return L == R;
    case BinOp::Ne:
      return L != R;
    case BinOp::Lt:
      return L < R;
    case BinOp::Le:
      return L <= R;
    case BinOp::Gt:
      return L > R;
    case BinOp::Ge:
      return L >= R;
    case BinOp::And:
      return (L != 0) && (R != 0);
    case BinOp::Or:
      return (L != 0) || (R != 0);
    }
    RVP_UNREACHABLE("unknown binary operator");
  }

  /// Runs \p Tid until it emits at least one event or blocks/finishes.
  void stepThread(ThreadId Tid) {
    ThreadRt &TR = Threads[Tid];

    if (TR.State == ThreadState::ReadyToBegin) {
      emitEvent(Tid, EventKind::Begin, 0, 0, 0);
      TR.State = ThreadState::Running;
      return;
    }
    if (TR.State == ThreadState::Reacquiring) {
      LockRt &L = Locks[TR.WaitLockId];
      assert(!L.Held && "scheduler picked a blocked thread");
      L.Held = true;
      L.Holder = Tid;
      L.Count = TR.SavedLockCount;
      emitEvent(Tid, EventKind::Acquire, TR.WaitLockId, 0, 0,
                /*IsVolatile=*/false, TR.WaitMatch);
      TR.State = ThreadState::Running;
      return;
    }

    const std::vector<Instr> &Code = P.Threads[Tid].Code;
    // Every loop iteration in MiniRV emits a branch event, so a bounded
    // number of instructions always reaches an event; the cap is a safety
    // net for interpreter bugs.
    for (uint32_t Fuel = 0; Fuel < 1000000; ++Fuel) {
      const Instr &I = Code[TR.Pc];
      switch (I.Op) {
      case OpCode::LoadConst:
        TR.Stack.push_back(I.A);
        ++TR.Pc;
        break;
      case OpCode::LoadLocal:
        TR.Stack.push_back(TR.Locals[I.A]);
        ++TR.Pc;
        break;
      case OpCode::StoreLocal:
        TR.Locals[I.A] = pop(TR);
        ++TR.Pc;
        break;
      case OpCode::ReadShared: {
        Value V = Cells[I.A];
        TR.Stack.push_back(V);
        ++TR.Pc;
        emitEvent(Tid, EventKind::Read, static_cast<uint32_t>(I.A), V,
                  I.Line, P.CellVolatile[I.A]);
        return;
      }
      case OpCode::WriteShared: {
        Value V = pop(TR);
        Cells[I.A] = V;
        ++TR.Pc;
        emitEvent(Tid, EventKind::Write, static_cast<uint32_t>(I.A), V,
                  I.Line, P.CellVolatile[I.A]);
        return;
      }
      case OpCode::ReadArray: {
        const CompiledProgram::ArrayInfo &Info = P.Arrays[I.A];
        Value Index = pop(TR);
        if (Index < 0 || Index >= Info.Size) {
          error(Tid, I.Line, formatString("array index %lld out of bounds",
                                          static_cast<long long>(Index)));
          Index = 0;
        }
        uint32_t Cell = Info.Base + static_cast<uint32_t>(Index);
        Value V = Cells[Cell];
        TR.Stack.push_back(V);
        ++TR.Pc;
        emitEvent(Tid, EventKind::Read, Cell, V, I.Line);
        return;
      }
      case OpCode::WriteArray: {
        const CompiledProgram::ArrayInfo &Info = P.Arrays[I.A];
        Value Index = pop(TR);
        Value V = pop(TR);
        if (Index < 0 || Index >= Info.Size) {
          error(Tid, I.Line, formatString("array index %lld out of bounds",
                                          static_cast<long long>(Index)));
          Index = 0;
        }
        uint32_t Cell = Info.Base + static_cast<uint32_t>(Index);
        Cells[Cell] = V;
        ++TR.Pc;
        emitEvent(Tid, EventKind::Write, Cell, V, I.Line);
        return;
      }
      case OpCode::Binary: {
        Value R = pop(TR);
        Value L = pop(TR);
        TR.Stack.push_back(
            applyBinary(static_cast<BinOp>(I.A), L, R, Tid, I.Line));
        ++TR.Pc;
        break;
      }
      case OpCode::Unary: {
        Value V = pop(TR);
        TR.Stack.push_back(static_cast<UnOp>(I.A) == UnOp::Neg
                               ? static_cast<Value>(
                                     0 - static_cast<uint64_t>(V))
                               : static_cast<Value>(V == 0));
        ++TR.Pc;
        break;
      }
      case OpCode::Jump:
        TR.Pc = static_cast<uint32_t>(I.A);
        break;
      case OpCode::JumpIfZero:
        TR.Pc = pop(TR) == 0 ? static_cast<uint32_t>(I.A) : TR.Pc + 1;
        break;
      case OpCode::EmitBranch:
        ++TR.Pc;
        emitEvent(Tid, EventKind::Branch, 0, 0, I.Line);
        return;
      case OpCode::Acquire: {
        LockRt &L = Locks[I.A];
        if (L.Held && L.Holder == Tid) {
          // Reentrant acquire: no event (Section 4), keep executing.
          ++L.Count;
          ++TR.Pc;
          break;
        }
        if (L.Held) {
          // Reached a contended acquire mid-step: yield without an event;
          // the scheduler will reschedule once the lock is free.
          return;
        }
        L.Held = true;
        L.Holder = Tid;
        L.Count = 1;
        ++TR.Pc;
        emitEvent(Tid, EventKind::Acquire, static_cast<uint32_t>(I.A), 0,
                  I.Line);
        return;
      }
      case OpCode::Release: {
        LockRt &L = Locks[I.A];
        if (!L.Held || L.Holder != Tid) {
          error(Tid, I.Line,
                "unlock of '" + P.Locks[I.A] + "' not held by this thread");
          ++TR.Pc;
          break;
        }
        if (--L.Count > 0) {
          ++TR.Pc; // inner reentrant release: silent
          break;
        }
        L.Held = false;
        ++TR.Pc;
        emitEvent(Tid, EventKind::Release, static_cast<uint32_t>(I.A), 0,
                  I.Line);
        return;
      }
      case OpCode::SpawnThread: {
        ThreadRt &Child = Threads[I.A];
        if (Child.State != ThreadState::NotSpawned) {
          error(Tid, I.Line,
                "thread '" + P.Threads[I.A].Name + "' spawned twice");
          ++TR.Pc;
          break;
        }
        Child.State = ThreadState::ReadyToBegin;
        ++TR.Pc;
        emitEvent(Tid, EventKind::Fork, static_cast<uint32_t>(I.A), 0,
                  I.Line);
        return;
      }
      case OpCode::JoinThread:
        if (Threads[I.A].State != ThreadState::Finished) {
          // Reached a blocking join mid-step: yield without an event.
          return;
        }
        ++TR.Pc;
        emitEvent(Tid, EventKind::Join, static_cast<uint32_t>(I.A), 0,
                  I.Line);
        return;
      case OpCode::WaitLock: {
        LockRt &L = Locks[I.A];
        if (!L.Held || L.Holder != Tid) {
          error(Tid, I.Line,
                "wait on '" + P.Locks[I.A] + "' without holding it");
          ++TR.Pc;
          break;
        }
        TR.WaitLockId = static_cast<uint32_t>(I.A);
        TR.WaitMatch = NextWaitMatch++;
        TR.SavedLockCount = L.Count;
        L.Held = false;
        L.Count = 0;
        L.Waiters.push_back(Tid);
        TR.State = ThreadState::Waiting;
        ++TR.Pc;
        emitEvent(Tid, EventKind::Release, TR.WaitLockId, 0, I.Line,
                  /*IsVolatile=*/false, TR.WaitMatch);
        return;
      }
      case OpCode::NotifyLock:
      case OpCode::NotifyAllLock: {
        LockRt &L = Locks[I.A];
        if (!L.Held || L.Holder != Tid) {
          error(Tid, I.Line,
                "notify on '" + P.Locks[I.A] + "' without holding it");
          ++TR.Pc;
          break;
        }
        ++TR.Pc;
        if (L.Waiters.empty()) {
          emitEvent(Tid, EventKind::Notify, static_cast<uint32_t>(I.A), 0,
                    I.Line, /*IsVolatile=*/false, /*Aux=*/0);
          return;
        }
        size_t NumToWake =
            I.Op == OpCode::NotifyAllLock ? L.Waiters.size() : 1;
        // notifyAll is modeled as that many notify events back to back
        // (Section 4); they are all by this thread, so emitting them
        // within one step preserves per-event scheduling for others.
        for (size_t K = 0; K < NumToWake; ++K) {
          ThreadId Waiter = L.Waiters.front();
          L.Waiters.pop_front();
          Threads[Waiter].State = ThreadState::Reacquiring;
          emitEvent(Tid, EventKind::Notify, static_cast<uint32_t>(I.A), 0,
                    I.Line, /*IsVolatile=*/false,
                    Threads[Waiter].WaitMatch);
        }
        return;
      }
      case OpCode::AssertTrue: {
        Value V = pop(TR);
        if (V == 0)
          error(Tid, I.Line, "assertion failed");
        ++TR.Pc;
        break;
      }
      case OpCode::Halt:
        TR.State = ThreadState::Finished;
        emitEvent(Tid, EventKind::End, 0, 0, I.Line);
        return;
      }
    }
    RVP_UNREACHABLE("thread made no progress (interpreter bug)");
  }

  const CompiledProgram &P;
  Trace &T;
  RunLimits Limits;
  RunResult Result;
  std::vector<Value> Cells;
  std::vector<LockRt> Locks;
  std::vector<ThreadRt> Threads;
  uint32_t NextWaitMatch = 1;
  uint64_t SchedulerSteps = 0;
  std::array<uint64_t, static_cast<size_t>(EventKind::Notify) + 1>
      EventsByKind{};
};

} // namespace

RunResult rvp::runProgram(const CompiledProgram &P, Scheduler &S, Trace &T,
                          const RunLimits &Limits) {
  return Interpreter(P, T, Limits).run(S);
}

bool rvp::recordTrace(std::string_view Source, Trace &T, RunResult &Result,
                      std::string &Error, Scheduler *S,
                      const RunLimits &Limits) {
  std::optional<CompiledProgram> P = compileSource(Source, Error);
  if (!P)
    return false;
  RoundRobinScheduler Fallback(1);
  Result = runProgram(*P, S ? *S : Fallback, T, Limits);
  return true;
}
