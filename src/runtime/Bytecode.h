//===- runtime/Bytecode.h - Compiled MiniRV programs -------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat stack-machine representation of MiniRV programs, produced by
/// runtime/Compile.h and executed by runtime/Interpreter.h. The encoding
/// makes event emission explicit: EmitBranch instructions are placed by
/// the compiler exactly where the paper's model requires branch events —
/// after evaluating every `if`/`while`/`assert` condition and before every
/// array access with a non-constant index (Section 4).
///
/// Logical && and || evaluate both operands (no short-circuit); this keeps
/// a thread's read set independent of operand values, matching the
/// abstract-model assumption that expression evaluation is local and
/// deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_RUNTIME_BYTECODE_H
#define RVP_RUNTIME_BYTECODE_H

#include "lang/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rvp {

enum class OpCode : uint8_t {
  LoadConst,     ///< push A
  LoadLocal,     ///< push locals[A]
  StoreLocal,    ///< locals[A] = pop
  ReadShared,    ///< push cells[A]; emits Read
  WriteShared,   ///< cells[A] = pop; emits Write
  ReadArray,     ///< idx = pop; push cells[A+idx]; emits Read (bounds-checked)
  WriteArray,    ///< idx = pop, v = pop; cells[A+idx] = v; emits Write
  Binary,        ///< rhs = pop, lhs = pop; push lhs (BinOp)A rhs
  Unary,         ///< v = pop; push (UnOp)A v
  Jump,          ///< pc = A
  JumpIfZero,    ///< if pop == 0 then pc = A
  EmitBranch,    ///< emits a Branch event
  Acquire,       ///< lock A; blocks while held; reentrant pairs silent
  Release,       ///< unlock A
  SpawnThread,   ///< fork thread A; emits Fork
  JoinThread,    ///< blocks until thread A ended; emits Join
  WaitLock,      ///< wait on lock A (lowered Release .. Acquire)
  NotifyLock,    ///< notify one waiter of lock A
  NotifyAllLock, ///< notify every waiter of lock A
  AssertTrue,    ///< v = pop; records a runtime error when v == 0
  Halt,          ///< thread finished; emits End
};

struct Instr {
  OpCode Op;
  int64_t A = 0;     ///< immediate / slot / target / id (see OpCode)
  uint32_t Line = 0; ///< source line, for event locations and errors
};

/// One compiled thread body.
struct CompiledThread {
  std::string Name;
  std::vector<Instr> Code;
  uint32_t NumLocals = 0;
};

/// A compiled program: flat shared-memory cells (arrays are expanded, so
/// cell = variable in the trace model), locks, and thread bodies.
/// Threads[0] is always main.
struct CompiledProgram {
  struct ArrayInfo {
    uint32_t Base = 0; ///< first cell
    uint32_t Size = 0;
  };

  std::vector<std::string> CellNames; ///< "x" or "a[3]"
  std::vector<int64_t> CellInit;
  std::vector<bool> CellVolatile;
  std::vector<ArrayInfo> Arrays; ///< indexed by array id (Instr.A)
  std::vector<std::string> Locks;
  std::vector<CompiledThread> Threads;

  uint32_t numCells() const {
    return static_cast<uint32_t>(CellNames.size());
  }
};

} // namespace rvp

#endif // RVP_RUNTIME_BYTECODE_H
