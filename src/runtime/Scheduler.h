//===- runtime/Scheduler.h - Thread schedulers -------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling policies for the MiniRV interpreter. One scheduling decision
/// is made per *event*: the interpreter runs the chosen thread until it
/// emits one trace event (local computation is free). Three policies:
///
///  * RoundRobinScheduler — deterministic, quantum-based; the default for
///    recording reproducible traces.
///  * RandomScheduler — seeded uniform choice with a stickiness knob;
///    used by the property-test fuzzer to diversify recorded traces.
///  * ReplayScheduler — follows a fixed thread sequence; used to re-execute
///    a predicted race witness and observe the race manifest for real.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_RUNTIME_SCHEDULER_H
#define RVP_RUNTIME_SCHEDULER_H

#include "support/Random.h"
#include "trace/Event.h"

#include <vector>

namespace rvp {

class Scheduler {
public:
  virtual ~Scheduler();

  /// Chooses one of \p Runnable (non-empty, sorted ascending). Returns the
  /// chosen ThreadId (must be an element of \p Runnable).
  virtual ThreadId pick(const std::vector<ThreadId> &Runnable) = 0;
};

/// Deterministic: stays on the current thread for \p Quantum events, then
/// moves to the next runnable thread in id order.
class RoundRobinScheduler : public Scheduler {
public:
  explicit RoundRobinScheduler(uint32_t Quantum = 1)
      : Quantum(Quantum ? Quantum : 1) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable) override;

private:
  uint32_t Quantum;
  ThreadId Current = 0;
  uint32_t Used = 0;
};

/// Seeded random choice; with probability Sticky/100 stays on the current
/// thread when it is still runnable.
class RandomScheduler : public Scheduler {
public:
  explicit RandomScheduler(uint64_t Seed, uint32_t StickyPercent = 50)
      : R(Seed), StickyPercent(StickyPercent) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable) override;

private:
  Rng R;
  uint32_t StickyPercent;
  ThreadId Current = static_cast<ThreadId>(-1);
};

/// Follows a fixed thread sequence. If the scheduled thread is not
/// runnable (the execution diverged from the prediction), falls back to
/// the first runnable thread and sets diverged().
class ReplayScheduler : public Scheduler {
public:
  explicit ReplayScheduler(std::vector<ThreadId> Sequence)
      : Sequence(std::move(Sequence)) {}

  ThreadId pick(const std::vector<ThreadId> &Runnable) override;

  bool diverged() const { return Diverged; }
  /// Events scheduled so far (index into the sequence).
  size_t position() const { return Next; }

private:
  std::vector<ThreadId> Sequence;
  size_t Next = 0;
  bool Diverged = false;
};

} // namespace rvp

#endif // RVP_RUNTIME_SCHEDULER_H
