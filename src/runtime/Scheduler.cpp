//===- runtime/Scheduler.cpp - Thread schedulers ----------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace rvp;

Scheduler::~Scheduler() = default;

ThreadId RoundRobinScheduler::pick(const std::vector<ThreadId> &Runnable) {
  assert(!Runnable.empty() && "pick() requires a runnable thread");
  bool CurrentRunnable =
      std::find(Runnable.begin(), Runnable.end(), Current) != Runnable.end();
  if (CurrentRunnable && Used < Quantum) {
    ++Used;
    return Current;
  }
  // Move to the next runnable thread after Current (wrapping).
  ThreadId Chosen = Runnable.front();
  for (ThreadId Tid : Runnable) {
    if (Tid > Current) {
      Chosen = Tid;
      break;
    }
  }
  Current = Chosen;
  Used = 1;
  return Chosen;
}

ThreadId RandomScheduler::pick(const std::vector<ThreadId> &Runnable) {
  assert(!Runnable.empty() && "pick() requires a runnable thread");
  bool CurrentRunnable =
      std::find(Runnable.begin(), Runnable.end(), Current) != Runnable.end();
  if (CurrentRunnable && R.chance(StickyPercent, 100))
    return Current;
  Current = Runnable[R.below(Runnable.size())];
  return Current;
}

ThreadId ReplayScheduler::pick(const std::vector<ThreadId> &Runnable) {
  assert(!Runnable.empty() && "pick() requires a runnable thread");
  if (Next < Sequence.size()) {
    ThreadId Wanted = Sequence[Next];
    ++Next;
    if (std::find(Runnable.begin(), Runnable.end(), Wanted) !=
        Runnable.end())
      return Wanted;
    Diverged = true;
    return Runnable.front();
  }
  Diverged = true;
  return Runnable.front();
}
