//===- support/Telemetry.cpp - Phase tracing and trace events ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/MemStats.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace rvp;

// ---------------------------------------------------------- PhaseSnapshot

double PhaseSnapshot::childSeconds() const {
  double Sum = 0;
  for (const PhaseSnapshot &C : Children)
    Sum += C.Seconds;
  return Sum;
}

const PhaseSnapshot *PhaseSnapshot::find(std::string_view PhaseName) const {
  if (Name == PhaseName)
    return this;
  for (const PhaseSnapshot &C : Children)
    if (const PhaseSnapshot *Found = C.find(PhaseName))
      return Found;
  return nullptr;
}

std::string PhaseSnapshot::toJson() const {
  JsonObject O;
  O.field("name", Name).field("seconds", Seconds).field("count", Count);
  std::string Kids = "[";
  for (size_t I = 0; I < Children.size(); ++I) {
    if (I)
      Kids += ",";
    Kids += Children[I].toJson();
  }
  Kids += "]";
  O.raw("children", Kids);
  return O.str();
}

void PhaseSnapshot::renderInto(std::string &Out, unsigned Indent) const {
  Out += formatString("%*s%-*s %10.6fs x%llu\n", Indent, "",
                      static_cast<int>(Indent < 30 ? 30 - Indent : 1),
                      Name.c_str(), Seconds,
                      static_cast<unsigned long long>(Count));
  for (const PhaseSnapshot &C : Children)
    C.renderInto(Out, Indent + 2);
}

// -------------------------------------------------------------- PhaseTree

void PhaseTree::enter(const char *Name) {
  Node *Parent = Stack.back();
  for (const std::unique_ptr<Node> &C : Parent->Children) {
    if (C->Name == Name) {
      Stack.push_back(C.get());
      return;
    }
  }
  Parent->Children.push_back(std::make_unique<Node>());
  Node *Fresh = Parent->Children.back().get();
  Fresh->Name = Name;
  Stack.push_back(Fresh);
}

void PhaseTree::exit(double Seconds) {
  assert(Stack.size() > 1 && "phase exit without matching enter");
  Node *Current = Stack.back();
  Current->Seconds += Seconds;
  ++Current->Count;
  Stack.pop_back();
}

void PhaseTree::snapshotInto(const Node &N, PhaseSnapshot &Out) {
  Out.Name = N.Name;
  Out.Seconds = N.Seconds;
  Out.Count = N.Count;
  Out.Children.resize(N.Children.size());
  for (size_t I = 0; I < N.Children.size(); ++I)
    snapshotInto(*N.Children[I], Out.Children[I]);
}

PhaseSnapshot PhaseTree::snapshot() const {
  PhaseSnapshot S;
  snapshotInto(*Root, S);
  // The synthetic root's time is the sum over completed top-level phases.
  S.Seconds = S.childSeconds();
  S.Count = 0;
  for (const PhaseSnapshot &C : S.Children)
    S.Count += C.Count;
  return S;
}

void PhaseTree::absorbInto(Node &Dst, const Node &Src) {
  for (const std::unique_ptr<Node> &C : Src.Children) {
    Node *Match = nullptr;
    for (const std::unique_ptr<Node> &D : Dst.Children) {
      if (D->Name == C->Name) {
        Match = D.get();
        break;
      }
    }
    if (!Match) {
      Dst.Children.push_back(std::make_unique<Node>());
      Match = Dst.Children.back().get();
      Match->Name = C->Name;
    }
    Match->Seconds += C->Seconds;
    Match->Count += C->Count;
    absorbInto(*Match, *C);
  }
}

void PhaseTree::absorb(const PhaseTree &Other) {
  absorbInto(*Stack.back(), *Other.Root);
}

void PhaseTree::reset() {
  Root = std::make_unique<Node>();
  Root->Name = "total";
  Stack.assign(1, Root.get());
}

// --------------------------------------------------------- TraceEventSink

bool TraceEventSink::open(const std::string &Path, std::string &Error) {
  close();
  if (Path == "-") {
    // Buffer stdout events and flush them as one marked block at close():
    // writing them live would interleave with the report and any
    // `--stats-json=-` object mid-run.
    BufferToStdout = true;
    return true;
  }
  File = std::fopen(Path.c_str(), "w");
  if (!File) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  OwnsFile = true;
  return true;
}

void TraceEventSink::write(const JsonObject &Event) {
  if (!File && !BufferToStdout)
    return;
  std::string Line = Event.str();
  Line += "\n";
  if (BufferToStdout)
    Buffer += Line;
  else
    std::fwrite(Line.data(), 1, Line.size(), File);
  ++Written;
}

void TraceEventSink::close() {
  if (BufferToStdout) {
    // Marker first, even with zero events, so splitters always find the
    // block boundary.
    std::fputs(StdoutMarker, stdout);
    std::fputc('\n', stdout);
    std::fwrite(Buffer.data(), 1, Buffer.size(), stdout);
    std::fflush(stdout);
    Buffer.clear();
    BufferToStdout = false;
  }
  if (File && OwnsFile)
    std::fclose(File);
  File = nullptr;
  OwnsFile = false;
}

// -------------------------------------------------------------- Telemetry

bool Telemetry::EnabledFlag = false;
thread_local PhaseTree *Telemetry::ThreadPhases = nullptr;

Telemetry &Telemetry::instance() {
  static Telemetry T;
  return T;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot S;
  S.Captured = true;
  S.Metrics = MetricsRegistry::global().snapshot();
  S.Phases = Phases.snapshot();
  return S;
}

void Telemetry::reset() {
  MetricsRegistry::global().reset();
  MemStats::reset();
  Phases.reset();
}
