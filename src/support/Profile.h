//===- support/Profile.h - Chrome/Perfetto trace export ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-profiling export in Chrome Trace Event Format, loadable in
/// ui.perfetto.dev or chrome://tracing with zero post-processing
/// (docs/OBSERVABILITY.md). A ProfileCollector gathers three event kinds:
///
///  * duration events (`ph:"X"`) — every ScopedPhaseTimer enter/exit pair
///    becomes a span on the emitting thread's track, so the phase tree is
///    visible as a real timeline, per worker;
///  * counter events (`ph:"C"`) — sampled metric tracks (live COP/race
///    totals, subsystem bytes) emitted at window barriers;
///  * instant events (`ph:"i"`) — point markers for retries, session
///    quarantines, backend fallbacks, and checkpoint saves.
///
/// Threads are identified by a stable per-collector tid assigned on first
/// use; the thread pool names its workers (`worker-N`) so solve spans land
/// on per-worker tracks. Activation mirrors the trace-event sink: the
/// process-wide collector pointer is installed behind
/// `rvpredict detect --profile=<path>` and every recording site guards on
/// ProfileCollector::active(), a single atomic load, so the default path
/// stays zero-cost.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_PROFILE_H
#define RVP_SUPPORT_PROFILE_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rvp {

/// One collected event; rendered into Chrome Trace Event JSON by
/// ProfileCollector::toJson().
struct ProfileEvent {
  std::string Name;
  const char *Category = "phase";
  char Phase = 'X';   ///< 'X' duration, 'C' counter, 'i' instant
  uint64_t TsUs = 0;  ///< microseconds since collector construction
  uint64_t DurUs = 0; ///< duration ('X' only)
  uint32_t Tid = 0;
  double Value = 0; ///< counter value ('C' only)
};

class ProfileCollector {
public:
  ProfileCollector() = default;
  ProfileCollector(const ProfileCollector &) = delete;
  ProfileCollector &operator=(const ProfileCollector &) = delete;

  /// Microseconds since this collector was constructed (the trace
  /// timebase; steady clock).
  uint64_t nowUs() const {
    return static_cast<uint64_t>(Clock.seconds() * 1e6);
  }

  /// Records a completed duration span on the calling thread's track.
  void span(const char *Name, const char *Category, uint64_t StartUs,
            uint64_t DurUs);

  /// Records a sample on the counter track \p Name.
  void counter(const char *Name, double Value);

  /// Records a thread-scoped instant marker on the calling thread's track.
  void instant(const char *Name, const char *Category);

  /// Names the calling thread's track ("main", "worker-3", ...); later
  /// calls win. Unnamed threads render as "thread-<tid>".
  void setThreadName(const std::string &Name);

  /// The calling thread's stable tid within this collector, assigned on
  /// first use (0 is the first caller, normally the main thread).
  uint32_t currentTid();

  size_t eventCount() const;

  /// The whole trace as one Chrome Trace Event JSON object:
  /// {"displayTimeUnit":"ms","traceEvents":[...]} with thread-name
  /// metadata first and all other events sorted by timestamp (stable, so
  /// equal stamps keep recording order).
  std::string toJson() const;

  /// Writes toJson() to \p Path. False (with \p Error set) on I/O failure.
  bool writeFile(const std::string &Path, std::string &Error) const;

  // ---- process-wide switchboard (mirrors Telemetry's sink) ----

  /// The installed collector, or nullptr when profiling is off. One
  /// relaxed atomic load — cheap enough for every instrumentation site.
  static ProfileCollector *active() {
    return ActivePtr.load(std::memory_order_acquire);
  }
  static void setActive(ProfileCollector *Collector) {
    ActivePtr.store(Collector, std::memory_order_release);
  }

private:
  void record(ProfileEvent Event);

  static std::atomic<ProfileCollector *> ActivePtr;

  Timer Clock;
  mutable std::mutex Mutex;
  std::vector<ProfileEvent> Events;
  std::map<uint32_t, std::string> ThreadNames;
  std::atomic<uint32_t> NextTid{0};
};

} // namespace rvp

#endif // RVP_SUPPORT_PROFILE_H
