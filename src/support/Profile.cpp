//===- support/Profile.cpp - Chrome/Perfetto trace export -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Profile.h"

#include "support/Stats.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>

using namespace rvp;

std::atomic<ProfileCollector *> ProfileCollector::ActivePtr{nullptr};

namespace {

/// Per-thread tid cache. Keyed by the owning collector so a tid assigned by
/// one run is never reused against a different collector in a later run
/// (the unit tests create several collectors on one thread).
struct ThreadSlot {
  const ProfileCollector *Owner = nullptr;
  uint32_t Tid = 0;
};

thread_local ThreadSlot CurrentSlot;

} // namespace

uint32_t ProfileCollector::currentTid() {
  if (CurrentSlot.Owner != this) {
    CurrentSlot.Owner = this;
    CurrentSlot.Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  }
  return CurrentSlot.Tid;
}

void ProfileCollector::record(ProfileEvent Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(std::move(Event));
}

void ProfileCollector::span(const char *Name, const char *Category,
                            uint64_t StartUs, uint64_t DurUs) {
  ProfileEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Phase = 'X';
  E.TsUs = StartUs;
  E.DurUs = DurUs;
  E.Tid = currentTid();
  record(std::move(E));
}

void ProfileCollector::counter(const char *Name, double Value) {
  ProfileEvent E;
  E.Name = Name;
  E.Category = "metric";
  E.Phase = 'C';
  E.TsUs = nowUs();
  E.Tid = currentTid();
  E.Value = Value;
  record(std::move(E));
}

void ProfileCollector::instant(const char *Name, const char *Category) {
  ProfileEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Phase = 'i';
  E.TsUs = nowUs();
  E.Tid = currentTid();
  record(std::move(E));
}

void ProfileCollector::setThreadName(const std::string &Name) {
  uint32_t Tid = currentTid();
  std::lock_guard<std::mutex> Lock(Mutex);
  ThreadNames[Tid] = Name;
}

size_t ProfileCollector::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

std::string ProfileCollector::toJson() const {
  std::vector<ProfileEvent> Sorted;
  std::map<uint32_t, std::string> Names;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Sorted = Events;
    Names = ThreadNames;
  }
  // Stable: events with equal stamps keep their recording order.
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const ProfileEvent &A, const ProfileEvent &B) {
                     return A.TsUs < B.TsUs;
                   });
  // Any thread that recorded an event gets a track name.
  for (const ProfileEvent &E : Sorted)
    if (!Names.count(E.Tid))
      Names[E.Tid] = formatString("thread-%u", E.Tid);

  std::string Out;
  Out.reserve(Sorted.size() * 96 + 256);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto append = [&](const std::string &Entry) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n";
    Out += Entry;
  };
  for (const auto &[Tid, Name] : Names)
    append(formatString("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                        "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                        Tid, jsonEscape(Name).c_str()));
  for (const ProfileEvent &E : Sorted) {
    switch (E.Phase) {
    case 'X':
      append(formatString("{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\","
                          "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u}",
                          jsonEscape(E.Name).c_str(), E.Category,
                          static_cast<unsigned long long>(E.TsUs),
                          static_cast<unsigned long long>(E.DurUs), E.Tid));
      break;
    case 'C':
      append(formatString("{\"ph\":\"C\",\"name\":\"%s\",\"cat\":\"%s\","
                          "\"ts\":%llu,\"pid\":1,\"tid\":%u,"
                          "\"args\":{\"value\":%s}}",
                          jsonEscape(E.Name).c_str(), E.Category,
                          static_cast<unsigned long long>(E.TsUs), E.Tid,
                          jsonNumber(E.Value).c_str()));
      break;
    case 'i':
      append(formatString("{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"%s\","
                          "\"ts\":%llu,\"pid\":1,\"tid\":%u,\"s\":\"t\"}",
                          jsonEscape(E.Name).c_str(), E.Category,
                          static_cast<unsigned long long>(E.TsUs), E.Tid));
      break;
    default:
      break;
    }
  }
  Out += "\n]}\n";
  return Out;
}

bool ProfileCollector::writeFile(const std::string &Path,
                                 std::string &Error) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    Error = formatString("cannot open profile output '%s'", Path.c_str());
    return false;
  }
  Out << toJson();
  Out.flush();
  if (!Out) {
    Error = formatString("failed writing profile output '%s'", Path.c_str());
    return false;
  }
  return true;
}
