//===- support/Compiler.h - Compiler abstraction helpers --------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability and diagnostics macros shared by every library in the
/// project. Nothing here depends on any other project header.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_COMPILER_H
#define RVP_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached. Prints the message
/// and aborts in all build modes; control never returns.
[[noreturn]] inline void rvpUnreachableInternal(const char *Msg,
                                                const char *File, int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

#define RVP_UNREACHABLE(msg) rvpUnreachableInternal(msg, __FILE__, __LINE__)

#if defined(__GNUC__) || defined(__clang__)
#define RVP_LIKELY(x) __builtin_expect(!!(x), 1)
#define RVP_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define RVP_LIKELY(x) (x)
#define RVP_UNLIKELY(x) (x)
#endif

#endif // RVP_SUPPORT_COMPILER_H
