//===- support/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size work-stealing thread pool used to parallelize the per-COP
/// encode+solve loop of the detectors (detect/Detect.cpp): candidate races
/// within one window are decided by independent SMT queries, so they
/// schedule as independent tasks while the window-level bookkeeping stays
/// sequential.
///
/// Each worker owns a deque. The owner pushes and pops at the back (LIFO —
/// freshly spawned work is hot in cache); idle workers steal from the
/// *front* of a victim's deque (FIFO — the oldest, likely largest, task).
/// Submissions from non-pool threads are distributed round-robin.
///
/// submit() returns a std::future carrying the task's result or exception.
/// parallelFor() distributes an index range over the workers, blocks until
/// every index completed, and rethrows the first body exception after the
/// barrier. The destructor drains every queued task before joining.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_THREADPOOL_H
#define RVP_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rvp {

/// Move-only type-erased nullary callable. std::function requires copyable
/// targets, which std::packaged_task (the carrier behind submit()) is not.
class UniqueTask {
public:
  UniqueTask() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, UniqueTask>>>
  UniqueTask(Fn &&F)
      : Impl(std::make_unique<Model<std::decay_t<Fn>>>(
            std::forward<Fn>(F))) {}

  void operator()() { Impl->run(); }
  explicit operator bool() const { return Impl != nullptr; }

private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void run() = 0;
  };
  template <typename Fn> struct Model : Concept {
    template <typename U>
    explicit Model(U &&F) : F(std::forward<U>(F)) {}
    void run() override { F(); }
    Fn F;
  };
  std::unique_ptr<Concept> Impl;
};

class ThreadPool {
public:
  /// Spawns \p Workers threads; 0 means defaultWorkerCount().
  explicit ThreadPool(unsigned Workers = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// std::thread::hardware_concurrency(), never less than 1.
  static unsigned defaultWorkerCount();

  /// Index of the pool worker running the calling thread, or -1 on threads
  /// this pool does not own (e.g. the thread blocked in parallelFor).
  int currentWorkerIndex() const;

  /// Schedules \p F and returns a future for its result; an exception
  /// escaping \p F is captured and rethrown from future::get().
  template <typename Fn>
  auto submit(Fn &&F)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    std::packaged_task<R()> Task(std::forward<Fn>(F));
    std::future<R> Result = Task.get_future();
    schedule(UniqueTask(std::move(Task)));
    return Result;
  }

  /// Runs Body(I) for every I in [Begin, End) across the workers and waits
  /// for all of them. Every index runs exactly once even when bodies throw;
  /// the first exception (by completion time) is rethrown after the
  /// barrier. Runs inline when called from a worker of this pool (no
  /// nested scheduling) or when the pool has no workers.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Body);

private:
  struct WorkerQueue {
    std::mutex Mutex;
    std::deque<UniqueTask> Tasks;
  };

  void schedule(UniqueTask Task);
  bool tryPop(unsigned Self, UniqueTask &Out);
  void workerLoop(unsigned Index);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;
  std::mutex SleepMutex;
  std::condition_variable SleepCv;
  std::atomic<size_t> QueuedTasks{0};
  std::atomic<unsigned> NextQueue{0};
  bool Stopping = false; ///< guarded by SleepMutex
};

} // namespace rvp

#endif // RVP_SUPPORT_THREADPOOL_H
