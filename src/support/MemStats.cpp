//===- support/MemStats.cpp - Per-subsystem memory accounting ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/MemStats.h"

#include "support/Stats.h"
#include "support/StringUtils.h"

#include <atomic>
#include <cstdio>
#include <cstring>

using namespace rvp;

namespace {

constexpr size_t NumPools = static_cast<size_t>(MemPool::Count);

struct PoolState {
  std::atomic<uint64_t> Current{0};
  std::atomic<uint64_t> Peak{0};
};

PoolState &pool(MemPool P) {
  static PoolState Pools[NumPools];
  return Pools[static_cast<size_t>(P)];
}

/// Reads one "Vm...:  12345 kB" field from /proc/self/status. Returns 0
/// when procfs is unavailable or the field is absent (non-Linux hosts).
uint64_t readProcStatusKb(const char *Field) {
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  uint64_t Kb = 0;
  size_t FieldLen = std::strlen(Field);
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, Field, FieldLen) != 0 || Line[FieldLen] != ':')
      continue;
    unsigned long long Value = 0;
    if (std::sscanf(Line + FieldLen + 1, " %llu", &Value) == 1)
      Kb = Value;
    break;
  }
  std::fclose(F);
  return Kb;
}

} // namespace

const char *rvp::memPoolName(MemPool Pool) {
  switch (Pool) {
  case MemPool::Formula:
    return "formula";
  case MemPool::Clauses:
    return "clauses";
  case MemPool::Encoding:
    return "encoding";
  case MemPool::Trace:
    return "trace";
  case MemPool::FormulaDag:
    return "formula_dag";
  case MemPool::Count:
    break;
  }
  return "unknown";
}

void MemStats::add(MemPool P, uint64_t Bytes) {
  PoolState &S = pool(P);
  uint64_t Now =
      S.Current.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  // CAS-max: concurrent adders converge on the true high-water mark.
  uint64_t Peak = S.Peak.load(std::memory_order_relaxed);
  while (Now > Peak &&
         !S.Peak.compare_exchange_weak(Peak, Now,
                                       std::memory_order_relaxed))
    ;
}

void MemStats::sub(MemPool P, uint64_t Bytes) {
  pool(P).Current.fetch_sub(Bytes, std::memory_order_relaxed);
}

uint64_t MemStats::current(MemPool P) {
  return pool(P).Current.load(std::memory_order_relaxed);
}

uint64_t MemStats::peak(MemPool P) {
  return pool(P).Peak.load(std::memory_order_relaxed);
}

void MemStats::reset() {
  for (size_t I = 0; I < NumPools; ++I) {
    PoolState &S = pool(static_cast<MemPool>(I));
    S.Current.store(0, std::memory_order_relaxed);
    S.Peak.store(0, std::memory_order_relaxed);
  }
}

uint64_t MemStats::currentRssBytes() {
  return readProcStatusKb("VmRSS") * 1024;
}

uint64_t MemStats::peakRssBytes() { return readProcStatusKb("VmHWM") * 1024; }

void MemStats::publishGauges(MetricsRegistry &Reg) {
  for (size_t I = 0; I < NumPools; ++I) {
    MemPool P = static_cast<MemPool>(I);
    const char *Name = memPoolName(P);
    Reg.gauge(formatString("mem.%s_bytes", Name))
        .set(static_cast<double>(current(P)));
    Reg.gauge(formatString("mem.%s_peak_bytes", Name))
        .set(static_cast<double>(peak(P)));
  }
  Reg.gauge("mem.rss_bytes").set(static_cast<double>(currentRssBytes()));
  Reg.gauge("mem.peak_rss_bytes").set(static_cast<double>(peakRssBytes()));
}
