//===- support/FaultInjector.h - Deterministic fault injection ---*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, deterministic fault injector used to exercise every
/// degradation path of the detection pipeline (docs/ROBUSTNESS.md). Code
/// that can fail in production tags the failure point with a *site name*
/// and asks shouldFail(site) before proceeding; the injector decides from
/// a user-supplied spec whether that particular hit of the site fails.
///
/// Spec grammar (`--inject-faults=` / `RV_FAULTS`):
///
///   spec    := entry (',' entry)*
///   entry   := 'seed=' N            seed for the probabilistic trigger
///            | site                 fire on every hit
///            | site '=' N           fire on the Nth hit only (1-based)
///            | site '=' N '+'       fire on every hit from the Nth on
///            | site '=' N '%'       fire each hit with probability N/100
///
/// Known sites (the catalog lives in docs/ROBUSTNESS.md):
///
///   solver.timeout     one-shot solve returns Unknown
///   session.corrupt    incremental session query fails and poisons itself
///   z3.unavailable     the Z3 backend factory reports "not available"
///   satdb.alloc        clause-database allocation fails inside the SAT core
///   trace.short_read   trace file reads truncate mid-stream
///   trace.garble       one trace line is corrupted on read
///   detect.abort       the detector process dies after a window barrier
///   net.short_write    a socket write fails mid-frame (peer gone)
///   net.client_stall   rvpclient stalls mid-frame instead of sending
///   net.frame_garble   one received byte is corrupted before framing
///   server.worker_abort  a daemon analysis task dies mid-window
///
/// Everything is deterministic given the spec: per-site hit counters plus
/// a seeded xorshift RNG for the '%' trigger. The disabled fast path is a
/// single relaxed atomic load, so production runs pay nothing.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_FAULTINJECTOR_H
#define RVP_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rvp {

/// Canonical site names, so call sites and tests cannot drift apart.
namespace faults {
inline constexpr const char *SolverTimeout = "solver.timeout";
inline constexpr const char *SessionCorrupt = "session.corrupt";
inline constexpr const char *Z3Unavailable = "z3.unavailable";
inline constexpr const char *SatDbAlloc = "satdb.alloc";
inline constexpr const char *TraceShortRead = "trace.short_read";
inline constexpr const char *TraceGarble = "trace.garble";
inline constexpr const char *DetectAbort = "detect.abort";
inline constexpr const char *NetShortWrite = "net.short_write";
inline constexpr const char *NetClientStall = "net.client_stall";
inline constexpr const char *NetFrameGarble = "net.frame_garble";
inline constexpr const char *ServerWorkerAbort = "server.worker_abort";
inline constexpr const char *ServerWorkerStall = "server.worker_stall";
} // namespace faults

/// All known site names (used by `--inject-faults=help` and the spec
/// validator).
const std::vector<std::string> &knownFaultSites();

class FaultInjector {
public:
  static FaultInjector &instance();

  /// True once a spec with at least one site is installed.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Parses and installs \p Spec (replacing any previous configuration).
  /// Unknown sites and malformed triggers are errors; on failure the
  /// previous configuration is kept and \p Error describes the problem.
  /// An empty spec disables injection.
  static bool configure(const std::string &Spec, std::string &Error);

  /// Clears the configuration and all hit counters (tests).
  static void reset();

  /// Asks whether this hit of \p Site should fail. Counts the hit either
  /// way. The disabled fast path is one atomic load.
  static bool shouldFail(const char *Site) {
    if (!enabled())
      return false;
    return instance().shouldFailSlow(Site);
  }

  /// Total hits / fired faults of \p Site since the last configure/reset.
  uint64_t hits(const std::string &Site) const;
  uint64_t fired(const std::string &Site) const;
  /// Fired faults across all sites.
  uint64_t totalFired() const;

private:
  bool shouldFailSlow(const char *Site);

  static std::atomic<bool> EnabledFlag;

  struct Rule {
    enum class Trigger : uint8_t { Always, Nth, FromNth, Percent };
    std::string Site;
    Trigger Kind = Trigger::Always;
    uint64_t N = 1;       ///< Nth / FromNth threshold, Percent chance
    uint64_t Hits = 0;    ///< hits observed at this site
    uint64_t Fired = 0;   ///< hits that failed
  };

  struct State;
  State &state();
  const State &state() const;
};

} // namespace rvp

#endif // RVP_SUPPORT_FAULTINJECTOR_H
