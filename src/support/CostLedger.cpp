//===- support/CostLedger.cpp - Per-COP / per-window cost ledger ------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CostLedger.h"

#include "support/Stats.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <tuple>

using namespace rvp;

namespace {

bool copCostlier(const CopCost &A, const CopCost &B) {
  double TotalA = A.totalSeconds(), TotalB = B.totalSeconds();
  if (TotalA != TotalB)
    return TotalA > TotalB;
  return std::tie(A.Window, A.LocFirst, A.LocSecond) <
         std::tie(B.Window, B.LocFirst, B.LocSecond);
}

bool windowCostlier(const WindowCost &A, const WindowCost &B) {
  if (A.Seconds != B.Seconds)
    return A.Seconds > B.Seconds;
  return A.Index < B.Index;
}

} // namespace

void CostLedger::recordCop(CopCost Cost) {
  Cops.push_back(std::move(Cost));
  if (Cops.size() > 4 * TopK)
    pruneCops();
}

void CostLedger::recordWindow(WindowCost Cost) {
  Windows.push_back(Cost);
  if (Windows.size() > 4 * TopK)
    pruneWindows();
}

void CostLedger::pruneCops() {
  std::nth_element(Cops.begin(), Cops.begin() + TopK - 1, Cops.end(),
                   copCostlier);
  Cops.resize(TopK);
}

void CostLedger::pruneWindows() {
  std::nth_element(Windows.begin(), Windows.begin() + TopK - 1, Windows.end(),
                   windowCostlier);
  Windows.resize(TopK);
}

std::vector<CopCost> CostLedger::topCops() const {
  std::vector<CopCost> Sorted = Cops;
  std::sort(Sorted.begin(), Sorted.end(), copCostlier);
  if (Sorted.size() > TopK)
    Sorted.resize(TopK);
  return Sorted;
}

std::vector<WindowCost> CostLedger::topWindows() const {
  std::vector<WindowCost> Sorted = Windows;
  std::sort(Sorted.begin(), Sorted.end(), windowCostlier);
  if (Sorted.size() > TopK)
    Sorted.resize(TopK);
  return Sorted;
}

std::string CostLedger::renderTable() const {
  std::vector<WindowCost> TopW = topWindows();
  std::vector<CopCost> TopC = topCops();
  if (TopW.empty() && TopC.empty())
    return "";
  std::string Out = "top-costs:\n";
  if (!TopW.empty()) {
    Out += "  windows (most expensive first):\n";
    for (const WindowCost &W : TopW)
      Out += formatString("    window %zu: %.3fs  (%zu cops, %zu solves)\n",
                          W.Index, W.Seconds, W.Cops, W.Solves);
  }
  if (!TopC.empty()) {
    Out += "  cops (most expensive first):\n";
    for (const CopCost &C : TopC)
      Out += formatString(
          "    w%zu %s <-> %s on %s [%s]: %.3fs  "
          "(encode %.3fs, solve %.3fs, witness %.3fs, mem %llu B, "
          "attempts %u, cone %llu)\n",
          C.Window, C.LocFirst.c_str(), C.LocSecond.c_str(),
          C.Variable.c_str(), C.Outcome.c_str(), C.totalSeconds(),
          C.EncodeSeconds, C.SolveSeconds, C.WitnessSeconds,
          static_cast<unsigned long long>(C.MemDeltaBytes), C.Attempts,
          static_cast<unsigned long long>(C.ConeEvents));
  }
  return Out;
}

void CostLedger::addToJson(JsonObject &Json) const {
  std::string WindowsJson = "[";
  bool First = true;
  for (const WindowCost &W : topWindows()) {
    if (!First)
      WindowsJson += ",";
    First = false;
    WindowsJson += JsonObject()
                       .field("index", static_cast<uint64_t>(W.Index))
                       .field("cops", static_cast<uint64_t>(W.Cops))
                       .field("solves", static_cast<uint64_t>(W.Solves))
                       .field("seconds", W.Seconds)
                       .str();
  }
  WindowsJson += "]";

  std::string CopsJson = "[";
  First = true;
  for (const CopCost &C : topCops()) {
    if (!First)
      CopsJson += ",";
    First = false;
    CopsJson += JsonObject()
                    .field("window", static_cast<uint64_t>(C.Window))
                    .field("first", C.LocFirst)
                    .field("second", C.LocSecond)
                    .field("variable", C.Variable)
                    .field("outcome", C.Outcome)
                    .field("encode_seconds", C.EncodeSeconds)
                    .field("solve_seconds", C.SolveSeconds)
                    .field("witness_seconds", C.WitnessSeconds)
                    .field("total_seconds", C.totalSeconds())
                    .field("mem_delta_bytes", C.MemDeltaBytes)
                    .field("attempts", static_cast<uint64_t>(C.Attempts))
                    .field("cone_events", C.ConeEvents)
                    .str();
  }
  CopsJson += "]";

  Json.raw("top_costs", JsonObject()
                            .raw("windows", WindowsJson)
                            .raw("cops", CopsJson)
                            .str());
}
