//===- support/FaultInjector.cpp - Deterministic fault injection -----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/StringUtils.h"

#include <mutex>

using namespace rvp;

const std::vector<std::string> &rvp::knownFaultSites() {
  static const std::vector<std::string> Sites = {
      faults::SolverTimeout,  faults::SessionCorrupt,
      faults::Z3Unavailable,  faults::SatDbAlloc,
      faults::TraceShortRead, faults::TraceGarble,
      faults::DetectAbort,    faults::NetShortWrite,
      faults::NetClientStall, faults::NetFrameGarble,
      faults::ServerWorkerAbort, faults::ServerWorkerStall,
  };
  return Sites;
}

std::atomic<bool> FaultInjector::EnabledFlag{false};

/// All mutable injector state behind one mutex. shouldFail is on the
/// detector hot path only when injection is active, where determinism
/// matters far more than throughput.
struct FaultInjector::State {
  std::mutex Mu;
  std::vector<Rule> Rules;
  uint64_t RngState = 0x9e3779b97f4a7c15ULL;

  uint64_t nextRand() {
    // xorshift64*: deterministic, seedable, good enough for fault dice.
    RngState ^= RngState >> 12;
    RngState ^= RngState << 25;
    RngState ^= RngState >> 27;
    return RngState * 0x2545f4914f6cdd1dULL;
  }
};

FaultInjector &FaultInjector::instance() {
  static FaultInjector Injector;
  return Injector;
}

FaultInjector::State &FaultInjector::state() {
  static State S;
  return S;
}

const FaultInjector::State &FaultInjector::state() const {
  return const_cast<FaultInjector *>(this)->state();
}

static bool knownSite(std::string_view Site) {
  for (const std::string &S : knownFaultSites())
    if (S == Site)
      return true;
  return false;
}

bool FaultInjector::configure(const std::string &Spec, std::string &Error) {
  std::vector<Rule> Rules;
  uint64_t Seed = 0x9e3779b97f4a7c15ULL;
  for (std::string_view Entry : split(Spec, ',')) {
    Entry = trim(Entry);
    if (Entry.empty())
      continue;
    std::string_view Site = Entry;
    std::string_view Trigger;
    bool HasTrigger = false;
    if (size_t Eq = Entry.find('='); Eq != std::string_view::npos) {
      Site = Entry.substr(0, Eq);
      Trigger = Entry.substr(Eq + 1);
      HasTrigger = true;
    }
    if (Site == "seed") {
      int64_t Value = 0;
      if (!parseInt(Trigger, Value) || Value < 0) {
        Error = "malformed fault seed '" + std::string(Trigger) + "'";
        return false;
      }
      Seed = static_cast<uint64_t>(Value) * 0x9e3779b97f4a7c15ULL + 1;
      continue;
    }
    if (!knownSite(Site)) {
      Error = "unknown fault site '" + std::string(Site) +
              "' (known: " + join(knownFaultSites(), ", ") + ")";
      return false;
    }
    Rule R;
    R.Site = std::string(Site);
    if (HasTrigger && Trigger.empty()) {
      // "site=" is a typo, not a request to always fire.
      Error = "empty fault trigger for site '" + R.Site +
              "' (want N, N+, or N%; drop the '=' to fire always)";
      return false;
    }
    if (Trigger.empty()) {
      R.Kind = Rule::Trigger::Always;
    } else {
      char Suffix = Trigger.back();
      std::string_view Num = Trigger;
      if (Suffix == '+' || Suffix == '%')
        Num = Trigger.substr(0, Trigger.size() - 1);
      int64_t Value = 0;
      if (!parseInt(Num, Value) || Value < 0) {
        Error = "malformed fault trigger '" + std::string(Trigger) +
                "' for site '" + R.Site + "' (want N, N+, or N%)";
        return false;
      }
      if (Suffix == '+') {
        R.Kind = Rule::Trigger::FromNth;
      } else if (Suffix == '%') {
        if (Value > 100) {
          Error = "fault probability above 100% for site '" + R.Site + "'";
          return false;
        }
        R.Kind = Rule::Trigger::Percent;
      } else {
        R.Kind = Rule::Trigger::Nth;
        if (Value == 0) {
          Error = "fault trigger for site '" + R.Site +
                  "' is 1-based; got 0";
          return false;
        }
      }
      R.N = static_cast<uint64_t>(Value);
    }
    Rules.push_back(std::move(R));
  }

  State &S = instance().state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Rules = std::move(Rules);
  S.RngState = Seed;
  EnabledFlag.store(!S.Rules.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjector::reset() {
  State &S = instance().state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Rules.clear();
  S.RngState = 0x9e3779b97f4a7c15ULL;
  EnabledFlag.store(false, std::memory_order_relaxed);
}

bool FaultInjector::shouldFailSlow(const char *Site) {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  bool Fail = false;
  for (Rule &R : S.Rules) {
    if (R.Site != Site)
      continue;
    ++R.Hits;
    bool Fire = false;
    switch (R.Kind) {
    case Rule::Trigger::Always:
      Fire = true;
      break;
    case Rule::Trigger::Nth:
      Fire = R.Hits == R.N;
      break;
    case Rule::Trigger::FromNth:
      Fire = R.Hits >= R.N;
      break;
    case Rule::Trigger::Percent:
      Fire = S.nextRand() % 100 < R.N;
      break;
    }
    if (Fire) {
      ++R.Fired;
      Fail = true;
    }
  }
  return Fail;
}

uint64_t FaultInjector::hits(const std::string &Site) const {
  const State &S = state();
  std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.Mu));
  uint64_t Total = 0;
  for (const Rule &R : S.Rules)
    if (R.Site == Site)
      Total += R.Hits;
  return Total;
}

uint64_t FaultInjector::fired(const std::string &Site) const {
  const State &S = state();
  std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.Mu));
  uint64_t Total = 0;
  for (const Rule &R : S.Rules)
    if (R.Site == Site)
      Total += R.Fired;
  return Total;
}

uint64_t FaultInjector::totalFired() const {
  const State &S = state();
  std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(S.Mu));
  uint64_t Total = 0;
  for (const Rule &R : S.Rules)
    Total += R.Fired;
  return Total;
}
