//===- support/CommandLine.h - Tiny option parser ---------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small command-line option parser used by the example and
/// benchmark executables. Supports `--name=value` and boolean `--flag`
/// forms, prints usage on `--help`.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_COMMANDLINE_H
#define RVP_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace rvp {

/// Exit codes shared by the command-line tools (documented in the README
/// and docs/ROBUSTNESS.md). Keep scripts in scripts/ in sync.
enum ExitCode : int {
  ExitSuccess = 0,  ///< clean run, nothing found
  ExitFindings = 1, ///< the analysis found races / violations / deadlocks
  ExitUsage = 2,    ///< bad flags, malformed values, unreadable inputs
  ExitInternal = 3, ///< internal error, or a degraded run with unknowns
};

/// Collects option definitions, parses argv, and answers typed lookups.
class OptionParser {
public:
  explicit OptionParser(std::string ProgramDescription)
      : Description(std::move(ProgramDescription)) {}

  /// Registers an option; \p Default is rendered in --help output.
  void addOption(std::string Name, std::string Help,
                 std::string Default = "");

  /// Parses argv. On `--help` prints usage and returns false; on malformed
  /// input prints an error and returns false.
  bool parse(int Argc, const char **Argv);

  /// True if the option was present on the command line.
  bool hasOption(const std::string &Name) const;

  std::string getString(const std::string &Name,
                        const std::string &Default = "") const;
  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;
  bool getBool(const std::string &Name, bool Default = false) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string> &positional() const { return Positional; }

private:
  struct Option {
    std::string Name;
    std::string Help;
    std::string Default;
    std::string Value;
    bool Present = false;
  };

  Option *find(const std::string &Name);
  const Option *find(const std::string &Name) const;
  void printHelp(const char *Argv0) const;

  std::string Description;
  std::vector<Option> Options;
  std::vector<std::string> Positional;
};

} // namespace rvp

#endif // RVP_SUPPORT_COMMANDLINE_H
