//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Profile.h"
#include "support/StringUtils.h"

#include <algorithm>

namespace rvp {

namespace {
/// Identity of the pool worker running the current thread. Pool-qualified so
/// that currentWorkerIndex() answers -1 on threads owned by *other* pools.
thread_local const ThreadPool *CurrentPool = nullptr;
thread_local int CurrentIndex = -1;
} // namespace

unsigned ThreadPool::defaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = defaultWorkerCount();
  Queues.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(SleepMutex);
    Stopping = true;
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

int ThreadPool::currentWorkerIndex() const {
  return CurrentPool == this ? CurrentIndex : -1;
}

void ThreadPool::schedule(UniqueTask Task) {
  int Self = currentWorkerIndex();
  unsigned Target = Self >= 0
                        ? static_cast<unsigned>(Self)
                        : NextQueue.fetch_add(1, std::memory_order_relaxed) %
                              Queues.size();
  {
    std::lock_guard<std::mutex> Guard(Queues[Target]->Mutex);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  QueuedTasks.fetch_add(1, std::memory_order_release);
  // Taking (and immediately dropping) SleepMutex orders the counter update
  // against a worker that already evaluated the wait predicate: either it
  // saw the task, or it is fully asleep and receives the notify.
  { std::lock_guard<std::mutex> Guard(SleepMutex); }
  SleepCv.notify_one();
}

bool ThreadPool::tryPop(unsigned Self, UniqueTask &Out) {
  {
    WorkerQueue &Own = *Queues[Self];
    std::lock_guard<std::mutex> Guard(Own.Mutex);
    if (!Own.Tasks.empty()) {
      Out = std::move(Own.Tasks.back());
      Own.Tasks.pop_back();
      QueuedTasks.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t Offset = 1; Offset < Queues.size(); ++Offset) {
    WorkerQueue &Victim = *Queues[(Self + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Guard(Victim.Mutex);
    if (!Victim.Tasks.empty()) {
      Out = std::move(Victim.Tasks.front());
      Victim.Tasks.pop_front();
      QueuedTasks.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentIndex = static_cast<int>(Index);
  // Label this worker's profile track so solve spans land on named
  // per-worker rows in Perfetto. Pools are constructed after the collector
  // is installed (the driver creates them per parallel section).
  if (ProfileCollector *P = ProfileCollector::active())
    P->setThreadName(formatString("worker-%u", Index));
  for (;;) {
    UniqueTask Task;
    if (tryPop(Index, Task)) {
      Task();
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMutex);
    if (Stopping && QueuedTasks.load(std::memory_order_acquire) == 0)
      return;
    SleepCv.wait(Lock, [this] {
      return Stopping || QueuedTasks.load(std::memory_order_acquire) != 0;
    });
    if (Stopping && QueuedTasks.load(std::memory_order_acquire) == 0)
      return;
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Body) {
  if (Begin >= End)
    return;
  if (Threads.empty() || currentWorkerIndex() >= 0 || End - Begin == 1) {
    for (size_t I = Begin; I < End; ++I)
      Body(I);
    return;
  }

  struct LoopState {
    std::atomic<size_t> Next;
    std::atomic<size_t> Done{0};
    size_t End = 0;
    size_t Total = 0;
    std::mutex Mutex;
    std::condition_variable Cv;
    std::exception_ptr Error;
    bool Finished = false;
  };
  auto State = std::make_shared<LoopState>();
  State->Next.store(Begin, std::memory_order_relaxed);
  State->End = End;
  State->Total = End - Begin;

  // One claimer task per worker; each drains indices until the range is
  // exhausted. &Body stays valid because this thread blocks until Done ==
  // Total, which happens before the last Body call returns control here.
  size_t Runners = std::min<size_t>(Threads.size(), State->Total);
  for (size_t R = 0; R < Runners; ++R) {
    schedule(UniqueTask([State, &Body] {
      for (;;) {
        size_t I = State->Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= State->End)
          break;
        try {
          Body(I);
        } catch (...) {
          std::lock_guard<std::mutex> Guard(State->Mutex);
          if (!State->Error)
            State->Error = std::current_exception();
        }
        if (State->Done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            State->Total) {
          {
            std::lock_guard<std::mutex> Guard(State->Mutex);
            State->Finished = true;
          }
          State->Cv.notify_one();
        }
      }
    }));
  }

  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Cv.wait(Lock, [&] { return State->Finished; });
  if (State->Error)
    std::rethrow_exception(State->Error);
}

} // namespace rvp
