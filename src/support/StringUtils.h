//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal string utilities shared by the trace serializer, the MiniRV
/// lexer, and the command-line front ends.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_STRINGUTILS_H
#define RVP_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace rvp {

/// Splits \p Text on \p Sep; empty fields are kept.
std::vector<std::string_view> split(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Parses a signed 64-bit decimal integer. Returns false on any malformed
/// input (empty, overflow, trailing junk).
bool parseInt(std::string_view Text, int64_t &Out);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rvp

#endif // RVP_SUPPORT_STRINGUTILS_H
