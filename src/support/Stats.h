//===- support/Stats.h - Metrics registry ------------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry: named counters, gauges, and fixed-bucket
/// latency histograms with percentile estimates. The detection pipeline
/// records into it when telemetry is enabled (support/Telemetry.h) and
/// DetectionStats carries a snapshot out to the --stats table and the
/// --stats-json machine form.
///
/// The registry is thread-safe: detector workers (support/ThreadPool.h)
/// record from the parallel per-COP solve loop, so counters and gauges are
/// relaxed atomics, histograms take a per-histogram mutex, and the name →
/// metric maps are guarded by a registry mutex. References returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime —
/// reset() zeroes values but keeps registrations, so hot paths may cache
/// them (function-local statics are fine: magic-static init is
/// thread-safe).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_STATS_H
#define RVP_SUPPORT_STATS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rvp {

/// A monotonically increasing event count. Increments are relaxed atomics:
/// concurrent workers never lose counts, and nothing orders through them.
class Counter {
public:
  void inc() { V.fetch_add(1, std::memory_order_relaxed); }
  void add(uint64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A point-in-time value (last write wins, atomically).
class Gauge {
public:
  void set(double Value) { V.store(Value, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Aggregates of one histogram, with percentile estimates.
struct HistogramSnapshot {
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  double P50 = 0;
  double P90 = 0;
  double P99 = 0;

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
};

/// A fixed-bucket histogram for non-negative values (latencies in seconds).
/// Buckets are log-spaced: bucket i covers (Base*Growth^(i-1), Base*Growth^i]
/// with Base = 1e-6 s and Growth = 1.3, so the range 1µs .. ~8e5s is covered
/// with ≤ 30% relative bucket width; percentile() interpolates linearly
/// within a bucket and clamps to the observed [min, max]. All operations
/// take a per-histogram mutex so concurrent record() calls keep the
/// bucket/total/sum invariants consistent.
class Histogram {
public:
  static constexpr size_t NumBuckets = 96;

  /// Inclusive upper bound of bucket \p I (the last bucket catches
  /// everything above the penultimate bound).
  static double bucketUpperBound(size_t I);

  void record(double Value);

  uint64_t count() const {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Total;
  }
  double sum() const {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Sum;
  }

  /// Percentile estimate for \p Q in [0, 1]; 0 when empty.
  double percentile(double Q) const;

  HistogramSnapshot snapshot() const;
  void reset();

private:
  double percentileLocked(double Q) const;

  mutable std::mutex Mutex;
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Total = 0;
  double Sum = 0;
  double MinV = 0;
  double MaxV = 0;
};

/// Point-in-time copy of every registered metric, ordered by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms;

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Value of a counter by name; 0 when absent.
  uint64_t counterValue(std::string_view Name) const;

  /// Human-readable rendering, one metric per line, indented by \p Indent.
  std::string renderTable(unsigned Indent = 2) const;
};

/// The registry. Metrics are created on first lookup; lookups are by full
/// dotted name ("solver.latency_seconds"). Cache the returned reference on
/// hot paths.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name) {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Counters[Name];
  }
  Gauge &gauge(const std::string &Name) {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Gauges[Name];
  }
  Histogram &histogram(const std::string &Name) {
    std::lock_guard<std::mutex> Guard(Mutex);
    return Histograms[Name];
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric but keeps registrations: references handed out
  /// earlier remain valid.
  void reset();

  /// The process-wide registry the pipeline instrumentation records into.
  static MetricsRegistry &global();

private:
  // std::map: node-based, so metric references are stable across inserts
  // and remain usable without the registry mutex once handed out.
  mutable std::mutex Mutex;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
};

// --------------------------------------------------------------- JSON

/// Escapes \p Text for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters; UTF-8 passes through unchanged).
std::string jsonEscape(std::string_view Text);

/// Incremental writer for one JSON object; keys are emitted in call order.
/// str() closes the object. Values passed to field() are escaped; raw()
/// splices pre-rendered JSON (for nested objects/arrays).
class JsonObject {
public:
  JsonObject &field(std::string_view Key, uint64_t Value);
  JsonObject &field(std::string_view Key, int64_t Value);
  JsonObject &field(std::string_view Key, double Value);
  JsonObject &field(std::string_view Key, bool Value);
  JsonObject &field(std::string_view Key, std::string_view Value);
  JsonObject &field(std::string_view Key, const char *Value) {
    return field(Key, std::string_view(Value));
  }
  JsonObject &raw(std::string_view Key, std::string_view Json);

  std::string str() const { return Buf + "}"; }

private:
  void key(std::string_view Key);
  std::string Buf = "{";
};

/// Renders a double as a JSON number (non-finite values become 0).
std::string jsonNumber(double Value);

/// The snapshot as one JSON object: {"counters":{...},"gauges":{...},
/// "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,"p50":..,
/// "p90":..,"p99":..}}}.
std::string metricsToJson(const MetricsSnapshot &Snapshot);

} // namespace rvp

#endif // RVP_SUPPORT_STATS_H
