//===- support/BuildInfo.cpp - Run metadata for JSON outputs ----------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

#include "support/Stats.h"
#include "support/Version.h"

#include <cstdio>
#include <ctime>

using namespace rvp;

const char *rvp::gitSha() { return RVP_GIT_SHA; }

std::string rvp::isoTimestampUtc() {
  std::time_t Now = std::time(nullptr);
  std::tm Utc{};
  gmtime_r(&Now, &Utc);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                Utc.tm_year + 1900, Utc.tm_mon + 1, Utc.tm_mday, Utc.tm_hour,
                Utc.tm_min, Utc.tm_sec);
  return Buf;
}

void rvp::appendRunMetadata(JsonObject &Json) {
  Json.field("schema_version", static_cast<uint64_t>(StatsSchemaVersion))
      .field("git_sha", gitSha())
      .field("timestamp", isoTimestampUtc());
}
