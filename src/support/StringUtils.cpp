//===- support/StringUtils.cpp - String helpers ---------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <limits>

using namespace rvp;

std::vector<std::string_view> rvp::split(std::string_view Text, char Sep) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Fields.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Fields;
}

std::string_view rvp::trim(std::string_view Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool rvp::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string rvp::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool rvp::parseInt(std::string_view Text, int64_t &Out) {
  Text = trim(Text);
  if (Text.empty())
    return false;
  bool Negative = false;
  size_t I = 0;
  if (Text[0] == '-' || Text[0] == '+') {
    Negative = Text[0] == '-';
    I = 1;
    if (I == Text.size())
      return false;
  }
  uint64_t Magnitude = 0;
  constexpr uint64_t MaxMagnitude =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  for (; I < Text.size(); ++I) {
    char C = Text[I];
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Magnitude > (MaxMagnitude + (Negative ? 1 : 0) - Digit) / 10)
      return false;
    Magnitude = Magnitude * 10 + Digit;
  }
  // Negate in unsigned arithmetic; C++20 guarantees two's-complement
  // conversion, so INT64_MIN round-trips.
  Out = Negative ? static_cast<int64_t>(0 - Magnitude)
                 : static_cast<int64_t>(Magnitude);
  return true;
}

std::string rvp::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}
