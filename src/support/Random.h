//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256** seeded via splitmix64).
/// All randomized components of the project (schedulers, workload
/// generators, fuzzers) use this generator so that every run is reproducible
/// from a 64-bit seed.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_RANDOM_H
#define RVP_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace rvp {

/// splitmix64 step; used to expand a user seed into xoshiro state.
inline uint64_t splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Deterministic xoshiro256** generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eed5eed5eed5eedULL) { reseed(Seed); }

  /// Re-initializes the generator from a 64-bit seed.
  void reseed(uint64_t Seed) {
    for (auto &Word : State)
      Word = splitMix64(Seed);
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly random value in [0, Bound). \p Bound must be > 0.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniformly random value in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && Num <= Den && "chance() requires Num <= Den, Den > 0");
    return below(Den) < Num;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace rvp

#endif // RVP_SUPPORT_RANDOM_H
