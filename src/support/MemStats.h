//===- support/MemStats.h - Per-subsystem memory accounting ------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight per-subsystem byte accounting for the detection pipeline
/// (docs/OBSERVABILITY.md). Subsystems with data structures that dominate
/// large-window memory — the formula DAG, the SAT clause database, the
/// per-window encoding state, and trace storage — report allocations into
/// a fixed set of pools; each pool tracks its current and high-water byte
/// counts with relaxed atomics, so concurrent solver workers account
/// without synchronization and the default (telemetry-off) path pays
/// nothing: every hook site guards on Telemetry::enabled().
///
/// The pools are published as `mem.*` gauges into the metrics registry at
/// snapshot time, alongside the process RSS read from /proc/self/status
/// (0 on platforms without procfs).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_MEMSTATS_H
#define RVP_SUPPORT_MEMSTATS_H

#include <cstddef>
#include <cstdint>

namespace rvp {

class MetricsRegistry;

/// The accounted subsystems. Count is the array bound, not a pool.
enum class MemPool : uint8_t {
  Formula,    ///< FormulaBuilder DAG nodes
  Clauses,    ///< SAT clause database (problem + learned)
  Encoding,   ///< per-window WindowEncoding state
  Trace,      ///< event storage of loaded traces
  FormulaDag, ///< FormulaBuilder arena chunks (smt/Arena.h)
  Count
};

/// Dotted gauge-name stem of \p Pool ("formula", "clauses", ...).
const char *memPoolName(MemPool Pool);

/// Process-wide accounting registry. All operations are relaxed atomics;
/// totals are exact when every add() is matched by a sub() (the RAII
/// owners below guarantee that), and peaks are monotone high-water marks
/// until reset().
class MemStats {
public:
  static void add(MemPool Pool, uint64_t Bytes);
  static void sub(MemPool Pool, uint64_t Bytes);

  static uint64_t current(MemPool Pool);
  static uint64_t peak(MemPool Pool);

  /// Zeroes every pool's current and peak count (run delimiter, paired
  /// with Telemetry::reset()).
  static void reset();

  /// Resident set size in bytes from /proc/self/status (VmRSS), 0 when
  /// unavailable.
  static uint64_t currentRssBytes();

  /// Peak resident set size in bytes (VmHWM), 0 when unavailable.
  static uint64_t peakRssBytes();

  /// Publishes every pool's current/peak plus the RSS numbers into \p Reg
  /// as `mem.<pool>_bytes` / `mem.<pool>_peak_bytes` /
  /// `mem.rss_bytes` / `mem.peak_rss_bytes` gauges.
  static void publishGauges(MetricsRegistry &Reg);
};

/// RAII pool charge: adds \p Bytes on charge(), releases the accumulated
/// total on destruction. Data-structure owners (FormulaBuilder, SatSolver,
/// WindowEncoding) embed one so accounting can never leak across runs even
/// when telemetry is toggled mid-lifetime: only bytes actually charged are
/// ever released.
class MemCharge {
public:
  explicit MemCharge(MemPool Pool) : Pool(Pool) {}
  ~MemCharge() { release(); }
  MemCharge(const MemCharge &) = delete;
  MemCharge &operator=(const MemCharge &) = delete;

  void charge(uint64_t Bytes) {
    MemStats::add(Pool, Bytes);
    Charged += Bytes;
  }

  void release() {
    if (Charged) {
      MemStats::sub(Pool, Charged);
      Charged = 0;
    }
  }

  /// Releases part of the charge (clamped to what was actually charged, so
  /// an owner that shrinks while telemetry is off never underflows).
  void discharge(uint64_t Bytes) {
    if (Bytes > Charged)
      Bytes = Charged;
    if (Bytes) {
      MemStats::sub(Pool, Bytes);
      Charged -= Bytes;
    }
  }

  uint64_t charged() const { return Charged; }

private:
  MemPool Pool;
  uint64_t Charged = 0;
};

} // namespace rvp

#endif // RVP_SUPPORT_MEMSTATS_H
