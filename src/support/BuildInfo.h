//===- support/BuildInfo.h - Run metadata for JSON outputs ------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build and run identity stamped at the top of every machine-readable
/// output (`--stats-json`, bench JSON) so trajectory tooling can key
/// records: a schema version, the configuring checkout's git sha, and an
/// ISO-8601 UTC timestamp. See docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_BUILDINFO_H
#define RVP_SUPPORT_BUILDINFO_H

#include <string>

namespace rvp {

class JsonObject;

/// Version of the machine-readable output schemas (stats JSON, trace
/// events, bench records). Bump when a consumer-visible field changes
/// meaning or disappears; adding fields is not a bump.
inline constexpr unsigned StatsSchemaVersion = 2;

/// Short git sha captured at configure time, "unknown" if git was
/// unavailable.
const char *gitSha();

/// Current wall-clock time as ISO-8601 UTC ("2026-08-08T12:34:56Z").
std::string isoTimestampUtc();

/// Prepends the standard identity triple to \p Json: schema_version,
/// git_sha, timestamp. Call first so the keys lead the object.
void appendRunMetadata(JsonObject &Json);

} // namespace rvp

#endif // RVP_SUPPORT_BUILDINFO_H
