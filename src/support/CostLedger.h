//===- support/CostLedger.h - Per-COP / per-window cost ledger ---*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attribution ledger behind the `top-costs` section of `--stats`
/// (docs/OBSERVABILITY.md): the detection driver records the encode / solve /
/// witness split, formula-memory delta, and retry count of every COP it
/// processes, plus per-window totals, and the ledger keeps the K most
/// expensive of each under a bounded retention cap. That answers the
/// question the flat phase tree cannot — *which* windows and COPs burn the
/// time — in both the human table and the stats JSON.
///
/// The driver only records from sequential contexts (the sequential COP
/// loop and the ordered collection phase of the parallel path), so the
/// ledger needs no locking.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_COSTLEDGER_H
#define RVP_SUPPORT_COSTLEDGER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rvp {

class JsonObject;

/// Cost record of one processed COP.
struct CopCost {
  size_t Window = 0;
  std::string LocFirst;
  std::string LocSecond;
  std::string Variable;
  std::string Outcome;
  double EncodeSeconds = 0;
  double SolveSeconds = 0;
  double WitnessSeconds = 0;
  uint64_t MemDeltaBytes = 0;
  unsigned Attempts = 0;
  /// Cone-of-influence size of the sliced encoding (docs/ENCODER.md);
  /// 0 for unsliced encodes and filter outcomes.
  uint64_t ConeEvents = 0;

  double totalSeconds() const {
    return EncodeSeconds + SolveSeconds + WitnessSeconds;
  }
};

/// Cost record of one processed window.
struct WindowCost {
  size_t Index = 0;
  size_t Cops = 0;
  size_t Solves = 0;
  double Seconds = 0;
};

/// Bounded collector for the records above. Retention: once more than
/// 4 * K records of a kind accumulate, the cheapest are dropped so a long
/// run holds O(K) entries per kind, while topCops()/topWindows() stay
/// exact for the K most expensive.
class CostLedger {
public:
  explicit CostLedger(size_t TopK = 10) : TopK(TopK ? TopK : 1) {}

  void recordCop(CopCost Cost);
  void recordWindow(WindowCost Cost);

  size_t copCount() const { return Cops.size(); }
  size_t windowCount() const { return Windows.size(); }
  size_t topK() const { return TopK; }

  /// The K most expensive COPs, most expensive first. Ties break by
  /// (window, loc_first, loc_second) so output is deterministic across
  /// `--jobs` settings.
  std::vector<CopCost> topCops() const;

  /// The K most expensive windows, most expensive first; ties break by
  /// window index.
  std::vector<WindowCost> topWindows() const;

  /// Human-readable `top-costs:` section for the stats table. Empty string
  /// when nothing was recorded.
  std::string renderTable() const;

  /// Adds a "top_costs" member to \p Json:
  /// {"windows":[{index,cops,solves,seconds}...],
  ///  "cops":[{window,first,second,variable,outcome,encode_seconds,
  ///           solve_seconds,witness_seconds,total_seconds,
  ///           mem_delta_bytes,attempts,cone_events}...]}.
  void addToJson(JsonObject &Json) const;

private:
  void pruneCops();
  void pruneWindows();

  size_t TopK;
  std::vector<CopCost> Cops;
  std::vector<WindowCost> Windows;
};

} // namespace rvp

#endif // RVP_SUPPORT_COSTLEDGER_H
