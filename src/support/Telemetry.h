//===- support/Telemetry.h - Phase tracing and trace events ------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer threaded through the detection pipeline (see
/// docs/OBSERVABILITY.md):
///
///  * ScopedPhaseTimer — RAII timers that build a hierarchical phase tree
///    (detect → window → cop-enum / quick-check / encode / solve / ...),
///    so the --stats table and --stats-json output can show where wall
///    time goes, per phase, with nesting.
///  * TraceEventSink — a structured JSONL sink (one JSON object per line;
///    one event per window / COP / solver call) written behind
///    `rvpredict detect --trace-events=<path>`.
///  * Telemetry — the process-wide switchboard tying the registry
///    (support/Stats.h), the phase tree, and the sink together.
///
/// Telemetry is opt-in and off by default; every instrumentation site
/// guards on Telemetry::enabled(), a single boolean load, so the
/// uninstrumented pipeline pays no measurable cost.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_TELEMETRY_H
#define RVP_SUPPORT_TELEMETRY_H

#include "support/Profile.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace rvp {

/// Point-in-time copy of one phase-tree node (value type, copyable).
struct PhaseSnapshot {
  std::string Name;
  double Seconds = 0;
  uint64_t Count = 0; ///< completed enters of this phase
  std::vector<PhaseSnapshot> Children;

  /// Total seconds across direct children (≤ Seconds up to timer noise).
  double childSeconds() const;

  /// Depth-first search by name; nullptr when absent.
  const PhaseSnapshot *find(std::string_view PhaseName) const;

  /// {"name":..,"seconds":..,"count":..,"children":[...]}
  std::string toJson() const;

  /// Indented human rendering appended to \p Out.
  void renderInto(std::string &Out, unsigned Indent = 2) const;
};

/// Accumulating tree of named phases. enter()/exit() must nest; phases
/// re-entered under the same parent accumulate seconds and counts into the
/// same node. A PhaseTree is single-threaded; parallel sections give each
/// worker its own tree (Telemetry::setThreadPhaseTree) and merge them with
/// absorb() at the barrier.
class PhaseTree {
public:
  PhaseTree() { reset(); }

  void enter(const char *Name);
  void exit(double Seconds);
  bool atRoot() const { return Stack.size() == 1; }

  /// Snapshot rooted at a synthetic "total" node whose seconds are the sum
  /// over top-level phases.
  PhaseSnapshot snapshot() const;

  /// Merges \p Other's phases (the children of its root, recursively) into
  /// the node currently on top of this tree's stack, matching nodes by
  /// name and summing seconds/counts. Used at a parallel-section barrier
  /// to fold per-worker trees under the enclosing phase; summed worker
  /// seconds may exceed the enclosing phase's wall time.
  void absorb(const PhaseTree &Other);

  void reset();

private:
  struct Node {
    std::string Name;
    double Seconds = 0;
    uint64_t Count = 0;
    std::vector<std::unique_ptr<Node>> Children;
  };

  static void snapshotInto(const Node &N, PhaseSnapshot &Out);
  static void absorbInto(Node &Dst, const Node &Src);

  std::unique_ptr<Node> Root;
  std::vector<Node *> Stack; ///< Stack.front() == Root.get()
};

/// Structured JSONL event sink: one JSON object per line. Callers build
/// events with JsonObject and hand them to write().
class TraceEventSink {
public:
  TraceEventSink() = default;
  ~TraceEventSink() { close(); }
  TraceEventSink(const TraceEventSink &) = delete;
  TraceEventSink &operator=(const TraceEventSink &) = delete;

  /// Opens \p Path for writing. "-" means stdout, with a twist: stdout
  /// lines are buffered and flushed as one block at close(), preceded by a
  /// `##rvp:trace-events` marker line, so the event stream lands after the
  /// report and any `--stats-json=-` object in a deterministic order that
  /// golden tests can split on (docs/OBSERVABILITY.md, "Stream ordering").
  bool open(const std::string &Path, std::string &Error);
  bool isOpen() const { return File != nullptr || BufferToStdout; }
  void write(const JsonObject &Event);
  void close();

  uint64_t eventsWritten() const { return Written; }

  /// Marker line preceding buffered stdout event blocks.
  static constexpr const char *StdoutMarker = "##rvp:trace-events";

private:
  std::FILE *File = nullptr;
  bool OwnsFile = false;
  bool BufferToStdout = false;
  std::string Buffer;
  uint64_t Written = 0;
};

/// Everything the pipeline observed during one run; carried out of the
/// detectors inside DetectionStats.
struct TelemetrySnapshot {
  bool Captured = false;
  MetricsSnapshot Metrics;
  PhaseSnapshot Phases;
};

/// The process-wide telemetry switchboard. The registry itself is
/// MetricsRegistry::global(); this adds the enable flag, the phase tree,
/// and the optional event sink. Runs are delimited by the caller: reset()
/// zeroes the registry and clears the phase tree, snapshot() copies both.
class Telemetry {
public:
  static Telemetry &instance();

  /// Single-load fast path used by every instrumentation site.
  static bool enabled() { return EnabledFlag; }
  static void setEnabled(bool On) { EnabledFlag = On; }

  /// The calling thread's phase tree: the thread-local override when one
  /// is installed (pool workers during a parallel section), otherwise the
  /// process-wide tree.
  PhaseTree &phases() {
    return ThreadPhases ? *ThreadPhases : Phases;
  }

  /// Installs \p Tree as the calling thread's phase tree (nullptr
  /// restores the process-wide tree). Prefer ThreadPhaseScope.
  static void setThreadPhaseTree(PhaseTree *Tree) { ThreadPhases = Tree; }
  static PhaseTree *threadPhaseTree() { return ThreadPhases; }

  TraceEventSink *sink() { return Sink; }
  void setSink(TraceEventSink *S) { Sink = S; }

  TelemetrySnapshot snapshot() const;
  void reset();

private:
  static bool EnabledFlag;
  static thread_local PhaseTree *ThreadPhases;
  PhaseTree Phases;
  TraceEventSink *Sink = nullptr;
};

/// RAII thread-local phase-tree override: scoped to one pool task so its
/// ScopedPhaseTimers record into a per-worker tree instead of racing on
/// the shared one.
class ThreadPhaseScope {
public:
  explicit ThreadPhaseScope(PhaseTree *Tree)
      : Prev(Telemetry::threadPhaseTree()) {
    Telemetry::setThreadPhaseTree(Tree);
  }
  ~ThreadPhaseScope() { Telemetry::setThreadPhaseTree(Prev); }
  ThreadPhaseScope(const ThreadPhaseScope &) = delete;
  ThreadPhaseScope &operator=(const ThreadPhaseScope &) = delete;

private:
  PhaseTree *Prev;
};

/// RAII phase timer: enters \p Name on construction, records elapsed wall
/// time on destruction. A no-op (two pointer-sized loads) when telemetry
/// and profiling are off. With a ProfileCollector installed, each timer
/// additionally becomes a `ph:"X"` span on the calling thread's track, so
/// the phase tree doubles as the profile timeline.
class ScopedPhaseTimer {
public:
  explicit ScopedPhaseTimer(const char *Name) {
    if (Telemetry::enabled()) {
      Telemetry::instance().phases().enter(Name);
      Active = true;
      Clock.reset();
    }
    if (ProfileCollector *P = ProfileCollector::active()) {
      ProfName = Name;
      ProfStartUs = P->nowUs();
    }
  }
  ~ScopedPhaseTimer() {
    if (ProfName) {
      if (ProfileCollector *P = ProfileCollector::active()) {
        uint64_t EndUs = P->nowUs();
        P->span(ProfName, "phase", ProfStartUs,
                EndUs > ProfStartUs ? EndUs - ProfStartUs : 0);
      }
    }
    if (Active)
      Telemetry::instance().phases().exit(Clock.seconds());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
  ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

private:
  Timer Clock;
  bool Active = false;
  const char *ProfName = nullptr;
  uint64_t ProfStartUs = 0;
};

} // namespace rvp

#endif // RVP_SUPPORT_TELEMETRY_H
