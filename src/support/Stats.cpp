//===- support/Stats.cpp - Metrics registry ---------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace rvp;

// ----------------------------------------------------------- Histogram

namespace {

constexpr double BucketBase = 1e-6;
constexpr double BucketGrowth = 1.3;

/// Precomputed inclusive upper bounds; the last entry is infinity so the
/// final bucket absorbs outliers.
struct BucketBounds {
  std::array<double, Histogram::NumBuckets> Upper;

  BucketBounds() {
    double Bound = BucketBase;
    for (size_t I = 0; I + 1 < Upper.size(); ++I) {
      Upper[I] = Bound;
      Bound *= BucketGrowth;
    }
    Upper.back() = std::numeric_limits<double>::infinity();
  }
};

const BucketBounds &bounds() {
  static const BucketBounds B;
  return B;
}

size_t bucketOf(double Value) {
  const auto &Upper = bounds().Upper;
  return static_cast<size_t>(
      std::lower_bound(Upper.begin(), Upper.end(), Value) - Upper.begin());
}

} // namespace

double Histogram::bucketUpperBound(size_t I) { return bounds().Upper[I]; }

void Histogram::record(double Value) {
  if (!std::isfinite(Value) || Value < 0)
    Value = 0;
  std::lock_guard<std::mutex> Guard(Mutex);
  if (Total == 0) {
    MinV = MaxV = Value;
  } else {
    MinV = std::min(MinV, Value);
    MaxV = std::max(MaxV, Value);
  }
  ++Total;
  Sum += Value;
  ++Buckets[bucketOf(Value)];
}

double Histogram::percentile(double Q) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return percentileLocked(Q);
}

double Histogram::percentileLocked(double Q) const {
  if (Total == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  // Rank of the q-th value (1-based, nearest-rank with interpolation
  // inside the bucket, assuming a uniform spread across the bucket).
  double Rank = std::max(1.0, Q * static_cast<double>(Total));
  uint64_t Cumulative = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    if (Buckets[I] == 0)
      continue;
    double Before = static_cast<double>(Cumulative);
    Cumulative += Buckets[I];
    if (static_cast<double>(Cumulative) < Rank)
      continue;
    double Lo = I == 0 ? 0 : bounds().Upper[I - 1];
    double Hi = bounds().Upper[I];
    if (!std::isfinite(Hi))
      Hi = MaxV; // the overflow bucket has no natural upper bound
    // Tighten the span to the observed range: no bucket holds mass outside
    // [MinV, MaxV], so interpolating across the full bucket width would
    // drift single-sample and single-bucket distributions toward bucket
    // edges the data never touched.
    Lo = std::max(Lo, MinV);
    Hi = std::min(Hi, MaxV);
    if (Hi < Lo)
      Hi = Lo;
    double Fraction = (Rank - Before) / static_cast<double>(Buckets[I]);
    double Value = Lo + Fraction * (Hi - Lo);
    return std::clamp(Value, MinV, MaxV);
  }
  return MaxV;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  HistogramSnapshot S;
  S.Count = Total;
  S.Sum = Sum;
  S.Min = Total ? MinV : 0;
  S.Max = Total ? MaxV : 0;
  S.P50 = percentileLocked(0.50);
  S.P90 = percentileLocked(0.90);
  S.P99 = percentileLocked(0.99);
  return S;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Buckets.fill(0);
  Total = 0;
  Sum = 0;
  MinV = 0;
  MaxV = 0;
}

// ------------------------------------------------------------- registry

uint64_t MetricsSnapshot::counterValue(std::string_view Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return V;
  return 0;
}

std::string MetricsSnapshot::renderTable(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Out;
  for (const auto &[Name, Value] : Counters)
    Out += formatString("%s%-44s %12llu\n", Pad.c_str(), Name.c_str(),
                        static_cast<unsigned long long>(Value));
  for (const auto &[Name, Value] : Gauges)
    Out += formatString("%s%-44s %12.4f\n", Pad.c_str(), Name.c_str(), Value);
  for (const auto &[Name, H] : Histograms)
    Out += formatString(
        "%s%-44s n=%llu mean=%.6f p50=%.6f p90=%.6f p99=%.6f max=%.6f\n",
        Pad.c_str(), Name.c_str(), static_cast<unsigned long long>(H.Count),
        H.mean(), H.P50, H.P90, H.P99, H.Max);
  return Out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  MetricsSnapshot S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.emplace_back(Name, C.value());
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.emplace_back(Name, G.value());
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms)
    S.Histograms.emplace_back(Name, H.snapshot());
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (auto &[Name, C] : Counters)
    C.reset();
  for (auto &[Name, G] : Gauges)
    G.reset();
  for (auto &[Name, H] : Histograms)
    H.reset();
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

// ----------------------------------------------------------------- JSON

std::string rvp::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

std::string rvp::jsonNumber(double Value) {
  if (!std::isfinite(Value))
    return "0";
  return formatString("%.9g", Value);
}

void JsonObject::key(std::string_view Key) {
  if (Buf.size() > 1)
    Buf += ",";
  Buf += "\"";
  Buf += jsonEscape(Key);
  Buf += "\":";
}

JsonObject &JsonObject::field(std::string_view Key, uint64_t Value) {
  key(Key);
  Buf += formatString("%llu", static_cast<unsigned long long>(Value));
  return *this;
}

JsonObject &JsonObject::field(std::string_view Key, int64_t Value) {
  key(Key);
  Buf += formatString("%lld", static_cast<long long>(Value));
  return *this;
}

JsonObject &JsonObject::field(std::string_view Key, double Value) {
  key(Key);
  Buf += jsonNumber(Value);
  return *this;
}

JsonObject &JsonObject::field(std::string_view Key, bool Value) {
  key(Key);
  Buf += Value ? "true" : "false";
  return *this;
}

JsonObject &JsonObject::field(std::string_view Key, std::string_view Value) {
  key(Key);
  Buf += "\"";
  Buf += jsonEscape(Value);
  Buf += "\"";
  return *this;
}

JsonObject &JsonObject::raw(std::string_view Key, std::string_view Json) {
  key(Key);
  Buf += Json;
  return *this;
}

std::string rvp::metricsToJson(const MetricsSnapshot &Snapshot) {
  JsonObject CountersObj;
  for (const auto &[Name, Value] : Snapshot.Counters)
    CountersObj.field(Name, Value);
  JsonObject GaugesObj;
  for (const auto &[Name, Value] : Snapshot.Gauges)
    GaugesObj.field(Name, Value);
  JsonObject HistsObj;
  for (const auto &[Name, H] : Snapshot.Histograms) {
    JsonObject HistObj;
    HistObj.field("count", H.Count)
        .field("sum", H.Sum)
        .field("min", H.Min)
        .field("max", H.Max)
        .field("p50", H.P50)
        .field("p90", H.P90)
        .field("p99", H.P99);
    HistsObj.raw(Name, HistObj.str());
  }
  JsonObject Out;
  Out.raw("counters", CountersObj.str())
      .raw("gauges", GaugesObj.str())
      .raw("histograms", HistsObj.str());
  return Out.str();
}
