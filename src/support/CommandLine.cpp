//===- support/CommandLine.cpp - Tiny option parser -----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace rvp;

void OptionParser::addOption(std::string Name, std::string Help,
                             std::string Default) {
  Option Opt;
  Opt.Name = std::move(Name);
  Opt.Help = std::move(Help);
  Opt.Default = std::move(Default);
  Options.push_back(std::move(Opt));
}

OptionParser::Option *OptionParser::find(const std::string &Name) {
  for (Option &Opt : Options)
    if (Opt.Name == Name)
      return &Opt;
  return nullptr;
}

const OptionParser::Option *
OptionParser::find(const std::string &Name) const {
  for (const Option &Opt : Options)
    if (Opt.Name == Name)
      return &Opt;
  return nullptr;
}

void OptionParser::printHelp(const char *Argv0) const {
  std::printf("%s\n\nUsage: %s [options]\n\nOptions:\n", Description.c_str(),
              Argv0);
  for (const Option &Opt : Options) {
    std::string Line = "  --" + Opt.Name;
    if (!Opt.Default.empty())
      Line += "=" + Opt.Default;
    std::printf("%-32s %s\n", Line.c_str(), Opt.Help.c_str());
  }
}

bool OptionParser::parse(int Argc, const char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printHelp(Argv[0]);
      return false;
    }
    if (!startsWith(Arg, "--")) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    std::string Name = Body;
    std::string Value;
    bool HasValue = false;
    if (size_t Eq = Body.find('='); Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HasValue = true;
    }
    Option *Opt = find(Name);
    if (!Opt) {
      std::fprintf(stderr, "error: unknown option '--%s'\n", Name.c_str());
      return false;
    }
    Opt->Present = true;
    Opt->Value = HasValue ? Value : "true";
  }
  return true;
}

bool OptionParser::hasOption(const std::string &Name) const {
  const Option *Opt = find(Name);
  return Opt && Opt->Present;
}

std::string OptionParser::getString(const std::string &Name,
                                    const std::string &Default) const {
  const Option *Opt = find(Name);
  return Opt && Opt->Present ? Opt->Value : Default;
}

int64_t OptionParser::getInt(const std::string &Name, int64_t Default) const {
  const Option *Opt = find(Name);
  if (!Opt || !Opt->Present)
    return Default;
  int64_t Value = 0;
  if (!parseInt(Opt->Value, Value)) {
    std::fprintf(stderr, "error: option '--%s' expects an integer, got '%s'\n",
                 Name.c_str(), Opt->Value.c_str());
    std::exit(ExitUsage);
  }
  return Value;
}

double OptionParser::getDouble(const std::string &Name,
                               double Default) const {
  const Option *Opt = find(Name);
  if (!Opt || !Opt->Present)
    return Default;
  char *End = nullptr;
  double Value = std::strtod(Opt->Value.c_str(), &End);
  if (End == Opt->Value.c_str() || *End != '\0') {
    std::fprintf(stderr, "error: option '--%s' expects a number, got '%s'\n",
                 Name.c_str(), Opt->Value.c_str());
    std::exit(ExitUsage);
  }
  return Value;
}

bool OptionParser::getBool(const std::string &Name, bool Default) const {
  const Option *Opt = find(Name);
  if (!Opt || !Opt->Present)
    return Default;
  return Opt->Value != "false" && Opt->Value != "0" && Opt->Value != "no";
}
