//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer and a simple deadline type used to implement
/// the per-COP solving budget described in Section 4 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SUPPORT_TIMER_H
#define RVP_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace rvp {

/// Measures elapsed wall-clock time since construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// A deadline that can be polled cheaply. A default-constructed Deadline
/// never expires.
class Deadline {
public:
  Deadline() = default;

  /// Creates a deadline \p Seconds from now; non-positive values mean
  /// "no limit".
  static Deadline after(double Seconds) {
    Deadline D;
    if (Seconds > 0) {
      D.HasLimit = true;
      D.Expiry = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(Seconds));
    }
    return D;
  }

  bool expired() const { return HasLimit && Clock::now() >= Expiry; }

  /// True when the deadline actually limits anything. Check this before
  /// doing arithmetic with remainingSeconds(): the -1.0 "no limit"
  /// sentinel silently poisons budget computations otherwise.
  bool hasLimit() const { return HasLimit; }

  /// Seconds until expiry; negative when no limit (see hasLimit()),
  /// 0 when already expired.
  double remainingSeconds() const {
    if (!HasLimit)
      return -1.0;
    double Left = std::chrono::duration<double>(Expiry - Clock::now()).count();
    return Left < 0 ? 0 : Left;
  }

private:
  using Clock = std::chrono::steady_clock;
  bool HasLimit = false;
  Clock::time_point Expiry;
};

} // namespace rvp

#endif // RVP_SUPPORT_TIMER_H
