//===- trace/TraceIO.cpp - Trace text serialization ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

using namespace rvp;

std::string rvp::writeTraceText(const Trace &T, Span S) {
  std::string Out = "# rvp-trace v1\n";
  for (EventId Id = S.Begin; Id < S.End && Id < T.size(); ++Id) {
    const Event &E = T[Id];
    Out += eventKindName(E.Kind);
    Out += ' ';
    Out += T.threadName(E.Tid);
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      Out += ' ' + T.varName(E.Target) + ' ' + std::to_string(E.Data);
      break;
    case EventKind::Acquire:
    case EventKind::Release:
    case EventKind::Notify:
      Out += ' ' + T.lockName(E.Target);
      break;
    case EventKind::Fork:
    case EventKind::Join:
      Out += ' ' + T.threadName(E.Target);
      break;
    case EventKind::Begin:
    case EventKind::End:
    case EventKind::Branch:
      break;
    case EventKind::Wait:
      RVP_UNREACHABLE("unlowered wait event in trace");
    }
    if (E.Loc != UnknownLoc)
      Out += " @" + T.locName(E.Loc);
    if (E.Volatile)
      Out += " volatile";
    if (E.Aux != 0)
      Out += " match=" + std::to_string(E.Aux);
    Out += '\n';
  }
  return Out;
}

std::string rvp::writeTraceText(const Trace &T) {
  return writeTraceText(T, T.fullSpan());
}

namespace {

struct LineParser {
  Trace T;
  std::string Error;

  bool fail(size_t LineNo, const std::string &Msg) {
    Error = formatString("line %zu: %s", LineNo, Msg.c_str());
    return false;
  }

  bool parseLine(size_t LineNo, std::string_view Line) {
    std::vector<std::string_view> Fields;
    for (std::string_view Field : split(Line, ' '))
      if (!Field.empty())
        Fields.push_back(Field);
    if (Fields.empty())
      return true;

    // Trailing modifiers: @loc, volatile, match=N.
    Event E;
    std::string Loc;
    size_t NumCore = Fields.size();
    while (NumCore > 0) {
      std::string_view Last = Fields[NumCore - 1];
      if (Last == "volatile") {
        E.Volatile = true;
      } else if (startsWith(Last, "@")) {
        Loc = std::string(Last.substr(1));
      } else if (startsWith(Last, "match=")) {
        int64_t Match = 0;
        if (!parseInt(Last.substr(6), Match) || Match < 0)
          return fail(LineNo, "malformed match id");
        E.Aux = static_cast<uint32_t>(Match);
      } else {
        break;
      }
      --NumCore;
    }
    if (NumCore < 2)
      return fail(LineNo, "expected '<kind> <thread> ...'");

    std::string Kind(Fields[0]);
    E.Tid = T.internThread(std::string(Fields[1]));
    E.Loc = Loc.empty() ? UnknownLoc : T.internLoc(Loc);

    auto needFields = [&](size_t N) { return NumCore == N; };

    if (Kind == "read" || Kind == "write") {
      if (!needFields(4))
        return fail(LineNo, "expected '" + Kind + " <thread> <var> <value>'");
      E.Kind = Kind == "read" ? EventKind::Read : EventKind::Write;
      E.Target = T.internVar(std::string(Fields[2]));
      int64_t V = 0;
      if (!parseInt(Fields[3], V))
        return fail(LineNo, "malformed value");
      E.Data = V;
    } else if (Kind == "acquire" || Kind == "release" || Kind == "notify") {
      if (!needFields(3))
        return fail(LineNo, "expected '" + Kind + " <thread> <lock>'");
      E.Kind = Kind == "acquire"  ? EventKind::Acquire
               : Kind == "release" ? EventKind::Release
                                   : EventKind::Notify;
      E.Target = T.internLock(std::string(Fields[2]));
    } else if (Kind == "fork" || Kind == "join") {
      if (!needFields(3))
        return fail(LineNo, "expected '" + Kind + " <thread> <child>'");
      E.Kind = Kind == "fork" ? EventKind::Fork : EventKind::Join;
      E.Target = T.internThread(std::string(Fields[2]));
    } else if (Kind == "begin" || Kind == "end" || Kind == "branch") {
      if (!needFields(2))
        return fail(LineNo, "expected '" + Kind + " <thread>'");
      E.Kind = Kind == "begin" ? EventKind::Begin
               : Kind == "end" ? EventKind::End
                               : EventKind::Branch;
    } else {
      return fail(LineNo, "unknown event kind '" + Kind + "'");
    }

    T.append(E);
    return true;
  }
};

} // namespace

std::optional<Trace> rvp::parseTraceText(std::string_view Text,
                                         std::string &Error) {
  LineParser P;
  size_t LineNo = 0;
  for (std::string_view Line : split(Text, '\n')) {
    ++LineNo;
    Line = trim(Line);
    if (Line.empty() || Line[0] == '#')
      continue;
    if (!P.parseLine(LineNo, Line)) {
      Error = P.Error;
      return std::nullopt;
    }
  }
  P.T.finalize();
  return std::move(P.T);
}
