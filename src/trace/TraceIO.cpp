//===- trace/TraceIO.cpp - Trace text serialization ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"
#include "trace/Consistency.h"

#include <unordered_set>

using namespace rvp;

std::string rvp::writeTraceText(const Trace &T, Span S) {
  std::string Out = "# rvp-trace v1\n";
  for (EventId Id = S.Begin; Id < S.End && Id < T.size(); ++Id) {
    const Event &E = T[Id];
    Out += eventKindName(E.Kind);
    Out += ' ';
    Out += T.threadName(E.Tid);
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      Out += ' ' + T.varName(E.Target) + ' ' + std::to_string(E.Data);
      break;
    case EventKind::Acquire:
    case EventKind::Release:
    case EventKind::Notify:
      Out += ' ' + T.lockName(E.Target);
      break;
    case EventKind::Fork:
    case EventKind::Join:
      Out += ' ' + T.threadName(E.Target);
      break;
    case EventKind::Begin:
    case EventKind::End:
    case EventKind::Branch:
      break;
    case EventKind::Wait:
      RVP_UNREACHABLE("unlowered wait event in trace");
    }
    if (E.Loc != UnknownLoc)
      Out += " @" + T.locName(E.Loc);
    if (E.Volatile)
      Out += " volatile";
    if (E.Aux != 0)
      Out += " match=" + std::to_string(E.Aux);
    Out += '\n';
  }
  return Out;
}

std::string rvp::writeTraceText(const Trace &T) {
  return writeTraceText(T, T.fullSpan());
}

namespace {

struct LineParser {
  Trace T;
  std::string Error;
  const TraceParseOptions &Opts;

  explicit LineParser(const TraceParseOptions &Opts) : Opts(Opts) {}

  /// Builds the diagnostic: "file.txt:3:17: message (offending token
  /// 'xyz')" with a file name, "line 3, col 17: ..." without one. The
  /// column is the token's 1-based offset in the raw (untrimmed) line.
  bool fail(size_t LineNo, size_t Col, const std::string &Msg,
            std::string_view Token) {
    Error = Opts.FileName.empty()
                ? formatString("line %zu, col %zu: %s", LineNo, Col,
                               Msg.c_str())
                : formatString("%s:%zu:%zu: %s", Opts.FileName.c_str(),
                               LineNo, Col, Msg.c_str());
    if (!Token.empty())
      Error += formatString(" (offending token '%.*s')",
                            static_cast<int>(Token.size()), Token.data());
    return false;
  }

  /// Parses one non-blank, non-comment line. \p Raw is the untrimmed line
  /// (column numbers are computed against it); \p Line the trimmed view
  /// into the same buffer. Validation is complete before any interning, so
  /// a rejected line leaves the trace untouched (SkipBadEvents relies on
  /// this: skipping a line equals deleting it from the input).
  bool parseLine(size_t LineNo, std::string_view Raw,
                 std::string_view Line) {
    auto columnOf = [&](std::string_view Field) {
      return static_cast<size_t>(Field.data() - Raw.data()) + 1;
    };
    std::vector<std::string_view> Fields;
    for (std::string_view Field : split(Line, ' '))
      if (!Field.empty())
        Fields.push_back(Field);
    if (Fields.empty())
      return true;

    // Trailing modifiers: @loc, volatile, match=N.
    Event E;
    std::string Loc;
    size_t NumCore = Fields.size();
    while (NumCore > 0) {
      std::string_view Last = Fields[NumCore - 1];
      if (Last == "volatile") {
        E.Volatile = true;
      } else if (startsWith(Last, "@")) {
        Loc = std::string(Last.substr(1));
      } else if (startsWith(Last, "match=")) {
        int64_t Match = 0;
        if (!parseInt(Last.substr(6), Match) || Match < 0)
          return fail(LineNo, columnOf(Last), "malformed match id", Last);
      } else {
        break;
      }
      --NumCore;
    }
    if (NumCore < 2)
      return fail(LineNo, columnOf(Fields[0]),
                  "expected '<kind> <thread> ...'", Fields[0]);

    std::string Kind(Fields[0]);
    auto needFields = [&](size_t N) { return NumCore == N; };
    int64_t Value = 0;

    if (Kind == "read" || Kind == "write") {
      if (!needFields(4))
        return fail(LineNo, columnOf(Fields[0]),
                    "expected '" + Kind + " <thread> <var> <value>'",
                    Fields[0]);
      E.Kind = Kind == "read" ? EventKind::Read : EventKind::Write;
      if (!parseInt(Fields[3], Value))
        return fail(LineNo, columnOf(Fields[3]), "malformed value",
                    Fields[3]);
      E.Data = Value;
    } else if (Kind == "acquire" || Kind == "release" || Kind == "notify") {
      if (!needFields(3))
        return fail(LineNo, columnOf(Fields[0]),
                    "expected '" + Kind + " <thread> <lock>'", Fields[0]);
      E.Kind = Kind == "acquire"  ? EventKind::Acquire
               : Kind == "release" ? EventKind::Release
                                   : EventKind::Notify;
    } else if (Kind == "fork" || Kind == "join") {
      if (!needFields(3))
        return fail(LineNo, columnOf(Fields[0]),
                    "expected '" + Kind + " <thread> <child>'", Fields[0]);
      E.Kind = Kind == "fork" ? EventKind::Fork : EventKind::Join;
    } else if (Kind == "begin" || Kind == "end" || Kind == "branch") {
      if (!needFields(2))
        return fail(LineNo, columnOf(Fields[0]),
                    "expected '" + Kind + " <thread>'", Fields[0]);
      E.Kind = Kind == "begin" ? EventKind::Begin
               : Kind == "end" ? EventKind::End
                               : EventKind::Branch;
    } else {
      return fail(LineNo, columnOf(Fields[0]),
                  "unknown event kind '" + Kind + "'", Fields[0]);
    }

    // The modifier loop already parsed match=N; re-derive Aux now that the
    // line is known good.
    for (size_t I = NumCore; I < Fields.size(); ++I)
      if (startsWith(Fields[I], "match=")) {
        int64_t Match = 0;
        parseInt(Fields[I].substr(6), Match);
        E.Aux = static_cast<uint32_t>(Match);
      }

    // Interning happens last, in the historical order (thread, location,
    // target), so well-formed traces get byte-identical name tables.
    E.Tid = T.internThread(std::string(Fields[1]));
    E.Loc = Loc.empty() ? UnknownLoc : T.internLoc(Loc);
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      E.Target = T.internVar(std::string(Fields[2]));
      break;
    case EventKind::Acquire:
    case EventKind::Release:
    case EventKind::Notify:
      E.Target = T.internLock(std::string(Fields[2]));
      break;
    case EventKind::Fork:
    case EventKind::Join:
      E.Target = T.internThread(std::string(Fields[2]));
      break;
    default:
      break;
    }

    T.append(E);
    return true;
  }
};

} // namespace

std::optional<Trace>
rvp::parseTraceText(std::string_view Text, std::string &Error,
                    const TraceParseOptions &Options,
                    TraceParseStats *Stats) {
  // Under SkipBadEvents the parse may run several passes: grammar-level
  // skips happen inline, and each pass then validates the surviving
  // events semantically (checkConsistency in Fragment mode — unmatched
  // releases, reads of impossible values, double acquires). The first
  // offending event's line joins DroppedLines and the text is reparsed
  // without it, so the result is always exactly "the input with the bad
  // lines deleted" — the same contract grammar skips have, now covering
  // garbage that parses but cannot have happened (docs/ROBUSTNESS.md).
  std::unordered_set<size_t> DroppedLines;
  for (;;) {
    LineParser P(Options);
    std::vector<size_t> EventLines; // line that produced each event
    size_t LineNo = 0;
    uint64_t GrammarSkips = 0;
    for (std::string_view Raw : split(Text, '\n')) {
      ++LineNo;
      std::string_view Line = trim(Raw);
      if (Line.empty() || Line[0] == '#')
        continue;
      if (!DroppedLines.empty() && DroppedLines.count(LineNo))
        continue;
      uint64_t Before = P.T.size();
      if (!P.parseLine(LineNo, Raw, Line)) {
        if (Options.SkipBadEvents) {
          ++GrammarSkips;
          continue;
        }
        Error = P.Error;
        return std::nullopt;
      }
      if (P.T.size() > Before)
        EventLines.push_back(LineNo);
    }
    P.T.finalize();
    if (Options.SkipBadEvents) {
      ConsistencyResult C =
          checkConsistency(P.T, ConsistencyMode::Fragment);
      if (!C.Ok && C.Offender != InvalidEvent &&
          C.Offender < EventLines.size()) {
        DroppedLines.insert(EventLines[C.Offender]);
        continue; // reparse without the offender
      }
    }
    if (Stats)
      Stats->SkippedEvents = GrammarSkips + DroppedLines.size();
    return std::move(P.T);
  }
}

std::optional<Trace> rvp::parseTraceText(std::string_view Text,
                                         std::string &Error) {
  return parseTraceText(Text, Error, TraceParseOptions());
}
