//===- trace/Trace.h - Execution traces -------------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Trace is a sequence of events (Section 2.2) together with interning
/// tables for thread/variable/lock/location names and derived indices
/// (per-thread projections, per-variable access lists, lock acquire/release
/// pairs) that every detector consumes.
///
/// Wait/notify is stored in lowered form (Section 4): a wait() appears as a
/// Release followed by an Acquire sharing a nonzero Aux match id; the
/// notify() that woke it is a Notify event with the same Aux.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_TRACE_H
#define RVP_TRACE_TRACE_H

#include "trace/Event.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace rvp {

/// A half-open range [Begin, End) of event ids; the unit of windowed
/// analysis (Section 4, "Handling long traces").
struct Span {
  EventId Begin = 0;
  EventId End = 0;

  uint32_t size() const { return End - Begin; }
  bool contains(EventId Id) const { return Id >= Begin && Id < End; }
};

/// A matched acquire/release pair on one lock by one thread, following
/// program-order locking semantics (Section 3.2). Release may be
/// InvalidEvent when the trace ends while the lock is held.
struct LockPair {
  EventId AcquireId = InvalidEvent;
  EventId ReleaseId = InvalidEvent;
  ThreadId Tid = 0;
  LockId Lock = 0;
};

/// Aggregate counts reported in Table 1 of the paper.
struct TraceStats {
  uint32_t Threads = 0;
  uint64_t Events = 0;
  uint64_t ReadsWrites = 0;
  uint64_t Syncs = 0;
  uint64_t Branches = 0;
};

/// An execution trace plus name tables and derived indices.
///
/// Usage: append events (or use TraceBuilder / the runtime Recorder), then
/// call finalize() once; the derived indices are only valid afterwards.
class Trace {
public:
  Trace() = default;

  // -------------------------------------------------- name interning
  ThreadId internThread(const std::string &Name);
  VarId internVar(const std::string &Name);
  LockId internLock(const std::string &Name);
  LocId internLoc(const std::string &Name);

  const std::string &threadName(ThreadId Id) const { return ThreadNames[Id]; }
  const std::string &varName(VarId Id) const { return VarNames[Id]; }
  const std::string &lockName(LockId Id) const { return LockNames[Id]; }
  const std::string &locName(LocId Id) const {
    static const std::string Unknown = "?";
    return Id == UnknownLoc ? Unknown : LocNames[Id];
  }

  uint32_t numThreads() const {
    return static_cast<uint32_t>(ThreadNames.size());
  }
  uint32_t numVars() const { return static_cast<uint32_t>(VarNames.size()); }
  uint32_t numLocks() const { return static_cast<uint32_t>(LockNames.size()); }

  // -------------------------------------------------- construction
  /// Appends an event and returns its id. Invalidates derived indices
  /// until the next finalize().
  EventId append(const Event &E);

  /// Sets the value variable \p Var holds before the first event
  /// (variables default to 0, as in the paper's "initially x = y = 0").
  void setInitialValue(VarId Var, Value V);

  /// The value \p Var holds before the first event.
  Value initialValueOf(VarId Var) const {
    return Var < InitValues.size() ? InitValues[Var] : 0;
  }

  /// Initial values indexed by VarId (entries may be shorter than
  /// numVars(); missing entries are 0).
  const std::vector<Value> &initialValues() const { return InitValues; }

  /// Builds the derived indices. Must be called after the last append().
  void finalize();

  bool finalized() const { return IsFinalized; }

  // -------------------------------------------------- access
  uint64_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  const Event &operator[](EventId Id) const {
    assert(Id < Events.size() && "event id out of range");
    return Events[Id];
  }
  const std::vector<Event> &events() const { return Events; }

  /// All event ids of thread \p Tid, in trace order.
  const std::vector<EventId> &threadEvents(ThreadId Tid) const {
    assert(IsFinalized && "finalize() the trace first");
    return ByThread[Tid];
  }

  /// All read/write event ids on variable \p Var, in trace order
  /// (volatile accesses included; callers filter as needed).
  const std::vector<EventId> &accessesOf(VarId Var) const {
    assert(IsFinalized && "finalize() the trace first");
    return ByVar[Var];
  }

  /// Matched acquire/release pairs, grouped per lock.
  const std::vector<LockPair> &lockPairsOf(LockId Lock) const {
    assert(IsFinalized && "finalize() the trace first");
    return ByLock[Lock];
  }

  /// Fork event of thread \p Tid (the event fork(_, Tid)), or InvalidEvent.
  EventId forkOf(ThreadId Tid) const {
    assert(IsFinalized && "finalize() the trace first");
    return ForkEvent[Tid];
  }
  /// Begin/End events of thread \p Tid, or InvalidEvent.
  EventId beginOf(ThreadId Tid) const { return BeginEvent[Tid]; }
  EventId endOf(ThreadId Tid) const { return EndEvent[Tid]; }
  /// Join event joining thread \p Tid, or InvalidEvent.
  EventId joinOf(ThreadId Tid) const { return JoinEvent[Tid]; }

  /// The Notify event matched with wait match-id \p Aux, or InvalidEvent.
  EventId notifyOfMatch(uint32_t Aux) const;

  /// The whole trace as a Span.
  Span fullSpan() const { return {0, static_cast<EventId>(Events.size())}; }

  /// Table 1 trace metrics, computed over \p S.
  TraceStats stats(Span S) const;
  TraceStats stats() const { return stats(fullSpan()); }

private:
  static uint32_t internName(const std::string &Name,
                             std::vector<std::string> &Names,
                             std::unordered_map<std::string, uint32_t> &Map);

  std::vector<Event> Events;
  std::vector<Value> InitValues;
  bool IsFinalized = false;

  std::vector<std::string> ThreadNames, VarNames, LockNames, LocNames;
  std::unordered_map<std::string, uint32_t> ThreadMap, VarMap, LockMap,
      LocMap;

  // Derived indices, valid after finalize().
  std::vector<std::vector<EventId>> ByThread; // per thread
  std::vector<std::vector<EventId>> ByVar;    // per variable, accesses only
  std::vector<std::vector<LockPair>> ByLock;  // per lock
  std::vector<EventId> ForkEvent, BeginEvent, EndEvent, JoinEvent;
  std::unordered_map<uint32_t, EventId> NotifyByMatch;
};

} // namespace rvp

#endif // RVP_TRACE_TRACE_H
