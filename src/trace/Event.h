//===- trace/Event.h - Execution trace events -------------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary of Figure 3 of the paper: begin/end, read/write,
/// acquire/release, fork/join, wait/notify, and the novel *branch* event
/// that abstracts per-thread control flow. Events are small POD values;
/// a trace is a vector of them (see Trace.h).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_EVENT_H
#define RVP_TRACE_EVENT_H

#include <cstdint>
#include <string>

namespace rvp {

/// Index of an event within its trace. Also used as the order-variable
/// identity in the constraint encoding.
using EventId = uint32_t;
using ThreadId = uint32_t;
using VarId = uint32_t;
using LockId = uint32_t;
/// Identifies a static program location; race signatures are unordered
/// pairs of LocIds (Section 4: signature pruning).
using LocId = uint32_t;
using Value = int64_t;

constexpr EventId InvalidEvent = static_cast<EventId>(-1);
constexpr LocId UnknownLoc = static_cast<LocId>(-1);

/// The root thread of an execution: the only thread whose begin event does
/// not require a preceding fork.
constexpr ThreadId RootThread = 0;

enum class EventKind : uint8_t {
  Begin,   ///< First event of a thread.
  End,     ///< Last event of a thread.
  Read,    ///< Read of a shared variable; Data holds the value read.
  Write,   ///< Write of a shared variable; Data holds the value written.
  Acquire, ///< Lock acquire.
  Release, ///< Lock release.
  Fork,    ///< Fork of a new thread; Target holds the child ThreadId.
  Join,    ///< Join on a thread; Target holds the joined ThreadId.
  Branch,  ///< Control-flow abstraction point (the paper's novel event).
  Wait,    ///< Marker for a wait(); lowered to Release+Wait+Acquire.
  Notify,  ///< notify(); Aux links to the matched Wait event, if any.
};

/// Returns a stable lowercase mnemonic (used by the trace text format).
const char *eventKindName(EventKind Kind);

/// One event of an execution trace, as a tuple of attribute-value pairs
/// (Section 2.1). 24 bytes.
struct Event {
  ThreadId Tid = 0;
  EventKind Kind = EventKind::Branch;
  /// True for accesses to volatile variables; conflicting volatile
  /// accesses are synchronization, not races (Section 4).
  bool Volatile = false;
  /// Variable for Read/Write, lock for Acquire/Release/Wait/Notify,
  /// child/joined thread for Fork/Join; unused otherwise.
  uint32_t Target = 0;
  /// Value read or written. Unused for non-access events.
  Value Data = 0;
  /// Static program location, for race signatures and reports.
  LocId Loc = UnknownLoc;
  /// Wait/Notify matching: for a Wait, a fresh match id; for a Notify,
  /// the match id of the wait it woke (or 0 if it woke nobody).
  uint32_t Aux = 0;

  bool isAccess() const {
    return Kind == EventKind::Read || Kind == EventKind::Write;
  }
  bool isRead() const { return Kind == EventKind::Read; }
  bool isWrite() const { return Kind == EventKind::Write; }
  bool isAcquire() const { return Kind == EventKind::Acquire; }
  bool isRelease() const { return Kind == EventKind::Release; }
  bool isSync() const {
    switch (Kind) {
    case EventKind::Acquire:
    case EventKind::Release:
    case EventKind::Fork:
    case EventKind::Join:
    case EventKind::Begin:
    case EventKind::End:
    case EventKind::Wait:
    case EventKind::Notify:
      return true;
    case EventKind::Read:
    case EventKind::Write:
    case EventKind::Branch:
      return false;
    }
    return false;
  }
};

static_assert(sizeof(Event) <= 32, "events should stay compact");

/// Two events form a conflicting operation pair (Definition 3) iff they
/// access the same variable from different threads and at least the first
/// is a write. Volatile accesses never conflict (Java semantics, §4).
inline bool conflicting(const Event &A, const Event &B) {
  if (!A.isAccess() || !B.isAccess())
    return false;
  if (A.Volatile || B.Volatile)
    return false;
  if (A.Tid == B.Tid || A.Target != B.Target)
    return false;
  return A.isWrite() || B.isWrite();
}

/// Renders an event for debugging, e.g. "write(t1, x, 1)".
std::string toString(const Event &E);

} // namespace rvp

#endif // RVP_TRACE_EVENT_H
