//===- trace/Consistency.h - Sequential-consistency checking ----*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the trace consistency requirements of Section 2.2:
///
///  * Read consistency: every read returns the value of the most recent
///    write to the same variable (variables start at 0).
///  * Lock mutual exclusion: per lock, acquires and releases alternate and
///    each pair shares a thread.
///  * Must happen-before: begin is the first event of its thread and is
///    preceded by its fork; end is the last; join follows the joined
///    thread's end; a matched notify falls between the lowered
///    release/acquire of its wait.
///
/// Two modes: Strict validates a complete execution; Fragment tolerates
/// truncation artifacts (missing begin/fork, locks held at trace end, a
/// join without the end in view), as produced by windowing or by witness
/// prefixes, which Theorem 1 permits.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_CONSISTENCY_H
#define RVP_TRACE_CONSISTENCY_H

#include "trace/Trace.h"

#include <string>

namespace rvp {

enum class ConsistencyMode {
  Strict,   ///< Complete executions recorded from start.
  Fragment, ///< Windows and reordered prefixes (incomplete traces).
};

/// Result of a consistency check; Ok is true iff the trace satisfies all
/// serial specifications. On failure, Offender identifies the first
/// violating event and Message explains the violation.
struct ConsistencyResult {
  bool Ok = true;
  EventId Offender = InvalidEvent;
  std::string Message;

  static ConsistencyResult failure(EventId Id, std::string Msg) {
    return {false, Id, std::move(Msg)};
  }
};

/// Checks a sequence of events given by ids \p Order into \p T. The
/// sequence need not be a permutation of the whole trace (prefixes and
/// windows are sequences too).
ConsistencyResult checkConsistency(const Trace &T,
                                   const std::vector<EventId> &Order,
                                   ConsistencyMode Mode);

/// Checks the trace in its recorded order.
ConsistencyResult checkConsistency(const Trace &T, ConsistencyMode Mode);

/// Read consistency only, ignoring read values for events in
/// \p DataAbstract (their values are allowed to differ, as in data-abstract
/// equivalence, Section 2.3). Pass an empty set to check all reads.
ConsistencyResult
checkReadConsistency(const Trace &T, const std::vector<EventId> &Order,
                     const std::vector<bool> &DataAbstract);

} // namespace rvp

#endif // RVP_TRACE_CONSISTENCY_H
