//===- trace/TraceBuilder.h - Fluent trace construction ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for hand-written traces in tests, examples, and
/// workload generators. Names are interned on first use; every event gets
/// a distinct auto-generated location unless one is supplied, so signature
/// pruning never accidentally merges hand-written events.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_TRACEBUILDER_H
#define RVP_TRACE_TRACEBUILDER_H

#include "trace/Trace.h"

#include <string>
#include <utility>

namespace rvp {

class TraceBuilder {
public:
  TraceBuilder() = default;

  /// Access to the trace under construction (for interning ids up front).
  Trace &trace() { return T; }

  TraceBuilder &fork(const std::string &Parent, const std::string &Child,
                     const std::string &Loc = "") {
    Event E = base(Parent, EventKind::Fork, Loc);
    E.Target = T.internThread(Child);
    T.append(E);
    return *this;
  }

  TraceBuilder &begin(const std::string &Thread,
                      const std::string &Loc = "") {
    T.append(base(Thread, EventKind::Begin, Loc));
    return *this;
  }

  TraceBuilder &end(const std::string &Thread, const std::string &Loc = "") {
    T.append(base(Thread, EventKind::End, Loc));
    return *this;
  }

  TraceBuilder &join(const std::string &Parent, const std::string &Child,
                     const std::string &Loc = "") {
    Event E = base(Parent, EventKind::Join, Loc);
    E.Target = T.internThread(Child);
    T.append(E);
    return *this;
  }

  TraceBuilder &read(const std::string &Thread, const std::string &Var,
                     Value V, const std::string &Loc = "",
                     bool IsVolatile = false) {
    Event E = base(Thread, EventKind::Read, Loc);
    E.Target = T.internVar(Var);
    E.Data = V;
    E.Volatile = IsVolatile;
    T.append(E);
    return *this;
  }

  TraceBuilder &write(const std::string &Thread, const std::string &Var,
                      Value V, const std::string &Loc = "",
                      bool IsVolatile = false) {
    Event E = base(Thread, EventKind::Write, Loc);
    E.Target = T.internVar(Var);
    E.Data = V;
    E.Volatile = IsVolatile;
    T.append(E);
    return *this;
  }

  TraceBuilder &acquire(const std::string &Thread, const std::string &Lock,
                        const std::string &Loc = "") {
    Event E = base(Thread, EventKind::Acquire, Loc);
    E.Target = T.internLock(Lock);
    T.append(E);
    return *this;
  }

  TraceBuilder &release(const std::string &Thread, const std::string &Lock,
                        const std::string &Loc = "") {
    Event E = base(Thread, EventKind::Release, Loc);
    E.Target = T.internLock(Lock);
    T.append(E);
    return *this;
  }

  TraceBuilder &branch(const std::string &Thread,
                       const std::string &Loc = "") {
    T.append(base(Thread, EventKind::Branch, Loc));
    return *this;
  }

  /// Emits the lowered release half of a wait(); pair with waitResume()
  /// and notify() sharing the same \p Match id.
  TraceBuilder &waitSuspend(const std::string &Thread,
                            const std::string &Lock, uint32_t Match,
                            const std::string &Loc = "") {
    Event E = base(Thread, EventKind::Release, Loc);
    E.Target = T.internLock(Lock);
    E.Aux = Match;
    T.append(E);
    return *this;
  }

  TraceBuilder &waitResume(const std::string &Thread,
                           const std::string &Lock, uint32_t Match,
                           const std::string &Loc = "") {
    Event E = base(Thread, EventKind::Acquire, Loc);
    E.Target = T.internLock(Lock);
    E.Aux = Match;
    T.append(E);
    return *this;
  }

  TraceBuilder &notify(const std::string &Thread, const std::string &Lock,
                       uint32_t Match, const std::string &Loc = "") {
    Event E = base(Thread, EventKind::Notify, Loc);
    E.Target = T.internLock(Lock);
    E.Aux = Match;
    T.append(E);
    return *this;
  }

  /// Finalizes and returns the trace; the builder is left empty.
  Trace build() {
    T.finalize();
    return std::move(T);
  }

private:
  Event base(const std::string &Thread, EventKind Kind,
             const std::string &Loc) {
    Event E;
    E.Tid = T.internThread(Thread);
    E.Kind = Kind;
    E.Loc = Loc.empty()
                ? T.internLoc("L" + std::to_string(AutoLoc++))
                : T.internLoc(Loc);
    return E;
  }

  Trace T;
  uint32_t AutoLoc = 0;
};

} // namespace rvp

#endif // RVP_TRACE_TRACEBUILDER_H
