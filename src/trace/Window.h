//===- trace/Window.h - Fixed-size trace windowing --------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a long trace into fixed-size windows (Section 4, "Handling long
/// traces"). Each window is analyzed independently; races across window
/// boundaries are not reported, which does not affect soundness.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_WINDOW_H
#define RVP_TRACE_WINDOW_H

#include "trace/Trace.h"

#include <vector>

namespace rvp {

/// The paper's default window size.
constexpr uint32_t DefaultWindowSize = 10000;

/// Returns consecutive spans of at most \p Size events covering the trace.
/// \p Size == 0 means a single window over the whole trace.
inline std::vector<Span> splitWindows(const Trace &T, uint32_t Size) {
  std::vector<Span> Windows;
  EventId Total = static_cast<EventId>(T.size());
  if (Size == 0) {
    if (Total > 0)
      Windows.push_back({0, Total});
    return Windows;
  }
  for (EventId Begin = 0; Begin < Total; Begin += Size)
    Windows.push_back({Begin, std::min<EventId>(Begin + Size, Total)});
  return Windows;
}

} // namespace rvp

#endif // RVP_TRACE_WINDOW_H
