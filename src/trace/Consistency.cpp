//===- trace/Consistency.cpp - Sequential-consistency checking ------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Consistency.h"

#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace rvp;

namespace {

/// Streaming checker; feed events in sequence order, then finish().
class Checker {
public:
  Checker(const Trace &T, ConsistencyMode Mode) : T(T), Mode(Mode) {}

  ConsistencyResult run(const std::vector<EventId> &Order) {
    for (EventId Id : Order) {
      ConsistencyResult R = step(Id);
      if (!R.Ok)
        return R;
    }
    return finish();
  }

private:
  ConsistencyResult step(EventId Id) {
    const Event &E = T[Id];
    // Per-thread bookkeeping shared by several rules.
    ThreadState &TS = threadState(E.Tid);
    if (TS.Ended)
      return fail(Id, "event after end of thread " + T.threadName(E.Tid));

    switch (E.Kind) {
    case EventKind::Read: {
      auto It = LastValue.find(E.Target);
      Value Expected =
          It == LastValue.end() ? T.initialValueOf(E.Target) : It->second;
      if (E.Data != Expected)
        return fail(Id, formatString(
                            "read of %s returned %lld but last write was %lld",
                            T.varName(E.Target).c_str(),
                            static_cast<long long>(E.Data),
                            static_cast<long long>(Expected)));
      break;
    }
    case EventKind::Write:
      LastValue[E.Target] = E.Data;
      break;
    case EventKind::Acquire: {
      LockState &LS = lockState(E.Target);
      if (LS.Held)
        return fail(Id, formatString("lock %s acquired while held by %s",
                                     T.lockName(E.Target).c_str(),
                                     T.threadName(LS.Holder).c_str()));
      LS.Held = true;
      LS.Holder = E.Tid;
      // A wait() resume must be preceded by its matched notify.
      if (E.Aux != 0 && Mode == ConsistencyMode::Strict &&
          !SeenNotify.count(E.Aux))
        return fail(Id, "wait resumed before its matching notify");
      break;
    }
    case EventKind::Release: {
      LockState &LS = lockState(E.Target);
      if (!LS.Held) {
        // A fragment may start inside a critical section.
        if (Mode == ConsistencyMode::Strict)
          return fail(Id, formatString("release of %s without acquire",
                                       T.lockName(E.Target).c_str()));
      } else if (LS.Holder != E.Tid) {
        return fail(Id, formatString("lock %s released by non-holder",
                                     T.lockName(E.Target).c_str()));
      }
      LS.Held = false;
      if (E.Aux != 0)
        PendingWaits.insert(E.Aux);
      break;
    }
    case EventKind::Notify:
      if (E.Aux != 0) {
        SeenNotify.insert(E.Aux);
        if (Mode == ConsistencyMode::Strict && !PendingWaits.count(E.Aux))
          return fail(Id, "notify before its matching wait suspended");
      }
      break;
    case EventKind::Fork: {
      ThreadState &Child = threadState(E.Target);
      if (Child.Forked)
        return fail(Id, formatString("thread %s forked twice",
                                     T.threadName(E.Target).c_str()));
      if (Child.Started)
        return fail(Id, formatString("thread %s forked after it started",
                                     T.threadName(E.Target).c_str()));
      Child.Forked = true;
      break;
    }
    case EventKind::Begin:
      if (TS.Started)
        return fail(Id, "begin is not the first event of its thread");
      if (Mode == ConsistencyMode::Strict && E.Tid != RootThread &&
          !TS.Forked)
        return fail(Id, formatString("thread %s begins before it is forked",
                                     T.threadName(E.Tid).c_str()));
      break;
    case EventKind::End:
      TS.Ended = true;
      break;
    case EventKind::Join: {
      ThreadState &Child = threadState(E.Target);
      if (Mode == ConsistencyMode::Strict && !Child.Ended)
        return fail(Id, formatString("join on %s before its end",
                                     T.threadName(E.Target).c_str()));
      break;
    }
    case EventKind::Branch:
      break;
    case EventKind::Wait:
      return fail(Id, "unlowered wait event in trace");
    }
    TS.Started = true;
    return {};
  }

  ConsistencyResult finish() {
    if (Mode == ConsistencyMode::Fragment)
      return {};
    for (const auto &[Lock, LS] : Locks) {
      if (LS.Held)
        return fail(InvalidEvent, formatString("lock %s still held at end",
                                               T.lockName(Lock).c_str()));
    }
    return {};
  }

  static ConsistencyResult fail(EventId Id, std::string Msg) {
    return ConsistencyResult::failure(Id, std::move(Msg));
  }

  struct ThreadState {
    bool Started = false;
    bool Ended = false;
    bool Forked = false;
  };
  struct LockState {
    bool Held = false;
    ThreadId Holder = 0;
  };

  ThreadState &threadState(ThreadId Tid) { return Threads[Tid]; }
  LockState &lockState(LockId Lock) { return Locks[Lock]; }

  const Trace &T;
  ConsistencyMode Mode;
  std::unordered_map<ThreadId, ThreadState> Threads;
  std::unordered_map<LockId, LockState> Locks;
  std::unordered_map<VarId, Value> LastValue;
  std::unordered_set<uint32_t> PendingWaits;
  std::unordered_set<uint32_t> SeenNotify;
};

} // namespace

ConsistencyResult rvp::checkConsistency(const Trace &T,
                                        const std::vector<EventId> &Order,
                                        ConsistencyMode Mode) {
  return Checker(T, Mode).run(Order);
}

ConsistencyResult rvp::checkConsistency(const Trace &T,
                                        ConsistencyMode Mode) {
  std::vector<EventId> Order(T.size());
  for (EventId Id = 0; Id < T.size(); ++Id)
    Order[Id] = Id;
  return Checker(T, Mode).run(Order);
}

ConsistencyResult
rvp::checkReadConsistency(const Trace &T, const std::vector<EventId> &Order,
                          const std::vector<bool> &DataAbstract) {
  std::unordered_map<VarId, Value> LastValue;
  for (EventId Id : Order) {
    const Event &E = T[Id];
    if (E.isWrite()) {
      LastValue[E.Target] = E.Data;
      continue;
    }
    if (!E.isRead())
      continue;
    if (Id < DataAbstract.size() && DataAbstract[Id])
      continue;
    auto It = LastValue.find(E.Target);
    Value Expected =
        It == LastValue.end() ? T.initialValueOf(E.Target) : It->second;
    if (E.Data != Expected)
      return ConsistencyResult::failure(
          Id, formatString("read of %s returned %lld but last write was %lld",
                           T.varName(E.Target).c_str(),
                           static_cast<long long>(E.Data),
                           static_cast<long long>(Expected)));
  }
  return {};
}
