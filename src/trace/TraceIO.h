//===- trace/TraceIO.h - Trace text serialization ---------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for traces, used by the examples, the
/// figure-reproduction harness, and golden tests. One event per line:
///
///   read    <thread> <var> <value> [@<loc>] [volatile]
///   write   <thread> <var> <value> [@<loc>] [volatile]
///   acquire <thread> <lock> [@<loc>] [match=<n>]
///   release <thread> <lock> [@<loc>] [match=<n>]
///   notify  <thread> <lock> [@<loc>] [match=<n>]
///   fork    <thread> <child> [@<loc>]
///   join    <thread> <child> [@<loc>]
///   begin   <thread> [@<loc>]
///   end     <thread> [@<loc>]
///   branch  <thread> [@<loc>]
///
/// Blank lines and lines starting with '#' are ignored.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_TRACEIO_H
#define RVP_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <optional>
#include <string>

namespace rvp {

/// Serializes \p T (or the \p S sub-range) to the text format.
std::string writeTraceText(const Trace &T, Span S);
std::string writeTraceText(const Trace &T);

/// Parses the text format. On success returns a finalized trace; on failure
/// returns std::nullopt and stores a diagnostic in \p Error
/// ("line N: message").
std::optional<Trace> parseTraceText(std::string_view Text,
                                    std::string &Error);

} // namespace rvp

#endif // RVP_TRACE_TRACEIO_H
