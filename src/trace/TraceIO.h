//===- trace/TraceIO.h - Trace text serialization ---------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for traces, used by the examples, the
/// figure-reproduction harness, and golden tests. One event per line:
///
///   read    <thread> <var> <value> [@<loc>] [volatile]
///   write   <thread> <var> <value> [@<loc>] [volatile]
///   acquire <thread> <lock> [@<loc>] [match=<n>]
///   release <thread> <lock> [@<loc>] [match=<n>]
///   notify  <thread> <lock> [@<loc>] [match=<n>]
///   fork    <thread> <child> [@<loc>]
///   join    <thread> <child> [@<loc>]
///   begin   <thread> [@<loc>]
///   end     <thread> [@<loc>]
///   branch  <thread> [@<loc>]
///
/// Blank lines and lines starting with '#' are ignored.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_TRACE_TRACEIO_H
#define RVP_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <optional>
#include <string>

namespace rvp {

/// Serializes \p T (or the \p S sub-range) to the text format.
std::string writeTraceText(const Trace &T, Span S);
std::string writeTraceText(const Trace &T);

struct TraceParseOptions {
  /// Skip malformed event lines instead of failing the parse; each skip is
  /// counted in TraceParseStats::SkippedEvents (`--skip-bad-events`).
  /// Skipped lines intern nothing, so the surviving trace is identical to
  /// parsing the file with the bad lines deleted.
  bool SkipBadEvents = false;
  /// File name prefixed to diagnostics ("file.txt:3:17: message"); when
  /// empty, diagnostics use the "line 3, col 17: message" form.
  std::string FileName;
};

struct TraceParseStats {
  /// Malformed event lines skipped under SkipBadEvents.
  uint64_t SkippedEvents = 0;
};

/// Parses the text format. On success returns a finalized trace; on failure
/// returns std::nullopt and stores a diagnostic in \p Error, pointing at
/// the offending line, column, and token.
std::optional<Trace> parseTraceText(std::string_view Text,
                                    std::string &Error,
                                    const TraceParseOptions &Options,
                                    TraceParseStats *Stats = nullptr);

/// Legacy entry point: default options (strict, no file name — "line N,
/// col C:" diagnostics).
std::optional<Trace> parseTraceText(std::string_view Text,
                                    std::string &Error);

} // namespace rvp

#endif // RVP_TRACE_TRACEIO_H
