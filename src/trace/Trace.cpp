//===- trace/Trace.cpp - Execution traces ---------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace rvp;

const char *rvp::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::Begin:
    return "begin";
  case EventKind::End:
    return "end";
  case EventKind::Read:
    return "read";
  case EventKind::Write:
    return "write";
  case EventKind::Acquire:
    return "acquire";
  case EventKind::Release:
    return "release";
  case EventKind::Fork:
    return "fork";
  case EventKind::Join:
    return "join";
  case EventKind::Branch:
    return "branch";
  case EventKind::Wait:
    return "wait";
  case EventKind::Notify:
    return "notify";
  }
  RVP_UNREACHABLE("unknown event kind");
}

std::string rvp::toString(const Event &E) {
  switch (E.Kind) {
  case EventKind::Read:
  case EventKind::Write:
    return formatString("%s(t%u, v%u, %lld)%s", eventKindName(E.Kind), E.Tid,
                        E.Target, static_cast<long long>(E.Data),
                        E.Volatile ? " volatile" : "");
  case EventKind::Acquire:
  case EventKind::Release:
  case EventKind::Notify:
    return formatString("%s(t%u, l%u)", eventKindName(E.Kind), E.Tid,
                        E.Target);
  case EventKind::Fork:
  case EventKind::Join:
    return formatString("%s(t%u, t%u)", eventKindName(E.Kind), E.Tid,
                        E.Target);
  case EventKind::Begin:
  case EventKind::End:
  case EventKind::Branch:
  case EventKind::Wait:
    return formatString("%s(t%u)", eventKindName(E.Kind), E.Tid);
  }
  RVP_UNREACHABLE("unknown event kind");
}

uint32_t Trace::internName(const std::string &Name,
                           std::vector<std::string> &Names,
                           std::unordered_map<std::string, uint32_t> &Map) {
  auto It = Map.find(Name);
  if (It != Map.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.push_back(Name);
  Map.emplace(Name, Id);
  return Id;
}

ThreadId Trace::internThread(const std::string &Name) {
  return internName(Name, ThreadNames, ThreadMap);
}
VarId Trace::internVar(const std::string &Name) {
  return internName(Name, VarNames, VarMap);
}
LockId Trace::internLock(const std::string &Name) {
  return internName(Name, LockNames, LockMap);
}
LocId Trace::internLoc(const std::string &Name) {
  return internName(Name, LocNames, LocMap);
}

void Trace::setInitialValue(VarId Var, Value V) {
  if (InitValues.size() <= Var)
    InitValues.resize(Var + 1, 0);
  InitValues[Var] = V;
}

EventId Trace::append(const Event &E) {
  assert(E.Kind != EventKind::Wait &&
         "traces store wait() in lowered release/acquire form");
  IsFinalized = false;
  Events.push_back(E);
  return static_cast<EventId>(Events.size() - 1);
}

/// Extends \p Names with synthesized entries so ids up to \p Count are
/// printable even when the trace was built without interned names.
static void padNames(std::vector<std::string> &Names, uint32_t Count,
                     const char *Prefix) {
  while (Names.size() < Count)
    Names.push_back(formatString("%s%zu", Prefix, Names.size()));
}

void Trace::finalize() {
  uint32_t MaxThread = numThreads();
  uint32_t MaxVar = numVars();
  uint32_t MaxLock = numLocks();
  for (const Event &E : Events) {
    MaxThread = std::max(MaxThread, E.Tid + 1);
    if (E.Kind == EventKind::Fork || E.Kind == EventKind::Join)
      MaxThread = std::max(MaxThread, E.Target + 1);
    if (E.isAccess())
      MaxVar = std::max(MaxVar, E.Target + 1);
    if (E.isAcquire() || E.isRelease() || E.Kind == EventKind::Notify)
      MaxLock = std::max(MaxLock, E.Target + 1);
  }
  padNames(ThreadNames, MaxThread, "t");
  padNames(VarNames, MaxVar, "v");
  padNames(LockNames, MaxLock, "l");

  ByThread.assign(MaxThread, {});
  ByVar.assign(MaxVar, {});
  ByLock.assign(MaxLock, {});
  ForkEvent.assign(MaxThread, InvalidEvent);
  BeginEvent.assign(MaxThread, InvalidEvent);
  EndEvent.assign(MaxThread, InvalidEvent);
  JoinEvent.assign(MaxThread, InvalidEvent);
  NotifyByMatch.clear();

  // Pending (unmatched) acquire per lock per thread, for pair building.
  std::vector<std::unordered_map<ThreadId, EventId>> Pending(MaxLock);

  for (EventId Id = 0; Id < Events.size(); ++Id) {
    const Event &E = Events[Id];
    ByThread[E.Tid].push_back(Id);
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      ByVar[E.Target].push_back(Id);
      break;
    case EventKind::Acquire:
      Pending[E.Target][E.Tid] = Id;
      break;
    case EventKind::Release: {
      auto &PerThread = Pending[E.Target];
      auto It = PerThread.find(E.Tid);
      LockPair Pair;
      Pair.ReleaseId = Id;
      Pair.Tid = E.Tid;
      Pair.Lock = E.Target;
      if (It != PerThread.end()) {
        Pair.AcquireId = It->second;
        PerThread.erase(It);
      }
      ByLock[E.Target].push_back(Pair);
      break;
    }
    case EventKind::Fork:
      ForkEvent[E.Target] = Id;
      break;
    case EventKind::Join:
      JoinEvent[E.Target] = Id;
      break;
    case EventKind::Begin:
      BeginEvent[E.Tid] = Id;
      break;
    case EventKind::End:
      EndEvent[E.Tid] = Id;
      break;
    case EventKind::Notify:
      if (E.Aux != 0)
        NotifyByMatch[E.Aux] = Id;
      break;
    case EventKind::Branch:
      break;
    case EventKind::Wait:
      RVP_UNREACHABLE("wait events are lowered before recording");
    }
  }

  // Acquires still held at the end of the trace become half-open pairs.
  for (LockId Lock = 0; Lock < MaxLock; ++Lock) {
    for (const auto &[Tid, AcqId] : Pending[Lock]) {
      LockPair Pair;
      Pair.AcquireId = AcqId;
      Pair.Tid = Tid;
      Pair.Lock = Lock;
      ByLock[Lock].push_back(Pair);
    }
    // Keep pairs sorted by acquire position for deterministic iteration.
    std::sort(ByLock[Lock].begin(), ByLock[Lock].end(),
              [](const LockPair &A, const LockPair &B) {
                EventId KeyA =
                    A.AcquireId != InvalidEvent ? A.AcquireId : A.ReleaseId;
                EventId KeyB =
                    B.AcquireId != InvalidEvent ? B.AcquireId : B.ReleaseId;
                return KeyA < KeyB;
              });
  }

  IsFinalized = true;
}

EventId Trace::notifyOfMatch(uint32_t Aux) const {
  assert(IsFinalized && "finalize() the trace first");
  auto It = NotifyByMatch.find(Aux);
  return It == NotifyByMatch.end() ? InvalidEvent : It->second;
}

TraceStats Trace::stats(Span S) const {
  TraceStats Stats;
  std::vector<bool> SeenThread(ByThread.empty() ? 64 : ByThread.size(),
                               false);
  for (EventId Id = S.Begin; Id < S.End && Id < Events.size(); ++Id) {
    const Event &E = Events[Id];
    ++Stats.Events;
    if (E.Tid < SeenThread.size() && !SeenThread[E.Tid]) {
      SeenThread[E.Tid] = true;
      ++Stats.Threads;
    }
    if (E.isAccess())
      ++Stats.ReadsWrites;
    else if (E.Kind == EventKind::Branch)
      ++Stats.Branches;
    else
      ++Stats.Syncs;
  }
  return Stats;
}
