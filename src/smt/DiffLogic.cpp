//===- smt/DiffLogic.cpp - Strict-order difference theory ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/DiffLogic.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace rvp;

uint32_t OrderGraph::ensureNode(uint32_t V) {
  auto [It, Inserted] = NodeIndex.try_emplace(
      V, static_cast<uint32_t>(Out.size()));
  if (Inserted) {
    Out.emplace_back();
    In.emplace_back();
    // Fresh nodes get the next key; insertion in ascending event order
    // makes program-order edges free.
    Ord.push_back(static_cast<uint32_t>(Ord.size()));
    ParentOf.push_back(UINT32_MAX);
    ParentEdge.push_back(Lit());
    Visited.push_back(0);
  }
  return It->second;
}

bool OrderGraph::dfsForward(uint32_t Start, uint32_t Goal,
                            uint32_t UpperBound,
                            std::vector<uint32_t> &Found) {
  // Iterative DFS from Start over out-edges, restricted to nodes with
  // Ord <= UpperBound. Returns true (cycle) if Goal is reached.
  std::vector<uint32_t> Stack = {Start};
  Visited[Start] = 1;
  Touched.push_back(Start);
  ParentOf[Start] = UINT32_MAX;
  while (!Stack.empty()) {
    uint32_t Node = Stack.back();
    Stack.pop_back();
    Found.push_back(Node);
    for (const HalfEdge &E : Out[Node]) {
      uint32_t Next = E.Node;
      if (Visited[Next] || Ord[Next] > UpperBound)
        continue;
      Visited[Next] = 1;
      Touched.push_back(Next);
      ParentOf[Next] = Node;
      ParentEdge[Next] = E.Reason;
      if (Next == Goal)
        return true;
      Stack.push_back(Next);
    }
  }
  return false;
}

void OrderGraph::dfsBackward(uint32_t Start, uint32_t LowerBound,
                             std::vector<uint32_t> &Found) {
  std::vector<uint32_t> Stack = {Start};
  Visited[Start] = 2;
  Touched.push_back(Start);
  while (!Stack.empty()) {
    uint32_t Node = Stack.back();
    Stack.pop_back();
    Found.push_back(Node);
    for (const HalfEdge &E : In[Node]) {
      uint32_t Next = E.Node;
      if (Visited[Next] || Ord[Next] < LowerBound)
        continue;
      Visited[Next] = 2;
      Touched.push_back(Next);
      Stack.push_back(Next);
    }
  }
}

void OrderGraph::reorder(const std::vector<uint32_t> &Forward,
                         const std::vector<uint32_t> &Backward) {
  // Pearce–Kelly: the affected region is Backward ∪ Forward; reassign
  // their keys so every Backward node precedes every Forward node while
  // both groups keep their relative order.
  std::vector<uint32_t> SortedBackward = Backward;
  std::vector<uint32_t> SortedForward = Forward;
  auto ByOrd = [this](uint32_t A, uint32_t B) { return Ord[A] < Ord[B]; };
  std::sort(SortedBackward.begin(), SortedBackward.end(), ByOrd);
  std::sort(SortedForward.begin(), SortedForward.end(), ByOrd);

  std::vector<uint32_t> Keys;
  Keys.reserve(SortedBackward.size() + SortedForward.size());
  for (uint32_t Node : SortedBackward)
    Keys.push_back(Ord[Node]);
  for (uint32_t Node : SortedForward)
    Keys.push_back(Ord[Node]);
  std::sort(Keys.begin(), Keys.end());

  size_t K = 0;
  for (uint32_t Node : SortedBackward)
    Ord[Node] = Keys[K++];
  for (uint32_t Node : SortedForward)
    Ord[Node] = Keys[K++];
}

bool OrderGraph::addEdge(uint32_t From, uint32_t To, Lit Reason,
                         std::vector<Lit> &CycleReasons) {
  uint32_t F = ensureNode(From);
  uint32_t T = ensureNode(To);
  if (F == T) {
    CycleReasons.push_back(Reason);
    return false;
  }

  if (Ord[F] >= Ord[T]) {
    // The new edge contradicts the current order; search the affected
    // region for a path T -> F (cycle) and otherwise repair the order.
    std::vector<uint32_t> Forward, Backward;
    bool Cycle = dfsForward(T, F, Ord[F], Forward);
    if (Cycle) {
      // Collect the path T ..-> F via parent pointers, then close the
      // cycle with the new edge.
      CycleReasons.push_back(Reason);
      for (uint32_t Node = F; Node != T; Node = ParentOf[Node]) {
        assert(ParentOf[Node] != UINT32_MAX && "broken DFS parent chain");
        CycleReasons.push_back(ParentEdge[Node]);
      }
      for (uint32_t Node : Touched)
        Visited[Node] = 0;
      Touched.clear();
      return false;
    }
    dfsBackward(F, Ord[T], Backward);
    reorder(Forward, Backward);
    for (uint32_t Node : Touched)
      Visited[Node] = 0;
    Touched.clear();
  }

  Out[F].push_back({T, Reason});
  In[T].push_back({F, Reason});
  EdgeStack.push_back({F, T});
  return true;
}

void OrderGraph::popEdge() {
  assert(!EdgeStack.empty() && "popEdge on empty stack");
  EdgeRecord E = EdgeStack.back();
  EdgeStack.pop_back();
  assert(!Out[E.From].empty() && Out[E.From].back().Node == E.To &&
         "edge stack out of sync with adjacency");
  Out[E.From].pop_back();
  In[E.To].pop_back();
}

uint32_t OrderGraph::positionOf(uint32_t V) const {
  auto It = NodeIndex.find(V);
  return It == NodeIndex.end() ? UINT32_MAX : Ord[It->second];
}

bool OrderGraph::reaches(uint32_t From, uint32_t To) const {
  auto FIt = NodeIndex.find(From);
  auto TIt = NodeIndex.find(To);
  if (FIt == NodeIndex.end() || TIt == NodeIndex.end())
    return false;
  uint32_t Goal = TIt->second;
  // Ord is a topological order: no path can lead to a smaller key.
  if (Ord[FIt->second] >= Ord[Goal])
    return false;
  std::vector<uint8_t> Mark(Out.size(), 0);
  std::vector<uint32_t> Stack = {FIt->second};
  Mark[FIt->second] = 1;
  while (!Stack.empty()) {
    uint32_t Node = Stack.back();
    Stack.pop_back();
    if (Node == Goal)
      return true;
    for (const HalfEdge &E : Out[Node]) {
      if (!Mark[E.Node] && Ord[E.Node] <= Ord[Goal]) {
        Mark[E.Node] = 1;
        Stack.push_back(E.Node);
      }
    }
  }
  return false;
}

void DiffLogicTheory::bindLit(Lit L, OrderVar From, OrderVar To) {
  EdgeOfLit[L.X] = {From, To};
}

bool DiffLogicTheory::assertLit(Lit L, std::vector<Lit> &Conflict) {
  auto It = EdgeOfLit.find(L.X);
  if (It == EdgeOfLit.end())
    return true; // Tseitin gate or unrelated literal.
  std::vector<Lit> CycleReasons;
  if (Graph.addEdge(It->second.From, It->second.To, L, CycleReasons))
    return true;
  Conflict.clear();
  for (Lit Reason : CycleReasons)
    Conflict.push_back(~Reason);
  return false;
}

void DiffLogicTheory::undoLit(Lit L) {
  if (EdgeOfLit.count(L.X))
    Graph.popEdge();
}
